package hios_test

import (
	"testing"

	hios "github.com/shus-lab/hios"
)

// TestIntegrationInceptionAllAlgorithms drives the full public workflow on
// a real model: optimize with every algorithm, cross-check the analytic
// evaluator against the discrete-event simulator, round-trip the schedule
// through JSON, and verify memory and pipeline analyses stay coherent.
func TestIntegrationInceptionAllAlgorithms(t *testing.T) {
	plat := hios.DualA40()
	net := hios.InceptionV3(plat, 299)
	m := hios.DefaultCostModel(net.G)

	for _, algo := range hios.Algorithms() {
		res, err := hios.Optimize(net.G, m, algo, hios.Options{GPUs: plat.GPUs})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}

		// Simulator (ideal links) must agree with the evaluator.
		tr, err := hios.Simulate(net.G, m, res.Schedule, false)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if diff := tr.Latency - res.Latency; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%s: simulator %g != evaluator %g", algo, tr.Latency, res.Latency)
		}

		// Link contention can only add latency.
		trS, err := hios.Simulate(net.G, m, res.Schedule, true)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if trS.Latency < tr.Latency-1e-9 {
			t.Fatalf("%s: serialized links reduced latency", algo)
		}

		// JSON round trip preserves evaluation.
		data, err := hios.ExportJSON(net.G, res.Schedule, net.Name, algo, res.Latency)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		back, err := hios.ImportJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		lat, err := hios.Latency(net.G, m, back)
		if err != nil || lat != res.Latency {
			t.Fatalf("%s: JSON round trip changed latency: %g vs %g (%v)", algo, lat, res.Latency, err)
		}

		// Memory must balance and fit the device.
		mem, err := hios.AnalyzeMemory(net.G, m, res.Schedule)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if mem.MaxPeak() <= 0 || !mem.Fits(48<<30) {
			t.Fatalf("%s: memory analysis implausible: %+v", algo, mem.PeakBytes)
		}

		// Pipelining: the steady period never exceeds single-request
		// latency and never beats the bottleneck GPU's busy time.
		pipe, err := hios.AnalyzePipeline(net.G, m, res.Schedule, 4)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if pipe.SteadyPeriodMs > pipe.LatencyMs+1e-9 {
			t.Fatalf("%s: period %g above latency %g", algo, pipe.SteadyPeriodMs, pipe.LatencyMs)
		}
		var maxBusy hios.Millis
		for gi := range res.Schedule.GPUs {
			var busy hios.Millis
			for _, st := range res.Schedule.GPUs[gi].Stages {
				busy += m.StageTime(st.Ops)
			}
			if busy > maxBusy {
				maxBusy = busy
			}
		}
		if pipe.SteadyPeriodMs < maxBusy-1e-9 {
			t.Fatalf("%s: period %g below bottleneck busy %g", algo, pipe.SteadyPeriodMs, maxBusy)
		}
	}
}

// TestIntegrationCrossoverStory reproduces the paper's central narrative
// end to end through the public API: at the default input size IOS is
// competitive, at large inputs HIOS-LP wins decisively, and HIOS-LP beats
// HIOS-MR at both.
func TestIntegrationCrossoverStory(t *testing.T) {
	plat := hios.DualA40()
	measure := func(size int, algo hios.Algorithm) hios.Millis {
		net := hios.InceptionV3(plat, size)
		m := hios.DefaultCostModel(net.G)
		res, err := hios.Optimize(net.G, m, algo, hios.Options{GPUs: plat.GPUs})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := hios.Simulate(net.G, m, res.Schedule, true)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Latency
	}

	// Large input: HIOS-LP < IOS and HIOS-LP < HIOS-MR.
	iosL := measure(2048, hios.IOS)
	lpL := measure(2048, hios.HIOSLP)
	mrL := measure(2048, hios.HIOSMR)
	if lpL >= iosL {
		t.Fatalf("large input: HIOS-LP (%g) should beat IOS (%g)", lpL, iosL)
	}
	if lpL >= mrL {
		t.Fatalf("large input: HIOS-LP (%g) should beat HIOS-MR (%g)", lpL, mrL)
	}
	// Small input: IOS within 25% of HIOS-LP either way (competitive).
	iosS := measure(299, hios.IOS)
	lpS := measure(299, hios.HIOSLP)
	if lpS > iosS*1.25 || iosS > lpS*1.25 {
		t.Fatalf("small input: IOS (%g) and HIOS-LP (%g) should be competitive", iosS, lpS)
	}
}
