package hios

import (
	"github.com/shus-lab/hios/internal/cluster"
	"github.com/shus-lab/hios/internal/experiments"
	"github.com/shus-lab/hios/internal/serve"
	"github.com/shus-lab/hios/internal/specflag"
)

// This file extends the facade to the cluster control plane (DESIGN.md
// §14): a deterministic discrete-event simulator of a heterogeneous GPU
// fleet behind a routing/admission gateway with a replica autoscaler.
// cmd/hios-cluster is an ordinary client of exactly this surface.

type (
	// ClusterOptions configures one cluster simulation: fleet, deployed
	// models with per-platform profiles, tenants, router policy,
	// admission control and autoscaler. It follows the validated-options
	// pattern — zero values select documented defaults and Validate
	// reports violations with errors.Is-matchable sentinels.
	ClusterOptions = cluster.Options
	// ClusterReport is the outcome of a cluster simulation: attainment,
	// goodput, tail latencies, per-tenant and per-pool breakdowns, the
	// autoscaler timeline and replica-time cost.
	ClusterReport = cluster.Report
	// FleetSpec declares the heterogeneous fleet: node groups per
	// platform preset.
	FleetSpec = cluster.FleetSpec
	// ClusterNodeSpec is one group of identical nodes in a FleetSpec.
	ClusterNodeSpec = cluster.NodeSpec
	// ClusterPreset couples a platform key with its dual-GPU testbed
	// and relative cost rate.
	ClusterPreset = cluster.Preset
	// ClusterDeployment is one model served fleet-wide, with one
	// serving profile per platform.
	ClusterDeployment = cluster.Deployment
	// ClusterProfile is one deployment's serving characteristics on one
	// platform (latency, period, busy time of its HIOS schedule).
	ClusterProfile = cluster.Profile
	// ClusterTenant is one request class sharing the cluster; identical
	// to ServeTenant.
	ClusterTenant = cluster.Tenant
	// ClusterAdmission configures gateway admission control: token
	// bucket plus queue-depth shedding.
	ClusterAdmission = cluster.Admission
	// RouterPolicy selects how the gateway routes admitted requests.
	RouterPolicy = cluster.RouterPolicy
	// AutoscalerOptions configures the per-pool replica autoscaler.
	AutoscalerOptions = cluster.AutoscalerOptions
	// ClusterNodeReport is one (node, deployment) pool's slice of a
	// ClusterReport.
	ClusterNodeReport = cluster.NodeReport
	// ClusterScaleEvent is one autoscaler decision.
	ClusterScaleEvent = cluster.ScaleEvent
	// FleetSweepOptions parameterizes AttainmentVsFleet (figure Serve2).
	FleetSweepOptions = experiments.FleetSweepOptions
)

// The implemented router policies.
const (
	// RouterLeastLoad routes to the fewest outstanding requests per
	// live replica.
	RouterLeastLoad = cluster.RouterLeastLoad
	// RouterWeighted routes to the lowest latency estimate weighted by
	// platform cost.
	RouterWeighted = cluster.RouterWeighted
	// RouterAffinity pins each tenant to a preferred node with
	// least-load fallback.
	RouterAffinity = cluster.RouterAffinity
	// RouterRandom routes uniformly at random (the baseline).
	RouterRandom = cluster.RouterRandom
)

// RouterPolicies lists every implemented router policy, enumerated from
// the same registry that validation and CLI usage strings read.
func RouterPolicies() []RouterPolicy { return cluster.RouterPolicies() }

// Sentinel errors of ClusterOptions.Validate, re-exported for errors.Is
// matching without importing internal paths.
var (
	// ErrClusterNoNodes reports a FleetSpec with no nodes.
	ErrClusterNoNodes = cluster.ErrNoNodes
	// ErrClusterUnknownPlatform reports a platform key outside the
	// presets.
	ErrClusterUnknownPlatform = cluster.ErrUnknownPlatform
	// ErrClusterBadNode reports a structurally invalid ClusterNodeSpec.
	ErrClusterBadNode = cluster.ErrBadNode
	// ErrClusterNoDeployments reports a ClusterOptions with no
	// deployments.
	ErrClusterNoDeployments = cluster.ErrNoDeployments
	// ErrClusterBadDeployment reports a structurally invalid profile.
	ErrClusterBadDeployment = cluster.ErrBadDeployment
	// ErrClusterMissingProfile reports a deployment lacking a profile
	// for a fleet platform.
	ErrClusterMissingProfile = cluster.ErrMissingProfile
	// ErrClusterNoTenants reports a ClusterOptions with no tenants.
	ErrClusterNoTenants = cluster.ErrNoTenants
	// ErrClusterBadTenant reports a structurally invalid tenant.
	ErrClusterBadTenant = cluster.ErrBadTenant
	// ErrUnknownRouterPolicy reports a RouterPolicy outside the
	// registry.
	ErrUnknownRouterPolicy = cluster.ErrUnknownRouterPolicy
	// ErrClusterBadAdmission reports negative admission parameters.
	ErrClusterBadAdmission = cluster.ErrBadAdmission
	// ErrClusterBadAutoscaler reports inconsistent autoscaler options.
	ErrClusterBadAutoscaler = cluster.ErrBadAutoscaler
	// ErrClusterBadHorizon reports a negative arrival horizon.
	ErrClusterBadHorizon = cluster.ErrBadHorizon
)

// ClusterPresets lists the fleet platform presets (a40, a5500, v100s)
// with their testbeds and relative cost rates.
func ClusterPresets() []ClusterPreset { return cluster.Presets() }

// ClusterProfileOf converts a single-node ServeModel — derived from a
// schedule computed with one platform's cost model — into that
// platform's cluster serving profile.
func ClusterProfileOf(platform string, m ServeModel) ClusterProfile {
	return cluster.ProfileOf(platform, m)
}

// ClusterServe runs one fleet-scale serving simulation: seeded
// arrivals, gateway admission and routing, per-pool dispatch, replica
// autoscaling. The same options always produce the same report
// (DESIGN.md §7, §14).
func ClusterServe(opt ClusterOptions) (*ClusterReport, error) { return cluster.Run(opt) }

// AttainmentVsFleet sweeps SLO attainment versus fleet size for every
// router policy (figure Serve2); the resulting figure is byte-identical
// at any Workers width.
func AttainmentVsFleet(opt FleetSweepOptions) (Figure, error) {
	return experiments.AttainmentVsFleet(opt)
}

// SpecParser parses and renders one comma-separated key=value spec
// grammar (the -tenant/-node flag language shared by hios-serve and
// hios-cluster).
type SpecParser[T any] = specflag.Parser[T]

// TenantSpec returns the shared tenant-spec grammar, e.g.
// "name=web,deadline=20,rate=300" (open-loop) or
// "name=batch,deadline=200,clients=4,think=5" (closed-loop).
func TenantSpec() *SpecParser[ServeTenant] { return specflag.Tenant() }

// NodeSpecParser returns the node-group grammar of hios-cluster, e.g.
// "platform=a40,count=2,replicas=2".
func NodeSpecParser() *SpecParser[ClusterNodeSpec] { return specflag.Node() }

// ServePolicyUsage renders the dispatch policies as a one-line flag
// usage string, enumerated from the policy registry.
func ServePolicyUsage() string { return serve.PolicyUsage() }

// RouterPolicyUsage renders the router policies as a one-line flag
// usage string, enumerated from the router registry.
func RouterPolicyUsage() string { return cluster.RouterUsage() }
