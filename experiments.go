package hios

import (
	"github.com/shus-lab/hios/internal/experiments"
)

// This file extends the facade to the experiment harness: every figure
// of the paper's evaluation and every ablation study in DESIGN.md is
// reachable without importing internal/experiments. The pubapi lint
// check holds cmd/ and examples/ to exactly that rule, so the
// reproduction drivers (cmd/hios-sim, cmd/hios-exp) are ordinary facade
// clients — anything they can print, library users can compute.

type (
	// Figure is one reproduced paper figure: labelled series of
	// (x, mean, std) points with axis metadata. Render writes the
	// repository's results_*.txt table format; RenderJSON a JSON form.
	Figure = experiments.Figure
	// FigureSeries is one curve of a Figure.
	FigureSeries = experiments.Series
	// FigurePoint is one x position of one series.
	FigurePoint = experiments.Point
	// SimOptions parameterizes the §V simulation sweeps (seeds per
	// point, GPU count, window size).
	SimOptions = experiments.SimOptions
	// Benchmark names a real-system CNN benchmark.
	Benchmark = experiments.Benchmark
	// SchedulingCost is one scheduler's Fig. 14 optimization cost
	// breakdown (algorithm wall time + simulated profiling time).
	SchedulingCost = experiments.SchedulingCost
)

// The paper's two real-system benchmarks (§VI-B).
const (
	InceptionBenchmark Benchmark = experiments.Inception
	NASNetBenchmark    Benchmark = experiments.NASNet
)

// DefaultSimOptions returns the paper's §V-A settings: 30 seeds per
// point, 4 GPUs.
func DefaultSimOptions() SimOptions { return experiments.DefaultSim() }

// DefaultBenchmarkSizes returns the Fig. 12 input-size sweep of a
// benchmark.
func DefaultBenchmarkSizes(b Benchmark) []int { return experiments.DefaultSizes(b) }

// Motivating measurements (§II).

// Fig1 reproduces Fig. 1: the sequential/parallel latency ratio of two
// identical convolutions over input sizes (the contention crossover).
func Fig1() Figure { return experiments.Fig1() }

// Fig2 reproduces Fig. 2: the transfer/compute time ratio across the
// three dual-GPU platforms.
func Fig2() Figure { return experiments.Fig2() }

// Simulation study (§V, random DAG-structured models).

// Fig7 sweeps the GPU count.
func Fig7(opt SimOptions) (Figure, error) { return experiments.Fig7(opt) }

// Fig8 sweeps the operator count.
func Fig8(opt SimOptions) (Figure, error) { return experiments.Fig8(opt) }

// Fig9 sweeps the dependency count.
func Fig9(opt SimOptions) (Figure, error) { return experiments.Fig9(opt) }

// Fig9DependencyBound is Fig. 9 with the dependency count capped to the
// structurally realizable maximum of each instance.
func Fig9DependencyBound(opt SimOptions) (Figure, error) {
	return experiments.Fig9DependencyBound(opt)
}

// Fig10 sweeps the layer count.
func Fig10(opt SimOptions) (Figure, error) { return experiments.Fig10(opt) }

// Fig11 sweeps the communication/computation ratio p.
func Fig11(opt SimOptions) (Figure, error) { return experiments.Fig11(opt) }

// Real-system experiments (§VI, simulated dual-A40 testbed).

// Fig12 measures inference latency of a benchmark over input sizes under
// sequential, IOS, HIOS-LP and HIOS-MR scheduling. A nil sizes slice
// selects the paper's sweep.
func Fig12(b Benchmark, sizes []int) (Figure, error) { return experiments.Fig12(b, sizes) }

// Fig13 measures the six-algorithm latency breakdown at small and large
// inputs of both benchmarks; the second result labels the scenarios.
func Fig13() (Figure, []string, error) { return experiments.Fig13() }

// Fig14 measures the scheduling-optimization cost (profiling +
// algorithm) of IOS, HIOS-LP and HIOS-MR over input sizes.
func Fig14(b Benchmark, sizes []int) (Figure, error) { return experiments.Fig14(b, sizes) }

// MeasureSchedulingCost runs one algorithm on a benchmark at an input
// size behind a fresh profiling table and reports the Fig. 14 cost
// breakdown.
func MeasureSchedulingCost(algo Algorithm, b Benchmark, size int) (SchedulingCost, error) {
	return experiments.MeasureSchedulingCost(string(algo), b, size)
}

// Ablation studies (DESIGN.md; extensions beyond the paper).

// AblationWindow sweeps the sliding-window size w for HIOS-LP.
func AblationWindow(opt SimOptions) (Figure, error) { return experiments.AblationWindow(opt) }

// AblationIOSPruning sweeps the IOS pruning parameters.
func AblationIOSPruning(opt SimOptions) (Figure, error) { return experiments.AblationIOSPruning(opt) }

// AblationLinkContention compares contention-free links (the cost
// model's assumption) against a serialized NVLink bridge (the testbed).
func AblationLinkContention(b Benchmark, size int) (Figure, error) {
	return experiments.AblationLinkContention(b, size)
}

// NCCLOverlap is the §VI-E what-if: CUDA-aware MPI transfers versus
// NCCL-style transfers with launch hiding.
func NCCLOverlap(b Benchmark, size int) (Figure, error) { return experiments.NCCLOverlap(b, size) }

// AblationIntraGPU isolates the intra-GPU pass: inter-GPU only versus
// the Algorithm 2 window versus per-GPU exact IOS.
func AblationIntraGPU(opt SimOptions) (Figure, error) { return experiments.AblationIntraGPU(opt) }

// OptimalityGap compares every scheduler against brute-force optima on
// small random instances.
func OptimalityGap(seeds, ops int) (Figure, error) { return experiments.OptimalityGap(seeds, ops) }

// ClusterStudy evaluates the schedulers on a two-level (multi-node)
// interconnect topology.
func ClusterStudy(opt SimOptions) (Figure, error) { return experiments.ClusterStudy(opt) }
