package hios_test

// The determinism contract: the same graph, cost model, algorithm and
// options always produce the same schedule — byte for byte. The paper's
// evaluation (Figs. 9-14) is only reproducible under this property, and
// the hios-lint analyzers (maporder, floatcmp, detclock) exist to keep
// the code from drifting away from it. This test is the runtime half of
// that enforcement: it reruns every algorithm on identical inputs,
// including re-deriving the inputs from their seeds, and compares the
// serialized schedules exactly.

import (
	"bytes"
	"testing"

	hios "github.com/shus-lab/hios"
)

// optimizeOnce rebuilds the model from scratch (so generator determinism
// is covered too) and runs one scheduling pass, returning the schedule's
// canonical JSON serialization and its predicted latency.
func optimizeOnce(t *testing.T, algo hios.Algorithm) ([]byte, hios.Millis) {
	t.Helper()
	cfg := hios.RandomModelDefaults()
	cfg.Ops = 60
	cfg.Layers = 8
	cfg.Deps = 120
	cfg.Seed = 7
	g, err := hios.RandomModel(cfg)
	if err != nil {
		t.Fatalf("RandomModel: %v", err)
	}
	m := hios.DefaultCostModel(g)
	res, err := hios.Optimize(g, m, algo, hios.Options{GPUs: 2})
	if err != nil {
		t.Fatalf("Optimize(%s): %v", algo, err)
	}
	data, err := hios.ExportJSON(g, res.Schedule, "determinism", algo, res.Latency)
	if err != nil {
		t.Fatalf("ExportJSON(%s): %v", algo, err)
	}
	return data, res.Latency
}

func TestOptimizeIsDeterministic(t *testing.T) {
	for _, algo := range hios.Algorithms() {
		t.Run(string(algo), func(t *testing.T) {
			first, lat1 := optimizeOnce(t, algo)
			for run := 2; run <= 3; run++ {
				again, lat2 := optimizeOnce(t, algo)
				if !bytes.Equal(first, again) {
					t.Fatalf("run %d of %s produced a different schedule (latencies %g vs %g); the determinism contract is broken", run, algo, lat1, lat2)
				}
			}
		})
	}
}

// A single graph instance reused across runs must behave identically to
// freshly generated ones: Optimize must not mutate its inputs in ways
// that change a second pass.
func TestOptimizeDoesNotPerturbReusedInputs(t *testing.T) {
	cfg := hios.RandomModelDefaults()
	cfg.Ops = 60
	cfg.Layers = 8
	cfg.Deps = 120
	cfg.Seed = 11
	g, err := hios.RandomModel(cfg)
	if err != nil {
		t.Fatalf("RandomModel: %v", err)
	}
	m := hios.DefaultCostModel(g)
	for _, algo := range []hios.Algorithm{hios.Sequential, hios.IOS, hios.HIOSLP, hios.HIOSMR} {
		t.Run(string(algo), func(t *testing.T) {
			run := func() []byte {
				res, err := hios.Optimize(g, m, algo, hios.Options{GPUs: 2})
				if err != nil {
					t.Fatalf("Optimize(%s): %v", algo, err)
				}
				data, err := hios.ExportJSON(g, res.Schedule, "determinism", algo, res.Latency)
				if err != nil {
					t.Fatalf("ExportJSON(%s): %v", algo, err)
				}
				return data
			}
			first := run()
			if again := run(); !bytes.Equal(first, again) {
				t.Fatalf("%s on a reused graph produced a different schedule on the second run", algo)
			}
		})
	}
}
