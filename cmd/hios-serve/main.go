// Command hios-serve simulates an online, deadline-aware, multi-tenant
// serving deployment of a scheduled model: it optimizes a schedule
// exactly like hios-sched, derives the deployment's pipeline latency and
// admission period, and then replays seeded stochastic arrivals against
// a dispatch policy, reporting SLO attainment, goodput, tail latencies
// and per-GPU utilization (DESIGN.md §9).
//
// Examples:
//
//	hios-serve -model inception -algo hios-lp -gpus 2 -policy edf
//	hios-serve -model nasnet -replicas 2 -policy edf-shed -load 1.2 -queue depth.csv
//	hios-serve -tenant name=web,deadline=20,rate=300 -tenant name=batch,deadline=200,clients=4,think=5
//	hios-serve -sweep -seeds 4 -json     # attainment vs load, scheduler x policy
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	hios "github.com/shus-lab/hios"
)

func main() {
	var (
		modelName = flag.String("model", "inception", "model: inception, nasnet, squeezenet, resnet50, randwire, or random")
		size      = flag.Int("size", 0, "input image size (0 = model default)")
		algo      = flag.String("algo", "hios-lp", "algorithm: sequential, ios, hios-lp, hios-mr, inter-gpu-lp, inter-gpu-mr")
		gpus      = flag.Int("gpus", 2, "number of GPUs per pipeline replica")
		window    = flag.Int("window", 0, "max sliding-window size (0 = default)")
		ops       = flag.Int("ops", 200, "random model: number of operators")
		layers    = flag.Int("layers", 14, "random model: number of layers")
		deps      = flag.Int("deps", 400, "random model: number of dependencies")
		seed      = flag.Int64("seed", 1, "random model: seed")
		commRatio = flag.Float64("p", 0.8, "random model: transfer/compute time ratio")

		replicas    = flag.Int("replicas", 1, "identical pipeline replicas of the deployment")
		policy      = flag.String("policy", "edf", "dispatch policy: "+hios.ServePolicyUsage())
		horizon     = flag.Float64("horizon", 0, "arrival horizon in ms (0 = default)")
		arrivalSeed = flag.Int64("arrival-seed", 1, "seed of the arrival processes")
		load        = flag.Float64("load", 0.7, "default tenants: offered load as a fraction of deployment capacity (ignored when -tenant is given)")
		queuePath   = flag.String("queue", "", "write the queue-depth timeline CSV to this file")
		ganttFlag   = flag.Bool("gantt", false, "print a text Gantt chart of one request's schedule")
		dotPath     = flag.String("dot", "", "write a Graphviz rendering of the scheduled graph to this file")

		sweepFlag = flag.Bool("sweep", false, "run the attainment-vs-load sweep (scheduler x policy) instead of one simulation")
		seeds     = flag.Int("seeds", 0, "sweep: arrival seeds averaged per data point (0 = default)")
		budget    = flag.Int("budget", 0, "sweep: total GPU budget per deployment (0 = default)")
		workers   = flag.Int("workers", 0, "sweep: worker pool width (0 = GOMAXPROCS; output is byte-identical at any width)")
		loadsFlag = flag.String("loads", "", "sweep: comma-separated offered-load fractions (empty = default)")

		asJSON = flag.Bool("json", false, "emit JSON instead of text")
	)
	var tenants []hios.ServeTenant
	tenantSpec := hios.TenantSpec()
	flag.Func("tenant", `repeatable tenant spec, e.g. "name=web,deadline=20,rate=300" (open-loop) or "name=batch,deadline=200,clients=4,think=5" (closed-loop); deadline/think in ms, rate in req/s`, func(s string) error {
		t, err := tenantSpec.Parse(s)
		if err != nil {
			return err
		}
		tenants = append(tenants, t)
		return nil
	})
	flag.Parse()

	if *sweepFlag {
		loads, err := parseLoads(*loadsFlag)
		if err != nil {
			fatal(err)
		}
		opt := hios.ServeSweepOptions{
			Seeds:     *seeds,
			GPUs:      *gpus,
			GPUBudget: *budget,
			Window:    *window,
			Workers:   *workers,
			Loads:     loads,
			Horizon:   hios.Millis(*horizon),
			Ops:       *ops,
		}
		if err := opt.Validate(); err != nil {
			fatal(err)
		}
		f, err := hios.AttainmentVsLoad(opt)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			if err := f.RenderJSON(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			f.Render(os.Stdout)
		}
		return
	}

	g, name, err := buildModel(*modelName, *size, *ops, *layers, *deps, *commRatio, *seed)
	if err != nil {
		fatal(err)
	}
	m := hios.DefaultCostModel(g)
	sopt := hios.Options{GPUs: *gpus, Window: *window}
	if err := sopt.Validate(hios.Algorithm(*algo)); err != nil {
		fatal(err)
	}
	res, err := hios.Optimize(g, m, hios.Algorithm(*algo), sopt)
	if err != nil {
		fatal(err)
	}
	dep, err := hios.NewServeModel(name, g, m, res.Schedule)
	if err != nil {
		fatal(err)
	}
	dep.Replicas = *replicas
	if len(tenants) == 0 {
		tenants = defaultTenants(dep, *load)
	}
	opt := hios.ServeOptions{
		Models:  []hios.ServeModel{dep},
		Tenants: tenants,
		Policy:  hios.ServePolicy(*policy),
		Horizon: hios.Millis(*horizon),
		Seed:    *arrivalSeed,
	}
	if err := opt.Validate(); err != nil {
		fatal(err)
	}
	rep, err := hios.Serve(opt)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("model:     %s (%d operators), %s on %d GPU(s)\n", name, g.NumOps(), *algo, *gpus)
		fmt.Printf("pipeline:  latency %.4f ms, period %.4f ms, %d replica(s), capacity %.1f req/s\n",
			dep.Latency, dep.Period, dep.Replicas, dep.Capacity())
		if err := rep.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *queuePath != "" {
		f, err := os.Create(*queuePath)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteQueue(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("queue:     depth timeline written to %s\n", *queuePath)
	}
	if *ganttFlag {
		tr, err := hios.Simulate(g, m, res.Schedule, false)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		if err := hios.WriteGantt(os.Stdout, g, tr, 72); err != nil {
			fatal(err)
		}
	}
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fatal(err)
		}
		if err := hios.WriteDOT(f, g, res.Schedule); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("graphviz:  written to %s\n", *dotPath)
	}
}

// defaultTenants mirrors the attainment sweep's mix: an interactive
// tenant with a tight SLO taking 60% of the offered load and a batch
// tenant with a loose SLO taking 40%, together offering load x capacity
// requests per second.
func defaultTenants(dep hios.ServeModel, load float64) []hios.ServeTenant {
	rate := load * dep.Capacity()
	return []hios.ServeTenant{
		{Name: "interactive", Deadline: dep.Latency.Scale(4), Rate: 0.6 * rate},
		{Name: "batch", Deadline: dep.Latency.Scale(12), Rate: 0.4 * rate},
	}
}

func parseLoads(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad load %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func buildModel(name string, size, ops, layers, deps int, p float64, seed int64) (*hios.Graph, string, error) {
	switch name {
	case "inception":
		if size == 0 {
			size = 299
		}
		net := hios.InceptionV3(hios.DualA40(), size)
		return net.G, net.Name, nil
	case "nasnet":
		if size == 0 {
			size = 331
		}
		net := hios.NASNetA(hios.DualA40(), size)
		return net.G, net.Name, nil
	case "squeezenet":
		if size == 0 {
			size = 224
		}
		net := hios.SqueezeNet(hios.DualA40(), size)
		return net.G, net.Name, nil
	case "resnet50":
		if size == 0 {
			size = 224
		}
		net := hios.ResNet50(hios.DualA40(), size)
		return net.G, net.Name, nil
	case "randwire":
		cfg := hios.DefaultRandWire()
		if size != 0 {
			cfg.InputSize = size
		}
		cfg.Seed = seed
		net, err := hios.RandWireNet(hios.DualA40(), cfg)
		if err != nil {
			return nil, "", err
		}
		return net.G, net.Name, nil
	case "random":
		cfg := hios.RandomModelDefaults()
		cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed, cfg.CommRatio = ops, layers, deps, seed, p
		g, err := hios.RandomModel(cfg)
		if err != nil {
			return nil, "", err
		}
		return g, fmt.Sprintf("random-%d-%d-%d", ops, layers, deps), nil
	default:
		return nil, "", fmt.Errorf("unknown model %q (want inception, nasnet, squeezenet, resnet50, randwire or random)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hios-serve:", err)
	os.Exit(1)
}
