// Command hios-lint runs the repository's analyzer suite (internal/lint;
// the registry there is the authoritative list — currently maporder,
// floatcmp, detclock, pubapi, unitflow, sharedcapture) over Go packages.
// It works two ways:
//
// Standalone, on package patterns:
//
//	go run ./cmd/hios-lint ./...
//
// As a vet tool, so findings interleave with go vet's own and use vet's
// caching:
//
//	go build -o /tmp/hios-lint ./cmd/hios-lint
//	go vet -vettool=/tmp/hios-lint ./...
//
// The exit status is 0 when the tree is clean and nonzero when any
// analyzer reports a finding. Diagnostics print as
// `path:line:col: analyzer: message`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/shus-lab/hios/internal/lint"
	"github.com/shus-lab/hios/internal/lint/analysis"
)

func main() {
	// The go command probes vet tools before use: -V=full computes a
	// cache key, -flags enumerates the tool's flags as JSON. Answer both
	// handshakes before normal flag parsing.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Println("hios-lint version v1")
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	only := flag.String("only", "", "comma-separated analyzers to run (mutually exclusive with -skip)")
	skip := flag.String("skip", "", "comma-separated analyzers to leave out (mutually exclusive with -only)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hios-lint [-only list | -skip list] [packages]\n       (as a vet tool) go vet -vettool=$(command -v hios-lint) [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Suite() {
			suppress := "not suppressable"
			if d := lint.Directive(a.Name); d != "" {
				suppress = "suppress with //lint:" + d
			}
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s (%s)\n", a.Name, a.Doc, suppress)
		}
	}
	flag.Parse()
	args := flag.Args()

	// `go vet -vettool` invokes the tool with a single *.cfg argument
	// describing one package unit.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}

	suite, err := lint.Select(*only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hios-lint:", err)
		flag.Usage()
		os.Exit(2)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", args)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	diags, fset, err := analysis.RunAnalyzers(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", relPosition(fset, d.Pos), d.Category, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hios-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// relPosition renders a diagnostic position with the file path relative
// to the working directory when possible, keeping output stable across
// checkouts.
func relPosition(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			p.Filename = rel
		}
	}
	return p.String()
}

// vetConfig is the JSON unit description the go command hands to vet
// tools (the x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one `go vet` package unit and returns the process
// exit code: 0 clean, 2 findings (vet's convention), 1 hard error.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hios-lint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hios-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// This suite exports no facts, but vet requires the output file to
	// exist for its cache.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hios-lint:", err)
			return 1
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := cfg.ImportMap[path]; ok {
			path = to
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, lookup)
	pkg, info, softErrs := analysis.TypeCheck(fset, imp, cfg.ImportPath, files)
	if len(softErrs) > 0 && !cfg.SucceedOnTypecheckFailure {
		// The package compiled (vet only sees compilable units), so
		// soft errors here mean our importer missed something; analyze
		// anyway, as vet does for best-effort tools.
		_ = softErrs
	}

	var diags []analysis.Diagnostic
	for _, a := range lint.Suite() {
		pass := &analysis.Pass{
			Analyzer: a,
			Path:     cfg.ImportPath,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
		}
		pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			fmt.Fprintln(os.Stderr, "hios-lint:", err)
			return 1
		}
	}
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	analysis.SortDiagnostics(fset, diags)
	for _, d := range diags {
		p := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", p, d.Category, d.Message)
	}
	return 2
}
