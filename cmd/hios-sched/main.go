// Command hios-sched optimizes an operator schedule for a DL model on a
// multi-GPU platform and prints or exports it, mirroring the paper's
// Python scheduler that "generates schedules in JSON for executing
// inference on multiple GPUs".
//
// Examples:
//
//	hios-sched -model inception -size 1024 -algo hios-lp -gpus 2
//	hios-sched -model random -ops 200 -layers 14 -deps 400 -algo hios-mr -gpus 4
//	hios-sched -model nasnet -algo hios-lp -gpus 2 -out schedule.json -trace timeline.json
package main

import (
	"flag"
	"fmt"
	"os"

	hios "github.com/shus-lab/hios"
)

func main() {
	var (
		modelName = flag.String("model", "inception", "model: inception, nasnet, squeezenet, resnet50, randwire, or random")
		size      = flag.Int("size", 0, "input image size (0 = model default)")
		algo      = flag.String("algo", "hios-lp", "algorithm: sequential, ios, hios-lp, hios-mr, inter-gpu-lp, inter-gpu-mr")
		gpus      = flag.Int("gpus", 2, "number of GPUs")
		window    = flag.Int("window", 0, "max sliding-window size (0 = default)")
		ops       = flag.Int("ops", 200, "random model: number of operators")
		layers    = flag.Int("layers", 14, "random model: number of layers")
		deps      = flag.Int("deps", 400, "random model: number of dependencies")
		seed      = flag.Int64("seed", 1, "random model: seed")
		commRatio = flag.Float64("p", 0.8, "random model: transfer/compute time ratio")
		outPath   = flag.String("out", "", "write the schedule JSON to this file")
		tracePath = flag.String("trace", "", "write a chrome://tracing timeline to this file")
		serialize = flag.Bool("serialize-links", true, "model each GPU pair's link as a shared resource in the timeline")
		evalPath  = flag.String("eval", "", "skip optimization: load this schedule JSON and evaluate it against the model")
		gantt     = flag.Bool("gantt", false, "print a text Gantt chart of the simulated execution")
		dotPath   = flag.String("dot", "", "write a Graphviz rendering of the scheduled graph to this file")
	)
	flag.Parse()

	g, name, err := buildModel(*modelName, *size, *ops, *layers, *deps, *commRatio, *seed)
	if err != nil {
		fatal(err)
	}
	m := hios.DefaultCostModel(g)

	var res hios.Result
	if *evalPath != "" {
		data, err := os.ReadFile(*evalPath)
		if err != nil {
			fatal(err)
		}
		s, err := hios.ImportJSON(data)
		if err != nil {
			fatal(err)
		}
		lat, err := hios.Latency(g, m, s)
		if err != nil {
			fatal(fmt.Errorf("schedule %s does not fit model %s: %w", *evalPath, name, err))
		}
		res = hios.Result{Schedule: s, Latency: lat}
		*algo = "(loaded from " + *evalPath + ")"
	} else {
		opt := hios.Options{GPUs: *gpus, Window: *window}
		if err := opt.Validate(hios.Algorithm(*algo)); err != nil {
			fatal(err)
		}
		res, err = hios.Optimize(g, m, hios.Algorithm(*algo), opt)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("model:     %s (%d operators, %d dependencies)\n", name, g.NumOps(), g.NumEdges())
	fmt.Printf("algorithm: %s on %d GPU(s)\n", *algo, *gpus)
	fmt.Printf("latency:   %.4f ms (sequential: %.4f ms, speedup %.2fx)\n",
		res.Latency, g.TotalOpTime(), g.TotalOpTime()/float64(res.Latency))
	fmt.Printf("stages:    %d across %d used GPU(s)\n", res.Schedule.NumStages(), res.Schedule.UsedGPUs())

	if mem, err := hios.AnalyzeMemory(g, m, res.Schedule); err == nil && mem.MaxPeak() > 0 {
		fmt.Printf("memory:    peak per GPU:")
		for gi, b := range mem.PeakBytes {
			fmt.Printf(" GPU%d=%.1fMB", gi, float64(b)/(1<<20))
		}
		fmt.Println()
	}

	if *outPath != "" {
		data, err := hios.ExportJSON(g, res.Schedule, name, hios.Algorithm(*algo), res.Latency)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("schedule:  written to %s\n", *outPath)
	}
	if *tracePath != "" || *gantt {
		tr, err := hios.Simulate(g, m, res.Schedule, *serialize)
		if err != nil {
			fatal(err)
		}
		if *tracePath != "" {
			data, err := hios.ChromeTrace(g, tr)
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*tracePath, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("timeline:  written to %s (simulated latency %.4f ms)\n", *tracePath, tr.Latency)
		}
		if *gantt {
			fmt.Println()
			fmt.Print(hios.Gantt(g, tr, 72))
		}
	}
	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(hios.DOT(g, res.Schedule)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("graphviz:  written to %s\n", *dotPath)
	}
}

func buildModel(name string, size, ops, layers, deps int, p float64, seed int64) (*hios.Graph, string, error) {
	switch name {
	case "inception":
		if size == 0 {
			size = 299
		}
		net := hios.InceptionV3(hios.DualA40(), size)
		return net.G, net.Name, nil
	case "nasnet":
		if size == 0 {
			size = 331
		}
		net := hios.NASNetA(hios.DualA40(), size)
		return net.G, net.Name, nil
	case "squeezenet":
		if size == 0 {
			size = 224
		}
		net := hios.SqueezeNet(hios.DualA40(), size)
		return net.G, net.Name, nil
	case "resnet50":
		if size == 0 {
			size = 224
		}
		net := hios.ResNet50(hios.DualA40(), size)
		return net.G, net.Name, nil
	case "randwire":
		cfg := hios.DefaultRandWire()
		if size != 0 {
			cfg.InputSize = size
		}
		cfg.Seed = seed
		net, err := hios.RandWireNet(hios.DualA40(), cfg)
		if err != nil {
			return nil, "", err
		}
		return net.G, net.Name, nil
	case "random":
		cfg := hios.RandomModelDefaults()
		cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed, cfg.CommRatio = ops, layers, deps, seed, p
		g, err := hios.RandomModel(cfg)
		if err != nil {
			return nil, "", err
		}
		return g, fmt.Sprintf("random-%d-%d-%d", ops, layers, deps), nil
	default:
		return nil, "", fmt.Errorf("unknown model %q (want inception, nasnet, squeezenet, resnet50, randwire or random)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hios-sched:", err)
	os.Exit(1)
}
