// Command hios-exp regenerates the HIOS paper's motivating measurements
// and real-system experiments against the simulated dual-A40 platform:
//
//	Fig. 1  - sequential/parallel latency ratio of two identical
//	          convolutions over input sizes (the contention crossover);
//	Fig. 2  - transfer/compute time ratio across three dual-GPU platforms;
//	Fig. 12 - inference latency of Inception-v3 and NASNet-A over input
//	          sizes under four schedulers;
//	Fig. 13 - six-algorithm latency breakdown at small and large inputs;
//	Fig. 14 - time cost of scheduling optimization (profiling + algorithm).
//
// Examples:
//
//	hios-exp                    # every figure
//	hios-exp -fig 12 -model nasnet -sizes 331,512,1024
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	hios "github.com/shus-lab/hios"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 1, 2, 12, 13, 14 or all")
		modelName = flag.String("model", "both", "benchmark for figs 12/14: inception, nasnet or both")
		sizesFlag = flag.String("sizes", "", "comma-separated input sizes (default: paper sweep)")
	)
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fatal(err)
	}
	benchmarks, err := pickBenchmarks(*modelName)
	if err != nil {
		fatal(err)
	}

	want := func(id string) bool { return *fig == "all" || *fig == id }
	ran := false

	if want("1") {
		ran = true
		f := hios.Fig1()
		f.Render(os.Stdout)
		fmt.Println()
	}
	if want("2") {
		ran = true
		f := hios.Fig2()
		f.Render(os.Stdout)
		fmt.Println()
	}
	if want("12") {
		ran = true
		for _, b := range benchmarks {
			f, err := hios.Fig12(b, sizes)
			if err != nil {
				fatal(err)
			}
			f.Render(os.Stdout)
			fmt.Println()
		}
	}
	if want("13") {
		ran = true
		f, labels, err := hios.Fig13()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# scenarios: %s\n", strings.Join(labels, ", "))
		f.Render(os.Stdout)
		fmt.Println()
	}
	if want("14") {
		ran = true
		for _, b := range benchmarks {
			f, err := hios.Fig14(b, sizes)
			if err != nil {
				fatal(err)
			}
			f.Render(os.Stdout)
			fmt.Println()
		}
	}
	if want("ablation") {
		ran = true
		runAblations()
	}
	if !ran {
		fatal(fmt.Errorf("unknown figure %q (want 1, 2, 12, 13, 14, ablation or all)", *fig))
	}
}

// runAblations prints the four ablation studies of DESIGN.md: window
// size, IOS pruning, link contention, and the §VI-E NCCL what-if.
func runAblations() {
	opt := hios.SimOptions{Seeds: 5, GPUs: 4}
	if err := opt.Validate(); err != nil {
		fatal(err)
	}
	if f, err := hios.AblationWindow(opt); err != nil {
		fatal(err)
	} else {
		f.Render(os.Stdout)
		fmt.Println()
	}
	if f, err := hios.AblationIOSPruning(hios.SimOptions{Seeds: 3, GPUs: 4}); err != nil {
		fatal(err)
	} else {
		f.Render(os.Stdout)
		fmt.Println()
	}
	if f, err := hios.AblationLinkContention(hios.InceptionBenchmark, 1024); err != nil {
		fatal(err)
	} else {
		fmt.Println("# x: 0 = contention-free links (cost model), 1 = serialized NVLink bridge (testbed)")
		f.Render(os.Stdout)
		fmt.Println()
	}
	if f, err := hios.NCCLOverlap(hios.NASNetBenchmark, 331); err != nil {
		fatal(err)
	} else {
		fmt.Println("# x: 0 = CUDA-aware MPI transfers, 1 = NCCL-style transfers (launch hiding)")
		f.Render(os.Stdout)
		fmt.Println()
	}
	if f, err := hios.OptimalityGap(10, 18); err != nil {
		fatal(err)
	} else {
		f.Render(os.Stdout)
		fmt.Println()
	}
	if f, err := hios.ClusterStudy(hios.SimOptions{Seeds: 5, GPUs: 4}); err != nil {
		fatal(err)
	} else {
		f.Render(os.Stdout)
		fmt.Println()
	}
	if f, err := hios.AblationIntraGPU(hios.SimOptions{Seeds: 5, GPUs: 4}); err != nil {
		fatal(err)
	} else {
		fmt.Println("# x: 0 = inter-GPU only, 1 = Algorithm 2 window, 2 = per-GPU exact IOS (cross-GPU blind)")
		f.Render(os.Stdout)
		fmt.Println()
	}
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func pickBenchmarks(name string) ([]hios.Benchmark, error) {
	switch name {
	case "inception":
		return []hios.Benchmark{hios.InceptionBenchmark}, nil
	case "nasnet":
		return []hios.Benchmark{hios.NASNetBenchmark}, nil
	case "both":
		return []hios.Benchmark{hios.InceptionBenchmark, hios.NASNetBenchmark}, nil
	default:
		return nil, fmt.Errorf("unknown model %q (want inception, nasnet or both)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hios-exp:", err)
	os.Exit(1)
}
