// Command hios-escape gates the module on the compiler's optimization
// diagnostics. It builds the module with escape-analysis, inlining, and
// bounds-check reporting turned on, folds the output into per-function
// facts (internal/lint/escape), and either records them as the committed
// baseline or diffs the current tree against it:
//
//	go run ./cmd/hios-escape record          # refresh ESCAPE_baseline.json
//	go run ./cmd/hios-escape diff            # compare, exit 1 on hot regressions
//	go run ./cmd/hios-escape diff -o out.json  # also write the current facts
//
// The diff is hotness-aware: functions annotated //lint:hotpath, or
// reached from one through the module's static call graph (the same
// propagation hotalloc uses), are enforced — a new heap escape, a lost
// inlining, or a new surviving bounds check in one of them fails the run.
// Everything else prints as advisory drift and exits 0; refresh the
// baseline when the drift is deliberate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/shus-lab/hios/internal/lint"
	"github.com/shus-lab/hios/internal/lint/analysis"
	"github.com/shus-lab/hios/internal/lint/escape"
)

const baselineName = "ESCAPE_baseline.json"

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `usage: hios-escape <command> [flags]

commands:
  record   build with diagnostic flags and write the facts baseline
           (-o path, default %s at the module root)
  diff     build with diagnostic flags and compare against the baseline
           (-baseline path; -o path writes the current facts too);
           exits 1 when a hot-path function regressed
`, baselineName)
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hios-escape:", err)
		os.Exit(1)
	}
	switch cmd := flag.Arg(0); cmd {
	case "record":
		os.Exit(runRecord(root, flag.Args()[1:]))
	case "diff":
		os.Exit(runDiff(root, flag.Args()[1:]))
	default:
		fmt.Fprintf(os.Stderr, "hios-escape: unknown command %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}
}

func runRecord(root string, args []string) int {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("o", filepath.Join(root, baselineName), "output path for the recorded baseline")
	fs.Parse(args)
	facts, err := escape.Collect(root, lint.ModulePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hios-escape:", err)
		return 1
	}
	if err := escape.WriteFile(*out, facts); err != nil {
		fmt.Fprintln(os.Stderr, "hios-escape:", err)
		return 1
	}
	fmt.Printf("hios-escape: recorded %d functions to %s\n", len(facts), *out)
	return 0
}

func runDiff(root string, args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	basePath := fs.String("baseline", filepath.Join(root, baselineName), "baseline facts to compare against")
	out := fs.String("o", "", "also write the current facts to this path")
	fs.Parse(args)
	baseline, err := escape.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hios-escape:", err)
		return 1
	}
	current, err := escape.Collect(root, lint.ModulePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hios-escape:", err)
		return 1
	}
	if *out != "" {
		if err := escape.WriteFile(*out, current); err != nil {
			fmt.Fprintln(os.Stderr, "hios-escape:", err)
			return 1
		}
	}
	// Hotness comes from the current tree, so a function annotated (or
	// newly reached from a root) in this change is enforced immediately.
	pkgs, err := analysis.Load(root, []string{"./..."})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hios-escape:", err)
		return 1
	}
	hot := lint.HotFunctions(pkgs)
	report := escape.Diff(baseline, current, hot)
	for _, d := range report.Drift {
		fmt.Printf("hios-escape: drift: %s\n", d)
	}
	for _, r := range report.Regressions {
		via := ""
		if r.Root != r.Key {
			via = " (hot via " + r.Root + ")"
		}
		fmt.Fprintf(os.Stderr, "hios-escape: REGRESSION: %s%s: %s\n", r.Key, via, r.Detail)
	}
	if n := len(report.Regressions); n > 0 {
		fmt.Fprintf(os.Stderr, "hios-escape: %d hot-path regression(s); fix them or re-record the baseline deliberately\n", n)
		return 1
	}
	if len(report.Drift) > 0 {
		fmt.Printf("hios-escape: %d advisory drift line(s), no hot-path regressions\n", len(report.Drift))
	} else {
		fmt.Println("hios-escape: clean against baseline")
	}
	return 0
}

// moduleRoot finds the enclosing module's directory so the tool works
// from any subdirectory.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", strings.TrimSuffix(dir, "/"))
		}
		dir = parent
	}
}
