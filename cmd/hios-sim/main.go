// Command hios-sim regenerates the HIOS paper's simulation study (§V,
// Figures 7-11): six scheduling algorithms compared over random
// DAG-structured DL models while sweeping GPU count, operator count,
// dependency count, layer count, and the communication/computation ratio.
//
// With the default -seeds 30 this reproduces the paper's methodology
// (each point averages 30 random instances and reports the standard
// deviation).
//
// Examples:
//
//	hios-sim                 # all five figures, paper settings
//	hios-sim -fig 7 -seeds 5 # a quick look at the GPU-count sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	hios "github.com/shus-lab/hios"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 7, 8, 9, 9adj, 10, 11 or all")
		seeds  = flag.Int("seeds", 30, "random instances per data point")
		gpus   = flag.Int("gpus", 4, "GPU count for the fixed-GPU sweeps")
		window = flag.Int("window", 0, "max sliding-window size (0 = default)")
		asJSON = flag.Bool("json", false, "emit figures as JSON instead of tables")

		workers    = flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		iosWorkers = flag.Int("ios-workers", 0, "concurrent IOS block solves per scheduler run (0/1 = serial)")
	)
	flag.Parse()

	opt := hios.SimOptions{Seeds: *seeds, GPUs: *gpus, Window: *window,
		Workers: *workers, IOSWorkers: *iosWorkers}
	if err := opt.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "hios-sim:", err)
		os.Exit(1)
	}
	type driver struct {
		id string
		fn func(hios.SimOptions) (hios.Figure, error)
	}
	drivers := []driver{
		{"7", hios.Fig7},
		{"8", hios.Fig8},
		{"9", hios.Fig9},
		{"9adj", hios.Fig9DependencyBound},
		{"10", hios.Fig10},
		{"11", hios.Fig11},
	}
	ran := false
	for _, d := range drivers {
		if *fig != "all" && !strings.EqualFold(*fig, d.id) {
			continue
		}
		ran = true
		f, err := d.fn(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hios-sim:", err)
			os.Exit(1)
		}
		if *asJSON {
			if err := f.RenderJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "hios-sim:", err)
				os.Exit(1)
			}
		} else {
			f.Render(os.Stdout)
			fmt.Println()
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "hios-sim: unknown figure %q (want 7, 8, 9, 9adj, 10, 11 or all)\n", *fig)
		os.Exit(1)
	}
}
