// Command hios-cluster simulates a cluster-scale serving control plane:
// a heterogeneous fleet of multi-GPU nodes serving one scheduled model
// behind an admission-controlled gateway, with pluggable router policies
// and an optional replica autoscaler (DESIGN.md §14). The deployment's
// per-platform serving profiles are derived by scheduling the model with
// HIOS on each platform preset, exactly as hios-serve does for one node.
//
// Examples:
//
//	hios-cluster -nodes 6 -router least-load -load 0.95
//	hios-cluster -node platform=a40,count=2,replicas=2 -node platform=v100s,count=1 -router weighted
//	hios-cluster -tenant name=web,deadline=20,rate=800 -autoscale -scale-max 6
//	hios-cluster -sweep -seeds 4 -sizes 2,4,8 -json   # figure Serve2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	hios "github.com/shus-lab/hios"
)

func main() {
	var (
		modelName = flag.String("model", "squeezenet", "model: inception, nasnet, squeezenet or resnet50")
		size      = flag.Int("size", 0, "input image size (0 = model default)")
		algo      = flag.String("algo", "hios-lp", "scheduling algorithm per platform: sequential, ios, hios-lp, hios-mr, inter-gpu-lp, inter-gpu-mr")
		gpus      = flag.Int("gpus", 2, "GPUs per pipeline replica")
		window    = flag.Int("window", 0, "max sliding-window size (0 = default)")

		nodes    = flag.Int("nodes", 4, "fleet size when no -node is given; node i cycles the platform presets")
		replicas = flag.Int("replicas", 2, "initial replicas per (node, deployment) pool for -nodes fleets")
		router   = flag.String("router", "", "router policy: "+hios.RouterPolicyUsage()+" (empty = least-load)")
		load     = flag.Float64("load", 0.9, "default tenants: offered load as a fraction of fleet capacity (ignored when -tenant is given)")
		horizon  = flag.Float64("horizon", 0, "arrival horizon in ms (0 = default)")
		seed     = flag.Int64("seed", 1, "seed of the arrival processes")

		admitRate  = flag.Float64("admit-rate", 0, "gateway token-bucket admission rate in req/s (0 = unlimited)")
		admitBurst = flag.Int("admit-burst", 0, "gateway token-bucket burst (0 = default when -admit-rate is set)")
		maxQueue   = flag.Int("max-queue", 0, "shed arrivals beyond this cluster-wide queue depth (0 = unbounded)")
		shedLate   = flag.Bool("shed-hopeless", false, "shed requests at dispatch once their deadline is unreachable")

		autoscale     = flag.Bool("autoscale", false, "enable the per-pool replica autoscaler")
		scaleMin      = flag.Int("scale-min", 0, "autoscaler: min replicas per pool (0 = default)")
		scaleMax      = flag.Int("scale-max", 0, "autoscaler: max replicas per pool (0 = default)")
		scaleInterval = flag.Float64("scale-interval", 0, "autoscaler: control interval in ms (0 = default)")

		queuePath = flag.String("queue", "", "write the queue-depth timeline CSV to this file")

		sweepFlag = flag.Bool("sweep", false, "run the attainment-vs-fleet-size sweep (figure Serve2) instead of one simulation")
		seeds     = flag.Int("seeds", 0, "sweep: arrival seeds averaged per data point (0 = default)")
		sizesFlag = flag.String("sizes", "", "sweep: comma-separated fleet sizes (empty = default)")
		requests  = flag.Int("requests", 0, "sweep: target arrivals per cell (0 = default)")
		workers   = flag.Int("workers", 0, "sweep: worker pool width (0 = GOMAXPROCS; output is byte-identical at any width)")

		asJSON = flag.Bool("json", false, "emit JSON instead of text")
	)
	var fleetNodes []hios.ClusterNodeSpec
	nodeSpec := hios.NodeSpecParser()
	flag.Func("node", `repeatable node-group spec, e.g. "platform=a40,count=2,replicas=2"; platforms: a40, a5500, v100s`, func(s string) error {
		n, err := nodeSpec.Parse(s)
		if err != nil {
			return err
		}
		fleetNodes = append(fleetNodes, n)
		return nil
	})
	var tenants []hios.ClusterTenant
	tenantSpec := hios.TenantSpec()
	flag.Func("tenant", `repeatable tenant spec, e.g. "name=web,deadline=20,rate=300" (open-loop) or "name=batch,deadline=200,clients=4,think=5" (closed-loop); deadline/think in ms, rate in req/s`, func(s string) error {
		t, err := tenantSpec.Parse(s)
		if err != nil {
			return err
		}
		tenants = append(tenants, t)
		return nil
	})
	flag.Parse()

	if *sweepFlag {
		sizes, err := parseSizes(*sizesFlag)
		if err != nil {
			fatal(err)
		}
		opt := hios.FleetSweepOptions{
			Seeds:     *seeds,
			Sizes:     sizes,
			Requests:  *requests,
			Load:      *load,
			Replicas:  *replicas,
			GPUs:      *gpus,
			Window:    *window,
			InputSize: *size,
			Workers:   *workers,
		}
		if *router != "" {
			opt.Routers = []hios.RouterPolicy{hios.RouterPolicy(*router)}
		}
		if err := opt.Validate(); err != nil {
			fatal(err)
		}
		f, err := hios.AttainmentVsFleet(opt)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			if err := f.RenderJSON(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			f.Render(os.Stdout)
		}
		return
	}

	dep, err := buildDeployment(*modelName, *size, *algo, *gpus, *window)
	if err != nil {
		fatal(err)
	}
	if len(fleetNodes) == 0 {
		fleetNodes = defaultFleet(*nodes, *replicas)
	}
	opt := hios.ClusterOptions{
		Fleet:       hios.FleetSpec{Nodes: fleetNodes},
		Deployments: []hios.ClusterDeployment{dep},
		Router:      hios.RouterPolicy(*router),
		Admission: hios.ClusterAdmission{
			RatePerSec:   *admitRate,
			Burst:        *admitBurst,
			MaxQueue:     *maxQueue,
			ShedHopeless: *shedLate,
		},
		Autoscaler: hios.AutoscalerOptions{
			Enabled:     *autoscale,
			Interval:    hios.Millis(*scaleInterval),
			MinReplicas: *scaleMin,
			MaxReplicas: *scaleMax,
		},
		Horizon: hios.Millis(*horizon),
		Seed:    *seed,
	}
	if len(tenants) == 0 {
		tenants = defaultTenants(dep, opt, *load)
	}
	opt.Tenants = tenants
	if err := opt.Validate(); err != nil {
		fatal(err)
	}
	rep, err := hios.ClusterServe(opt)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("model:     %s, %s per platform, %d GPU(s) per replica\n", dep.Name, *algo, *gpus)
		fmt.Printf("fleet:     %d node(s), capacity %.1f req/s at initial replicas\n",
			opt.Fleet.NumNodes(), opt.Capacity(0))
		if err := rep.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *queuePath != "" {
		f, err := os.Create(*queuePath)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteQueue(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("queue:     depth timeline written to %s\n", *queuePath)
	}
}

// buildDeployment schedules the model once per platform preset and
// collects the resulting serving profiles into one fleet-wide
// deployment, mirroring the Serve2 sweep's construction.
func buildDeployment(name string, size int, algo string, gpus, window int) (hios.ClusterDeployment, error) {
	dep := hios.ClusterDeployment{Name: name}
	for _, p := range hios.ClusterPresets() {
		net, err := buildNet(name, p.Platform, size)
		if err != nil {
			return dep, err
		}
		m, err := hios.CachedCostModel(net)
		if err != nil {
			return dep, fmt.Errorf("%s: %w", p.Key, err)
		}
		sopt := hios.Options{GPUs: gpus, Window: window}
		if err := sopt.Validate(hios.Algorithm(algo)); err != nil {
			return dep, err
		}
		res, err := hios.Optimize(net.G, m, hios.Algorithm(algo), sopt)
		if err != nil {
			return dep, fmt.Errorf("%s: %w", p.Key, err)
		}
		sm, err := hios.NewServeModel(net.Name, net.G, m, res.Schedule)
		if err != nil {
			return dep, fmt.Errorf("%s: %w", p.Key, err)
		}
		dep.Profiles = append(dep.Profiles, hios.ClusterProfileOf(p.Key, sm))
	}
	return dep, nil
}

func buildNet(name string, p hios.Platform, size int) (*hios.Net, error) {
	switch name {
	case "inception":
		if size == 0 {
			size = 299
		}
		return hios.InceptionV3(p, size), nil
	case "nasnet":
		if size == 0 {
			size = 331
		}
		return hios.NASNetA(p, size), nil
	case "squeezenet":
		if size == 0 {
			size = 224
		}
		return hios.SqueezeNet(p, size), nil
	case "resnet50":
		if size == 0 {
			size = 224
		}
		return hios.ResNet50(p, size), nil
	default:
		return nil, fmt.Errorf("unknown model %q (want inception, nasnet, squeezenet or resnet50)", name)
	}
}

// defaultFleet cycles the platform presets over n nodes, the same shape
// the Serve2 sweep uses.
func defaultFleet(n, replicas int) []hios.ClusterNodeSpec {
	presets := hios.ClusterPresets()
	out := make([]hios.ClusterNodeSpec, n)
	for i := range out {
		out[i] = hios.ClusterNodeSpec{Platform: presets[i%len(presets)].Key, Count: 1, Replicas: replicas}
	}
	return out
}

// defaultTenants mirrors the Serve2 mix: an interactive tenant with a
// tight SLO taking 60% of the offered load and a batch tenant with a
// loose SLO taking 40%, scaled to the fleet's initial capacity.
func defaultTenants(dep hios.ClusterDeployment, opt hios.ClusterOptions, load float64) []hios.ClusterTenant {
	minLat := dep.Profiles[0].Latency
	for _, p := range dep.Profiles[1:] {
		if p.Latency < minLat {
			minLat = p.Latency
		}
	}
	rate := load * opt.Capacity(0)
	return []hios.ClusterTenant{
		{Name: "interactive", Deadline: minLat.Scale(4), Rate: 0.6 * rate},
		{Name: "batch", Deadline: minLat.Scale(12), Rate: 0.4 * rate},
	}
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad fleet size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hios-cluster:", err)
	os.Exit(1)
}
