// Command hios-benchdiff records and compares benchmark baselines.
//
// Record mode parses `go test -bench` output into a BENCH_*.json file
// (the format of the tracked BENCH_seed.json baseline):
//
//	go test -bench=. -benchtime=1x -benchmem ./... | tee bench.txt
//	hios-benchdiff -record bench.txt -out BENCH_pr.json
//
// Diff mode compares two such files by RATIO — ns/op and allocs/op of
// the new file over the old — because CI runners differ wildly in
// absolute speed while allocation counts and relative regressions are
// stable:
//
//	hios-benchdiff -old BENCH_seed.json -new BENCH_pr.json
//
// The exit status is nonzero when any benchmark present in both files
// regresses past the thresholds (-max-ns-ratio, -max-allocs-ratio), so
// a CI job can gate on it; benchmarks present on only one side are
// reported but never fail the diff. -filter restricts the comparison to
// benchmark keys matching a regular expression, so CI can gate tightly
// on the stable scheduler/serving benchmarks while the full diff stays
// advisory. -geomean appends a geometric-mean summary row over the
// compared ratios — the one-number answer to "did this PR speed the
// suite up overall" that individual rows bury.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// modulePrefix is stripped from `pkg:` lines so keys match the tracked
// baseline's "internal/...Benchmark..." form.
const modulePrefix = "github.com/shus-lab/hios/"

// entry is one benchmark record. AllocsPerOp is a pointer so benchmarks
// without -benchmem data round-trip as absent rather than zero.
type entry struct {
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	Note        string   `json:"note,omitempty"`
}

// file is the BENCH_*.json layout.
type file struct {
	Comment     string           `json:"comment,omitempty"`
	Environment map[string]any   `json:"environment,omitempty"`
	Benchmarks  map[string]entry `json:"benchmarks"`
}

func main() {
	var (
		record        = flag.String("record", "", "parse `go test -bench` output from this file (- for stdin) and write a baseline")
		out           = flag.String("out", "", "output path for -record (default stdout)")
		oldPath       = flag.String("old", "", "baseline BENCH_*.json (diff mode)")
		newPath       = flag.String("new", "", "candidate BENCH_*.json (diff mode)")
		maxNsRatio    = flag.Float64("max-ns-ratio", 1.5, "fail when new/old ns per op exceeds this")
		maxAllocRatio = flag.Float64("max-allocs-ratio", 1.1, "fail when new/old allocs per op exceeds this")
		filter        = flag.String("filter", "", "diff only benchmark keys matching this regular expression")
		geomean       = flag.Bool("geomean", false, "append a geometric-mean summary row over the compared ratios")
	)
	flag.Parse()

	switch {
	case *record != "":
		if err := runRecord(*record, *out); err != nil {
			fmt.Fprintln(os.Stderr, "hios-benchdiff:", err)
			os.Exit(2)
		}
	case *oldPath != "" && *newPath != "":
		regressed, err := runDiff(*oldPath, *newPath, *maxNsRatio, *maxAllocRatio, *filter, *geomean)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hios-benchdiff:", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: hios-benchdiff -record bench.txt [-out BENCH.json]")
		fmt.Fprintln(os.Stderr, "       hios-benchdiff -old BENCH_seed.json -new BENCH_pr.json")
		os.Exit(2)
	}
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkSchedulerIOS-4   1   342293352 ns/op   4667 allocs/op
//
// The first capture is the name (with the optional -N GOMAXPROCS suffix
// still attached), the rest of the line holds the measurements.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

func runRecord(in, out string) error {
	var src *os.File
	if in == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}

	benches := make(map[string]entry)
	pkg := ""
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if after, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimPrefix(strings.TrimSpace(after), modulePrefix)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		// Strip the -N GOMAXPROCS suffix so keys are stable across
		// runner core counts.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e, ok := parseMeasurements(m[2])
		if !ok {
			continue
		}
		key := name
		if pkg != "" {
			key = pkg + "." + name
		}
		benches[key] = e
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark results found in %s", in)
	}

	doc := file{
		Comment: "Recorded by hios-benchdiff -record; compare against BENCH_seed.json by ratio.",
		Environment: map[string]any{
			"go":         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		Benchmarks: benches,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// parseMeasurements extracts ns/op and allocs/op from the tail of a
// benchmark line ("342293352 ns/op  196751680 B/op  4667 allocs/op").
func parseMeasurements(tail string) (entry, bool) {
	fields := strings.Fields(tail)
	var e entry
	seenNs := false
	for i := 1; i < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			continue
		}
		switch fields[i] {
		case "ns/op":
			e.NsPerOp = v
			seenNs = true
		case "allocs/op":
			a := v
			e.AllocsPerOp = &a
		}
	}
	return e, seenNs
}

func load(path string) (file, error) {
	var doc file
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Benchmarks == nil {
		return doc, fmt.Errorf("%s: no \"benchmarks\" object", path)
	}
	return doc, nil
}

func runDiff(oldPath, newPath string, maxNs, maxAllocs float64, filter string, geomean bool) (bool, error) {
	oldDoc, err := load(oldPath)
	if err != nil {
		return false, err
	}
	newDoc, err := load(newPath)
	if err != nil {
		return false, err
	}
	var keep *regexp.Regexp
	if filter != "" {
		keep, err = regexp.Compile(filter)
		if err != nil {
			return false, fmt.Errorf("bad -filter: %w", err)
		}
	}

	names := make([]string, 0, len(oldDoc.Benchmarks))
	for name := range oldDoc.Benchmarks {
		if keep == nil || keep.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	regressed := false
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-55s %12s %14s\n", "benchmark", "ns ratio", "allocs ratio")
	// Geometric-mean accumulators over benchmarks present on both sides:
	// sums of log-ratios, so one outlier cannot drown the rest the way an
	// arithmetic mean of ratios would.
	var nsLogSum, allocLogSum float64
	nsCount, allocCount := 0, 0
	for _, name := range names {
		o := oldDoc.Benchmarks[name]
		n, ok := newDoc.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "%-55s %12s %14s\n", name, "absent", "absent")
			continue
		}
		nsRatio := ratio(n.NsPerOp, o.NsPerOp)
		if nsRatio > 0 {
			nsLogSum += math.Log(nsRatio)
			nsCount++
		}
		mark := ""
		if nsRatio > maxNs {
			mark = "  ** ns regression"
			regressed = true
		}
		allocStr := "n/a"
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			ar := ratio(*n.AllocsPerOp, *o.AllocsPerOp)
			allocStr = fmt.Sprintf("%.3f", ar)
			if ar > 0 {
				allocLogSum += math.Log(ar)
				allocCount++
			}
			if ar > maxAllocs {
				mark += "  ** allocs regression"
				regressed = true
			}
		}
		fmt.Fprintf(w, "%-55s %12.3f %14s%s\n", name, nsRatio, allocStr, mark)
	}
	if geomean && nsCount > 0 {
		allocStr := "n/a"
		if allocCount > 0 {
			allocStr = fmt.Sprintf("%.3f", math.Exp(allocLogSum/float64(allocCount)))
		}
		fmt.Fprintf(w, "%-55s %12.3f %14s\n",
			fmt.Sprintf("geomean (%d benchmarks)", nsCount),
			math.Exp(nsLogSum/float64(nsCount)), allocStr)
	}
	// Benchmarks absent from the baseline, in sorted (deterministic) order.
	added := make([]string, 0, len(newDoc.Benchmarks))
	for name := range newDoc.Benchmarks {
		if keep != nil && !keep.MatchString(name) {
			continue
		}
		if _, ok := oldDoc.Benchmarks[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(w, "%-55s %12s %14s\n", name, "new", "new")
	}
	if regressed {
		fmt.Fprintf(w, "\nFAIL: regression past thresholds (ns > %.2fx, allocs > %.2fx)\n", maxNs, maxAllocs)
	}
	return regressed, nil
}

// ratio returns n/o, treating a zero or absent baseline as neutral: a
// benchmark whose baseline is 0 allocs/op stays 0-vs-0 in practice, and
// anything divided by zero would otherwise mask every other column.
func ratio(n, o float64) float64 {
	if o == 0 { //lint:floatexact zero-baseline sentinel: absent baselines store exactly 0
		if n == 0 { //lint:floatexact exact 0-vs-0 means the column never moved
			return 1
		}
		return n // vs a zero baseline, report the raw value
	}
	return n / o
}
