// Command hios-benchdiff records and compares benchmark baselines.
//
// Record mode parses `go test -bench` output into a BENCH_*.json file
// (the format of the tracked BENCH_seed.json baseline):
//
//	go test -bench=. -benchtime=1x -benchmem ./... | tee bench.txt
//	hios-benchdiff -record bench.txt -out BENCH_pr.json
//
// Diff mode compares two such files by RATIO — ns/op and allocs/op of
// the new file over the old — because CI runners differ wildly in
// absolute speed while allocation counts and relative regressions are
// stable:
//
//	hios-benchdiff -old BENCH_seed.json -new BENCH_pr.json
//
// The exit status is nonzero when any benchmark present in both files
// regresses past the thresholds (-max-ns-ratio, -max-allocs-ratio), so
// a CI job can gate on it; benchmarks present on only one side are
// reported but never fail the diff. -filter restricts the comparison to
// benchmark keys matching a regular expression, so CI can gate tightly
// on the stable scheduler/serving benchmarks while the full diff stays
// advisory. -geomean appends a geometric-mean summary row over the
// compared ratios — the one-number answer to "did this PR speed the
// suite up overall" that individual rows bury.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// modulePrefix is stripped from `pkg:` lines so keys match the tracked
// baseline's "internal/...Benchmark..." form.
const modulePrefix = "github.com/shus-lab/hios/"

// entry is one benchmark record. AllocsPerOp is a pointer so benchmarks
// without -benchmem data round-trip as absent rather than zero.
type entry struct {
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	Note        string   `json:"note,omitempty"`
}

// file is the BENCH_*.json layout.
type file struct {
	Comment     string           `json:"comment,omitempty"`
	Environment map[string]any   `json:"environment,omitempty"`
	Benchmarks  map[string]entry `json:"benchmarks"`
}

func main() {
	var (
		record        = flag.String("record", "", "parse `go test -bench` output from this file (- for stdin) and write a baseline")
		out           = flag.String("out", "", "output path for -record (default stdout)")
		oldPath       = flag.String("old", "", "baseline BENCH_*.json (diff mode)")
		newPath       = flag.String("new", "", "candidate BENCH_*.json (diff mode)")
		maxNsRatio    = flag.Float64("max-ns-ratio", 1.5, "fail when new/old ns per op exceeds this")
		maxAllocRatio = flag.Float64("max-allocs-ratio", 1.1, "fail when new/old allocs per op exceeds this")
		filter        = flag.String("filter", "", "diff only benchmark keys matching this regular expression")
		geomean       = flag.Bool("geomean", false, "append a geometric-mean summary row over the compared ratios")
		asJSON        = flag.Bool("json", false, "emit the diff as JSON instead of a table")
	)
	flag.Parse()

	switch {
	case *record != "":
		if err := runRecord(*record, *out); err != nil {
			fmt.Fprintln(os.Stderr, "hios-benchdiff:", err)
			os.Exit(2)
		}
	case *oldPath != "" && *newPath != "":
		regressed, err := runDiff(*oldPath, *newPath, *maxNsRatio, *maxAllocRatio, *filter, *geomean, *asJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hios-benchdiff:", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: hios-benchdiff -record bench.txt [-out BENCH.json]")
		fmt.Fprintln(os.Stderr, "       hios-benchdiff -old BENCH_seed.json -new BENCH_pr.json")
		os.Exit(2)
	}
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkSchedulerIOS-4   1   342293352 ns/op   4667 allocs/op
//
// The first capture is the name (with the optional -N GOMAXPROCS suffix
// still attached), the rest of the line holds the measurements.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

func runRecord(in, out string) error {
	var src *os.File
	if in == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}

	benches := make(map[string]entry)
	pkg := ""
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if after, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimPrefix(strings.TrimSpace(after), modulePrefix)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		// Strip the -N GOMAXPROCS suffix so keys are stable across
		// runner core counts.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e, ok := parseMeasurements(m[2])
		if !ok {
			continue
		}
		key := name
		if pkg != "" {
			key = pkg + "." + name
		}
		benches[key] = e
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark results found in %s", in)
	}

	doc := file{
		Comment: "Recorded by hios-benchdiff -record; compare against BENCH_seed.json by ratio.",
		Environment: map[string]any{
			"go":         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		Benchmarks: benches,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// parseMeasurements extracts ns/op and allocs/op from the tail of a
// benchmark line ("342293352 ns/op  196751680 B/op  4667 allocs/op").
func parseMeasurements(tail string) (entry, bool) {
	fields := strings.Fields(tail)
	var e entry
	seenNs := false
	for i := 1; i < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			continue
		}
		switch fields[i] {
		case "ns/op":
			e.NsPerOp = v
			seenNs = true
		case "allocs/op":
			a := v
			e.AllocsPerOp = &a
		}
	}
	return e, seenNs
}

func load(path string) (file, error) {
	var doc file
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Benchmarks == nil {
		return doc, fmt.Errorf("%s: no \"benchmarks\" object", path)
	}
	return doc, nil
}

// diffRow is one benchmark's comparison. Status is "compared" when both
// files hold the benchmark, "missing from candidate" when only the
// baseline does, "missing from baseline" when only the candidate does —
// unmatched entries are always reported, never silently skipped, so a
// renamed benchmark cannot quietly drop out of the gate.
type diffRow struct {
	Name        string   `json:"name"`
	Status      string   `json:"status"`
	OldNsPerOp  *float64 `json:"old_ns_per_op,omitempty"`
	NewNsPerOp  *float64 `json:"new_ns_per_op,omitempty"`
	NsRatio     *float64 `json:"ns_ratio,omitempty"`
	AllocsRatio *float64 `json:"allocs_ratio,omitempty"`
	Regressed   bool     `json:"regressed,omitempty"`
}

// diffReport is the -json document: every row plus the thresholds and
// geometric means, so a CI consumer needs no side channel to interpret
// the verdict.
type diffReport struct {
	Old               string    `json:"old"`
	New               string    `json:"new"`
	MaxNsRatio        float64   `json:"max_ns_ratio"`
	MaxAllocsRatio    float64   `json:"max_allocs_ratio"`
	Benchmarks        []diffRow `json:"benchmarks"`
	GeomeanNsRatio    *float64  `json:"geomean_ns_ratio,omitempty"`
	GeomeanAllocRatio *float64  `json:"geomean_allocs_ratio,omitempty"`
	Regressed         bool      `json:"regressed"`
}

func runDiff(oldPath, newPath string, maxNs, maxAllocs float64, filter string, geomean, asJSON bool) (bool, error) {
	oldDoc, err := load(oldPath)
	if err != nil {
		return false, err
	}
	newDoc, err := load(newPath)
	if err != nil {
		return false, err
	}
	var keep *regexp.Regexp
	if filter != "" {
		keep, err = regexp.Compile(filter)
		if err != nil {
			return false, fmt.Errorf("bad -filter: %w", err)
		}
	}

	// Union of both files' keys (filtered), sorted for determinism.
	nameSet := make(map[string]bool, len(oldDoc.Benchmarks)+len(newDoc.Benchmarks))
	for name := range oldDoc.Benchmarks {
		nameSet[name] = true
	}
	for name := range newDoc.Benchmarks {
		nameSet[name] = true
	}
	names := make([]string, 0, len(nameSet))
	for name := range nameSet {
		if keep == nil || keep.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	report := diffReport{
		Old: oldPath, New: newPath,
		MaxNsRatio: maxNs, MaxAllocsRatio: maxAllocs,
	}
	// Geometric-mean accumulators over benchmarks present on both sides:
	// sums of log-ratios, so one outlier cannot drown the rest the way an
	// arithmetic mean of ratios would.
	var nsLogSum, allocLogSum float64
	nsCount, allocCount := 0, 0
	for _, name := range names {
		o, inOld := oldDoc.Benchmarks[name]
		n, inNew := newDoc.Benchmarks[name]
		row := diffRow{Name: name, Status: "compared"}
		switch {
		case !inNew:
			row.Status = "missing from candidate"
			row.OldNsPerOp = &o.NsPerOp
		case !inOld:
			row.Status = "missing from baseline"
			row.NewNsPerOp = &n.NsPerOp
		default:
			row.OldNsPerOp, row.NewNsPerOp = &o.NsPerOp, &n.NsPerOp
			nsRatio := ratio(n.NsPerOp, o.NsPerOp)
			row.NsRatio = &nsRatio
			if nsRatio > 0 {
				nsLogSum += math.Log(nsRatio)
				nsCount++
			}
			if nsRatio > maxNs {
				row.Regressed = true
			}
			if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
				ar := ratio(*n.AllocsPerOp, *o.AllocsPerOp)
				row.AllocsRatio = &ar
				if ar > 0 {
					allocLogSum += math.Log(ar)
					allocCount++
				}
				if ar > maxAllocs {
					row.Regressed = true
				}
			}
		}
		report.Regressed = report.Regressed || row.Regressed
		report.Benchmarks = append(report.Benchmarks, row)
	}
	if nsCount > 0 {
		gm := math.Exp(nsLogSum / float64(nsCount))
		report.GeomeanNsRatio = &gm
	}
	if allocCount > 0 {
		gm := math.Exp(allocLogSum / float64(allocCount))
		report.GeomeanAllocRatio = &gm
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if asJSON {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return false, err
		}
		data = append(data, '\n')
		_, err = w.Write(data)
		return report.Regressed, err
	}
	fmt.Fprintf(w, "%-55s %12s %14s\n", "benchmark", "ns ratio", "allocs ratio")
	for _, row := range report.Benchmarks {
		if row.NsRatio == nil {
			fmt.Fprintf(w, "%-55s    -- %s --\n", row.Name, row.Status)
			continue
		}
		allocStr := "n/a"
		if row.AllocsRatio != nil {
			allocStr = fmt.Sprintf("%.3f", *row.AllocsRatio)
		}
		mark := ""
		if *row.NsRatio > maxNs {
			mark = "  ** ns regression"
		}
		if row.AllocsRatio != nil && *row.AllocsRatio > maxAllocs {
			mark += "  ** allocs regression"
		}
		fmt.Fprintf(w, "%-55s %12.3f %14s%s\n", row.Name, *row.NsRatio, allocStr, mark)
	}
	if geomean && report.GeomeanNsRatio != nil {
		allocStr := "n/a"
		if report.GeomeanAllocRatio != nil {
			allocStr = fmt.Sprintf("%.3f", *report.GeomeanAllocRatio)
		}
		fmt.Fprintf(w, "%-55s %12.3f %14s\n",
			fmt.Sprintf("geomean (%d benchmarks)", nsCount),
			*report.GeomeanNsRatio, allocStr)
	}
	if report.Regressed {
		fmt.Fprintf(w, "\nFAIL: regression past thresholds (ns > %.2fx, allocs > %.2fx)\n", maxNs, maxAllocs)
	}
	return report.Regressed, nil
}

// ratio returns n/o, treating a zero or absent baseline as neutral: a
// benchmark whose baseline is 0 allocs/op stays 0-vs-0 in practice, and
// anything divided by zero would otherwise mask every other column.
func ratio(n, o float64) float64 {
	if o == 0 { //lint:floatexact zero-baseline sentinel: absent baselines store exactly 0
		if n == 0 { //lint:floatexact exact 0-vs-0 means the column never moved
			return 1
		}
		return n // vs a zero baseline, report the raw value
	}
	return n / o
}
