// Quickstart: build a small multi-branch computation graph by hand,
// schedule it on two GPUs with HIOS-LP, and inspect the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hios "github.com/shus-lab/hios"
)

func main() {
	// A toy two-branch model: the classic diamond of the paper's
	// motivating discussion. Times are milliseconds; Util is the
	// fraction of one GPU the operator saturates when running alone.
	g := hios.NewGraph(6, 6)
	input := g.AddOp(hios.Op{Name: "input", Time: 0.05, Util: 0.05})
	convA := g.AddOp(hios.Op{Name: "conv-a", Time: 2.0, Util: 0.9})
	convB := g.AddOp(hios.Op{Name: "conv-b", Time: 2.2, Util: 0.9})
	poolA := g.AddOp(hios.Op{Name: "pool-a", Time: 0.4, Util: 0.3})
	poolB := g.AddOp(hios.Op{Name: "pool-b", Time: 0.4, Util: 0.3})
	concat := g.AddOp(hios.Op{Name: "concat", Time: 0.3, Util: 0.4})
	g.AddEdge(input, convA, 0.15)
	g.AddEdge(input, convB, 0.15)
	g.AddEdge(convA, poolA, 0.1)
	g.AddEdge(convB, poolB, 0.1)
	g.AddEdge(poolA, concat, 0.05)
	g.AddEdge(poolB, concat, 0.05)
	if err := g.Finalize(); err != nil {
		log.Fatal(err)
	}

	m := hios.DefaultCostModel(g)

	// Compare every scheduler on two GPUs.
	fmt.Println("algorithm      latency(ms)  schedule")
	for _, algo := range hios.Algorithms() {
		res, err := hios.Optimize(g, m, algo, hios.Options{GPUs: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.3f  %s\n", algo, res.Latency, res.Schedule)
	}

	// Take the HIOS-LP schedule, look at its timeline, and export it.
	res, err := hios.Optimize(g, m, hios.HIOSLP, hios.Options{GPUs: 2})
	if err != nil {
		log.Fatal(err)
	}
	tm, err := hios.Evaluate(g, m, res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHIOS-LP timeline:")
	for v := 0; v < g.NumOps(); v++ {
		op := g.Op(hios.OpID(v))
		fmt.Printf("  %-8s GPU%-2d [%6.3f, %6.3f] ms\n",
			op.Name, tm.GPUOf[v], tm.OpStart[v], tm.OpFinish[v])
	}

	// A terminal Gantt chart of the same schedule.
	tr, err := hios.Simulate(g, m, res.Schedule, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHIOS-LP Gantt (simulated, shared NVLink):")
	fmt.Print(hios.Gantt(g, tr, 60))

	data, err := hios.ExportJSON(g, res.Schedule, "quickstart", hios.HIOSLP, res.Latency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedule JSON (%d bytes):\n%s\n", len(data), data)
}
