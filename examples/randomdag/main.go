// Random DAG study: generate the paper's §V-A random DL-model structures,
// schedule them on a growing GPU pool, and verify a schedule end-to-end by
// actually executing it on the in-process multi-worker runtime (one
// goroutine per GPU, MPI transfers between them) and comparing against a
// single-threaded reference execution.
//
// Run with: go run ./examples/randomdag
package main

import (
	"fmt"
	"log"

	hios "github.com/shus-lab/hios"
)

func main() {
	cfg := hios.RandomModelDefaults() // 200 ops, 14 layers, 400 deps, p=0.8
	cfg.Seed = 42
	g, err := hios.RandomModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m := hios.DefaultCostModel(g)

	fmt.Printf("random model: %d operators, %d dependencies, %.1f ms total work\n\n",
		g.NumOps(), g.NumEdges(), g.TotalOpTime())
	fmt.Println("gpus  hios-lp(ms)  hios-mr(ms)  lp-speedup")
	seqLat := g.TotalOpTime()
	for _, gpus := range []int{1, 2, 4, 8} {
		lpRes, err := hios.Optimize(g, m, hios.HIOSLP, hios.Options{GPUs: gpus})
		if err != nil {
			log.Fatal(err)
		}
		mrRes, err := hios.Optimize(g, m, hios.HIOSMR, hios.Options{GPUs: gpus})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5d %-12.2f %-12.2f %.2fx\n", gpus, lpRes.Latency, mrRes.Latency, seqLat/float64(lpRes.Latency))
	}

	// Execute the 4-GPU HIOS-LP schedule for real and check every
	// operator's output against the sequential reference.
	res, err := hios.Optimize(g, m, hios.HIOSLP, hios.Options{GPUs: 4})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := hios.Execute(g, m, res.Schedule, hios.ExecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted on 4 simulated GPUs in %v wall time\n", rep.Wall)
	fmt.Printf("  %d MPI messages, %d bytes moved\n", rep.Messages, rep.MovedBytes)
	for gpu, busy := range rep.GPUBusy {
		fmt.Printf("  GPU%d busy %v\n", gpu, busy)
	}
	if len(rep.Outputs) == g.NumOps() {
		fmt.Println("  all operator outputs produced — schedule is executable")
	}

	// Render the measured wall-clock timeline of the real execution,
	// exactly like a simulated trace.
	fmt.Println("\nmeasured execution timeline (wall clock):")
	fmt.Print(hios.Gantt(g, rep.SimTrace(), 64))
}
