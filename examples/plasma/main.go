// Plasma-control scenario: the paper's introduction motivates HIOS with
// fusion-energy plasma control systems, where DL inference must finish
// within a millisecond-scale deadline to keep up with reactor diagnostics
// (Kates-Harbeck et al., Nature 2019). This example models a multi-branch
// diagnostic network over high-resolution sensor frames, asks each
// scheduler whether it meets a fixed deadline as the frame size grows, and
// reports the largest frame each scheduler can sustain.
//
// Run with: go run ./examples/plasma
package main

import (
	"fmt"
	"log"

	hios "github.com/shus-lab/hios"
)

// buildDiagnostic builds a three-branch CNN over a size x size sensor
// frame: a fast low-level branch, a deep feature branch and a wide
// context branch, fused for the control decision — the multi-branch
// pattern whose robustness the paper's introduction highlights.
func buildDiagnostic(size int) *hios.Net {
	g := hios.NewGraph(16, 20)
	util := func(frac float64) float64 { return frac }
	scale := float64(size*size) / (256 * 256) // workload grows with frame area

	in := g.AddOp(hios.Op{Name: "frame", Time: 0.02, Util: util(0.05)})

	// Branch 1: fast edge detector (small kernels, low utilization).
	e1 := g.AddOp(hios.Op{Name: "edge.conv1", Time: 0.25 * scale, Util: util(0.35)})
	e2 := g.AddOp(hios.Op{Name: "edge.conv2", Time: 0.30 * scale, Util: util(0.4)})

	// Branch 2: deep feature tower (large kernels, saturating).
	f1 := g.AddOp(hios.Op{Name: "feat.conv1", Time: 0.9 * scale, Util: util(0.95)})
	f2 := g.AddOp(hios.Op{Name: "feat.conv2", Time: 1.1 * scale, Util: util(0.95)})
	f3 := g.AddOp(hios.Op{Name: "feat.conv3", Time: 0.8 * scale, Util: util(0.9)})

	// Branch 3: wide context branch (pooled, medium workload).
	c1 := g.AddOp(hios.Op{Name: "ctx.pool", Time: 0.15 * scale, Util: util(0.25)})
	c2 := g.AddOp(hios.Op{Name: "ctx.conv", Time: 0.7 * scale, Util: util(0.8)})
	c3 := g.AddOp(hios.Op{Name: "ctx.attn", Time: 0.45 * scale, Util: util(0.6)})

	// Fusion and control head.
	fuse := g.AddOp(hios.Op{Name: "fuse.concat", Time: 0.1 * scale, Util: util(0.3)})
	h1 := g.AddOp(hios.Op{Name: "head.fc1", Time: 0.2, Util: util(0.3)})
	h2 := g.AddOp(hios.Op{Name: "head.fc2", Time: 0.1, Util: util(0.15)})

	comm := 0.08 * scale // transfer grows with tensor size
	g.AddEdge(in, e1, comm)
	g.AddEdge(e1, e2, comm)
	g.AddEdge(in, f1, comm)
	g.AddEdge(f1, f2, comm)
	g.AddEdge(f2, f3, comm)
	g.AddEdge(in, c1, comm)
	g.AddEdge(c1, c2, comm)
	g.AddEdge(c2, c3, comm)
	g.AddEdge(e2, fuse, comm/2)
	g.AddEdge(f3, fuse, comm/2)
	g.AddEdge(c3, fuse, comm/2)
	g.AddEdge(fuse, h1, 0.02)
	g.AddEdge(h1, h2, 0.01)
	if err := g.Finalize(); err != nil {
		log.Fatal(err)
	}
	return &hios.Net{Name: fmt.Sprintf("plasma-diagnostic-%d", size), G: g}
}

func main() {
	const deadlineMs = 12.0
	plat := hios.DualA40()
	algos := []hios.Algorithm{hios.Sequential, hios.IOS, hios.HIOSLP}

	fmt.Printf("plasma control deadline: %.1f ms per inference (batch 1)\n\n", deadlineMs)
	fmt.Printf("%-8s", "frame")
	for _, a := range algos {
		fmt.Printf("  %-18s", a)
	}
	fmt.Println()

	maxFrame := map[hios.Algorithm]int{}
	for _, size := range []int{256, 384, 512, 768, 1024} {
		net := buildDiagnostic(size)
		m := hios.DefaultCostModel(net.G)
		fmt.Printf("%-8d", size)
		for _, a := range algos {
			res, err := hios.Optimize(net.G, m, a, hios.Options{GPUs: plat.GPUs})
			if err != nil {
				log.Fatal(err)
			}
			verdict := "MISS"
			if res.Latency <= deadlineMs {
				verdict = "ok"
				if size > maxFrame[a] {
					maxFrame[a] = size
				}
			}
			fmt.Printf("  %7.2f ms %-5s", res.Latency, verdict)
		}
		fmt.Println()
	}

	fmt.Println("\nlargest frame meeting the deadline:")
	for _, a := range algos {
		if maxFrame[a] == 0 {
			fmt.Printf("  %-12s none\n", a)
			continue
		}
		fmt.Printf("  %-12s %dpx\n", a, maxFrame[a])
	}
	fmt.Println("\nHIOS-LP's multi-GPU parallelism sustains larger frames at the same")
	fmt.Println("deadline — the paper's motivation for hybrid inter-GPU scheduling.")
}
