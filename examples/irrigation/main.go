// Irrigation-mapping scenario: §II of the paper motivates HIOS with
// very-high-resolution satellite imagery — 5000x5000-pixel scenes that
// geoscientists must downsize to ~500x500 "for acceptable inference
// efficiency", losing fine detail. This example quantifies that exact
// trade-off on Inception-v3: for a fixed per-tile latency budget, what is
// the highest resolution each scheduler sustains, and how much resolution
// does multi-GPU scheduling buy back?
//
// Run with: go run ./examples/irrigation
package main

import (
	"fmt"
	"log"

	hios "github.com/shus-lab/hios"
)

func main() {
	const budgetMs = 12.0
	plat := hios.DualA40()
	resolutions := []int{299, 512, 768, 1024, 1536, 2048}
	algos := []hios.Algorithm{hios.Sequential, hios.IOS, hios.HIOSLP}

	fmt.Println("Satellite-tile classification with Inception-v3 (dual A40)")
	fmt.Printf("latency budget per tile: %.1f ms\n\n", budgetMs)
	fmt.Printf("%-8s", "pixels")
	for _, a := range algos {
		fmt.Printf("  %-16s", a)
	}
	fmt.Println("  peak-mem(LP)")

	maxRes := map[hios.Algorithm]int{}
	for _, r := range resolutions {
		net := hios.InceptionV3(plat, r)
		m := hios.DefaultCostModel(net.G)
		fmt.Printf("%-8d", r)
		var lpSchedule *hios.Schedule
		for _, a := range algos {
			res, err := hios.Optimize(net.G, m, a, hios.Options{GPUs: plat.GPUs})
			if err != nil {
				log.Fatal(err)
			}
			tr, err := hios.Simulate(net.G, m, res.Schedule, true)
			if err != nil {
				log.Fatal(err)
			}
			mark := " "
			if tr.Latency <= budgetMs {
				mark = "*"
				if r > maxRes[a] {
					maxRes[a] = r
				}
			}
			fmt.Printf("  %8.2fms %s   ", tr.Latency, mark)
			if a == hios.HIOSLP {
				lpSchedule = res.Schedule
			}
		}
		mem, err := hios.AnalyzeMemory(net.G, m, lpSchedule)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %6.1f MB\n", float64(mem.MaxPeak())/(1<<20))
	}

	fmt.Println("\n(* = within budget)")
	fmt.Println("\nhighest in-budget resolution:")
	for _, a := range algos {
		fmt.Printf("  %-12s %4d px", a, maxRes[a])
		if maxRes[a] > 0 && maxRes[hios.Sequential] > 0 {
			gain := float64(maxRes[a]*maxRes[a]) / float64(maxRes[hios.Sequential]*maxRes[hios.Sequential])
			fmt.Printf("  (%.1fx the sequential pixel count)", gain)
		}
		fmt.Println()
	}
	fmt.Println("\nHigher in-budget resolution means less destructive downsizing of the")
	fmt.Println("5000x5000 source scenes — the paper's §II motivation made concrete.")
}
