// Cluster scenario: the paper's introduction points beyond multi-GPU
// servers to "supercomputers and clusters [with] high-speed network
// interconnect among GPU compute nodes". On such platforms transfers are
// no longer uniform — intra-node NVLink is cheap, inter-node networking
// is several times slower — and a scheduler that knows the topology keeps
// chatty operator paths inside a node. This example compares
// topology-aware and topology-blind HIOS-LP on a 2-node x 2-GPU cluster
// as the inter-node penalty grows.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	hios "github.com/shus-lab/hios"
)

func main() {
	const nodes, perNode = 2, 2
	cfg := hios.RandomModelDefaults()
	cfg.Seed = 7
	g, err := hios.RandomModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	flat := hios.DefaultCostModel(g)

	// The topology-blind scheduler decides once, assuming a flat SMP.
	blind, err := hios.Optimize(g, flat, hios.HIOSLP, hios.Options{GPUs: nodes * perNode})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("random model (%d ops) on a %dx%d-GPU cluster\n\n", g.NumOps(), nodes, perNode)
	fmt.Printf("%-14s %16s %16s %10s\n", "inter-node x", "aware(ms)", "blind(ms)", "gain")
	for _, factor := range []float64{1, 2, 4, 8, 16} {
		topo := hios.WithTopology(flat, hios.TwoLevelTopology(nodes, perNode, factor))
		aware, err := hios.Optimize(g, topo, hios.HIOSLP, hios.Options{GPUs: nodes * perNode})
		if err != nil {
			log.Fatal(err)
		}
		blindLat, err := hios.Latency(g, topo, blind.Schedule)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14g %16.2f %16.2f %9.1f%%\n",
			factor, aware.Latency, blindLat, 100*(blindLat-aware.Latency)/blindLat)
	}

	fmt.Println("\nTopology-aware HIOS-LP reroutes paths to stay inside nodes as the")
	fmt.Println("inter-node penalty grows; the blind schedule pays it in full.")
}
