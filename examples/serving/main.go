// Serving scenario: the paper optimizes the latency of a single
// inference, but real-time systems serve a stream of them. A multi-GPU
// schedule pipelines naturally — each GPU moves to the next request as
// soon as its own stages are done — so the same HIOS-LP schedule that
// minimizes latency also lifts sustained throughput. This example
// contrasts latency and steady-state throughput for every scheduler on
// NASNet-A.
//
// Run with: go run ./examples/serving
package main

import (
	"fmt"
	"log"

	hios "github.com/shus-lab/hios"
)

func main() {
	plat := hios.DualA40()
	net := hios.NASNetA(plat, 512)
	m := hios.DefaultCostModel(net.G)

	fmt.Printf("NASNet-A @ 512px on %s: latency vs sustained throughput\n\n", plat.Name)
	fmt.Printf("%-14s %14s %16s %18s\n", "algorithm", "latency(ms)", "period(ms)", "throughput(req/s)")

	for _, a := range []hios.Algorithm{hios.Sequential, hios.IOS, hios.HIOSLP, hios.HIOSMR} {
		res, err := hios.Optimize(net.G, m, a, hios.Options{GPUs: plat.GPUs})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := hios.AnalyzePipeline(net.G, m, res.Schedule, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %14.3f %16.3f %18.1f\n", a, rep.LatencyMs, rep.SteadyPeriodMs, rep.ThroughputPerSec)
	}

	fmt.Println("\nThe steady-state period equals the bottleneck GPU's per-request busy")
	fmt.Println("time, so balanced multi-GPU placements raise throughput even when the")
	fmt.Println("single-request latency gain is modest.")
}
