// NASNet-A on a dual-A40 platform: the paper's branch-heavy stress
// benchmark (374 operators). This example dissects where HIOS-LP's gain
// comes from — the paper's Fig. 13 analysis — by comparing the full
// hierarchical scheduler against its inter-GPU-only half, and reports how
// operators and transfers were placed.
//
// Run with: go run ./examples/nasnet
package main

import (
	"fmt"
	"log"

	hios "github.com/shus-lab/hios"
)

func main() {
	plat := hios.DualA40()
	for _, size := range []int{331, 1024} {
		net := hios.NASNetA(plat, size)
		m := hios.DefaultCostModel(net.G)
		fmt.Printf("NASNet-A @ %dpx: %d operators, %d dependencies\n",
			size, net.G.NumOps(), net.G.NumEdges())

		seqRes, err := hios.Optimize(net.G, m, hios.Sequential, hios.Options{})
		if err != nil {
			log.Fatal(err)
		}
		interRes, err := hios.Optimize(net.G, m, hios.InterLP, hios.Options{GPUs: plat.GPUs})
		if err != nil {
			log.Fatal(err)
		}
		fullRes, err := hios.Optimize(net.G, m, hios.HIOSLP, hios.Options{GPUs: plat.GPUs})
		if err != nil {
			log.Fatal(err)
		}

		gainInter := seqRes.Latency - interRes.Latency
		gainFull := seqRes.Latency - fullRes.Latency
		fmt.Printf("  sequential:        %8.3f ms\n", seqRes.Latency)
		fmt.Printf("  inter-GPU LP only: %8.3f ms\n", interRes.Latency)
		fmt.Printf("  full HIOS-LP:      %8.3f ms\n", fullRes.Latency)
		if gainFull > 0 {
			fmt.Printf("  inter-GPU share of the gain: %.1f%% (paper: ~100%% for NASNet)\n",
				100*gainInter/gainFull)
		}

		// Placement statistics: how much of the graph crosses GPUs.
		place := fullRes.Schedule.Placement(net.G.NumOps())
		perGPU := make(map[int]int)
		cross := 0
		for v, gpu := range place {
			perGPU[gpu]++
			_ = v
		}
		for _, e := range net.G.Edges() {
			if place[e.From] != place[e.To] {
				cross++
			}
		}
		fmt.Printf("  placement: ")
		for gpu := 0; gpu < plat.GPUs; gpu++ {
			fmt.Printf("GPU%d=%d ops  ", gpu, perGPU[gpu])
		}
		fmt.Printf("(%d/%d dependencies cross GPUs)\n\n", cross, net.G.NumEdges())
	}
}
