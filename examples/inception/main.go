// Inception-v3 on a dual-A40 platform: the paper's first real-life
// benchmark (§VI-B). This example sweeps input image sizes — the paper's
// central variable, since high-resolution scientific imagery makes
// operators large — and shows where multi-GPU scheduling overtakes
// single-GPU IOS, then writes a chrome://tracing timeline of the best
// schedule.
//
// Run with: go run ./examples/inception
package main

import (
	"fmt"
	"log"
	"os"

	hios "github.com/shus-lab/hios"
)

func main() {
	plat := hios.DualA40()
	algos := []hios.Algorithm{hios.Sequential, hios.IOS, hios.HIOSLP, hios.HIOSMR}

	fmt.Printf("Inception-v3 on %d GPUs, latency in ms:\n\n", plat.GPUs)
	fmt.Printf("%-8s", "size")
	for _, a := range algos {
		fmt.Printf("  %-12s", a)
	}
	fmt.Println("  winner")

	for _, size := range []int{299, 512, 1024, 2048} {
		net := hios.InceptionV3(plat, size)
		m := hios.DefaultCostModel(net.G)
		fmt.Printf("%-8d", size)
		best, bestLat := hios.Algorithm(""), hios.Millis(0)
		for _, a := range algos {
			res, err := hios.Optimize(net.G, m, a, hios.Options{GPUs: plat.GPUs})
			if err != nil {
				log.Fatal(err)
			}
			// Measure on the simulated testbed, where concurrent
			// transfers share the single NVLink bridge.
			tr, err := hios.Simulate(net.G, m, res.Schedule, true)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12.3f", tr.Latency)
			if best == "" || tr.Latency < bestLat {
				best, bestLat = a, tr.Latency
			}
		}
		fmt.Printf("  %s\n", best)
	}

	// Export the 1024px HIOS-LP timeline for chrome://tracing.
	net := hios.InceptionV3(plat, 1024)
	m := hios.DefaultCostModel(net.G)
	res, err := hios.Optimize(net.G, m, hios.HIOSLP, hios.Options{GPUs: plat.GPUs})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := hios.Simulate(net.G, m, res.Schedule, true)
	if err != nil {
		log.Fatal(err)
	}
	data, err := hios.ChromeTrace(net.G, tr)
	if err != nil {
		log.Fatal(err)
	}
	const out = "inception-1024-hios-lp.trace.json"
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (open in chrome://tracing; simulated latency %.3f ms)\n", out, tr.Latency)
}
