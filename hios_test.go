package hios_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	hios "github.com/shus-lab/hios"
)

func quickGraph(t *testing.T) (*hios.Graph, hios.CostModel) {
	t.Helper()
	cfg := hios.RandomModelDefaults()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 30, 5, 60, 11
	g, err := hios.RandomModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, hios.DefaultCostModel(g)
}

func TestOptimizeAllAlgorithms(t *testing.T) {
	g, m := quickGraph(t)
	var latencies []hios.Millis
	for _, a := range hios.Algorithms() {
		res, err := hios.Optimize(g, m, a, hios.Options{GPUs: 2})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		lat, err := hios.Latency(g, m, res.Schedule)
		if err != nil {
			t.Fatalf("%s: schedule invalid: %v", a, err)
		}
		if lat != res.Latency {
			t.Fatalf("%s: reported %g != evaluated %g", a, res.Latency, lat)
		}
		latencies = append(latencies, lat)
	}
	// HIOS-LP (index 2) must beat sequential (index 0).
	if latencies[2] >= latencies[0] {
		t.Fatalf("HIOS-LP (%g) should beat sequential (%g)", latencies[2], latencies[0])
	}
}

func TestOptimizeUnknownAlgorithm(t *testing.T) {
	g, m := quickGraph(t)
	_, err := hios.Optimize(g, m, hios.Algorithm("bogus"), hios.Options{GPUs: 1})
	if !errors.Is(err, hios.ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want errors.Is(ErrUnknownAlgorithm)", err)
	}
	if !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("error should name the algorithm: %v", err)
	}
}

// Options.Validate is the single home of the option rules; every
// sentinel must be errors.Is-matchable through Optimize.
func TestOptionsValidate(t *testing.T) {
	g, m := quickGraph(t)
	cases := []struct {
		name string
		algo hios.Algorithm
		opt  hios.Options
		want error
	}{
		{"unknown algorithm", hios.Algorithm("nope"), hios.Options{}, hios.ErrUnknownAlgorithm},
		{"lp without gpus", hios.HIOSLP, hios.Options{}, hios.ErrNoGPUs},
		{"mr negative gpus", hios.HIOSMR, hios.Options{GPUs: -2}, hios.ErrNoGPUs},
		{"inter-lp without gpus", hios.InterLP, hios.Options{}, hios.ErrNoGPUs},
		{"inter-mr without gpus", hios.InterMR, hios.Options{}, hios.ErrNoGPUs},
		{"negative window", hios.HIOSLP, hios.Options{GPUs: 2, Window: -1}, hios.ErrBadWindow},
		{"negative ios max stage", hios.IOS, hios.Options{IOSMaxStage: -1}, hios.ErrBadIOSBound},
		{"negative ios prune window", hios.IOS, hios.Options{IOSPruneWindow: -3}, hios.ErrBadIOSBound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.opt.Validate(tc.algo); !errors.Is(err, tc.want) {
				t.Fatalf("Validate = %v, want errors.Is %v", err, tc.want)
			}
			if _, err := hios.Optimize(g, m, tc.algo, tc.opt); !errors.Is(err, tc.want) {
				t.Fatalf("Optimize = %v, want errors.Is %v", err, tc.want)
			}
		})
	}
	// Single-GPU algorithms must keep accepting the zero Options.
	for _, algo := range []hios.Algorithm{hios.Sequential, hios.IOS} {
		if err := (hios.Options{}).Validate(algo); err != nil {
			t.Fatalf("%s rejected zero Options: %v", algo, err)
		}
	}
	if err := (hios.Options{GPUs: 2}).Validate(hios.HIOSLP); err != nil {
		t.Fatalf("valid multi-GPU options rejected: %v", err)
	}
}

func TestWriteTraceFacades(t *testing.T) {
	g, m := quickGraph(t)
	res, err := hios.Optimize(g, m, hios.HIOSLP, hios.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var dot bytes.Buffer
	if err := hios.WriteDOT(&dot, g, res.Schedule); err != nil {
		t.Fatal(err)
	}
	if dot.String() != hios.DOT(g, res.Schedule) {
		t.Fatal("WriteDOT and DOT disagree")
	}
	tr, err := hios.Simulate(g, m, res.Schedule, true)
	if err != nil {
		t.Fatal(err)
	}
	var gantt bytes.Buffer
	if err := hios.WriteGantt(&gantt, g, tr, 40); err != nil {
		t.Fatal(err)
	}
	if gantt.String() != hios.Gantt(g, tr, 40) {
		t.Fatal("WriteGantt and Gantt disagree")
	}
}

func TestCustomGraphConstruction(t *testing.T) {
	g := hios.NewGraph(3, 2)
	a := g.AddOp(hios.Op{Name: "load", Time: 1, Util: 0.5})
	b := g.AddOp(hios.Op{Name: "conv", Time: 2, Util: 0.9})
	c := g.AddOp(hios.Op{Name: "fc", Time: 0.5, Util: 0.2})
	g.AddEdge(a, b, 0.1)
	g.AddEdge(b, c, 0.1)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	m := hios.DefaultCostModel(g)
	res, err := hios.Optimize(g, m, hios.HIOSLP, hios.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 3.5 {
		t.Fatalf("chain latency = %g, want 3.5", res.Latency)
	}
}

func TestBenchmarkBuilders(t *testing.T) {
	inc := hios.InceptionV3(hios.DualA40(), 299)
	if inc.G.NumOps() != 121 {
		t.Fatalf("inception ops = %d", inc.G.NumOps())
	}
	nas := hios.NASNetA(hios.DualA40(), 331)
	if nas.G.NumOps() != 374 {
		t.Fatalf("nasnet ops = %d", nas.G.NumOps())
	}
	sq := hios.SqueezeNet(hios.DualA40(), 224)
	if sq.G.NumOps() != 39 {
		t.Fatalf("squeezenet ops = %d", sq.G.NumOps())
	}
	rn := hios.ResNet50(hios.DualA40(), 224)
	if rn.G.NumOps() != 73 {
		t.Fatalf("resnet50 ops = %d", rn.G.NumOps())
	}
	rw, err := hios.RandWireNet(hios.DualA40(), hios.DefaultRandWire())
	if err != nil {
		t.Fatal(err)
	}
	if rw.G.NumOps() < 100 {
		t.Fatalf("randwire ops = %d", rw.G.NumOps())
	}
}

func TestMemoryFacade(t *testing.T) {
	net := hios.InceptionV3(hios.DualA40(), 299)
	m := hios.DefaultCostModel(net.G)
	res, err := hios.Optimize(net.G, m, hios.HIOSLP, hios.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hios.AnalyzeMemory(net.G, m, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxPeak() <= 0 {
		t.Fatal("Inception should occupy device memory")
	}
	if !rep.Fits(48 << 30) {
		t.Fatalf("peak %d should fit an A40", rep.MaxPeak())
	}
}

// TestResNetIsTheControlCase: the near-chain ResNet-50 should gain almost
// nothing from multi-GPU scheduling — the dependency chain binds every
// scheduler. This validates that HIOS's wins on Inception/NASNet come
// from real branch-level parallelism, not an artifact of the cost model.
func TestResNetIsTheControlCase(t *testing.T) {
	net := hios.ResNet50(hios.DualA40(), 224)
	m := hios.DefaultCostModel(net.G)
	sq, err := hios.Optimize(net.G, m, hios.Sequential, hios.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := hios.Optimize(net.G, m, hios.HIOSLP, hios.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sp := sq.Latency / lp.Latency; sp > 1.3 {
		t.Fatalf("ResNet speedup %g implausibly high for a chain", sp)
	}
	if lp.Latency > sq.Latency+1e-9 {
		t.Fatalf("HIOS-LP (%g) worse than sequential (%g) on ResNet", lp.Latency, sq.Latency)
	}
}

func TestSimulateMatchesEvaluate(t *testing.T) {
	g, m := quickGraph(t)
	res, err := hios.Optimize(g, m, hios.HIOSLP, hios.Options{GPUs: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := hios.Simulate(g, m, res.Schedule, false)
	if err != nil {
		t.Fatal(err)
	}
	if diff := tr.Latency - res.Latency; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("simulated %g != evaluated %g", tr.Latency, res.Latency)
	}
	// Serialized links can only slow things down.
	tr2, err := hios.Simulate(g, m, res.Schedule, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Latency < tr.Latency-1e-9 {
		t.Fatalf("serialized links sped up the schedule: %g < %g", tr2.Latency, tr.Latency)
	}
}

func TestExecuteProducesReferenceResults(t *testing.T) {
	g, m := quickGraph(t)
	res, err := hios.Optimize(g, m, hios.HIOSMR, hios.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hios.Execute(g, m, res.Schedule, hios.ExecOptions{WorkPerMs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outputs) != g.NumOps() {
		t.Fatalf("outputs = %d, want %d", len(rep.Outputs), g.NumOps())
	}
}

func TestJSONRoundTripAndChromeTrace(t *testing.T) {
	g, m := quickGraph(t)
	res, err := hios.Optimize(g, m, hios.HIOSLP, hios.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := hios.ExportJSON(g, res.Schedule, "random-30", hios.HIOSLP, res.Latency)
	if err != nil {
		t.Fatal(err)
	}
	back, err := hios.ImportJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := hios.Latency(g, m, back)
	if err != nil || lat != res.Latency {
		t.Fatalf("round trip: %g vs %g (%v)", lat, res.Latency, err)
	}
	tr, err := hios.Simulate(g, m, res.Schedule, true)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := hios.ChromeTrace(g, tr)
	if err != nil || len(ct) == 0 {
		t.Fatalf("chrome trace: %v", err)
	}
}

func TestProfiledFacade(t *testing.T) {
	g, m := quickGraph(t)
	pm := hios.Profiled(m, 0, 0)
	if _, err := hios.Optimize(g, pm, hios.HIOSLP, hios.Options{GPUs: 2}); err != nil {
		t.Fatal(err)
	}
	st := pm.Stats()
	if st.Probes() == 0 || st.SimulatedMs <= 0 {
		t.Fatalf("profiling accounting empty: %+v", st)
	}
	// Every operator must have been measured at least once.
	if st.OpProbes != g.NumOps() {
		t.Fatalf("op probes = %d, want %d", st.OpProbes, g.NumOps())
	}
}

func TestGanttFacade(t *testing.T) {
	g, m := quickGraph(t)
	res, err := hios.Optimize(g, m, hios.HIOSLP, hios.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := hios.Simulate(g, m, res.Schedule, true)
	if err != nil {
		t.Fatal(err)
	}
	out := hios.Gantt(g, tr, 40)
	if !strings.Contains(out, "GPU0") {
		t.Fatalf("gantt output: %q", out)
	}
}

func TestTopologyFacade(t *testing.T) {
	g, m := quickGraph(t)
	topo := hios.WithTopology(m, hios.TwoLevelTopology(2, 2, 8))
	res, err := hios.Optimize(g, topo, hios.HIOSLP, hios.Options{GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The schedule must evaluate identically under the same topology
	// model, and a uniform topology must agree with the flat model.
	lat, err := hios.Latency(g, topo, res.Schedule)
	if err != nil || lat != res.Latency {
		t.Fatalf("topology latency mismatch: %g vs %g (%v)", lat, res.Latency, err)
	}
	uni := hios.WithTopology(m, hios.UniformTopology(4))
	flat, err := hios.Optimize(g, m, hios.HIOSLP, hios.Options{GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	uniRes, err := hios.Optimize(g, uni, hios.HIOSLP, hios.Options{GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Latency != uniRes.Latency {
		t.Fatalf("uniform topology changed the result: %g vs %g", flat.Latency, uniRes.Latency)
	}
}

func TestPipelineFacade(t *testing.T) {
	g, m := quickGraph(t)
	res, err := hios.Optimize(g, m, hios.HIOSLP, hios.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hios.AnalyzePipeline(g, m, res.Schedule, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatencyMs != res.Latency {
		t.Fatalf("pipeline request-0 latency %g != schedule latency %g", rep.LatencyMs, res.Latency)
	}
	if rep.SteadyPeriodMs <= 0 || rep.SteadyPeriodMs > rep.LatencyMs+1e-9 {
		t.Fatalf("period %g out of (0, latency]", rep.SteadyPeriodMs)
	}
}

func TestParallelizeFacade(t *testing.T) {
	g, m := quickGraph(t)
	res, err := hios.Optimize(g, m, hios.InterLP, hios.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	better, err := hios.Parallelize(g, m, res.Schedule, 4)
	if err != nil {
		t.Fatal(err)
	}
	if better.Latency > res.Latency+1e-9 {
		t.Fatalf("Parallelize increased latency: %g -> %g", res.Latency, better.Latency)
	}
}

func TestProfileSnapshotFacade(t *testing.T) {
	g, m := quickGraph(t)
	pm := hios.Profiled(m, 1, 1)
	live, err := hios.Optimize(g, pm, hios.HIOSLP, hios.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := pm.Export("quick")
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := hios.ImportProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := hios.Optimize(g, frozen, hios.HIOSLP, hios.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Latency != live.Latency || frozen.Misses() != 0 {
		t.Fatalf("frozen replay diverged: %g vs %g (%d misses)",
			replay.Latency, live.Latency, frozen.Misses())
	}
}
