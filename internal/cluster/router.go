package cluster

import (
	"github.com/shus-lab/hios/internal/serve"
	"github.com/shus-lab/hios/internal/units"
)

// RouterPolicy selects how the gateway picks a node for each admitted
// request.
type RouterPolicy string

const (
	// RouterLeastLoad routes to the node with the fewest outstanding
	// requests (queued plus in service) per live replica of the target
	// deployment, ties broken by node index. This is the classic
	// least-outstanding-requests gateway policy.
	RouterLeastLoad RouterPolicy = "least-load"
	// RouterWeighted routes to the node with the lowest estimated
	// finish score: the queue-drain estimate plus the platform latency,
	// scaled by the platform's relative cost rate. Cheap slow nodes win
	// when lightly loaded; fast expensive nodes win under pressure.
	RouterWeighted RouterPolicy = "weighted"
	// RouterAffinity pins each tenant to a preferred node (a
	// deterministic hash of the tenant index over the fleet) for cache
	// and session locality, falling back to least-load routing when the
	// preferred node's queue grows past 4 requests per live replica.
	RouterAffinity RouterPolicy = "affinity"
	// RouterRandom routes uniformly at random (seeded); the baseline the
	// informed policies are measured against.
	RouterRandom RouterPolicy = "random"
)

// RouterRegistry enumerates the router policies. RouterPolicies,
// Options.Validate and the CLI usage text all read from here, mirroring
// the single-node dispatch registry (serve.Registry).
var RouterRegistry = serve.PolicyRegistry[RouterPolicy]{
	{Policy: RouterLeastLoad, Usage: "fewest outstanding requests per live replica"},
	{Policy: RouterWeighted, Usage: "lowest latency estimate weighted by platform cost"},
	{Policy: RouterAffinity, Usage: "per-tenant preferred node, least-load fallback"},
	{Policy: RouterRandom, Usage: "uniform random node (baseline)"},
}

// RouterPolicies lists every implemented router policy, enumerated from
// RouterRegistry.
func RouterPolicies() []RouterPolicy { return RouterRegistry.Policies() }

// RouterUsage renders the router policies as a flag usage string.
func RouterUsage() string { return RouterRegistry.Usage() }

// route selects the node for a request of tenant ti on deployment di.
// Pure function of engine state and the seeded router RNG stream, so
// routing decisions replay identically for a given Options.
func (e *engine) route(ti, di int) int {
	switch e.o.Router {
	case RouterWeighted:
		return e.routeWeighted(di)
	case RouterAffinity:
		pref := e.aff[ti]
		p := &e.nodes[pref].pools[di]
		if p.queue.Len() < 4*p.live {
			return pref
		}
		return e.routeLeastLoad(di)
	case RouterRandom:
		return e.rng.Intn(len(e.nodes))
	default: // least-load
		return e.routeLeastLoad(di)
	}
}

// routeLeastLoad minimizes (queued + in-service) / live over nodes with
// integer cross-multiplication — no float division, exact ties broken by
// node index.
func (e *engine) routeLeastLoad(di int) int {
	best := 0
	p := &e.nodes[0].pools[di]
	bn, bd := p.outstanding(), p.live
	for ni := 1; ni < len(e.nodes); ni++ {
		p := &e.nodes[ni].pools[di]
		n, d := p.outstanding(), p.live
		if n*bd < bn*d {
			best, bn, bd = ni, n, d
		}
	}
	return best
}

// routeWeighted minimizes cost * (drain estimate + latency): the queued
// work drains one request per live replica every Period, and the request
// itself then takes Latency on its platform.
func (e *engine) routeWeighted(di int) int {
	best, bestScore := 0, e.weightedScore(0, di)
	for ni := 1; ni < len(e.nodes); ni++ {
		if s := e.weightedScore(ni, di); s < bestScore {
			best, bestScore = ni, s
		}
	}
	return best
}

func (e *engine) weightedScore(ni, di int) units.Millis {
	nd := &e.nodes[ni]
	p := &nd.pools[di]
	drain := p.prof.Period.Scale(float64(p.outstanding()) / float64(p.live))
	return (drain + p.prof.Latency).Scale(nd.preset.Cost)
}
