package cluster

import "testing"

// BenchmarkClusterServe is the gated allocation benchmark of the cluster
// dispatch hot path: a six-node heterogeneous fleet, two open-loop
// tenants at 2x aggregate capacity, least-load routing, full admission
// control and the autoscaler on — every event kind the engine has is
// exercised. Tracked in BENCH_seed.json under the hios-benchdiff gate.
func BenchmarkClusterServe(b *testing.B) {
	opt := Options{
		Fleet: FleetSpec{Nodes: []NodeSpec{
			{Platform: "a40", Count: 2, Replicas: 2},
			{Platform: "a5500", Count: 2, Replicas: 2},
			{Platform: "v100s", Count: 2, Replicas: 2},
		}},
		Deployments: []Deployment{testDeployment()},
		Tenants: []Tenant{
			{Name: "web", Model: 0, Deadline: 20, Rate: 4000},
			{Name: "batch", Model: 0, Deadline: 100, Rate: 2000},
		},
		Router:     RouterLeastLoad,
		Admission:  Admission{RatePerSec: 5000, Burst: 64, MaxQueue: 256, ShedHopeless: true},
		Autoscaler: AutoscalerOptions{Enabled: true, MaxReplicas: 4},
		Horizon:    1000,
		Seed:       7,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(opt); err != nil {
			b.Fatal(err)
		}
	}
}
