// Package cluster is the fleet-scale serving control plane of the HIOS
// reproduction: a deterministic discrete-event simulator of many
// heterogeneous GPU nodes serving deadline-aware multi-tenant traffic
// behind one gateway.
//
// internal/serve answers the single-node question — one deployment of
// identical replicas, one dispatch queue. A production cluster answers
// three more (the aibrix / kthena architecture split): which node should
// a request run on (the *router*), how many replicas should each node
// hold (the *autoscaler*), and which requests should never be admitted
// at all (gateway *admission control*). This package models exactly
// those three components over a fleet of nodes built from the paper's
// platform presets (A40, A5500, V100S) — the same model is scheduled by
// HIOS-LP/MR per platform, so a V100S node serves the same deployment
// with a different latency/period profile than an A40 node, and the
// router's cost/latency tradeoff is real.
//
// The simulator obeys the repository's determinism contract (DESIGN.md
// §7, §9, §14): no wall clock, no global RNG; arrivals draw from
// rand.Rand streams seeded via stats.MixSeed, events are totally ordered
// by (time, sequence) on the serve.EventHeap, and every report slice is
// emitted in deterministic order — the same Options always render a
// byte-identical Report.
package cluster

import (
	"errors"
	"fmt"

	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/serve"
	"github.com/shus-lab/hios/internal/units"
)

// Tenant is one request class sharing the cluster: an arrival process
// plus a relative deadline. Identical to the single-node serving layer's
// tenant; Model indexes Options.Deployments.
type Tenant = serve.Tenant

// Preset couples a fleet platform key with the paper's dual-GPU testbed
// it provisions and a relative cost rate — the price of keeping one node
// of that platform running, in arbitrary cost units, which the weighted
// router and the report's cost accounting use. The rates follow typical
// cloud pricing order: the A40 node is the fastest and most expensive,
// the V100S the slowest and cheapest.
type Preset struct {
	// Key names the platform in NodeSpec.Platform ("a40", ...).
	Key string
	// Platform is the device + interconnect + GPU count preset.
	Platform gpu.Platform
	// Cost is the relative cost rate of one node.
	Cost float64
}

// Presets lists the fleet platform presets, in declaration order. The
// keys are the vocabulary of NodeSpec.Platform and Profile.Platform.
func Presets() []Preset {
	return []Preset{
		{Key: "a40", Platform: gpu.DualA40(), Cost: 1.0},
		{Key: "a5500", Platform: gpu.DualA5500(), Cost: 0.8},
		{Key: "v100s", Platform: gpu.DualV100S(), Cost: 0.45},
	}
}

// PresetByKey returns the named preset and whether it exists.
func PresetByKey(key string) (Preset, bool) {
	for _, p := range Presets() {
		if p.Key == key {
			return p, true
		}
	}
	return Preset{}, false
}

// PresetKeys returns the valid platform keys, in declaration order.
func PresetKeys() []string {
	ps := Presets()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Key
	}
	return out
}

// Sentinel errors of the Validate methods, all errors.Is-matchable.
var (
	// ErrNoNodes reports a FleetSpec with no nodes.
	ErrNoNodes = errors.New("cluster: fleet has no nodes")
	// ErrUnknownPlatform reports a platform key outside PresetKeys.
	ErrUnknownPlatform = errors.New("cluster: unknown platform preset")
	// ErrBadNode reports a NodeSpec with a negative count or replica
	// count.
	ErrBadNode = errors.New("cluster: bad node spec")
	// ErrNoDeployments reports an Options with no deployments.
	ErrNoDeployments = errors.New("cluster: no deployments")
	// ErrBadDeployment reports a Deployment with a structurally invalid
	// profile (nonpositive latency or period, period above latency).
	ErrBadDeployment = errors.New("cluster: bad deployment")
	// ErrMissingProfile reports a Deployment lacking a serving profile
	// for a platform present in the fleet.
	ErrMissingProfile = errors.New("cluster: deployment lacks a profile for a fleet platform")
	// ErrNoTenants reports an Options with no tenants.
	ErrNoTenants = errors.New("cluster: no tenants")
	// ErrBadTenant reports a structurally invalid tenant (same rules as
	// the single-node serving layer).
	ErrBadTenant = errors.New("cluster: bad tenant")
	// ErrUnknownRouterPolicy reports a RouterPolicy outside the registry.
	ErrUnknownRouterPolicy = errors.New("cluster: unknown router policy")
	// ErrBadAdmission reports a negative admission-control parameter.
	ErrBadAdmission = errors.New("cluster: bad admission options")
	// ErrBadAutoscaler reports inconsistent autoscaler options.
	ErrBadAutoscaler = errors.New("cluster: bad autoscaler options")
	// ErrBadHorizon reports a negative arrival horizon.
	ErrBadHorizon = errors.New("cluster: bad horizon")
)

// NodeSpec declares a group of identical nodes in a fleet.
type NodeSpec struct {
	// Platform is the preset key ("a40", "a5500", "v100s").
	Platform string
	// Count is the number of identical nodes of this group (0 = 1).
	Count int
	// Replicas is the initial replica count each node holds per
	// deployment (0 = 1). The autoscaler moves it at runtime.
	Replicas int
}

// FleetSpec declares a heterogeneous fleet: groups of nodes per
// platform preset, flattened in declaration order.
type FleetSpec struct {
	// Nodes lists the node groups. Required.
	Nodes []NodeSpec
}

// Validate reports the first structural violation of the fleet spec
// with an errors.Is-matchable sentinel.
func (f FleetSpec) Validate() error {
	if len(f.Nodes) == 0 {
		return ErrNoNodes
	}
	for i, n := range f.Nodes {
		if _, ok := PresetByKey(n.Platform); !ok {
			return fmt.Errorf("%w %q at node group %d (want one of %v)", ErrUnknownPlatform, n.Platform, i, PresetKeys())
		}
		if n.Count < 0 || n.Replicas < 0 {
			return fmt.Errorf("%w: group %d (%s) has count %d, replicas %d", ErrBadNode, i, n.Platform, n.Count, n.Replicas)
		}
	}
	return nil
}

// NumNodes returns the flattened node count (zero counts default to 1).
func (f FleetSpec) NumNodes() int {
	total := 0
	for _, n := range f.Nodes {
		c := n.Count
		if c == 0 {
			c = 1
		}
		total += c
	}
	return total
}

// Platforms returns the distinct platform keys of the fleet in first-
// appearance order.
func (f FleetSpec) Platforms() []string {
	var out []string
	for _, n := range f.Nodes {
		seen := false
		for _, k := range out {
			if k == n.Platform {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, n.Platform)
		}
	}
	return out
}

// Profile is one deployment's serving characteristics on one platform:
// the latency and steady-state admission period of the HIOS schedule
// computed for that platform's devices, plus the total GPU busy time one
// request adds to a replica (utilization and cost accounting).
type Profile struct {
	// Platform is the preset key this profile was scheduled for.
	Platform string
	// Latency is the single-request completion time on an idle replica.
	Latency units.Millis
	// Period is the steady-state admission interval (<= Latency).
	Period units.Millis
	// Busy is the total per-request GPU busy time across the replica's
	// devices (0 = Latency is charged instead).
	Busy units.Millis
}

// ProfileOf converts a single-node serving model derived for the given
// platform (serve.NewModel on a schedule computed with that platform's
// cost model) into a cluster profile.
func ProfileOf(platform string, m serve.Model) Profile {
	var busy units.Millis
	for _, b := range m.GPUBusy {
		busy += b
	}
	return Profile{Platform: platform, Latency: m.Latency, Period: m.Period, Busy: busy}
}

// Deployment is one model served fleet-wide: a name plus one serving
// profile per platform the fleet provisions.
type Deployment struct {
	// Name labels the deployment in reports.
	Name string
	// Profiles holds one Profile per platform, in any order; Validate
	// requires one for every platform in the fleet.
	Profiles []Profile
}

// profile returns the deployment's profile for the platform key.
func (d Deployment) profile(platform string) (Profile, bool) {
	for _, p := range d.Profiles {
		if p.Platform == platform {
			return p, true
		}
	}
	return Profile{}, false
}

// Admission configures gateway admission control. The zero value admits
// everything: both mechanisms are opt-in.
type Admission struct {
	// RatePerSec, when positive, enables a token bucket at the gateway:
	// requests are admitted at this sustained rate with Burst headroom;
	// a request arriving to an empty bucket is shed immediately.
	RatePerSec float64
	// Burst is the token-bucket capacity (0 = 16 when the bucket is
	// enabled).
	Burst int
	// MaxQueue, when positive, sheds an arrival when the cluster-wide
	// queued-request count is already at or above it (queue-depth
	// shedding).
	MaxQueue int
	// ShedHopeless additionally sheds a queued request at dispatch time
	// when even an immediate start provably misses its deadline, as the
	// single-node edf-shed policy does.
	ShedHopeless bool
}

// Validate reports negative admission parameters.
func (a Admission) Validate() error {
	if a.RatePerSec < 0 || a.Burst < 0 || a.MaxQueue < 0 {
		return fmt.Errorf("%w: rate %g, burst %d, max-queue %d", ErrBadAdmission, a.RatePerSec, a.Burst, a.MaxQueue)
	}
	return nil
}

// Options configures one cluster simulation. Zero values of optional
// fields select documented defaults; Validate reports structural
// violations with errors.Is-matchable sentinels.
type Options struct {
	// Fleet declares the nodes. Required.
	Fleet FleetSpec
	// Deployments lists the served models with their per-platform
	// profiles. Required.
	Deployments []Deployment
	// Tenants lists the request classes; Tenant.Model indexes
	// Deployments. Required.
	Tenants []Tenant
	// Router selects the routing policy. Empty selects least-load.
	Router RouterPolicy
	// Admission configures the gateway (zero value admits everything).
	Admission Admission
	// Autoscaler configures replica scaling (zero value disables it).
	Autoscaler AutoscalerOptions
	// Horizon is the arrival window: no request arrives at or after this
	// time, and the simulation runs until everything admitted drains.
	// Zero selects 1000 ms.
	Horizon units.Millis
	// Seed seeds the arrival processes and the random router. Zero
	// selects 1.
	Seed int64
}

// fill normalizes the defaulted fields on a private copy. Slices that
// defaulting mutates are copied so the caller's values never change.
func (o *Options) fill() {
	if o.Router == "" {
		o.Router = RouterLeastLoad
	}
	// Validate already rejected negatives, so <= 0 means "unset".
	if o.Horizon <= 0 {
		o.Horizon = units.Millis(1000)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Admission.RatePerSec > 0 && o.Admission.Burst == 0 {
		o.Admission.Burst = 16
	}
	nodes := make([]NodeSpec, len(o.Fleet.Nodes))
	copy(nodes, o.Fleet.Nodes)
	for i := range nodes {
		if nodes[i].Count == 0 {
			nodes[i].Count = 1
		}
		if nodes[i].Replicas == 0 {
			nodes[i].Replicas = 1
		}
	}
	o.Fleet.Nodes = nodes
	o.Autoscaler.fill()
}

// Validate checks the configuration, returning the first violation
// wrapped around one of the package sentinels. Zero values with
// documented defaults are valid.
func (o Options) Validate() error {
	if err := o.Fleet.Validate(); err != nil {
		return err
	}
	if len(o.Deployments) == 0 {
		return ErrNoDeployments
	}
	platforms := o.Fleet.Platforms()
	for di, d := range o.Deployments {
		for _, p := range d.Profiles {
			if _, ok := PresetByKey(p.Platform); !ok {
				return fmt.Errorf("%w %q in deployment %d (%s)", ErrUnknownPlatform, p.Platform, di, d.Name)
			}
			if p.Latency <= 0 || p.Period <= 0 {
				return fmt.Errorf("%w: deployment %d (%s) on %s needs positive latency and period", ErrBadDeployment, di, d.Name, p.Platform)
			}
			if p.Period > p.Latency {
				return fmt.Errorf("%w: deployment %d (%s) on %s has period %g above latency %g",
					ErrBadDeployment, di, d.Name, p.Platform, float64(p.Period), float64(p.Latency))
			}
			if p.Busy < 0 {
				return fmt.Errorf("%w: deployment %d (%s) on %s has negative busy time", ErrBadDeployment, di, d.Name, p.Platform)
			}
		}
		for _, plat := range platforms {
			if _, ok := d.profile(plat); !ok {
				return fmt.Errorf("%w: deployment %d (%s) has no profile for %s", ErrMissingProfile, di, d.Name, plat)
			}
		}
	}
	if len(o.Tenants) == 0 {
		return ErrNoTenants
	}
	for i, t := range o.Tenants {
		if t.Model < 0 || t.Model >= len(o.Deployments) {
			return fmt.Errorf("%w: tenant %d (%s) references deployment %d of %d", ErrBadTenant, i, t.Name, t.Model, len(o.Deployments))
		}
		if t.Deadline <= 0 {
			return fmt.Errorf("%w: tenant %d (%s) needs a positive deadline", ErrBadTenant, i, t.Name)
		}
		if t.Rate < 0 || t.Clients < 0 || t.Think < 0 {
			return fmt.Errorf("%w: tenant %d (%s) has a negative rate, client count or think time", ErrBadTenant, i, t.Name)
		}
		open, closed := t.Rate > 0, t.Clients > 0
		if open == closed {
			return fmt.Errorf("%w: tenant %d (%s) must be exactly one of open-loop (Rate > 0) or closed-loop (Clients > 0)", ErrBadTenant, i, t.Name)
		}
	}
	if o.Router != "" && !RouterRegistry.Valid(o.Router) {
		return fmt.Errorf("%w %q (want one of %v)", ErrUnknownRouterPolicy, string(o.Router), RouterPolicies())
	}
	if err := o.Admission.Validate(); err != nil {
		return err
	}
	if err := o.Autoscaler.Validate(); err != nil {
		return err
	}
	if o.Horizon < 0 {
		return fmt.Errorf("%w: %g ms", ErrBadHorizon, float64(o.Horizon))
	}
	return nil
}

// Capacity returns the fleet's maximum sustainable throughput for the
// deployment in requests per second at the initial replica counts: each
// node admits Replicas requests every platform Period.
func (o Options) Capacity(dep int) float64 {
	if dep < 0 || dep >= len(o.Deployments) {
		return 0
	}
	total := 0.0
	for _, n := range o.Fleet.Nodes {
		p, ok := o.Deployments[dep].profile(n.Platform)
		if !ok || p.Period <= 0 {
			continue
		}
		count, reps := n.Count, n.Replicas
		if count == 0 {
			count = 1
		}
		if reps == 0 {
			reps = 1
		}
		total += float64(count*reps) * 1e3 / float64(p.Period)
	}
	return total
}
