package cluster

import (
	"fmt"
	"io"
	"sort"

	"github.com/shus-lab/hios/internal/serve"
	"github.com/shus-lab/hios/internal/stats"
	"github.com/shus-lab/hios/internal/units"
)

// Report summarizes one cluster simulation: SLO attainment, goodput,
// tail latency, per-tenant and per-pool breakdowns, the scaling
// timeline, and replica-time cost. All slices are in deterministic
// order, so the same Options always render a byte-identical Report.
type Report struct {
	// Router is the routing policy that produced this report.
	Router RouterPolicy
	// Horizon is the (filled) arrival window; Makespan is when the last
	// event fired.
	Horizon  units.Millis
	Makespan units.Millis
	// Offered counts every request that arrived at the gateway; Admitted
	// the ones admission control let through; Completed the ones that ran
	// to completion; SLOMet the completions within deadline; Shed the
	// gateway drops plus the hopeless dispatch-time drops.
	Offered   int
	Admitted  int
	Completed int
	SLOMet    int
	Shed      int
	// Attainment is SLOMet/Offered (1 when nothing was offered).
	Attainment float64
	// GoodputPerSec is deadline-meeting completions per second of
	// makespan.
	GoodputPerSec float64
	// P50/P95/P99/Max summarize the response-time distribution over
	// completed requests.
	P50, P95, P99, Max units.Millis
	// Events is the number of simulation events processed — the figure
	// sweeps assert their per-cell event floor against it.
	Events int64
	// CostUnits is the fleet's replica-time cost: for every pool,
	// replica-seconds integrated over the run times the platform's
	// relative cost rate, summed.
	CostUnits float64
	// Tenants breaks the counters down per tenant, in Options order.
	Tenants []serve.TenantReport
	// Nodes reports each (node, deployment) pool, in node order then
	// deployment order.
	Nodes []NodeReport
	// Scales is the autoscaler's decision timeline, in event order.
	Scales []ScaleEvent
	// Queue is the cluster-wide queued-request depth over time.
	Queue []serve.QueuePoint
}

// NodeReport is one (node, deployment) replica pool's slice of the
// cluster report.
type NodeReport struct {
	// Node is the flattened node index; Platform its preset key;
	// Deployment the served model's name.
	Node       int
	Platform   string
	Deployment string
	// Starts is how many requests the pool admitted; Replicas its final
	// live count; Peak the highest live count reached.
	Starts   int
	Replicas int
	Peak     int
	// Busy is the total GPU busy time the pool's starts induced; Util is
	// Busy over the pool's integrated replica-time (busy fraction of the
	// capacity that actually existed).
	Busy units.Millis
	Util float64
	// Cost is the pool's replica-seconds times the platform cost rate.
	Cost float64
}

// ScaleEvent is one autoscaler decision.
type ScaleEvent struct {
	// T is the decision time; Node and Deployment identify the pool.
	T          units.Millis
	Node       int
	Deployment int
	// From and To are the live replica counts before and after. A
	// scale-down may take effect lazily (when every replica is busy, the
	// next freed replica retires), but the decision is recorded here.
	From int
	To   int
}

// report assembles the Report from the drained engine state.
func (e *engine) report(makespan units.Millis) *Report {
	r := &Report{
		Router:   e.o.Router,
		Horizon:  e.o.Horizon,
		Makespan: makespan,
		Events:   e.popped,
		Tenants:  make([]serve.TenantReport, len(e.o.Tenants)),
		Scales:   e.scales,
		Queue:    e.points,
	}
	for ti, t := range e.o.Tenants {
		r.Tenants[ti] = serve.TenantReport{Name: t.Name, Model: t.Model}
	}

	var all []float64
	per := make([][]float64, len(e.o.Tenants))
	for i := range e.reqs {
		req := &e.reqs[i]
		tr := &r.Tenants[req.tenant]
		r.Offered++
		tr.Offered++
		switch req.state {
		case stShedGateway:
			r.Shed++
			tr.Shed++
		case stShedHopeless:
			r.Admitted++
			r.Shed++
			tr.Shed++
		case stDone:
			r.Admitted++
			r.Completed++
			tr.Completed++
			if req.finish <= req.deadline {
				r.SLOMet++
				tr.SLOMet++
			}
			resp := float64(req.finish - req.arrive)
			all = append(all, resp)
			per[req.tenant] = append(per[req.tenant], resp)
		}
	}

	r.Attainment = attainment(r.SLOMet, r.Offered)
	if makespan > 0 {
		r.GoodputPerSec = float64(r.SLOMet) * 1e3 / float64(makespan)
	}
	sort.Float64s(all)
	r.P50 = units.Millis(stats.Percentile(all, 50))
	r.P95 = units.Millis(stats.Percentile(all, 95))
	r.P99 = units.Millis(stats.Percentile(all, 99))
	r.Max = units.Millis(stats.Max(all))
	if len(all) == 0 {
		r.Max = 0
	}
	for ti := range r.Tenants {
		tr := &r.Tenants[ti]
		tr.Attainment = attainment(tr.SLOMet, tr.Offered)
		sort.Float64s(per[ti])
		tr.P50 = units.Millis(stats.Percentile(per[ti], 50))
		tr.P95 = units.Millis(stats.Percentile(per[ti], 95))
		tr.P99 = units.Millis(stats.Percentile(per[ti], 99))
	}

	for ni := range e.nodes {
		nd := &e.nodes[ni]
		for di := range nd.pools {
			p := &nd.pools[di]
			p.setLive(p.live, makespan) // close the replica-time integral
			busy := p.prof.Busy.Scale(float64(p.starts))
			util := 0.0
			if p.replicaMs > 0 {
				util = busy.Ratio(p.replicaMs)
			}
			cost := float64(p.replicaMs.Seconds()) * nd.preset.Cost
			r.CostUnits += cost
			r.Nodes = append(r.Nodes, NodeReport{
				Node:       ni,
				Platform:   nd.preset.Key,
				Deployment: e.o.Deployments[di].Name,
				Starts:     p.starts,
				Replicas:   p.live,
				Peak:       p.peak,
				Busy:       busy,
				Util:       util,
				Cost:       cost,
			})
		}
	}
	return r
}

func attainment(met, offered int) float64 {
	if offered == 0 {
		return 1
	}
	return float64(met) / float64(offered)
}

// Render writes a human-readable summary. The output is deterministic
// for a given Report.
func (r *Report) Render(w io.Writer) error {
	pf := func(format string, args ...any) (err error) {
		_, err = fmt.Fprintf(w, format, args...)
		return
	}
	if err := pf("router %s  horizon %.2f ms  makespan %.2f ms  events %d\n",
		r.Router, float64(r.Horizon), float64(r.Makespan), r.Events); err != nil {
		return err
	}
	if err := pf("offered %d  admitted %d  completed %d  slo-met %d  shed %d  attainment %.4f  goodput %.2f req/s  cost %.2f\n",
		r.Offered, r.Admitted, r.Completed, r.SLOMet, r.Shed, r.Attainment, r.GoodputPerSec, r.CostUnits); err != nil {
		return err
	}
	if err := pf("latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  max %.3f ms\n",
		float64(r.P50), float64(r.P95), float64(r.P99), float64(r.Max)); err != nil {
		return err
	}
	for _, t := range r.Tenants {
		if err := pf("tenant %-12s model %d  offered %4d  met %4d  shed %4d  attainment %.4f  p99 %.3f ms\n",
			t.Name, t.Model, t.Offered, t.SLOMet, t.Shed, t.Attainment, float64(t.P99)); err != nil {
			return err
		}
	}
	for _, n := range r.Nodes {
		if err := pf("node %d/%s  %s  starts %4d  replicas %d (peak %d)  util %.3f  cost %.2f\n",
			n.Node, n.Platform, n.Deployment, n.Starts, n.Replicas, n.Peak, n.Util, n.Cost); err != nil {
			return err
		}
	}
	for _, s := range r.Scales {
		if err := pf("scale t %.2f ms  node %d dep %d  %d -> %d\n",
			float64(s.T), s.Node, s.Deployment, s.From, s.To); err != nil {
			return err
		}
	}
	return nil
}

// WriteQueue streams the queue-depth timeline as two-column CSV
// (time_ms,depth), suitable for plotting.
func (r *Report) WriteQueue(w io.Writer) error {
	if _, err := io.WriteString(w, "time_ms,depth\n"); err != nil {
		return err
	}
	for _, p := range r.Queue {
		if _, err := fmt.Fprintf(w, "%.6f,%d\n", float64(p.T), p.Depth); err != nil {
			return err
		}
	}
	return nil
}
