package cluster

import (
	"fmt"
	"math/rand"

	"github.com/shus-lab/hios/internal/serve"
	"github.com/shus-lab/hios/internal/stats"
	"github.com/shus-lab/hios/internal/units"
)

// Request lifecycle states.
const (
	stQueued = iota
	stRunning
	stDone
	stShedGateway  // dropped at admission (token bucket or queue depth)
	stShedHopeless // dropped at dispatch (provable deadline miss)
)

// request is one in-flight inference request.
type request struct {
	tenant   int
	index    int // per-tenant issue order
	client   int // closed-loop client index, -1 for open-loop
	node     int // routed node, -1 until admitted
	arrive   units.Millis
	deadline units.Millis // absolute: arrive + tenant deadline
	finish   units.Millis
	qseq     int // global enqueue order, the FIFO key and EDF tie-break
	state    int
}

// Event kinds; simultaneous events execute in push order via the heap's
// internal sequence number.
const (
	evArrive = iota // a request reaches the gateway
	evFree          // a replica admits its next request
	evDone          // a request completes
	evTick          // the autoscaler evaluates every pool
)

// cev is the cluster event payload; the (time, sequence) total-order key
// lives in serve.EventHeap, shared with the single-node engine.
type cev struct {
	kind    int
	req     int // evArrive, evDone
	node    int // evFree
	dep     int // evFree
	replica int // evFree
}

// pool is one (node, deployment) replica set: the unit the router
// targets and the autoscaler scales.
type pool struct {
	prof   Profile
	queue  serve.RequestQueue
	idle   serve.ReplicaHeap
	live   int // current replica count
	target int // autoscaler's desired count (live catches up lazily)
	next   int // next fresh replica index for scale-up
	peak   int

	starts int // requests admitted by this pool

	// Replica-time integration for cost accounting: replicaMs
	// accumulates live replica-milliseconds up to lastChange.
	replicaMs  units.Millis
	lastChange units.Millis

	// Outstanding-depth integration for the autoscaler signal: outInt
	// accumulates outstanding-request-milliseconds up to lastTouch, so a
	// tick can read the exact time-weighted average depth since the
	// previous tick instead of a noisy instantaneous sample.
	outInt    units.Millis
	lastTouch units.Millis
	lastOut   units.Millis // outInt at the previous tick

	// Autoscaler sliding windows (nil while the autoscaler is off).
	depthWin      []float64
	doneWin       []int
	metWin        []int
	winIdx        int
	winFill       int
	done          int // cumulative completions
	met           int // cumulative in-deadline completions
	lastDone      int
	lastMet       int
	cooldownUntil units.Millis
}

// outstanding returns queued plus in-service requests: the router's load
// signal and the autoscaler's concurrency signal.
func (p *pool) outstanding() int { return p.queue.Len() + p.live - p.idle.Len() }

// touch integrates the outstanding depth up to now. Called before every
// mutation that changes the depth; zero-elapsed calls are no-ops.
func (p *pool) touch(now units.Millis) {
	p.outInt += (now - p.lastTouch).Scale(float64(p.outstanding()))
	p.lastTouch = now
}

// setLive moves the live replica count to n at time now, integrating
// replica-time for cost accounting.
func (p *pool) setLive(n int, now units.Millis) {
	p.replicaMs += (now - p.lastChange).Scale(float64(p.live))
	p.lastChange = now
	p.live = n
	if n > p.peak {
		p.peak = n
	}
}

// node is one machine of the fleet: a platform preset plus one replica
// pool per deployment.
type node struct {
	preset Preset
	pools  []pool
}

// engine is the running cluster simulation state.
type engine struct {
	o      Options
	nodes  []node
	reqs   []request
	issued []int // per-tenant issue counter
	events serve.EventHeap[cev]
	qseq   int // enqueue sequence counter
	depth  int // cluster-wide queued requests (gateway shedding signal)
	popped int64
	points []serve.QueuePoint
	scales []ScaleEvent
	rngs   []*rand.Rand // per-tenant arrival streams
	rng    *rand.Rand   // router stream (random policy)
	aff    []int        // per-tenant affinity node

	// Token bucket (enabled when o.Admission.RatePerSec > 0).
	tokens     float64
	lastRefill units.Millis
}

// newRequest creates a request arriving at the given time and schedules
// its arrival event.
func (e *engine) newRequest(tenant, client int, at units.Millis) {
	t := &e.o.Tenants[tenant]
	ri := len(e.reqs)
	e.reqs = append(e.reqs, request{
		tenant:   tenant,
		index:    e.issued[tenant],
		client:   client,
		node:     -1,
		arrive:   at,
		deadline: at + t.Deadline,
		state:    stQueued,
	})
	e.issued[tenant]++
	e.events.Push(at, cev{kind: evArrive, req: ri})
}

// expMillis draws an exponential duration with the given mean.
func expMillis(rng *rand.Rand, mean units.Millis) units.Millis {
	return mean.Scale(rng.ExpFloat64())
}

// reissue puts a closed-loop client back into think state after its
// request finished (completed or shed) at the given time.
func (e *engine) reissue(tenant, client int, now units.Millis) {
	if client < 0 {
		return
	}
	t := &e.o.Tenants[tenant]
	next := now + expMillis(e.rngs[tenant], t.Think)
	if next < e.o.Horizon {
		e.newRequest(tenant, client, next)
	}
}

// admit runs gateway admission control for a request arriving at now.
// It returns false after shedding the request when the token bucket is
// empty or the cluster-wide queue is at its depth limit.
func (e *engine) admit(ri int, now units.Millis) bool {
	a := &e.o.Admission
	if a.RatePerSec > 0 {
		e.tokens += (now - e.lastRefill).Ratio(units.Millis(1e3)) * a.RatePerSec
		if max := float64(a.Burst); e.tokens > max {
			e.tokens = max
		}
		e.lastRefill = now
		if e.tokens < 1 {
			e.shed(ri, stShedGateway, now)
			return false
		}
		e.tokens--
	}
	if a.MaxQueue > 0 && e.depth >= a.MaxQueue {
		e.shed(ri, stShedGateway, now)
		return false
	}
	return true
}

// shed drops request ri at time now in the given shed state.
func (e *engine) shed(ri, state int, now units.Millis) {
	r := &e.reqs[ri]
	r.state = state
	r.finish = now
	e.reissue(r.tenant, r.client, now)
}

// dispatch matches idle replicas of pool (ni, di) with its queued
// requests at time now, shedding hopeless requests first when the
// gateway is configured to. This is the per-event inner loop of the
// cluster simulator — the router feeds it and the free/scale events
// re-enter it — and the package's hot-path root.
//
//lint:hotpath
func (e *engine) dispatch(ni, di int, now units.Millis) {
	p := &e.nodes[ni].pools[di]
	p.touch(now)
	for p.idle.Len() > 0 && p.queue.Len() > 0 {
		ri := p.queue.Pop()
		r := &e.reqs[ri]
		e.depth--
		if e.o.Admission.ShedHopeless && now+p.prof.Latency > r.deadline {
			// Provably hopeless: even starting this instant misses the
			// deadline. Shed without consuming the replica.
			r.state = stShedHopeless
			r.finish = now
			e.reissue(r.tenant, r.client, now)
			continue
		}
		rep := p.idle.Pop()
		r.state = stRunning
		p.starts++
		e.events.Push(now+p.prof.Latency, cev{kind: evDone, req: ri})
		e.events.Push(now+p.prof.Period, cev{kind: evFree, node: ni, dep: di, replica: rep})
	}
}

// recordDepth appends a queue-depth change point at time now, coalescing
// multiple changes at the same instant into the final value.
func (e *engine) recordDepth(now units.Millis) {
	if n := len(e.points); n > 0 {
		if e.points[n-1].Depth == e.depth {
			return
		}
		// Exact IEEE equality: same event timestamp, not a tolerance.
		if e.points[n-1].T == now { //lint:floatexact same-event timestamp dedupe: both values are copies of one event time
			e.points[n-1].Depth = e.depth
			return
		}
	} else if e.depth == 0 {
		return
	}
	e.points = append(e.points, serve.QueuePoint{T: now, Depth: e.depth})
}

// Run simulates the cluster described by opt and returns its report.
// The same Options always produce the same Report.
func Run(opt Options) (*Report, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt.fill()

	e := &engine{
		o:      opt,
		issued: make([]int, len(opt.Tenants)),
		rngs:   make([]*rand.Rand, len(opt.Tenants)),
		tokens: float64(opt.Admission.Burst),
	}
	// Flatten the fleet: node groups expand to individual nodes in
	// declaration order, each holding one pool per deployment.
	for _, ns := range opt.Fleet.Nodes {
		preset, _ := PresetByKey(ns.Platform)
		for c := 0; c < ns.Count; c++ {
			nd := node{preset: preset, pools: make([]pool, len(opt.Deployments))}
			for di, d := range opt.Deployments {
				prof, _ := d.profile(ns.Platform)
				p := &nd.pools[di]
				p.prof = prof
				p.queue = serve.RequestQueue{ByDeadline: true}
				reps := ns.Replicas
				if a := &opt.Autoscaler; a.Enabled {
					if reps < a.MinReplicas {
						reps = a.MinReplicas
					}
					if reps > a.MaxReplicas {
						reps = a.MaxReplicas
					}
					p.depthWin = make([]float64, a.Window)
					p.doneWin = make([]int, a.Window)
					p.metWin = make([]int, a.Window)
				}
				for rp := 0; rp < reps; rp++ {
					p.idle.Push(rp)
				}
				p.live, p.target, p.next, p.peak = reps, reps, reps, reps
			}
			e.nodes = append(e.nodes, nd)
		}
	}

	// Seed streams: one per tenant for arrivals, then the router stream,
	// then one affinity draw per tenant — all splitmix64-separated from
	// Options.Seed so adding tenants never perturbs earlier streams.
	nt := len(opt.Tenants)
	for ti, t := range opt.Tenants {
		e.rngs[ti] = rand.New(rand.NewSource(stats.MixSeed(opt.Seed, ti)))
		if t.Rate > 0 {
			// Open-loop: pre-draw the whole Poisson arrival sequence.
			mean := units.Millis(1e3 / t.Rate)
			at := expMillis(e.rngs[ti], mean)
			for at < opt.Horizon {
				e.newRequest(ti, -1, at)
				at += expMillis(e.rngs[ti], mean)
			}
		} else {
			// Closed-loop: every client starts in think state.
			for c := 0; c < t.Clients; c++ {
				at := expMillis(e.rngs[ti], t.Think)
				if at < opt.Horizon {
					e.newRequest(ti, c, at)
				}
			}
		}
	}
	e.rng = rand.New(rand.NewSource(stats.MixSeed(opt.Seed, nt)))
	e.aff = make([]int, nt)
	for ti := range e.aff {
		h := stats.MixSeed(opt.Seed, nt+1+ti)
		e.aff[ti] = int((uint64(h) >> 1) % uint64(len(e.nodes)))
	}
	if opt.Autoscaler.Enabled {
		e.events.Push(opt.Autoscaler.Interval, cev{kind: evTick})
	}

	var makespan units.Millis
	for e.events.Len() > 0 {
		now, ev := e.events.Pop()
		e.popped++
		if now > makespan {
			makespan = now
		}
		switch ev.kind {
		case evArrive:
			if !e.admit(ev.req, now) {
				break
			}
			r := &e.reqs[ev.req]
			r.qseq = e.qseq
			e.qseq++
			di := e.o.Tenants[r.tenant].Model
			ni := e.route(r.tenant, di)
			r.node = ni
			p := &e.nodes[ni].pools[di]
			p.touch(now)
			p.queue.Push(r.deadline, r.qseq, ev.req)
			e.depth++
			e.dispatch(ni, di, now)
		case evFree:
			p := &e.nodes[ev.node].pools[ev.dep]
			p.touch(now)
			if p.live > p.target {
				// A scale-down is pending: retire this replica instead of
				// returning it to the idle set.
				p.setLive(p.live-1, now)
				break
			}
			p.idle.Push(ev.replica)
			e.dispatch(ev.node, ev.dep, now)
		case evDone:
			r := &e.reqs[ev.req]
			r.state = stDone
			r.finish = now
			p := &e.nodes[r.node].pools[e.o.Tenants[r.tenant].Model]
			p.done++
			if r.finish <= r.deadline {
				p.met++
			}
			e.reissue(r.tenant, r.client, now)
		case evTick:
			e.tick(now)
		}
		e.recordDepth(now)
	}
	for i := range e.reqs {
		if st := e.reqs[i].state; st == stQueued || st == stRunning {
			return nil, fmt.Errorf("cluster: internal error: request %d ended in state %d", i, st)
		}
	}
	return e.report(makespan), nil
}
