package cluster

import (
	"fmt"

	"github.com/shus-lab/hios/internal/units"
)

// AutoscalerOptions configures the replica autoscaler. The zero value
// disables it; with Enabled set, every zero field selects the documented
// default. The autoscaler watches each (node, deployment) replica pool
// independently: every Interval it samples the pool's outstanding
// depth — queued plus in-service requests, the concurrency signal — into
// a sliding window of Window samples and tracks the pool's deadline
// attainment over the same window, then — once the window is full and
// the pool is out of cooldown — scales the pool by one replica at a
// time:
//
//   - up, when the window-averaged outstanding depth reaches HighDepth
//     per live replica (the pool is persistently behind);
//   - down, when the averaged depth is at or below LowDepth per live
//     replica AND windowed attainment is at least AttainmentFloor (the
//     pool is persistently idle and not missing deadlines).
//
// Including in-service requests in the depth signal is what makes the
// thresholds a hysteresis band: a pool that exactly keeps up still shows
// its utilization (busy replicas per replica), so it sits between
// LowDepth and HighDepth and holds still instead of thrashing around an
// empty queue.
//
// Each decision starts a Cooldown during which the pool holds still, so
// a burst cannot thrash replicas faster than its signal settles.
type AutoscalerOptions struct {
	// Enabled turns the autoscaler on. The zero value leaves every pool
	// at its FleetSpec replica count.
	Enabled bool
	// Interval between scaling evaluations (0 = 50 ms).
	Interval units.Millis
	// Window is the number of samples in the sliding window (0 = 8).
	Window int
	// HighDepth is the scale-up threshold in outstanding requests per
	// live replica, averaged over the window (0 = 3).
	HighDepth float64
	// LowDepth is the scale-down threshold in outstanding requests per
	// live replica (0 = 0.5).
	LowDepth float64
	// AttainmentFloor blocks scale-down while windowed attainment is
	// below it (0 = 0.9).
	AttainmentFloor float64
	// Cooldown is the hold-still time after each decision (0 = 200 ms).
	Cooldown units.Millis
	// MinReplicas and MaxReplicas bound every pool (0 = 1 and 8).
	MinReplicas int
	MaxReplicas int
}

// fill normalizes the defaulted fields in place.
func (a *AutoscalerOptions) fill() {
	// Validate already rejected negatives, so <= 0 means "unset".
	if a.Interval <= 0 {
		a.Interval = units.Millis(50)
	}
	if a.Window == 0 {
		a.Window = 8
	}
	if a.HighDepth <= 0 {
		a.HighDepth = 3
	}
	if a.LowDepth <= 0 {
		a.LowDepth = 0.5
	}
	if a.AttainmentFloor <= 0 {
		a.AttainmentFloor = 0.9
	}
	if a.Cooldown <= 0 {
		a.Cooldown = units.Millis(200)
	}
	if a.MinReplicas == 0 {
		a.MinReplicas = 1
	}
	if a.MaxReplicas == 0 {
		a.MaxReplicas = 8
	}
}

// Validate reports inconsistent autoscaler options. The disabled zero
// value is always valid; zero fields with documented defaults are valid.
func (a AutoscalerOptions) Validate() error {
	if !a.Enabled {
		return nil
	}
	if a.Interval < 0 || a.Cooldown < 0 {
		return fmt.Errorf("%w: negative interval or cooldown", ErrBadAutoscaler)
	}
	if a.Window < 0 {
		return fmt.Errorf("%w: negative window %d", ErrBadAutoscaler, a.Window)
	}
	if a.HighDepth < 0 || a.LowDepth < 0 {
		return fmt.Errorf("%w: negative depth threshold", ErrBadAutoscaler)
	}
	if a.HighDepth > 0 && a.LowDepth > a.HighDepth {
		return fmt.Errorf("%w: low-depth %g above high-depth %g", ErrBadAutoscaler, a.LowDepth, a.HighDepth)
	}
	if a.AttainmentFloor < 0 || a.AttainmentFloor > 1 {
		return fmt.Errorf("%w: attainment floor %g outside [0, 1]", ErrBadAutoscaler, a.AttainmentFloor)
	}
	if a.MinReplicas < 0 || a.MaxReplicas < 0 {
		return fmt.Errorf("%w: negative replica bound", ErrBadAutoscaler)
	}
	if a.MinReplicas > 0 && a.MaxReplicas > 0 && a.MinReplicas > a.MaxReplicas {
		return fmt.Errorf("%w: min replicas %d above max %d", ErrBadAutoscaler, a.MinReplicas, a.MaxReplicas)
	}
	return nil
}

// tick runs one autoscaler evaluation over every pool in deterministic
// (node, deployment) order at time now.
func (e *engine) tick(now units.Millis) {
	a := &e.o.Autoscaler
	for ni := range e.nodes {
		for di := range e.nodes[ni].pools {
			p := &e.nodes[ni].pools[di]

			// Slide the windows: the time-weighted average outstanding
			// depth over the tick, plus the completion / deadline-met
			// deltas since the previous tick.
			p.touch(now)
			slot := p.winIdx
			p.depthWin[slot] = (p.outInt - p.lastOut).Ratio(a.Interval)
			p.lastOut = p.outInt
			p.doneWin[slot] = p.done - p.lastDone
			p.metWin[slot] = p.met - p.lastMet
			p.lastDone, p.lastMet = p.done, p.met
			p.winIdx = (p.winIdx + 1) % a.Window
			if p.winFill < a.Window {
				p.winFill++
				continue // act only on a full window
			}

			depthSum, doneSum, metSum := 0.0, 0, 0
			for i := 0; i < a.Window; i++ {
				depthSum += p.depthWin[i]
				doneSum += p.doneWin[i]
				metSum += p.metWin[i]
			}
			avgDepth := depthSum / float64(a.Window)
			attain := 1.0
			if doneSum > 0 {
				attain = float64(metSum) / float64(doneSum)
			}

			if now < p.cooldownUntil {
				continue
			}
			switch {
			case avgDepth >= a.HighDepth*float64(p.live) && p.live < a.MaxReplicas:
				e.scale(ni, di, p.live+1, now)
			case avgDepth <= a.LowDepth*float64(p.live) && attain >= a.AttainmentFloor && p.live > a.MinReplicas:
				e.scale(ni, di, p.live-1, now)
			}
		}
	}
	next := now + a.Interval
	if next < e.o.Horizon {
		e.events.Push(next, cev{kind: evTick})
	}
}

// scale moves pool (ni, di) to the target replica count, records the
// scaling event, and starts the cooldown. Scale-up brings a fresh
// replica (the next unused index) online immediately; scale-down retires
// an idle replica immediately when one exists, or lazily at its next
// free event otherwise.
func (e *engine) scale(ni, di, target int, now units.Millis) {
	p := &e.nodes[ni].pools[di]
	e.scales = append(e.scales, ScaleEvent{T: now, Node: ni, Deployment: di, From: p.live, To: target})
	p.cooldownUntil = now + e.o.Autoscaler.Cooldown
	if target > p.live {
		p.idle.Push(p.next)
		p.next++
		p.target = target
		p.setLive(target, now)
		e.dispatch(ni, di, now)
		return
	}
	p.target = target
	if p.idle.Len() > 0 {
		p.idle.Pop() // retire the lowest idle replica now
		p.setLive(p.live-1, now)
	}
	// Otherwise every replica is busy; the next evFree retires one.
}
