package cluster

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/shus-lab/hios/internal/serve"
	"github.com/shus-lab/hios/internal/units"
)

// serveModel is a synthetic single-node model whose ProfileOf conversion
// matches the a40 row of testDeployment.
func serveModel() serve.Model {
	return serve.Model{Name: "m", Latency: 4, Period: 2, GPUBusy: []units.Millis{1.5, 1.5}}
}

// testDeployment is a synthetic deployment with a profile per preset:
// the a40 twice as fast as the v100s, the a5500 between them, mirroring
// the real platform ordering.
func testDeployment() Deployment {
	return Deployment{
		Name: "m",
		Profiles: []Profile{
			{Platform: "a40", Latency: 4, Period: 2, Busy: 3},
			{Platform: "a5500", Latency: 5, Period: 2.5, Busy: 3.75},
			{Platform: "v100s", Latency: 8, Period: 4, Busy: 6},
		},
	}
}

// testOptions is a small heterogeneous fleet under open-loop load.
func testOptions() Options {
	return Options{
		Fleet: FleetSpec{Nodes: []NodeSpec{
			{Platform: "a40", Count: 2, Replicas: 2},
			{Platform: "v100s", Count: 1, Replicas: 2},
		}},
		Deployments: []Deployment{testDeployment()},
		Tenants: []Tenant{
			{Name: "web", Model: 0, Deadline: 20, Rate: 400},
			{Name: "batch", Model: 0, Deadline: 100, Rate: 200},
		},
		Horizon: 500,
		Seed:    7,
	}
}

func renderString(t *testing.T, r *Report) string {
	t.Helper()
	var b bytes.Buffer
	if err := r.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if err := r.WriteQueue(&b); err != nil {
		t.Fatalf("WriteQueue: %v", err)
	}
	return b.String()
}

func TestPresets(t *testing.T) {
	keys := PresetKeys()
	if len(keys) != 3 {
		t.Fatalf("PresetKeys() = %v, want 3 presets", keys)
	}
	for _, k := range keys {
		p, ok := PresetByKey(k)
		if !ok || p.Key != k {
			t.Fatalf("PresetByKey(%q) = %+v, %v", k, p, ok)
		}
		if p.Cost <= 0 || p.Platform.GPUs == 0 {
			t.Fatalf("preset %q has cost %g and %d GPUs", k, p.Cost, p.Platform.GPUs)
		}
	}
	if _, ok := PresetByKey("h100"); ok {
		t.Fatal("PresetByKey accepted an unknown key")
	}
}

func TestRouterRegistry(t *testing.T) {
	ps := RouterPolicies()
	if len(ps) != 4 {
		t.Fatalf("RouterPolicies() = %v, want 4", ps)
	}
	for _, p := range ps {
		if !RouterRegistry.Valid(p) {
			t.Fatalf("registry does not validate its own policy %q", p)
		}
		if !strings.Contains(RouterUsage(), string(p)) {
			t.Fatalf("RouterUsage() %q omits %q", RouterUsage(), p)
		}
	}
	if RouterRegistry.Valid("round-robin") {
		t.Fatal("registry validated an unknown policy")
	}
}

func TestValidateErrors(t *testing.T) {
	mut := func(f func(*Options)) Options {
		o := testOptions()
		f(&o)
		return o
	}
	cases := []struct {
		name string
		opt  Options
		want error
	}{
		{"no nodes", mut(func(o *Options) { o.Fleet.Nodes = nil }), ErrNoNodes},
		{"unknown platform", mut(func(o *Options) { o.Fleet.Nodes[0].Platform = "h100" }), ErrUnknownPlatform},
		{"negative count", mut(func(o *Options) { o.Fleet.Nodes[0].Count = -1 }), ErrBadNode},
		{"negative replicas", mut(func(o *Options) { o.Fleet.Nodes[0].Replicas = -2 }), ErrBadNode},
		{"no deployments", mut(func(o *Options) { o.Deployments = nil }), ErrNoDeployments},
		{"bad profile latency", mut(func(o *Options) { o.Deployments[0].Profiles[0].Latency = 0 }), ErrBadDeployment},
		{"period above latency", mut(func(o *Options) { o.Deployments[0].Profiles[0].Period = 9 }), ErrBadDeployment},
		{"negative busy", mut(func(o *Options) { o.Deployments[0].Profiles[0].Busy = -1 }), ErrBadDeployment},
		{"profile for unknown platform", mut(func(o *Options) { o.Deployments[0].Profiles[0].Platform = "h100" }), ErrUnknownPlatform},
		{"missing profile", mut(func(o *Options) { o.Deployments[0].Profiles = o.Deployments[0].Profiles[:1] }), ErrMissingProfile},
		{"no tenants", mut(func(o *Options) { o.Tenants = nil }), ErrNoTenants},
		{"tenant model out of range", mut(func(o *Options) { o.Tenants[0].Model = 3 }), ErrBadTenant},
		{"tenant no deadline", mut(func(o *Options) { o.Tenants[0].Deadline = 0 }), ErrBadTenant},
		{"tenant open and closed", mut(func(o *Options) { o.Tenants[0].Clients = 2 }), ErrBadTenant},
		{"unknown router", mut(func(o *Options) { o.Router = "round-robin" }), ErrUnknownRouterPolicy},
		{"negative admission rate", mut(func(o *Options) { o.Admission.RatePerSec = -1 }), ErrBadAdmission},
		{"negative max queue", mut(func(o *Options) { o.Admission.MaxQueue = -1 }), ErrBadAdmission},
		{"autoscaler bad window", mut(func(o *Options) { o.Autoscaler = AutoscalerOptions{Enabled: true, Window: -1} }), ErrBadAutoscaler},
		{"autoscaler min above max", mut(func(o *Options) { o.Autoscaler = AutoscalerOptions{Enabled: true, MinReplicas: 5, MaxReplicas: 2} }), ErrBadAutoscaler},
		{"autoscaler bad floor", mut(func(o *Options) { o.Autoscaler = AutoscalerOptions{Enabled: true, AttainmentFloor: 1.5} }), ErrBadAutoscaler},
		{"autoscaler low above high", mut(func(o *Options) { o.Autoscaler = AutoscalerOptions{Enabled: true, HighDepth: 1, LowDepth: 2} }), ErrBadAutoscaler},
		{"negative horizon", mut(func(o *Options) { o.Horizon = -1 }), ErrBadHorizon},
	}
	for _, c := range cases {
		if err := c.opt.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: Validate() = %v, want %v", c.name, err, c.want)
		}
		if _, err := Run(c.opt); !errors.Is(err, c.want) {
			t.Errorf("%s: Run() = %v, want %v", c.name, err, c.want)
		}
	}
	if err := testOptions().Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	// The disabled zero-value autoscaler and empty admission are valid.
	if err := (AutoscalerOptions{}).Validate(); err != nil {
		t.Fatalf("zero autoscaler rejected: %v", err)
	}
	if err := (Admission{}).Validate(); err != nil {
		t.Fatalf("zero admission rejected: %v", err)
	}
}

// TestDeterminism: the same Options render a byte-identical Report, and
// Run never mutates the caller's Options.
func TestDeterminism(t *testing.T) {
	for _, router := range RouterPolicies() {
		opt := testOptions()
		opt.Router = router
		opt.Admission = Admission{RatePerSec: 500, MaxQueue: 64, ShedHopeless: true}
		opt.Autoscaler = AutoscalerOptions{Enabled: true, MaxReplicas: 4}
		r1, err := Run(opt)
		if err != nil {
			t.Fatalf("%s: Run: %v", router, err)
		}
		r2, err := Run(opt)
		if err != nil {
			t.Fatalf("%s: rerun: %v", router, err)
		}
		if a, b := renderString(t, r1), renderString(t, r2); a != b {
			t.Fatalf("%s: reports differ between identical runs:\n%s\n--- vs ---\n%s", router, a, b)
		}
		if opt.Fleet.Nodes[0].Count != 2 || opt.Autoscaler.Interval != 0 {
			t.Fatalf("%s: Run mutated caller's Options", router)
		}
	}
}

// TestSeedSensitivity: different seeds draw different arrival traces.
func TestSeedSensitivity(t *testing.T) {
	a := testOptions()
	b := testOptions()
	b.Seed = 8
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if renderString(t, ra) == renderString(t, rb) {
		t.Fatal("different seeds produced an identical trace")
	}
}

// TestBasicInvariants checks the conservation laws of the report.
func TestBasicInvariants(t *testing.T) {
	opt := testOptions()
	opt.Admission = Admission{RatePerSec: 300, MaxQueue: 32, ShedHopeless: true}
	r, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Offered == 0 {
		t.Fatal("no requests offered")
	}
	if r.Completed+r.Shed != r.Offered {
		t.Fatalf("completed %d + shed %d != offered %d", r.Completed, r.Shed, r.Offered)
	}
	if r.Admitted > r.Offered || r.Completed > r.Admitted {
		t.Fatalf("offered %d, admitted %d, completed %d out of order", r.Offered, r.Admitted, r.Completed)
	}
	if r.SLOMet > r.Completed {
		t.Fatalf("slo-met %d above completed %d", r.SLOMet, r.Completed)
	}
	if r.Events <= int64(r.Offered) {
		t.Fatalf("events %d should exceed offered %d (every request is at least one event)", r.Events, r.Offered)
	}
	if r.CostUnits <= 0 {
		t.Fatal("no replica-time cost accumulated")
	}
	var starts, tenantOffered int
	for _, n := range r.Nodes {
		starts += n.Starts
	}
	if starts != r.Completed {
		t.Fatalf("pool starts %d != completed %d (no hopeless sheds consume a replica)", starts, r.Completed)
	}
	for _, tr := range r.Tenants {
		tenantOffered += tr.Offered
	}
	if tenantOffered != r.Offered {
		t.Fatalf("tenant offered sum %d != offered %d", tenantOffered, r.Offered)
	}
}

// TestAdmissionControl: a tight token bucket sheds most of a heavy load;
// a queue-depth cap bounds the recorded depth timeline.
func TestAdmissionControl(t *testing.T) {
	opt := testOptions()
	opt.Tenants = []Tenant{{Name: "web", Model: 0, Deadline: 20, Rate: 2000}}
	opt.Admission = Admission{RatePerSec: 100, Burst: 4}
	r, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shed == 0 {
		t.Fatal("token bucket shed nothing under 20x overload")
	}
	// Sustained admission cannot exceed rate*horizon plus the burst.
	budget := int(opt.Admission.RatePerSec*float64(opt.Horizon)/1e3) + opt.Admission.Burst + 1
	if r.Admitted > budget {
		t.Fatalf("admitted %d above token budget %d", r.Admitted, budget)
	}

	opt = testOptions()
	// One replica (500 req/s capacity) under 2000 req/s: the queue cap
	// must bite.
	opt.Fleet = FleetSpec{Nodes: []NodeSpec{{Platform: "a40", Count: 1, Replicas: 1}}}
	opt.Tenants = []Tenant{{Name: "web", Model: 0, Deadline: 20, Rate: 2000}}
	opt.Admission = Admission{MaxQueue: 8}
	r, err = Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shed == 0 {
		t.Fatal("queue cap shed nothing under overload")
	}
	for _, p := range r.Queue {
		if p.Depth > 8 {
			t.Fatalf("queue depth %d above cap 8 at t=%g", p.Depth, float64(p.T))
		}
	}
}

// TestRouterDominance: on the same seeded traces at high load, informed
// least-load routing must meet at least as many deadlines as the random
// baseline.
func TestRouterDominance(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		base := testOptions()
		base.Seed = seed
		base.Tenants = []Tenant{
			{Name: "web", Model: 0, Deadline: 15, Rate: 900},
			{Name: "api", Model: 0, Deadline: 30, Rate: 600},
		}
		ll, rnd := base, base
		ll.Router = RouterLeastLoad
		rnd.Router = RouterRandom
		rl, err := Run(ll)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := Run(rnd)
		if err != nil {
			t.Fatal(err)
		}
		if rl.Offered != rr.Offered {
			t.Fatalf("seed %d: traces diverged: offered %d vs %d", seed, rl.Offered, rr.Offered)
		}
		if rl.SLOMet < rr.SLOMet {
			t.Errorf("seed %d: least-load met %d deadlines, random met %d", seed, rl.SLOMet, rr.SLOMet)
		}
	}
}

// TestAffinityRouting: under light load every tenant's requests land on
// its single preferred node.
func TestAffinityRouting(t *testing.T) {
	opt := testOptions()
	opt.Router = RouterAffinity
	opt.Tenants = []Tenant{{Name: "web", Model: 0, Deadline: 50, Rate: 50}}
	r, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	active := 0
	for _, n := range r.Nodes {
		if n.Starts > 0 {
			active++
		}
	}
	if active != 1 {
		t.Fatalf("affinity under light load touched %d nodes, want 1", active)
	}
}

// TestWeightedPrefersCheap: with the weighted router and idle pools, a
// request should favor the node whose cost-scaled latency is lowest —
// the v100s (8 ms × 0.45 = 3.6) over the a40 (4 ms × 1.0 = 4.0).
func TestWeightedPrefersCheap(t *testing.T) {
	opt := testOptions()
	opt.Router = RouterWeighted
	opt.Tenants = []Tenant{{Name: "trickle", Model: 0, Deadline: 50, Rate: 20}}
	r, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Nodes {
		if n.Platform == "a40" && n.Starts > 0 {
			t.Fatalf("weighted router sent %d trickle requests to the expensive a40", n.Starts)
		}
	}
}

// TestAutoscalerConvergence: under steady offered load the replica count
// must stop moving once the window and cooldown settle, and stay inside
// the configured bounds throughout.
func TestAutoscalerConvergence(t *testing.T) {
	opt := testOptions()
	opt.Fleet = FleetSpec{Nodes: []NodeSpec{{Platform: "a40", Count: 1, Replicas: 1}}}
	// 1200 req/s against 500 req/s per replica: the pool must grow to 3
	// replicas (utilization 0.8), where the time-averaged outstanding
	// depth sits well inside the [LowDepth, HighDepth] hysteresis band —
	// a steady load whose right size is unambiguous.
	opt.Tenants = []Tenant{{Name: "web", Model: 0, Deadline: 30, Rate: 1200}}
	opt.Horizon = 2000
	opt.Autoscaler = AutoscalerOptions{
		Enabled:     true,
		Interval:    10,
		Window:      4,
		Cooldown:    50,
		MaxReplicas: 8,
	}
	r, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scales) == 0 {
		t.Fatal("autoscaler never scaled a 1200 req/s load on one replica")
	}
	for _, s := range r.Scales {
		if s.To < 1 || s.To > 8 {
			t.Fatalf("scale target %d outside [1, 8]", s.To)
		}
		if d := s.To - s.From; d != 1 && d != -1 {
			t.Fatalf("scale step %d -> %d is not one replica at a time", s.From, s.To)
		}
	}
	// Convergence: after the last scale event, at least one full
	// window+cooldown of ticks elapsed with no further movement.
	last := r.Scales[len(r.Scales)-1].T
	settle := opt.Horizon - (opt.Autoscaler.Cooldown + opt.Autoscaler.Interval.Scale(float64(opt.Autoscaler.Window)))
	if last > settle {
		t.Fatalf("autoscaler still moving at t=%g of horizon %g", float64(last), float64(opt.Horizon))
	}
	// Steady state serves the load: the single pool ends above 1 replica.
	if r.Nodes[0].Replicas <= 1 {
		t.Fatalf("pool ended at %d replicas under 2.4x overload", r.Nodes[0].Replicas)
	}
	// Consecutive scale events respect the cooldown.
	for i := 1; i < len(r.Scales); i++ {
		if gap := r.Scales[i].T - r.Scales[i-1].T; gap < opt.Autoscaler.Cooldown {
			t.Fatalf("scale events %d and %d only %g ms apart (cooldown %g)", i-1, i, float64(gap), float64(opt.Autoscaler.Cooldown))
		}
	}
}

// TestAutoscalerScaleDown: an over-provisioned pool under a trickle load
// sheds replicas down toward the minimum.
func TestAutoscalerScaleDown(t *testing.T) {
	opt := testOptions()
	opt.Fleet = FleetSpec{Nodes: []NodeSpec{{Platform: "a40", Count: 1, Replicas: 6}}}
	opt.Tenants = []Tenant{{Name: "web", Model: 0, Deadline: 50, Rate: 50}}
	opt.Horizon = 2000
	opt.Autoscaler = AutoscalerOptions{Enabled: true, Interval: 10, Window: 4, Cooldown: 50}
	r, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Nodes[0].Replicas; got >= 6 {
		t.Fatalf("idle pool still holds %d replicas", got)
	}
	if r.Attainment < 0.99 {
		t.Fatalf("scale-down hurt attainment: %g", r.Attainment)
	}
}

// TestCapacity sanity-checks the fleet capacity helper.
func TestCapacity(t *testing.T) {
	opt := testOptions()
	// 2 a40 nodes x 2 replicas / 2ms + 1 v100s x 2 replicas / 4ms
	want := 2*2*1e3/2 + 1*2*1e3/4
	if got := opt.Capacity(0); got != want {
		t.Fatalf("Capacity(0) = %g, want %g", got, want)
	}
	if got := opt.Capacity(1); got != 0 {
		t.Fatalf("Capacity(1) = %g, want 0", got)
	}
}

// TestProfileOf converts a serve.Model into a platform profile.
func TestProfileOf(t *testing.T) {
	p := ProfileOf("a40", serveModel())
	if p.Platform != "a40" || p.Latency != 4 || p.Period != 2 || p.Busy != 3 {
		t.Fatalf("ProfileOf = %+v", p)
	}
}
