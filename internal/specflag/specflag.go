// Package specflag parses the repeatable comma-separated key=value
// command-line specs the serving CLIs take — tenant specs like
// "name=web,deadline=20,rate=300" for hios-serve and hios-cluster, node
// specs like "platform=a40,count=2,replicas=2" for hios-cluster.
//
// A Parser is built once from typed Field accessors and owns the whole
// grammar: parsing, the error vocabulary ("unknown tenant field ..."),
// and the round-trip String rendering, so every CLI that takes a spec
// flag parses — and prints — exactly the same language. Fields left
// unset parse to their zero value, and String omits zero-valued fields,
// so Parse(String(v)) == v for every representable value.
package specflag

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/shus-lab/hios/internal/units"
)

// Field is one key of a spec grammar: its name plus typed set/render
// accessors into the spec struct. Build values with Str, Int, Float and
// Millis.
type Field[T any] struct {
	// Key is the field name on the command line.
	Key string
	set func(*T, string) error
	get func(*T) (string, bool)
}

// Str declares a string field; f returns the address of the field
// inside the spec struct.
func Str[T any](key string, f func(*T) *string) Field[T] {
	return Field[T]{
		Key: key,
		set: func(v *T, s string) error { *f(v) = s; return nil },
		get: func(v *T) (string, bool) { s := *f(v); return s, s != "" },
	}
}

// Int declares an integer field.
func Int[T any](key string, f func(*T) *int) Field[T] {
	return Field[T]{
		Key: key,
		set: func(v *T, s string) error {
			n, err := strconv.Atoi(s)
			*f(v) = n
			return err
		},
		get: func(v *T) (string, bool) { n := *f(v); return strconv.Itoa(n), n != 0 },
	}
}

// Float declares a dimensionless float field.
func Float[T any](key string, f func(*T) *float64) Field[T] {
	return Field[T]{
		Key: key,
		set: func(v *T, s string) error {
			x, err := strconv.ParseFloat(s, 64)
			*f(v) = x
			return err
		},
		get: func(v *T) (string, bool) {
			x := *f(v)
			return strconv.FormatFloat(x, 'g', -1, 64), x > 0 || x < 0
		},
	}
}

// Millis declares a duration field stated in milliseconds.
func Millis[T any](key string, f func(*T) *units.Millis) Field[T] {
	return Field[T]{
		Key: key,
		set: func(v *T, s string) error {
			x, err := strconv.ParseFloat(s, 64)
			*f(v) = units.Millis(x)
			return err
		},
		get: func(v *T) (string, bool) {
			m := *f(v)
			return strconv.FormatFloat(float64(m), 'g', -1, 64), m > 0 || m < 0
		},
	}
}

// Parser parses and renders one spec grammar.
type Parser[T any] struct {
	kind   string
	fields []Field[T]
}

// New builds a parser for the named spec kind ("tenant", "node") from
// its fields, in the order String renders them.
func New[T any](kind string, fields ...Field[T]) *Parser[T] {
	return &Parser[T]{kind: kind, fields: fields}
}

// Keys returns the grammar's field names in declaration order.
func (p *Parser[T]) Keys() []string {
	out := make([]string, len(p.fields))
	for i, f := range p.fields {
		out[i] = f.Key
	}
	return out
}

// Parse parses a comma-separated key=value spec. Unset fields keep
// their zero value; unknown keys and malformed values are errors naming
// the spec kind and the offending part.
func (p *Parser[T]) Parse(s string) (T, error) {
	var v T
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return v, fmt.Errorf("bad %s field %q (want key=value)", p.kind, part)
		}
		fld := p.field(key)
		if fld == nil {
			return v, fmt.Errorf("unknown %s field %q (want %s)", p.kind, key, joinOr(p.Keys()))
		}
		if err := fld.set(&v, val); err != nil {
			return v, fmt.Errorf("bad %s field %q: %v", p.kind, part, err)
		}
	}
	return v, nil
}

// String renders a spec value back into the flag syntax, omitting
// zero-valued fields, in field declaration order. Parse(String(v))
// reproduces v.
func (p *Parser[T]) String(v T) string {
	var b strings.Builder
	for _, f := range p.fields {
		s, ok := f.get(&v)
		if !ok {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(f.Key)
		b.WriteByte('=')
		b.WriteString(s)
	}
	return b.String()
}

func (p *Parser[T]) field(key string) *Field[T] {
	for i := range p.fields {
		if p.fields[i].Key == key {
			return &p.fields[i]
		}
	}
	return nil
}

// joinOr renders a key list as "a, b or c" for error messages.
func joinOr(keys []string) string {
	switch len(keys) {
	case 0:
		return ""
	case 1:
		return keys[0]
	}
	return strings.Join(keys[:len(keys)-1], ", ") + " or " + keys[len(keys)-1]
}
