package specflag

import (
	"strings"
	"testing"

	"github.com/shus-lab/hios/internal/cluster"
	"github.com/shus-lab/hios/internal/serve"
)

func TestTenantParse(t *testing.T) {
	p := Tenant()
	got, err := p.Parse("name=web,deadline=20,rate=300")
	if err != nil {
		t.Fatal(err)
	}
	want := serve.Tenant{Name: "web", Deadline: 20, Rate: 300}
	if got != want {
		t.Fatalf("Parse = %+v, want %+v", got, want)
	}
	got, err = p.Parse(" name=batch , model=1, deadline=200,clients=4,think=5")
	if err != nil {
		t.Fatal(err)
	}
	want = serve.Tenant{Name: "batch", Model: 1, Deadline: 200, Clients: 4, Think: 5}
	if got != want {
		t.Fatalf("Parse = %+v, want %+v", got, want)
	}
}

func TestTenantParseErrors(t *testing.T) {
	p := Tenant()
	cases := []struct{ in, wantSub string }{
		{"name", "want key=value"},
		{"sla=20", `unknown tenant field "sla"`},
		{"sla=20", "name, model, deadline, rate, clients or think"},
		{"deadline=abc", `bad tenant field "deadline=abc"`},
		{"clients=1.5", `bad tenant field "clients=1.5"`},
	}
	for _, c := range cases {
		if _, err := p.Parse(c.in); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) = %v, want error containing %q", c.in, err, c.wantSub)
		}
	}
}

// TestRoundTrip: Parse(String(v)) == v, and String omits unset fields.
func TestRoundTrip(t *testing.T) {
	tp := Tenant()
	tenants := []serve.Tenant{
		{Name: "web", Deadline: 20, Rate: 300},
		{Name: "batch", Model: 2, Deadline: 200, Clients: 4, Think: 5},
		{Deadline: 12.5, Rate: 0.25},
		{},
	}
	for _, in := range tenants {
		s := tp.String(in)
		if s == "" {
			continue // zero spec renders empty; nothing to reparse
		}
		out, err := tp.Parse(s)
		if err != nil {
			t.Fatalf("Parse(String(%+v)) = %q: %v", in, s, err)
		}
		if out != in {
			t.Fatalf("round trip %+v -> %q -> %+v", in, s, out)
		}
	}
	if got := tp.String(tenants[0]); got != "name=web,deadline=20,rate=300" {
		t.Fatalf("String = %q", got)
	}

	np := Node()
	node := cluster.NodeSpec{Platform: "a40", Count: 2, Replicas: 3}
	s := np.String(node)
	if s != "platform=a40,count=2,replicas=3" {
		t.Fatalf("node String = %q", s)
	}
	out, err := np.Parse(s)
	if err != nil || out != node {
		t.Fatalf("node round trip = %+v, %v", out, err)
	}
}

func TestNodeParse(t *testing.T) {
	p := Node()
	got, err := p.Parse("platform=v100s,count=4")
	if err != nil {
		t.Fatal(err)
	}
	if got != (cluster.NodeSpec{Platform: "v100s", Count: 4}) {
		t.Fatalf("Parse = %+v", got)
	}
	if _, err := p.Parse("gpu=a40"); err == nil || !strings.Contains(err.Error(), "platform, count or replicas") {
		t.Fatalf("unknown key error = %v", err)
	}
}

func TestKeys(t *testing.T) {
	got := strings.Join(Tenant().Keys(), ",")
	if got != "name,model,deadline,rate,clients,think" {
		t.Fatalf("Keys = %q", got)
	}
}
