package specflag

import (
	"github.com/shus-lab/hios/internal/cluster"
	"github.com/shus-lab/hios/internal/serve"
	"github.com/shus-lab/hios/internal/units"
)

// Tenant returns the shared tenant-spec grammar of hios-serve and
// hios-cluster: "name=web,deadline=20,rate=300" (open-loop) or
// "name=batch,deadline=200,clients=4,think=5" (closed-loop); deadline
// and think in ms, rate in req/s, model the deployment index.
func Tenant() *Parser[serve.Tenant] {
	return New("tenant",
		Str("name", func(t *serve.Tenant) *string { return &t.Name }),
		Int("model", func(t *serve.Tenant) *int { return &t.Model }),
		Millis("deadline", func(t *serve.Tenant) *units.Millis { return &t.Deadline }),
		Float("rate", func(t *serve.Tenant) *float64 { return &t.Rate }),
		Int("clients", func(t *serve.Tenant) *int { return &t.Clients }),
		Millis("think", func(t *serve.Tenant) *units.Millis { return &t.Think }),
	)
}

// Node returns the node-group grammar of hios-cluster:
// "platform=a40,count=2,replicas=2".
func Node() *Parser[cluster.NodeSpec] {
	return New("node",
		Str("platform", func(n *cluster.NodeSpec) *string { return &n.Platform }),
		Int("count", func(n *cluster.NodeSpec) *int { return &n.Count }),
		Int("replicas", func(n *cluster.NodeSpec) *int { return &n.Replicas }),
	)
}
