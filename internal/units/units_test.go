package units

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"
)

// TestBitExactFormulas asserts that the typed formulas used by the cost
// core after the units migration produce bit-for-bit the same float64 as
// the raw formulas they replaced. Equality here is exact (==), not
// approximate: the determinism contract (DESIGN.md §7/§8) promises
// byte-identical figures across the refactor, which holds only if every
// typed method performs the identical floating-point operation sequence.
func TestBitExactFormulas(t *testing.T) {
	// Representative magnitudes: A40 datasheet numbers and paper-scale
	// kernels, plus awkward values (subnormal-adjacent, huge, non-dyadic).
	flops := []float64{4800 * 48 * 64 * 64, 1.23456789e12, 7, 1e-3}
	bytess := []float64{4 * 48 * 1024 * 1024, 3.14159e9, 1, 1e-2}
	gflops := []float64{37400, 34100, 16400, 123.456}
	gbs := []float64{696, 768, 1134, 56.25, 12}
	utils := []float64{1.0 / 84, 0.35, 0.9999999, 1}

	for _, f := range flops {
		for _, g := range gflops {
			for _, e := range utils {
				for _, u := range utils {
					raw := f / (g * 1e9 * e * u) * 1e3
					typed := FLOPs(f).Over(GFLOPsPerSec(g).Scale(e).Scale(u)).Millis()
					if raw != float64(typed) {
						t.Fatalf("roofline compute: raw %x != typed %x (f=%g g=%g e=%g u=%g)",
							raw, float64(typed), f, g, e, u)
					}
				}
			}
		}
	}
	for _, b := range bytess {
		for _, g := range gbs {
			raw := b / (g * 1e9) * 1e3
			typed := Bytes(b).Over(GBPerSec(g)).Millis()
			if raw != float64(typed) {
				t.Fatalf("roofline memory: raw %x != typed %x (b=%g g=%g)", raw, float64(typed), b, g)
			}
		}
	}
	// Contention model: work accumulation t*u and the penalty multiply
	// t*(1+alpha*over).
	for _, ms := range []float64{0.005, 1.75, 410.8, 1e-9} {
		for _, u := range utils {
			if raw, typed := ms*u, Millis(ms).Scale(u); raw != float64(typed) {
				t.Fatalf("work accumulate: raw %x != typed %x", raw, float64(typed))
			}
			over := 0.75
			raw := ms * (1 + 0.2*over)
			typed := Millis(ms).Scale(1 + 0.2*over)
			if raw != float64(typed) {
				t.Fatalf("contention penalty: raw %x != typed %x", raw, float64(typed))
			}
		}
	}
	// Unit boundaries: ms→s, ms→µs, ratio.
	for _, ms := range []float64{0.02, 104.4, 3.024e6} {
		if raw, typed := ms/1e3, Millis(ms).Seconds(); raw != float64(typed) {
			t.Fatalf("ms->s: raw %x != typed %x", raw, float64(typed))
		}
		if raw, typed := ms*1e3, Millis(ms).Micros(); raw != float64(typed) {
			t.Fatalf("ms->µs: raw %x != typed %x", raw, float64(typed))
		}
		if raw, typed := ms/7.25, Millis(ms).Ratio(Millis(7.25)); raw != typed {
			t.Fatalf("ratio: raw %x != typed %x", raw, typed)
		}
	}
}

// TestDatasheetConstructorsExact pins that GFLOPsPerSec/GBPerSec lose no
// precision for every datasheet magnitude the repo uses: the products are
// integers below 2^53, hence exactly representable.
func TestDatasheetConstructorsExact(t *testing.T) {
	for _, g := range []float64{37400, 34100, 16400, 696, 768, 1134, 300, 12} {
		v := g * 1e9
		if v != math.Trunc(v) || v >= 1<<53 {
			t.Fatalf("%g GU/s = %g U/s is not an exact integer below 2^53", g, v)
		}
	}
	// 56.25 GB/s (the NVLink bridge per-direction bandwidth) is dyadic
	// (56.25 = 225/4), so 56.25e9 is exact too.
	if float64(GBPerSec(56.25)) != 56.25e9 {
		t.Fatal("56.25 GB/s constructor drifted")
	}
}

// TestAuditedUnitChains pins the cross-layer unit chains the dimensional
// audit walked (DESIGN.md §8): link bandwidth, the schedule-improvement
// epsilon, and the pipeline throughput inversion. Each was confirmed
// correct; these assertions keep them that way.
func TestAuditedUnitChains(t *testing.T) {
	// The NVLink bridge moves exactly 56.25e6 bytes per millisecond at
	// 56.25 GB/s: GB = 1e9 bytes and ms = 1e-3 s must cancel exactly, or
	// every transfer time in Fig. 2/7-11 shifts.
	if got := Bytes(56.25e6).Over(GBPerSec(56.25)).Millis(); got != 1.0 {
		t.Errorf("56.25e6 B over 56.25 GB/s = %v ms, want exactly 1", float64(got))
	}
	// The fixpoint termination epsilon in sched/window is 1e-12 ms; the
	// typed constant must be the identical float64, or the round count —
	// and therefore the schedules — of ParallelizeFixpoint could change.
	if float64(Millis(1e-12)) != 1e-12 {
		t.Error("Millis(1e-12) is not the raw 1e-12 epsilon")
	}
	// Pipeline throughput inverts a period in ms to requests per second
	// as 1000/period; the typed path must agree with the raw runtime
	// division (not the compile-time constant fold, which rounds once
	// from exact arithmetic and can differ in the last ULP).
	period := Millis(104.4)
	raw := 104.4
	if got, want := 1000/float64(period), 1000/raw; got != want {
		t.Errorf("throughput inversion: %x != %x", got, want)
	}
}

// TestFormatNeutral asserts the types stay transparent to fmt and
// encoding/json: no String/Format/MarshalJSON methods may ever be added,
// or the rendered figures and exported traces would change.
func TestFormatNeutral(t *testing.T) {
	m := Millis(104.35678)
	for _, verb := range []string{"%v", "%g", "%.4g", "%.3f", "%f"} {
		if got, want := fmt.Sprintf(verb, m), fmt.Sprintf(verb, float64(m)); got != want {
			t.Errorf("fmt %s: Millis %q != float64 %q", verb, got, want)
		}
	}
	got, err := json.Marshal(struct {
		L Millis `json:"latency_ms"`
	}{m})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(struct {
		L float64 `json:"latency_ms"`
	}{float64(m)})
	if string(got) != string(want) {
		t.Errorf("json: Millis %s != float64 %s", got, want)
	}
	var iface any = m
	if _, ok := iface.(fmt.Stringer); ok {
		t.Error("Millis must not implement fmt.Stringer")
	}
	if _, ok := iface.(json.Marshaler); ok {
		t.Error("Millis must not implement json.Marshaler")
	}
}
