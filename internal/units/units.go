// Package units defines typed physical quantities for the cost core.
//
// Every number HIOS schedules on — kernel latency t(v), stage latency
// t(S), transfer cost t(u,v), link bandwidth, FLOP counts — flows through
// the roofline and contention models, where a seconds-vs-milliseconds or
// bytes-vs-gigabytes mixup silently skews every figure the reproduction
// produces. Each quantity kind is therefore a distinct defined type over
// float64: the compiler rejects cross-kind addition and comparison
// outright, and the unitflow analyzer (internal/lint) checks the flows
// the type system cannot see.
//
// The types are zero-overhead: defined float64 types compile to the same
// arithmetic as raw float64, carry no methods that would change fmt or
// encoding/json behaviour (no String, no MarshalJSON), and every method
// below performs exactly the floating-point operation sequence of the
// raw-float64 formula it replaced — migrating onto them is bit-exact
// (asserted by TestBitExactFormulas).
//
// Millis is the native duration unit of the whole repository: the paper
// reports milliseconds, every cost-model value is milliseconds, and sums
// of stage times must accumulate in milliseconds to stay bit-identical
// (round-tripping through seconds would re-round every term). Seconds
// appears only as the true intermediate of the roofline divisions —
// work/throughput and bytes/bandwidth are dimensionally seconds — and is
// converted to Millis at the point of use. Micros exists for the Chrome
// trace exporter, whose wire format is microseconds.
//
// Legal cross-unit operations (the complete table; anything else is a
// dimensional error):
//
//	FLOPs / FLOPsPerSec  → Seconds   (FLOPs.Over)
//	Bytes / BytesPerSec  → Seconds   (Bytes.Over)
//	Seconds × 1e3        → Millis    (Seconds.Millis)
//	Millis  / 1e3        → Seconds   (Millis.Seconds)
//	Millis  × 1e3        → Micros    (Millis.Micros)
//	unit × dimensionless → unit      (Scale)
//	unit / same unit     → float64   (Ratio)
package units

// Millis is a duration in milliseconds — the repository's native time
// unit (operator latency t(v), stage latency t(S), transfer cost t(u,v),
// end-to-end makespan).
type Millis float64

// Seconds is a duration in seconds, the intermediate produced by the
// roofline divisions before conversion to the native Millis.
type Seconds float64

// Micros is a duration in microseconds (Chrome trace wire format).
type Micros float64

// Bytes is a data size in bytes (tensor sizes, memory traffic).
type Bytes float64

// FLOPs is an amount of floating-point work.
type FLOPs float64

// BytesPerSec is a data rate in bytes per second (memory and link
// bandwidth).
type BytesPerSec float64

// FLOPsPerSec is a compute throughput in FLOP per second.
type FLOPsPerSec float64

// GFLOPsPerSec converts a throughput stated in GFLOP/s (the unit device
// datasheets use) to FLOPsPerSec. For datasheet-scale magnitudes the
// product is an exact integer below 2^53, so no precision is lost.
func GFLOPsPerSec(g float64) FLOPsPerSec { return FLOPsPerSec(g * 1e9) }

// GBPerSec converts a bandwidth stated in GB/s (the unit link and memory
// datasheets use) to BytesPerSec.
func GBPerSec(g float64) BytesPerSec { return BytesPerSec(g * 1e9) }

// Over returns the time to execute f at throughput r: FLOPs/FLOPsPerSec
// is dimensionally seconds.
func (f FLOPs) Over(r FLOPsPerSec) Seconds { return Seconds(float64(f) / float64(r)) }

// Over returns the time to move b at rate r: Bytes/BytesPerSec is
// dimensionally seconds.
func (b Bytes) Over(r BytesPerSec) Seconds { return Seconds(float64(b) / float64(r)) }

// Millis converts seconds to the native milliseconds (×1e3, the exact
// multiply the raw formulas applied after their roofline division).
func (s Seconds) Millis() Millis { return Millis(float64(s) * 1e3) }

// Seconds converts milliseconds to seconds (÷1e3). Use only at unit
// boundaries; durations accumulate in Millis.
func (m Millis) Seconds() Seconds { return Seconds(float64(m) / 1e3) }

// Micros converts milliseconds to microseconds (×1e3).
func (m Millis) Micros() Micros { return Micros(float64(m) * 1e3) }

// Scale multiplies the duration by a dimensionless factor (contention
// multipliers, utilization weights, repeat counts).
func (m Millis) Scale(f float64) Millis { return Millis(float64(m) * f) }

// Scale multiplies the throughput by a dimensionless factor (efficiency
// derating, occupancy).
func (r FLOPsPerSec) Scale(f float64) FLOPsPerSec { return FLOPsPerSec(float64(r) * f) }

// Scale multiplies the rate by a dimensionless factor.
func (r BytesPerSec) Scale(f float64) BytesPerSec { return BytesPerSec(float64(r) * f) }

// Scale multiplies the size by a dimensionless factor.
func (b Bytes) Scale(f float64) Bytes { return Bytes(float64(b) * f) }

// Scale multiplies the work by a dimensionless factor.
func (w FLOPs) Scale(f float64) FLOPs { return FLOPs(float64(w) * f) }

// Ratio returns the dimensionless quotient of two durations (speedups,
// normalized gaps, rendering scales).
func (m Millis) Ratio(o Millis) float64 { return float64(m) / float64(o) }

// Ratio returns the dimensionless quotient of two sizes.
func (b Bytes) Ratio(o Bytes) float64 { return float64(b) / float64(o) }

// Div divides the duration by a dimensionless factor (perfect-spread
// work bounds, averaging). Kept as a true division — multiplying by the
// reciprocal would round differently.
func (m Millis) Div(f float64) Millis { return Millis(float64(m) / f) }
