// Package mpi is an in-process stand-in for the CUDA-aware MPI layer the
// paper's HIOS engine uses for inter-GPU tensor transfers. A Comm spans a
// fixed number of ranks (one per simulated GPU worker); ranks exchange
// tagged float32 tensors through mailboxes, with an optional link model
// injecting per-message transfer delay so the executor experiences the
// same communication/computation overlap structure the real system does.
//
// Semantics mirror the MPI subset HIOS needs: point-to-point tagged
// send/receive (MPI_Send/MPI_Recv with CUDA device pointers in the
// original) and a barrier. Sends are asynchronous (buffered); receives
// block until the matching message has fully "arrived" under the link
// model. The package never reads wall-clock time itself — the detclock
// invariant holds here too — so delay modeling requires the caller to
// inject a Clock; without one, delivery is instant and deterministic.
package mpi

import (
	"fmt"
	"sync"
	"time"
)

// DelayFunc maps a message size in bytes to a simulated transfer delay.
// A nil DelayFunc means instant delivery.
type DelayFunc func(bytes int) time.Duration

// Clock supplies the wall-clock operations the link model runs on. The
// package itself never reads time — delay modeling engages only when
// the measurement layer injects real clock functions (internal/runtime
// passes time.Now and time.Sleep, the one place wall-clock is legal).
// A zero Clock gives a clockless communicator: messages deliver
// instantly and any delayed send is rejected.
type Clock struct {
	Now   func() time.Time
	Sleep func(time.Duration)
}

// set reports whether the clock can time transfers.
func (c Clock) set() bool { return c.Now != nil && c.Sleep != nil }

// Comm is a communicator over a fixed set of ranks.
type Comm struct {
	size  int
	delay DelayFunc
	clock Clock

	mu    sync.Mutex
	boxes map[boxKey]chan envelope

	barrierMu   sync.Mutex
	barrierCond *sync.Cond
	barrierGen  int
	barrierIn   int

	sent, received int64
	bytesMoved     int64
}

type boxKey struct {
	src, dst, tag int
}

type envelope struct {
	data    []float32
	readyAt time.Time
}

// NewComm creates a communicator with the given number of ranks, link
// delay model and clock. A link model without a clock cannot apply its
// delays, and a half-set clock can compute a deadline it cannot sleep
// to, so both are rejected up front.
func NewComm(size int, delay DelayFunc, clock Clock) (*Comm, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: communicator needs at least 1 rank, got %d", size)
	}
	if (clock.Now != nil) != (clock.Sleep != nil) {
		return nil, fmt.Errorf("mpi: clock must set both Now and Sleep, or neither")
	}
	if delay != nil && !clock.set() {
		return nil, fmt.Errorf("mpi: a link delay model needs a clock")
	}
	c := &Comm{size: size, delay: delay, clock: clock, boxes: make(map[boxKey]chan envelope)}
	c.barrierCond = sync.NewCond(&c.barrierMu)
	return c, nil
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Rank returns the handle for rank i.
func (c *Comm) Rank(i int) (*Rank, error) {
	if i < 0 || i >= c.size {
		return nil, fmt.Errorf("mpi: rank %d out of range [0, %d)", i, c.size)
	}
	return &Rank{id: i, comm: c}, nil
}

// box returns (creating if needed) the mailbox for (src, dst, tag).
func (c *Comm) box(k boxKey) chan envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.boxes[k]
	if !ok {
		// Generous buffering keeps sends non-blocking for the message
		// patterns the executor generates (one tensor per edge).
		b = make(chan envelope, 64)
		c.boxes[k] = b
	}
	return b
}

// Stats reports message counts and payload volume.
func (c *Comm) Stats() (sent, received, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent, c.received, c.bytesMoved
}

// Rank is one endpoint of a communicator.
type Rank struct {
	id   int
	comm *Comm
}

// ID returns the rank index.
func (r *Rank) ID() int { return r.id }

// Send delivers data to rank dst under the given tag. The payload is
// copied, so the caller may reuse its buffer. Send does not block on the
// receiver (buffered mailbox); it returns an error for invalid ranks.
func (r *Rank) Send(dst, tag int, data []float32) error {
	var d time.Duration
	if r.comm.delay != nil {
		d = r.comm.delay(4 * len(data))
	}
	return r.SendDelayed(dst, tag, data, d)
}

// SendDelayed is Send with an explicit transfer delay, overriding the
// communicator's link model. The executor uses it to charge the cost
// model's per-edge transfer time instead of a bytes-based estimate.
// A positive delay requires the communicator to have a Clock.
func (r *Rank) SendDelayed(dst, tag int, data []float32, delay time.Duration) error {
	if dst < 0 || dst >= r.comm.size {
		return fmt.Errorf("mpi: send to invalid rank %d", dst)
	}
	if dst == r.id {
		return fmt.Errorf("mpi: rank %d sending to itself", dst)
	}
	var readyAt time.Time
	if delay > 0 {
		if !r.comm.clock.set() {
			return fmt.Errorf("mpi: delayed send needs a clock; construct the communicator with one")
		}
		readyAt = r.comm.clock.Now().Add(delay)
	}
	cp := make([]float32, len(data))
	copy(cp, data)
	box := r.comm.box(boxKey{src: r.id, dst: dst, tag: tag})
	select {
	case box <- envelope{data: cp, readyAt: readyAt}:
	default:
		// Mailbox full: block (backpressure), like an un-buffered
		// MPI_Send past the eager threshold.
		box <- envelope{data: cp, readyAt: readyAt}
	}
	r.comm.mu.Lock()
	r.comm.sent++
	r.comm.bytesMoved += int64(4 * len(data))
	r.comm.mu.Unlock()
	return nil
}

// Recv blocks until the message from rank src with the given tag arrives
// (send order per (src, dst, tag) is preserved) and the link-model delay
// has elapsed, then returns the payload.
func (r *Rank) Recv(src, tag int) ([]float32, error) {
	if src < 0 || src >= r.comm.size {
		return nil, fmt.Errorf("mpi: recv from invalid rank %d", src)
	}
	box := r.comm.box(boxKey{src: src, dst: r.id, tag: tag})
	env := <-box
	// readyAt is only ever set by a clocked send, so the clock is
	// guaranteed present here.
	if !env.readyAt.IsZero() {
		if wait := env.readyAt.Sub(r.comm.clock.Now()); wait > 0 {
			r.comm.clock.Sleep(wait)
		}
	}
	r.comm.mu.Lock()
	r.comm.received++
	r.comm.mu.Unlock()
	return env.data, nil
}

// Barrier blocks until every rank has entered it. Standard generation-
// counted barrier; safe for repeated use.
func (r *Rank) Barrier() {
	c := r.comm
	c.barrierMu.Lock()
	gen := c.barrierGen
	c.barrierIn++
	if c.barrierIn == c.size {
		c.barrierIn = 0
		c.barrierGen++
		c.barrierCond.Broadcast()
	} else {
		for gen == c.barrierGen {
			c.barrierCond.Wait()
		}
	}
	c.barrierMu.Unlock()
}
