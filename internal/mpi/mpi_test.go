package mpi

import (
	"sync"
	"testing"
	"time"
)

func TestSendRecvRoundTrip(t *testing.T) {
	c, err := NewComm(2, nil, Clock{})
	if err != nil {
		t.Fatal(err)
	}
	r0, _ := c.Rank(0)
	r1, _ := c.Rank(1)
	payload := []float32{1, 2, 3}
	if err := r0.Send(1, 7, payload); err != nil {
		t.Fatal(err)
	}
	got, err := r1.Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("payload corrupted: %v", got)
	}
	// Payload must be a copy.
	payload[0] = 99
	if got[0] == 99 {
		t.Fatal("Send aliases the caller's buffer")
	}
	sent, received, bytes := c.Stats()
	if sent != 1 || received != 1 || bytes != 12 {
		t.Fatalf("stats = %d %d %d", sent, received, bytes)
	}
}

func TestTagsIsolateMessages(t *testing.T) {
	c, _ := NewComm(2, nil, Clock{})
	r0, _ := c.Rank(0)
	r1, _ := c.Rank(1)
	if err := r0.Send(1, 1, []float32{1}); err != nil {
		t.Fatal(err)
	}
	if err := r0.Send(1, 2, []float32{2}); err != nil {
		t.Fatal(err)
	}
	// Receive in the opposite order of sending.
	b, err := r1.Recv(0, 2)
	if err != nil || b[0] != 2 {
		t.Fatalf("tag 2 = %v (%v)", b, err)
	}
	a, err := r1.Recv(0, 1)
	if err != nil || a[0] != 1 {
		t.Fatalf("tag 1 = %v (%v)", a, err)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	c, _ := NewComm(2, nil, Clock{})
	r0, _ := c.Rank(0)
	r1, _ := c.Rank(1)
	done := make(chan []float32)
	go func() {
		v, _ := r1.Recv(0, 3)
		done <- v
	}()
	select {
	case <-done:
		t.Fatal("Recv returned before Send")
	case <-time.After(10 * time.Millisecond):
	}
	if err := r0.Send(1, 3, []float32{42}); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v[0] != 42 {
			t.Fatalf("wrong payload: %v", v)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv never completed")
	}
}

// wallClock is the real clock the delay tests run on; production code
// injects the same pair from internal/runtime.
func wallClock() Clock { return Clock{Now: time.Now, Sleep: time.Sleep} }

func TestDelayedDelivery(t *testing.T) {
	c, _ := NewComm(2, nil, wallClock())
	r0, _ := c.Rank(0)
	r1, _ := c.Rank(1)
	const delay = 30 * time.Millisecond
	start := time.Now()
	if err := r0.SendDelayed(1, 0, []float32{1}, delay); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Recv(0, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("message arrived after %v, before the %v delay", elapsed, delay)
	}
}

func TestLinkModelDelay(t *testing.T) {
	c, _ := NewComm(2, func(bytes int) time.Duration {
		return time.Duration(bytes) * time.Millisecond // 1 ms per byte
	}, wallClock())
	r0, _ := c.Rank(0)
	r1, _ := c.Rank(1)
	start := time.Now()
	if err := r0.Send(1, 0, []float32{1, 2, 3, 4, 5}); err != nil { // 20 bytes
		t.Fatal(err)
	}
	if _, err := r1.Recv(0, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("link model not applied: %v", elapsed)
	}
}

// A communicator without a clock delivers instantly and refuses any
// request that needs one: delayed sends, link models, half-set clocks.
func TestClocklessSemantics(t *testing.T) {
	if _, err := NewComm(2, nil, Clock{Now: time.Now}); err == nil {
		t.Fatal("accepted a clock with Now but no Sleep")
	}
	if _, err := NewComm(2, func(int) time.Duration { return time.Second }, Clock{}); err == nil {
		t.Fatal("accepted a link delay model without a clock")
	}
	c, _ := NewComm(2, nil, Clock{})
	r0, _ := c.Rank(0)
	r1, _ := c.Rank(1)
	if err := r0.SendDelayed(1, 0, []float32{1}, time.Second); err == nil {
		t.Fatal("accepted a delayed send without a clock")
	}
	// Zero-delay sends stay legal and deliver immediately.
	if err := r0.SendDelayed(1, 0, []float32{7}, 0); err != nil {
		t.Fatal(err)
	}
	if v, err := r1.Recv(0, 0); err != nil || v[0] != 7 {
		t.Fatalf("clockless delivery = %v (%v)", v, err)
	}
}

func TestInvalidRanks(t *testing.T) {
	if _, err := NewComm(0, nil, Clock{}); err == nil {
		t.Fatal("accepted empty communicator")
	}
	c, _ := NewComm(2, nil, Clock{})
	if _, err := c.Rank(5); err == nil {
		t.Fatal("accepted out-of-range rank")
	}
	r0, _ := c.Rank(0)
	if err := r0.Send(5, 0, nil); err == nil {
		t.Fatal("accepted send to invalid rank")
	}
	if err := r0.Send(0, 0, nil); err == nil {
		t.Fatal("accepted send to self")
	}
	if _, err := r0.Recv(9, 0); err == nil {
		t.Fatal("accepted recv from invalid rank")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 4
	c, _ := NewComm(n, nil, Clock{})
	var phase [n]int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, _ := c.Rank(i)
			for round := 0; round < 3; round++ {
				mu.Lock()
				phase[i]++
				mu.Unlock()
				r.Barrier()
				// After the barrier, every rank must have
				// completed this round.
				mu.Lock()
				for j := 0; j < n; j++ {
					if int(phase[j]) < round+1 {
						t.Errorf("rank %d saw rank %d at phase %d in round %d", i, j, phase[j], round)
					}
				}
				mu.Unlock()
				r.Barrier()
			}
		}(i)
	}
	wg.Wait()
}

func TestManyConcurrentMessages(t *testing.T) {
	const ranks = 4
	const msgs = 200
	c, _ := NewComm(ranks, nil, Clock{})
	var wg sync.WaitGroup
	for src := 0; src < ranks; src++ {
		for dst := 0; dst < ranks; dst++ {
			if src == dst {
				continue
			}
			wg.Add(2)
			go func(src, dst int) {
				defer wg.Done()
				r, _ := c.Rank(src)
				for k := 0; k < msgs; k++ {
					if err := r.Send(dst, k, []float32{float32(src*1000 + k)}); err != nil {
						t.Error(err)
						return
					}
				}
			}(src, dst)
			go func(src, dst int) {
				defer wg.Done()
				r, _ := c.Rank(dst)
				for k := 0; k < msgs; k++ {
					v, err := r.Recv(src, k)
					if err != nil || v[0] != float32(src*1000+k) {
						t.Errorf("recv %d->%d tag %d: %v %v", src, dst, k, v, err)
						return
					}
				}
			}(src, dst)
		}
	}
	wg.Wait()
	sent, received, _ := c.Stats()
	want := int64(ranks * (ranks - 1) * msgs)
	if sent != want || received != want {
		t.Fatalf("stats = %d/%d, want %d", sent, received, want)
	}
}
