package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/lp"
	"github.com/shus-lab/hios/internal/sched/mr"
)

func TestSimpleCrossGPUTransfer(t *testing.T) {
	g := graph.New(2, 1)
	a := g.AddOp(graph.Op{Name: "a", Time: 1})
	b := g.AddOp(graph.Op{Name: "b", Time: 2})
	g.AddEdge(a, b, 0.5)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	s := sched.New(2)
	s.Append(0, a)
	s.Append(1, b)

	tr, err := Run(g, m, s)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Latency != 3.5 {
		t.Fatalf("latency = %g, want 3.5", tr.Latency)
	}
	if len(tr.Transfers) != 1 {
		t.Fatalf("transfers = %v, want 1", tr.Transfers)
	}
	x := tr.Transfers[0]
	if x.Depart != 1 || x.Arrive != 1.5 || x.FromGPU != 0 || x.ToGPU != 1 {
		t.Fatalf("transfer record wrong: %+v", x)
	}
	if len(tr.Stages) != 2 || tr.Stages[1].Start != 1.5 {
		t.Fatalf("stage records wrong: %+v", tr.Stages)
	}
}

func TestDedupedTransferPerGPU(t *testing.T) {
	// One producer, two consumers on the same remote GPU: a single
	// physical transfer.
	g := graph.New(3, 2)
	a := g.AddOp(graph.Op{Name: "a", Time: 1})
	b := g.AddOp(graph.Op{Name: "b", Time: 1})
	c := g.AddOp(graph.Op{Name: "c", Time: 1})
	g.AddEdge(a, b, 0.5)
	g.AddEdge(a, c, 0.5)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	s := sched.New(2)
	s.Append(0, a)
	s.Append(1, b)
	s.Append(1, c)
	tr, err := Run(g, m, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Transfers) != 1 {
		t.Fatalf("expected one deduplicated transfer, got %d", len(tr.Transfers))
	}
}

func TestDeadlockDetected(t *testing.T) {
	g := graph.New(4, 2)
	a := g.AddOp(graph.Op{Time: 1})
	b := g.AddOp(graph.Op{Time: 1})
	c := g.AddOp(graph.Op{Time: 1})
	d := g.AddOp(graph.Op{Time: 1})
	g.AddEdge(a, b, 0.1)
	g.AddEdge(c, d, 0.1)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	s := sched.New(2)
	s.Append(0, d)
	s.Append(0, a)
	s.Append(1, b)
	s.Append(1, c)
	if _, err := Run(g, m, s); err == nil {
		t.Fatal("simulator accepted a deadlocked schedule")
	}
}

// TestMatchesEvaluator is the central cross-check: the event-driven
// simulator and the analytic evaluator must agree on every schedule.
func TestMatchesEvaluator(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randdag.Paper()
		cfg.Ops = 10 + rng.Intn(60)
		cfg.Layers = 2 + rng.Intn(8)
		cfg.Deps = cfg.Ops + rng.Intn(cfg.Ops)
		cfg.Seed = seed
		g := randdag.MustGenerate(cfg)
		m := cost.FromGraph(g, cost.DefaultContention())
		gpus := 1 + rng.Intn(4)

		var s *sched.Schedule
		switch rng.Intn(3) {
		case 0:
			place := make([]int, cfg.Ops)
			for i := range place {
				place[i] = rng.Intn(gpus)
			}
			s = sched.FromPlacement(gpus, g.ByPriority(), place)
		case 1:
			res, err := lp.Schedule(g, m, lp.Options{GPUs: gpus})
			if err != nil {
				return false
			}
			s = res.Schedule
		default:
			res, err := mr.Schedule(g, m, mr.Options{GPUs: gpus})
			if err != nil {
				return false
			}
			s = res.Schedule
		}

		want, err := sched.Latency(g, m, s)
		if err != nil {
			return false
		}
		tr, err := Run(g, m, s)
		if err != nil {
			return false
		}
		diff := tr.Latency - want
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStageRecordsCoverAllOps(t *testing.T) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 30, 5, 60, 3
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := lp.Schedule(g, m, lp.Options{GPUs: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(g, m, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[graph.OpID]bool)
	for _, st := range tr.Stages {
		if st.Finish < st.Start {
			t.Fatalf("stage finishes before it starts: %+v", st)
		}
		for _, op := range st.Ops {
			if seen[op] {
				t.Fatalf("operator %d executed twice", op)
			}
			seen[op] = true
		}
	}
	if len(seen) != g.NumOps() {
		t.Fatalf("executed %d of %d operators", len(seen), g.NumOps())
	}
}

func TestRejectsIncompleteSchedule(t *testing.T) {
	g := graph.New(2, 0)
	g.AddOp(graph.Op{Time: 1})
	g.AddOp(graph.Op{Time: 1})
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	s := sched.New(1)
	s.Append(0, 0)
	if _, err := Run(g, m, s); err == nil {
		t.Fatal("simulator accepted an incomplete schedule")
	}
}
