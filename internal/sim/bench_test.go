package sim

import (
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched/lp"
)

func BenchmarkSimulate200Ops4GPUs(b *testing.B) {
	cfg := randdag.Paper()
	cfg.Seed = 5
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := lp.Schedule(g, m, lp.Options{GPUs: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunOpts(g, m, res.Schedule, Options{SerializeLinks: true}); err != nil {
			b.Fatal(err)
		}
	}
}
