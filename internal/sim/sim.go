// Package sim is a deterministic discrete-event simulator that executes a
// schedule against a cost model, device by device, event by event. It is
// the substitute for the paper's physical dual-A40 testbed: stages run
// sequentially on their GPU, the operators of a stage launch together and
// occupy the device for the cost model's t(S), and a tensor crossing GPUs
// arrives t(u, v) after its producer stage finishes.
//
// The engine is redundant with the analytic evaluator in package sched by
// design — the two compute the same makespan through entirely different
// mechanisms, which the test suite exploits as a cross-check — and it
// additionally produces a full per-stage timeline for trace export.
package sim

import (
	"fmt"
	"sort"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/units"
)

// StageRecord is one executed stage in the timeline.
type StageRecord struct {
	GPU    int
	Index  int
	Ops    []graph.OpID
	Start  units.Millis
	Finish units.Millis
}

// TransferRecord is one inter-GPU tensor transfer in the timeline.
type TransferRecord struct {
	From, To       graph.OpID
	FromGPU, ToGPU int
	Depart, Arrive units.Millis
}

// Trace is the full simulated execution.
type Trace struct {
	Latency   units.Millis
	Stages    []StageRecord
	Transfers []TransferRecord
}

// event is a pending simulator event.
type event struct {
	at   units.Millis
	kind int // 0: stage finish, 1: transfer arrival
	seq  int // tie-break for determinism
	gpu  int // stage finish: which GPU
	xfer int // transfer arrival: index into pending transfers
}

// eventHeap is a typed binary min-heap. It deliberately does not satisfy
// heap.Interface: container/heap's Push/Pop trade in `any` and would box
// one event per operation in the simulator's hot loop. The (at, seq) key
// is a total order, so the pop sequence is identical to container/heap's.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	// Exact IEEE inequality keeps the heap order strict-weak; ties fall
	// through to the deterministic sequence number.
	if h[i].at != h[j].at { //lint:floatexact comparator tie-break: epsilon would break the strict weak order
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	x := s[n]
	*h = s[:n]
	if n > 0 {
		h.down(0)
	}
	return x
}

func (h eventHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.Less(i, p) {
			break
		}
		h.Swap(i, p)
		i = p
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && h.Less(r, l) {
			j = r
		}
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		i = j
	}
}

func (h eventHeap) Peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// Options controls simulation fidelity.
type Options struct {
	// SerializeLinks models each directed GPU pair's interconnect as a
	// single shared resource: concurrent transfers between the same
	// pair of devices queue FIFO instead of overlapping. The analytic
	// cost model (paper §III-A) — and therefore every scheduler —
	// assumes contention-free links; real platforms with one NVLink
	// bridge do not behave that way, which is one reason measured
	// latencies diverge from scheduler estimates. Off by default so
	// that Run agrees exactly with sched.Evaluate.
	SerializeLinks bool
}

// Validate reports whether the options are usable. Every Options value
// is currently valid — the method exists so the simulator follows the
// repository's validated-options pattern (pubapi lint) and gains checks
// compatibly if fields grow.
func (o Options) Validate() error { return nil }

// Run simulates schedule s for graph g under cost model m with default
// options: contention-free links, matching the analytic evaluator.
func Run(g *graph.Graph, m cost.Model, s *sched.Schedule) (*Trace, error) {
	return RunOpts(g, m, s, Options{})
}

// RunOpts simulates schedule s for graph g under cost model m. The
// schedule must be complete and valid; a deadlocked schedule (cyclic stage
// dependencies) is reported as an error, mirroring the evaluator.
//
//lint:hotpath
func RunOpts(g *graph.Graph, m cost.Model, s *sched.Schedule, opt Options) (*Trace, error) {
	if err := sched.Validate(g, s); err != nil {
		return nil, err
	}
	n := g.NumOps()
	gpuOf, stageOf := s.StageOf(n)

	// For each stage, how many cross-GPU tensor arrivals it awaits, and
	// per-GPU sequential positions.
	type stageKey struct{ gpu, idx int }
	waiting := make(map[stageKey]int)
	// Dedupe transfers by (producer op, destination GPU): the runtime
	// sends each tensor to each remote GPU once, however many consumers
	// live there.
	type xferKey struct {
		op     graph.OpID
		dstGPU int
	}
	consumers := make(map[xferKey][]graph.OpID)
	for _, e := range g.Edges() {
		gu, gv := gpuOf[e.From], gpuOf[e.To]
		if gu == gv {
			continue
		}
		k := xferKey{op: e.From, dstGPU: gv}
		consumers[k] = append(consumers[k], e.To)
	}
	// Each distinct transfer blocks every consumer stage on the
	// destination GPU.
	type pendingXfer struct {
		from       graph.OpID
		fromGPU    int
		toGPU      int
		comm       units.Millis
		dstStages  []stageKey
		consumerOp graph.OpID // representative consumer, for the record
	}
	xfersByProducer := make(map[graph.OpID][]int)
	xfers := make([]pendingXfer, 0, len(consumers))
	// Deterministic iteration order over the consumers map.
	xkeys := make([]xferKey, 0, len(consumers))
	for k := range consumers {
		xkeys = append(xkeys, k)
	}
	sort.Slice(xkeys, func(i, j int) bool {
		if xkeys[i].op != xkeys[j].op {
			return xkeys[i].op < xkeys[j].op
		}
		return xkeys[i].dstGPU < xkeys[j].dstGPU
	})
	// One dedupe map serves every transfer; cleared between keys.
	seen := make(map[stageKey]bool)
	for _, k := range xkeys {
		cs := consumers[k]
		// Insertion sort: cs is tiny (consumers of one tensor on one GPU)
		// and a sort.Slice closure here would allocate per transfer.
		for a := 1; a < len(cs); a++ {
			for b := a; b > 0 && cs[b] < cs[b-1]; b-- {
				cs[b], cs[b-1] = cs[b-1], cs[b]
			}
		}
		clear(seen)
		px := pendingXfer{
			from:       k.op,
			fromGPU:    gpuOf[k.op],
			toGPU:      k.dstGPU,
			comm:       cost.CommBetween(m, k.op, cs[0], gpuOf[k.op], k.dstGPU),
			consumerOp: cs[0],
		}
		for _, c := range cs {
			sk := stageKey{gpu: gpuOf[c], idx: stageOf[c]}
			if !seen[sk] {
				seen[sk] = true
				px.dstStages = append(px.dstStages, sk)
				waiting[sk]++
			}
		}
		xfersByProducer[k.op] = append(xfersByProducer[k.op], len(xfers))
		xfers = append(xfers, px)
	}

	tr := &Trace{}
	next := make([]int, len(s.GPUs)) // next stage index per GPU
	busyUntil := make([]units.Millis, len(s.GPUs))
	started := make([]bool, len(s.GPUs)) // whether next[gpu] is running
	// linkFree[src*nG+dst] is when the directed link src->dst next becomes
	// idle, used only under SerializeLinks. Row-major flat array.
	nG := len(s.GPUs)
	linkFree := make([]units.Millis, nG*nG)
	now := units.Millis(0)
	seq := 0
	var h eventHeap

	startReady := func(gpu int) {
		if started[gpu] || next[gpu] >= len(s.GPUs[gpu].Stages) {
			return
		}
		sk := stageKey{gpu: gpu, idx: next[gpu]}
		if waiting[sk] > 0 {
			return
		}
		ops := s.GPUs[gpu].Stages[next[gpu]].Ops
		start := now
		if busyUntil[gpu] > start {
			start = busyUntil[gpu]
		}
		dur := m.StageTime(ops)
		finish := start + dur
		busyUntil[gpu] = finish
		started[gpu] = true
		tr.Stages = append(tr.Stages, StageRecord{
			GPU: gpu, Index: next[gpu], Ops: ops, Start: start, Finish: finish,
		})
		h.push(event{at: finish, kind: 0, seq: seq, gpu: gpu})
		seq++
	}

	for gpu := range s.GPUs {
		startReady(gpu)
	}

	done := 0
	total := s.NumStages()
	for h.Len() > 0 {
		ev := h.pop()
		now = ev.at
		switch ev.kind {
		case 0: // stage finished on ev.gpu
			stage := s.GPUs[ev.gpu].Stages[next[ev.gpu]]
			done++
			// Launch outbound transfers for every member's tensors.
			for _, op := range stage.Ops {
				for _, xi := range xfersByProducer[op] {
					x := xfers[xi]
					depart := now
					if opt.SerializeLinks {
						if f := linkFree[x.fromGPU*nG+x.toGPU]; f > depart {
							depart = f
						}
						linkFree[x.fromGPU*nG+x.toGPU] = depart + x.comm
					}
					arrive := depart + x.comm
					tr.Transfers = append(tr.Transfers, TransferRecord{
						From: x.from, To: x.consumerOp,
						FromGPU: x.fromGPU, ToGPU: x.toGPU,
						Depart: depart, Arrive: arrive,
					})
					h.push(event{at: arrive, kind: 1, seq: seq, xfer: xi})
					seq++
				}
			}
			if now > tr.Latency {
				tr.Latency = now
			}
			next[ev.gpu]++
			started[ev.gpu] = false
			startReady(ev.gpu)
		case 1: // transfer arrived
			x := xfers[ev.xfer]
			for _, sk := range x.dstStages {
				waiting[sk]--
			}
			startReady(x.toGPU)
		}
	}
	if done != total {
		return nil, fmt.Errorf("sim: deadlock, %d of %d stages executed: %w", done, total, graph.ErrCycle)
	}
	sort.Slice(tr.Stages, func(i, j int) bool {
		// Exact IEEE inequality: see eventHeap.Less.
		if tr.Stages[i].Start != tr.Stages[j].Start { //lint:floatexact comparator tie-break: epsilon would break the strict weak order
			return tr.Stages[i].Start < tr.Stages[j].Start
		}
		if tr.Stages[i].GPU != tr.Stages[j].GPU {
			return tr.Stages[i].GPU < tr.Stages[j].GPU
		}
		return tr.Stages[i].Index < tr.Stages[j].Index
	})
	return tr, nil
}
