package trace

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sim"
)

// TestRenderersRobustProperty drives every renderer over random graphs and
// random placements: JSON round trips must preserve evaluation, Chrome
// traces must be valid JSON, and Gantt/DOT must produce non-empty output
// without panicking, at arbitrary widths.
func TestRenderersRobustProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randdag.Paper()
		cfg.Ops = 5 + rng.Intn(25)
		cfg.Layers = 2 + rng.Intn(4)
		cfg.Deps = cfg.Ops
		cfg.Seed = seed
		g := randdag.MustGenerate(cfg)
		m := cost.FromGraph(g, cost.DefaultContention())
		gpus := 1 + rng.Intn(3)
		place := make([]int, cfg.Ops)
		for i := range place {
			place[i] = rng.Intn(gpus)
		}
		s := sched.FromPlacement(gpus, g.ByPriority(), place)
		lat, err := sched.Latency(g, m, s)
		if err != nil {
			return false
		}

		// JSON round trip.
		data, err := MarshalSchedule(g, s, "prop", "rand", lat)
		if err != nil {
			return false
		}
		back, _, err := UnmarshalSchedule(data)
		if err != nil {
			return false
		}
		lat2, err := sched.Latency(g, m, back)
		if err != nil || lat2 != lat {
			return false
		}

		// Chrome trace is valid JSON.
		tr, err := sim.RunOpts(g, m, s, sim.Options{SerializeLinks: rng.Intn(2) == 0})
		if err != nil {
			return false
		}
		ct, err := ChromeTrace(g, tr)
		if err != nil {
			return false
		}
		var events []map[string]any
		if err := json.Unmarshal(ct, &events); err != nil {
			return false
		}

		// Gantt and DOT render without panicking at odd widths.
		width := 1 + rng.Intn(120)
		if !strings.Contains(Gantt(g, tr, width), "GPU0") {
			return false
		}
		dot := DOT(g, s)
		return strings.HasPrefix(dot, "digraph") && strings.Count(dot, "->") == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
