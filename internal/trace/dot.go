package trace

import (
	"fmt"
	"io"
	"strings"

	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sched"
)

// WriteDOT streams the computation graph in Graphviz format to w. When a
// schedule is supplied (s may be nil), operators are clustered by GPU
// and stage members share a fill color, which makes placement decisions
// visible at a glance with `dot -Tsvg`. It is the primitive behind DOT;
// use it to write large graphs straight to a file or pipe.
func WriteDOT(w io.Writer, g *graph.Graph, s *sched.Schedule) error {
	ew := &errWriter{w: w}
	io.WriteString(ew, "digraph hios {\n")
	io.WriteString(ew, "  rankdir=TB;\n  node [shape=box, style=filled, fillcolor=white, fontsize=10];\n")

	// Stage colors cycle through a small palette.
	palette := []string{"#cfe8ff", "#ffe3cf", "#d8f5d0", "#f3d1f4", "#fff3b0", "#d0f0f5"}

	if s != nil {
		gpuOf, stageOf := s.StageOf(g.NumOps())
		for gi := range s.GPUs {
			if len(s.GPUs[gi].Stages) == 0 {
				continue
			}
			fmt.Fprintf(ew, "  subgraph cluster_gpu%d {\n    label=\"GPU %d\";\n    color=gray;\n", gi, gi)
			for v := 0; v < g.NumOps(); v++ {
				if gpuOf[v] != gi {
					continue
				}
				color := palette[stageOf[v]%len(palette)]
				fmt.Fprintf(ew, "    n%d [label=%q, fillcolor=%q];\n", v, nodeLabel(g, graph.OpID(v)), color)
			}
			io.WriteString(ew, "  }\n")
		}
		// Unscheduled operators (partial schedules) go outside.
		for v := 0; v < g.NumOps(); v++ {
			if gpuOf[v] < 0 {
				fmt.Fprintf(ew, "  n%d [label=%q];\n", v, nodeLabel(g, graph.OpID(v)))
			}
		}
	} else {
		for v := 0; v < g.NumOps(); v++ {
			fmt.Fprintf(ew, "  n%d [label=%q];\n", v, nodeLabel(g, graph.OpID(v)))
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(ew, "  n%d -> n%d [label=\"%.3g\", fontsize=8];\n", e.From, e.To, e.Time)
	}
	io.WriteString(ew, "}\n")
	return ew.err
}

// DOT renders the computation graph in Graphviz format as a string; it
// delegates to WriteDOT.
func DOT(g *graph.Graph, s *sched.Schedule) string {
	var b strings.Builder
	// strings.Builder never returns a write error.
	_ = WriteDOT(&b, g, s)
	return b.String()
}

func nodeLabel(g *graph.Graph, v graph.OpID) string {
	op := g.Op(v)
	name := op.Name
	if name == "" {
		name = fmt.Sprintf("op%d", v)
	}
	return fmt.Sprintf("%s\n%.3g ms", name, op.Time)
}
