package trace

import (
	"fmt"
	"strings"

	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sched"
)

// DOT renders the computation graph in Graphviz format. When a schedule is
// supplied (s may be nil), operators are clustered by GPU and stage
// members share a fill color, which makes placement decisions visible at a
// glance with `dot -Tsvg`.
func DOT(g *graph.Graph, s *sched.Schedule) string {
	var b strings.Builder
	b.WriteString("digraph hios {\n")
	b.WriteString("  rankdir=TB;\n  node [shape=box, style=filled, fillcolor=white, fontsize=10];\n")

	// Stage colors cycle through a small palette.
	palette := []string{"#cfe8ff", "#ffe3cf", "#d8f5d0", "#f3d1f4", "#fff3b0", "#d0f0f5"}

	if s != nil {
		gpuOf, stageOf := s.StageOf(g.NumOps())
		for gi := range s.GPUs {
			if len(s.GPUs[gi].Stages) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  subgraph cluster_gpu%d {\n    label=\"GPU %d\";\n    color=gray;\n", gi, gi)
			for v := 0; v < g.NumOps(); v++ {
				if gpuOf[v] != gi {
					continue
				}
				color := palette[stageOf[v]%len(palette)]
				fmt.Fprintf(&b, "    n%d [label=%q, fillcolor=%q];\n", v, nodeLabel(g, graph.OpID(v)), color)
			}
			b.WriteString("  }\n")
		}
		// Unscheduled operators (partial schedules) go outside.
		for v := 0; v < g.NumOps(); v++ {
			if gpuOf[v] < 0 {
				fmt.Fprintf(&b, "  n%d [label=%q];\n", v, nodeLabel(g, graph.OpID(v)))
			}
		}
	} else {
		for v := 0; v < g.NumOps(); v++ {
			fmt.Fprintf(&b, "  n%d [label=%q];\n", v, nodeLabel(g, graph.OpID(v)))
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%.3g\", fontsize=8];\n", e.From, e.To, e.Time)
	}
	b.WriteString("}\n")
	return b.String()
}

func nodeLabel(g *graph.Graph, v graph.OpID) string {
	op := g.Op(v)
	name := op.Name
	if name == "" {
		name = fmt.Sprintf("op%d", v)
	}
	return fmt.Sprintf("%s\n%.3g ms", name, op.Time)
}
