package trace

import (
	"testing"

	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sched"
)

// FuzzUnmarshalSchedule hardens the JSON interchange path: arbitrary
// bytes must either parse into a structurally valid schedule or return an
// error — never panic, never produce a schedule that crashes traversal.
func FuzzUnmarshalSchedule(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"gpus":[]}`))
	f.Add([]byte(`{"gpus":[{"gpu":0,"stages":[{"ops":[0,1]}]}]}`))
	f.Add([]byte(`{"gpus":[{"gpu":-1}]}`))
	f.Add([]byte(`{"gpus":[{"gpu":3,"stages":[{"ops":[2]},{"ops":[]}]}]}`))
	f.Add([]byte(`garbage`))
	s := sched.New(2)
	s.Append(0, 0)
	s.Append(1, 1)
	s.AppendStage(0, []graph.OpID{2, 3})
	if data, err := MarshalSchedule(nil, s, "m", "a", 1.5); err == nil {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		back, meta, err := UnmarshalSchedule(data)
		if err != nil {
			return
		}
		if back == nil || meta == nil {
			t.Fatal("nil results without error")
		}
		// The schedule must be safe to traverse and re-marshal.
		_ = back.NumOps()
		_ = back.NumStages()
		_ = back.String()
		if _, err := MarshalSchedule(nil, back, meta.Model, meta.Algorithm, meta.LatencyMs); err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
	})
}
