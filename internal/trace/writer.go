package trace

import "io"

// errWriter latches the first write error so rendering code can emit a
// long sequence of fmt.Fprintf calls and check once at the end — the
// standard sticky-error idiom for io.Writer-shaped export APIs.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}
