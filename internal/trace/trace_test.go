package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/lp"
	"github.com/shus-lab/hios/internal/sim"
	"github.com/shus-lab/hios/internal/units"
)

func fixture(t *testing.T) (*graph.Graph, cost.Model, *sched.Schedule, units.Millis) {
	t.Helper()
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 20, 4, 40, 7
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := lp.Schedule(g, m, lp.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	return g, m, res.Schedule, res.Latency
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	g, m, s, lat := fixture(t)
	data, err := MarshalSchedule(g, s, "test-model", "hios-lp", lat)
	if err != nil {
		t.Fatal(err)
	}
	back, meta, err := UnmarshalSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Model != "test-model" || meta.Algorithm != "hios-lp" || meta.LatencyMs != lat {
		t.Fatalf("metadata lost: %+v", meta)
	}
	if back.String() != s.String() {
		t.Fatalf("round trip changed the schedule:\n%s\n%s", s, back)
	}
	// The round-tripped schedule must still evaluate identically.
	lat2, err := sched.Latency(g, m, back)
	if err != nil {
		t.Fatal(err)
	}
	if lat2 != lat {
		t.Fatalf("latency changed through JSON: %g vs %g", lat2, lat)
	}
}

func TestMarshalIncludesNames(t *testing.T) {
	g, _, s, lat := fixture(t)
	data, err := MarshalSchedule(g, s, "m", "a", lat)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"names"`) {
		t.Fatal("schedule JSON lacks operator names")
	}
	// Without a graph, names are omitted.
	data, err = MarshalSchedule(nil, s, "m", "a", lat)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"names"`) {
		t.Fatal("nil graph should omit names")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, _, err := UnmarshalSchedule([]byte("{")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	if _, _, err := UnmarshalSchedule([]byte(`{"gpus":[{"gpu":-1,"stages":[]}]}`)); err == nil {
		t.Fatal("accepted negative GPU index")
	}
}

func TestChromeTrace(t *testing.T) {
	g, m, s, _ := fixture(t)
	tr, err := sim.Run(g, m, s)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ChromeTrace(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(events) < g.NumOps()/4 {
		t.Fatalf("suspiciously few events: %d", len(events))
	}
	stages, transfers := 0, 0
	for _, e := range events {
		switch e["cat"] {
		case "stage":
			stages++
		case "transfer":
			transfers++
		}
		if e["ph"] != "X" {
			t.Fatalf("unexpected phase: %v", e)
		}
	}
	if stages == 0 {
		t.Fatal("no stage events")
	}
	if s.UsedGPUs() > 1 && transfers == 0 {
		t.Fatal("multi-GPU trace has no transfer events")
	}
}
