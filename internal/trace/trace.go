// Package trace serializes schedules and execution timelines.
//
// The paper's toolchain generates operator schedules in JSON, which the
// C++/MPI engine then loads to run inference on the real GPUs; this
// package reproduces that interchange format and additionally emits
// Chrome-trace timelines (chrome://tracing / Perfetto) for visual
// inspection of a simulated execution.
package trace

import (
	"encoding/json"
	"fmt"

	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sim"
	"github.com/shus-lab/hios/internal/units"
)

// ScheduleJSON is the on-disk schedule format: one entry per GPU, each an
// ordered list of stages, each a list of operator IDs (optionally with
// names for readability).
type ScheduleJSON struct {
	// Model names the scheduled network.
	Model string `json:"model"`
	// Algorithm names the scheduler that produced it.
	Algorithm string `json:"algorithm"`
	// LatencyMs is the predicted inference latency. units.Millis
	// marshals exactly like float64 (it defines no MarshalJSON), so the
	// wire format is unchanged.
	LatencyMs units.Millis `json:"latency_ms"`
	// GPUs holds the per-device stage lists.
	GPUs []GPUJSON `json:"gpus"`
}

// GPUJSON is one device's schedule.
type GPUJSON struct {
	GPU    int         `json:"gpu"`
	Stages []StageJSON `json:"stages"`
}

// StageJSON is one concurrent stage.
type StageJSON struct {
	Ops   []int    `json:"ops"`
	Names []string `json:"names,omitempty"`
}

// MarshalSchedule renders a schedule to the JSON interchange form.
func MarshalSchedule(g *graph.Graph, s *sched.Schedule, model, algorithm string, latency units.Millis) ([]byte, error) {
	out := ScheduleJSON{Model: model, Algorithm: algorithm, LatencyMs: latency}
	for gi, q := range s.GPUs {
		gj := GPUJSON{GPU: gi}
		for _, st := range q.Stages {
			sj := StageJSON{}
			for _, op := range st.Ops {
				sj.Ops = append(sj.Ops, int(op))
				if g != nil {
					sj.Names = append(sj.Names, g.Op(op).Name)
				}
			}
			gj.Stages = append(gj.Stages, sj)
		}
		out.GPUs = append(out.GPUs, gj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalSchedule parses the JSON interchange form back into a Schedule.
func UnmarshalSchedule(data []byte) (*sched.Schedule, *ScheduleJSON, error) {
	var sj ScheduleJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return nil, nil, fmt.Errorf("trace: parsing schedule JSON: %w", err)
	}
	maxGPU := -1
	for _, g := range sj.GPUs {
		if g.GPU < 0 {
			return nil, nil, fmt.Errorf("trace: negative GPU index %d", g.GPU)
		}
		if g.GPU > maxGPU {
			maxGPU = g.GPU
		}
	}
	if maxGPU < 0 {
		return sched.New(0), &sj, nil
	}
	s := sched.New(maxGPU + 1)
	for _, g := range sj.GPUs {
		for _, st := range g.Stages {
			ops := make([]graph.OpID, len(st.Ops))
			for i, o := range st.Ops {
				ops[i] = graph.OpID(o)
			}
			s.AppendStage(g.GPU, ops)
		}
	}
	return s, &sj, nil
}

// chromeEvent is one Chrome-trace "complete" event.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// ChromeTrace renders a simulated execution as a Chrome-trace JSON array:
// one process per GPU, stages as duration events, transfers on a separate
// "link" track.
func ChromeTrace(g *graph.Graph, tr *sim.Trace) ([]byte, error) {
	var events []chromeEvent
	for _, st := range tr.Stages {
		name := fmt.Sprintf("stage %d", st.Index)
		if g != nil && len(st.Ops) > 0 {
			name = ""
			for i, op := range st.Ops {
				if i > 0 {
					name += "+"
				}
				name += g.Op(op).Name
			}
		}
		events = append(events, chromeEvent{
			Name: name,
			Cat:  "stage",
			Ph:   "X",
			TS:   float64(st.Start.Micros()),
			Dur:  float64((st.Finish - st.Start).Micros()),
			PID:  st.GPU,
			TID:  0,
		})
	}
	for _, x := range tr.Transfers {
		name := fmt.Sprintf("xfer %d->%d", x.From, x.To)
		if g != nil {
			name = fmt.Sprintf("%s -> GPU%d", g.Op(x.From).Name, x.ToGPU)
		}
		events = append(events, chromeEvent{
			Name: name,
			Cat:  "transfer",
			Ph:   "X",
			TS:   float64(x.Depart.Micros()),
			Dur:  float64((x.Arrive - x.Depart).Micros()),
			PID:  x.FromGPU,
			TID:  1,
		})
	}
	return json.MarshalIndent(events, "", " ")
}
