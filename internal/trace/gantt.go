package trace

import (
	"fmt"
	"io"
	"strings"

	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sim"
)

// WriteGantt streams a simulated execution as a fixed-width text Gantt
// chart, one row per GPU, suitable for terminals and logs:
//
//	GPU0 |aaaa..bbbbbbbb----cc|
//	GPU1 |..ddddddddeeee......|
//
// Each stage is drawn with a letter cycling through a-z (stage order of
// appearance); '.' is idle time; '-' marks time where the GPU is stalled
// waiting on a transfer or dependency after having run at least one
// stage. width is the number of columns for the time axis (minimum 20).
// It is the primitive behind Gantt; use it to stream charts without
// building intermediate strings.
func WriteGantt(w io.Writer, g *graph.Graph, tr *sim.Trace, width int) error {
	if width < 20 {
		width = 20
	}
	ew := &errWriter{w: w}
	if tr.Latency <= 0 || len(tr.Stages) == 0 {
		io.WriteString(ew, "(empty trace)\n")
		return ew.err
	}
	// Rows are GPUs; find how many.
	maxGPU := 0
	for _, st := range tr.Stages {
		if st.GPU > maxGPU {
			maxGPU = st.GPU
		}
	}
	scale := float64(width) / float64(tr.Latency)
	rows := make([][]byte, maxGPU+1)
	firstBusy := make([]int, maxGPU+1)
	lastBusy := make([]int, maxGPU+1)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
		firstBusy[i] = width
		lastBusy[i] = -1
	}
	letter := byte('a')
	var legend strings.Builder
	for _, st := range tr.Stages {
		lo := int(float64(st.Start) * scale)
		hi := int(float64(st.Finish) * scale)
		if hi >= width {
			hi = width - 1
		}
		if hi < lo {
			hi = lo
		}
		for c := lo; c <= hi && c < width; c++ {
			rows[st.GPU][c] = letter
		}
		if lo < firstBusy[st.GPU] {
			firstBusy[st.GPU] = lo
		}
		if hi > lastBusy[st.GPU] {
			lastBusy[st.GPU] = hi
		}
		names := make([]string, len(st.Ops))
		for i, op := range st.Ops {
			if g != nil {
				names[i] = g.Op(op).Name
			} else {
				names[i] = fmt.Sprint(int(op))
			}
		}
		fmt.Fprintf(&legend, "  %c: GPU%d [%.3f, %.3f] {%s}\n",
			letter, st.GPU, st.Start, st.Finish, strings.Join(names, " "))
		if letter == 'z' {
			letter = 'a'
		} else {
			letter++
		}
	}
	// Mark interior idle gaps (stalls) distinctly from lead-in/out idle.
	for gpu := range rows {
		for c := firstBusy[gpu] + 1; c < lastBusy[gpu]; c++ {
			if rows[gpu][c] == '.' {
				rows[gpu][c] = '-'
			}
		}
	}
	fmt.Fprintf(ew, "0 ms %s %.3f ms\n", strings.Repeat(" ", width-4), tr.Latency)
	for gpu, row := range rows {
		fmt.Fprintf(ew, "GPU%-2d |%s|\n", gpu, row)
	}
	io.WriteString(ew, legend.String())
	return ew.err
}

// Gantt renders a simulated execution as a fixed-width text Gantt chart
// as a string; it delegates to WriteGantt.
func Gantt(g *graph.Graph, tr *sim.Trace, width int) string {
	var b strings.Builder
	// strings.Builder never returns a write error.
	_ = WriteGantt(&b, g, tr, width)
	return b.String()
}
