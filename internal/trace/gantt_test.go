package trace

import (
	"strings"
	"testing"

	"github.com/shus-lab/hios/internal/sim"
)

func TestGanttRendersRowsAndLegend(t *testing.T) {
	g, m, s, _ := fixture(t)
	tr, err := sim.Run(g, m, s)
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(g, tr, 60)
	if !strings.Contains(out, "GPU0 ") || !strings.Contains(out, "GPU1 ") {
		t.Fatalf("missing GPU rows:\n%s", out)
	}
	if !strings.Contains(out, "a: GPU") {
		t.Fatalf("missing legend:\n%s", out)
	}
	// Every row must be exactly the requested width between the bars.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "GPU") {
			start := strings.IndexByte(line, '|')
			end := strings.LastIndexByte(line, '|')
			if end-start-1 != 60 {
				t.Fatalf("row width %d, want 60: %q", end-start-1, line)
			}
		}
	}
}

func TestGanttEmptyAndNarrow(t *testing.T) {
	if out := Gantt(nil, &sim.Trace{}, 5); !strings.Contains(out, "empty") {
		t.Fatalf("empty trace output: %q", out)
	}
	g, m, s, _ := fixture(t)
	tr, err := sim.Run(g, m, s)
	if err != nil {
		t.Fatal(err)
	}
	// Narrow width is clamped to 20, and nil graph uses operator IDs.
	out := Gantt(nil, tr, 1)
	if !strings.Contains(out, "GPU0 ") {
		t.Fatalf("narrow gantt broken:\n%s", out)
	}
}
