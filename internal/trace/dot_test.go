package trace

import (
	"strings"
	"testing"
)

func TestDOTWithSchedule(t *testing.T) {
	g, _, s, _ := fixture(t)
	out := DOT(g, s)
	if !strings.HasPrefix(out, "digraph hios {") || !strings.HasSuffix(out, "}\n") {
		t.Fatalf("not a digraph:\n%s", out)
	}
	if !strings.Contains(out, "cluster_gpu0") || !strings.Contains(out, "cluster_gpu1") {
		t.Fatal("missing GPU clusters")
	}
	// Every operator appears exactly once as a node-definition line
	// (a line holding a label but no edge arrow).
	defs := map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "n") && strings.Contains(line, "[label=") && !strings.Contains(line, "->") {
			name := line[:strings.IndexByte(line, ' ')]
			defs[name]++
		}
	}
	if len(defs) != g.NumOps() {
		t.Fatalf("node definitions = %d, want %d", len(defs), g.NumOps())
	}
	for name, c := range defs {
		if c != 1 {
			t.Fatalf("node %s defined %d times", name, c)
		}
	}
	// Every edge appears.
	if strings.Count(out, "->") != g.NumEdges() {
		t.Fatalf("edges = %d, want %d", strings.Count(out, "->"), g.NumEdges())
	}
}

func TestDOTWithoutSchedule(t *testing.T) {
	g, _, _, _ := fixture(t)
	out := DOT(g, nil)
	if strings.Contains(out, "cluster_gpu") {
		t.Fatal("nil schedule must not produce clusters")
	}
	if strings.Count(out, "->") != g.NumEdges() {
		t.Fatal("edges missing")
	}
}
