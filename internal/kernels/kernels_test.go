package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGemmIdentity(t *testing.T) {
	id := []float32{1, 0, 0, 1}
	b := []float32{3, 4, 5, 6}
	c := Gemm(id, b, 2, 2, 2)
	for i := range b {
		if c[i] != b[i] {
			t.Fatalf("I*B != B: %v", c)
		}
	}
}

func TestGemmKnown(t *testing.T) {
	// [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := Gemm(a, b, 2, 2, 2)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("Gemm = %v, want %v", c, want)
		}
	}
}

func TestGemmMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		for i := range a {
			a[i] = float32(rng.Intn(10))
		}
		for i := range b {
			b[i] = float32(rng.Intn(10))
		}
		c := Gemm(a, b, m, k, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var want float32
				for l := 0; l < k; l++ {
					want += a[i*k+l] * b[l*n+j]
				}
				if c[i*n+j] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gemm accepted mismatched dims")
		}
	}()
	Gemm([]float32{1}, []float32{1}, 2, 2, 2)
}

func TestConv2DIdentityKernel(t *testing.T) {
	// 1x1 kernel with weight 1 copies the input.
	in := []float32{1, 2, 3, 4}
	out, oh, ow := Conv2D(in, 1, 2, 2, []float32{1}, 1, 1, 1, 1, 0)
	if oh != 2 || ow != 2 {
		t.Fatalf("shape %dx%d", oh, ow)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("identity conv = %v", out)
		}
	}
}

func TestConv2DSum3x3(t *testing.T) {
	// All-ones 3x3 kernel with pad 1 on a 3x3 all-ones input: center
	// sees 9, edges 6, corners 4.
	in := make([]float32, 9)
	for i := range in {
		in[i] = 1
	}
	w := make([]float32, 9)
	for i := range w {
		w[i] = 1
	}
	out, _, _ := Conv2D(in, 1, 3, 3, w, 1, 3, 3, 1, 1)
	want := []float32{4, 6, 4, 6, 9, 6, 4, 6, 4}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("conv = %v, want %v", out, want)
		}
	}
}

func TestConv2DStride(t *testing.T) {
	in := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	out, oh, ow := Conv2D(in, 1, 4, 4, []float32{1}, 1, 1, 1, 2, 0)
	if oh != 2 || ow != 2 {
		t.Fatalf("shape %dx%d", oh, ow)
	}
	want := []float32{1, 3, 9, 11}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("strided conv = %v, want %v", out, want)
		}
	}
}

func TestMaxPool2D(t *testing.T) {
	in := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	out, oh, ow := MaxPool2D(in, 1, 4, 4, 2, 2, 0)
	if oh != 2 || ow != 2 {
		t.Fatalf("shape %dx%d", oh, ow)
	}
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("maxpool = %v, want %v", out, want)
		}
	}
}

func TestAddAndConcat(t *testing.T) {
	s := Add([]float32{1, 2}, []float32{3, 4})
	if s[0] != 4 || s[1] != 6 {
		t.Fatalf("Add = %v", s)
	}
	c := Concat([]float32{1}, []float32{2, 3}, nil, []float32{4})
	if len(c) != 4 || c[3] != 4 {
		t.Fatalf("Concat = %v", c)
	}
}

func TestSynthDeterministic(t *testing.T) {
	in := [][]float32{{1, 2, 3}, {4, 5}}
	a := Synth(7, in, 1000)
	b := Synth(7, in, 1000)
	if len(a) != SynthLen {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Synth is not deterministic")
		}
	}
}

func TestSynthWorkInvariant(t *testing.T) {
	// The output must not depend on the amount of burned work — only on
	// seed and inputs — or scheduling equivalence checks would break.
	in := [][]float32{{1, 2, 3}}
	a := Synth(3, in, 10)
	b := Synth(3, in, 100000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Synth output depends on work amount")
		}
	}
}

func TestSynthDependsOnSeedAndInputs(t *testing.T) {
	in := [][]float32{{1, 2, 3}}
	a := Synth(1, in, 10)
	b := Synth(2, in, 10)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Synth ignores the seed")
	}
	c := Synth(1, [][]float32{{9, 9, 9}}, 10)
	same = true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Synth ignores its inputs")
	}
}
