// Package kernels provides the compute kernels the multi-worker executor
// runs on each simulated GPU. Two kinds live here:
//
//   - Real dense kernels (GEMM, direct 2-D convolution, pooling,
//     elementwise add, channel concat) with reference semantics, so the
//     executor can run genuine numerical work and the test suite can check
//     results against naive re-computation.
//
//   - A deterministic synthetic operator (Synth) used when a graph has no
//     tensor semantics (random DAGs): it derives its output from its
//     inputs through a fixed mixing function and burns a calibrated amount
//     of floating-point work, so schedules with different concurrency
//     exhibit realistic timing while remaining bit-reproducible.
package kernels

import (
	"math"
	"sync/atomic"
)

// Gemm computes C = A (m x k) * B (k x n), row-major.
func Gemm(a, b []float32, m, k, n int) []float32 {
	if len(a) != m*k || len(b) != k*n {
		panic("kernels: Gemm dimension mismatch")
	}
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for l := 0; l < k; l++ {
			av := a[i*k+l]
			if av == 0 {
				continue
			}
			row := b[l*n : (l+1)*n]
			out := c[i*n : (i+1)*n]
			for j := range row {
				out[j] += av * row[j]
			}
		}
	}
	return c
}

// Conv2D computes a direct 2-D convolution. Input is CHW, weights are
// [outC][inC][kH][kW] flattened, stride s, padding p. Returns the CHW
// output and its spatial size.
func Conv2D(in []float32, inC, h, w int, weight []float32, outC, kH, kW, s, p int) ([]float32, int, int) {
	outH := (h+2*p-kH)/s + 1
	outW := (w+2*p-kW)/s + 1
	if outH <= 0 || outW <= 0 {
		panic("kernels: Conv2D kernel does not fit input")
	}
	if len(in) != inC*h*w || len(weight) != outC*inC*kH*kW {
		panic("kernels: Conv2D dimension mismatch")
	}
	out := make([]float32, outC*outH*outW)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				var acc float32
				for ic := 0; ic < inC; ic++ {
					for ky := 0; ky < kH; ky++ {
						iy := oy*s + ky - p
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kW; kx++ {
							ix := ox*s + kx - p
							if ix < 0 || ix >= w {
								continue
							}
							acc += in[(ic*h+iy)*w+ix] * weight[((oc*inC+ic)*kH+ky)*kW+kx]
						}
					}
				}
				out[(oc*outH+oy)*outW+ox] = acc
			}
		}
	}
	return out, outH, outW
}

// MaxPool2D computes max pooling over a CHW tensor.
func MaxPool2D(in []float32, c, h, w, k, s, p int) ([]float32, int, int) {
	outH := (h+2*p-k)/s + 1
	outW := (w+2*p-k)/s + 1
	out := make([]float32, c*outH*outW)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				best := float32(math.Inf(-1))
				for ky := 0; ky < k; ky++ {
					iy := oy*s + ky - p
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*s + kx - p
						if ix < 0 || ix >= w {
							continue
						}
						if v := in[(ch*h+iy)*w+ix]; v > best {
							best = v
						}
					}
				}
				out[(ch*outH+oy)*outW+ox] = best
			}
		}
	}
	return out, outH, outW
}

// Add sums two equal-length vectors.
func Add(a, b []float32) []float32 {
	if len(a) != len(b) {
		panic("kernels: Add length mismatch")
	}
	out := make([]float32, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Concat joins vectors end to end (channel concat of flattened CHW
// tensors with equal spatial dims).
func Concat(parts ...[]float32) []float32 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]float32, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// sink defeats dead-code elimination of Synth's work loop. Stored
// atomically because the executor runs Synth from one goroutine per GPU.
var sink atomic.Uint32

// SynthLen is the output length of every synthetic operator: small enough
// to keep transfers cheap in tests, large enough to be a meaningful
// payload.
const SynthLen = 64

// Synth executes the synthetic operator for graphs without tensor
// semantics. seed distinguishes operators; each input vector is folded
// into the state, then `work` fused multiply-add iterations run (the
// executor calibrates work from the operator's modeled latency). The
// result is a deterministic function of (seed, inputs, work), independent
// of scheduling, which is exactly the property the equivalence tests need.
func Synth(seed int64, inputs [][]float32, work int) []float32 {
	out := make([]float32, SynthLen)
	state := float32(seed%97) + 1
	for i := range out {
		out[i] = state + float32(i)
	}
	for _, in := range inputs {
		for i, v := range in {
			out[i%SynthLen] += v * 0.5
		}
	}
	// Burn deterministic floating-point work without perturbing the
	// result: the accumulator escapes to a package sink so the compiler
	// cannot elide the loop.
	acc := float32(1)
	for i := 0; i < work; i++ {
		acc = acc*1.0000001 + float32(i&7)*1e-7
	}
	sink.Store(math.Float32bits(acc))
	for i := range out {
		out[i] = float32(math.Round(float64(out[i])*1e4) / 1e4)
	}
	return out
}
