package gpu

import (
	"testing"
	"testing/quick"

	"github.com/shus-lab/hios/internal/units"
)

// paperConv characterizes the paper's Fig. 1/2 probe kernel: a 5x5
// stride-1 convolution over 48 input channels (48 output channels assumed)
// at the given square image size.
func paperConv(size int) Kernel {
	out := float64(48 * size * size)
	return Kernel{
		FLOPs:   units.FLOPs(2 * 5 * 5 * 48 * out),
		Bytes:   units.Bytes(4 * (48*float64(size*size) + 5*5*48*48 + out)),
		Threads: out,
	}
}

func TestUtilizationMonotoneAndClamped(t *testing.T) {
	d := A40()
	prev := 0.0
	for _, size := range []int{8, 16, 32, 64, 128, 256, 512, 1024} {
		u := d.Utilization(paperConv(size))
		if u < prev {
			t.Fatalf("utilization decreased at %d: %g < %g", size, u, prev)
		}
		if u < d.MinUtil || u > 1 {
			t.Fatalf("utilization %g out of range at %d", u, size)
		}
		prev = u
	}
	if d.Utilization(paperConv(1024)) != 1 {
		t.Fatal("a 1024px conv must saturate the device")
	}
	if u := d.Utilization(Kernel{Threads: 1}); u != d.MinUtil {
		t.Fatalf("tiny kernel utilization = %g, want MinUtil", u)
	}
}

func TestFig1CrossoverCalibration(t *testing.T) {
	// Fig. 1: two identical convolutions run FASTER concurrently than
	// sequentially for inputs up to 64x64 and SLOWER from 128x128 on.
	// The crossover of the contention model 2u(1+alpha(2u-1)) = 2 with
	// alpha = 0.2 sits at u ~ 0.87, so the calibration requirement is
	// util(64) < 0.87 < util(128).
	d := A40()
	if u := d.Utilization(paperConv(64)); u >= 0.87 {
		t.Fatalf("util(64) = %g, must be below crossover", u)
	}
	if u := d.Utilization(paperConv(128)); u <= 0.87 {
		t.Fatalf("util(128) = %g, must be above crossover", u)
	}
}

func TestKernelTimeGrowsWithWork(t *testing.T) {
	d := A40()
	prev := units.Millis(0)
	for _, size := range []int{8, 32, 128, 512} {
		tt := d.Time(paperConv(size))
		if tt <= prev {
			t.Fatalf("time not increasing at %d: %g <= %g", size, tt, prev)
		}
		prev = tt
	}
}

func TestKernelTimeHasLaunchFloor(t *testing.T) {
	d := A40()
	if tt := d.Time(Kernel{}); tt != d.LaunchOverhead {
		t.Fatalf("empty kernel time = %g, want launch overhead %g", tt, d.LaunchOverhead)
	}
}

func TestDevicePresetsSane(t *testing.T) {
	for _, d := range []Device{A40(), A5500(), V100S()} {
		if d.SMs <= 0 || d.PeakFLOPs <= 0 || d.MemBW <= 0 || d.Efficiency <= 0 || d.Efficiency > 1 {
			t.Fatalf("device %s has nonsense parameters: %+v", d.Name, d)
		}
	}
	if A40().PeakFLOPs <= V100S().PeakFLOPs {
		t.Fatal("A40 should out-compute V100S in fp32")
	}
}

func TestTransferTime(t *testing.T) {
	l := NVLinkBridge()
	if got := l.TransferTime(0); got != 0 {
		t.Fatalf("zero bytes should cost nothing, got %g", got)
	}
	// 56.25 GB/s: 56.25e6 bytes per ms.
	got := l.TransferTime(56.25e6)
	want := l.Latency + 1.0
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("transfer = %g, want %g", got, want)
	}
}

func TestFig2PlatformOrdering(t *testing.T) {
	// Fig. 2: the transfer/compute ratio on PCIe V100S must exceed the
	// NVLink platforms at every probed size.
	for _, size := range []int{64, 128, 256, 512, 1024} {
		k := paperConv(size)
		inputBytes := units.Bytes(4 * 48 * float64(size*size))
		ratio := func(p Platform) float64 {
			return p.Link.TransferTime(inputBytes).Ratio(p.Dev.Time(k))
		}
		a40 := ratio(DualA40())
		a5500 := ratio(DualA5500())
		v100 := ratio(DualV100S())
		if v100 <= a40 || v100 <= a5500 {
			t.Fatalf("size %d: PCIe ratio %g not above NVLink ratios %g/%g", size, v100, a40, a5500)
		}
	}
}

func TestClusterPlatform(t *testing.T) {
	p := Cluster(8)
	if p.GPUs != 8 || p.Dev.Name != "A40" {
		t.Fatalf("Cluster = %+v", p)
	}
	if p.Link.Bandwidth <= NVLinkBridge().Bandwidth {
		t.Fatal("NVSwitch should be faster than one NVLink bridge")
	}
}

func TestTimeProperty(t *testing.T) {
	// Time is positive, finite, and monotone in FLOPs.
	d := A40()
	f := func(flops, bytes, threads float64) bool {
		abs := func(x float64) float64 {
			if x < 0 {
				return -x
			}
			return x
		}
		k := Kernel{FLOPs: units.FLOPs(abs(flops)), Bytes: units.Bytes(abs(bytes)), Threads: abs(threads)}
		t1 := d.Time(k)
		k2 := k
		k2.FLOPs *= 2
		t2 := d.Time(k2)
		return t1 >= d.LaunchOverhead && t2 >= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
