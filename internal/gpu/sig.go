package gpu

import "github.com/shus-lab/hios/internal/units"

// KernelSig is the canonical shape signature of one solo-kernel probe: it
// packs exactly the parameters Device.Time and Device.Utilization read —
// the device's roofline coefficients and the kernel's work shape — and
// nothing else (Name, SMs and CUDACores are informational and never enter
// the math). Two probes with equal signatures are guaranteed the same
// (time, utilization) answer, bit for bit, because both functions are
// pure; that is what lets a process-wide cache short-circuit the
// evaluation across graphs and sweep seeds without any notion of OpID.
// The struct is comparable and free of pointers, so it can key a map
// directly.
type KernelSig struct {
	Peak       units.FLOPsPerSec
	MemBW      units.BytesPerSec
	Efficiency float64
	Launch     units.Millis
	Saturation float64
	MinUtil    float64
	FLOPs      units.FLOPs
	Bytes      units.Bytes
	Threads    float64
}

// Sig returns the kernel-probe signature of running k on d.
func (d Device) Sig(k Kernel) KernelSig {
	return KernelSig{
		Peak:       d.PeakFLOPs,
		MemBW:      d.MemBW,
		Efficiency: d.Efficiency,
		Launch:     d.LaunchOverhead,
		Saturation: d.SaturationThreads,
		MinUtil:    d.MinUtil,
		FLOPs:      k.FLOPs,
		Bytes:      k.Bytes,
		Threads:    k.Threads,
	}
}

// TransferSig is the canonical shape signature of one transfer probe:
// the parameters Link.TransferTime reads (the link's bandwidth and
// per-message latency) plus the payload size. As with KernelSig, equal
// signatures imply bit-identical transfer times.
type TransferSig struct {
	Bandwidth units.BytesPerSec
	Latency   units.Millis
	Bytes     units.Bytes
}

// Sig returns the transfer-probe signature of moving b bytes across l.
func (l Link) Sig(b units.Bytes) TransferSig {
	return TransferSig{Bandwidth: l.Bandwidth, Latency: l.Latency, Bytes: b}
}
