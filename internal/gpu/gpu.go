// Package gpu models the hardware of the paper's testbeds: GPU devices
// (Nvidia A40, RTX A5500, Tesla V100S), their kernel execution behaviour,
// and the interconnects between devices (NVLink bridge, NVSwitch, PCIe).
//
// The paper profiles real cuDNN kernels; this package substitutes an
// analytic model with the same interface obligations:
//
//   - solo kernel latency (a roofline over compute and memory traffic,
//     derated by achievable occupancy, plus launch overhead), feeding t(v);
//   - a solo-utilization estimate feeding the concurrent-stage contention
//     model in package cost, which reproduces the paper's Fig. 1: two
//     small kernels overlap almost perfectly, two saturating kernels run
//     slower concurrently than sequentially;
//   - link transfer latency (per-message latency + bytes / bandwidth),
//     feeding t(u, v) and reproducing Fig. 2's platform ordering (NVLink
//     below PCIe).
//
// Absolute times are not calibrated against the authors' hardware; the
// model is built so the *shapes* the scheduling study depends on hold.
package gpu

import (
	"fmt"

	"github.com/shus-lab/hios/internal/units"
)

// Device describes one GPU model.
type Device struct {
	// Name identifies the device ("A40", ...).
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// CUDACores is the total core count (informational).
	CUDACores int
	// PeakFLOPs is the theoretical fp32 throughput.
	PeakFLOPs units.FLOPsPerSec
	// MemBW is the device memory bandwidth.
	MemBW units.BytesPerSec
	// Efficiency is the fraction of peak throughput dense cuDNN kernels
	// achieve at full occupancy.
	Efficiency float64
	// LaunchOverhead is the fixed CUDA kernel-launch cost.
	LaunchOverhead units.Millis
	// SaturationThreads is the number of concurrent output elements at
	// which a kernel occupies the whole device. Kernels with fewer
	// threads leave SMs idle (utilization < 1) and run at reduced
	// throughput; this is the calibration point for the Fig. 1
	// crossover (between 64x64 and 128x128 inputs for the 48-channel
	// 5x5 convolution the paper measures).
	SaturationThreads float64
	// MinUtil floors the utilization estimate: even a tiny kernel
	// occupies at least one SM.
	MinUtil float64
}

// A40 returns the Nvidia Ampere A40 of the paper's main testbed
// (Dell PowerEdge R750XA): 84 SMs, 10752 CUDA cores, 48 GB GDDR6 at
// 696 GB/s, compute capability 8.6.
func A40() Device {
	return Device{
		Name:              "A40",
		SMs:               84,
		CUDACores:         10752,
		PeakFLOPs:         units.GFLOPsPerSec(37400),
		MemBW:             units.GBPerSec(696),
		Efficiency:        0.35,
		LaunchOverhead:    units.Millis(0.005),
		SaturationThreads: 480000,
		MinUtil:           1.0 / 84,
	}
}

// A5500 returns the Nvidia RTX A5500 of the paper's second dual-GPU
// platform: 80 SMs, 10240 CUDA cores, 24 GB GDDR6 at 768 GB/s.
func A5500() Device {
	return Device{
		Name:              "A5500",
		SMs:               80,
		CUDACores:         10240,
		PeakFLOPs:         units.GFLOPsPerSec(34100),
		MemBW:             units.GBPerSec(768),
		Efficiency:        0.35,
		LaunchOverhead:    units.Millis(0.005),
		SaturationThreads: 460000,
		MinUtil:           1.0 / 80,
	}
}

// V100S returns the Nvidia Tesla V100S of the paper's PCIe platform:
// 80 SMs, 5120 CUDA cores, 32 GB HBM2 at 1134 GB/s.
func V100S() Device {
	return Device{
		Name:              "V100S",
		SMs:               80,
		CUDACores:         5120,
		PeakFLOPs:         units.GFLOPsPerSec(16400),
		MemBW:             units.GBPerSec(1134),
		Efficiency:        0.35,
		LaunchOverhead:    units.Millis(0.006),
		SaturationThreads: 400000,
		MinUtil:           1.0 / 80,
	}
}

// Kernel characterizes one GPU kernel launch.
type Kernel struct {
	// FLOPs is the floating-point work of the kernel.
	FLOPs units.FLOPs
	// Bytes is the device-memory traffic (reads + writes).
	Bytes units.Bytes
	// Threads is the number of independent output elements, which
	// drives occupancy.
	Threads float64
}

// Utilization estimates the fraction of the device the kernel occupies
// when running alone: the ratio of its thread count to the device's
// saturation point, clamped to [MinUtil, 1].
func (d Device) Utilization(k Kernel) float64 {
	if d.SaturationThreads <= 0 {
		return 1
	}
	u := k.Threads / d.SaturationThreads
	if u < d.MinUtil {
		u = d.MinUtil
	}
	if u > 1 {
		u = 1
	}
	return u
}

// Time estimates the kernel's solo execution latency: launch overhead
// plus the roofline maximum of the compute time (derated by occupancy —
// an under-occupied device sustains proportionally less throughput) and
// the memory-traffic time. The roofline divisions are dimensionally
// seconds; the result converts to the native milliseconds at the end of
// each branch, exactly as the raw formulas did.
func (d Device) Time(k Kernel) units.Millis {
	util := d.Utilization(k)
	compute := units.Millis(0)
	if k.FLOPs > 0 {
		compute = k.FLOPs.Over(d.PeakFLOPs.Scale(d.Efficiency).Scale(util)).Millis()
	}
	memory := units.Millis(0)
	if k.Bytes > 0 {
		memory = k.Bytes.Over(d.MemBW).Millis()
	}
	t := compute
	if memory > t {
		t = memory
	}
	return d.LaunchOverhead + t
}

// Link models one inter-GPU interconnect.
type Link struct {
	// Name identifies the link kind.
	Name string
	// Bandwidth is the per-direction bandwidth.
	Bandwidth units.BytesPerSec
	// Latency is the per-message latency (software stack + wire), the
	// floor of any transfer.
	Latency units.Millis
}

// NVLinkBridge returns the paper's A40/A5500 pairing: one NVLink bridge
// with 112.5 GB/s bidirectional bandwidth, i.e. 56.25 GB/s per direction.
// The per-message latency models the full software path of the paper's
// engine — a CUDA-aware MPI send/receive plus the launch of the dependent
// kernel after transfer completion (§VI-E discusses exactly this
// overhead) — not just the wire.
func NVLinkBridge() Link {
	return Link{Name: "NVLink bridge", Bandwidth: units.GBPerSec(56.25), Latency: units.Millis(0.02)}
}

// NVSwitch returns a full NVSwitch fabric (DGX-class): 300 GB/s per
// direction per GPU, same MPI software latency as the bridge.
func NVSwitch() Link {
	return Link{Name: "NVSwitch", Bandwidth: units.GBPerSec(300), Latency: units.Millis(0.02)}
}

// PCIe3 returns a PCIe Gen3 x16 interface: ~12 GB/s effective after
// protocol overhead, with a higher software latency than NVLink.
func PCIe3() Link {
	return Link{Name: "PCIe Gen3 x16", Bandwidth: units.GBPerSec(12), Latency: units.Millis(0.055)}
}

// TransferTime returns the time to move the given amount of data across
// the link.
func (l Link) TransferTime(b units.Bytes) units.Millis {
	if b <= 0 {
		return 0
	}
	return l.Latency + b.Over(l.Bandwidth).Millis()
}

// Platform pairs a device model with an interconnect and a GPU count: one
// experiment testbed.
type Platform struct {
	Name string
	Dev  Device
	Link Link
	GPUs int
}

// DualA40 returns the paper's main experimental platform: two A40s joined
// by an NVLink bridge (Dell PowerEdge R750XA).
func DualA40() Platform {
	return Platform{Name: "2x A40 + NVLink", Dev: A40(), Link: NVLinkBridge(), GPUs: 2}
}

// DualA5500 returns the paper's second platform: two RTX A5500s with an
// NVLink bridge.
func DualA5500() Platform {
	return Platform{Name: "2x A5500 + NVLink", Dev: A5500(), Link: NVLinkBridge(), GPUs: 2}
}

// DualV100S returns the paper's PCIe platform: two Tesla V100S over PCIe
// Gen3.
func DualV100S() Platform {
	return Platform{Name: "2x V100S + PCIe3", Dev: V100S(), Link: PCIe3(), GPUs: 2}
}

// Cluster returns an M-GPU A40 node with an NVSwitch fabric, used by the
// simulation sweeps that scale past two devices.
func Cluster(m int) Platform {
	return Platform{Name: "A40 NVSwitch node", Dev: A40(), Link: NVSwitch(), GPUs: m}
}

// Topology describes a non-uniform interconnect between GPUs: clusters
// and multi-node servers (§I of the paper) have fast intra-node links and
// slower inter-node networking, so the transfer time of a tensor depends
// on WHICH pair of GPUs exchanges it, not just its size. Factors holds a
// multiplier per GPU pair applied to the baseline (intra-node) transfer
// time; the diagonal is zero.
type Topology struct {
	Name    string
	Factors [][]float64
}

// GPUs returns the device count.
func (t Topology) GPUs() int { return len(t.Factors) }

// Factor returns the transfer-time multiplier between two devices
// (0 for a device talking to itself).
func (t Topology) Factor(a, b int) float64 {
	if a == b {
		return 0
	}
	return t.Factors[a][b]
}

// Uniform returns the flat topology of the paper's SMP formulation: every
// pair communicates at the baseline cost.
func Uniform(gpus int) Topology {
	t := Topology{Name: "uniform", Factors: make([][]float64, gpus)}
	for i := range t.Factors {
		t.Factors[i] = make([]float64, gpus)
		for j := range t.Factors[i] {
			if i != j {
				t.Factors[i][j] = 1
			}
		}
	}
	return t
}

// TwoLevel returns a hierarchical cluster: nodes x gpusPerNode devices,
// intra-node pairs at the baseline cost and inter-node pairs at
// interFactor times it (e.g. NVSwitch inside a node and InfiniBand
// between nodes at several times the transfer time).
func TwoLevel(nodes, gpusPerNode int, interFactor float64) Topology {
	n := nodes * gpusPerNode
	t := Topology{
		Name:    fmt.Sprintf("%dx%d two-level", nodes, gpusPerNode),
		Factors: make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		t.Factors[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			switch {
			case i == j:
			case i/gpusPerNode == j/gpusPerNode:
				t.Factors[i][j] = 1
			default:
				t.Factors[i][j] = interFactor
			}
		}
	}
	return t
}
