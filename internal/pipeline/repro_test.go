package pipeline

import "testing"

// TestPropertyRegressionSeed pins the input that exposed the finite-K
// flake in the steady-period lower bound: a 21-op, 3-GPU schedule whose
// completion gaps converge to the bottleneck busy time from below, so
// the single-gap bound fails while the mean bound holds.
func TestPropertyRegressionSeed(t *testing.T) {
	if !propertyForTest()(-1541991718189644717) {
		t.Fatal("pipeline invariants fail on regression seed")
	}
}
