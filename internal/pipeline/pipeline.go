// Package pipeline extends HIOS from single-inference latency to
// sustained-rate serving: real-time systems (the paper's plasma-control
// motivation) rarely run one inference — they run a stream of them, and a
// multi-GPU schedule pipelines naturally, with each GPU starting request
// r+1 as soon as its own stages of request r are done while downstream
// GPUs still finish r.
//
// The analysis unrolls a schedule K times — K copies of the computation
// graph, each GPU's stage list concatenated K times — and evaluates the
// unrolled system with the standard evaluator, so all of §III's precedence
// semantics carry over unchanged. The steady-state period (time between
// consecutive request completions) converges to the bottleneck GPU's busy
// time per request; the gap between period and single-request latency is
// the pipelining headroom.
package pipeline

import (
	"fmt"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/units"
)

// Report summarizes the sustained behaviour of a schedule.
type Report struct {
	// Requests is K, the number of unrolled inferences.
	Requests int
	// Completions holds each request's completion time.
	Completions []units.Millis
	// LatencyMs is the single-request latency (completion of request 0).
	LatencyMs units.Millis
	// SteadyPeriodMs is the time between the last two completions: the
	// steady-state inter-completion period.
	SteadyPeriodMs units.Millis
	// ThroughputPerSec is 1000 / SteadyPeriodMs.
	ThroughputPerSec float64
}

// Analyze unrolls schedule s of graph g K times and reports sustained
// throughput under cost model m. K must be at least 2 (steady state needs
// two consecutive completions; values of 4-8 give a settled period).
func Analyze(g *graph.Graph, m cost.Model, s *sched.Schedule, k int) (*Report, error) {
	if k < 2 {
		return nil, fmt.Errorf("pipeline: need at least 2 requests, got %d", k)
	}
	if err := sched.Validate(g, s); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	ug, us := Unroll(g, s, k)
	um := &shiftModel{inner: m, n: g.NumOps()}
	tm, err := sched.Evaluate(ug, um, us)
	if err != nil {
		return nil, fmt.Errorf("pipeline: unrolled schedule: %w", err)
	}
	n := g.NumOps()
	rep := &Report{Requests: k, Completions: make([]units.Millis, k)}
	for r := 0; r < k; r++ {
		var done units.Millis
		for v := r * n; v < (r+1)*n; v++ {
			if tm.OpFinish[v] > done {
				done = tm.OpFinish[v]
			}
		}
		rep.Completions[r] = done
	}
	rep.LatencyMs = rep.Completions[0]
	rep.SteadyPeriodMs = rep.Completions[k-1] - rep.Completions[k-2]
	if rep.SteadyPeriodMs > 0 {
		rep.ThroughputPerSec = 1000 / float64(rep.SteadyPeriodMs)
	}
	return rep, nil
}

// Unroll builds the K-fold replication of g and s: request r's operator v
// maps to ID r*n + v; each GPU's stage list is the K-fold concatenation of
// its per-request stages, so requests flow through each device in order
// while different devices may work on different requests concurrently.
func Unroll(g *graph.Graph, s *sched.Schedule, k int) (*graph.Graph, *sched.Schedule) {
	n := g.NumOps()
	ug := graph.New(n*k, g.NumEdges()*k)
	for r := 0; r < k; r++ {
		for _, op := range g.Ops() {
			c := op
			c.Name = fmt.Sprintf("r%d.%s", r, op.Name)
			ug.AddOp(c)
		}
		for _, e := range g.Edges() {
			ug.AddEdge(e.From+graph.OpID(r*n), e.To+graph.OpID(r*n), e.Time)
		}
	}
	ug.MustFinalize()

	us := sched.New(len(s.GPUs))
	for r := 0; r < k; r++ {
		off := graph.OpID(r * n)
		for gi := range s.GPUs {
			for _, st := range s.GPUs[gi].Stages {
				ops := make([]graph.OpID, len(st.Ops))
				for i, v := range st.Ops {
					ops[i] = v + off
				}
				us.AppendStage(gi, ops)
			}
		}
	}
	return ug, us
}

// shiftModel adapts the original cost model to unrolled operator IDs.
// Stages never mix requests, so mapping members back to their original
// IDs preserves t(S).
type shiftModel struct {
	inner cost.Model
	n     int
}

var (
	_ cost.Model         = (*shiftModel)(nil)
	_ cost.TopologyModel = (*shiftModel)(nil)
)

func (m *shiftModel) orig(v graph.OpID) graph.OpID { return graph.OpID(int(v) % m.n) }

func (m *shiftModel) OpTime(v graph.OpID) units.Millis { return m.inner.OpTime(m.orig(v)) }

func (m *shiftModel) CommTime(u, v graph.OpID) units.Millis {
	return m.inner.CommTime(m.orig(u), m.orig(v))
}

// CommTimeBetween forwards placement-dependent transfer times: for plain
// inner models this degenerates to the flat pair cost.
func (m *shiftModel) CommTimeBetween(u, v graph.OpID, gu, gv int) units.Millis {
	return cost.CommBetween(m.inner, m.orig(u), m.orig(v), gu, gv)
}

func (m *shiftModel) StageTime(ops []graph.OpID) units.Millis {
	mapped := make([]graph.OpID, len(ops))
	for i, v := range ops {
		mapped[i] = m.orig(v)
	}
	return m.inner.StageTime(mapped)
}
