package pipeline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/units"
)

// TestPipelineInvariantsProperty checks, over random graphs and random
// placements, the structural laws of pipelined execution:
//
//   - request-0 latency equals the evaluator's single-request latency;
//   - the steady period never exceeds that latency;
//   - the mean inter-completion period is at least the bottleneck GPU's
//     busy time minus latency/(K-1) — the finite-K form of the
//     "period >= bottleneck busy time" law. The bound on a SINGLE gap is
//     not a theorem: request 0's completion can be inflated by a slow
//     non-bottleneck GPU, so individual gaps converge to the busy time
//     from below (the mean bound follows from C_{K-1} >= (K-1)*busy and
//     C_0 = latency);
//   - completions are strictly increasing.
func propertyForTest() func(seed int64) bool {
	return func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randdag.Paper()
		cfg.Ops = 8 + rng.Intn(30)
		cfg.Layers = 2 + rng.Intn(5)
		cfg.Deps = cfg.Ops + rng.Intn(cfg.Ops)
		cfg.Seed = seed
		g := randdag.MustGenerate(cfg)
		m := cost.FromGraph(g, cost.DefaultContention())
		gpus := 1 + rng.Intn(4)
		place := make([]int, cfg.Ops)
		for i := range place {
			place[i] = rng.Intn(gpus)
		}
		s := sched.FromPlacement(gpus, g.ByPriority(), place)
		want, err := sched.Latency(g, m, s)
		if err != nil {
			return false
		}
		rep, err := Analyze(g, m, s, 2+rng.Intn(4))
		if err != nil {
			return false
		}
		if d := rep.LatencyMs - want; d > 1e-9 || d < -1e-9 {
			return false
		}
		if rep.SteadyPeriodMs > rep.LatencyMs+1e-9 || rep.SteadyPeriodMs <= 0 {
			return false
		}
		var maxBusy units.Millis
		for gi := range s.GPUs {
			var busy units.Millis
			for _, st := range s.GPUs[gi].Stages {
				busy += m.StageTime(st.Ops)
			}
			if busy > maxBusy {
				maxBusy = busy
			}
		}
		meanGap := (rep.Completions[rep.Requests-1] - rep.Completions[0]).Div(float64(rep.Requests - 1))
		if meanGap < maxBusy-rep.LatencyMs.Div(float64(rep.Requests-1))-1e-9 {
			return false
		}
		for r := 1; r < rep.Requests; r++ {
			if rep.Completions[r] <= rep.Completions[r-1] {
				return false
			}
		}
		return true
	}
}

func TestPipelineInvariantsProperty(t *testing.T) {
	if err := quick.Check(propertyForTest(), &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
