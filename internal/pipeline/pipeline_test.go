package pipeline

import (
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/lp"
	"github.com/shus-lab/hios/internal/sched/seq"
	"github.com/shus-lab/hios/internal/units"
)

func twoGPUChain(t *testing.T) (*graph.Graph, cost.Model, *sched.Schedule) {
	t.Helper()
	// a (2ms) -> b (2ms), split across GPUs with a 0.5ms transfer: a
	// classic two-stage pipeline.
	g := graph.New(2, 1)
	a := g.AddOp(graph.Op{Name: "a", Time: 2, Util: 1})
	b := g.AddOp(graph.Op{Name: "b", Time: 2, Util: 1})
	g.AddEdge(a, b, 0.5)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	m := cost.FromGraph(g, cost.DefaultContention())
	s := sched.New(2)
	s.Append(0, a)
	s.Append(1, b)
	return g, m, s
}

func TestTwoStagePipeline(t *testing.T) {
	g, m, s := twoGPUChain(t)
	rep, err := Analyze(g, m, s, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Single-request latency: 2 + 0.5 + 2 = 4.5 ms. Steady state: each
	// GPU does 2 ms of work per request, so the period is 2 ms.
	if rep.LatencyMs != 4.5 {
		t.Fatalf("latency = %g, want 4.5", rep.LatencyMs)
	}
	if diff := rep.SteadyPeriodMs - 2; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("period = %g, want 2", rep.SteadyPeriodMs)
	}
	if diff := rep.ThroughputPerSec - 500; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("throughput = %g, want 500/s", rep.ThroughputPerSec)
	}
	// Completions must be ordered and settle to a fixed period.
	for r := 1; r < rep.Requests; r++ {
		if rep.Completions[r] <= rep.Completions[r-1] {
			t.Fatalf("completions not increasing: %v", rep.Completions)
		}
	}
}

func TestSingleGPUPeriodIsTotalWork(t *testing.T) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 30, 5, 60, 2
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())
	sq, err := seq.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(g, m, sq.Schedule, 3)
	if err != nil {
		t.Fatal(err)
	}
	if diff := rep.SteadyPeriodMs - units.Millis(g.TotalOpTime()); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sequential period %g != total work %g", rep.SteadyPeriodMs, g.TotalOpTime())
	}
	if diff := rep.LatencyMs - units.Millis(g.TotalOpTime()); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sequential latency %g != total work %g", rep.LatencyMs, g.TotalOpTime())
	}
}

func TestMultiGPUThroughputBeatsSingle(t *testing.T) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 50, 6, 90, 4
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())

	sq, err := seq.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	seqRep, err := Analyze(g, m, sq.Schedule, 4)
	if err != nil {
		t.Fatal(err)
	}
	lpRes, err := lp.Schedule(g, m, lp.Options{GPUs: 3})
	if err != nil {
		t.Fatal(err)
	}
	lpRep, err := Analyze(g, m, lpRes.Schedule, 6)
	if err != nil {
		t.Fatal(err)
	}
	if lpRep.ThroughputPerSec <= seqRep.ThroughputPerSec {
		t.Fatalf("multi-GPU throughput %g should beat single-GPU %g",
			lpRep.ThroughputPerSec, seqRep.ThroughputPerSec)
	}
	// The steady period can never beat the bottleneck GPU's busy time.
	var maxBusy units.Millis
	for gi := range lpRes.Schedule.GPUs {
		var busy units.Millis
		for _, st := range lpRes.Schedule.GPUs[gi].Stages {
			busy += m.StageTime(st.Ops)
		}
		if busy > maxBusy {
			maxBusy = busy
		}
	}
	if lpRep.SteadyPeriodMs < maxBusy-1e-9 {
		t.Fatalf("period %g below the bottleneck busy time %g", lpRep.SteadyPeriodMs, maxBusy)
	}
}

func TestPipelineLatencyMatchesEvaluator(t *testing.T) {
	g, m, s := twoGPUChain(t)
	want, err := sched.Latency(g, m, s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(g, m, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatencyMs != want {
		t.Fatalf("request-0 latency %g != evaluator %g", rep.LatencyMs, want)
	}
}

func TestAnalyzeRejectsBadInput(t *testing.T) {
	g, m, s := twoGPUChain(t)
	if _, err := Analyze(g, m, s, 1); err == nil {
		t.Fatal("accepted K=1")
	}
	bad := sched.New(2)
	bad.Append(0, 0)
	if _, err := Analyze(g, m, bad, 3); err == nil {
		t.Fatal("accepted an incomplete schedule")
	}
}

func TestUnrollShape(t *testing.T) {
	g, _, s := twoGPUChain(t)
	ug, us := Unroll(g, s, 3)
	if ug.NumOps() != 6 || ug.NumEdges() != 3 {
		t.Fatalf("unrolled shape: %d ops, %d edges", ug.NumOps(), ug.NumEdges())
	}
	if us.NumOps() != 6 || us.NumStages() != 6 {
		t.Fatalf("unrolled schedule: %d ops, %d stages", us.NumOps(), us.NumStages())
	}
	if err := sched.Validate(ug, us); err != nil {
		t.Fatal(err)
	}
}
