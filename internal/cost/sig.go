package cost

import (
	"encoding/binary"
	"math"
)

// stageSigInline is how many stage members a StageSig holds inline. The
// schedulers' MaxStage default is 8, so in practice every probe fits and
// building a signature allocates nothing.
const stageSigInline = 8

// StageSig is the canonical shape signature of one concurrent-stage
// probe: the Contention coefficients plus the member (time, utilization)
// pairs, IN PROBE ORDER. The order is deliberately preserved rather than
// canonicalized: StageTimeItems folds the members left to right and
// float addition is not associative, so sorting the members could move
// the result by an ulp and a cached value would no longer be
// bit-identical to a direct evaluation. Contention's t(S) is symmetric
// up to that last ulp, which means permuted stages may miss the cache —
// an accepted cost; correctness (bit-exact equality with the uncached
// path) is the invariant.
//
// Members beyond the inline capacity spill, in the same order, into a
// string of big-endian IEEE-754 encodings, keeping the struct comparable.
type StageSig struct {
	Alpha       float64
	DefaultUtil float64
	N           int
	Items       [stageSigInline]Item
	Rest        string
}

// Sig returns the stage-probe signature of pricing items under c.
func (c Contention) Sig(items []Item) StageSig {
	s := StageSig{Alpha: c.Alpha, DefaultUtil: c.DefaultUtil, N: len(items)}
	n := len(items)
	if n > stageSigInline {
		n = stageSigInline
	}
	copy(s.Items[:n], items[:n])
	if len(items) > stageSigInline {
		spill := items[stageSigInline:]
		buf := make([]byte, 16*len(spill))
		for i, it := range spill {
			binary.BigEndian.PutUint64(buf[16*i:], math.Float64bits(float64(it.Time)))
			binary.BigEndian.PutUint64(buf[16*i+8:], math.Float64bits(it.Util))
		}
		s.Rest = string(buf)
	}
	return s
}
