package cost

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/units"
)

func TestContentionSingleOpIsSolo(t *testing.T) {
	c := DefaultContention()
	if got := c.StageTimeItems([]Item{{Time: 3, Util: 0.7}}); got != 3 {
		t.Fatalf("single item stage = %g, want 3", got)
	}
	if got := c.StageTimeItems(nil); got != 0 {
		t.Fatalf("empty stage = %g, want 0", got)
	}
}

func TestContentionSmallOpsOverlap(t *testing.T) {
	c := DefaultContention()
	// Two small ops (util .3): perfect overlap -> max time.
	got := c.StageTimeItems([]Item{{Time: 1, Util: 0.3}, {Time: 1, Util: 0.3}})
	if got != 1 {
		t.Fatalf("two small ops = %g, want 1", got)
	}
}

func TestContentionLargeOpsContend(t *testing.T) {
	c := DefaultContention()
	// Two saturating ops: work-conservation (2) plus penalty alpha*1.
	got := c.StageTimeItems([]Item{{Time: 1, Util: 1}, {Time: 1, Util: 1}})
	want := units.Millis(2 * (1 + c.Alpha))
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("two large ops = %g, want %g", got, want)
	}
	// Parallel must be worse than sequential for saturating ops: the
	// Fig. 1 high-workload regime.
	if got <= 2 {
		t.Fatal("saturating ops should be slower concurrent than sequential")
	}
}

func TestContentionDefaultUtil(t *testing.T) {
	c := Contention{Alpha: 0.2, DefaultUtil: 0.5}
	got := c.StageTimeItems([]Item{{Time: 2}, {Time: 2}})
	// utils default to .5 each: max(2, 2*.5+2*.5) = 2, no penalty.
	if got != 2 {
		t.Fatalf("default util stage = %g, want 2", got)
	}
}

func TestContentionClampsUtil(t *testing.T) {
	c := DefaultContention()
	a := c.StageTimeItems([]Item{{Time: 1, Util: 5}, {Time: 1, Util: 5}})
	b := c.StageTimeItems([]Item{{Time: 1, Util: 1}, {Time: 1, Util: 1}})
	if a != b {
		t.Fatalf("util should clamp to 1: %g vs %g", a, b)
	}
}

func TestContentionMonotoneProperty(t *testing.T) {
	// Adding an operator to a stage never decreases t(S), and t(S) is
	// at least the longest member and at most sum*(1+alpha*(k-1)).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := DefaultContention()
		k := 1 + rng.Intn(6)
		items := make([]Item, 0, k+1)
		for i := 0; i < k; i++ {
			items = append(items, Item{Time: units.Millis(0.1 + 4*rng.Float64()), Util: 0.05 + 0.95*rng.Float64()})
		}
		base := c.StageTimeItems(items)
		maxT, sum := units.Millis(0), units.Millis(0)
		for _, it := range items {
			if it.Time > maxT {
				maxT = it.Time
			}
			sum += it.Time
		}
		if base < maxT-1e-12 {
			return false
		}
		if base > sum.Scale(1+c.Alpha*float64(k))+1e-9 {
			return false
		}
		grown := c.StageTimeItems(append(items, Item{Time: units.Millis(0.1 + 4*rng.Float64()), Util: 0.05 + 0.95*rng.Float64()}))
		return grown >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func buildPair(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(2, 1)
	a := g.AddOp(graph.Op{Name: "a", Time: 2, Util: 0.4})
	b := g.AddOp(graph.Op{Name: "b", Time: 3, Util: 0.4})
	g.AddEdge(a, b, 0.5)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphModel(t *testing.T) {
	g := buildPair(t)
	m := FromGraph(g, DefaultContention())
	if m.OpTime(0) != 2 || m.OpTime(1) != 3 {
		t.Fatal("OpTime should read vertex weights")
	}
	if m.CommTime(0, 1) != 0.5 {
		t.Fatal("CommTime should read edge weights")
	}
	if m.CommTime(1, 0) != 0 {
		t.Fatal("CommTime of a nonexistent edge should be 0")
	}
	if m.StageTime([]graph.OpID{1}) != 3 {
		t.Fatal("singleton StageTime must equal OpTime")
	}
	if m.Contention() != DefaultContention() {
		t.Fatal("Contention accessor wrong")
	}
}

func TestSerialModelSumsStage(t *testing.T) {
	g := buildPair(t)
	m := SerialModel{Inner: FromGraph(g, DefaultContention())}
	if got := m.StageTime([]graph.OpID{0, 1}); got != 5 {
		t.Fatalf("serial stage = %g, want 5", got)
	}
	if m.OpTime(0) != 2 || m.CommTime(0, 1) != 0.5 {
		t.Fatal("SerialModel must forward OpTime/CommTime")
	}
}

// TestGraphModelItemModelContract enforces the ItemModel promise:
// StageTime(ops) must equal the Contention fold of StageItem values bit
// for bit, for every stage size including the len==1 special case, and
// including unknown (zero) utilizations. The IOS DP's fast path and the
// dpcache block signatures are only exact because of this identity.
func TestGraphModelItemModelContract(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := graph.New(64, 0)
	for i := 0; i < 64; i++ {
		u := rng.Float64() * 1.2 // past 1: exercises the clamp path
		if i%7 == 0 {
			u = 0 // unknown utilization: exercises DefaultUtil
		}
		g.AddOp(graph.Op{Time: 0.1 + 3.9*rng.Float64(), Util: u})
	}
	g.MustFinalize()
	m := FromGraph(g, DefaultContention())
	var im ItemModel = m // compile-time: GraphModel satisfies ItemModel
	c := im.Contention()
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		ops := make([]graph.OpID, n)
		items := make([]Item, n)
		for i := range ops {
			ops[i] = graph.OpID(rng.Intn(64))
			items[i] = im.StageItem(ops[i])
		}
		direct := m.StageTime(ops)
		folded := c.StageTimeItems(items)
		if direct != folded {
			t.Fatalf("trial %d ops=%v: StageTime=%b != fold=%b — ItemModel contract broken",
				trial, ops, float64(direct), float64(folded))
		}
		// The incremental form the DP actually uses.
		var maxT, work units.Millis
		var util float64
		for _, it := range items {
			maxT, work, util = c.Accumulate(maxT, work, util, it.Time, it.Util)
		}
		if inc := c.Combine(maxT, work, util); inc != direct {
			t.Fatalf("trial %d: incremental fold %b != StageTime %b", trial, float64(inc), float64(direct))
		}
	}
}
