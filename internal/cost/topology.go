package cost

import (
	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/units"
)

// TopologyModel extends Model with placement-dependent communication:
// on hierarchical platforms (multi-node clusters, §I of the paper) the
// transfer time of a dependency depends on which pair of GPUs exchanges
// it. The evaluator, the simulator and the placement-aware schedulers
// (HIOS-MR's table, the branch-and-bound reference) consult
// CommTimeBetween when the cost model provides it; HIOS-LP picks it up
// automatically through the topology-aware evaluator.
//
// CommTime (the base interface) remains the *baseline* pair cost — the
// intra-node transfer time — so topology-blind consumers keep working
// and a uniform topology degenerates to the plain model exactly.
type TopologyModel interface {
	Model
	// CommTimeBetween returns t(u, v) when u runs on GPU gu and v on
	// GPU gv. It must return 0 when gu == gv.
	CommTimeBetween(u, v graph.OpID, gu, gv int) units.Millis
}

// CommBetween resolves a dependency's transfer time for a concrete GPU
// pair against any model: topology-aware models dispatch per pair,
// plain models charge the flat t(u, v) for any cross-GPU pair.
func CommBetween(m Model, u, v graph.OpID, gu, gv int) units.Millis {
	if gu == gv {
		return 0
	}
	if tm, ok := m.(TopologyModel); ok {
		return tm.CommTimeBetween(u, v, gu, gv)
	}
	return m.CommTime(u, v)
}

// topoModel wraps a Model with a per-pair transfer-time multiplier.
type topoModel struct {
	Model
	topo gpu.Topology
}

var _ TopologyModel = (*topoModel)(nil)

// WithTopology overlays a gpu.Topology onto a cost model: the cross-GPU
// transfer time of every dependency becomes CommTime(u, v) scaled by the
// pair's topology factor. Wrapping with a Uniform topology reproduces the
// plain model.
func WithTopology(m Model, topo gpu.Topology) TopologyModel {
	return &topoModel{Model: m, topo: topo}
}

func (t *topoModel) CommTimeBetween(u, v graph.OpID, gu, gv int) units.Millis {
	if gu == gv {
		return 0
	}
	return t.Model.CommTime(u, v).Scale(t.topo.Factor(gu, gv))
}
