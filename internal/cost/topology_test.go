package cost

import (
	"testing"

	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/units"
)

func TestTopologyFactors(t *testing.T) {
	u := gpu.Uniform(3)
	if u.GPUs() != 3 || u.Factor(0, 1) != 1 || u.Factor(2, 2) != 0 {
		t.Fatalf("uniform topology wrong: %+v", u)
	}
	tl := gpu.TwoLevel(2, 2, 4)
	if tl.GPUs() != 4 {
		t.Fatalf("two-level GPUs = %d", tl.GPUs())
	}
	cases := []struct {
		a, b int
		want float64
	}{
		{0, 1, 1}, {2, 3, 1}, // intra-node
		{0, 2, 4}, {1, 3, 4}, {0, 3, 4}, // inter-node
		{1, 1, 0},
	}
	for _, c := range cases {
		if got := tl.Factor(c.a, c.b); got != c.want {
			t.Errorf("Factor(%d,%d) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestWithTopologyScalesComm(t *testing.T) {
	g := buildPair(t)
	base := FromGraph(g, DefaultContention())
	tm := WithTopology(base, gpu.TwoLevel(2, 1, 5))
	if got := tm.CommTimeBetween(0, 1, 0, 0); got != 0 {
		t.Fatalf("same-GPU comm = %g", got)
	}
	// Two GPUs = two one-GPU nodes: the only cross pair is inter-node.
	if got, want := tm.CommTimeBetween(0, 1, 0, 1), units.Millis(0.5*5.0); got != want {
		t.Fatalf("inter-node comm = %g, want %g", got, want)
	}
	// The base interface still reports the baseline.
	if tm.CommTime(0, 1) != 0.5 {
		t.Fatalf("baseline comm changed: %g", tm.CommTime(0, 1))
	}
}

func TestCommBetweenDispatch(t *testing.T) {
	g := buildPair(t)
	base := FromGraph(g, DefaultContention())
	// Plain model: flat cost for any cross pair.
	if got := CommBetween(base, 0, 1, 0, 3); got != 0.5 {
		t.Fatalf("plain dispatch = %g", got)
	}
	if got := CommBetween(base, 0, 1, 2, 2); got != 0 {
		t.Fatalf("same-GPU dispatch = %g", got)
	}
	// Topology model: scaled.
	tm := WithTopology(base, gpu.TwoLevel(2, 2, 3))
	if got := CommBetween(tm, 0, 1, 0, 3); got != 1.5 {
		t.Fatalf("topology dispatch = %g", got)
	}
	if got := CommBetween(tm, 0, 1, 0, 1); got != 0.5 {
		t.Fatalf("intra-node dispatch = %g", got)
	}
}

func TestUniformTopologyIsTransparent(t *testing.T) {
	g := buildPair(t)
	base := FromGraph(g, DefaultContention())
	tm := WithTopology(base, gpu.Uniform(4))
	for gu := 0; gu < 4; gu++ {
		for gv := 0; gv < 4; gv++ {
			want := units.Millis(0)
			if gu != gv {
				want = base.CommTime(0, 1)
			}
			if got := tm.CommTimeBetween(0, 1, gu, gv); got != want {
				t.Fatalf("uniform(%d,%d) = %g, want %g", gu, gv, got, want)
			}
		}
	}
	_ = graph.OpID(0)
}
