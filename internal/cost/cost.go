// Package cost defines the cost-model contract the HIOS schedulers consume
// and provides the standard implementations.
//
// Following §III-A of the paper, a scheduler needs exactly three
// quantities, all in milliseconds:
//
//   - t(v): execution time of operator v running alone on one GPU;
//   - t(u, v): transfer time of u's output tensor between two GPUs,
//     charged only when u and v are mapped to different devices;
//   - t(S): total time of a set S of independent operators launched
//     concurrently (one CUDA stream each) on a single GPU.
//
// On the paper's testbed these come from profiling real kernels with cuDNN;
// here they come from graph weights (simulation experiments, §V) or from
// the analytic GPU device model in internal/gpu (real-system experiments,
// §VI). The contention model below reproduces the behaviour the paper
// measures in Fig. 1: concurrency helps while the GPU is under-utilized and
// hurts once concurrent kernels saturate it.
package cost

import (
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/units"
)

// Model supplies the three cost quantities of §III-A.
type Model interface {
	// OpTime returns t(v).
	OpTime(v graph.OpID) units.Millis
	// CommTime returns t(u, v) for the dependency u -> v, assuming the
	// endpoints run on different GPUs. Implementations return 0 when no
	// such dependency exists.
	CommTime(u, v graph.OpID) units.Millis
	// StageTime returns t(S): the makespan of the given independent
	// operators starting simultaneously on one GPU. For a single
	// operator it must equal OpTime. StageTime must be symmetric in the
	// order of its arguments and monotone: adding an operator never
	// decreases it.
	StageTime(ops []graph.OpID) units.Millis
}

// Item is one operator's contribution to a concurrent stage.
type Item struct {
	// Time is the operator's solo execution time t(v).
	Time units.Millis
	// Util is the fraction of the GPU the operator saturates alone,
	// in (0, 1].
	Util float64
}

// ItemModel is the contract behind the IOS dynamic program's fast path
// and its cross-sweep block cache (internal/dpcache): a model whose
// StageTime is EXACTLY Contention.StageTimeItems over fixed per-operator
// items. Implementations promise, bit for bit,
//
//	StageTime(ops) == Contention().StageTimeItems([StageItem(v) for v in ops])
//
// for every operator list, so a caller may fold StageItem values through
// Contention.accumulate/combine incrementally — or memoize a whole block
// solve by its item values — and obtain byte-identical results.
//
// Only models that are pure functions of their items may implement this.
// profile.CostTable and FrozenModel deliberately do NOT: their StageTime
// carries probe accounting (the Fig. 14 profiling-cost experiment), and
// a fast path that skipped StageTime would corrupt the counts. The same
// goes for costcache.KernelModel, whose probes feed the shared kernel
// cache statistics.
type ItemModel interface {
	Model
	// Contention returns the stage pricing the model folds items with.
	Contention() Contention
	// StageItem returns operator v's stage contribution. The Util field
	// is returned unclamped — clamping is Contention.accumulate's job,
	// exactly as in StageTime.
	StageItem(v graph.OpID) Item
}

// Contention is the concurrent-execution model for one GPU.
//
// A stage S of independent operators launched on separate streams takes
//
//	t(S) = max( max_v t(v), Σ_v t(v)·u(v) ) · (1 + Alpha·max(0, Σ_v u(v) − 1))
//
// The first factor is a work-conservation bound: the stage can finish no
// earlier than its longest member, and the GPU can retire at most one
// GPU-second of normalized work (time × utilization) per second. The second
// factor charges a contention and context-switch penalty, growing with the
// amount of oversubscription, which is what makes two large kernels slower
// in parallel than in sequence (paper Fig. 1, image sizes ≥ 128) while two
// small kernels still overlap almost perfectly (sizes ≤ 64).
type Contention struct {
	// Alpha scales the oversubscription penalty. The paper's Fig. 1
	// shows parallel execution of two saturating convolutions running
	// up to ~20% slower than sequential; Alpha = 0.2 reproduces that.
	Alpha float64
	// DefaultUtil substitutes for operators whose utilization is
	// unknown (Op.Util == 0).
	DefaultUtil float64
}

// DefaultContention is the calibration used across the experiments.
func DefaultContention() Contention {
	return Contention{Alpha: 0.2, DefaultUtil: 0.35}
}

// StageTimeItems evaluates t(S) for explicit items.
func (c Contention) StageTimeItems(items []Item) units.Millis {
	if len(items) == 0 {
		return 0
	}
	var maxT, work units.Millis
	var util float64
	for _, it := range items {
		maxT, work, util = c.Accumulate(maxT, work, util, it.Time, it.Util)
	}
	return c.Combine(maxT, work, util)
}

// accumulate folds one operator into the stage aggregates. work is the
// utilization-weighted time Σ t(v)·u(v), still dimensionally time.
func (c Contention) Accumulate(maxT, work units.Millis, util float64, t units.Millis, u float64) (units.Millis, units.Millis, float64) {
	if u <= 0 {
		u = c.DefaultUtil
	}
	if u > 1 {
		u = 1
	}
	if t > maxT {
		maxT = t
	}
	return maxT, work + t.Scale(u), util + u
}

// combine turns the stage aggregates into t(S).
func (c Contention) Combine(maxT, work units.Millis, util float64) units.Millis {
	t := maxT
	if work > t {
		t = work
	}
	if over := util - 1; over > 0 {
		t = t.Scale(1 + c.Alpha*over)
	}
	return t
}

// GraphModel is a Model backed directly by a graph's vertex and edge
// weights, with concurrent stages priced by a Contention model. This is the
// configuration of the paper's simulation study (§V): op times drawn
// uniformly from [0.1, 4] ms, transfer times attached to edges, and
// utilization derived from op size.
type GraphModel struct {
	g *graph.Graph
	c Contention
}

var _ Model = (*GraphModel)(nil)

// FromGraph builds a GraphModel over g.
func FromGraph(g *graph.Graph, c Contention) *GraphModel {
	return &GraphModel{g: g, c: c}
}

// OpTime implements Model. Graph vertex weights are milliseconds by
// convention (graph.Op.Time); this is the boundary where they become
// typed.
func (m *GraphModel) OpTime(v graph.OpID) units.Millis { return units.Millis(m.g.Time(v)) }

// CommTime implements Model.
func (m *GraphModel) CommTime(u, v graph.OpID) units.Millis {
	t, _ := m.g.TransferTime(u, v)
	return units.Millis(t)
}

// StageTime implements Model. It runs allocation-free: the IOS dynamic
// program calls it millions of times.
func (m *GraphModel) StageTime(ops []graph.OpID) units.Millis {
	if len(ops) == 1 {
		return units.Millis(m.g.Time(ops[0]))
	}
	var maxT, work units.Millis
	var util float64
	for _, id := range ops {
		op := m.g.Op(id)
		maxT, work, util = m.c.Accumulate(maxT, work, util, units.Millis(op.Time), op.Util)
	}
	return m.c.Combine(maxT, work, util)
}

// Contention exposes the stage pricing used by the model.
func (m *GraphModel) Contention() Contention { return m.c }

var _ ItemModel = (*GraphModel)(nil)

// StageItem implements ItemModel: the graph's vertex weight and raw
// utilization. StageTime is the accumulate/combine fold of exactly these
// values (the len==1 special case is also bit-identical: with u clamped
// into (0, 1], max(t, t·u) is t and no oversubscription scale fires), so
// GraphModel satisfies the ItemModel contract.
func (m *GraphModel) StageItem(v graph.OpID) Item {
	op := m.g.Op(v)
	return Item{Time: units.Millis(op.Time), Util: op.Util}
}

// SerialModel prices stages as the sum of member times: no intra-GPU
// overlap at all. Useful as a pessimistic baseline and in tests.
type SerialModel struct{ Inner Model }

var _ Model = SerialModel{}

// OpTime implements Model.
func (m SerialModel) OpTime(v graph.OpID) units.Millis { return m.Inner.OpTime(v) }

// CommTime implements Model.
func (m SerialModel) CommTime(u, v graph.OpID) units.Millis { return m.Inner.CommTime(u, v) }

// StageTime implements Model.
func (m SerialModel) StageTime(ops []graph.OpID) units.Millis {
	var s units.Millis
	for _, v := range ops {
		s += m.Inner.OpTime(v)
	}
	return s
}
