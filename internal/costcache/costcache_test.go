package costcache

import (
	"runtime"
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/parallel"
	"github.com/shus-lab/hios/internal/units"
)

// probeKernels returns a workload of kernel shapes with deliberate
// repetition (i%7) so both hits and misses occur.
func probeKernels(n int) []gpu.Kernel {
	ks := make([]gpu.Kernel, n)
	for i := range ks {
		v := float64(i%7 + 1)
		ks[i] = gpu.Kernel{
			FLOPs:   units.FLOPs(1e9 * v),
			Bytes:   units.Bytes(1e6 * v),
			Threads: 1e5 * v,
		}
	}
	return ks
}

// TestValuesBitIdentical pins the cache's core contract: every tier
// returns exactly the value the underlying pure function returns —
// not approximately, bit for bit.
func TestValuesBitIdentical(t *testing.T) {
	c := New()
	dev := gpu.A40()
	link := gpu.NVLinkBridge()
	ct := cost.DefaultContention()

	for round := 0; round < 2; round++ { // round 1 = miss path, round 2 = hit path
		for _, k := range probeKernels(20) {
			gotT, gotU := c.KernelTime(dev, k)
			if gotT != dev.Time(k) || gotU != dev.Utilization(k) { //lint:floatexact
				t.Fatalf("round %d: kernel %+v: got (%v,%v), want (%v,%v)",
					round, k, gotT, gotU, dev.Time(k), dev.Utilization(k))
			}
			b := k.Bytes
			if got := c.TransferTime(link, b); got != link.TransferTime(b) { //lint:floatexact
				t.Fatalf("round %d: transfer %v: got %v want %v", round, b, got, link.TransferTime(b))
			}
		}
		// Stages spanning the inline capacity and the spill path, probed
		// in a fixed order (the signature preserves order).
		for width := 1; width <= 12; width++ {
			items := make([]cost.Item, width)
			for i := range items {
				items[i] = cost.Item{Time: units.Millis(float64(i+1) * 0.3), Util: 0.1 * float64(i%9+1)}
			}
			if got := c.StageTime(ct, items); got != ct.StageTimeItems(items) { //lint:floatexact
				t.Fatalf("round %d: stage width %d: got %v want %v", round, width, got, ct.StageTimeItems(items))
			}
		}
	}

	s := c.Stats()
	if s.Kernels != 7 || s.Transfers != 7 || s.Stages != 12 {
		t.Fatalf("distinct signatures: got %d/%d/%d kernels/transfers/stages, want 7/7/12", s.Kernels, s.Transfers, s.Stages)
	}
	if s.KernelHits+s.KernelMisses != 40 || s.KernelMisses != 7 {
		t.Fatalf("kernel counters: %d hits + %d misses, want 33+7", s.KernelHits, s.KernelMisses)
	}
	if s.StageHits+s.StageMisses != 24 || s.StageMisses != 12 {
		t.Fatalf("stage counters: %d hits + %d misses, want 12+12", s.StageHits, s.StageMisses)
	}
}

// TestConcurrentProbesExact hammers one cache from an oversubscribed
// worker pool and requires every returned value to be bit-identical to
// the serial reference: cached values are pure functions of their
// signatures, so no interleaving of racing inserts may change a single
// bit. Run under -race in CI, this is the shared-cache concurrency
// contract of the parallel sweeps.
func TestConcurrentProbesExact(t *testing.T) {
	dev := gpu.V100S()
	link := gpu.PCIe3()
	ct := cost.DefaultContention()
	kernels := probeKernels(64)

	type cell struct {
		KTime units.Millis
		KUtil float64
		TTime units.Millis
		STime units.Millis
	}
	probe := func(i int) cell {
		k := kernels[i%len(kernels)]
		items := []cost.Item{
			{Time: units.Millis(float64(i%5) + 0.5), Util: 0.3},
			{Time: units.Millis(float64(i%3) + 0.25), Util: 0.8},
		}
		var out cell
		out.KTime, out.KUtil = shared.KernelTime(dev, k)
		out.TTime = shared.TransferTime(link, k.Bytes)
		out.STime = shared.StageTime(ct, items)
		return out
	}

	const n = 512
	want := make([]cell, n)
	for i := range want {
		k := kernels[i%len(kernels)]
		items := []cost.Item{
			{Time: units.Millis(float64(i%5) + 0.5), Util: 0.3},
			{Time: units.Millis(float64(i%3) + 0.25), Util: 0.8},
		}
		want[i] = cell{
			KTime: dev.Time(k),
			KUtil: dev.Utilization(k),
			TTime: link.TransferTime(k.Bytes),
			STime: ct.StageTimeItems(items),
		}
	}

	before := shared.Stats()
	got, err := parallel.Map(n, runtime.GOMAXPROCS(0)+3, func(i int) (cell, error) {
		return probe(i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] { //lint:floatexact
			t.Fatalf("probe %d: concurrent cache returned %+v, want %+v", i, got[i], want[i])
		}
	}
	after := shared.Stats()
	if d := (after.KernelHits + after.KernelMisses) - (before.KernelHits + before.KernelMisses); d != n {
		t.Fatalf("kernel probe count: %d, want %d", d, n)
	}
	if d := (after.StageHits + after.StageMisses) - (before.StageHits + before.StageMisses); d != n {
		t.Fatalf("stage probe count: %d, want %d", d, n)
	}
}

// TestResetEmptiesEverything covers Reset: counters and maps drop to
// zero and subsequent probes still return exact values.
func TestResetEmptiesEverything(t *testing.T) {
	c := New()
	dev := gpu.A5500()
	k := probeKernels(1)[0]
	c.KernelTime(dev, k)
	c.Reset()
	s := c.Stats()
	if s.Probes() != 0 || s.Kernels != 0 || s.Transfers != 0 || s.Stages != 0 {
		t.Fatalf("after Reset: %+v", s)
	}
	gotT, gotU := c.KernelTime(dev, k)
	if gotT != dev.Time(k) || gotU != dev.Utilization(k) { //lint:floatexact
		t.Fatalf("post-reset probe: got (%v,%v)", gotT, gotU)
	}
}
