// Package costcache memoizes the analytic cost model across graphs.
//
// The roofline kernel model in internal/gpu and the contention stage
// model in internal/cost are pure functions of *shape* — device
// coefficients, FLOPs, bytes, thread counts — yet the experiment sweeps
// re-derive them from scratch for every graph, seed and input size,
// because every evaluation site addresses operators by OpID. This
// package keys the three §III-A probe kinds by their canonical shape
// signatures (gpu.KernelSig, gpu.TransferSig, cost.StageSig) in one
// read-mostly process-wide cache, so structurally identical kernels —
// the repeated cells of NASNet, the same convolution probed at every
// sweep point — are priced once per process rather than once per probe
// site.
//
// The cache sits BELOW profile.CostTable and is invisible to it: a
// CostTable keeps its own per-table maps and probe counters, so the
// Fig. 14 profiling-cost accounting (how many distinct probes an
// algorithm needs against a fresh table) is unchanged whether the
// shared cache is cold or warm.
//
// Concurrency: lookups take a read lock; a miss computes the value
// outside any lock (the functions are pure) and inserts under the write
// lock with a re-check. Because every value is a pure function of its
// key, concurrent racers compute bit-identical values and it does not
// matter whose insert wins — results are deterministic under any
// interleaving, which is what lets parallel sweep workers share one
// cache without perturbing byte-identical figure output.
package costcache

import (
	"sync"
	"sync/atomic"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/units"
)

// kernelEntry is a memoized solo-kernel probe: Device.Time and
// Device.Utilization are always wanted together.
type kernelEntry struct {
	time units.Millis
	util float64
}

// Cache memoizes kernel, transfer and stage probes by shape signature.
// The zero value is not ready; use New (or the process-wide Shared).
type Cache struct {
	mu        sync.RWMutex
	kernels   map[gpu.KernelSig]kernelEntry
	transfers map[gpu.TransferSig]units.Millis
	stages    map[cost.StageSig]units.Millis

	kernelHits     atomic.Int64
	kernelMisses   atomic.Int64
	transferHits   atomic.Int64
	transferMisses atomic.Int64
	stageHits      atomic.Int64
	stageMisses    atomic.Int64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{
		kernels:   make(map[gpu.KernelSig]kernelEntry),
		transfers: make(map[gpu.TransferSig]units.Millis),
		stages:    make(map[cost.StageSig]units.Millis),
	}
}

var shared = New()

// Shared returns the process-wide cache every builder and sweep worker
// shares. Values are pure functions of their signatures, so sharing is
// safe across concurrent experiments; Reset exists for benchmarks that
// want cold-cache numbers.
func Shared() *Cache { return shared }

// KernelTime returns Device.Time and Device.Utilization of k on d,
// memoized by shape.
func (c *Cache) KernelTime(d gpu.Device, k gpu.Kernel) (units.Millis, float64) {
	sig := d.Sig(k)
	c.mu.RLock()
	e, ok := c.kernels[sig]
	c.mu.RUnlock()
	if ok {
		c.kernelHits.Add(1)
		return e.time, e.util
	}
	c.kernelMisses.Add(1)
	e = kernelEntry{time: d.Time(k), util: d.Utilization(k)}
	c.mu.Lock()
	if prev, ok := c.kernels[sig]; ok {
		e = prev // a racer inserted the same pure value first
	} else {
		c.kernels[sig] = e
	}
	c.mu.Unlock()
	return e.time, e.util
}

// TransferTime returns Link.TransferTime of b bytes across l, memoized
// by shape.
func (c *Cache) TransferTime(l gpu.Link, b units.Bytes) units.Millis {
	sig := l.Sig(b)
	c.mu.RLock()
	t, ok := c.transfers[sig]
	c.mu.RUnlock()
	if ok {
		c.transferHits.Add(1)
		return t
	}
	c.transferMisses.Add(1)
	t = l.TransferTime(b)
	c.mu.Lock()
	if prev, ok := c.transfers[sig]; ok {
		t = prev
	} else {
		c.transfers[sig] = t
	}
	c.mu.Unlock()
	return t
}

// StageTime returns Contention.StageTimeItems for the members, memoized
// by shape. The signature preserves member order (see cost.StageSig), so
// the cached value is bit-identical to a direct evaluation.
func (c *Cache) StageTime(ct cost.Contention, items []cost.Item) units.Millis {
	sig := ct.Sig(items)
	c.mu.RLock()
	t, ok := c.stages[sig]
	c.mu.RUnlock()
	if ok {
		c.stageHits.Add(1)
		return t
	}
	c.stageMisses.Add(1)
	t = ct.StageTimeItems(items)
	c.mu.Lock()
	if prev, ok := c.stages[sig]; ok {
		t = prev
	} else {
		c.stages[sig] = t
	}
	c.mu.Unlock()
	return t
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Kernels, Transfers, Stages                int   // distinct cached signatures
	KernelHits, TransferHits, StageHits       int64 // probes answered from cache
	KernelMisses, TransferMisses, StageMisses int64 // probes computed and inserted
}

// Probes returns the total probe count the cache has served.
func (s Stats) Probes() int64 {
	return s.KernelHits + s.KernelMisses +
		s.TransferHits + s.TransferMisses +
		s.StageHits + s.StageMisses
}

// Stats snapshots the cache. Sizes are read under the lock; the counters
// are monotonic atomics (a concurrent probe may be counted before its
// insert is visible, so Hits+Misses can briefly exceed the map sizes —
// never the reverse).
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	s := Stats{Kernels: len(c.kernels), Transfers: len(c.transfers), Stages: len(c.stages)}
	c.mu.RUnlock()
	s.KernelHits = c.kernelHits.Load()
	s.KernelMisses = c.kernelMisses.Load()
	s.TransferHits = c.transferHits.Load()
	s.TransferMisses = c.transferMisses.Load()
	s.StageHits = c.stageHits.Load()
	s.StageMisses = c.stageMisses.Load()
	return s
}

// Reset drops every cached value and zeroes the counters. Results are
// unaffected by when (or whether) this is called — only hit rates are.
func (c *Cache) Reset() {
	// Fresh maps are built before the lock so the critical section is
	// three pointer swaps, not three allocations.
	kernels := make(map[gpu.KernelSig]kernelEntry)
	transfers := make(map[gpu.TransferSig]units.Millis)
	stages := make(map[cost.StageSig]units.Millis)
	c.mu.Lock()
	c.kernels = kernels
	c.transfers = transfers
	c.stages = stages
	c.mu.Unlock()
	c.kernelHits.Store(0)
	c.kernelMisses.Store(0)
	c.transferHits.Store(0)
	c.transferMisses.Store(0)
	c.stageHits.Store(0)
	c.stageMisses.Store(0)
}
