package costcache

import (
	"fmt"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/units"
)

// KernelModel is a cost.Model that prices a graph straight from per-op
// kernel shapes through a Cache, instead of reading weights baked into
// the graph. For a net whose graph weights were produced by the same
// device/link/contention configuration (model.Builder), every quantity
// is bit-identical to cost.FromGraph on that graph — the builder stored
// exactly these cached values — so the two models are interchangeable;
// this one additionally shares its pricing with every other graph in the
// process that contains the same kernel shapes.
type KernelModel struct {
	cache   *Cache
	g       *graph.Graph
	dev     gpu.Device
	link    gpu.Link
	kernels []gpu.Kernel
	out     []units.Bytes // per-op output-tensor size (transfer payload)
	ct      cost.Contention
}

var _ cost.Model = (*KernelModel)(nil)

// NewKernelModel builds a KernelModel over g. kernels and out must hold
// one entry per operator of g.
func NewKernelModel(c *Cache, g *graph.Graph, dev gpu.Device, link gpu.Link, kernels []gpu.Kernel, out []units.Bytes, ct cost.Contention) (*KernelModel, error) {
	if len(kernels) != g.NumOps() || len(out) != g.NumOps() {
		return nil, fmt.Errorf("costcache: %d kernels / %d outputs for a %d-op graph",
			len(kernels), len(out), g.NumOps())
	}
	return &KernelModel{cache: c, g: g, dev: dev, link: link, kernels: kernels, out: out, ct: ct}, nil
}

// OpTime implements cost.Model.
func (m *KernelModel) OpTime(v graph.OpID) units.Millis {
	t, _ := m.cache.KernelTime(m.dev, m.kernels[v])
	return t
}

// CommTime implements cost.Model: the transfer time of u's output tensor
// across the link, charged only when the dependency exists.
func (m *KernelModel) CommTime(u, v graph.OpID) units.Millis {
	if _, ok := m.g.TransferTime(u, v); !ok {
		return 0
	}
	return m.cache.TransferTime(m.link, m.out[u])
}

// StageTime implements cost.Model. The item buffer is stack-local so one
// model may be probed from many goroutines at once.
func (m *KernelModel) StageTime(ops []graph.OpID) units.Millis {
	if len(ops) == 1 {
		t, _ := m.cache.KernelTime(m.dev, m.kernels[ops[0]])
		return t
	}
	var buf [16]cost.Item
	items := buf[:0]
	if len(ops) > len(buf) {
		items = make([]cost.Item, 0, len(ops))
	}
	for _, v := range ops {
		t, u := m.cache.KernelTime(m.dev, m.kernels[v])
		items = append(items, cost.Item{Time: t, Util: u})
	}
	return m.cache.StageTime(m.ct, items)
}
