package runtime

import (
	"testing"
	"time"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched/lp"
)

// BenchmarkExecute measures one live multi-worker execution (goroutines +
// MPI transfers) of a 60-operator schedule on 4 simulated GPUs.
func BenchmarkExecute60Ops4GPUs(b *testing.B) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 60, 6, 120, 2
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := lp.Schedule(g, m, lp.Options{GPUs: 4})
	if err != nil {
		b.Fatal(err)
	}
	opt := Options{WorkPerMs: 500, CommDelay: time.Microsecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, m, res.Schedule, opt); err != nil {
			b.Fatal(err)
		}
	}
}
