package runtime

import (
	"testing"
	"time"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/ios"
	"github.com/shus-lab/hios/internal/sched/lp"
	"github.com/shus-lab/hios/internal/sched/mr"
	"github.com/shus-lab/hios/internal/sched/seq"
)

// fastOpts keeps wall time tiny in tests.
func fastOpts() Options {
	return Options{WorkPerMs: 2000, CommDelay: time.Microsecond}
}

func testGraph(seed int64, ops int) (*graph.Graph, cost.Model) {
	cfg := randdag.Paper()
	cfg.Ops = ops
	cfg.Layers = 5
	cfg.Deps = 2 * ops
	cfg.Seed = seed
	g := randdag.MustGenerate(cfg)
	return g, cost.FromGraph(g, cost.DefaultContention())
}

func sameOutputs(t *testing.T, a, b map[graph.OpID][]float32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("output counts differ: %d vs %d", len(a), len(b))
	}
	for op, av := range a {
		bv, ok := b[op]
		if !ok {
			t.Fatalf("operator %d missing", op)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("operator %d output differs at %d: %g vs %g", op, i, av[i], bv[i])
			}
		}
	}
}

// TestAllSchedulersComputeIdenticalResults is the flagship end-to-end
// check: sequential, IOS, HIOS-LP and HIOS-MR schedules of the same graph,
// executed by the concurrent multi-worker engine with real MPI transfers,
// must produce bit-identical tensors, all equal to the single-threaded
// reference execution.
func TestAllSchedulersComputeIdenticalResults(t *testing.T) {
	g, m := testGraph(1, 40)
	ref := Reference(g, fastOpts())

	run := func(name string, s *sched.Schedule) {
		t.Helper()
		rep, err := Run(g, m, s, fastOpts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameOutputs(t, ref, rep.Outputs)
	}

	sq, err := seq.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	run("sequential", sq.Schedule)

	io, err := ios.Schedule(g, m, ios.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run("ios", io.Schedule)

	for _, gpus := range []int{2, 4} {
		l, err := lp.Schedule(g, m, lp.Options{GPUs: gpus})
		if err != nil {
			t.Fatal(err)
		}
		run("hios-lp", l.Schedule)

		r, err := mr.Schedule(g, m, mr.Options{GPUs: gpus})
		if err != nil {
			t.Fatal(err)
		}
		run("hios-mr", r.Schedule)
	}
}

func TestTransfersHappenOnlyAcrossGPUs(t *testing.T) {
	g, m := testGraph(2, 30)
	sq, err := seq.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(g, m, sq.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Messages != 0 {
		t.Fatalf("single-GPU schedule moved %d messages", rep.Messages)
	}

	l, err := lp.Schedule(g, m, lp.Options{GPUs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if l.Schedule.UsedGPUs() > 1 {
		rep, err = Run(g, m, l.Schedule, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Messages == 0 {
			t.Fatal("multi-GPU schedule moved no tensors")
		}
		if rep.MovedBytes == 0 {
			t.Fatal("messages without payload bytes")
		}
	}
}

func TestRefusesInvalidSchedule(t *testing.T) {
	g, m := testGraph(3, 10)
	s := sched.New(2)
	s.Append(0, 0) // missing the rest
	if _, err := Run(g, m, s, fastOpts()); err == nil {
		t.Fatal("executor accepted an incomplete schedule")
	}
}

func TestRefusesDeadlock(t *testing.T) {
	g := graph.New(4, 2)
	a := g.AddOp(graph.Op{Time: 0.1})
	b := g.AddOp(graph.Op{Time: 0.1})
	c := g.AddOp(graph.Op{Time: 0.1})
	d := g.AddOp(graph.Op{Time: 0.1})
	g.AddEdge(a, b, 0.1)
	g.AddEdge(c, d, 0.1)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	s := sched.New(2)
	s.Append(0, d)
	s.Append(0, a)
	s.Append(1, b)
	s.Append(1, c)
	if _, err := Run(g, m, s, fastOpts()); err == nil {
		t.Fatal("executor accepted a deadlocked schedule (would hang)")
	}
}

func TestGPUBusyAccounted(t *testing.T) {
	g, m := testGraph(4, 30)
	l, err := lp.Schedule(g, m, lp.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(g, m, l.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.GPUBusy) != 2 {
		t.Fatalf("GPUBusy = %v", rep.GPUBusy)
	}
	var total time.Duration
	for _, b := range rep.GPUBusy {
		total += b
	}
	if total <= 0 {
		t.Fatal("no busy time recorded")
	}
	if rep.Wall <= 0 {
		t.Fatal("no wall time recorded")
	}
}

func TestReferenceDeterministic(t *testing.T) {
	g, _ := testGraph(5, 20)
	a := Reference(g, fastOpts())
	b := Reference(g, fastOpts())
	sameOutputs(t, a, b)
}

func TestSpansCoverExecutionAndConvert(t *testing.T) {
	g, m := testGraph(6, 30)
	l, err := lp.Schedule(g, m, lp.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(g, m, l.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Spans) != l.Schedule.NumStages() {
		t.Fatalf("spans = %d, want %d stages", len(rep.Spans), l.Schedule.NumStages())
	}
	seen := 0
	for _, sp := range rep.Spans {
		if sp.End < sp.Start {
			t.Fatalf("span ends before start: %+v", sp)
		}
		seen += len(sp.Ops)
	}
	if seen != g.NumOps() {
		t.Fatalf("spans cover %d ops, want %d", seen, g.NumOps())
	}
	tr := rep.SimTrace()
	if tr.Latency <= 0 || len(tr.Stages) != len(rep.Spans) {
		t.Fatalf("SimTrace conversion wrong: latency %g, %d stages", tr.Latency, len(tr.Stages))
	}
	// Stage indices must be sequential per GPU.
	next := map[int]int{}
	byGPU := map[int][]int{}
	for _, st := range tr.Stages {
		byGPU[st.GPU] = append(byGPU[st.GPU], st.Index)
	}
	for gpu, idxs := range byGPU {
		// Indices were assigned in span order; after sorting by start
		// they must still be a permutation of 0..n-1.
		present := make([]bool, len(idxs))
		for _, ix := range idxs {
			if ix < 0 || ix >= len(idxs) || present[ix] {
				t.Fatalf("GPU %d has bad stage indices %v", gpu, idxs)
			}
			present[ix] = true
		}
		_ = next
	}
}
