// Package runtime executes a schedule for real: one worker goroutine per
// simulated GPU, concurrent kernel launches inside each stage (the paper's
// CUDA streams), and MPI transfers for every cross-GPU dependency. It is
// the live counterpart of the discrete-event engine in package sim —
// instead of computing when things would happen, it makes them happen,
// with genuine concurrency and genuine (synthetic) floating-point work
// calibrated to each operator's modeled latency.
//
// Because the synthetic kernels are deterministic functions of their
// inputs, every valid schedule of a graph — sequential, IOS, HIOS-LP,
// HIOS-MR — must produce bit-identical outputs; the test suite uses this
// to prove that no scheduler reorders a computation illegally.
package runtime

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/kernels"
	"github.com/shus-lab/hios/internal/mpi"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sim"
	"github.com/shus-lab/hios/internal/units"
)

// Options calibrates modeled time to wall-clock effort.
type Options struct {
	// WorkPerMs is the number of synthetic FMA iterations a kernel runs
	// per modeled millisecond of operator latency. Zero selects 50000
	// (a few tens of microseconds of real work per modeled ms).
	WorkPerMs int
	// CommDelay is the wall-clock delay charged per modeled millisecond
	// of transfer time. Zero selects 10µs.
	CommDelay time.Duration
}

func (o *Options) fill() {
	if o.WorkPerMs == 0 {
		o.WorkPerMs = 50000
	}
	if o.CommDelay == 0 {
		o.CommDelay = 10 * time.Microsecond
	}
}

// Validate reports whether the calibration is usable: negative work or
// delay factors are meaningless (zero selects the defaults).
func (o Options) Validate() error {
	if o.WorkPerMs < 0 {
		return fmt.Errorf("runtime: negative WorkPerMs %d", o.WorkPerMs)
	}
	if o.CommDelay < 0 {
		return fmt.Errorf("runtime: negative CommDelay %v", o.CommDelay)
	}
	return nil
}

// StageSpan records one executed stage's wall-clock interval relative to
// the start of the run.
type StageSpan struct {
	GPU        int
	Ops        []graph.OpID
	Start, End time.Duration
}

// Report is the outcome of one execution.
type Report struct {
	// Outputs holds every operator's output tensor.
	Outputs map[graph.OpID][]float32
	// Wall is the end-to-end wall-clock time of the run.
	Wall time.Duration
	// GPUBusy is the cumulative kernel-execution time per simulated GPU.
	GPUBusy []time.Duration
	// Spans is the measured wall-clock timeline of every stage, usable
	// with SimTrace for Gantt/Chrome rendering of the real execution.
	Spans []StageSpan
	// Messages and MovedBytes summarize MPI traffic.
	Messages   int64
	MovedBytes int64
}

// SimTrace converts the measured wall-clock timeline into the simulator's
// trace format (times in milliseconds), so trace.Gantt and
// trace.ChromeTrace can render a real execution exactly like a simulated
// one.
func (r *Report) SimTrace() *sim.Trace {
	tr := &sim.Trace{}
	perGPU := map[int]int{}
	for _, sp := range r.Spans {
		idx := perGPU[sp.GPU]
		perGPU[sp.GPU]++
		rec := sim.StageRecord{
			GPU:    sp.GPU,
			Index:  idx,
			Ops:    sp.Ops,
			Start:  units.Millis(float64(sp.Start.Nanoseconds()) / 1e6),
			Finish: units.Millis(float64(sp.End.Nanoseconds()) / 1e6),
		}
		tr.Stages = append(tr.Stages, rec)
		if rec.Finish > tr.Latency {
			tr.Latency = rec.Finish
		}
	}
	sort.Slice(tr.Stages, func(i, j int) bool {
		if tr.Stages[i].Start != tr.Stages[j].Start {
			return tr.Stages[i].Start < tr.Stages[j].Start
		}
		return tr.Stages[i].GPU < tr.Stages[j].GPU
	})
	return tr
}

// Run executes schedule s of graph g. The schedule must be complete and
// deadlock-free; Run verifies this up front with the analytic evaluator so
// that a bad schedule yields an error instead of hung goroutines.
func Run(g *graph.Graph, m cost.Model, s *sched.Schedule, opt Options) (*Report, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt.fill()
	if _, err := sched.Evaluate(g, m, s); err != nil {
		return nil, fmt.Errorf("runtime: refusing to execute: %w", err)
	}
	n := g.NumOps()

	// The executor is the measurement layer: wall-clock is legal here,
	// and injecting it keeps mpi itself inside the detclock invariant.
	comm, err := mpi.NewComm(len(s.GPUs), nil, mpi.Clock{Now: time.Now, Sleep: time.Sleep})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Outputs: make(map[graph.OpID][]float32, n),
		GPUBusy: make([]time.Duration, len(s.GPUs)),
	}
	var outMu sync.Mutex
	runStart := time.Now()

	errs := make([]error, len(s.GPUs))
	var wg sync.WaitGroup
	for gi := range s.GPUs {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			errs[gi] = runWorker(g, m, s, gi, comm, opt, rep, &outMu, runStart)
		}(gi)
	}
	wg.Wait()
	rep.Wall = time.Since(runStart)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rep.Messages, _, rep.MovedBytes = comm.Stats()
	return rep, nil
}

// runWorker drives one simulated GPU through its stage list.
func runWorker(g *graph.Graph, m cost.Model, s *sched.Schedule, gi int, comm *mpi.Comm, opt Options, rep *Report, outMu *sync.Mutex, runStart time.Time) error {
	rank, err := comm.Rank(gi)
	if err != nil {
		return err
	}
	gpuOf := s.Placement(g.NumOps())
	local := make(map[graph.OpID][]float32)
	var busy time.Duration

	for _, stage := range s.GPUs[gi].Stages {
		// Gather inputs for every member. Remote tensors are received
		// once per producer (the paper's engine likewise transfers
		// each tensor to a GPU once, however many consumers it has).
		inputs := make([][][]float32, len(stage.Ops))
		for i, op := range stage.Ops {
			var ins [][]float32
			var perr error
			g.Preds(op, func(u graph.OpID, _ float64) {
				if perr != nil {
					return
				}
				t, ok := local[u]
				if !ok {
					if gpuOf[u] == gi {
						perr = fmt.Errorf("runtime: GPU %d needs local tensor %d before it was produced", gi, u)
						return
					}
					t, perr = rank.Recv(gpuOf[u], int(u))
					if perr != nil {
						return
					}
					local[u] = t
				}
				ins = append(ins, t)
			})
			if perr != nil {
				return perr
			}
			inputs[i] = ins
		}
		// Launch the stage: one goroutine per member, the runtime's
		// CUDA streams.
		outs := make([][]float32, len(stage.Ops))
		kstart := time.Now()
		var sg sync.WaitGroup
		for i, op := range stage.Ops {
			sg.Add(1)
			go func(i int, op graph.OpID) {
				defer sg.Done()
				work := int(g.Op(op).Time * float64(opt.WorkPerMs))
				outs[i] = kernels.Synth(int64(op), inputs[i], work)
			}(i, op)
		}
		sg.Wait()
		busy += time.Since(kstart)
		outMu.Lock()
		rep.Spans = append(rep.Spans, StageSpan{
			GPU:   gi,
			Ops:   append([]graph.OpID(nil), stage.Ops...),
			Start: kstart.Sub(runStart),
			End:   time.Since(runStart),
		})
		outMu.Unlock()
		// Publish results: locally, to the report, and to remote GPUs.
		for i, op := range stage.Ops {
			local[op] = outs[i]
			outMu.Lock()
			rep.Outputs[op] = outs[i]
			outMu.Unlock()
			for _, dst := range sendTargets(g, gpuOf, op) {
				// Charge the modeled transfer time. CommTime needs a
				// consumer; all consumers of one edge see the same
				// producer tensor, so take any consumer on dst.
				// Wall-clock calibration boundary: modeled ms ×
				// (wall time per modeled ms) leaves the unit system.
				delay := time.Duration(float64(maxCommTo(g, m, gpuOf, op, dst)) * float64(opt.CommDelay))
				if err := rank.SendDelayed(dst, int(op), outs[i], delay); err != nil {
					return err
				}
			}
		}
	}
	rep.GPUBusy[gi] = busy
	return nil
}

// sendTargets returns the distinct remote GPUs consuming op's output.
func sendTargets(g *graph.Graph, gpuOf []int, op graph.OpID) []int {
	var out []int
	g.Succs(op, func(v graph.OpID, _ float64) {
		gv := gpuOf[v]
		if gv == gpuOf[op] {
			return
		}
		for _, d := range out {
			if d == gv {
				return
			}
		}
		out = append(out, gv)
	})
	return out
}

// maxCommTo returns the modeled transfer time of op's tensor to the
// given GPU: the maximum over consuming edges (they share one physical
// transfer).
func maxCommTo(g *graph.Graph, m cost.Model, gpuOf []int, op graph.OpID, dst int) units.Millis {
	best := units.Millis(0)
	g.Succs(op, func(v graph.OpID, _ float64) {
		if gpuOf[v] != dst {
			return
		}
		if c := cost.CommBetween(m, op, v, gpuOf[op], dst); c > best {
			best = c
		}
	})
	return best
}

// Reference executes the graph sequentially in topological order with the
// same synthetic kernels and returns every operator's output: the ground
// truth any schedule's execution must reproduce exactly.
func Reference(g *graph.Graph, opt Options) map[graph.OpID][]float32 {
	opt.fill()
	order, err := g.TopoOrder()
	if err != nil {
		panic("runtime: Reference on cyclic graph: " + err.Error())
	}
	out := make(map[graph.OpID][]float32, len(order))
	for _, op := range order {
		var ins [][]float32
		g.Preds(op, func(u graph.OpID, _ float64) {
			ins = append(ins, out[u])
		})
		work := int(g.Op(op).Time * float64(opt.WorkPerMs))
		out[op] = kernels.Synth(int64(op), ins, work)
	}
	return out
}
