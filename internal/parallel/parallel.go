// Package parallel is the deterministic worker pool behind the
// statistical sweeps in internal/experiments.
//
// The repository's determinism contract (DESIGN.md §7) requires that a
// figure regenerated from the same seeds is byte-identical regardless of
// how many cores ran the sweep. The pool guarantees this by separating
// computation from aggregation: tasks are pure functions of their index,
// their results are collected into a slice in index order, and callers
// merge that slice serially — so every floating-point accumulation happens
// in exactly the order the single-threaded loop would have used. Nothing
// in this package reads the wall clock or any global random state.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWidth returns the pool width used when a caller passes width <= 0:
// the current GOMAXPROCS setting, i.e. one worker per schedulable core.
func DefaultWidth() int { return runtime.GOMAXPROCS(0) }

// Map runs fn(i) for every i in [0, n) on up to width concurrent workers
// and returns the n results in index order. width <= 0 selects
// DefaultWidth; width 1 runs inline on the calling goroutine, which is the
// reference serial path the equivalence tests compare against.
//
// fn must be safe to call from multiple goroutines for distinct indices;
// the usual sweep shape — generate a private graph and cost model from the
// task's seed, schedule, return latencies — shares nothing between tasks.
//
// On error the pool stops handing out new indices and Map returns the
// error with the lowest index among the tasks that ran (so a failure is
// attributed to the earliest offending task, matching the serial loop
// whenever errors are deterministic). The partial results are discarded.
func Map[T any](n, width int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if width <= 0 {
		width = DefaultWidth()
	}
	if width > n {
		width = n
	}
	out := make([]T, n)
	if width == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
	)
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					mu.Lock()
					if firstIdx < 0 || i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstIdx >= 0 {
		return nil, firstErr
	}
	return out, nil
}

// ForEach is Map for tasks that produce no value: it runs fn(i) for every
// i in [0, n) on up to width workers and returns the lowest-indexed error.
func ForEach(n, width int, fn func(i int) error) error {
	_, err := Map(n, width, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
