package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapReturnsResultsInIndexOrder(t *testing.T) {
	for _, width := range []int{0, 1, 2, 7, 64} {
		out, err := Map(50, width, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if len(out) != 50 {
			t.Fatalf("width %d: %d results", width, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("width %d: out[%d] = %d, want %d", width, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("Map(0) = %v, %v", out, err)
	}
}

func TestMapMatchesSerialAccumulation(t *testing.T) {
	// The determinism contract in one assertion: merging Map's results in
	// index order reproduces the serial loop's floating-point sum exactly,
	// bit for bit, at any width.
	f := func(i int) (float64, error) { return 1.0 / float64(i+3), nil }
	want := 0.0
	for i := 0; i < 1000; i++ {
		v, _ := f(i)
		want += v
	}
	for _, width := range []int{1, 3, 16} {
		out, err := Map(1000, width, f)
		if err != nil {
			t.Fatal(err)
		}
		got := 0.0
		for _, v := range out {
			got += v
		}
		if got != want { //nolint: the whole point is exact equality
			t.Fatalf("width %d: sum %v != serial %v", width, got, want)
		}
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, width := range []int{1, 4} {
		_, err := Map(100, width, func(i int) (int, error) {
			if i == 7 || i == 60 {
				return 0, fmt.Errorf("task %d: %w", i, sentinel)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, sentinel) {
			t.Fatalf("width %d: err = %v", width, err)
		}
		// Task 7 always runs before the pool drains; with deterministic
		// per-index errors it must win attribution over task 60.
		if got := err.Error(); got != "task 7: boom" {
			t.Fatalf("width %d: error attributed to %q, want task 7", width, got)
		}
	}
}

func TestMapStopsSchedulingAfterError(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(1_000_000, 4, func(i int) (int, error) {
		ran.Add(1)
		return 0, errors.New("immediate")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n > 1000 {
		t.Fatalf("pool kept scheduling after an error: %d tasks ran", n)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(100, 0, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if err := ForEach(10, 2, func(i int) error {
		if i == 3 {
			return errors.New("x")
		}
		return nil
	}); err == nil {
		t.Fatal("ForEach swallowed the error")
	}
}

func TestMapWidthAboveTaskCount(t *testing.T) {
	out, err := Map(3, 100, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 3 {
		t.Fatalf("out = %v, err = %v", out, err)
	}
}
