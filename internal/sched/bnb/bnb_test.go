package bnb

import (
	"errors"
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/brute"
	"github.com/shus-lab/hios/internal/sched/lp"
	"github.com/shus-lab/hios/internal/sched/mr"
	"github.com/shus-lab/hios/internal/units"
)

func tiny(seed int64, ops int) (*graph.Graph, cost.Model) {
	cfg := randdag.Paper()
	cfg.Ops = ops
	cfg.Layers = 3
	cfg.Deps = ops + ops/2
	cfg.Seed = seed
	g := randdag.MustGenerate(cfg)
	return g, cost.FromGraph(g, cost.DefaultContention())
}

func TestMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		g, m := tiny(seed, 8)
		for _, gpus := range []int{1, 2, 3} {
			want, err := brute.BestPlacement(g, m, gpus)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Schedule(g, m, Options{GPUs: gpus})
			if err != nil {
				t.Fatal(err)
			}
			if diff := got.Latency - want.Latency; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("seed %d M=%d: bnb %g != brute %g", seed, gpus, got.Latency, want.Latency)
			}
			if err := sched.Validate(g, got.Schedule); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestLowerBoundsHeuristics(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cfg := randdag.Paper()
		cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 20, 4, 35, seed
		g := randdag.MustGenerate(cfg)
		m := cost.FromGraph(g, cost.DefaultContention())
		opt, err := Schedule(g, m, Options{GPUs: 2})
		if err != nil {
			t.Fatal(err)
		}
		lpRes, err := lp.Schedule(g, m, lp.Options{GPUs: 2, InterOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		mrRes, err := mr.Schedule(g, m, mr.Options{GPUs: 2, InterOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if lpRes.Latency < opt.Latency-1e-9 {
			t.Fatalf("seed %d: LP %g beat the optimum %g", seed, lpRes.Latency, opt.Latency)
		}
		if mrRes.Latency < opt.Latency-1e-9 {
			t.Fatalf("seed %d: MR %g beat the optimum %g", seed, mrRes.Latency, opt.Latency)
		}
	}
}

func TestNodeBudgetTruncation(t *testing.T) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 22, 4, 40, 3
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := Schedule(g, m, Options{GPUs: 3, MaxNodes: 200})
	if err == nil {
		t.Skip("search finished within 200 nodes; nothing to truncate")
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("unexpected error: %v", err)
	}
	if res.Schedule == nil {
		t.Fatal("truncated search returned no schedule")
	}
	if err := sched.Validate(g, res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadInput(t *testing.T) {
	g, m := tiny(1, 8)
	if _, err := Schedule(g, m, Options{GPUs: 0}); err == nil {
		t.Fatal("accepted 0 GPUs")
	}
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps = MaxOps+1, 4, MaxOps
	big := randdag.MustGenerate(cfg)
	if _, err := Schedule(big, cost.FromGraph(big, cost.DefaultContention()), Options{GPUs: 2}); err == nil {
		t.Fatal("accepted an oversized graph")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(0, 0)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := Schedule(g, m, Options{GPUs: 2})
	if err != nil || res.Latency != 0 {
		t.Fatalf("empty graph: %+v %v", res, err)
	}
}

func TestSingleGPUEqualsSequentialSum(t *testing.T) {
	g, m := tiny(4, 9)
	res, err := Schedule(g, m, Options{GPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.Latency - units.Millis(g.TotalOpTime()); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("1-GPU optimum %g != total work %g", res.Latency, g.TotalOpTime())
	}
}
