// Package bnb implements an exact branch-and-bound scheduler over the
// operator-to-GPU placement space with the paper's temporal rule
// (descending-priority order, earliest start). It optimizes the same
// subproblem HIOS-LP's and HIOS-MR's spatial mapping heuristics address,
// which makes it the reference for optimality-gap studies on mid-size
// graphs (~20-26 operators) where plain exhaustive search (package brute,
// M^n placements) is already hopeless.
//
// Pruning:
//
//   - GPU symmetry breaking: devices are homogeneous, so an operator may
//     open at most one previously idle GPU;
//   - critical-path lower bound: once operator u finishes at time f(u),
//     no schedule completes before f(u) + tail(u), where tail(u) is the
//     compute-only longest path from u to a sink (transfers and device
//     contention can only add to it);
//   - work lower bound: the remaining operator time spread perfectly over
//     all M devices, on top of the earliest device-free time.
package bnb

import (
	"fmt"
	"math"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/units"
)

// MaxOps bounds the search; beyond ~26 operators the exact tree is
// impractical even with pruning.
const MaxOps = 26

// Options configures the search.
type Options struct {
	// GPUs is M. Must be >= 1.
	GPUs int
	// MaxNodes aborts the search after expanding this many tree nodes
	// (0 = unlimited). When the limit triggers, the best schedule found
	// so far is returned along with ErrTruncated.
	MaxNodes int64
}

// ErrTruncated reports that the node budget ran out; the result is the
// best found, not proven optimal.
var ErrTruncated = fmt.Errorf("bnb: node budget exhausted, result not proven optimal")

// Validate reports whether the options are usable: at least one GPU and
// a non-negative node budget.
func (o Options) Validate() error {
	if o.GPUs < 1 {
		return fmt.Errorf("bnb: need at least 1 GPU")
	}
	if o.MaxNodes < 0 {
		return fmt.Errorf("bnb: negative node budget %d", o.MaxNodes)
	}
	return nil
}

// Schedule finds the optimal placement of g's operators onto opt.GPUs
// devices under the priority-order temporal rule.
func Schedule(g *graph.Graph, m cost.Model, opt Options) (sched.Result, error) {
	n := g.NumOps()
	if n > MaxOps {
		return sched.Result{}, fmt.Errorf("bnb: %d operators exceeds limit %d", n, MaxOps)
	}
	if err := opt.Validate(); err != nil {
		return sched.Result{}, err
	}
	if n == 0 {
		return sched.Result{Schedule: sched.New(opt.GPUs)}, nil
	}
	M := opt.GPUs

	order := g.ByPriority()
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}

	// tail[v]: compute-only longest path from v to a sink, excluding
	// t(v) itself.
	tail := make([]units.Millis, n)
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		best := units.Millis(0)
		g.Succs(v, func(to graph.OpID, _ float64) {
			if x := units.Millis(g.Time(to)) + tail[to]; x > best {
				best = x
			}
		})
		tail[v] = best
	}
	// suffixWork[i]: total operator time of order[i:].
	suffixWork := make([]units.Millis, n+1)
	for i := n - 1; i >= 0; i-- {
		suffixWork[i] = suffixWork[i+1] + units.Millis(g.Time(order[i]))
	}

	place := make([]int, n)
	finish := make([]units.Millis, n)
	avail := make([]units.Millis, M)
	bestPlace := make([]int, n)
	bestLat := units.Millis(math.Inf(1))
	var nodes int64
	truncated := false

	var rec func(i int, curMax units.Millis, used int)
	rec = func(i int, curMax units.Millis, used int) {
		if truncated {
			return
		}
		nodes++
		if opt.MaxNodes > 0 && nodes > opt.MaxNodes {
			truncated = true
			return
		}
		if i == n {
			if curMax < bestLat {
				bestLat = curMax
				copy(bestPlace, place)
			}
			return
		}
		if curMax >= bestLat {
			return
		}
		v := order[i]
		// Work bound: remaining operators need suffixWork[i] device
		// time in total; if T is the completion time, the devices offer
		// at most M*(T - minAvail) of it, so T >= minAvail + work/M.
		minAvail := avail[0]
		for _, a := range avail[1:] {
			if a < minAvail {
				minAvail = a
			}
		}
		if minAvail+suffixWork[i].Div(float64(M)) >= bestLat {
			return
		}
		limit := used + 1
		if limit > M {
			limit = M
		}
		for gi := 0; gi < limit; gi++ {
			// Earliest start of v on GPU gi.
			start := avail[gi]
			g.Preds(v, func(u graph.OpID, _ float64) {
				ready := finish[u] + cost.CommBetween(m, u, v, place[u], gi)
				if ready > start {
					start = ready
				}
			})
			f := start + m.OpTime(v)
			// Critical-path bound through v.
			if f+tail[v] >= bestLat {
				continue
			}
			nmax := curMax
			if f > nmax {
				nmax = f
			}
			place[v] = gi
			prevAvail := avail[gi]
			prevFinish := finish[v]
			avail[gi] = f
			finish[v] = f
			nused := used
			if gi == used {
				nused++
			}
			rec(i+1, nmax, nused)
			avail[gi] = prevAvail
			finish[v] = prevFinish
		}
	}
	rec(0, 0, 0)

	if math.IsInf(float64(bestLat), 1) {
		return sched.Result{}, fmt.Errorf("bnb: no schedule found (budget too small)")
	}
	s := sched.FromPlacement(M, order, bestPlace)
	lat, err := sched.Latency(g, m, s)
	if err != nil {
		return sched.Result{}, err
	}
	res := sched.Result{Schedule: s, Latency: lat}
	if truncated {
		return res, ErrTruncated
	}
	return res, nil
}
