package sched

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/units"
)

// testGraph builds a small random layered model; the same seed always
// yields the same instance.
func testGraph(seed int64, ops int) (*graph.Graph, cost.Model) {
	cfg := randdag.Paper()
	cfg.Ops = ops
	cfg.Layers = 6
	cfg.Deps = 2 * ops
	cfg.Seed = seed
	g := randdag.MustGenerate(cfg)
	return g, cost.FromGraph(g, cost.DefaultContention())
}

// roundRobin places every operator on a GPU in descending-priority
// round-robin, the simplest deadlock-free multi-GPU placement.
func roundRobin(g *graph.Graph, nGPUs int) ([]graph.OpID, []int) {
	order := g.ByPriority()
	place := make([]int, g.NumOps())
	for i, op := range order {
		place[op] = i % nGPUs
	}
	return order, place
}

// fuseCandidate materializes the schedule TrialFuse(gi, si, p) evaluates:
// stages si..si+p of GPU gi merged into one stage holding the sorted
// union of their operators. The returned members slice aliases the
// candidate's merged stage.
func fuseCandidate(cur *Schedule, gi, si, p int) (*Schedule, []graph.OpID) {
	stages := cur.GPUs[gi].Stages
	var members []graph.OpID
	for k := si; k <= si+p; k++ {
		members = append(members, stages[k].Ops...)
	}
	sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
	cand := cur.Clone()
	out := make([]Stage, 0, len(stages)-p)
	out = append(out, stages[:si]...)
	out = append(out, Stage{Ops: members})
	out = append(out, stages[si+p+1:]...)
	cand.GPUs[gi].Stages = out
	return cand, members
}

// TestIncrementalFuseMatchesFull is the fusion half of the differential
// property test: across 100 random layered graphs, every window fusion
// candidate — including invalid ones — must agree with the full
// evaluator on the materialized candidate schedule, bit for bit on the
// latency and one-to-one on error presence. Bounded trials must either
// return the exact value or correctly report the candidate cannot beat
// the bound.
func TestIncrementalFuseMatchesFull(t *testing.T) {
	var ev Evaluator
	for seed := int64(1); seed <= 100; seed++ {
		g, m := testGraph(seed, 24+int(seed%3)*8)
		nGPUs := 2 + int(seed%3)
		order, place := roundRobin(g, nGPUs)
		cur := FromPlacement(nGPUs, order, place)

		var ie IncrementalEvaluator
		baseLat, err := ie.Rebase(g, m, cur)
		if err != nil {
			t.Fatalf("seed %d: Rebase: %v", seed, err)
		}
		if full, err := ev.Latency(g, m, cur); err != nil || full != baseLat {
			t.Fatalf("seed %d: Rebase latency %v vs full %v (%v)", seed, baseLat, full, err)
		}

		rng := rand.New(rand.NewSource(seed * 7919))
		for trial := 0; trial < 20; trial++ {
			gi := rng.Intn(nGPUs)
			stages := cur.GPUs[gi].Stages
			if len(stages) < 2 {
				continue
			}
			si := rng.Intn(len(stages) - 1)
			p := 1 + rng.Intn(3)
			if si+p >= len(stages) {
				p = len(stages) - 1 - si
			}
			cand, members := fuseCandidate(cur, gi, si, p)
			fullLat, fullErr := ev.Latency(g, m, cand)
			gotLat, ok, gotErr := ie.TrialFuse(gi, si, p, members, Unbounded)
			if (fullErr != nil) != (gotErr != nil) {
				t.Fatalf("seed %d gi=%d si=%d p=%d: error mismatch: full=%v trial=%v",
					seed, gi, si, p, fullErr, gotErr)
			}
			if fullErr != nil {
				continue
			}
			if !ok || gotLat != fullLat {
				t.Fatalf("seed %d gi=%d si=%d p=%d: trial %v (ok=%v) vs full %v",
					seed, gi, si, p, gotLat, ok, fullLat)
			}
			// Bounded by the exact value: the trial must either prove the
			// candidate cannot beat the bound or return the exact value.
			if lat, ok, err := ie.TrialFuse(gi, si, p, members, fullLat); err != nil {
				t.Fatalf("seed %d: bounded trial errored: %v", seed, err)
			} else if ok && lat != fullLat {
				t.Fatalf("seed %d: bounded trial %v, want cutoff or %v", seed, lat, fullLat)
			}
		}
	}
}

// TestIncrementalInsertMatchesFull is the placement half of the
// differential property test: across 100 random layered graphs, random
// operator subsets are inserted GPU by GPU — each trial compared bit for
// bit against a full evaluation of the trial placement — and the winner
// committed, so later rounds also pin the spliced baseline of
// CommitInsert against a placement evaluated from scratch.
func TestIncrementalInsertMatchesFull(t *testing.T) {
	var ev Evaluator
	for seed := int64(1); seed <= 100; seed++ {
		g, m := testGraph(seed+500, 24+int(seed%3)*8)
		n := g.NumOps()
		nGPUs := 2 + int(seed%3)
		order := g.ByPriority()

		place := make([]int, n)
		for i := range place {
			place[i] = -1
		}
		var ie IncrementalEvaluator
		if _, err := ie.RebasePlacement(g, m, nGPUs, order, place); err != nil {
			t.Fatalf("seed %d: RebasePlacement: %v", seed, err)
		}

		rng := rand.New(rand.NewSource(seed * 6007))
		// Remaining order indices of unscheduled operators, ascending.
		remaining := make([]int, n)
		for i := range remaining {
			remaining[i] = i
		}
		for len(remaining) > 0 {
			// Random subset of the next few unscheduled operators, in
			// ascending priority position as TrialInsert requires. Runs
			// of consecutive positions exercise the inserted-run
			// chaining, gaps the substituted sequential edges.
			span := 1 + rng.Intn(6)
			if span > len(remaining) {
				span = len(remaining)
			}
			var chunk []graph.OpID
			var taken []int
			for i := 0; i < span; i++ {
				if i == 0 || rng.Intn(2) == 0 {
					chunk = append(chunk, order[remaining[i]])
					taken = append(taken, i)
				}
			}

			best := Unbounded
			bestGPU := 0
			for gi := 0; gi < nGPUs; gi++ {
				gotLat, ok := ie.TrialInsert(gi, chunk, Unbounded)
				for _, v := range chunk {
					place[v] = gi
				}
				fullLat, err := ev.LatencyFromPlacement(g, m, nGPUs, order, place)
				if err != nil {
					t.Fatalf("seed %d: full placement eval: %v", seed, err)
				}
				for _, v := range chunk {
					place[v] = -1
				}
				if !ok || gotLat != fullLat {
					t.Fatalf("seed %d gi=%d chunk=%v: trial %v (ok=%v) vs full %v",
						seed, gi, chunk, gotLat, ok, fullLat)
				}
				if blat, ok := ie.TrialInsert(gi, chunk, fullLat); ok && blat != fullLat {
					t.Fatalf("seed %d gi=%d: bounded trial %v, want cutoff or %v",
						seed, gi, blat, fullLat)
				}
				if gotLat < best {
					best, bestGPU = gotLat, gi
				}
			}

			for _, v := range chunk {
				place[v] = bestGPU
			}
			committed := ie.CommitInsert(bestGPU, chunk)
			fullLat, err := ev.LatencyFromPlacement(g, m, nGPUs, order, place)
			if err != nil {
				t.Fatalf("seed %d: full eval after commit: %v", seed, err)
			}
			if committed != fullLat {
				t.Fatalf("seed %d: CommitInsert %v vs full %v", seed, committed, fullLat)
			}
			if ie.BaseLatency() != fullLat {
				t.Fatalf("seed %d: BaseLatency %v vs full %v", seed, ie.BaseLatency(), fullLat)
			}
			for i := len(taken) - 1; i >= 0; i-- {
				remaining = append(remaining[:taken[i]], remaining[taken[i]+1:]...)
			}
		}
	}
}

// TestCommitFuseSequenceMatchesRebase drives a sliding-window-style pass
// through CommitFuse: each committed fusion's returned latency — and the
// spliced baseline the next trials run against — must match a fresh full
// evaluation of the materialized schedule. The best-of-p inner loop
// exercises both CommitFuse paths: the winning window size is sometimes
// the last trial (memo splice) and sometimes not (internal re-trial).
func TestCommitFuseSequenceMatchesRebase(t *testing.T) {
	var ev Evaluator
	for seed := int64(1); seed <= 20; seed++ {
		g, m := testGraph(seed+900, 40)
		nGPUs := 2 + int(seed%2)
		order, place := roundRobin(g, nGPUs)
		cur := FromPlacement(nGPUs, order, place)

		var ie IncrementalEvaluator
		curLat, err := ie.Rebase(g, m, cur)
		if err != nil {
			t.Fatalf("seed %d: Rebase: %v", seed, err)
		}

		commits := 0
		for gi := 0; gi < nGPUs; gi++ {
			for si := 0; si+1 < len(cur.GPUs[gi].Stages); si++ {
				bestLat := curLat
				bestP := 0
				for p := 1; p <= 3 && si+p < len(cur.GPUs[gi].Stages); p++ {
					_, members := fuseCandidate(cur, gi, si, p)
					lat, ok, err := ie.TrialFuse(gi, si, p, members, bestLat)
					if err != nil {
						break
					}
					if ok && lat < bestLat {
						bestLat, bestP = lat, p
					}
				}
				if bestP == 0 {
					continue
				}
				cand, members := fuseCandidate(cur, gi, si, bestP)
				got, err := ie.CommitFuse(gi, si, bestP, members)
				if err != nil {
					t.Fatalf("seed %d: CommitFuse(gi=%d si=%d p=%d): %v", seed, gi, si, bestP, err)
				}
				full, err := ev.Latency(g, m, cand)
				if err != nil {
					t.Fatalf("seed %d: full eval of committed schedule: %v", seed, err)
				}
				if got != full || got != bestLat {
					t.Fatalf("seed %d: CommitFuse %v, trial said %v, full %v", seed, got, bestLat, full)
				}
				cur, curLat = cand, got
				commits++
			}
		}
		if commits == 0 {
			continue // nothing improved on this instance; others commit
		}
		// The spliced baseline must still answer trials exactly.
		if lat, err := ie.Rebase(g, m, cur); err != nil || lat != curLat {
			t.Fatalf("seed %d: re-Rebase after %d commits: %v (%v), want %v",
				seed, commits, lat, err, curLat)
		}
	}
}

// TestTrialFuseLeavesBaselineIntact pins the publish-and-rollback
// contract: a trial (bounded or not, accepted or cut off) must leave the
// baseline finish times exactly as Rebase built them, so any number of
// trials can run back to back against one baseline.
func TestTrialFuseLeavesBaselineIntact(t *testing.T) {
	g, m := testGraph(4242, 32)
	nGPUs := 3
	order, place := roundRobin(g, nGPUs)
	cur := FromPlacement(nGPUs, order, place)

	var ie IncrementalEvaluator
	if _, err := ie.Rebase(g, m, cur); err != nil {
		t.Fatal(err)
	}
	before := append([]units.Millis(nil), ie.ev.finish...)

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		gi := rng.Intn(nGPUs)
		stages := cur.GPUs[gi].Stages
		si := rng.Intn(len(stages) - 1)
		p := 1
		_, members := fuseCandidate(cur, gi, si, p)
		bound := Unbounded
		if trial%2 == 1 {
			bound = ie.BaseLatency() * units.Millis(0.5+rng.Float64())
		}
		ie.TrialFuse(gi, si, p, members, bound)
		for i, f := range ie.ev.finish {
			if f != before[i] {
				t.Fatalf("trial %d (gi=%d si=%d bound=%v): baseline finish[%d] drifted: %v != %v",
					trial, gi, si, bound, i, f, before[i])
			}
		}
	}
}
