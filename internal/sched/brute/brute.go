// Package brute provides exhaustive-search reference schedulers for tiny
// graphs. They exist to validate the HIOS heuristics in tests and to
// quantify optimality gaps in the experiment harness; they are exponential
// and refuse graphs beyond a small size.
package brute

import (
	"fmt"
	"math"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/units"
)

// MaxOps bounds the exhaustive searches: M^MaxOps placements.
const MaxOps = 12

// BestPlacement exhaustively tries every operator-to-GPU assignment,
// placing operators temporally in descending-priority order at their
// earliest start times (the same temporal rule HIOS-LP and HIOS-MR use),
// and returns the best schedule found. This is the optimum of the
// inter-GPU mapping subproblem under the paper's temporal rule, and hence
// a lower bound no inter-GPU heuristic with that rule can beat.
func BestPlacement(g *graph.Graph, m cost.Model, gpus int) (sched.Result, error) {
	n := g.NumOps()
	if n > MaxOps {
		return sched.Result{}, fmt.Errorf("brute: %d operators exceeds limit %d", n, MaxOps)
	}
	if gpus < 1 {
		return sched.Result{}, fmt.Errorf("brute: need at least 1 GPU")
	}
	order := g.ByPriority()
	place := make([]int, n)
	best := sched.Result{Latency: units.Millis(math.Inf(1))}
	var rec func(i int) error
	rec = func(i int) error {
		if i == n {
			s := sched.FromPlacement(gpus, order, place)
			lat, err := sched.Latency(g, m, s)
			if err != nil {
				return err
			}
			if lat < best.Latency {
				best = sched.Result{Schedule: s, Latency: lat}
			}
			return nil
		}
		for gi := 0; gi < gpus; gi++ {
			place[i] = gi
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return sched.Result{}, err
	}
	return best, nil
}
