package brute

import (
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
)

func TestRefusesLargeGraphs(t *testing.T) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps = MaxOps+1, 3, MaxOps
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())
	if _, err := BestPlacement(g, m, 2); err == nil {
		t.Fatal("accepted a graph beyond MaxOps")
	}
	if _, err := BestPlacement(g, m, 0); err == nil {
		t.Fatal("accepted zero GPUs")
	}
}

func TestFindsObviousSplit(t *testing.T) {
	// Two independent heavy ops: the optimum on 2 GPUs is to split.
	g := graph.New(2, 0)
	g.AddOp(graph.Op{Time: 5, Util: 1})
	g.AddOp(graph.Op{Time: 5, Util: 1})
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := BestPlacement(g, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 5 {
		t.Fatalf("latency = %g, want 5", res.Latency)
	}
	if res.Schedule.UsedGPUs() != 2 {
		t.Fatalf("optimum should use both GPUs: %v", res.Schedule)
	}
}

func TestKeepsChainTogetherUnderHeavyComm(t *testing.T) {
	g := graph.New(3, 2)
	a := g.AddOp(graph.Op{Time: 1})
	b := g.AddOp(graph.Op{Time: 1})
	c := g.AddOp(graph.Op{Time: 1})
	g.AddEdge(a, b, 100)
	g.AddEdge(b, c, 100)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := BestPlacement(g, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 3 || res.Schedule.UsedGPUs() != 1 {
		t.Fatalf("optimum should serialize the chain on one GPU: %g %v", res.Latency, res.Schedule)
	}
}

func TestResultIsValidAndConsistent(t *testing.T) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 8, 3, 10, 5
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := BestPlacement(g, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := sched.Latency(g, m, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if lat != res.Latency {
		t.Fatalf("reported %g != evaluated %g", res.Latency, lat)
	}
}
