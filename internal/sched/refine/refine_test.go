package refine

import (
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/lp"
)

func instance(seed int64) (*graph.Graph, cost.Model) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 50, 6, 100, seed
	g := randdag.MustGenerate(cfg)
	return g, cost.FromGraph(g, cost.DefaultContention())
}

func TestImprovesBadPlacement(t *testing.T) {
	g, m := instance(1)
	// Deliberately terrible placement: everything on GPU 0 of 3.
	place := make([]int, g.NumOps())
	s := sched.FromPlacement(3, g.ByPriority(), place)
	before, err := sched.Latency(g, m, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Improve(g, m, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency >= before {
		t.Fatalf("local search failed to improve an all-on-one placement: %g -> %g", before, res.Latency)
	}
	if res.Moves == 0 {
		t.Fatal("no moves recorded despite improvement")
	}
	if err := sched.Validate(g, res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestNeverWorseThanInput(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g, m := instance(seed)
		full, err := lp.Schedule(g, m, lp.Options{GPUs: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Improve(g, m, full.Schedule, Options{Window: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Latency > full.Latency+1e-9 {
			t.Fatalf("seed %d: refine made HIOS-LP worse: %g -> %g", seed, full.Latency, res.Latency)
		}
	}
}

func TestRefinesInterLP(t *testing.T) {
	// On inter-GPU-only LP schedules the search should find at least
	// occasional improvements across seeds.
	improvedAny := false
	for seed := int64(1); seed <= 6; seed++ {
		g, m := instance(seed)
		inter, err := lp.Schedule(g, m, lp.Options{GPUs: 3, InterOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Improve(g, m, inter.Schedule, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Latency < inter.Latency-1e-9 {
			improvedAny = true
		}
		if res.Latency > inter.Latency+1e-9 {
			t.Fatalf("seed %d: worse than input: %g -> %g", seed, inter.Latency, res.Latency)
		}
	}
	if !improvedAny {
		t.Fatal("local search never improved any inter-GPU LP schedule")
	}
}

func TestMoveBudgetRespected(t *testing.T) {
	g, m := instance(3)
	place := make([]int, g.NumOps())
	s := sched.FromPlacement(4, g.ByPriority(), place)
	res, err := Improve(g, m, s, Options{MaxMoves: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves > 5 {
		t.Fatalf("moves = %d, budget 5", res.Moves)
	}
}

func TestSingleGPUIsIdentity(t *testing.T) {
	g, m := instance(4)
	s := sched.Sequential(g.ByPriority())
	res, err := Improve(g, m, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 {
		t.Fatal("single-GPU schedule cannot admit moves")
	}
	want, _ := sched.Latency(g, m, s)
	if res.Latency != want {
		t.Fatalf("latency changed: %g vs %g", res.Latency, want)
	}
}

func TestRejectsIncomplete(t *testing.T) {
	g, m := instance(5)
	s := sched.New(2)
	s.Append(0, 0)
	if _, err := Improve(g, m, s, Options{}); err == nil {
		t.Fatal("accepted an incomplete schedule")
	}
}
