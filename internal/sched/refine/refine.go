// Package refine implements a local-search post-pass over operator
// placements: an extension beyond the paper. Starting from any complete
// schedule (typically HIOS-LP's), it repeatedly tries moving a single
// operator to a different GPU — re-placing everything temporally with the
// same descending-priority rule — and commits moves that reduce latency,
// until a full sweep finds no improvement or the move budget runs out.
//
// The pass quantifies how much latency the one-shot heuristics leave on
// the table (see the optimality-gap study), and doubles as a repair tool
// for externally supplied placements. Like Algorithm 2 it is monotone:
// the result is never worse than the input.
package refine

import (
	"fmt"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/window"
)

// Options configures the local search.
type Options struct {
	// MaxMoves bounds the number of committed moves (0 = 4·|V|).
	MaxMoves int
	// Window, when positive, re-runs the Algorithm 2 sliding-window
	// pass after the placement search with the given window size.
	Window int
}

// Validate reports whether the options are usable: non-negative move
// budget and window (zero selects the defaults).
func (o Options) Validate() error {
	if o.MaxMoves < 0 {
		return fmt.Errorf("refine: negative move budget %d", o.MaxMoves)
	}
	if o.Window < 0 {
		return fmt.Errorf("refine: negative window %d", o.Window)
	}
	return nil
}

// Result extends sched.Result with search statistics.
type Result struct {
	sched.Result
	// Moves is the number of committed operator relocations.
	Moves int
	// Sweeps is the number of full passes over the operators.
	Sweeps int
}

// Improve runs the local search on schedule s of graph g. The input
// schedule must be complete; it is not modified. Grouped stages in the
// input are dissolved back to singletons for the placement search (the
// optional Window pass rebuilds groups afterwards).
func Improve(g *graph.Graph, m cost.Model, s *sched.Schedule, opt Options) (Result, error) {
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	if err := sched.Validate(g, s); err != nil {
		return Result{}, fmt.Errorf("refine: %w", err)
	}
	n := g.NumOps()
	gpus := s.NumGPUs()
	if gpus < 2 || n == 0 {
		lat, err := sched.Latency(g, m, s)
		if err != nil {
			return Result{}, err
		}
		return Result{Result: sched.Result{Schedule: s.Clone(), Latency: lat}}, nil
	}
	maxMoves := opt.MaxMoves
	if maxMoves <= 0 {
		maxMoves = 4 * n
	}

	order := g.ByPriority()
	place := s.Placement(n)
	cur := sched.FromPlacement(gpus, order, place)
	curLat, err := sched.Latency(g, m, cur)
	if err != nil {
		return Result{}, err
	}

	res := Result{}
	improved := true
	for improved && res.Moves < maxMoves {
		improved = false
		res.Sweeps++
		for _, v := range order {
			if res.Moves >= maxMoves {
				break
			}
			home := place[v]
			bestLat := curLat
			bestGPU := home
			for gi := 0; gi < gpus; gi++ {
				if gi == home {
					continue
				}
				place[v] = gi
				cand := sched.FromPlacement(gpus, order, place)
				lat, err := sched.Latency(g, m, cand)
				if err != nil {
					return Result{}, err
				}
				if lat < bestLat {
					bestLat, bestGPU = lat, gi
				}
			}
			place[v] = bestGPU
			if bestGPU != home {
				curLat = bestLat
				res.Moves++
				improved = true
			}
		}
	}

	final := sched.FromPlacement(gpus, order, place)
	lat, err := sched.Latency(g, m, final)
	if err != nil {
		return Result{}, err
	}
	res.Result = sched.Result{Schedule: final, Latency: lat}
	if opt.Window > 1 {
		wres, err := window.Parallelize(g, m, final, opt.Window)
		if err != nil {
			return Result{}, err
		}
		res.Result = wres
	}
	// Monotonicity guard: dissolving the input's concurrent stages for
	// the placement search can cost more than the search recovers; never
	// return something worse than the input.
	inputLat, err := sched.Latency(g, m, s)
	if err != nil {
		return Result{}, err
	}
	if inputLat < res.Latency {
		res.Result = sched.Result{Schedule: s.Clone(), Latency: inputLat}
		res.Moves = 0
	}
	return res, nil
}
