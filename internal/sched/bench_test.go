package sched

import (
	"math/rand"
	"testing"

	"github.com/shus-lab/hios/internal/cost"
)

func BenchmarkEvaluate200Ops4GPUs(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomLayered(rng, 200, 400)
	m := cost.FromGraph(g, cost.DefaultContention())
	place := make([]int, 200)
	for i := range place {
		place[i] = rng.Intn(4)
	}
	s := FromPlacement(4, g.ByPriority(), place)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(g, m, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidate200Ops(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomLayered(rng, 200, 400)
	s := Sequential(g.ByPriority())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Validate(g, s); err != nil {
			b.Fatal(err)
		}
	}
}
