package sched

import (
	"fmt"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
)

// Timing is the evaluated timeline of a schedule: the earliest start and
// finish time of every stage (and so of every operator) consistent with the
// precedence constraint of §III-B, plus the resulting end-to-end latency.
type Timing struct {
	// Latency is the makespan: the maximum stage finish time.
	Latency float64
	// StageStart[g][j] / StageFinish[g][j] bound stage j on GPU g.
	StageStart  [][]float64
	StageFinish [][]float64
	// OpStart / OpFinish are per-operator views (members of a stage
	// share its start; each finishes with its stage, matching the
	// paper's model where t(S) is measured for the set as a whole).
	OpStart  []float64
	OpFinish []float64
	// GPUOf maps each operator to its GPU.
	GPUOf []int
}

// Evaluate computes the timing of schedule s for graph g under cost model
// m. It returns an error if the schedule is invalid: an operator is
// missing, duplicated or unknown; a stage contains directly dependent
// operators; or the stage graph (data edges plus per-GPU sequential order)
// contains a cycle, i.e. the schedule would deadlock.
//
// Timing rules (paper §III-A "Stage" and "Operator Synchronization"):
//
//	start(S_{i,j})  >= finish(S_{i,j-1})                      (same GPU)
//	start(S_{i',j'}) >= finish(S_{i,j}) + t(u,v)  for each edge (u,v),
//	                   u in S_{i,j}, v in S_{i',j'}, i != i'  (cross GPU)
//	start(S_{i,j'}) >= finish(S_{i,j})            for edges inside GPU i
//	finish(S) = start(S) + t(S)
//
// All operators of a stage start simultaneously; the stage's duration is
// the cost model's t(S).
func Evaluate(g *graph.Graph, m cost.Model, s *Schedule) (*Timing, error) {
	if err := Validate(g, s); err != nil {
		return nil, err
	}
	return evaluate(g, m, s)
}

// EvaluatePartial is Evaluate for schedules covering only a subset of the
// graph's operators, as arise during HIOS-LP's incremental trial mappings.
// Dependencies touching an unscheduled operator are ignored; scheduled
// operators must still appear exactly once.
func EvaluatePartial(g *graph.Graph, m cost.Model, s *Schedule) (*Timing, error) {
	if err := ValidatePartial(g, s); err != nil {
		return nil, err
	}
	return evaluate(g, m, s)
}

func evaluate(g *graph.Graph, m cost.Model, s *Schedule) (*Timing, error) {
	n := g.NumOps()

	// Index stages.
	type stageRef struct{ gpu, idx int }
	var stages []stageRef
	stageID := make([][]int, len(s.GPUs)) // gpu -> stage idx -> node id
	opStage := make([]int, n)             // op -> node id, -1 if unscheduled
	for i := range opStage {
		opStage[i] = -1
	}
	for gi := range s.GPUs {
		stageID[gi] = make([]int, len(s.GPUs[gi].Stages))
		for j := range s.GPUs[gi].Stages {
			id := len(stages)
			stages = append(stages, stageRef{gpu: gi, idx: j})
			stageID[gi][j] = id
			for _, op := range s.GPUs[gi].Stages[j].Ops {
				opStage[op] = id
			}
		}
	}
	ns := len(stages)

	// Build the stage dependency graph. dep[to] = list of (from, lag):
	// start(to) >= finish(from) + lag.
	type depEdge struct {
		from int
		lag  float64
	}
	deps := make([][]depEdge, ns)
	indeg := make([]int, ns)
	succ := make([][]int, ns)
	addDep := func(from, to int, lag float64) {
		deps[to] = append(deps[to], depEdge{from: from, lag: lag})
		succ[from] = append(succ[from], to)
		indeg[to]++
	}
	// Sequential order within each GPU.
	for gi := range s.GPUs {
		for j := 1; j < len(s.GPUs[gi].Stages); j++ {
			addDep(stageID[gi][j-1], stageID[gi][j], 0)
		}
	}
	// Data dependencies.
	place := s.Placement(n)
	for _, e := range g.Edges() {
		su, sv := opStage[e.From], opStage[e.To]
		if su < 0 || sv < 0 {
			continue // endpoint unscheduled: partial evaluation
		}
		if su == sv {
			return nil, fmt.Errorf("sched: operators %d and %d share a stage but have a direct dependency", e.From, e.To)
		}
		lag := cost.CommBetween(m, e.From, e.To, place[e.From], place[e.To])
		addDep(su, sv, lag)
	}

	// Longest-path over the stage DAG (Kahn order); a leftover node
	// means a cycle (deadlock: mutually waiting stages, the "implicit
	// dependency" loop Algorithm 2 must detect).
	start := make([]float64, ns)
	finish := make([]float64, ns)
	dur := make([]float64, ns)
	for id, ref := range stages {
		dur[id] = m.StageTime(s.GPUs[ref.gpu].Stages[ref.idx].Ops)
	}
	var ready []int
	for id := 0; id < ns; id++ {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	visited := 0
	for len(ready) > 0 {
		id := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		visited++
		t := 0.0
		for _, d := range deps[id] {
			if x := finish[d.from] + d.lag; x > t {
				t = x
			}
		}
		start[id] = t
		finish[id] = t + dur[id]
		for _, w := range succ[id] {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	if visited != ns {
		return nil, fmt.Errorf("sched: stage graph has a cycle (%d of %d stages schedulable): %w", visited, ns, graph.ErrCycle)
	}

	tm := &Timing{
		StageStart:  make([][]float64, len(s.GPUs)),
		StageFinish: make([][]float64, len(s.GPUs)),
		OpStart:     make([]float64, n),
		OpFinish:    make([]float64, n),
		GPUOf:       place,
	}
	for gi := range s.GPUs {
		tm.StageStart[gi] = make([]float64, len(s.GPUs[gi].Stages))
		tm.StageFinish[gi] = make([]float64, len(s.GPUs[gi].Stages))
		for j := range s.GPUs[gi].Stages {
			id := stageID[gi][j]
			tm.StageStart[gi][j] = start[id]
			tm.StageFinish[gi][j] = finish[id]
			if finish[id] > tm.Latency {
				tm.Latency = finish[id]
			}
			for _, op := range s.GPUs[gi].Stages[j].Ops {
				tm.OpStart[op] = start[id]
				tm.OpFinish[op] = finish[id]
			}
		}
	}
	return tm, nil
}

// Latency evaluates the schedule and returns only the makespan.
func Latency(g *graph.Graph, m cost.Model, s *Schedule) (float64, error) {
	tm, err := Evaluate(g, m, s)
	if err != nil {
		return 0, err
	}
	return tm.Latency, nil
}

// LatencyPartial evaluates a partial schedule and returns its makespan.
func LatencyPartial(g *graph.Graph, m cost.Model, s *Schedule) (float64, error) {
	tm, err := EvaluatePartial(g, m, s)
	if err != nil {
		return 0, err
	}
	return tm.Latency, nil
}

// Validate checks the structural invariants of a schedule against its
// graph: every operator scheduled exactly once, no unknown IDs, and no
// empty stages. Dependency violations (intra-stage edges, cyclic stage
// graphs) are detected by Evaluate.
func Validate(g *graph.Graph, s *Schedule) error {
	count, err := validateStages(g, s)
	if err != nil {
		return err
	}
	if n := g.NumOps(); count != n {
		return fmt.Errorf("sched: %d of %d operators scheduled", count, n)
	}
	return nil
}

// ValidatePartial is Validate without the completeness requirement: a
// schedule may cover any subset of the operators, each at most once.
func ValidatePartial(g *graph.Graph, s *Schedule) error {
	_, err := validateStages(g, s)
	return err
}

func validateStages(g *graph.Graph, s *Schedule) (int, error) {
	n := g.NumOps()
	seen := make([]bool, n)
	count := 0
	for gi, q := range s.GPUs {
		for j, st := range q.Stages {
			if len(st.Ops) == 0 {
				return 0, fmt.Errorf("sched: GPU %d stage %d is empty", gi, j)
			}
			for _, op := range st.Ops {
				if op < 0 || int(op) >= n {
					return 0, fmt.Errorf("sched: GPU %d stage %d references unknown operator %d", gi, j, op)
				}
				if seen[op] {
					return 0, fmt.Errorf("sched: operator %d scheduled more than once", op)
				}
				seen[op] = true
				count++
			}
		}
	}
	return count, nil
}

// Result pairs a schedule with its evaluated latency; every scheduling
// algorithm in this repository returns one.
type Result struct {
	Schedule *Schedule
	Latency  float64
}
