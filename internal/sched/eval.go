package sched

import (
	"fmt"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/units"
)

// Timing is the evaluated timeline of a schedule: the earliest start and
// finish time of every stage (and so of every operator) consistent with the
// precedence constraint of §III-B, plus the resulting end-to-end latency.
type Timing struct {
	// Latency is the makespan: the maximum stage finish time.
	Latency units.Millis
	// StageStart[g][j] / StageFinish[g][j] bound stage j on GPU g.
	StageStart  [][]units.Millis
	StageFinish [][]units.Millis
	// OpStart / OpFinish are per-operator views (members of a stage
	// share its start; each finishes with its stage, matching the
	// paper's model where t(S) is measured for the set as a whole).
	OpStart  []units.Millis
	OpFinish []units.Millis
	// GPUOf maps each operator to its GPU.
	GPUOf []int
}

// Evaluate computes the timing of schedule s for graph g under cost model
// m. It returns an error if the schedule is invalid: an operator is
// missing, duplicated or unknown; a stage contains directly dependent
// operators; or the stage graph (data edges plus per-GPU sequential order)
// contains a cycle, i.e. the schedule would deadlock.
//
// Timing rules (paper §III-A "Stage" and "Operator Synchronization"):
//
//	start(S_{i,j})  >= finish(S_{i,j-1})                      (same GPU)
//	start(S_{i',j'}) >= finish(S_{i,j}) + t(u,v)  for each edge (u,v),
//	                   u in S_{i,j}, v in S_{i',j'}, i != i'  (cross GPU)
//	start(S_{i,j'}) >= finish(S_{i,j})            for edges inside GPU i
//	finish(S) = start(S) + t(S)
//
// All operators of a stage start simultaneously; the stage's duration is
// the cost model's t(S).
func Evaluate(g *graph.Graph, m cost.Model, s *Schedule) (*Timing, error) {
	var e Evaluator
	if err := e.validate(g, s, false); err != nil {
		return nil, err
	}
	return e.timing(g, m, s)
}

// EvaluatePartial is Evaluate for schedules covering only a subset of the
// graph's operators, as arise during HIOS-LP's incremental trial mappings.
// Dependencies touching an unscheduled operator are ignored; scheduled
// operators must still appear exactly once.
func EvaluatePartial(g *graph.Graph, m cost.Model, s *Schedule) (*Timing, error) {
	var e Evaluator
	if err := e.validate(g, s, true); err != nil {
		return nil, err
	}
	return e.timing(g, m, s)
}

// Latency evaluates the schedule and returns only the makespan.
func Latency(g *graph.Graph, m cost.Model, s *Schedule) (units.Millis, error) {
	var e Evaluator
	return e.Latency(g, m, s)
}

// LatencyPartial evaluates a partial schedule and returns its makespan.
func LatencyPartial(g *graph.Graph, m cost.Model, s *Schedule) (units.Millis, error) {
	var e Evaluator
	return e.LatencyPartial(g, m, s)
}

// depEdge is one precedence constraint between stages:
// start(to) >= finish(from) + lag.
type depEdge struct {
	from int
	lag  units.Millis
}

// Evaluator computes schedule timings with reusable scratch buffers. The
// zero value is ready to use. Algorithm 2's sliding window and HIOS-LP's
// trial mappings evaluate thousands of candidate schedules over the same
// graph; holding one Evaluator across those calls removes every per-call
// allocation except the returned Timing (and Latency returns none at all).
//
// An Evaluator is NOT safe for concurrent use; give each goroutine its
// own. Package-level Evaluate/Latency remain the convenient one-shot form.
type Evaluator struct {
	seen    []bool
	opStage []int
	place   []int
	indeg   []int
	ready   []int
	deps    [][]depEdge
	succ    [][]int
	start   []units.Millis
	finish  []units.Millis
	dur     []units.Millis
}

// Latency computes the makespan of a complete schedule, reusing the
// evaluator's scratch buffers.
func (e *Evaluator) Latency(g *graph.Graph, m cost.Model, s *Schedule) (units.Millis, error) {
	if err := e.validate(g, s, false); err != nil {
		return 0, err
	}
	return e.compute(g, m, s)
}

// LatencyPartial computes the makespan of a partial schedule, reusing the
// evaluator's scratch buffers.
func (e *Evaluator) LatencyPartial(g *graph.Graph, m cost.Model, s *Schedule) (units.Millis, error) {
	if err := e.validate(g, s, true); err != nil {
		return 0, err
	}
	return e.compute(g, m, s)
}

// validate checks the structural invariants of s against g using scratch
// storage; partial permits schedules covering a subset of the operators.
func (e *Evaluator) validate(g *graph.Graph, s *Schedule, partial bool) error {
	n := g.NumOps()
	e.seen = growSlice(e.seen, n)
	for i := range e.seen {
		e.seen[i] = false
	}
	count := 0
	for gi, q := range s.GPUs {
		for j, st := range q.Stages {
			if len(st.Ops) == 0 {
				return fmt.Errorf("sched: GPU %d stage %d is empty", gi, j)
			}
			for _, op := range st.Ops {
				if op < 0 || int(op) >= n {
					return fmt.Errorf("sched: GPU %d stage %d references unknown operator %d", gi, j, op)
				}
				if e.seen[op] {
					return fmt.Errorf("sched: operator %d scheduled more than once", op)
				}
				e.seen[op] = true
				count++
			}
		}
	}
	if !partial && count != n {
		return fmt.Errorf("sched: %d of %d operators scheduled", count, n)
	}
	return nil
}

// compute runs the longest-path evaluation and returns the makespan. The
// schedule must already be validated. After compute returns, e.start,
// e.finish and the stage numbering (sequential over GPUs, then stages)
// hold the full timeline, which timing() copies out.
func (e *Evaluator) compute(g *graph.Graph, m cost.Model, s *Schedule) (units.Millis, error) {
	n := g.NumOps()
	ns := 0
	for gi := range s.GPUs {
		ns += len(s.GPUs[gi].Stages)
	}

	// Index stages: ids are assigned GPU-major, stage-minor, so id order
	// is reproducible from the schedule alone.
	e.opStage = growSlice(e.opStage, n)
	e.place = growSlice(e.place, n)
	for i := 0; i < n; i++ {
		e.opStage[i] = -1
		e.place[i] = -1
	}
	e.dur = growSlice(e.dur, ns)
	e.indeg = growSlice(e.indeg, ns)
	e.deps = growNested(e.deps, ns)
	e.succ = growNested(e.succ, ns)
	id := 0
	for gi := range s.GPUs {
		for j := range s.GPUs[gi].Stages {
			ops := s.GPUs[gi].Stages[j].Ops
			for _, op := range ops {
				e.opStage[op] = id
				e.place[op] = gi
			}
			e.dur[id] = m.StageTime(ops)
			e.indeg[id] = 0
			e.deps[id] = e.deps[id][:0]
			e.succ[id] = e.succ[id][:0]
			id++
		}
	}

	addDep := func(from, to int, lag units.Millis) {
		e.deps[to] = append(e.deps[to], depEdge{from: from, lag: lag})
		e.succ[from] = append(e.succ[from], to)
		e.indeg[to]++
	}
	// Sequential order within each GPU (consecutive stage ids).
	id = 0
	for gi := range s.GPUs {
		for j := range s.GPUs[gi].Stages {
			if j > 0 {
				addDep(id-1, id, 0)
			}
			id++
		}
	}
	// Data dependencies.
	for _, ed := range g.Edges() {
		su, sv := e.opStage[ed.From], e.opStage[ed.To]
		if su < 0 || sv < 0 {
			continue // endpoint unscheduled: partial evaluation
		}
		if su == sv {
			return 0, fmt.Errorf("sched: operators %d and %d share a stage but have a direct dependency", ed.From, ed.To)
		}
		lag := cost.CommBetween(m, ed.From, ed.To, e.place[ed.From], e.place[ed.To])
		addDep(su, sv, lag)
	}

	// Longest-path over the stage DAG (Kahn order); a leftover node
	// means a cycle (deadlock: mutually waiting stages, the "implicit
	// dependency" loop Algorithm 2 must detect).
	e.start = growSlice(e.start, ns)
	e.finish = growSlice(e.finish, ns)
	e.ready = e.ready[:0]
	for id := 0; id < ns; id++ {
		if e.indeg[id] == 0 {
			e.ready = append(e.ready, id)
		}
	}
	visited := 0
	latency := units.Millis(0)
	for len(e.ready) > 0 {
		id := e.ready[len(e.ready)-1]
		e.ready = e.ready[:len(e.ready)-1]
		visited++
		t := units.Millis(0)
		for _, d := range e.deps[id] {
			if x := e.finish[d.from] + d.lag; x > t {
				t = x
			}
		}
		e.start[id] = t
		e.finish[id] = t + e.dur[id]
		if e.finish[id] > latency {
			latency = e.finish[id]
		}
		for _, w := range e.succ[id] {
			e.indeg[w]--
			if e.indeg[w] == 0 {
				e.ready = append(e.ready, w)
			}
		}
	}
	if visited != ns {
		return 0, fmt.Errorf("sched: stage graph has a cycle (%d of %d stages schedulable): %w", visited, ns, graph.ErrCycle)
	}
	return latency, nil
}

// timing runs compute and copies the timeline into a fresh Timing.
func (e *Evaluator) timing(g *graph.Graph, m cost.Model, s *Schedule) (*Timing, error) {
	lat, err := e.compute(g, m, s)
	if err != nil {
		return nil, err
	}
	n := g.NumOps()
	tm := &Timing{
		Latency:     lat,
		StageStart:  make([][]units.Millis, len(s.GPUs)),
		StageFinish: make([][]units.Millis, len(s.GPUs)),
		OpStart:     make([]units.Millis, n),
		OpFinish:    make([]units.Millis, n),
		GPUOf:       make([]int, n),
	}
	copy(tm.GPUOf, e.place[:n])
	id := 0
	for gi := range s.GPUs {
		tm.StageStart[gi] = make([]units.Millis, len(s.GPUs[gi].Stages))
		tm.StageFinish[gi] = make([]units.Millis, len(s.GPUs[gi].Stages))
		for j := range s.GPUs[gi].Stages {
			tm.StageStart[gi][j] = e.start[id]
			tm.StageFinish[gi][j] = e.finish[id]
			for _, op := range s.GPUs[gi].Stages[j].Ops {
				tm.OpStart[op] = e.start[id]
				tm.OpFinish[op] = e.finish[id]
			}
			id++
		}
	}
	return tm, nil
}

// growSlice returns buf resized to n, reusing its backing array when
// large enough. Contents are unspecified.
func growSlice[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// growNested resizes a slice of slices to n entries, keeping the inner
// backing arrays of reused entries. New entries start nil.
func growNested[T any](buf [][]T, n int) [][]T {
	if cap(buf) < n {
		next := make([][]T, n)
		copy(next, buf)
		return next
	}
	return buf[:n]
}

// Validate checks the structural invariants of a schedule against its
// graph: every operator scheduled exactly once, no unknown IDs, and no
// empty stages. Dependency violations (intra-stage edges, cyclic stage
// graphs) are detected by Evaluate.
func Validate(g *graph.Graph, s *Schedule) error {
	var e Evaluator
	return e.validate(g, s, false)
}

// ValidatePartial is Validate without the completeness requirement: a
// schedule may cover any subset of the operators, each at most once.
func ValidatePartial(g *graph.Graph, s *Schedule) error {
	var e Evaluator
	return e.validate(g, s, true)
}

// Result pairs a schedule with its evaluated latency; every scheduling
// algorithm in this repository returns one.
type Result struct {
	Schedule *Schedule
	Latency  units.Millis
}
