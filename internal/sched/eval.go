package sched

import (
	"fmt"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/units"
)

// Timing is the evaluated timeline of a schedule: the earliest start and
// finish time of every stage (and so of every operator) consistent with the
// precedence constraint of §III-B, plus the resulting end-to-end latency.
type Timing struct {
	// Latency is the makespan: the maximum stage finish time.
	Latency units.Millis
	// StageStart[g][j] / StageFinish[g][j] bound stage j on GPU g.
	StageStart  [][]units.Millis
	StageFinish [][]units.Millis
	// OpStart / OpFinish are per-operator views (members of a stage
	// share its start; each finishes with its stage, matching the
	// paper's model where t(S) is measured for the set as a whole).
	OpStart  []units.Millis
	OpFinish []units.Millis
	// GPUOf maps each operator to its GPU.
	GPUOf []int
}

// Evaluate computes the timing of schedule s for graph g under cost model
// m. It returns an error if the schedule is invalid: an operator is
// missing, duplicated or unknown; a stage contains directly dependent
// operators; or the stage graph (data edges plus per-GPU sequential order)
// contains a cycle, i.e. the schedule would deadlock.
//
// Timing rules (paper §III-A "Stage" and "Operator Synchronization"):
//
//	start(S_{i,j})  >= finish(S_{i,j-1})                      (same GPU)
//	start(S_{i',j'}) >= finish(S_{i,j}) + t(u,v)  for each edge (u,v),
//	                   u in S_{i,j}, v in S_{i',j'}, i != i'  (cross GPU)
//	start(S_{i,j'}) >= finish(S_{i,j})            for edges inside GPU i
//	finish(S) = start(S) + t(S)
//
// All operators of a stage start simultaneously; the stage's duration is
// the cost model's t(S).
func Evaluate(g *graph.Graph, m cost.Model, s *Schedule) (*Timing, error) {
	var e Evaluator
	if err := e.validate(g, s, false); err != nil {
		return nil, err
	}
	return e.timing(g, m, s)
}

// EvaluatePartial is Evaluate for schedules covering only a subset of the
// graph's operators, as arise during HIOS-LP's incremental trial mappings.
// Dependencies touching an unscheduled operator are ignored; scheduled
// operators must still appear exactly once.
func EvaluatePartial(g *graph.Graph, m cost.Model, s *Schedule) (*Timing, error) {
	var e Evaluator
	if err := e.validate(g, s, true); err != nil {
		return nil, err
	}
	return e.timing(g, m, s)
}

// Latency evaluates the schedule and returns only the makespan.
func Latency(g *graph.Graph, m cost.Model, s *Schedule) (units.Millis, error) {
	var e Evaluator
	return e.Latency(g, m, s)
}

// LatencyPartial evaluates a partial schedule and returns its makespan.
func LatencyPartial(g *graph.Graph, m cost.Model, s *Schedule) (units.Millis, error) {
	var e Evaluator
	return e.LatencyPartial(g, m, s)
}

// Evaluator computes schedule timings with reusable scratch buffers. The
// zero value is ready to use. Algorithm 2's sliding window and HIOS-LP's
// trial mappings evaluate thousands of candidate schedules over the same
// graph; holding one Evaluator across those calls removes every per-call
// allocation except the returned Timing (and Latency returns none at all).
//
// The stage DAG lives in compressed (CSR) form: a counting pass sizes the
// flat dependency and successor arrays, a fill pass populates them, and
// the longest-path sweep indexes them by offset. The former
// slice-of-slices adjacency cost two allocations per stage on a cold
// evaluator — the dominant allocation source of every scheduler.
//
// An Evaluator is NOT safe for concurrent use; give each goroutine its
// own. Package-level Evaluate/Latency remain the convenient one-shot form.
type Evaluator struct {
	seen    []bool
	opStage []int
	place   []int
	seqPrev []int // stage id of the same-GPU predecessor stage, -1 for a GPU's first
	indeg   []int
	nsucc   []int
	ready   []int
	depOff  []int // deps of stage id: depFrom/depLag[depOff[id]:depOff[id+1]]
	depFrom []int
	depLag  []units.Millis
	succOff []int // successors of stage id: succTo[succOff[id]:succOff[id+1]]
	succTo  []int
	depCur  []int // fill cursors
	succCur []int
	start   []units.Millis
	finish  []units.Millis
	dur     []units.Millis
	topoSeq []int32      // stage ids in the order the Kahn sweep finished them
	topoPos []int32      // stage id -> index in topoSeq
	one     []graph.OpID // singleton-stage scratch for LatencyFromPlacement
}

// Latency computes the makespan of a complete schedule, reusing the
// evaluator's scratch buffers.
func (e *Evaluator) Latency(g *graph.Graph, m cost.Model, s *Schedule) (units.Millis, error) {
	if err := e.validate(g, s, false); err != nil {
		return 0, err
	}
	return e.compute(g, m, s)
}

// LatencyPartial computes the makespan of a partial schedule, reusing the
// evaluator's scratch buffers.
//
// Root annotation: the window search moved to IncrementalEvaluator, so the
// only static in-module caller left is the cold convenience wrapper —
// partial evaluation stays hot for external callers and benchmarks.
//
//lint:hotpath
func (e *Evaluator) LatencyPartial(g *graph.Graph, m cost.Model, s *Schedule) (units.Millis, error) {
	if err := e.validate(g, s, true); err != nil {
		return 0, err
	}
	return e.compute(g, m, s)
}

// LatencyFromPlacement computes the makespan of the singleton-stage
// schedule that FromPlacement(nGPUs, order, place) would produce, without
// materializing the Schedule. HIOS-LP calls this once per (path, GPU)
// trial mapping — the hot loop of Algorithm 1 — and with the evaluator's
// scratch warmed the trial runs allocation-free. Operators with
// place < 0 are unscheduled (partial evaluation); the implied schedule is
// structurally valid by construction, so no validate pass runs. Stage
// ids, durations and dependency order match compute() on the
// materialized schedule exactly, keeping the two paths bit-identical.
func (e *Evaluator) LatencyFromPlacement(g *graph.Graph, m cost.Model, nGPUs int, order []graph.OpID, place []int) (units.Millis, error) {
	n := g.NumOps()
	ns := 0
	for _, op := range order {
		if place[op] >= 0 {
			ns++
		}
	}
	e.growStageScratch(n, ns)
	e.one = growSlice(e.one, 1)
	id := 0
	for gi := 0; gi < nGPUs; gi++ {
		first := true
		for _, op := range order {
			if place[op] != gi {
				continue
			}
			e.opStage[op] = id
			e.place[op] = gi
			e.one[0] = op
			e.dur[id] = m.StageTime(e.one)
			if first {
				e.seqPrev[id] = -1
				first = false
			} else {
				e.seqPrev[id] = id - 1
			}
			id++
		}
	}
	return e.finishCompute(g, m, ns)
}

// validate checks the structural invariants of s against g using scratch
// storage; partial permits schedules covering a subset of the operators.
func (e *Evaluator) validate(g *graph.Graph, s *Schedule, partial bool) error {
	n := g.NumOps()
	e.seen = growSlice(e.seen, n)
	for i := range e.seen {
		e.seen[i] = false
	}
	count := 0
	for gi, q := range s.GPUs {
		for j, st := range q.Stages {
			if len(st.Ops) == 0 {
				return fmt.Errorf("sched: GPU %d stage %d is empty", gi, j)
			}
			for _, op := range st.Ops {
				if op < 0 || int(op) >= n {
					return fmt.Errorf("sched: GPU %d stage %d references unknown operator %d", gi, j, op)
				}
				if e.seen[op] {
					return fmt.Errorf("sched: operator %d scheduled more than once", op)
				}
				e.seen[op] = true
				count++
			}
		}
	}
	if !partial && count != n {
		return fmt.Errorf("sched: %d of %d operators scheduled", count, n)
	}
	return nil
}

// compute runs the longest-path evaluation and returns the makespan. The
// schedule must already be validated. After compute returns, e.start,
// e.finish and the stage numbering (sequential over GPUs, then stages)
// hold the full timeline, which timing() copies out.
func (e *Evaluator) compute(g *graph.Graph, m cost.Model, s *Schedule) (units.Millis, error) {
	n := g.NumOps()
	ns := 0
	for gi := range s.GPUs {
		ns += len(s.GPUs[gi].Stages)
	}

	// Index stages: ids are assigned GPU-major, stage-minor, so id order
	// is reproducible from the schedule alone.
	e.growStageScratch(n, ns)
	id := 0
	for gi := range s.GPUs {
		for j := range s.GPUs[gi].Stages {
			ops := s.GPUs[gi].Stages[j].Ops
			for _, op := range ops {
				e.opStage[op] = id
				e.place[op] = gi
			}
			e.dur[id] = m.StageTime(ops)
			if j > 0 {
				e.seqPrev[id] = id - 1
			} else {
				e.seqPrev[id] = -1
			}
			id++
		}
	}
	return e.finishCompute(g, m, ns)
}

// growStageScratch sizes the per-operator and per-stage scratch for a
// graph of n operators and a schedule of ns stages, resetting the
// operator maps to "unscheduled".
func (e *Evaluator) growStageScratch(n, ns int) {
	e.opStage = growSlice(e.opStage, n)
	e.place = growSlice(e.place, n)
	for i := 0; i < n; i++ {
		e.opStage[i] = -1
		e.place[i] = -1
	}
	e.dur = growSlice(e.dur, ns)
	e.seqPrev = growSlice(e.seqPrev, ns)
	e.indeg = growSlice(e.indeg, ns)
	e.nsucc = growSlice(e.nsucc, ns)
}

// finishCompute builds the stage DAG in CSR form from the indexed stages
// (counting pass, prefix sums, fill pass) and runs the longest-path
// evaluation over it. Both passes visit the sequential edges first and
// then the data edges in graph order, so each stage's dependency list is
// ordered exactly as the historical slice-of-slices construction built
// it, keeping evaluation byte-for-byte reproducible against it.
func (e *Evaluator) finishCompute(g *graph.Graph, m cost.Model, ns int) (units.Millis, error) {
	for id := 0; id < ns; id++ {
		e.indeg[id] = 0
		e.nsucc[id] = 0
	}
	for id := 0; id < ns; id++ {
		if p := e.seqPrev[id]; p >= 0 {
			e.indeg[id]++
			e.nsucc[p]++
		}
	}
	for _, ed := range g.Edges() {
		su, sv := e.opStage[ed.From], e.opStage[ed.To]
		if su < 0 || sv < 0 {
			continue // endpoint unscheduled: partial evaluation
		}
		if su == sv {
			return 0, fmt.Errorf("sched: operators %d and %d share a stage but have a direct dependency", ed.From, ed.To)
		}
		e.indeg[sv]++
		e.nsucc[su]++
	}

	e.depOff = growSlice(e.depOff, ns+1)
	e.succOff = growSlice(e.succOff, ns+1)
	e.depCur = growSlice(e.depCur, ns)
	e.succCur = growSlice(e.succCur, ns)
	nd, nsuc := 0, 0
	for id := 0; id < ns; id++ {
		e.depOff[id] = nd
		e.depCur[id] = nd
		nd += e.indeg[id]
		e.succOff[id] = nsuc
		e.succCur[id] = nsuc
		nsuc += e.nsucc[id]
	}
	e.depOff[ns] = nd
	e.succOff[ns] = nsuc
	e.depFrom = growSlice(e.depFrom, nd)
	e.depLag = growSlice(e.depLag, nd)
	e.succTo = growSlice(e.succTo, nsuc)

	// Fill pass, same iteration order as the counting pass.
	for id := 0; id < ns; id++ {
		if p := e.seqPrev[id]; p >= 0 {
			e.addDep(p, id, 0)
		}
	}
	for _, ed := range g.Edges() {
		su, sv := e.opStage[ed.From], e.opStage[ed.To]
		if su < 0 || sv < 0 {
			continue
		}
		lag := cost.CommBetween(m, ed.From, ed.To, e.place[ed.From], e.place[ed.To])
		e.addDep(su, sv, lag)
	}

	// Longest-path over the stage DAG (Kahn order); a leftover node
	// means a cycle (deadlock: mutually waiting stages, the "implicit
	// dependency" loop Algorithm 2 must detect). The visit order is
	// recorded: it is a topological order of the stage DAG, which the
	// incremental evaluator's dirty-frontier propagation keys on.
	e.start = growSlice(e.start, ns)
	e.finish = growSlice(e.finish, ns)
	e.topoSeq = growSlice(e.topoSeq, ns)
	e.topoPos = growSlice(e.topoPos, ns)
	e.ready = e.ready[:0]
	for id := 0; id < ns; id++ {
		if e.indeg[id] == 0 {
			e.ready = append(e.ready, id)
		}
	}
	visited := 0
	latency := units.Millis(0)
	for len(e.ready) > 0 {
		id := e.ready[len(e.ready)-1]
		e.ready = e.ready[:len(e.ready)-1]
		e.topoSeq[visited] = int32(id)
		e.topoPos[id] = int32(visited)
		visited++
		t := units.Millis(0)
		for k := e.depOff[id]; k < e.depOff[id+1]; k++ {
			if x := e.finish[e.depFrom[k]] + e.depLag[k]; x > t {
				t = x
			}
		}
		e.start[id] = t
		e.finish[id] = t + e.dur[id]
		if e.finish[id] > latency {
			latency = e.finish[id]
		}
		for k := e.succOff[id]; k < e.succOff[id+1]; k++ {
			w := e.succTo[k]
			e.indeg[w]--
			if e.indeg[w] == 0 {
				e.ready = append(e.ready, w)
			}
		}
	}
	if visited != ns {
		return 0, fmt.Errorf("sched: stage graph has a cycle (%d of %d stages schedulable): %w", visited, ns, graph.ErrCycle)
	}
	return latency, nil
}

// addDep records start(to) >= finish(from) + lag in the CSR arrays.
func (e *Evaluator) addDep(from, to int, lag units.Millis) {
	k := e.depCur[to]
	e.depFrom[k] = from
	e.depLag[k] = lag
	e.depCur[to] = k + 1
	k = e.succCur[from]
	e.succTo[k] = to
	e.succCur[from] = k + 1
}

// timing runs compute and copies the timeline into a fresh Timing.
func (e *Evaluator) timing(g *graph.Graph, m cost.Model, s *Schedule) (*Timing, error) {
	lat, err := e.compute(g, m, s)
	if err != nil {
		return nil, err
	}
	n := g.NumOps()
	tm := &Timing{
		Latency:     lat,
		StageStart:  make([][]units.Millis, len(s.GPUs)),
		StageFinish: make([][]units.Millis, len(s.GPUs)),
		OpStart:     make([]units.Millis, n),
		OpFinish:    make([]units.Millis, n),
		GPUOf:       make([]int, n),
	}
	copy(tm.GPUOf, e.place[:n])
	id := 0
	for gi := range s.GPUs {
		tm.StageStart[gi] = make([]units.Millis, len(s.GPUs[gi].Stages))
		tm.StageFinish[gi] = make([]units.Millis, len(s.GPUs[gi].Stages))
		for j := range s.GPUs[gi].Stages {
			tm.StageStart[gi][j] = e.start[id]
			tm.StageFinish[gi][j] = e.finish[id]
			for _, op := range s.GPUs[gi].Stages[j].Ops {
				tm.OpStart[op] = e.start[id]
				tm.OpFinish[op] = e.finish[id]
			}
			id++
		}
	}
	return tm, nil
}

// growSlice returns buf resized to n, reusing its backing array when
// large enough. Contents are unspecified. Fresh storage is exact-size:
// a one-shot evaluation pays for precisely what it touches. Callers
// that grow a little on every round want growSliceCap instead.
func growSlice[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// growSliceCap is growSlice with 2x capacity headroom on fresh storage,
// for arrays that grow a little on every round — the incremental
// evaluator's commit splices extend their double-buffered arrays by one
// path per committed mapping, and exact-size storage would reallocate
// every one of them on every commit (the swapped-out buffer is always
// one path short).
func growSliceCap[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n, 2*n)
	}
	return buf[:n]
}

// Validate checks the structural invariants of a schedule against its
// graph: every operator scheduled exactly once, no unknown IDs, and no
// empty stages. Dependency violations (intra-stage edges, cyclic stage
// graphs) are detected by Evaluate.
func Validate(g *graph.Graph, s *Schedule) error {
	var e Evaluator
	return e.validate(g, s, false)
}

// ValidatePartial is Validate without the completeness requirement: a
// schedule may cover any subset of the operators, each at most once.
func ValidatePartial(g *graph.Graph, s *Schedule) error {
	var e Evaluator
	return e.validate(g, s, true)
}

// Result pairs a schedule with its evaluated latency; every scheduling
// algorithm in this repository returns one.
type Result struct {
	Schedule *Schedule
	Latency  units.Millis
}
