// Package mr implements HIOS-MR (Algorithm 3 of the HIOS paper):
// mapping-recording-based operator scheduling across multiple GPUs,
// followed by the same sliding-window intra-GPU pass as HIOS-LP.
//
// The algorithm walks the operators in descending-priority (topological)
// order and fills an n×M table in which entry (i, j) records the earliest
// finish time of operator v_i when it is mapped onto GPU j, together with
// the GPU that v_{i-1} occupied in the partial schedule realizing that
// finish time. For each candidate (i, j) it replays the recorded chain to
// reconstruct where v_1..v_{i-1} sit, computes GPU j's availability and the
// data-readiness of v_i's inputs (paying cross-GPU transfer times), and
// keeps the best predecessor choice. The final schedule is read back by
// following the recorded chain from the best last-operator entry.
//
// HIOS-MR is a greedy local optimizer: unlike HIOS-LP it never reasons
// about whole paths, so it tends to scatter dependent operators across
// GPUs and pay avoidable transfers — which is exactly the behaviour the
// paper observes (HIOS-LP beats it by 9–17% on real models).
package mr

import (
	"fmt"
	"math"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/window"
	"github.com/shus-lab/hios/internal/units"
)

// Options configures HIOS-MR.
type Options struct {
	// GPUs is M, the number of homogeneous devices. Must be >= 1.
	GPUs int
	// Window is the maximum window size w of the intra-GPU pass.
	// Zero selects window.DefaultSize.
	Window int
	// InterOnly skips Algorithm 2, yielding the "inter-GPU w/ MR" curve.
	InterOnly bool
}

// Validate reports whether the options are usable: at least one GPU and
// a non-negative window.
func (o Options) Validate() error {
	if o.GPUs < 1 {
		return fmt.Errorf("mr: need at least 1 GPU, got %d", o.GPUs)
	}
	if o.Window < 0 {
		return fmt.Errorf("mr: negative window %d", o.Window)
	}
	return nil
}

// Schedule runs HIOS-MR on g under cost model m.
//
//lint:hotpath
func Schedule(g *graph.Graph, m cost.Model, opt Options) (sched.Result, error) {
	if err := opt.Validate(); err != nil {
		return sched.Result{}, err
	}
	w := opt.Window
	if w == 0 {
		w = window.DefaultSize
	}
	n := g.NumOps()
	M := opt.GPUs
	if n == 0 {
		return sched.Result{Schedule: sched.New(M), Latency: 0}, nil
	}

	// Line 1: topological order by descending priority indicator.
	order := g.ByPriority()
	pos := make([]int, n) // operator -> index in order
	for i, v := range order {
		pos[v] = i
	}

	// Lines 2–4: the n×M table of (earliest finish, predecessor GPU),
	// row-major in two flat arrays — entry (i, j) at index i*M+j.
	tTab := make([]units.Millis, n*M)
	gTab := make([]int, n*M)
	for i := range tTab {
		tTab[i] = units.Millis(math.Inf(1))
	}
	// Line 5: v_1 goes to GPU 1 (homogeneity makes the choice free).
	tTab[0] = m.OpTime(order[0])

	// Scratch buffers for the chain replay.
	tF := make([]units.Millis, n)
	gOf := make([]int, n)
	avail := make([]units.Millis, M)

	// Lines 6–21, with k as the outer loop: the recorded chain and the
	// per-GPU availability depend only on (i, k), so both are
	// reconstructed once and shared by every candidate GPU j — an
	// O(n·M·(n+M)) replay cost instead of the naive O(n²·M²). For each
	// fixed j the k values still arrive in ascending order, and the
	// strict < below keeps the first minimal k, so the table (and hence
	// the schedule) is identical to the j-outer formulation.
	for i := 1; i < n; i++ {
		vi := order[i]
		maxJ := M
		if i+1 < maxJ {
			maxJ = i + 1
		}
		maxK := M
		if i < maxK {
			maxK = i
		}
		for k := 0; k < maxK; k++ {
			if math.IsInf(float64(tTab[(i-1)*M+k]), 1) {
				continue // v_{i-1} cannot finish on GPU k
			}
			// Lines 10–12: replay the recorded chain to recover each
			// earlier operator's GPU and finish time under "v_{i-1}
			// on GPU k".
			mm := k
			for l := i - 1; l >= 0; l-- {
				tF[l] = tTab[l*M+mm]
				gOf[l] = mm
				mm = gTab[l*M+mm]
			}
			// Line 14: every GPU's availability in one pass.
			for j := 0; j < M; j++ {
				avail[j] = 0
			}
			for l := 0; l < i; l++ {
				if tF[l] > avail[gOf[l]] {
					avail[gOf[l]] = tF[l]
				}
			}
			for j := 0; j < maxJ; j++ {
				// Lines 15–19: data readiness of v_i's inputs.
				tk := avail[j]
				for p := 0; p < g.InDegree(vi); p++ {
					u, _ := g.PredAt(vi, p)
					lu := pos[u]
					if lu >= i {
						// A predecessor later in the priority
						// order would violate topological
						// ordering; cannot happen with positive
						// op times.
						return sched.Result{}, fmt.Errorf("mr: priority order is not topological at operator %d", vi)
					}
					if r := tF[lu] + cost.CommBetween(m, u, vi, gOf[lu], j); r > tk {
						tk = r
					}
				}
				// Lines 20–21.
				if f := tk + m.OpTime(vi); f < tTab[i*M+j] {
					tTab[i*M+j] = f
					gTab[i*M+j] = k
				}
			}
		}
	}

	// Lines 22–26: pick the best finish of v_n and walk the chain back.
	J := 0
	for j := 1; j < M; j++ {
		if tTab[(n-1)*M+j] < tTab[(n-1)*M+J] {
			J = j
		}
	}
	place := make([]int, n)
	mm := J
	for i := n - 1; i >= 0; i-- {
		place[order[i]] = mm
		mm = gTab[i*M+mm]
	}

	s := sched.FromPlacement(M, order, place)
	lat, err := sched.Latency(g, m, s)
	if err != nil {
		return sched.Result{}, err
	}
	if opt.InterOnly {
		return sched.Result{Schedule: s, Latency: lat}, nil
	}
	// Line 27: the shared intra-GPU parallelization pass.
	return window.Parallelize(g, m, s, w)
}
