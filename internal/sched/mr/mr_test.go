package mr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/brute"
	"github.com/shus-lab/hios/internal/sched/seq"
	"github.com/shus-lab/hios/internal/units"
)

func smallCfg(seed int64) randdag.Config {
	cfg := randdag.Paper()
	cfg.Ops = 40
	cfg.Layers = 6
	cfg.Deps = 80
	cfg.Seed = seed
	return cfg
}

func TestRejectsZeroGPUs(t *testing.T) {
	g := randdag.MustGenerate(smallCfg(1))
	m := cost.FromGraph(g, cost.DefaultContention())
	if _, err := Schedule(g, m, Options{GPUs: 0}); err == nil {
		t.Fatal("accepted 0 GPUs")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(0, 0)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := Schedule(g, m, Options{GPUs: 3})
	if err != nil || res.Latency != 0 {
		t.Fatalf("empty graph: %+v %v", res, err)
	}
}

func TestSingleGPUInterOnlyEqualsSequential(t *testing.T) {
	g := randdag.MustGenerate(smallCfg(2))
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := Schedule(g, m, Options{GPUs: 1, InterOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	sq, err := seq.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.Latency - sq.Latency; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("1-GPU MR %g != sequential %g", res.Latency, sq.Latency)
	}
}

func TestFirstOpOnGPUOne(t *testing.T) {
	// Algorithm 3 line 5 pins the first (highest-priority) operator to
	// GPU 1.
	g := randdag.MustGenerate(smallCfg(3))
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := Schedule(g, m, Options{GPUs: 4, InterOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	first := g.ByPriority()[0]
	if res.Schedule.Placement(g.NumOps())[first] != 0 {
		t.Fatalf("first operator not on GPU 1: %v", res.Schedule)
	}
}

func TestIndependentOpsSpread(t *testing.T) {
	// Two equal independent chains: MR should use both GPUs.
	g := graph.New(4, 2)
	for i := 0; i < 4; i++ {
		g.AddOp(graph.Op{Time: 2, Util: 1})
	}
	g.AddEdge(0, 1, 0.1)
	g.AddEdge(2, 3, 0.1)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := Schedule(g, m, Options{GPUs: 2, InterOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.UsedGPUs() != 2 {
		t.Fatalf("MR left a GPU idle: %v", res.Schedule)
	}
	if res.Latency != 4 {
		t.Fatalf("latency = %g, want 4", res.Latency)
	}
}

func TestReportedLatencyMatchesEvaluation(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := randdag.MustGenerate(smallCfg(seed))
		m := cost.FromGraph(g, cost.DefaultContention())
		for _, interOnly := range []bool{true, false} {
			res, err := Schedule(g, m, Options{GPUs: 4, InterOnly: interOnly})
			if err != nil {
				t.Fatal(err)
			}
			lat, err := sched.Latency(g, m, res.Schedule)
			if err != nil {
				t.Fatalf("returned schedule invalid: %v", err)
			}
			if diff := lat - res.Latency; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("reported %g != evaluated %g", res.Latency, lat)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	g := randdag.MustGenerate(smallCfg(9))
	m := cost.FromGraph(g, cost.DefaultContention())
	a, _ := Schedule(g, m, Options{GPUs: 4})
	b, _ := Schedule(g, m, Options{GPUs: 4})
	if a.Latency != b.Latency || a.Schedule.String() != b.Schedule.String() {
		t.Fatal("HIOS-MR is not deterministic")
	}
}

func TestScheduleInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := smallCfg(seed)
		cfg.Ops = 10 + rng.Intn(40)
		cfg.Layers = 2 + rng.Intn(6)
		cfg.Deps = cfg.Ops + rng.Intn(cfg.Ops)
		g := randdag.MustGenerate(cfg)
		m := cost.FromGraph(g, cost.DefaultContention())
		gpus := 1 + rng.Intn(5)
		res, err := Schedule(g, m, Options{GPUs: gpus, Window: 2 + rng.Intn(3)})
		if err != nil {
			return false
		}
		if err := sched.Validate(g, res.Schedule); err != nil {
			return false
		}
		lb := units.Millis(g.CriticalComputeLength())
		ub := g.TotalOpTime()
		for _, e := range g.Edges() {
			ub += e.Time
		}
		return res.Latency >= lb-1e-9 && res.Latency <= units.Millis(ub)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNeverBeatsBruteOnTiny(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := randdag.Paper()
		cfg.Ops = 6 + rng.Intn(4)
		cfg.Layers = 3
		cfg.Deps = cfg.Ops
		cfg.Seed = seed
		g := randdag.MustGenerate(cfg)
		m := cost.FromGraph(g, cost.DefaultContention())
		res, err := Schedule(g, m, Options{GPUs: 2, InterOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := brute.BestPlacement(g, m, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Latency < opt.Latency-1e-9 {
			t.Fatalf("seed %d: MR %g below exhaustive optimum %g", seed, res.Latency, opt.Latency)
		}
	}
}
