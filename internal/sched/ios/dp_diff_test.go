package ios

// Differential tests of the DP's exactness knobs. Pruning, the block
// cache, and intra-solve parallelism are all advertised as EXACT — they
// may never change a returned schedule, only how fast it is computed.
// These tests enforce that promise the blunt way: solve a few hundred
// random graphs with each knob flipped both ways and require the stage
// decompositions to match structurally (same ops in the same stages in
// the same order) and the latencies to match bit for bit.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/dpcache"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
)

// diffInstances is the graph count per differential test. The issue
// demands at least 200; the instances are small enough that a pair of
// solves each stays well under a second in total.
const diffInstances = 200

// diffCase derives the i-th differential instance: a random graph whose
// size and shape vary with i (small multi-block graphs through wide
// beam-mode blocks) plus an options value that cycles through exact
// mode, beam mode, and tight stage bounds.
func diffCase(i int) (*randdag.Config, Options) {
	rng := rand.New(rand.NewSource(int64(1000 + i)))
	cfg := randdag.Paper()
	cfg.Ops = 15 + rng.Intn(35)
	cfg.Layers = 3 + rng.Intn(8)
	cfg.Deps = cfg.Ops + rng.Intn(cfg.Ops)
	cfg.Seed = int64(i + 1)
	var opt Options
	switch i % 3 {
	case 0: // defaults: exact for narrow blocks, beam for wide ones
	case 1: // force beam mode everywhere
		opt.ExactLimit = 1
		opt.Beam = 8 + rng.Intn(48)
	case 2: // exact everywhere, tight stage bounds (kept small: the
		// unpruned exact DP is exponential in the block width)
		cfg.Ops = 12 + rng.Intn(12)
		cfg.Deps = cfg.Ops + rng.Intn(cfg.Ops)
		opt.ExactLimit = 512
		opt.MaxStage = 2 + rng.Intn(2)
		opt.PruneWindow = 4 + rng.Intn(4)
	}
	return &cfg, opt
}

// renderSchedule solves the graph under the options and returns an exact
// textual rendering of the result: every stage's operator list plus the
// latency's full float formatting. Two renderings are equal iff the
// schedules are identical.
func renderSchedule(t *testing.T, cfg *randdag.Config, opt Options) string {
	t.Helper()
	g := randdag.MustGenerate(*cfg)
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := Schedule(g, m, opt)
	if err != nil {
		t.Fatalf("Schedule(%+v): %v", opt, err)
	}
	if err := sched.Validate(g, res.Schedule); err != nil {
		t.Fatalf("invalid schedule under %+v: %v", opt, err)
	}
	return fmt.Sprintf("%v|%b", res.Schedule.GPUs[0].Stages, float64(res.Latency))
}

func TestPrunedMatchesUnpruned(t *testing.T) {
	for i := 0; i < diffInstances; i++ {
		cfg, opt := diffCase(i)
		opt.NoCache = true // isolate the pruning axis
		pruned := renderSchedule(t, cfg, opt)
		opt.NoPrune = true
		unpruned := renderSchedule(t, cfg, opt)
		if pruned != unpruned {
			t.Fatalf("instance %d (%+v): pruning changed the schedule\npruned:   %s\nunpruned: %s",
				i, opt, pruned, unpruned)
		}
	}
}

func TestCachedMatchesUncached(t *testing.T) {
	dpcache.Shared().Reset()
	for i := 0; i < diffInstances; i++ {
		cfg, opt := diffCase(i)
		opt.NoCache = true
		want := renderSchedule(t, cfg, opt)
		opt.NoCache = false
		cold := renderSchedule(t, cfg, opt) // fills the cache
		warm := renderSchedule(t, cfg, opt) // replays from it
		if cold != want || warm != want {
			t.Fatalf("instance %d (%+v): caching changed the schedule\nuncached: %s\ncold:     %s\nwarm:     %s",
				i, opt, want, cold, warm)
		}
	}
	if st := dpcache.Shared().Stats(); st.Hits == 0 {
		t.Fatalf("warm re-solves never hit the cache: %+v", st)
	}
}

// TestParallelMatchesSerial is the width-equivalence property of
// Options.Workers: any worker count produces the serial schedule.
func TestParallelMatchesSerial(t *testing.T) {
	for i := 0; i < diffInstances; i++ {
		cfg, opt := diffCase(i)
		opt.NoCache = true // exercise real concurrent solves, not replays
		serial := renderSchedule(t, cfg, opt)
		for _, w := range []int{2, 4, 8} {
			opt.Workers = w
			if got := renderSchedule(t, cfg, opt); got != serial {
				t.Fatalf("instance %d (%+v): %d workers diverged from serial\nserial:  %s\nworkers: %s",
					i, opt, w, serial, got)
			}
		}
	}
}

// All three knobs at once, against the all-off reference.
func TestAllKnobsMatchReference(t *testing.T) {
	dpcache.Shared().Reset()
	for i := 0; i < diffInstances; i += 4 {
		cfg, opt := diffCase(i)
		ref := opt
		ref.NoPrune, ref.NoCache = true, true
		want := renderSchedule(t, cfg, ref)
		opt.Workers = 4
		if got := renderSchedule(t, cfg, opt); got != want {
			t.Fatalf("instance %d: pruning+cache+workers diverged from the plain DP\nref: %s\ngot: %s",
				i, want, got)
		}
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	if err := (Options{Workers: -1}).Validate(); err == nil {
		t.Fatal("Options{Workers: -1}.Validate() accepted a negative worker count")
	}
}
