// Package ios implements the Inter-Operator Scheduler of Ding et al.
// (MLSys 2021), the state-of-the-art single-GPU baseline the HIOS paper
// compares against (§V-B).
//
// IOS partitions a computation graph's execution on ONE GPU into stages of
// independent operators and picks the stage decomposition minimizing total
// latency with a dynamic program over "prefix-closed" operator sets: a set
// S is a valid DP state when every predecessor of a member is also a
// member. From state S the next stage may be any non-empty subset of S's
// frontier (operators whose inputs are all in S); such subsets are
// automatically antichains. On a single GPU the latency of a schedule is
// the sum of its stage times, so
//
//	dp[S ∪ T] = min(dp[S ∪ T], dp[S] + t(T)).
//
// The DP is exponential in the graph's width. Exactly as in the original
// paper, two mitigations make it practical:
//
//  1. Block partitioning: CNNs narrow to a single operator between
//     multi-branch cells. Any operator comparable with every other
//     operator (every op either reaches it or is reached by it) splits the
//     problem; blocks are solved independently and concatenated.
//  2. Schedule pruning: within a block, candidate stages are drawn from
//     the first PruneWindow frontier operators (by priority), stages hold
//     at most MaxStage operators, and (for blocks wider than ExactLimit) a
//     beam of the Beam cheapest states per scheduled-operator count is
//     kept. With Beam = 0 the DP is exact.
//
// HIOS adopts IOS's measured t(S) semantics, so the cost.Model supplies
// stage times here exactly as it does for the HIOS algorithms.
package ios

import (
	"fmt"
	"sort"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/parallel"
	"github.com/shus-lab/hios/internal/sched"
)

// Options configures the IOS dynamic program.
type Options struct {
	// MaxStage bounds the number of operators per stage (the paper's
	// max number of concurrent CUDA streams). Zero means 8.
	MaxStage int
	// PruneWindow bounds how many frontier operators are considered
	// when enumerating candidate stages. Zero means 8.
	PruneWindow int
	// ExactLimit is the largest block size solved exactly (no beam).
	// Zero means 20.
	ExactLimit int
	// Beam bounds the number of DP states kept per scheduled-operator
	// count in blocks wider than ExactLimit. Zero means 32.
	Beam int
	// Workers bounds how many blocks Schedule solves concurrently.
	// Blocks are independent subproblems, and the per-block results are
	// merged in block order, so the schedule is byte-identical at any
	// width. Zero or one solves serially (the default); negative is
	// invalid.
	Workers int
	// NoPrune disables the incumbent-bound pruning of the dynamic
	// program. Pruning is exact — it never changes the returned
	// schedule — so this knob exists for differential testing and
	// cold-path benchmarking, not for quality.
	NoPrune bool
	// NoCache bypasses the process-wide block-solve cache
	// (internal/dpcache). Cached solves are bit-identical replays, so
	// this knob too exists only for differential testing and cold-path
	// benchmarking.
	NoCache bool
}

// Validate reports whether the options are usable: every bound must be
// non-negative (zero selects its documented default).
func (o Options) Validate() error {
	if o.MaxStage < 0 || o.PruneWindow < 0 || o.ExactLimit < 0 || o.Beam < 0 {
		return fmt.Errorf("ios: negative pruning bound: %+v", o)
	}
	if o.Workers < 0 {
		return fmt.Errorf("ios: negative worker count %d", o.Workers)
	}
	return nil
}

func (o *Options) fill() {
	if o.MaxStage == 0 {
		o.MaxStage = 8
	}
	if o.PruneWindow == 0 {
		o.PruneWindow = 8
	}
	if o.ExactLimit == 0 {
		o.ExactLimit = 20
	}
	if o.Beam == 0 {
		o.Beam = 32
	}
}

// Schedule runs IOS on g under cost model m and returns the single-GPU
// stage decomposition with its latency.
func Schedule(g *graph.Graph, m cost.Model, opt Options) (sched.Result, error) {
	if err := opt.Validate(); err != nil {
		return sched.Result{}, err
	}
	opt.fill()
	n := g.NumOps()
	s := sched.New(1)
	if n == 0 {
		return sched.Result{Schedule: s, Latency: 0}, nil
	}
	blocks := Blocks(g)
	if opt.Workers > 1 && len(blocks) > 1 {
		// Blocks are independent subproblems (only intra-block edges
		// constrain the DP), so they fan out on the deterministic worker
		// pool: parallel.Map returns results in index order whatever the
		// execution interleaving, and a block's solution is a pure
		// function of the block (racing dpcache fills are bit-identical),
		// so the appended schedule is byte-identical at any width.
		results, err := parallel.Map(len(blocks), opt.Workers, func(i int) ([][]graph.OpID, error) {
			var sv solver
			return sv.solveCached(g, m, blocks[i], opt)
		})
		if err != nil {
			return sched.Result{}, err
		}
		for _, stages := range results {
			for _, st := range stages {
				s.AppendStage(0, st)
			}
		}
	} else {
		var sv solver // scratch shared by every block of this call
		for _, block := range blocks {
			stages, err := sv.solveCached(g, m, block, opt)
			if err != nil {
				return sched.Result{}, err
			}
			for _, st := range stages {
				s.AppendStage(0, st)
			}
		}
	}
	lat, err := sched.Latency(g, m, s)
	if err != nil {
		return sched.Result{}, err
	}
	return sched.Result{Schedule: s, Latency: lat}, nil
}

// SolveSequence runs the IOS stage-partitioning dynamic program over an
// arbitrary operator subset (given in descending-priority order),
// constrained only by the data dependencies *within* the subset. It
// returns the stage decomposition in execution order.
//
// This is the primitive behind the §IV-B comparison: applying IOS per GPU
// to a multi-GPU placement ignores cross-GPU dependencies entirely —
// which is exactly the paper's argument for the sliding window — and the
// resulting global schedule may even deadlock; callers must validate it.
func SolveSequence(g *graph.Graph, m cost.Model, ops []graph.OpID, opt Options) ([][]graph.OpID, error) {
	opt.fill()
	if len(ops) == 0 {
		return nil, nil
	}
	var sv solver
	return sv.solveCached(g, m, ops, opt)
}

// Blocks partitions the operators into independent scheduling blocks. An
// operator v is a separator when every other operator is an ancestor or a
// descendant of v; blocks span consecutive separators, each block owning
// the separator that opens it. Blocks are returned in topological order,
// each block's operators in descending-priority order.
func Blocks(g *graph.Graph) [][]graph.OpID {
	n := g.NumOps()
	order := g.ByPriority()
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	// v is a separator iff every other operator is an ancestor or a
	// descendant: NumAncestors(v) + NumDescendants(v) == n-1, answered by
	// popcounts over the graph's cached transitive-closure bitset (which
	// replaces the hand-rolled per-call bitset DP this function carried).
	cl := g.Closure()
	var seps []graph.OpID
	for v := 0; v < n; v++ {
		id := graph.OpID(v)
		if cl.NumAncestors(id)+cl.NumDescendants(id) == n-1 {
			seps = append(seps, id)
		}
	}
	sort.Slice(seps, func(i, j int) bool { return pos[seps[i]] < pos[seps[j]] })

	// Assign each operator to the block opened by the latest separator
	// that is an ancestor-or-self of it; since separators are totally
	// ordered, priority position decides.
	var blocks [][]graph.OpID
	if len(seps) == 0 {
		blocks = [][]graph.OpID{append([]graph.OpID(nil), order...)}
		return blocks
	}
	sepPos := make([]int, len(seps))
	for i, sv := range seps {
		sepPos[i] = pos[sv]
	}
	nblocks := len(seps)
	first := 0
	if sepPos[0] > 0 {
		nblocks++ // operators before the first separator
		first = 1
	}
	blocks = make([][]graph.OpID, nblocks)
	for _, v := range order {
		p := pos[v]
		// Find the last separator with position <= p.
		idx := sort.Search(len(sepPos), func(i int) bool { return sepPos[i] > p }) - 1
		blocks[first+idx] = append(blocks[first+idx], v)
	}
	// Drop any empty block (can happen when consecutive separators are
	// adjacent) — none should be empty by construction, but be safe.
	out := blocks[:0]
	for _, b := range blocks {
		if len(b) > 0 {
			out = append(out, b)
		}
	}
	return out
}
