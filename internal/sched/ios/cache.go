package ios

import (
	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/dpcache"
	"github.com/shus-lab/hios/internal/graph"
)

// solveCached answers a block solve from the process-wide dpcache when it
// can, and routes the solve through solveBlock (then memoizes it) when it
// cannot.
//
// Caching is gated on the cost.ItemModel contract: for such models the DP
// is a pure function of the block's items, its intra-block dependency
// lists, the contention calibration and the pruning options — exactly the
// fields blockKey encodes, in block-local indices so the signature never
// depends on operator identity or on which graph the block came from.
// Probe-counting models take the uncached path and observe exactly the
// probe sequence they always have.
//
// solveCached sits above solveBlock on the hot path: sweeps call it once
// per block per scheduler run, so the signature build and the hit-path
// remap must stay allocation-lean (the key lives in the solver's
// reusable buffer; a hit costs two allocations).
//
//lint:hotpath
func (s *solver) solveCached(g *graph.Graph, m cost.Model, block []graph.OpID, opt Options) ([][]graph.OpID, error) {
	b := len(block)
	im, fast := m.(cost.ItemModel)
	if !fast || opt.NoCache || b < 2 || b > maxBlockOps {
		return s.solveBlock(g, m, block, opt)
	}
	key := s.blockKey(g, im, block, opt)
	if stages, ok := dpcache.Shared().Get(key); ok {
		return remapStages(stages, block), nil
	}
	out, err := s.solveBlock(g, m, block, opt)
	if err != nil {
		// Errors (cyclic sequences, beam exhaustion) are not cached: they
		// are rare, cheap to re-derive, and keeping the cache value shape
		// trivial keeps Get allocation-free.
		return nil, err
	}
	dpcache.Shared().Put(key, localStages(out, block, s))
	return out, nil
}

// blockKey builds the canonical signature of this block solve in the
// solver's reusable key buffer. Floats are exact bit patterns: the cache
// memoizes exact computations, so two solves share a key only when every
// input is bit-identical. Options.Workers and Options.NoCache are
// deliberately absent — neither changes a block's solution (Workers only
// fans independent blocks out; NoCache only routes around this cache).
func (s *solver) blockKey(g *graph.Graph, im cost.ItemModel, block []graph.OpID, opt Options) []byte {
	b := len(block)
	s.ensureInBlock(g.NumOps())
	for i, v := range block {
		s.inBlock[v] = int32(i)
	}
	sig := dpcache.NewSig(s.keyBuf)
	ct := im.Contention()
	sig.Float(ct.Alpha)
	sig.Float(ct.DefaultUtil)
	sig.Int(opt.MaxStage)
	sig.Int(opt.PruneWindow)
	sig.Int(opt.ExactLimit)
	sig.Int(opt.Beam)
	sig.Bool(opt.NoPrune)
	sig.Int(b)
	for _, v := range block {
		it := im.StageItem(v)
		sig.Float(float64(it.Time))
		sig.Float(it.Util)
	}
	// Intra-block predecessor lists in the exact order the DP collects
	// them. -1 terminates each list (a valid local index is never
	// negative).
	appendPred := func(u graph.OpID, _ float64) {
		if j := s.inBlock[u]; j >= 0 {
			sig.Int(int(j))
		}
	}
	for _, v := range block {
		g.Preds(v, appendPred)
		sig.Int(-1)
	}
	for _, v := range block {
		s.inBlock[v] = -1
	}
	s.keyBuf = sig.Bytes()
	return s.keyBuf
}

// remapStages turns cached block-local stages into the caller's operator
// IDs. One flat allocation backs every stage, so a cache hit costs two
// allocations regardless of stage count.
func remapStages(stages [][]int32, block []graph.OpID) [][]graph.OpID {
	total := 0
	for _, st := range stages {
		total += len(st)
	}
	flat := make([]graph.OpID, total)
	out := make([][]graph.OpID, len(stages))
	k := 0
	for i, st := range stages {
		seg := flat[k : k+len(st) : k+len(st)]
		for j, li := range st {
			seg[j] = block[li]
		}
		out[i] = seg
		k += len(st)
	}
	return out
}

// localStages converts a freshly solved decomposition to block-local
// indices for storage. The result is newly allocated — the cache retains
// it forever — and, like remapStages, flat-backed.
func localStages(stages [][]graph.OpID, block []graph.OpID, s *solver) [][]int32 {
	for i, v := range block {
		s.inBlock[v] = int32(i)
	}
	total := 0
	for _, st := range stages {
		total += len(st)
	}
	flat := make([]int32, total)
	out := make([][]int32, len(stages))
	k := 0
	for i, st := range stages {
		seg := flat[k : k+len(st) : k+len(st)]
		for j, v := range st {
			seg[j] = s.inBlock[v]
		}
		out[i] = seg
		k += len(st)
	}
	for _, v := range block {
		s.inBlock[v] = -1
	}
	return out
}
