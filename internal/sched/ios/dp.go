package ios

import (
	"fmt"
	"sort"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/units"
)

// maxBlockOps bounds the number of operators one DP block may hold: the
// bitset state is a fixed [8]uint64 so it can serve directly as a hash key
// without per-state string allocation. 512 operators per block is far
// beyond anything the dynamic program could enumerate in practice anyway.
const maxBlockOps = 8 * 64

// bitset is a fixed-width set over a block's local operator indices,
// comparable by value.
type bitset [8]uint64

func (b *bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b *bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// dpState is one DP node: a prefix-closed set of scheduled block operators.
// States live in the solver's slab and reference each other by slab index;
// the stage taken to reach a state is a range of the solver's stage arena.
// Nothing in a dpState points into the heap, so growing the slab moves
// states without invalidating anything.
type dpState struct {
	set      bitset
	cost     units.Millis
	prev     int32 // slab index of the predecessor state (-1 for the start)
	stageOff int32 // stage range in the solver's arena (graph IDs)
	stageLen int32
	count    int32 // popcount of set
}

// solver holds every scratch structure of the block dynamic program so one
// Schedule call (or one SolveSequence caller) reuses the allocations across
// blocks. The DP used to allocate per state — a map entry keyed by the
// 64-byte bitset, a *dpState, and a fresh stage slice on every
// better-cost improvement — which made the DP the dominant allocation
// site of the whole reproduction (BenchmarkSchedulerIOS). The slab +
// arena + open-addressing layout below performs a small constant number
// of amortized allocations per block instead. The zero value is ready.
type solver struct {
	inBlock []int32 // graph OpID -> local block index, -1 outside
	preds   [][]int // local intra-block predecessor lists

	states []dpState    // state slab, index-addressed
	arena  []graph.OpID // interned stage storage, ranges never move
	index  []int32      // open addressing: 0 = empty, else state index + 1
	words  int          // bitset words in use for the current block
	filled int          // occupied index slots
	bucket [][]int32    // state indices by scheduled-operator count
	front  []int        // frontier scratch
	stage  []int        // subset-enumeration scratch
	probe  []graph.OpID // candidate stage handed to the cost model
	sorter bucketSorter // beam-prune sort scratch
}

// bucketSorter orders a bucket's state indices by (cost, bitset). It lives
// in the solver so the beam prune sorts via sort.Sort on a pointer receiver
// — no per-sort closure or interface boxing inside the DP bucket loop, and
// the (cost, distinct-bitset) key is a total order, so the result is
// identical to the sort.Slice it replaced.
type bucketSorter struct {
	states []dpState
	bucket []int32
}

func (b *bucketSorter) Len() int      { return len(b.bucket) }
func (b *bucketSorter) Swap(i, j int) { b.bucket[i], b.bucket[j] = b.bucket[j], b.bucket[i] }
func (b *bucketSorter) Less(i, j int) bool {
	a, z := &b.states[b.bucket[i]], &b.states[b.bucket[j]]
	// Exact IEEE inequality keeps this tie-break a strict weak order; an
	// epsilon compare would not.
	if a.cost != z.cost { //lint:floatexact comparator tie-break: epsilon would break the strict weak order
		return a.cost < z.cost
	}
	return less(a.set, z.set)
}

// hashBits mixes the block's active bitset words (splitmix64 finalizer
// over an FNV-style fold); the index capacity is a power of two, so the
// low bits must be well distributed. The splitmix64 constants here hash
// bitsets and never feed an RNG, hence the seedflow suppressions.
func (s *solver) hashBits(set *bitset) uint64 {
	h := uint64(0x9e3779b97f4a7c15) //lint:seedflow (hash mixing, not seed derivation)
	for i := 0; i < s.words; i++ {
		h = (h ^ set[i]) * 0xbf58476d1ce4e5b9 //lint:seedflow (hash mixing, not seed derivation)
	}
	h ^= h >> 30
	h *= 0x94d049bb133111eb //lint:seedflow (hash mixing, not seed derivation)
	h ^= h >> 31
	return h
}

// find returns the slab index of the state with the given set, or -1.
func (s *solver) find(set *bitset) int32 {
	mask := uint64(len(s.index) - 1)
	for i := s.hashBits(set) & mask; ; i = (i + 1) & mask {
		e := s.index[i]
		if e == 0 {
			return -1
		}
		if s.states[e-1].set == *set {
			return e - 1
		}
	}
}

// insert records the (already appended) state at slab index si in the
// index, growing and rehashing at 3/4 load.
func (s *solver) insert(si int32) {
	if (s.filled+1)*4 >= len(s.index)*3 {
		s.rehash(len(s.index) * 2)
	}
	mask := uint64(len(s.index) - 1)
	i := s.hashBits(&s.states[si].set) & mask
	for s.index[i] != 0 {
		i = (i + 1) & mask
	}
	s.index[i] = si + 1
	s.filled++
}

func (s *solver) rehash(capacity int) {
	if cap(s.index) >= capacity {
		s.index = s.index[:capacity]
		clear(s.index)
	} else {
		s.index = make([]int32, capacity)
	}
	mask := uint64(capacity - 1)
	for si := range s.states {
		i := s.hashBits(&s.states[si].set) & mask
		for s.index[i] != 0 {
			i = (i + 1) & mask
		}
		s.index[i] = int32(si) + 1
	}
}

// internStage appends the probe to the arena and returns its range.
func (s *solver) internStage(ops []graph.OpID) (int32, int32) {
	off := int32(len(s.arena))
	s.arena = append(s.arena, ops...)
	return off, int32(len(ops))
}

// reset prepares the solver for a block of b operators over a graph of n.
func (s *solver) reset(n, b int) {
	if len(s.inBlock) < n {
		s.inBlock = make([]int32, n)
		for i := range s.inBlock {
			s.inBlock[i] = -1
		}
	}
	s.preds = growNested(s.preds, b)
	for i := range s.preds {
		s.preds[i] = s.preds[i][:0]
	}
	s.states = s.states[:0]
	s.arena = s.arena[:0]
	s.words = (b + 63) / 64
	s.filled = 0
	// Start small; rehash doubles as the state population grows.
	const initialIndex = 256
	if cap(s.index) >= initialIndex {
		s.index = s.index[:initialIndex]
		clear(s.index)
	} else {
		s.index = make([]int32, initialIndex)
	}
	s.bucket = growNested(s.bucket, b+1)
	for i := range s.bucket {
		s.bucket[i] = s.bucket[i][:0]
	}
}

// growNested resizes a slice of slices, keeping the inner backing arrays
// of reused entries. New entries start nil.
func growNested[T any](buf [][]T, n int) [][]T {
	if cap(buf) < n {
		next := make([][]T, n)
		copy(next, buf)
		return next
	}
	return buf[:n]
}

// solveBlock runs the IOS dynamic program on one block and returns the
// optimal (or beam-pruned) stage decomposition in execution order. The
// returned stage slices are freshly allocated (the solver's arena is
// reused by the next block).
//
// solveBlock (not Schedule) is the hot-path root: the surrounding block
// partition (Blocks) legitimately allocates its one-shot reachability
// bitsets, while everything below runs once per DP state transition.
//
//lint:hotpath
func (s *solver) solveBlock(g *graph.Graph, m cost.Model, block []graph.OpID, opt Options) ([][]graph.OpID, error) {
	b := len(block)
	if b == 1 {
		return [][]graph.OpID{{block[0]}}, nil
	}
	if b > maxBlockOps {
		return nil, fmt.Errorf("ios: block of %d operators exceeds the %d-operator limit", b, maxBlockOps)
	}
	s.reset(g.NumOps(), b)
	for i, v := range block {
		s.inBlock[v] = int32(i)
	}
	// Local predecessor lists (only intra-block edges constrain the DP;
	// inter-block inputs come from earlier blocks, already complete).
	// inBlock entries are restored to -1 before returning so the next
	// block (or the next graph) starts clean.
	defer func() {
		for _, v := range block {
			s.inBlock[v] = -1
		}
	}()
	// The collect callback is created once for the whole block sweep; li
	// carries the current local index into it.
	var li int
	collect := func(u graph.OpID, _ float64) {
		if j := s.inBlock[u]; j >= 0 {
			s.preds[li] = append(s.preds[li], int(j))
		}
	}
	for i, v := range block {
		li = i
		g.Preds(v, collect)
	}
	beam := opt.Beam
	if b <= opt.ExactLimit {
		beam = 0 // exact within small blocks
	}

	// State 0 is the empty start state.
	s.states = append(s.states, dpState{prev: -1})
	s.insert(0)
	// Buckets by number of scheduled operators, processed in order; every
	// transition strictly increases the count, so each bucket is final
	// when processed.
	s.bucket[0] = append(s.bucket[0], 0)

	// probe is the scratch operator list handed to the cost model for
	// every enumerated candidate. No cost.Model implementation retains
	// the slice (GraphModel is pure; CostTable keys by value), so one
	// buffer serves the whole enumeration and the members are interned
	// into the arena only when a candidate actually becomes (or improves)
	// a DP state's stage.
	if cap(s.probe) < opt.MaxStage {
		s.probe = make([]graph.OpID, 0, opt.MaxStage)
	}
	if cap(s.stage) < opt.MaxStage {
		s.stage = make([]int, 0, opt.MaxStage)
	}
	// curSet/curCost are the expanding state's fields, copied out of the
	// slab so the visit closure (allocated once per block) never holds a
	// pointer into the growable slab.
	var curSet bitset
	var curCost units.Millis
	curIdx := int32(0)
	visit := func(stage []int) {
		nset := curSet
		s.probe = s.probe[:0]
		for _, li := range stage {
			nset.set(li)
			s.probe = append(s.probe, block[li])
		}
		t := m.StageTime(s.probe)
		ncost := curCost + t
		if oi := s.find(&nset); oi >= 0 {
			old := &s.states[oi]
			if ncost < old.cost {
				old.cost = ncost
				old.prev = curIdx
				// Stage-slice interning: overwrite the state's arena
				// range in place when the improved stage fits (ranges
				// are exclusive per state), append a fresh range only
				// when it grew. The old code allocated a copy on every
				// better-cost hit.
				if int32(len(s.probe)) <= old.stageLen {
					copy(s.arena[old.stageOff:], s.probe)
					old.stageLen = int32(len(s.probe))
				} else {
					old.stageOff, old.stageLen = s.internStage(s.probe)
				}
			}
			return
		}
		off, ln := s.internStage(s.probe)
		ns := dpState{
			set:      nset,
			cost:     ncost,
			prev:     curIdx,
			stageOff: off,
			stageLen: ln,
			count:    s.states[curIdx].count + int32(len(stage)),
		}
		s.states = append(s.states, ns)
		si := int32(len(s.states) - 1)
		s.insert(si)
		s.bucket[ns.count] = append(s.bucket[ns.count], si)
	}

	for c := 0; c < b; c++ {
		bucket := s.bucket[c]
		if beam > 0 && len(bucket) > beam {
			s.sorter.states, s.sorter.bucket = s.states, bucket
			sort.Sort(&s.sorter)
			bucket = bucket[:beam]
		}
		for _, si := range bucket {
			st := &s.states[si]
			s.front = frontierOf(st.set, s.preds[:b], b, s.front[:0])
			if len(s.front) == 0 {
				return nil, fmt.Errorf("ios: empty frontier with %d/%d scheduled (cyclic block?)", c, b)
			}
			fr := s.front
			if len(fr) > opt.PruneWindow {
				fr = fr[:opt.PruneWindow]
			}
			curSet, curCost, curIdx = st.set, st.cost, si
			s.stage = enumStages(fr, opt.MaxStage, s.stage[:0], 0, visit)
		}
	}

	var full bitset
	for i := 0; i < b; i++ {
		full.set(i)
	}
	end := s.find(&full)
	if end < 0 {
		return nil, fmt.Errorf("ios: dynamic program did not reach the full state (beam too narrow?)")
	}
	// Walk predecessors back to the empty state twice: once to count the
	// stages, once to copy each stage out of the arena (which is recycled
	// for the next block) directly into its execution-order slot.
	count := 0
	for cur := end; s.states[cur].stageLen > 0; {
		if s.states[cur].prev < 0 {
			return nil, fmt.Errorf("ios: broken DP back-pointer")
		}
		count++
		cur = s.states[cur].prev
	}
	out := make([][]graph.OpID, count)
	i := count - 1
	for cur := end; s.states[cur].stageLen > 0; i-- {
		st := &s.states[cur]
		out[i] = append([]graph.OpID(nil), s.arena[st.stageOff:st.stageOff+st.stageLen]...)
		cur = st.prev
	}
	return out, nil
}

func less(a, b bitset) bool {
	for i := 0; i < len(a); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// frontierOf appends to out the local indices whose intra-block
// predecessors are all members of set and which are not members
// themselves, in block (descending-priority) order.
func frontierOf(set bitset, preds [][]int, b int, out []int) []int {
	for i := 0; i < b; i++ {
		if set.has(i) {
			continue
		}
		ready := true
		for _, p := range preds[i] {
			if !set.has(p) {
				ready = false
				break
			}
		}
		if ready {
			out = append(out, i)
		}
	}
	return out
}

// enumStages calls fn with every non-empty subset of frontier[i:]
// extending the current stage prefix, capped at maxStage members. The
// stage slice is reused across the recursion (and returned so appends
// propagate); fn must copy what it keeps — solveBlock translates each
// candidate into its probe buffer immediately. A plain recursive function
// (not a closure pair) so the enumeration itself performs no allocation.
func enumStages(frontier []int, maxStage int, stage []int, i int, fn func(stage []int)) []int {
	if len(stage) > 0 {
		fn(stage)
	}
	if i >= len(frontier) || len(stage) >= maxStage {
		return stage
	}
	for j := i; j < len(frontier); j++ {
		stage = append(stage, frontier[j])
		stage = enumStages(frontier, maxStage, stage, j+1, fn)
		stage = stage[:len(stage)-1]
	}
	return stage
}
