package ios

import (
	"fmt"
	"math"
	"sort"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/units"
)

// maxBlockOps bounds the number of operators one DP block may hold: the
// bitset state is a fixed [8]uint64 so it can serve directly as a map key
// without per-state string allocation. 512 operators per block is far
// beyond anything the dynamic program could enumerate in practice anyway.
const maxBlockOps = 8 * 64

// bitset is a fixed-width set over a block's local operator indices,
// usable directly as a map key.
type bitset [8]uint64

func (b *bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b *bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// dpState is one DP node: a prefix-closed set of scheduled block operators.
type dpState struct {
	set   bitset
	cost  units.Millis
	prev  bitset       // predecessor state
	stage []graph.OpID // stage taken to reach this state (graph IDs)
	count int          // popcount of set
}

// solveBlock runs the IOS dynamic program on one block and returns the
// optimal (or beam-pruned) stage decomposition in execution order.
func solveBlock(g *graph.Graph, m cost.Model, block []graph.OpID, opt Options) ([][]graph.OpID, error) {
	b := len(block)
	if b == 1 {
		return [][]graph.OpID{{block[0]}}, nil
	}
	if b > maxBlockOps {
		return nil, fmt.Errorf("ios: block of %d operators exceeds the %d-operator limit", b, maxBlockOps)
	}
	inBlock := make(map[graph.OpID]int, b)
	for i, v := range block {
		inBlock[v] = i
	}
	// Local predecessor lists (only intra-block edges constrain the DP;
	// inter-block inputs come from earlier blocks, already complete).
	preds := make([][]int, b)
	for i, v := range block {
		g.Preds(v, func(u graph.OpID, _ float64) {
			if j, ok := inBlock[u]; ok {
				preds[i] = append(preds[i], j)
			}
		})
	}
	beam := opt.Beam
	if b <= opt.ExactLimit {
		beam = 0 // exact within small blocks
	}

	start := &dpState{}
	states := map[bitset]*dpState{start.set: start}
	// Buckets by number of scheduled operators, processed in order; every
	// transition strictly increases the count, so each bucket is final
	// when processed.
	buckets := make([][]*dpState, b+1)
	buckets[0] = []*dpState{start}

	// probe is the scratch operator list handed to the cost model for
	// every enumerated candidate. No cost.Model implementation retains
	// the slice (GraphModel is pure; CostTable keys by value), so one
	// buffer serves the whole enumeration and a fresh copy is made only
	// when a candidate actually becomes a DP state's stage.
	var frontier []int
	probe := make([]graph.OpID, 0, opt.MaxStage)
	for c := 0; c < b; c++ {
		bucket := buckets[c]
		if beam > 0 && len(bucket) > beam {
			sort.Slice(bucket, func(i, j int) bool {
				// Exact IEEE inequality keeps this tie-break a strict
				// weak order; an epsilon compare would not.
				if bucket[i].cost != bucket[j].cost { //lint:floatexact
					return bucket[i].cost < bucket[j].cost
				}
				return less(bucket[i].set, bucket[j].set)
			})
			bucket = bucket[:beam]
		}
		for _, st := range bucket {
			frontier = frontierOf(st.set, preds, b, frontier[:0])
			if len(frontier) == 0 {
				return nil, fmt.Errorf("ios: empty frontier with %d/%d scheduled (cyclic block?)", c, b)
			}
			fr := frontier
			if len(fr) > opt.PruneWindow {
				fr = fr[:opt.PruneWindow]
			}
			enumerateStages(fr, opt.MaxStage, func(stage []int) {
				nset := st.set
				probe = probe[:0]
				for _, li := range stage {
					nset.set(li)
					probe = append(probe, block[li])
				}
				t := m.StageTime(probe)
				ncost := st.cost + t
				if old, ok := states[nset]; ok {
					if ncost < old.cost {
						old.cost = ncost
						old.prev = st.set
						old.stage = append([]graph.OpID(nil), probe...)
					}
					return
				}
				ops := append([]graph.OpID(nil), probe...)
				ns := &dpState{set: nset, cost: ncost, prev: st.set, stage: ops, count: c + len(stage)}
				states[nset] = ns
				buckets[ns.count] = append(buckets[ns.count], ns)
			})
		}
	}

	var full bitset
	for i := 0; i < b; i++ {
		full.set(i)
	}
	end, ok := states[full]
	if !ok || math.IsInf(float64(end.cost), 1) {
		return nil, fmt.Errorf("ios: dynamic program did not reach the full state (beam too narrow?)")
	}
	// Walk predecessors back to the empty state.
	var rev [][]graph.OpID
	for cur := end; len(cur.stage) > 0; {
		rev = append(rev, cur.stage)
		nxt, ok := states[cur.prev]
		if !ok {
			return nil, fmt.Errorf("ios: broken DP back-pointer")
		}
		cur = nxt
	}
	out := make([][]graph.OpID, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out, nil
}

func less(a, b bitset) bool {
	for i := 0; i < len(a); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// frontierOf appends to out the local indices whose intra-block
// predecessors are all members of set and which are not members
// themselves, in block (descending-priority) order.
func frontierOf(set bitset, preds [][]int, b int, out []int) []int {
	for i := 0; i < b; i++ {
		if set.has(i) {
			continue
		}
		ready := true
		for _, p := range preds[i] {
			if !set.has(p) {
				ready = false
				break
			}
		}
		if ready {
			out = append(out, i)
		}
	}
	return out
}

// enumerateStages calls fn with every non-empty subset of frontier with at
// most maxStage members. The subset slice is reused; fn must copy what it
// keeps (solveBlock translates it into its probe buffer immediately).
func enumerateStages(frontier []int, maxStage int, fn func(stage []int)) {
	r := len(frontier)
	stage := make([]int, 0, maxStage)
	var rec func(i int)
	rec = func(i int) {
		if len(stage) > 0 {
			fn(stage)
		}
		if i >= r || len(stage) >= maxStage {
			return
		}
		for j := i; j < r; j++ {
			stage = append(stage, frontier[j])
			rec(j + 1)
			stage = stage[:len(stage)-1]
		}
	}
	rec(0)
}
