package ios

import (
	"fmt"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/units"
)

// maxBlockOps bounds the number of operators one DP block may hold: the
// bitset state is a fixed [8]uint64 so it can serve directly as a hash key
// without per-state string allocation. 512 operators per block is far
// beyond anything the dynamic program could enumerate in practice anyway.
const maxBlockOps = 8 * 64

// bitset is a fixed-width set over a block's local operator indices,
// comparable by value.
type bitset [8]uint64

func (b *bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b *bitset) unset(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b *bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// zobrist holds one random-looking 64-bit key per local operator index.
// A state's hash is the XOR of its members' keys, so the DP maintains it
// incrementally in O(1) per set/unset along the subset-enumeration DFS
// instead of re-mixing the whole bitset per candidate. The keys come from
// a splitmix64 stream over the index — fixed constants that hash bitsets
// and never feed an RNG, hence the seedflow suppressions. The hash only
// picks open-addressing probe positions (lookups compare full bitsets),
// so the choice of constants cannot affect any result.
var zobrist [maxBlockOps]uint64

func init() {
	x := uint64(0)
	for i := range zobrist {
		x += 0x9e3779b97f4a7c15 //lint:seedflow (hash mixing, not seed derivation)
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9 //lint:seedflow (hash mixing, not seed derivation)
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb //lint:seedflow (hash mixing, not seed derivation)
		zobrist[i] = z ^ (z >> 31)
	}
}

// dpState is one DP node: a prefix-closed set of scheduled block operators.
// Pending states live in their count bucket's slab and are indexed there by
// open addressing on the incremental hash; once expanded, a state is copied
// to the solver's done slab, and prev always names a done index — a state's
// predecessor is necessarily expanded before the state itself. Nothing in a
// dpState points into the heap, so growing either slab moves states without
// invalidating anything.
type dpState struct {
	set      bitset
	hash     uint64       // XOR of zobrist keys of the members
	cost     units.Millis // best known dp[S]
	work     units.Millis // Σ t·u along the best path (fast path; bounds pruning)
	prev     int32        // done-slab index of the predecessor (-1 for the start)
	stageOff int32        // stage range: pending arena while pending, done arena after
	stageLen int32
	count    int32 // popcount of set
}

// pending is the storage of one in-flight operator count: the states that
// have been created but not yet expanded, their interned stages, and the
// open-addressing index over them (0 = empty, else state index + 1).
//
// Transitions strictly increase the count by at most MaxStage, so at most
// MaxStage+1 counts are ever live at once: the one being expanded and the
// MaxStage ahead of it. The solver keeps a ring of that many pending
// buckets and recycles each one wholesale after its count is processed —
// the old single-slab layout retained every state ever created, which made
// a 200-op beam solve touch hundreds of megabytes; the ring keeps the
// working set to the live window.
type pending struct {
	states []dpState
	arena  []graph.OpID
	index  []int32
	filled int
}

// find returns the bucket index of the state with the given set, or -1.
func (p *pending) find(hash uint64, set *bitset) int32 {
	mask := uint64(len(p.index) - 1)
	for i := hash & mask; ; i = (i + 1) & mask {
		e := p.index[i]
		if e == 0 {
			return -1
		}
		if p.states[e-1].set == *set {
			return e - 1
		}
	}
}

// insert records the (already appended) state at bucket index si in the
// index, growing and rehashing at 3/4 load.
func (p *pending) insert(si int32) {
	if (p.filled+1)*4 >= len(p.index)*3 {
		p.rehash(len(p.index) * 2)
	}
	mask := uint64(len(p.index) - 1)
	i := p.states[si].hash & mask
	for p.index[i] != 0 {
		i = (i + 1) & mask
	}
	p.index[i] = si + 1
	p.filled++
}

func (p *pending) rehash(capacity int) {
	if cap(p.index) >= capacity {
		p.index = p.index[:capacity]
		clear(p.index)
	} else {
		p.index = make([]int32, capacity)
	}
	mask := uint64(capacity - 1)
	for si := range p.states {
		i := p.states[si].hash & mask
		for p.index[i] != 0 {
			i = (i + 1) & mask
		}
		p.index[i] = int32(si) + 1
	}
}

// recycle empties the bucket for reuse by a later count, keeping every
// backing array.
func (p *pending) recycle() {
	p.states = p.states[:0]
	p.arena = p.arena[:0]
	p.filled = 0
	clear(p.index)
}

// stateLess orders two bucket states by (cost, bitset): the beam
// selection's total order. Distinct states have distinct bitsets, so the
// order is strict and the selected set is unique.
func (p *pending) stateLess(a, b int32) bool {
	x, y := &p.states[a], &p.states[b]
	// Exact IEEE inequality keeps this tie-break a strict weak order; an
	// epsilon compare would not.
	if x.cost != y.cost { //lint:floatexact comparator tie-break: epsilon would break the strict weak order
		return x.cost < y.cost
	}
	return less(x.set, y.set)
}

// solver holds every scratch structure of the block dynamic program so one
// Schedule call (or one SolveSequence caller) reuses the allocations across
// blocks. The zero value is ready. Per-block context (the block, the model,
// the filled options) lives in fields so the enumeration can recurse
// through methods without per-block closures.
type solver struct {
	inBlock []int32 // graph OpID -> local block index, -1 outside
	preds   [][]int // local intra-block predecessor lists

	ring      []pending    // pending buckets, slot = count % (MaxStage+1)
	done      []dpState    // expanded states, in expansion order
	doneArena []graph.OpID // stage storage of done states

	front  []int          // frontier scratch
	stage  []int          // current candidate stage (local indices)
	probe  []graph.OpID   // candidate stage as graph IDs (generic path)
	keep   []int32        // beam selection scratch
	succs  [][]int        // local successor lists (chain bounds)
	tails  []units.Millis // longest remaining dependency chain per local op
	keyBuf []byte         // dpcache signature scratch (cache.go)

	// Per-block context.
	block    []graph.OpID
	m        cost.Model
	items    []cost.Item     // per local op (fast path); valid when fast
	ct       cost.Contention // item fold (fast path)
	fast     bool            // m implements cost.ItemModel
	maxStage int
	window   int

	// DFS-incremental candidate state: nset/nhash track curSet plus the
	// members of s.stage; cur* are the expanding state's fields, copied
	// out of the bucket so methods never hold pointers into growable
	// slabs.
	nset     bitset
	nhash    uint64
	curCost  units.Millis
	curWork  units.Millis
	curDone  int32
	curCount int32

	// Incumbent pruning (fast path only; see solveBlock).
	prune     bool         // incumbent threshold active
	exactLB   bool         // lower-bound pruning active (exact mode only)
	haveTails bool         // tails valid (block order was topological)
	thr       units.Millis // incumbent cost threshold
	totalWork units.Millis // Σ t·u over the whole block
	didPrune  bool         // at least one state was actually discarded
}

// ensureInBlock sizes the OpID -> local-index map for a graph of n
// operators, every entry -1 (callers restore what they set).
func (s *solver) ensureInBlock(n int) {
	if len(s.inBlock) < n {
		s.inBlock = make([]int32, n)
		for i := range s.inBlock {
			s.inBlock[i] = -1
		}
	}
}

// reset prepares the solver for a block of b operators over a graph of n.
func (s *solver) reset(n, b int, opt Options) {
	s.ensureInBlock(n)
	s.preds = growNested(s.preds, b)
	for i := range s.preds {
		s.preds[i] = s.preds[i][:0]
	}
	ringLen := opt.MaxStage + 1
	if cap(s.ring) < ringLen {
		next := make([]pending, ringLen)
		copy(next, s.ring)
		s.ring = next
	} else {
		s.ring = s.ring[:ringLen]
	}
	// Start each index small; rehash doubles as a count's population grows,
	// and recycle keeps whatever size a slot reached.
	const initialIndex = 256
	for i := range s.ring {
		pd := &s.ring[i]
		pd.states = pd.states[:0]
		pd.arena = pd.arena[:0]
		pd.filled = 0
		if cap(pd.index) < initialIndex {
			pd.index = make([]int32, initialIndex)
		} else {
			clear(pd.index)
		}
	}
	s.done = s.done[:0]
	s.doneArena = s.doneArena[:0]
	s.maxStage = opt.MaxStage
	s.window = opt.PruneWindow
	s.prune = false
	s.exactLB = false
	s.haveTails = false
	s.didPrune = false
}

// growNested resizes a slice of slices, keeping the inner backing arrays
// of reused entries. New entries start nil.
func growNested[T any](buf [][]T, n int) [][]T {
	if cap(buf) < n {
		next := make([][]T, n)
		copy(next, buf)
		return next
	}
	return buf[:n]
}

// transition records the candidate stage in s.stage as a DP transition
// from the current expanding state: dp[S∪T] = min(dp[S∪T], dp[S] + t).
// The target state's set and hash are already in nset/nhash (maintained by
// the enumeration DFS); stageWork is the stage's Σ t·u (fast path; 0 on
// the generic path, which never reads work).
func (s *solver) transition(t, stageWork units.Millis) {
	ncost := s.curCost + t
	ncount := s.curCount + int32(len(s.stage))
	pd := &s.ring[int(ncount)%len(s.ring)]
	if oi := pd.find(s.nhash, &s.nset); oi >= 0 {
		old := &pd.states[oi]
		if ncost < old.cost {
			old.cost = ncost
			old.work = s.curWork + stageWork
			old.prev = s.curDone
			// Stage-slice interning: overwrite the state's arena range in
			// place when the improved stage fits (ranges are exclusive per
			// state), append a fresh range only when it grew.
			if int32(len(s.stage)) <= old.stageLen {
				for k, li := range s.stage {
					pd.arena[int(old.stageOff)+k] = s.block[li]
				}
			} else {
				old.stageOff = int32(len(pd.arena))
				for _, li := range s.stage {
					pd.arena = append(pd.arena, s.block[li])
				}
			}
			old.stageLen = int32(len(s.stage))
		}
		return
	}
	off := int32(len(pd.arena))
	for _, li := range s.stage {
		pd.arena = append(pd.arena, s.block[li])
	}
	pd.states = append(pd.states, dpState{
		set:      s.nset,
		hash:     s.nhash,
		cost:     ncost,
		work:     s.curWork + stageWork,
		prev:     s.curDone,
		stageOff: off,
		stageLen: int32(len(s.stage)),
		count:    ncount,
	})
	pd.insert(int32(len(pd.states) - 1))
}

// enumFast visits every non-empty subset of fr[i:] extending the current
// stage prefix (capped at maxStage members), pricing each candidate by
// folding the block's items through the contention model incrementally:
// the aggregates ride the recursion as arguments, so extending a stage by
// one operator costs one accumulate instead of re-pricing the whole
// candidate. The visit order is identical to the generic enumeration.
func (s *solver) enumFast(fr []int, i int, maxT, work units.Millis, util float64) {
	for j := i; j < len(fr); j++ {
		li := fr[j]
		it := s.items[li]
		nmaxT, nwork, nutil := s.ct.Accumulate(maxT, work, util, it.Time, it.Util)
		s.nset.set(li)
		s.nhash ^= zobrist[li]
		s.stage = append(s.stage, li)
		var t units.Millis
		if len(s.stage) == 1 {
			// Bit-identical to the fold: with util in (0, 1] after
			// clamping, max(t, t·u) is t and no oversubscription scale
			// fires. Matches GraphModel.StageTime's singleton case.
			t = it.Time
		} else {
			t = s.ct.Combine(nmaxT, nwork, nutil)
		}
		s.transition(t, nwork)
		if len(s.stage) < s.maxStage && j+1 < len(fr) {
			s.enumFast(fr, j+1, nmaxT, nwork, nutil)
		}
		s.stage = s.stage[:len(s.stage)-1]
		s.nhash ^= zobrist[li]
		s.nset.unset(li)
	}
}

// enumGeneric is enumFast for models outside the ItemModel contract: each
// candidate is priced by m.StageTime on the incrementally maintained probe
// slice. The probe contents, call set and call order are identical to the
// pre-rework DP, which keeps probe-counting models (profile.CostTable and
// the Fig. 14 accounting built on it) byte-identical.
func (s *solver) enumGeneric(fr []int, i int) {
	for j := i; j < len(fr); j++ {
		li := fr[j]
		s.nset.set(li)
		s.nhash ^= zobrist[li]
		s.stage = append(s.stage, li)
		s.probe = append(s.probe, s.block[li])
		s.transition(s.m.StageTime(s.probe), 0)
		if len(s.stage) < s.maxStage && j+1 < len(fr) {
			s.enumGeneric(fr, j+1)
		}
		s.probe = s.probe[:len(s.probe)-1]
		s.stage = s.stage[:len(s.stage)-1]
		s.nhash ^= zobrist[li]
		s.nset.unset(li)
	}
}

// dive runs one greedy completion from the empty state: every step
// schedules the first min(width, len) frontier operators as one stage.
// Each such stage is a candidate the DP enumeration itself generates
// (width never exceeds MaxStage or PruneWindow), and each stage is priced
// with the DP's own arithmetic, so the returned total is the exact cost
// of a reachable DP path — a sound incumbent. Reports ok=false when the
// dive dead-ends (a cyclic block), which disables pruning so the DP
// surfaces the same error it always has.
func (s *solver) dive(b, width int) (units.Millis, bool) {
	var set bitset
	var total units.Millis
	for scheduled := 0; scheduled < b; {
		s.front = frontierOf(set, s.preds[:b], b, s.front[:0])
		if len(s.front) == 0 {
			return 0, false
		}
		fr := s.front
		if len(fr) > width {
			fr = fr[:width]
		}
		var maxT, work units.Millis
		var util float64
		for _, li := range fr {
			it := s.items[li]
			maxT, work, util = s.ct.Accumulate(maxT, work, util, it.Time, it.Util)
			set.set(li)
		}
		if len(fr) == 1 {
			total += s.items[fr[0]].Time
		} else {
			total += s.ct.Combine(maxT, work, util)
		}
		scheduled += len(fr)
	}
	return total, true
}

// prepareBounds computes the per-operator completion lower bounds used by
// exact-mode pruning: tails[i] is the longest dependency chain starting
// at i (every chain member occupies a distinct later stage, and a stage
// costs at least its longest member), and totalWork is the block's Σ t·u
// (a stage costs at least its utilization-weighted work). Chain bounds
// need the local order to be topological — true for Blocks output and
// every schedule-derived sequence — and are skipped (not faked) when a
// caller hands SolveSequence something stranger.
func (s *solver) prepareBounds(b int) {
	topo := true
	for i := 0; i < b && topo; i++ {
		for _, p := range s.preds[i] {
			if p >= i {
				topo = false
				break
			}
		}
	}
	if topo {
		s.succs = growNested(s.succs, b)
		for i := range s.succs {
			s.succs[i] = s.succs[i][:0]
		}
		for i := 0; i < b; i++ {
			for _, p := range s.preds[i] {
				s.succs[p] = append(s.succs[p], i)
			}
		}
		if cap(s.tails) < b {
			s.tails = make([]units.Millis, b)
		}
		s.tails = s.tails[:b]
		for i := b - 1; i >= 0; i-- {
			var best units.Millis
			for _, j := range s.succs[i] {
				if s.tails[j] > best {
					best = s.tails[j]
				}
			}
			s.tails[i] = s.items[i].Time + best
		}
		s.haveTails = true
	}
	var maxT, work units.Millis
	var util float64
	for _, it := range s.items {
		maxT, work, util = s.ct.Accumulate(maxT, work, util, it.Time, it.Util)
	}
	s.totalWork = work
}

// lowerBound returns a completion lower bound for the expanding state:
// the longest remaining dependency chain (rooted at a frontier operator —
// every unscheduled operator sits below one) and the remaining
// utilization-weighted work, whichever is larger. Both bounds are
// "consistent" — they never exceed the true remaining cost by more than
// float fold-order noise, which the incumbent margin absorbs.
func (s *solver) lowerBound(stWork units.Millis) units.Millis {
	var lb units.Millis
	if s.haveTails {
		for _, f := range s.front {
			if s.tails[f] > lb {
				lb = s.tails[f]
			}
		}
	}
	if rem := s.totalWork - stWork; rem > lb {
		lb = rem
	}
	return lb
}

// selectBeam picks the beam cheapest states of the bucket under the
// (cost, bitset) total order and returns their indices in ascending
// order — exactly the prefix a full sort-and-trim would keep, found with
// a bounded max-heap in O(n log beam) instead of sorting the whole
// bucket.
func (s *solver) selectBeam(pd *pending, beam int) []int32 {
	s.keep = s.keep[:0]
	for i := 0; i < beam; i++ {
		s.keep = append(s.keep, int32(i))
	}
	for i := beam/2 - 1; i >= 0; i-- {
		siftDown(pd, s.keep, i)
	}
	for i := beam; i < len(pd.states); i++ {
		if pd.stateLess(int32(i), s.keep[0]) {
			s.keep[0] = int32(i)
			siftDown(pd, s.keep, 0)
		}
	}
	for n := len(s.keep) - 1; n > 0; n-- {
		s.keep[0], s.keep[n] = s.keep[n], s.keep[0]
		siftDown(pd, s.keep[:n], 0)
	}
	return s.keep
}

// siftDown restores the max-heap property (largest kept state on top,
// under pending.stateLess) at position i of h.
func siftDown(pd *pending, h []int32, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		j := l
		if r := l + 1; r < len(h) && pd.stateLess(h[l], h[r]) {
			j = r
		}
		if !pd.stateLess(h[i], h[j]) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// solveBlock runs the IOS dynamic program on one block and returns the
// optimal (or beam-pruned) stage decomposition in execution order. The
// returned stage slices are freshly allocated (the solver's storage is
// reused by the next block).
//
// For cost models satisfying the ItemModel contract the DP additionally
// prunes with an incumbent bound: two greedy dives (stage width
// min(MaxStage, PruneWindow), and width 1) provide an exact reachable-path
// cost, and any state whose own cost — plus, in exact mode, a completion
// lower bound — exceeds that incumbent (with a 1e-9 relative margin
// absorbing float fold-order noise) is discarded unexpanded. Pruning is
// exact, not approximate: a discarded state provably cannot change the
// final (cost, back-pointer, stage) chain, and as a belt-and-braces
// guarantee the solve reruns itself unpruned in the (never yet observed)
// case that the pruned run finishes above the incumbent threshold. See
// DESIGN.md §15 for the full invariant argument.
//
// solveBlock (not Schedule) is the hot-path root: the surrounding block
// partition (Blocks) legitimately allocates its one-shot reachability
// bitsets, while everything below runs once per DP state transition.
//
//lint:hotpath
func (s *solver) solveBlock(g *graph.Graph, m cost.Model, block []graph.OpID, opt Options) ([][]graph.OpID, error) {
	b := len(block)
	if b == 1 {
		return [][]graph.OpID{{block[0]}}, nil
	}
	if b > maxBlockOps {
		return nil, fmt.Errorf("ios: block of %d operators exceeds the %d-operator limit", b, maxBlockOps)
	}
	s.reset(g.NumOps(), b, opt)
	s.block, s.m = block, m
	for i, v := range block {
		s.inBlock[v] = int32(i)
	}
	// Local predecessor lists (only intra-block edges constrain the DP;
	// inter-block inputs come from earlier blocks, already complete).
	// inBlock entries are restored to -1 before returning so the next
	// block (or the next graph) starts clean.
	defer func() {
		for _, v := range block {
			s.inBlock[v] = -1
		}
	}()
	// The collect callback is created once for the whole block sweep; li
	// carries the current local index into it.
	var li int
	collect := func(u graph.OpID, _ float64) {
		if j := s.inBlock[u]; j >= 0 {
			s.preds[li] = append(s.preds[li], int(j))
		}
	}
	for i, v := range block {
		li = i
		g.Preds(v, collect)
	}
	beam := opt.Beam
	if b <= opt.ExactLimit {
		beam = 0 // exact within small blocks
	}

	im, fast := m.(cost.ItemModel)
	s.fast = fast
	if fast {
		s.ct = im.Contention()
		s.items = s.items[:0]
		for _, v := range block {
			s.items = append(s.items, im.StageItem(v))
		}
		if !opt.NoPrune {
			// Incumbent pruning. Restricted to the item fast path: a
			// greedy dive against a probe-counting model would add probes
			// the unpruned DP never made and corrupt the Fig. 14
			// profiling accounting.
			w := min(opt.MaxStage, opt.PruneWindow)
			inc1, ok1 := s.dive(b, w)
			inc2, ok2 := s.dive(b, 1)
			if ok1 && ok2 {
				s.thr = min(inc1, inc2).Scale(1 + 1e-9)
				s.prune = true
				if beam == 0 {
					// Lower-bound pruning discards live states and is only
					// result-invariant when every state is otherwise
					// expanded — i.e. in exact mode. Under a beam it could
					// change which states the beam keeps, so beam mode
					// prunes on accumulated cost alone.
					s.exactLB = true
					s.prepareBounds(b)
				}
			}
		}
	}

	// State 0 is the empty start state; buckets are processed in count
	// order, and every transition strictly increases the count, so each
	// bucket is final when its turn comes.
	ring0 := &s.ring[0]
	ring0.states = append(ring0.states, dpState{prev: -1})
	ring0.insert(0)

	if cap(s.probe) < opt.MaxStage {
		s.probe = make([]graph.OpID, 0, opt.MaxStage)
	}
	s.probe = s.probe[:0]
	if cap(s.stage) < opt.MaxStage {
		s.stage = make([]int, 0, opt.MaxStage)
	}
	s.stage = s.stage[:0]

	for c := 0; c < b; c++ {
		pd := &s.ring[c%len(s.ring)]
		var kept []int32
		n := len(pd.states)
		if beam > 0 && n > beam {
			kept = s.selectBeam(pd, beam)
			n = len(kept)
		}
		for k := 0; k < n; k++ {
			si := int32(k)
			if kept != nil {
				si = kept[k]
			}
			st := &pd.states[si]
			if s.prune && st.cost > s.thr {
				// Already above the best known completion: no descendant
				// can improve any state the final schedule passes through.
				s.didPrune = true
				continue
			}
			s.front = frontierOf(st.set, s.preds[:b], b, s.front[:0])
			if len(s.front) == 0 {
				return nil, fmt.Errorf("ios: empty frontier with %d/%d scheduled (cyclic block?)", c, b)
			}
			if s.exactLB && st.cost+s.lowerBound(st.work) > s.thr {
				s.didPrune = true
				continue
			}
			// Move the expanding state to the done slab: its bucket is
			// recycled after this count, but back-pointers must survive.
			di := int32(len(s.done))
			doneOff := int32(len(s.doneArena))
			s.doneArena = append(s.doneArena, pd.arena[st.stageOff:st.stageOff+st.stageLen]...)
			ds := *st
			ds.stageOff = doneOff
			s.done = append(s.done, ds)

			s.curCost, s.curWork, s.curDone, s.curCount = st.cost, st.work, di, int32(c)
			s.nset = st.set
			s.nhash = st.hash
			fr := s.front
			if len(fr) > opt.PruneWindow {
				fr = fr[:opt.PruneWindow]
			}
			if fast {
				s.enumFast(fr, 0, 0, 0, 0)
			} else {
				s.enumGeneric(fr, 0)
			}
		}
		pd.recycle()
	}

	var full bitset
	fh := uint64(0)
	for i := 0; i < b; i++ {
		full.set(i)
		fh ^= zobrist[i]
	}
	fullPd := &s.ring[b%len(s.ring)]
	end := fullPd.find(fh, &full)
	if s.didPrune && (end < 0 || fullPd.states[end].cost > s.thr) {
		// The pruned search finished above its own incumbent threshold —
		// only possible when a beam cut every path below the incumbent, in
		// which case the pruned and unpruned searches may diverge. Solve
		// again without pruning so the result is identical to the
		// pre-pruning DP by construction.
		opt.NoPrune = true
		return s.solveBlock(g, m, block, opt)
	}
	if end < 0 {
		return nil, fmt.Errorf("ios: dynamic program did not reach the full state (beam too narrow?)")
	}
	// Walk predecessors back to the empty state twice: once to count the
	// stages, once to copy each stage out of the arenas directly into its
	// execution-order slot. The final state's stage still lives in its
	// pending bucket; every earlier stage lives in the done arena.
	count := 1 // the full state's own stage
	for cur := fullPd.states[end].prev; ; count++ {
		if cur < 0 {
			return nil, fmt.Errorf("ios: broken DP back-pointer")
		}
		d := &s.done[cur]
		if d.stageLen == 0 {
			break // the empty start state
		}
		cur = d.prev
	}
	out := make([][]graph.OpID, count)
	i := count - 1
	{
		st := &fullPd.states[end]
		out[i] = append([]graph.OpID(nil), fullPd.arena[st.stageOff:st.stageOff+st.stageLen]...)
		i--
	}
	for cur := fullPd.states[end].prev; cur >= 0 && s.done[cur].stageLen > 0; i-- {
		d := &s.done[cur]
		out[i] = append([]graph.OpID(nil), s.doneArena[d.stageOff:d.stageOff+d.stageLen]...)
		cur = d.prev
	}
	return out, nil
}

func less(a, b bitset) bool {
	for i := 0; i < len(a); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// frontierOf appends to out the local indices whose intra-block
// predecessors are all members of set and which are not members
// themselves, in block (descending-priority) order.
func frontierOf(set bitset, preds [][]int, b int, out []int) []int {
	for i := 0; i < b; i++ {
		if set.has(i) {
			continue
		}
		ready := true
		for _, p := range preds[i] {
			if !set.has(p) {
				ready = false
				break
			}
		}
		if ready {
			out = append(out, i)
		}
	}
	return out
}
