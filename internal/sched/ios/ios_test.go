package ios

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/seq"
	"github.com/shus-lab/hios/internal/units"
)

func diamond(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4, 4)
	a := g.AddOp(graph.Op{Name: "a", Time: 1, Util: 0.3})
	b := g.AddOp(graph.Op{Name: "b", Time: 2, Util: 0.3})
	c := g.AddOp(graph.Op{Name: "c", Time: 2, Util: 0.3})
	d := g.AddOp(graph.Op{Name: "d", Time: 1, Util: 0.3})
	g.AddEdge(a, b, 0.5)
	g.AddEdge(a, c, 0.5)
	g.AddEdge(b, d, 0.5)
	g.AddEdge(c, d, 0.5)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBlocksChain(t *testing.T) {
	g := graph.New(4, 3)
	for i := 0; i < 4; i++ {
		g.AddOp(graph.Op{Time: 1})
	}
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(2, 3, 0)
	g.MustFinalize()
	blocks := Blocks(g)
	if len(blocks) != 4 {
		t.Fatalf("chain should split into 4 blocks, got %v", blocks)
	}
}

func TestBlocksDiamond(t *testing.T) {
	g := diamond(t)
	blocks := Blocks(g)
	// Separators: a and d. Blocks: {a, b, c} then {d}.
	if len(blocks) != 2 {
		t.Fatalf("diamond blocks = %v, want 2", blocks)
	}
	if len(blocks[0]) != 3 || blocks[0][0] != 0 {
		t.Fatalf("first block = %v, want [a b c]", blocks[0])
	}
	if len(blocks[1]) != 1 || blocks[1][0] != 3 {
		t.Fatalf("second block = %v, want [d]", blocks[1])
	}
}

func TestBlocksNoSeparator(t *testing.T) {
	// Two disjoint ops: neither is comparable to the other, one block.
	g := graph.New(2, 0)
	g.AddOp(graph.Op{Time: 1})
	g.AddOp(graph.Op{Time: 1})
	g.MustFinalize()
	blocks := Blocks(g)
	if len(blocks) != 1 || len(blocks[0]) != 2 {
		t.Fatalf("blocks = %v, want one block of 2", blocks)
	}
}

func TestDiamondFusesBranches(t *testing.T) {
	g := diamond(t)
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := Schedule(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: {a}, {b, c}, {d} = 1 + 2 + 1 = 4.
	if res.Latency != 4 {
		t.Fatalf("latency = %g, want 4 (%v)", res.Latency, res.Schedule)
	}
	if res.Schedule.NumStages() != 3 {
		t.Fatalf("stages = %v, want 3", res.Schedule)
	}
}

func TestSingleGPUOnly(t *testing.T) {
	g := diamond(t)
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := Schedule(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.NumGPUs() != 1 {
		t.Fatalf("IOS must schedule on one GPU, got %d", res.Schedule.NumGPUs())
	}
}

func TestNeverWorseThanSequential(t *testing.T) {
	for s := int64(1); s <= 6; s++ {
		cfg := randdag.Paper()
		cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 60, 8, 120, s
		g := randdag.MustGenerate(cfg)
		m := cost.FromGraph(g, cost.DefaultContention())
		res, err := Schedule(g, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sq, err := seq.Schedule(g, m)
		if err != nil {
			t.Fatal(err)
		}
		if res.Latency > sq.Latency+1e-9 {
			t.Fatalf("seed %d: IOS %g worse than sequential %g", s, res.Latency, sq.Latency)
		}
	}
}

// exhaustiveIOS enumerates every stage decomposition recursively (no memo,
// no pruning) and returns the optimal single-GPU latency. Exponential;
// only for tiny graphs.
func exhaustiveIOS(g *graph.Graph, m cost.Model, maxStage int) units.Millis {
	n := g.NumOps()
	done := make([]bool, n)
	var rec func(left int) units.Millis
	rec = func(left int) units.Millis {
		if left == 0 {
			return 0
		}
		var frontier []graph.OpID
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			ready := true
			g.Preds(graph.OpID(v), func(u graph.OpID, _ float64) {
				if !done[u] {
					ready = false
				}
			})
			if ready {
				frontier = append(frontier, graph.OpID(v))
			}
		}
		best := units.Millis(math.Inf(1))
		var stage []graph.OpID
		var sub func(i int)
		sub = func(i int) {
			if len(stage) > 0 {
				t := m.StageTime(stage)
				for _, v := range stage {
					done[v] = true
				}
				if r := t + rec(left-len(stage)); r < best {
					best = r
				}
				for _, v := range stage {
					done[v] = false
				}
			}
			if i >= len(frontier) || len(stage) >= maxStage {
				return
			}
			for j := i; j < len(frontier); j++ {
				stage = append(stage, frontier[j])
				sub(j + 1)
				stage = stage[:len(stage)-1]
			}
		}
		sub(0)
		return best
	}
	return rec(n)
}

func TestExactDPMatchesExhaustive(t *testing.T) {
	for s := int64(1); s <= 8; s++ {
		rng := rand.New(rand.NewSource(s))
		cfg := randdag.Paper()
		cfg.Ops = 6 + rng.Intn(4)
		cfg.Layers = 2 + rng.Intn(3)
		cfg.Deps = cfg.Ops
		cfg.Seed = s
		g := randdag.MustGenerate(cfg)
		m := cost.FromGraph(g, cost.DefaultContention())
		res, err := Schedule(g, m, Options{MaxStage: 4, PruneWindow: 16, ExactLimit: 16})
		if err != nil {
			t.Fatal(err)
		}
		want := exhaustiveIOS(g, m, 4)
		if diff := res.Latency - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("seed %d: DP %g != exhaustive %g", s, res.Latency, want)
		}
	}
}

func TestBeamStaysValidAndAboveExact(t *testing.T) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 40, 5, 70, 4
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())
	narrow, err := Schedule(g, m, Options{ExactLimit: 1, Beam: 2})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Schedule(g, m, Options{ExactLimit: 1, Beam: 512, PruneWindow: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, narrow.Schedule); err != nil {
		t.Fatal(err)
	}
	if narrow.Latency < wide.Latency-1e-9 {
		t.Fatalf("narrow beam %g beat wide beam %g", narrow.Latency, wide.Latency)
	}
}

func TestMaxStageRespected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randdag.Paper()
		cfg.Ops = 10 + rng.Intn(30)
		cfg.Layers = 2 + rng.Intn(4)
		cfg.Deps = cfg.Ops
		cfg.Seed = seed
		g := randdag.MustGenerate(cfg)
		m := cost.FromGraph(g, cost.DefaultContention())
		maxStage := 1 + rng.Intn(4)
		res, err := Schedule(g, m, Options{MaxStage: maxStage})
		if err != nil {
			return false
		}
		if err := sched.Validate(g, res.Schedule); err != nil {
			return false
		}
		for _, st := range res.Schedule.GPUs[0].Stages {
			if len(st.Ops) > maxStage {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(0, 0)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := Schedule(g, m, Options{})
	if err != nil || res.Latency != 0 {
		t.Fatalf("empty graph: %+v %v", res, err)
	}
}
