package sched

import "github.com/shus-lab/hios/internal/graph"

// FromPlacement builds the singleton-stage schedule that the paper's
// "temporal operator scheduling" step produces (Algorithm 1, lines 10–13):
// operators are appended to their assigned GPUs in the given order (the
// descending-priority topological order), one stage per operator, so that
// each runs at its earliest available start time given sequential execution
// per GPU. Operators with place < 0 (still unscheduled) are skipped.
func FromPlacement(nGPUs int, order []graph.OpID, place []int) *Schedule {
	s := New(nGPUs)
	for _, op := range order {
		if g := place[op]; g >= 0 {
			s.Append(g, op)
		}
	}
	return s
}

// Sequential builds the one-GPU, one-operator-per-stage schedule over the
// given topological order: the paper's "sequential scheduling" baseline.
func Sequential(order []graph.OpID) *Schedule {
	s := New(1)
	for _, op := range order {
		s.Append(0, op)
	}
	return s
}
