package sched

import "github.com/shus-lab/hios/internal/graph"

// FromPlacement builds the singleton-stage schedule that the paper's
// "temporal operator scheduling" step produces (Algorithm 1, lines 10–13):
// operators are appended to their assigned GPUs in the given order (the
// descending-priority topological order), one stage per operator, so that
// each runs at its earliest available start time given sequential execution
// per GPU. Operators with place < 0 (still unscheduled) are skipped.
//
// One operator array and one stage array back every GPU's stage list —
// the capacity-clamped subslices keep a later append on any stage list or
// Ops slice from bleeding into a neighbour's storage (cf. CompactClone).
// The former one-Append-per-operator construction allocated twice per
// operator and dominated the HIOS-LP allocation profile.
func FromPlacement(nGPUs int, order []graph.OpID, place []int) *Schedule {
	s := New(nGPUs)
	cnt := make([]int, nGPUs)
	total := 0
	for _, op := range order {
		if g := place[op]; g >= 0 {
			cnt[g]++
			total++
		}
	}
	ops := make([]graph.OpID, total)
	stages := make([]Stage, total)
	pos := 0
	for gi := 0; gi < nGPUs; gi++ {
		next := pos + cnt[gi]
		s.GPUs[gi].Stages = stages[pos:pos:next]
		cnt[gi] = pos // becomes the fill cursor below
		pos = next
	}
	for _, op := range order {
		if gi := place[op]; gi >= 0 {
			k := cnt[gi]
			cnt[gi] = k + 1
			ops[k] = op
			s.GPUs[gi].Stages = append(s.GPUs[gi].Stages, Stage{Ops: ops[k : k+1 : k+1]})
		}
	}
	return s
}

// Sequential builds the one-GPU, one-operator-per-stage schedule over the
// given topological order: the paper's "sequential scheduling" baseline.
func Sequential(order []graph.OpID) *Schedule {
	s := New(1)
	for _, op := range order {
		s.Append(0, op)
	}
	return s
}
