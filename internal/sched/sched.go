// Package sched defines the schedule representation of §III-A of the HIOS
// paper and the evaluator that computes a schedule's inference latency
// under the precedence constraint of §III-B.
//
// A Schedule Q = {Q_i | 1 <= i <= M} assigns every operator of a
// computation graph to one of M homogeneous GPUs and partitions each GPU's
// operators into an ordered list of stages. Stages on one GPU execute
// sequentially; the operators inside one stage are independent and start
// simultaneously (one CUDA stream each). A stage may start only when every
// input of every member is available on its GPU, where an input produced on
// a different GPU additionally pays the transfer time t(u, v).
package sched

import (
	"fmt"
	"sort"

	"github.com/shus-lab/hios/internal/graph"
)

// Stage is one set of operators executed concurrently on a single GPU.
type Stage struct {
	// Ops holds the member operators, kept sorted by ID.
	Ops []graph.OpID
}

// clone returns a deep copy of the stage.
func (s Stage) clone() Stage {
	ops := make([]graph.OpID, len(s.Ops))
	copy(ops, s.Ops)
	return Stage{Ops: ops}
}

// GPUSchedule is the ordered stage list Q_i of one GPU.
type GPUSchedule struct {
	Stages []Stage
}

// Schedule is a complete mapping of a computation graph onto at most
// len(GPUs) homogeneous GPUs.
type Schedule struct {
	GPUs []GPUSchedule
}

// New returns an empty schedule over m GPUs.
func New(m int) *Schedule {
	return &Schedule{GPUs: make([]GPUSchedule, m)}
}

// NumGPUs returns the number of GPUs the schedule spans (including idle
// ones).
func (s *Schedule) NumGPUs() int { return len(s.GPUs) }

// UsedGPUs returns how many GPUs run at least one operator.
func (s *Schedule) UsedGPUs() int {
	n := 0
	for _, q := range s.GPUs {
		if len(q.Stages) > 0 {
			n++
		}
	}
	return n
}

// NumStages returns the total stage count across GPUs.
func (s *Schedule) NumStages() int {
	n := 0
	for _, q := range s.GPUs {
		n += len(q.Stages)
	}
	return n
}

// NumOps returns the total number of scheduled operators.
func (s *Schedule) NumOps() int {
	n := 0
	for _, q := range s.GPUs {
		for _, st := range q.Stages {
			n += len(st.Ops)
		}
	}
	return n
}

// Append adds op as a new singleton stage at the end of GPU g's stage list.
func (s *Schedule) Append(g int, op graph.OpID) {
	s.GPUs[g].Stages = append(s.GPUs[g].Stages, Stage{Ops: []graph.OpID{op}})
}

// AppendStage adds a full stage at the end of GPU g's stage list. The op
// list is copied and sorted.
func (s *Schedule) AppendStage(g int, ops []graph.OpID) {
	cp := make([]graph.OpID, len(ops))
	copy(cp, ops)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	s.GPUs[g].Stages = append(s.GPUs[g].Stages, Stage{Ops: cp})
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	ns := New(len(s.GPUs))
	for i, q := range s.GPUs {
		ns.GPUs[i].Stages = make([]Stage, len(q.Stages))
		for j, st := range q.Stages {
			ns.GPUs[i].Stages[j] = st.clone()
		}
	}
	return ns
}

// CompactClone returns a deep copy of the schedule backed by three
// allocations in total (GPU headers, stage headers, one operator array)
// instead of Clone's per-stage copies. Each stage's Ops is a
// capacity-clamped subslice of the shared backing array, so appending to
// one stage can never bleed into a neighbour's storage; as everywhere in
// this package, a committed stage's Ops are never mutated in place.
// Algorithm 2 clones its input once per Parallelize call, which makes
// this the fixed entry cost of every window pass.
func (s *Schedule) CompactClone() *Schedule {
	nops, nstages := 0, 0
	for gi := range s.GPUs {
		nstages += len(s.GPUs[gi].Stages)
		for _, st := range s.GPUs[gi].Stages {
			nops += len(st.Ops)
		}
	}
	ops := make([]graph.OpID, 0, nops)
	stages := make([]Stage, 0, nstages)
	ns := &Schedule{GPUs: make([]GPUSchedule, len(s.GPUs))}
	for gi := range s.GPUs {
		lo := len(stages)
		for _, st := range s.GPUs[gi].Stages {
			o := len(ops)
			ops = append(ops, st.Ops...)
			stages = append(stages, Stage{Ops: ops[o:len(ops):len(ops)]})
		}
		ns.GPUs[gi].Stages = stages[lo:len(stages):len(stages)]
	}
	return ns
}

// Placement returns op -> GPU index for a graph with n operators;
// unscheduled operators map to -1. An operator appearing twice is reported
// by Validate, not here.
func (s *Schedule) Placement(n int) []int {
	place := make([]int, n)
	for i := range place {
		place[i] = -1
	}
	for g, q := range s.GPUs {
		for _, st := range q.Stages {
			for _, op := range st.Ops {
				if int(op) < n {
					place[op] = g
				}
			}
		}
	}
	return place
}

// StageOf returns, for each operator, the (gpu, stage index) holding it;
// (-1, -1) when unscheduled.
func (s *Schedule) StageOf(n int) (gpu []int, stage []int) {
	gpu = make([]int, n)
	stage = make([]int, n)
	for i := 0; i < n; i++ {
		gpu[i], stage[i] = -1, -1
	}
	for g, q := range s.GPUs {
		for j, st := range q.Stages {
			for _, op := range st.Ops {
				if int(op) < n {
					gpu[op], stage[op] = g, j
				}
			}
		}
	}
	return gpu, stage
}

// String renders the schedule in the paper's notation, e.g.
// Q = {Q_1: [{a}, {d e}], Q_2: [{b c}, {f}]}.
func (s *Schedule) String() string {
	out := "Q{"
	for g, q := range s.GPUs {
		if len(q.Stages) == 0 {
			continue
		}
		if len(out) > 2 {
			out += " "
		}
		out += fmt.Sprintf("Q%d:[", g+1)
		for j, st := range q.Stages {
			if j > 0 {
				out += " "
			}
			out += "{"
			for k, op := range st.Ops {
				if k > 0 {
					out += " "
				}
				out += fmt.Sprint(int(op))
			}
			out += "}"
		}
		out += "]"
	}
	return out + "}"
}
