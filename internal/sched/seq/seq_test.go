package seq

import (
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/units"
)

func TestLatencyIsSumOfOpTimes(t *testing.T) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps = 50, 7, 100
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.Latency - units.Millis(g.TotalOpTime()); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sequential latency %g != sum of op times %g", res.Latency, g.TotalOpTime())
	}
	if err := sched.Validate(g, res.Schedule); err != nil {
		t.Fatal(err)
	}
	if res.Schedule.UsedGPUs() != 1 {
		t.Fatal("sequential baseline must use exactly one GPU")
	}
	for _, st := range res.Schedule.GPUs[0].Stages {
		if len(st.Ops) != 1 {
			t.Fatal("sequential stages must be singletons")
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(0, 0)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := Schedule(g, m)
	if err != nil || res.Latency != 0 {
		t.Fatalf("empty graph: %+v %v", res, err)
	}
}
