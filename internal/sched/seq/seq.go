// Package seq implements the paper's "sequential scheduling" baseline:
// operators execute one by one, in a topological order, on a single GPU
// (§V-B). Its latency is the sum of all operator execution times — no
// transfers are paid and no concurrency is exploited.
package seq

import (
	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sched"
)

// Schedule returns the sequential baseline schedule for g, using the
// descending-priority topological order for determinism and parity with
// the other algorithms.
func Schedule(g *graph.Graph, m cost.Model) (sched.Result, error) {
	s := sched.Sequential(g.ByPriority())
	lat, err := sched.Latency(g, m, s)
	if err != nil {
		return sched.Result{}, err
	}
	return sched.Result{Schedule: s, Latency: lat}, nil
}
