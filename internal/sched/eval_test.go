package sched

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/stats"
	"github.com/shus-lab/hios/internal/units"
)

// paperFig3 builds the six-operator graph of the paper's Fig. 3 schedule
// example: a -> d, a -> e, b -> e, b -> f, c -> f (weights chosen here).
func paperFig3(t *testing.T) (*graph.Graph, cost.Model) {
	t.Helper()
	g := graph.New(6, 5)
	a := g.AddOp(graph.Op{Name: "a", Time: 2, Util: 0.4})
	b := g.AddOp(graph.Op{Name: "b", Time: 1, Util: 0.4})
	c := g.AddOp(graph.Op{Name: "c", Time: 1, Util: 0.4})
	d := g.AddOp(graph.Op{Name: "d", Time: 2, Util: 0.4})
	e := g.AddOp(graph.Op{Name: "e", Time: 2, Util: 0.4})
	f := g.AddOp(graph.Op{Name: "f", Time: 3, Util: 0.4})
	g.AddEdge(a, d, 0.5)
	g.AddEdge(a, e, 0.5)
	g.AddEdge(b, e, 0.5)
	g.AddEdge(b, f, 0.5)
	g.AddEdge(c, f, 0.5)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g, cost.FromGraph(g, cost.DefaultContention())
}

func TestEvaluateFig3Schedule(t *testing.T) {
	g, m := paperFig3(t)
	// Q1 = {{a}, {d, e}}, Q2 = {{b, c}, {f}} (paper Fig. 3).
	s := New(2)
	s.AppendStage(0, []graph.OpID{0})    // {a}
	s.AppendStage(0, []graph.OpID{3, 4}) // {d, e}
	s.AppendStage(1, []graph.OpID{1, 2}) // {b, c}
	s.AppendStage(1, []graph.OpID{5})    // {f}

	tm, err := Evaluate(g, m, s)
	if err != nil {
		t.Fatal(err)
	}
	// Stage {b,c}: both util .4, times 1,1 -> t = max(1, .8) = 1.
	// Stage {a}: t=2, starts 0.
	// Stage {d,e}: needs a (same GPU, finish 2) and b (cross, 1+0.5);
	// starts at 2. duration max(2, 1.6) = 2 -> finish 4.
	// Stage {f}: needs b,c (same GPU, finish 1) and prev stage finish 1;
	// starts 1, finish 4.
	if tm.StageStart[0][1] != 2 || tm.StageFinish[0][1] != 4 {
		t.Fatalf("stage {d,e}: [%g, %g], want [2, 4]", tm.StageStart[0][1], tm.StageFinish[0][1])
	}
	if tm.StageStart[1][1] != 1 || tm.StageFinish[1][1] != 4 {
		t.Fatalf("stage {f}: [%g, %g], want [1, 4]", tm.StageStart[1][1], tm.StageFinish[1][1])
	}
	if tm.Latency != 4 {
		t.Fatalf("latency = %g, want 4", tm.Latency)
	}
	if tm.GPUOf[0] != 0 || tm.GPUOf[5] != 1 {
		t.Fatalf("GPUOf wrong: %v", tm.GPUOf)
	}
}

func TestEvaluateCrossGPUTransferCharged(t *testing.T) {
	g := graph.New(2, 1)
	a := g.AddOp(graph.Op{Name: "a", Time: 1})
	b := g.AddOp(graph.Op{Name: "b", Time: 1})
	g.AddEdge(a, b, 0.75)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())

	same := New(2)
	same.Append(0, a)
	same.Append(0, b)
	lat, err := Latency(g, m, same)
	if err != nil || lat != 2 {
		t.Fatalf("same-GPU latency = %g (%v), want 2", lat, err)
	}

	split := New(2)
	split.Append(0, a)
	split.Append(1, b)
	lat, err = Latency(g, m, split)
	if err != nil || lat != 2.75 {
		t.Fatalf("split latency = %g (%v), want 2.75", lat, err)
	}
}

func TestEvaluateRejectsIntraStageEdge(t *testing.T) {
	g := graph.New(2, 1)
	a := g.AddOp(graph.Op{Time: 1})
	b := g.AddOp(graph.Op{Time: 1})
	g.AddEdge(a, b, 0)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	s := New(1)
	s.AppendStage(0, []graph.OpID{a, b})
	if _, err := Evaluate(g, m, s); err == nil {
		t.Fatal("Evaluate accepted dependent operators in one stage")
	}
}

func TestEvaluateRejectsStageCycle(t *testing.T) {
	// a -> b on GPU 1, c -> d on GPU 2, with b after... build an order
	// that deadlocks: GPU1: [b', a'] where b' needs GPU2's d, and GPU2:
	// [d', c'] where d' needs GPU1's... simplest: two cross edges and
	// inverted orders.
	g := graph.New(4, 2)
	a := g.AddOp(graph.Op{Name: "a", Time: 1})
	b := g.AddOp(graph.Op{Name: "b", Time: 1})
	c := g.AddOp(graph.Op{Name: "c", Time: 1})
	d := g.AddOp(graph.Op{Name: "d", Time: 1})
	g.AddEdge(a, b, 0.1) // a on GPU0, b on GPU1
	g.AddEdge(c, d, 0.1) // c on GPU1, d on GPU0
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	s := New(2)
	// GPU0 runs d before a; GPU1 runs b before c. b waits for a, which
	// waits for d (sequence), which waits for c, which waits for b.
	s.Append(0, d)
	s.Append(0, a)
	s.Append(1, b)
	s.Append(1, c)
	if _, err := Evaluate(g, m, s); err == nil {
		t.Fatal("Evaluate accepted a deadlocked schedule")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	g := graph.New(2, 0)
	a := g.AddOp(graph.Op{Time: 1})
	b := g.AddOp(graph.Op{Time: 1})
	g.MustFinalize()

	missing := New(1)
	missing.Append(0, a)
	if err := Validate(g, missing); err == nil {
		t.Fatal("Validate accepted a schedule missing an operator")
	}

	dup := New(1)
	dup.Append(0, a)
	dup.Append(0, a)
	dup.Append(0, b)
	if err := Validate(g, dup); err == nil {
		t.Fatal("Validate accepted a duplicated operator")
	}

	unknown := New(1)
	unknown.Append(0, a)
	unknown.Append(0, graph.OpID(9))
	if err := Validate(g, unknown); err == nil {
		t.Fatal("Validate accepted an unknown operator")
	}

	empty := New(1)
	empty.Append(0, a)
	empty.Append(0, b)
	empty.GPUs[0].Stages = append(empty.GPUs[0].Stages, Stage{})
	if err := Validate(g, empty); err == nil {
		t.Fatal("Validate accepted an empty stage")
	}
}

func TestScheduleAccessors(t *testing.T) {
	s := New(3)
	s.Append(0, 0)
	s.AppendStage(2, []graph.OpID{2, 1})
	if s.NumGPUs() != 3 || s.UsedGPUs() != 2 || s.NumStages() != 2 || s.NumOps() != 3 {
		t.Fatalf("accessors wrong: %d %d %d %d", s.NumGPUs(), s.UsedGPUs(), s.NumStages(), s.NumOps())
	}
	if got := s.GPUs[2].Stages[0].Ops; got[0] != 1 || got[1] != 2 {
		t.Fatalf("AppendStage did not sort: %v", got)
	}
	place := s.Placement(3)
	if place[0] != 0 || place[1] != 2 || place[2] != 2 {
		t.Fatalf("Placement = %v", place)
	}
	gpu, stage := s.StageOf(3)
	if gpu[1] != 2 || stage[1] != 0 || gpu[0] != 0 {
		t.Fatalf("StageOf = %v %v", gpu, stage)
	}
	c := s.Clone()
	c.GPUs[0].Stages[0].Ops[0] = 9
	if s.GPUs[0].Stages[0].Ops[0] == 9 {
		t.Fatal("Clone shares stage storage")
	}
	if str := s.String(); !strings.Contains(str, "Q1:") || !strings.Contains(str, "Q3:") {
		t.Fatalf("String() = %q", str)
	}
}

func TestFromPlacementSkipsUnplaced(t *testing.T) {
	g := graph.New(3, 0)
	g.AddOp(graph.Op{Time: 1})
	g.AddOp(graph.Op{Time: 1})
	g.AddOp(graph.Op{Time: 1})
	g.MustFinalize()
	order := []graph.OpID{2, 0, 1}
	place := []int{0, -1, 1}
	s := FromPlacement(2, order, place)
	if s.NumOps() != 2 {
		t.Fatalf("NumOps = %d, want 2", s.NumOps())
	}
	if s.GPUs[1].Stages[0].Ops[0] != 2 {
		t.Fatalf("order not respected: %v", s)
	}
}

func TestSequentialLatencyIsSum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomLayered(rng, 30, 50)
	m := cost.FromGraph(g, cost.DefaultContention())
	s := Sequential(g.ByPriority())
	lat, err := Latency(g, m, s)
	if err != nil {
		t.Fatal(err)
	}
	if diff := lat - units.Millis(g.TotalOpTime()); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sequential latency %g != total op time %g", lat, g.TotalOpTime())
	}
}

// randomLayered builds a random DAG with forward edges only. m is capped
// at the number of distinct forward pairs.
func randomLayered(rng *rand.Rand, n, m int) *graph.Graph {
	if max := n * (n - 1) / 2; m > max {
		m = max
	}
	g := graph.New(n, m)
	for i := 0; i < n; i++ {
		g.AddOp(graph.Op{Time: 0.1 + rng.Float64()*3.9, Util: 0.2 + 0.8*rng.Float64()})
	}
	seen := map[[2]int]bool{}
	for len(seen) < m {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		g.AddEdge(graph.OpID(u), graph.OpID(v), rng.Float64())
	}
	g.MustFinalize()
	return g
}

// TestEvaluateRespectsPrecedenceProperty: for random singleton-stage
// schedules over random placements, every evaluated edge satisfies the
// §III-B constraint and the latency equals the max finish.
func TestEvaluateRespectsPrecedenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomLayered(rng, n, rng.Intn(2*n))
		m := cost.FromGraph(g, cost.DefaultContention())
		gpus := 1 + rng.Intn(4)
		place := make([]int, n)
		for i := range place {
			place[i] = rng.Intn(gpus)
		}
		s := FromPlacement(gpus, g.ByPriority(), place)
		tm, err := Evaluate(g, m, s)
		if err != nil {
			return false
		}
		maxFinish := units.Millis(0)
		for v := 0; v < n; v++ {
			if tm.OpFinish[v] > maxFinish {
				maxFinish = tm.OpFinish[v]
			}
			if tm.OpFinish[v] < tm.OpStart[v] {
				return false
			}
		}
		if tm.Latency != maxFinish {
			return false
		}
		for _, e := range g.Edges() {
			lag := units.Millis(0)
			if place[e.From] != place[e.To] {
				lag = units.Millis(e.Time)
			}
			if tm.OpStart[e.To] < tm.OpFinish[e.From]+lag-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Each distinct error branch of Validate/ValidatePartial, with the
// message pinned so refactors cannot silently merge branches: duplicate
// across two stages on different GPUs, missing operator, unknown and
// negative IDs, and empty stages — plus the partial variant's laxer
// completeness rule.
func TestValidateDuplicateAcrossGPUs(t *testing.T) {
	g := graph.New(2, 0)
	a := g.AddOp(graph.Op{Time: 1})
	b := g.AddOp(graph.Op{Time: 1})
	g.MustFinalize()

	dup := New(2)
	dup.Append(0, a)
	dup.Append(0, b)
	dup.Append(1, a) // a again, in a different GPU's stage list
	err := Validate(g, dup)
	if err == nil {
		t.Fatal("Validate accepted an operator scheduled on two GPUs")
	}
	if !strings.Contains(err.Error(), "more than once") {
		t.Fatalf("wrong branch: %v", err)
	}
}

func TestValidateMissingOperatorMessage(t *testing.T) {
	g := graph.New(3, 0)
	a := g.AddOp(graph.Op{Time: 1})
	g.AddOp(graph.Op{Time: 1})
	g.AddOp(graph.Op{Time: 1})
	g.MustFinalize()

	s := New(1)
	s.Append(0, a)
	err := Validate(g, s)
	if err == nil {
		t.Fatal("Validate accepted an incomplete schedule")
	}
	if !strings.Contains(err.Error(), "1 of 3 operators scheduled") {
		t.Fatalf("wrong branch: %v", err)
	}
}

func TestValidateNegativeOperatorID(t *testing.T) {
	g := graph.New(1, 0)
	g.AddOp(graph.Op{Time: 1})
	g.MustFinalize()

	s := New(1)
	s.Append(0, graph.OpID(-1))
	err := Validate(g, s)
	if err == nil {
		t.Fatal("Validate accepted a negative operator ID")
	}
	if !strings.Contains(err.Error(), "unknown operator") {
		t.Fatalf("wrong branch: %v", err)
	}
}

func TestValidatePartialErrorPaths(t *testing.T) {
	g := graph.New(3, 0)
	a := g.AddOp(graph.Op{Time: 1})
	g.AddOp(graph.Op{Time: 1})
	g.AddOp(graph.Op{Time: 1})
	g.MustFinalize()

	// A subset is legal for the partial variant...
	subset := New(2)
	subset.Append(0, a)
	if err := ValidatePartial(g, subset); err != nil {
		t.Fatalf("ValidatePartial rejected a legal subset: %v", err)
	}
	// ...but the structural invariants still hold.
	dup := New(2)
	dup.Append(0, a)
	dup.Append(1, a)
	if err := ValidatePartial(g, dup); err == nil || !strings.Contains(err.Error(), "more than once") {
		t.Fatalf("duplicate across GPUs: got %v", err)
	}
	unknown := New(1)
	unknown.Append(0, graph.OpID(99))
	if err := ValidatePartial(g, unknown); err == nil || !strings.Contains(err.Error(), "unknown operator") {
		t.Fatalf("unknown operator: got %v", err)
	}
	empty := New(1)
	empty.Append(0, a)
	empty.GPUs[0].Stages = append(empty.GPUs[0].Stages, Stage{})
	if err := ValidatePartial(g, empty); err == nil || !strings.Contains(err.Error(), "is empty") {
		t.Fatalf("empty stage: got %v", err)
	}
}

// EvaluatePartial must ignore dependencies whose endpoint is
// unscheduled, and still reject ordering violations among the operators
// that are scheduled.
func TestEvaluatePartialDependencies(t *testing.T) {
	g := graph.New(3, 2)
	a := g.AddOp(graph.Op{Time: 1})
	b := g.AddOp(graph.Op{Time: 2})
	c := g.AddOp(graph.Op{Time: 4})
	g.AddEdge(a, b, 0.5)
	g.AddEdge(b, c, 0.5)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())

	// Only a and c scheduled: the a->b and b->c edges dangle and are
	// ignored, so the two operators run back to back without transfer
	// lag on one GPU.
	s := New(1)
	s.Append(0, a)
	s.Append(0, c)
	lat, err := LatencyPartial(g, m, s)
	if err != nil {
		t.Fatalf("LatencyPartial: %v", err)
	}
	if want := m.OpTime(a) + m.OpTime(c); !stats.ApproxEqual(float64(lat), float64(want), 0) {
		t.Fatalf("partial latency %g, want %g", lat, want)
	}

	// A direct dependency inside one stage is rejected even partially.
	bad := New(1)
	bad.AppendStage(0, []graph.OpID{a, b})
	if _, err := EvaluatePartial(g, m, bad); err == nil {
		t.Fatal("EvaluatePartial accepted dependent operators in one stage")
	}
}
