// Package window implements Algorithm 2 of the HIOS paper: intra-GPU
// inter-operator parallelization with a sliding window.
//
// Given a schedule that already maps operators to GPUs with sequential
// (singleton-stage) execution on each GPU, the pass slides a window of up
// to w consecutive operators along each GPU's execution order, in
// descending-priority order of the window's first operator. When all
// operators under the window are independent, it tentatively fuses them
// into one concurrent stage, rejects the fusion if it would create a cycle
// in the scheduled computation graph (an implicit cross-GPU dependency
// loop), reschedules everything at the earliest start times, and commits
// the fusion only when the end-to-end latency improves. The pass is
// therefore monotone: it never increases latency.
//
// Unlike IOS's exact exponential dynamic program, this pass is polynomial —
// O(w²·|V|·|E|³) in the paper's (loose) bound — and it accounts for
// cross-GPU dependencies, which single-GPU IOS cannot see.
package window

import (
	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/ios"
	"github.com/shus-lab/hios/internal/units"
)

// DefaultSize is the default maximum window size w. The paper's examples
// use w = 2; real CNN stages rarely benefit beyond 4 concurrent operators
// on one device before contention dominates.
const DefaultSize = 4

// ParallelizeFixpoint repeats the Algorithm 2 pass until a full sweep
// yields no further improvement (or maxRounds sweeps have run; 0 means
// unlimited). The paper runs a single sweep; because each sweep is
// monotone, iterating converges, and on wide graphs a second sweep
// occasionally finds fusions enabled by the first sweep's reshuffled
// stage positions.
func ParallelizeFixpoint(g *graph.Graph, m cost.Model, s *sched.Schedule, w, maxRounds int) (sched.Result, error) {
	cur, err := Parallelize(g, m, s, w)
	if err != nil {
		return sched.Result{}, err
	}
	for round := 1; maxRounds == 0 || round < maxRounds; round++ {
		next, err := Parallelize(g, m, cur.Schedule, w)
		if err != nil {
			return sched.Result{}, err
		}
		if next.Latency >= cur.Latency-units.Millis(1e-12) {
			return cur, nil
		}
		cur = next
	}
	return cur, nil
}

// Parallelize runs Algorithm 2 over schedule s and returns the improved
// schedule and its latency. The input schedule is not modified. w is the
// maximum window size; values below 2 disable fusion and simply evaluate s.
//
//lint:hotpath
func Parallelize(g *graph.Graph, m cost.Model, s *sched.Schedule, w int) (sched.Result, error) {
	var ie sched.IncrementalEvaluator
	cur := s.CompactClone()
	curLat, err := ie.Rebase(g, m, cur)
	if err != nil {
		return sched.Result{}, err
	}
	if w < 2 {
		return sched.Result{Schedule: cur, Latency: curLat}, nil
	}

	// Operator -> (GPU, stage index), computed once and patched on each
	// committed fusion instead of rebuilt per window position. Only the
	// fused GPU's indices at or after the fusion point ever change.
	gpuOf, stageOf := cur.StageOf(g.NumOps())

	order := g.ByPriority()

	// Candidate fusions run through the incremental evaluator against the
	// rebased baseline of cur: no candidate schedule is materialized, only
	// the fusion's dirty cone is re-propagated, and the incumbent latency
	// is the early-exit bound. Trial results are bit-identical to a full
	// evaluation of the materialized candidate, so committed schedules
	// (and the testdata goldens) are unchanged. Committing splices the
	// winning fusion into the baseline (CommitFuse) instead of paying a
	// full re-evaluation per improvement.
	members := make([]graph.OpID, 0, w)

	for i := 0; i < len(order)-1; i++ {
		v := order[i]
		gi, si := gpuOf[v], stageOf[v]
		if gi < 0 {
			continue // unscheduled operator (partial schedules in tests)
		}
		stages := cur.GPUs[gi].Stages
		if len(stages[si].Ops) > 1 {
			// v has already been grouped into a concurrent stage;
			// the paper's walk-through skips such operators.
			continue
		}
		// Try window sizes p+1 = 2..w and keep the best improvement.
		bestLat := curLat
		bestP := 0
		var bestStages []sched.Stage
		for p := 1; p <= w-1; p++ {
			if si+p >= len(stages) {
				break
			}
			// The window masks w consecutive *operators* on this
			// GPU; a multi-operator stage in range means those
			// positions are already fused, so the run of singleton
			// stages ends here.
			if len(stages[si+p].Ops) > 1 {
				break
			}
			members = members[:0]
			for k := si; k <= si+p; k++ {
				members = append(members, stages[k].Ops...)
			}
			if !g.AllIndependent(members) {
				// Dependent operators can never share a stage; a
				// larger window containing the same pair cannot
				// either. The O(1) closure probe subsumes the old
				// direct-edge scan: a transitively dependent pair
				// would have been rejected as a stage-graph cycle
				// during evaluation, which also stopped extending.
				break
			}
			// Keep the merged stage sorted for deterministic output.
			for a := 1; a < len(members); a++ {
				for b := a; b > 0 && members[b] < members[b-1]; b-- {
					members[b], members[b-1] = members[b-1], members[b]
				}
			}
			lat, ok, err := ie.TrialFuse(gi, si, p, members, bestLat)
			if err != nil {
				// The fusion created a dependency cycle in the
				// scheduled computation graph (Algorithm 2,
				// line 10 rejects this candidate). Larger
				// windows contain this one, so stop extending.
				break
			}
			if ok && lat < bestLat {
				bestLat = lat
				bestP = p
				bestStages = commitFusion(stages, si, p, members)
			}
		}
		if bestStages != nil {
			cur.GPUs[gi].Stages = bestStages
			// Re-index only the fused GPU from the fusion point on:
			// the window collapsed into stage si and later stages
			// shifted down. Other GPUs are untouched.
			for k := si; k < len(cur.GPUs[gi].Stages); k++ {
				for _, op := range cur.GPUs[gi].Stages[k].Ops {
					stageOf[op] = k
				}
			}
			lat, err := ie.CommitFuse(gi, si, bestP, bestStages[si].Ops)
			if err != nil {
				return sched.Result{}, err
			}
			curLat = lat
		}
	}
	return sched.Result{Schedule: cur, Latency: curLat}, nil
}

// commitFusion materializes the winning candidate's stage list for GPU
// gi: stages si..si+p collapse into one stage holding members (copied out
// of the trial scratch); the surrounding stages already own their member
// arrays (they are the committed stages of the current schedule, shared
// deliberately).
func commitFusion(stages []sched.Stage, si, p int, members []graph.OpID) []sched.Stage {
	out := make([]sched.Stage, 0, len(stages)-p)
	out = append(out, stages[:si]...)
	ops := make([]graph.OpID, len(members))
	copy(ops, members)
	out = append(out, sched.Stage{Ops: ops})
	out = append(out, stages[si+p+1:]...)
	return out
}

// ExactPerGPU is the §IV-B counterfactual: instead of the sliding window,
// run the exact IOS dynamic program independently on each GPU's operator
// sequence, ignoring cross-GPU dependencies — which is precisely what the
// paper says cannot work well. When the per-GPU decompositions compose
// into a valid (deadlock-free) global schedule AND improve latency, the
// improvement is kept per GPU; otherwise that GPU keeps sequential
// execution. The return value lets the ablation quantify how often the
// cross-GPU-blind approach mis-fires and how it compares to Parallelize.
func ExactPerGPU(g *graph.Graph, m cost.Model, s *sched.Schedule, iosOpt ios.Options) (sched.Result, error) {
	var ev sched.Evaluator
	cur := s.Clone()
	curLat, err := ev.Latency(g, m, cur)
	if err != nil {
		return sched.Result{}, err
	}
	for gi := range cur.GPUs {
		var ops []graph.OpID
		for _, st := range cur.GPUs[gi].Stages {
			ops = append(ops, st.Ops...)
		}
		if len(ops) < 2 {
			continue
		}
		stages, err := ios.SolveSequence(g, m, ops, iosOpt)
		if err != nil {
			return sched.Result{}, err
		}
		cand := cur.Clone()
		cand.GPUs[gi].Stages = nil
		for _, st := range stages {
			cand.AppendStage(gi, st)
		}
		lat, err := ev.Latency(g, m, cand)
		if err != nil {
			// The per-GPU optimum deadlocks against cross-GPU
			// dependencies — the failure mode the paper predicts.
			// Keep this GPU's previous decomposition.
			continue
		}
		if lat < curLat {
			cur, curLat = cand, lat
		}
	}
	return sched.Result{Schedule: cur, Latency: curLat}, nil
}
