package window

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/ios"
)

func TestGroupsIndependentSmallOps(t *testing.T) {
	// a -> {b, c} -> d with small utilizations: b and c end up adjacent
	// on the single GPU; window=2 should fuse them.
	g := graph.New(4, 4)
	a := g.AddOp(graph.Op{Name: "a", Time: 1, Util: 0.3})
	b := g.AddOp(graph.Op{Name: "b", Time: 2, Util: 0.3})
	c := g.AddOp(graph.Op{Name: "c", Time: 2, Util: 0.3})
	d := g.AddOp(graph.Op{Name: "d", Time: 1, Util: 0.3})
	g.AddEdge(a, b, 0)
	g.AddEdge(a, c, 0)
	g.AddEdge(b, d, 0)
	g.AddEdge(c, d, 0)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())

	s := sched.Sequential(g.ByPriority())
	res, err := Parallelize(g, m, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Fused: 1 + max(2,2*0.6... ) = 1 + 2 + 1 = 4 vs sequential 6.
	if res.Latency != 4 {
		t.Fatalf("latency = %g, want 4 (%v)", res.Latency, res.Schedule)
	}
	gpu0 := res.Schedule.GPUs[0]
	if len(gpu0.Stages) != 3 || len(gpu0.Stages[1].Ops) != 2 {
		t.Fatalf("expected fused middle stage, got %v", res.Schedule)
	}
}

func TestNeverGroupsDependentOps(t *testing.T) {
	g := graph.New(3, 2)
	a := g.AddOp(graph.Op{Time: 1, Util: 0.2})
	b := g.AddOp(graph.Op{Time: 1, Util: 0.2})
	c := g.AddOp(graph.Op{Time: 1, Util: 0.2})
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	s := sched.Sequential(g.ByPriority())
	res, err := Parallelize(g, m, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.NumStages() != 3 {
		t.Fatalf("chain must stay sequential: %v", res.Schedule)
	}
	if res.Latency != 3 {
		t.Fatalf("latency = %g, want 3", res.Latency)
	}
}

func TestSkipsContendingLargeOps(t *testing.T) {
	// Two saturating ops: fusing them is slower (2.4 vs 2), so the pass
	// must leave the schedule alone.
	g := graph.New(2, 0)
	g.AddOp(graph.Op{Time: 1, Util: 1})
	g.AddOp(graph.Op{Time: 1, Util: 1})
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	s := sched.Sequential(g.ByPriority())
	res, err := Parallelize(g, m, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.NumStages() != 2 || res.Latency != 2 {
		t.Fatalf("large ops fused: %v (%g)", res.Schedule, res.Latency)
	}
}

func TestWindowBelowTwoIsIdentity(t *testing.T) {
	g := graph.New(2, 0)
	g.AddOp(graph.Op{Time: 1, Util: 0.1})
	g.AddOp(graph.Op{Time: 1, Util: 0.1})
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	s := sched.Sequential(g.ByPriority())
	res, err := Parallelize(g, m, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.NumStages() != 2 {
		t.Fatal("w=1 must not fuse anything")
	}
}

// TestFig5Structure mirrors the paper's Fig. 5 walk-through: a 7-operator
// graph already mapped onto 2 GPUs with sequential execution; the sliding
// window (w=2) fuses two pairs on GPU 1 and improves the latency.
func TestFig5Structure(t *testing.T) {
	g := graph.New(7, 7)
	v1 := g.AddOp(graph.Op{Name: "v1", Time: 3, Util: 0.4})
	v2 := g.AddOp(graph.Op{Name: "v2", Time: 3, Util: 0.4})
	v3 := g.AddOp(graph.Op{Name: "v3", Time: 3, Util: 0.4})
	v4 := g.AddOp(graph.Op{Name: "v4", Time: 3, Util: 0.4})
	v5 := g.AddOp(graph.Op{Name: "v5", Time: 3, Util: 0.4})
	v6 := g.AddOp(graph.Op{Name: "v6", Time: 3, Util: 0.4})
	v7 := g.AddOp(graph.Op{Name: "v7", Time: 3, Util: 0.4})
	g.AddEdge(v1, v2, 1)
	g.AddEdge(v1, v4, 1)
	g.AddEdge(v2, v5, 1)
	g.AddEdge(v4, v5, 1)
	g.AddEdge(v3, v6, 1)
	g.AddEdge(v1, v3, 1)
	g.AddEdge(v5, v7, 1)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())

	// GPU 1: v1, v2, v4, v5, v7 sequential; GPU 2: v3, v6.
	s := sched.New(2)
	for _, v := range []graph.OpID{v1, v2, v4, v5, v7} {
		s.Append(0, v)
	}
	for _, v := range []graph.OpID{v3, v6} {
		s.Append(1, v)
	}
	before, err := sched.Latency(g, m, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Parallelize(g, m, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency >= before {
		t.Fatalf("window pass failed to improve: %g -> %g", before, res.Latency)
	}
	// v2 and v4 are independent and adjacent on GPU 1: must be fused.
	gpuOf, stageOf := res.Schedule.StageOf(7)
	if gpuOf[v2] != 0 || stageOf[v2] != stageOf[v4] {
		t.Fatalf("v2 and v4 not fused: %v", res.Schedule)
	}
}

func TestRespectsCrossGPUCycles(t *testing.T) {
	// GPU0: [a, d]; GPU1: [b, c] with edges a->b... construct a case
	// where fusing two ops would deadlock the stage graph and verify
	// the pass simply skips it (no error, no hang).
	g := graph.New(4, 2)
	a := g.AddOp(graph.Op{Name: "a", Time: 1, Util: 0.2})
	b := g.AddOp(graph.Op{Name: "b", Time: 1, Util: 0.2})
	c := g.AddOp(graph.Op{Name: "c", Time: 1, Util: 0.2})
	d := g.AddOp(graph.Op{Name: "d", Time: 1, Util: 0.2})
	g.AddEdge(a, b, 0.1)
	g.AddEdge(c, d, 0.1)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	s := sched.New(2)
	s.Append(0, a)
	s.Append(0, d)
	s.Append(1, c)
	s.Append(1, b)
	res, err := Parallelize(g, m, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneProperty(t *testing.T) {
	// The pass never increases latency and always returns a valid
	// schedule, across random graphs and random placements.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randdag.Paper()
		cfg.Ops = 10 + rng.Intn(30)
		cfg.Layers = 2 + rng.Intn(5)
		cfg.Deps = cfg.Ops
		cfg.Seed = seed
		g := randdag.MustGenerate(cfg)
		m := cost.FromGraph(g, cost.DefaultContention())
		gpus := 1 + rng.Intn(3)
		place := make([]int, cfg.Ops)
		for i := range place {
			place[i] = rng.Intn(gpus)
		}
		s := sched.FromPlacement(gpus, g.ByPriority(), place)
		before, err := sched.Latency(g, m, s)
		if err != nil {
			return false
		}
		res, err := Parallelize(g, m, s, 2+rng.Intn(4))
		if err != nil {
			return false
		}
		if err := sched.Validate(g, res.Schedule); err != nil {
			return false
		}
		return res.Latency <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFixpointNeverWorseThanSinglePass(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cfg := randdag.Paper()
		cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 40, 5, 70, seed
		g := randdag.MustGenerate(cfg)
		m := cost.FromGraph(g, cost.DefaultContention())
		place := make([]int, cfg.Ops)
		for i := range place {
			place[i] = i % 2
		}
		s := sched.FromPlacement(2, g.ByPriority(), place)
		one, err := Parallelize(g, m, s, 3)
		if err != nil {
			t.Fatal(err)
		}
		fix, err := ParallelizeFixpoint(g, m, s, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fix.Latency > one.Latency+1e-9 {
			t.Fatalf("seed %d: fixpoint %g worse than one pass %g", seed, fix.Latency, one.Latency)
		}
		if err := sched.Validate(g, fix.Schedule); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFixpointRespectsRoundLimit(t *testing.T) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 30, 4, 50, 2
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())
	s := sched.Sequential(g.ByPriority())
	one, err := Parallelize(g, m, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	lim, err := ParallelizeFixpoint(g, m, s, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if diff := lim.Latency - one.Latency; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("maxRounds=1 must equal a single pass: %g vs %g", lim.Latency, one.Latency)
	}
}

func TestInputScheduleUntouched(t *testing.T) {
	g := graph.New(2, 0)
	g.AddOp(graph.Op{Time: 1, Util: 0.1})
	g.AddOp(graph.Op{Time: 1, Util: 0.1})
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	s := sched.Sequential(g.ByPriority())
	before := s.String()
	if _, err := Parallelize(g, m, s, 3); err != nil {
		t.Fatal(err)
	}
	if s.String() != before {
		t.Fatal("Parallelize mutated its input schedule")
	}
}

func TestExactPerGPUSingleGPUMatchesIOS(t *testing.T) {
	// On one GPU with no cross deps, ExactPerGPU is plain IOS: it must
	// match ios.Schedule exactly.
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 30, 5, 60, 6
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())
	s := sched.Sequential(g.ByPriority())
	res, err := ExactPerGPU(g, m, s, ios.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ios.Schedule(g, m, ios.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.Latency - want.Latency; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ExactPerGPU %g != IOS %g on a single GPU", res.Latency, want.Latency)
	}
}

func TestExactPerGPUNeverWorseThanInput(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := randdag.Paper()
		cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 40, 6, 80, seed
		g := randdag.MustGenerate(cfg)
		m := cost.FromGraph(g, cost.DefaultContention())
		place := make([]int, cfg.Ops)
		for i := range place {
			place[i] = i % 2
		}
		s := sched.FromPlacement(2, g.ByPriority(), place)
		before, err := sched.Latency(g, m, s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ExactPerGPU(g, m, s, ios.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Latency > before+1e-9 {
			t.Fatalf("seed %d: ExactPerGPU increased latency %g -> %g", seed, before, res.Latency)
		}
		if err := sched.Validate(g, res.Schedule); err != nil {
			t.Fatal(err)
		}
	}
}
