package lp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/brute"
	"github.com/shus-lab/hios/internal/sched/seq"
	"github.com/shus-lab/hios/internal/units"
)

func smallCfg(seed int64) randdag.Config {
	cfg := randdag.Paper()
	cfg.Ops = 40
	cfg.Layers = 6
	cfg.Deps = 80
	cfg.Seed = seed
	return cfg
}

func TestRejectsZeroGPUs(t *testing.T) {
	g := randdag.MustGenerate(smallCfg(1))
	m := cost.FromGraph(g, cost.DefaultContention())
	if _, err := Schedule(g, m, Options{GPUs: 0}); err == nil {
		t.Fatal("accepted 0 GPUs")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(0, 0)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := Schedule(g, m, Options{GPUs: 2})
	if err != nil || res.Latency != 0 {
		t.Fatalf("empty graph: %v %v", res, err)
	}
}

func TestSingleGPUInterOnlyEqualsSequential(t *testing.T) {
	g := randdag.MustGenerate(smallCfg(2))
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := Schedule(g, m, Options{GPUs: 1, InterOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	sq, err := seq.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.Latency - sq.Latency; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("1-GPU inter-only LP %g != sequential %g", res.Latency, sq.Latency)
	}
}

func TestParallelChainsSplitAcrossGPUs(t *testing.T) {
	// Two independent chains of equal weight: with cheap transfers LP
	// must put them on different GPUs and nearly halve latency.
	g := graph.New(6, 4)
	for i := 0; i < 6; i++ {
		g.AddOp(graph.Op{Time: 2, Util: 1})
	}
	g.AddEdge(0, 1, 0.1)
	g.AddEdge(1, 2, 0.1)
	g.AddEdge(3, 4, 0.1)
	g.AddEdge(4, 5, 0.1)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())

	res, err := Schedule(g, m, Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 6 {
		t.Fatalf("latency = %g, want 6 (each chain on its own GPU)", res.Latency)
	}
	place := res.Schedule.Placement(6)
	if place[0] != place[1] || place[1] != place[2] {
		t.Fatalf("chain 1 split across GPUs: %v", place)
	}
	if place[3] != place[4] || place[4] != place[5] {
		t.Fatalf("chain 2 split across GPUs: %v", place)
	}
	if place[0] == place[3] {
		t.Fatalf("chains share a GPU: %v", place)
	}
}

func TestKeepsHeavyCommPathTogether(t *testing.T) {
	// A diamond with huge transfer times: splitting the branches would
	// cost more than serializing them, so everything stays on one GPU.
	g := graph.New(4, 4)
	a := g.AddOp(graph.Op{Name: "a", Time: 1, Util: 1})
	b := g.AddOp(graph.Op{Name: "b", Time: 1, Util: 1})
	c := g.AddOp(graph.Op{Name: "c", Time: 1, Util: 1})
	d := g.AddOp(graph.Op{Name: "d", Time: 1, Util: 1})
	g.AddEdge(a, b, 50)
	g.AddEdge(a, c, 50)
	g.AddEdge(b, d, 50)
	g.AddEdge(c, d, 50)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := Schedule(g, m, Options{GPUs: 2, InterOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.UsedGPUs() != 1 {
		t.Fatalf("expensive comm should keep all ops on one GPU: %v", res.Schedule)
	}
	if res.Latency != 4 {
		t.Fatalf("latency = %g, want 4", res.Latency)
	}
}

// TestFig4Structure follows the shape of the paper's Fig. 4 walk-through:
// a dominant path plus two side paths on 2 GPUs. We verify against the
// exhaustive optimum of the same (placement + priority-order) space.
func TestFig4Structure(t *testing.T) {
	g := graph.New(8, 9)
	v1 := g.AddOp(graph.Op{Name: "v1", Time: 2, Util: 1})
	v2 := g.AddOp(graph.Op{Name: "v2", Time: 3, Util: 1})
	v3 := g.AddOp(graph.Op{Name: "v3", Time: 2, Util: 1})
	v4 := g.AddOp(graph.Op{Name: "v4", Time: 3, Util: 1})
	v5 := g.AddOp(graph.Op{Name: "v5", Time: 2, Util: 1})
	v6 := g.AddOp(graph.Op{Name: "v6", Time: 3, Util: 1})
	v7 := g.AddOp(graph.Op{Name: "v7", Time: 2, Util: 1})
	v8 := g.AddOp(graph.Op{Name: "v8", Time: 2, Util: 1})
	g.AddEdge(v1, v2, 1) // e1
	g.AddEdge(v1, v3, 1) // e2
	g.AddEdge(v2, v4, 1) // e3
	g.AddEdge(v3, v5, 1) // e4
	g.AddEdge(v4, v6, 1) // e5
	g.AddEdge(v5, v6, 1) // e6
	g.AddEdge(v5, v7, 1) // e7
	g.AddEdge(v6, v8, 1) // e8
	g.AddEdge(v7, v8, 1) // e9
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())

	res, err := Schedule(g, m, Options{GPUs: 2, InterOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, res.Schedule); err != nil {
		t.Fatal(err)
	}
	// The longest path v1-v2-v4-v6-v8 must stay on one GPU.
	place := res.Schedule.Placement(8)
	for _, v := range []graph.OpID{v2, v4, v6, v8} {
		if place[v] != place[v1] {
			t.Fatalf("longest path split: %v", place)
		}
	}
	opt, err := brute.BestPlacement(g, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency < opt.Latency-1e-9 {
		t.Fatalf("LP %g beat the exhaustive optimum %g: evaluator bug", res.Latency, opt.Latency)
	}
	if res.Latency > opt.Latency*1.15+1e-9 {
		t.Fatalf("LP %g too far from optimum %g on the Fig. 4 structure", res.Latency, opt.Latency)
	}
}

func TestReportedLatencyMatchesEvaluation(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := randdag.MustGenerate(smallCfg(seed))
		m := cost.FromGraph(g, cost.DefaultContention())
		for _, interOnly := range []bool{true, false} {
			res, err := Schedule(g, m, Options{GPUs: 4, InterOnly: interOnly, Window: 3})
			if err != nil {
				t.Fatal(err)
			}
			lat, err := sched.Latency(g, m, res.Schedule)
			if err != nil {
				t.Fatalf("returned schedule invalid: %v", err)
			}
			if diff := lat - res.Latency; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("reported %g != evaluated %g", res.Latency, lat)
			}
		}
	}
}

func TestWindowPassNeverHurts(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := randdag.MustGenerate(smallCfg(seed))
		m := cost.FromGraph(g, cost.DefaultContention())
		inter, err := Schedule(g, m, Options{GPUs: 3, InterOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		full, err := Schedule(g, m, Options{GPUs: 3})
		if err != nil {
			t.Fatal(err)
		}
		if full.Latency > inter.Latency+1e-9 {
			t.Fatalf("seed %d: intra pass increased latency %g -> %g", seed, inter.Latency, full.Latency)
		}
	}
}

func TestDeterministic(t *testing.T) {
	g := randdag.MustGenerate(smallCfg(11))
	m := cost.FromGraph(g, cost.DefaultContention())
	a, err := Schedule(g, m, Options{GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(g, m, Options{GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency != b.Latency || a.Schedule.String() != b.Schedule.String() {
		t.Fatal("HIOS-LP is not deterministic")
	}
}

func TestScheduleInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := smallCfg(seed)
		cfg.Ops = 10 + rng.Intn(40)
		cfg.Layers = 2 + rng.Intn(6)
		cfg.Deps = cfg.Ops + rng.Intn(cfg.Ops)
		g := randdag.MustGenerate(cfg)
		m := cost.FromGraph(g, cost.DefaultContention())
		gpus := 1 + rng.Intn(5)
		res, err := Schedule(g, m, Options{GPUs: gpus, Window: 2 + rng.Intn(3)})
		if err != nil {
			return false
		}
		if err := sched.Validate(g, res.Schedule); err != nil {
			return false
		}
		// Latency cannot beat the compute critical path and cannot
		// exceed the sequential sum plus all transfers.
		lb := units.Millis(g.CriticalComputeLength())
		ub := g.TotalOpTime()
		for _, e := range g.Edges() {
			ub += e.Time
		}
		return res.Latency >= lb-1e-9 && res.Latency <= units.Millis(ub)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNeverWorseThanBruteOnTiny(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := randdag.Paper()
		cfg.Ops = 6 + rng.Intn(4)
		cfg.Layers = 3
		cfg.Deps = cfg.Ops
		cfg.Seed = seed
		g := randdag.MustGenerate(cfg)
		m := cost.FromGraph(g, cost.DefaultContention())
		res, err := Schedule(g, m, Options{GPUs: 2, InterOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := brute.BestPlacement(g, m, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Latency < opt.Latency-1e-9 {
			t.Fatalf("seed %d: LP %g below exhaustive optimum %g", seed, res.Latency, opt.Latency)
		}
	}
}
