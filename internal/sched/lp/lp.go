// Package lp implements HIOS-LP, the paper's headline algorithm
// (Algorithm 1): hierarchical inter-operator scheduling based on iterative
// longest-path mapping across GPUs, followed by sliding-window intra-GPU
// parallelization (Algorithm 2, package window).
//
// Spatial mapping: the algorithm repeatedly extracts the longest valid path
// from the still-unscheduled part of the computation graph — valid meaning
// its interior vertices have no dependency with already-scheduled operators
// — and tries mapping the whole path onto each GPU in turn. Placing a path
// on one GPU eliminates every transfer along it, which is why the path
// length counts both operator times and transfer times. The GPU giving the
// lowest end-to-end latency of the partial schedule wins.
//
// Temporal placement: after every trial mapping, all scheduled operators
// are re-placed in descending order of their priority indicators (the
// longest weighted path to the model's output, a topological order), each
// starting at the earliest time its GPU and its inputs allow.
package lp

import (
	"fmt"
	"math"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/window"
	"github.com/shus-lab/hios/internal/units"
)

// Options configures HIOS-LP.
type Options struct {
	// GPUs is M, the number of homogeneous devices. Must be >= 1.
	GPUs int
	// Window is the maximum window size w of the intra-GPU pass.
	// Zero selects window.DefaultSize.
	Window int
	// InterOnly skips Algorithm 2, yielding the "inter-GPU w/ LP" curve
	// of the paper's figures.
	InterOnly bool
}

// Validate reports whether the options are usable: at least one GPU and
// a non-negative window.
func (o Options) Validate() error {
	if o.GPUs < 1 {
		return fmt.Errorf("lp: need at least 1 GPU, got %d", o.GPUs)
	}
	if o.Window < 0 {
		return fmt.Errorf("lp: negative window %d", o.Window)
	}
	return nil
}

// Schedule runs HIOS-LP on g under cost model m.
//
//lint:hotpath
func Schedule(g *graph.Graph, m cost.Model, opt Options) (sched.Result, error) {
	if err := opt.Validate(); err != nil {
		return sched.Result{}, err
	}
	w := opt.Window
	if w == 0 {
		w = window.DefaultSize
	}
	n := g.NumOps()
	if n == 0 {
		return sched.Result{Schedule: sched.New(opt.GPUs), Latency: 0}, nil
	}

	// Priority indicators over the original graph, computed once.
	prio := g.PriorityIndicators()
	order := g.ByPriorityWith(prio)

	// The M trial mappings per extracted path run through the incremental
	// evaluator: each trial re-propagates only the inserted path's dirty
	// frontier, bounded by the incumbent best, and the winning mapping is
	// committed by splicing the path into the baseline (CommitInsert)
	// rather than re-evaluating the whole placement. That requires
	// every data edge to point forward in the priority order — guaranteed
	// for positive operator times, where descending p(v) is topological,
	// and checked once here so degenerate graphs (zero-time operators can
	// tie) fall back to full trial evaluations. Trial values are
	// bit-identical either way.
	var ie sched.IncrementalEvaluator
	var ev sched.Evaluator
	var pf graph.PathFinder
	pos := make([]int, n)
	for i, op := range order {
		pos[op] = i
	}
	incremental := true
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			incremental = false
			break
		}
	}

	unscheduled := make([]bool, n)
	for i := range unscheduled {
		unscheduled[i] = true
	}
	place := make([]int, n)
	for i := range place {
		place[i] = -1
	}
	if incremental {
		if _, err := ie.RebasePlacement(g, m, opt.GPUs, order, place); err != nil {
			return sched.Result{}, fmt.Errorf("lp: empty placement: %w", err)
		}
	}

	remaining := n
	for remaining > 0 {
		path, _ := pf.Find(g, unscheduled)
		if len(path) == 0 {
			return sched.Result{}, fmt.Errorf("lp: no path found with %d operators unscheduled", remaining)
		}
		for _, v := range path {
			unscheduled[v] = false
		}
		remaining -= len(path)

		// Try the whole path on every GPU; keep the mapping with the
		// lowest latency of the scheduled subgraph (ties: lowest GPU
		// index, which also exploits GPU homogeneity for the first
		// path — every device is equivalent, so GPU 0 wins). The trial
		// evaluates the placement directly — no Schedule object is
		// built until the mapping loop settles. A trial cut off by the
		// incumbent bound (ok == false) proved it cannot win: it never
		// strictly beats best, which is also what breaks the tie.
		best := units.Millis(math.Inf(1))
		bestGPU := 0
		if incremental {
			// path is a directed chain, so its topological order is
			// ascending priority position, as TrialInsert requires.
			for gi := 0; gi < opt.GPUs; gi++ {
				if lat, ok := ie.TrialInsert(gi, path, best); ok && lat < best {
					best, bestGPU = lat, gi
				}
			}
		} else {
			for gi := 0; gi < opt.GPUs; gi++ {
				for _, v := range path {
					place[v] = gi
				}
				lat, err := ev.LatencyFromPlacement(g, m, opt.GPUs, order, place)
				if err != nil {
					return sched.Result{}, fmt.Errorf("lp: trial mapping on GPU %d: %w", gi, err)
				}
				if lat < best {
					best, bestGPU = lat, gi
				}
			}
		}
		for _, v := range path {
			place[v] = bestGPU
		}
		if incremental && remaining > 0 {
			ie.CommitInsert(bestGPU, path)
		}
	}

	s := sched.FromPlacement(opt.GPUs, order, place)
	lat, err := ev.Latency(g, m, s)
	if err != nil {
		return sched.Result{}, err
	}
	if opt.InterOnly {
		return sched.Result{Schedule: s, Latency: lat}, nil
	}
	return window.Parallelize(g, m, s, w)
}
