package sched

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/units"
)

// IncrementalEvaluator answers "what would the latency be under this
// small edit?" without re-evaluating the whole schedule. A Rebase (or
// RebasePlacement) runs one full evaluation and keeps its stage DAG,
// durations and timeline as the baseline; each trial then re-propagates
// start times only through the edit's dirty frontier, reading every
// untouched stage's time straight from the baseline.
//
// Two edits are supported, matching the two hot trial loops of the HIOS
// schedulers:
//
//   - TrialFuse (after Rebase): Algorithm 2's candidate fusion — merge
//     stages si..si+p of one GPU into a single concurrent stage.
//   - TrialInsert (after RebasePlacement): Algorithm 1's trial mapping —
//     place a still-unscheduled operator path onto one GPU as singleton
//     stages interleaved by priority order. CommitInsert makes the
//     winning trial the new baseline by splicing the inserted stages
//     into the baseline structures in place, so HIOS-LP never pays a
//     full re-evaluation per committed path.
//
// Propagation is change-driven: starting from the stages whose
// dependency lists the edit touches, stages are recomputed in a
// topological order of the baseline stage DAG (one forward scan over the
// recorded order, skipping unstamped stages, ending when none pend),
// and a stage whose recomputed finish bit-equals its baseline finish
// stops the wave — its downstream would read inputs identical to the
// baseline and recompute to baseline values. Trial results are
// therefore bit-identical to running the full evaluator on the
// materialized candidate: the recomputed frontier uses exactly the
// candidate's dependency terms, floating-point max is associative and
// commutative without rounding, and per-GPU finish monotonicity
// (zero-lag sequential chains) lets the maximum over untouched stages
// be read off each GPU's last untouched stage. The differential
// property tests in incremental_test.go pin this.
//
// Both trials take an upper bound (the incumbent best latency) and
// abort early — returning ok == false — as soon as the candidate's
// latency provably meets or exceeds it: every propagated stage finish is
// a lower bound on the candidate's makespan. Pass Unbounded to force an
// exact result. (A trial may also return ok == true with a latency at
// or above the bound; callers comparing lat < best treat both alike.)
//
// The zero value is ready to use. Not safe for concurrent use; give
// each goroutine its own.
type IncrementalEvaluator struct {
	ev Evaluator // full evaluator; its scratch arrays ARE the baseline snapshot

	g     *graph.Graph
	m     cost.Model
	nGPUs int
	ns    int          // baseline stage count
	base  units.Millis // baseline latency

	gpuLo    []int   // stage-id range of GPU gi: [gpuLo[gi], gpuLo[gi+1])
	stageGPU []int32 // stage id -> GPU

	// Schedule mode only (Rebase): transitive closure of the baseline
	// stage DAG as bitset rows, for O(p·ns/64) fusion cycle checks.
	cwords int
	sfwd   []uint64 // stage id -> bitset row of stages it reaches
	sbwd   []uint64 // stage id -> bitset row of stages reaching it
	rowBuf []uint64 // closure-remap scratch: one source row
	mrow   []uint64 // closure-remap scratch: the merged stage's two rows

	// Placement mode only (RebasePlacement).
	order   []graph.OpID // priority order the placement was built over
	pos     []int        // op -> index in order
	stageOp []graph.OpID // stage id -> its single op

	// Trial scratch, epoch-stamped so trials neither allocate nor clear.
	// Trials publish recomputed finishes straight into the baseline's
	// finish array — so the propagation's dependency scans are single
	// plain loads, with no stamp branches — and roll the touched entries
	// back before returning; tFinish keeps a copy of each recomputed
	// value for the commit splices, save the displaced baseline values
	// for the rollback, and touched lists the stamped ids.
	epoch   int64
	stamp   []int64        // stage id -> epoch when queued for recomputation
	tFinish []units.Millis // recomputed finish of a stamped stage
	save    []units.Millis // displaced baseline finish of a stamped stage
	touched []int32        // stamped stage ids of the current trial
	posBits []uint64       // queued scan positions (topo order or priority order)

	// Last TrialFuse's merged-stage duration and finish, read back by
	// CommitFuse's splice (valid under the trial's epoch), plus enough
	// identity to recognize that the trial CommitFuse is asked to commit
	// is the one whose propagation state is still live — the common case
	// in the sliding-window pass, where the winning window size is the
	// last one tried — so the commit can splice directly instead of
	// re-running the propagation.
	fuseDur    units.Millis
	fuseFinish units.Millis
	lastGi     int
	lastSi     int
	lastP      int
	lastLat    units.Millis
	lastValid  bool

	// TrialInsert scratch.
	opStamp    []int64        // op -> epoch when a member of the inserted set
	insIdxOf   []int32        // op -> index in the inserted set (valid under opStamp)
	insAfter   []int32        // inserted j -> existing stage it lands after (gpuLo[gi]-1 for none)
	insSeqPred []int32        // inserted j -> seq predecessor (-1, stage id, or ns+j')
	insFinish  []units.Millis // inserted j -> recomputed finish
	seqStamp   []int64        // stage id -> epoch when its seq-pred was substituted
	seqNew     []int32        // substituted seq-pred (an inserted id ns+j)
	extraStamp []int64        // stage id -> epoch when it has extra deps from inserted ops
	extraHead  []int32        // head of the stage's extra-dep list in the pools below
	extraFrom  []int32        // pool: dep source (inserted index)
	extraLag   []units.Millis // pool: dep lag
	extraNext  []int32        // pool: next list index, -1 ends

	// CommitInsert scratch: per-stage patch lists plus the double-buffered
	// baseline arrays the splice writes into (swapped with the
	// evaluator's on every commit).
	newOf    []int32 // old stage id -> new stage id
	insNew   []int32 // inserted j -> new stage id
	runStamp []int64 // stage id -> epoch when an inserted run lands right after it
	runHead  []int32 // first inserted index of that run
	asStamp  []int64 // stage id -> epoch when it gains succ edges to inserted stages
	asHead   []int32 // head of its added-successor list in the pools below
	asTo     []int32 // pool: added successor (inserted index)
	asNext   []int32 // pool: next list index, -1 ends
	depOff2  []int
	depFrom2 []int
	depLag2  []units.Millis
	succOff2 []int
	succTo2  []int
	dur2     []units.Millis
	finish2  []units.Millis
	seqPrev2 []int
	stageOp2 []graph.OpID
	one      [1]graph.OpID
}

// Unbounded disables a trial's early-exit bound, forcing the exact
// candidate latency.
var Unbounded = units.Millis(math.Inf(1))

// errTrialCycle reports that a trial fusion would deadlock: the merged
// stage lies on a directed cycle of the contracted stage graph. It
// matches the full evaluator's cycle error under errors.Is.
var errTrialCycle = fmt.Errorf("sched: trial fusion creates a stage-graph cycle: %w", graph.ErrCycle)

// errTrialDirectDep reports a direct data dependency between two
// operators of the trial-fused stage, which the full evaluator likewise
// rejects.
var errTrialDirectDep = errors.New("sched: trial-fused operators have a direct dependency")

// Rebase makes s the baseline for subsequent TrialFuse calls: one full
// evaluation whose timeline, stage DAG and durations the trials read
// from, plus the stage DAG's transitive closure for the fusion cycle
// checks. It returns the schedule's latency.
func (ie *IncrementalEvaluator) Rebase(g *graph.Graph, m cost.Model, s *Schedule) (units.Millis, error) {
	lat, err := ie.ev.Latency(g, m, s)
	if err != nil {
		return 0, err
	}
	ie.g, ie.m = g, m
	ie.nGPUs = len(s.GPUs)
	ie.gpuLo = growSlice(ie.gpuLo, ie.nGPUs+1)
	ns := 0
	for gi := range s.GPUs {
		ie.gpuLo[gi] = ns
		ns += len(s.GPUs[gi].Stages)
	}
	ie.gpuLo[ie.nGPUs] = ns
	ie.finishRebase(ns, lat)
	ie.buildStageClosure()
	return lat, nil
}

// RebasePlacement makes the singleton-stage schedule implied by
// (nGPUs, order, place) the baseline for subsequent TrialInsert and
// CommitInsert calls, without materializing it (see
// Evaluator.LatencyFromPlacement). Operators with place < 0 are
// unscheduled. The order slice must stay unmodified while trials run
// against this baseline, and every data edge must point forward in it
// (guaranteed when it is a topological order, as descending priority is
// for positive operator times).
func (ie *IncrementalEvaluator) RebasePlacement(g *graph.Graph, m cost.Model, nGPUs int, order []graph.OpID, place []int) (units.Millis, error) {
	lat, err := ie.ev.LatencyFromPlacement(g, m, nGPUs, order, place)
	if err != nil {
		return 0, err
	}
	ie.g, ie.m = g, m
	ie.nGPUs = nGPUs
	ie.order = order
	n := g.NumOps()
	ie.pos = growSlice(ie.pos, n)
	for i, op := range order {
		ie.pos[op] = i
	}
	// Replay LatencyFromPlacement's stage-id assignment (GPU-major, then
	// priority order) to index the per-GPU id ranges and each singleton
	// stage's operator.
	ie.gpuLo = growSlice(ie.gpuLo, nGPUs+1)
	ie.stageOp = growSlice(ie.stageOp, n)
	ns := 0
	for gi := 0; gi < nGPUs; gi++ {
		ie.gpuLo[gi] = ns
		for _, op := range order {
			if place[op] == gi {
				ie.stageOp[ns] = op
				ns++
			}
		}
	}
	ie.gpuLo[nGPUs] = ns
	ie.finishRebase(ns, lat)
	return lat, nil
}

// finishRebase sizes the trial scratch for ns baseline stages and
// records the per-stage GPU index.
func (ie *IncrementalEvaluator) finishRebase(ns int, lat units.Millis) {
	ie.ns = ns
	ie.base = lat
	ie.stageGPU = growSliceCap(ie.stageGPU, ns)
	for gi := 0; gi < ie.nGPUs; gi++ {
		for id := ie.gpuLo[gi]; id < ie.gpuLo[gi+1]; id++ {
			ie.stageGPU[id] = int32(gi)
		}
	}
	ie.growStageStamps(ns)
	if ie.g != nil {
		n := ie.g.NumOps()
		ie.opStamp = growStamped(ie.opStamp, n)
		ie.insIdxOf = growSlice(ie.insIdxOf, n)
		ie.posBits = growSlice(ie.posBits, (n+63)/64) // ns <= n in both modes
	}
}

// growStageStamps sizes the epoch-stamped per-stage trial scratch. The
// arrays grow by one path per committed insertion, so fresh storage
// carries capacity headroom.
func (ie *IncrementalEvaluator) growStageStamps(ns int) {
	ie.stamp = growStamped(ie.stamp, ns)
	ie.tFinish = growSliceCap(ie.tFinish, ns)
	ie.save = growSliceCap(ie.save, ns)
	ie.seqStamp = growStamped(ie.seqStamp, ns)
	ie.seqNew = growSliceCap(ie.seqNew, ns)
	ie.extraStamp = growStamped(ie.extraStamp, ns)
	ie.extraHead = growSliceCap(ie.extraHead, ns)
	ie.runStamp = growStamped(ie.runStamp, ns)
	ie.runHead = growSliceCap(ie.runHead, ns)
	ie.asStamp = growStamped(ie.asStamp, ns)
	ie.asHead = growSliceCap(ie.asHead, ns)
}

// buildStageClosure computes forward and backward reachability bitsets
// over the baseline stage DAG with the usual word-parallel DP along the
// recorded topological order: O(E·ns/64) per Rebase, amortized across
// every TrialFuse cycle check against that baseline.
func (ie *IncrementalEvaluator) buildStageClosure() {
	e := &ie.ev
	ns := ie.ns
	w := (ns + 63) / 64
	ie.cwords = w
	ie.sfwd = growSlice(ie.sfwd, ns*w)
	ie.sbwd = growSlice(ie.sbwd, ns*w)
	for i := 0; i < ns*w; i++ {
		ie.sfwd[i] = 0
		ie.sbwd[i] = 0
	}
	for i := ns - 1; i >= 0; i-- {
		v := int(e.topoSeq[i])
		row := ie.sfwd[v*w : v*w+w]
		for k := e.succOff[v]; k < e.succOff[v+1]; k++ {
			t := e.succTo[k]
			row[t>>6] |= 1 << (uint(t) & 63)
			trow := ie.sfwd[t*w : t*w+w]
			for j := 0; j < w; j++ {
				row[j] |= trow[j]
			}
		}
	}
	for i := 0; i < ns; i++ {
		v := int(e.topoSeq[i])
		row := ie.sbwd[v*w : v*w+w]
		for k := e.depOff[v]; k < e.depOff[v+1]; k++ {
			s := e.depFrom[k]
			row[s>>6] |= 1 << (uint(s) & 63)
			srow := ie.sbwd[s*w : s*w+w]
			for j := 0; j < w; j++ {
				row[j] |= srow[j]
			}
		}
	}
}

// remapClosureRow rewrites one closure bitset row for the contraction of
// stage ids lo..hi into lo: bits below lo keep their place, bit lo
// becomes "any bit was set in [lo, hi]", and bits above hi shift down by
// p = hi-lo. It reports whether the row intersected the fused range.
// dst and src must not alias (rows move between strides in place, so the
// caller stages src through a scratch buffer).
func remapClosureRow(dst, src []uint64, lo, hi, p, w2 int) bool {
	loW := lo >> 6
	hit := false
	for wi := loW; wi <= hi>>6; wi++ {
		if src[wi]&rangeWordMask(wi, lo, hi) != 0 {
			hit = true
			break
		}
	}
	k, s := p>>6, uint(p&63)
	w := len(src)
	for wi := 0; wi < w2; wi++ {
		var sh uint64
		if wi+k < w {
			sh = src[wi+k] >> s
			if s != 0 && wi+k+1 < w {
				sh |= src[wi+k+1] << (64 - s)
			}
		}
		switch {
		case wi < loW:
			dst[wi] = src[wi]
		case wi > loW:
			dst[wi] = sh
		default:
			lowMask := uint64(1)<<(uint(lo)&63) - 1
			out := src[wi]&lowMask | sh&^lowMask
			out &^= 1 << (uint(lo) & 63)
			dst[wi] = out
		}
	}
	if hit {
		dst[loW] |= 1 << (uint(lo) & 63)
	}
	return hit
}

// remapStageClosure updates the stage-closure bitsets for the
// contraction of ids lo..hi into lo, in O(ns·w) word operations instead
// of re-running the O(E·w) DP. Contracted reachability decomposes as:
// s reaches t afterwards iff s reached t before, or s reached a member
// and a member reached t — so every row is bit-remapped (members
// collapse into bit lo, higher bits shift down) and rows that
// intersected the fused range additionally inherit the merged stage's
// row, itself the remapped union of the members' rows. The collapsed
// self-bit is cleared: the committed fusion passed the cycle check, so
// no external path re-enters the merged stage. ns is the stage count
// before the contraction.
func (ie *IncrementalEvaluator) remapStageClosure(ns, lo, hi, p int) {
	w := ie.cwords
	ns2 := ns - p
	w2 := (ns2 + 63) / 64
	loW := lo >> 6
	loBit := uint64(1) << (uint(lo) & 63)
	ie.rowBuf = growSlice(ie.rowBuf, w)
	ie.mrow = growSlice(ie.mrow, 2*w2)
	fwdM := ie.mrow[:w2]
	bwdM := ie.mrow[w2 : 2*w2]
	for j := 0; j < w2; j++ {
		fwdM[j] = 0
		bwdM[j] = 0
	}
	for id := lo; id <= hi; id++ {
		remapClosureRow(ie.rowBuf[:w2], ie.sfwd[id*w:id*w+w], lo, hi, p, w2)
		for j := 0; j < w2; j++ {
			fwdM[j] |= ie.rowBuf[j]
		}
		remapClosureRow(ie.rowBuf[:w2], ie.sbwd[id*w:id*w+w], lo, hi, p, w2)
		for j := 0; j < w2; j++ {
			bwdM[j] |= ie.rowBuf[j]
		}
	}
	fwdM[loW] &^= loBit
	bwdM[loW] &^= loBit

	// Rewrite every surviving row in ascending new id: writes at stride
	// w2 never pass the pending reads at stride w, and each source row
	// is staged through the scratch buffer because the two can overlap.
	x := 0
	for o := 0; o < ns; o++ {
		if o > lo && o <= hi {
			continue
		}
		if o == lo {
			copy(ie.sfwd[x*w2:x*w2+w2], fwdM)
			copy(ie.sbwd[x*w2:x*w2+w2], bwdM)
			x++
			continue
		}
		copy(ie.rowBuf[:w], ie.sfwd[o*w:o*w+w])
		if remapClosureRow(ie.sfwd[x*w2:x*w2+w2], ie.rowBuf[:w], lo, hi, p, w2) {
			row := ie.sfwd[x*w2 : x*w2+w2]
			for j := 0; j < w2; j++ {
				row[j] |= fwdM[j]
			}
		}
		copy(ie.rowBuf[:w], ie.sbwd[o*w:o*w+w])
		if remapClosureRow(ie.sbwd[x*w2:x*w2+w2], ie.rowBuf[:w], lo, hi, p, w2) {
			row := ie.sbwd[x*w2 : x*w2+w2]
			for j := 0; j < w2; j++ {
				row[j] |= bwdM[j]
			}
		}
		x++
	}
	ie.cwords = w2
}

// growStamped grows an epoch-stamp array. Fresh storage starts at
// epoch 0, which never matches a live epoch (bumpEpoch starts at 1 and
// only increments), so stale and fresh entries are equally dead.
func growStamped(buf []int64, n int) []int64 {
	if cap(buf) < n {
		nb := make([]int64, n, 2*n)
		copy(nb, buf)
		return nb
	}
	return buf[:n]
}

// BaseLatency returns the latency of the current baseline.
func (ie *IncrementalEvaluator) BaseLatency() units.Millis { return ie.base }

// bumpEpoch opens a new trial: all stamps from earlier trials die.
func (ie *IncrementalEvaluator) bumpEpoch() {
	ie.epoch++
}

// rangeWordMask returns the bits of 64-bit word wi that cover stage ids
// lo..hi inclusive.
func rangeWordMask(wi, lo, hi int) uint64 {
	base := wi << 6
	l, h := lo-base, hi-base
	if h < 0 || l > 63 {
		return 0
	}
	if l < 0 {
		l = 0
	}
	if h > 63 {
		h = 63
	}
	m := ^uint64(0) << uint(l)
	if h < 63 {
		m &= uint64(1)<<uint(h+1) - 1
	}
	return m
}

// rollbackFinish restores the baseline finish of every stage the trial
// overlaid: the stamped ids in touched, plus (in fuse mode) the fused
// range loDead..hiDead, which carried the merged finish.
func (ie *IncrementalEvaluator) rollbackFinish(loDead, hiDead int) {
	e := &ie.ev
	for _, t := range ie.touched {
		e.finish[t] = ie.save[t]
	}
	for id := loDead; id <= hiDead; id++ {
		e.finish[id] = ie.save[id]
	}
}

// cleanMax returns the maximum baseline finish over all stages the trial
// left untouched. Stage finish times are monotone along each GPU's stage
// list (consecutive stages are linked by zero-lag sequential edges), so
// each GPU contributes the finish of its highest-id unstamped stage; the
// walk back over stamped stages costs O(#stamped) overall. On editGPU
// (when >= 0), ids deadLo..deadHi — TrialFuse's fused range, which is
// neither stamped nor alive — are skipped too.
func (ie *IncrementalEvaluator) cleanMax(editGPU, deadLo, deadHi int) units.Millis {
	e := &ie.ev
	best := units.Millis(0)
	for gi := 0; gi < ie.nGPUs; gi++ {
		idx := ie.gpuLo[gi+1] - 1
		for idx >= ie.gpuLo[gi] {
			if gi == editGPU && idx >= deadLo && idx <= deadHi {
				idx = deadLo - 1
				continue
			}
			if ie.stamp[idx] == ie.epoch {
				idx--
				continue
			}
			if f := e.finish[idx]; f > best {
				best = f
			}
			break
		}
	}
	return best
}

// TrialFuse evaluates the candidate schedule obtained from the Rebase
// baseline by merging stages si..si+p of GPU gi into one concurrent
// stage holding members (the sorted union of their operators, exactly
// as the committed stage would store them). It returns the candidate's
// latency and ok == true, or ok == false when the early-exit bound
// proved the candidate cannot beat bound, or an error when the fusion
// is invalid (a direct dependency inside the merged stage, or a cycle
// through the contracted stage graph) — the same candidates, under the
// same error precedence, the full evaluator rejects.
func (ie *IncrementalEvaluator) TrialFuse(gi, si, p int, members []graph.OpID, bound units.Millis) (units.Millis, bool, error) {
	e := &ie.ev
	lo := ie.gpuLo[gi] + si
	hi := lo + p
	ie.bumpEpoch()
	ie.lastValid = false

	// Direct-dependency check: the fused ids carry exactly p internal
	// successor entries (their sequential chain); any extra one is a
	// data edge between two members, which the full evaluator rejects
	// before its cycle check.
	internal := 0
	for id := lo; id <= hi; id++ {
		for k := e.succOff[id]; k < e.succOff[id+1]; k++ {
			if t := e.succTo[k]; t >= lo && t <= hi {
				internal++
			}
		}
	}
	if internal > p {
		return 0, false, errTrialDirectDep
	}

	// Cycle check: every cycle the contraction can create passes
	// through the merged stage (all other edges exist in the acyclic
	// baseline), so a cycle exists iff some stage outside the fused
	// range is both reachable from a member and reaches a member —
	// one masked AND over the closure rows.
	w := ie.cwords
	for wi := 0; wi < w; wi++ {
		var u, d uint64
		for id := lo; id <= hi; id++ {
			u |= ie.sfwd[id*w+wi]
			d |= ie.sbwd[id*w+wi]
		}
		if u&d&^rangeWordMask(wi, lo, hi) != 0 {
			return 0, false, errTrialCycle
		}
	}

	// Merged stage duration and start time. Its dependencies are the
	// union of the members' dependencies minus intra-merge edges; every
	// such dependency keeps its baseline finish (an edited ancestor
	// would close a cycle, excluded above), and lags are unchanged
	// because fusing within one GPU moves no operator.
	durM := ie.m.StageTime(members)
	startM := units.Millis(0)
	for id := lo; id <= hi; id++ {
		for k := e.depOff[id]; k < e.depOff[id+1]; k++ {
			src := e.depFrom[k]
			if src >= lo && src <= hi {
				continue
			}
			if t := e.finish[src] + e.depLag[k]; t > startM {
				startM = t
			}
		}
	}
	finishM := startM + durM
	ie.fuseDur, ie.fuseFinish = durM, finishM
	if finishM >= bound {
		return 0, false, nil
	}
	latMax := finishM

	// Seed the frontier: every stage depending on a member reads the
	// merged finish instead of per-member finishes, so it must be
	// recomputed. From there, propagation is change-driven along the
	// baseline's recorded topological order, tracked as a consumable
	// bitset over topo positions: stamping a stage sets its position
	// bit, and the scan walks set bits in ascending order. Newly
	// stamped stages always sit at strictly later topo positions than
	// their stamper, so every queued stage is visited after all of its
	// inputs are final — recomputed finishes are published straight
	// into the baseline array (members carry the merged finish) and
	// rolled back before returning, which keeps the dependency scan a
	// single load per edge. A stage whose recomputed finish bit-equals
	// its baseline finish stops the wave.
	ie.touched = ie.touched[:0]
	for id := lo; id <= hi; id++ {
		ie.save[id] = e.finish[id]
		e.finish[id] = finishM
	}
	clear(ie.posBits[:(ie.ns+63)/64])
	pending := 0
	for id := lo; id <= hi; id++ {
		for k := e.succOff[id]; k < e.succOff[id+1]; k++ {
			t := e.succTo[k]
			if t >= lo && t <= hi {
				continue
			}
			if ie.stamp[t] != ie.epoch {
				ie.stamp[t] = ie.epoch
				ie.save[t] = e.finish[t]
				ie.touched = append(ie.touched, int32(t))
				p := int(e.topoPos[t])
				ie.posBits[p>>6] |= 1 << (uint(p) & 63)
				pending++
			}
		}
	}
	for wi := 0; pending > 0; wi++ {
		for ie.posBits[wi] != 0 {
			b := bits.TrailingZeros64(ie.posBits[wi])
			ie.posBits[wi] &^= 1 << uint(b)
			x := int(e.topoSeq[wi<<6|b])
			pending--
			st := units.Millis(0)
			for k := e.depOff[x]; k < e.depOff[x+1]; k++ {
				if t := e.finish[e.depFrom[k]] + e.depLag[k]; t > st {
					st = t
				}
			}
			fin := st + e.dur[x]
			ie.tFinish[x] = fin
			if fin > latMax {
				latMax = fin
			}
			if fin >= bound {
				ie.rollbackFinish(lo, hi)
				return 0, false, nil
			}
			if fin != e.finish[x] { //lint:floatexact change-stop rule: bit-equal finish ends the wave
				e.finish[x] = fin
				for k := e.succOff[x]; k < e.succOff[x+1]; k++ {
					t := e.succTo[k]
					if ie.stamp[t] != ie.epoch {
						ie.stamp[t] = ie.epoch
						ie.save[t] = e.finish[t]
						ie.touched = append(ie.touched, int32(t))
						p := int(e.topoPos[t])
						ie.posBits[p>>6] |= 1 << (uint(p) & 63)
						pending++
					}
				}
			}
		}
	}
	if c := ie.cleanMax(gi, lo, hi); c > latMax {
		latMax = c
	}
	ie.rollbackFinish(lo, hi)
	ie.lastGi, ie.lastSi, ie.lastP, ie.lastLat, ie.lastValid = gi, si, p, latMax, true
	return latMax, true, nil
}

// CommitFuse makes the TrialFuse candidate (gi, si, p, members) the new
// baseline and returns its latency. It reruns the trial without a bound
// and contracts the fused range out of the baseline CSR in place —
// remapping stage ids, dropping the p intra-range sequential edges,
// merging the trial's recomputed times — then refreshes the recorded
// topological order with a plain Kahn sweep and rebuilds the stage
// closure. Compared to a full Rebase this skips schedule validation,
// the graph-edge walk with its communication-cost lookups, and every
// per-stage duration model call: fusing within one GPU moves no
// operator, so all surviving lags and durations are the baseline's own
// values, and the merged stage's duration was already computed by the
// trial. The spliced baseline is bit-identical to a Rebase of the
// materialized schedule wherever it is read: dependency rows keep one
// entry per graph edge with exact lags (entry order never influences a
// max), finishes come from the trial, and only e.start and the
// operator maps go stale — neither is read before the next full
// evaluation.
func (ie *IncrementalEvaluator) CommitFuse(gi, si, p int, members []graph.OpID) (units.Millis, error) {
	lat := ie.lastLat
	if !(ie.lastValid && ie.lastGi == gi && ie.lastSi == si && ie.lastP == p) {
		// The candidate's propagation state was overwritten by a later
		// trial (or never ran): recompute it. A completed trial's state
		// is exact regardless of the bound it ran under — the bound
		// only causes early abandonment, which reports ok == false and
		// leaves lastValid unset.
		var err error
		lat, _, err = ie.TrialFuse(gi, si, p, members, Unbounded)
		if err != nil {
			return 0, err
		}
	}
	if err := ie.applyFuse(gi, si, p); err != nil {
		return 0, err
	}
	ie.base = lat
	ie.lastValid = false // the baseline the memo was relative to is gone
	return lat, nil
}

// applyFuse splices the edit state left by a completed TrialFuse into
// the baseline: stages lo..hi collapse into one stage at id lo and every
// later id shifts down by p. Runs under the same epoch as the trial.
// The contraction is fully in place: ids only move down and rows only
// shrink (exactly the p intra-range sequential edges disappear; the
// direct-dependency check rejected any data edge between members), so
// compaction writes never pass their reads, and rows of ids below the
// fused range keep their offsets — only entry values pointing at or
// beyond the range are rewritten.
func (ie *IncrementalEvaluator) applyFuse(gi, si, p int) error {
	e := &ie.ev
	lo := ie.gpuLo[gi] + si
	hi := lo + p
	ns := ie.ns
	ns2 := ns - p

	// Prefix ids (< lo): offsets, lags, durations and sequential links
	// are untouched (a same-GPU predecessor always has a smaller id);
	// remap entry values and merge stamped finishes.
	for k := 0; k < e.depOff[lo]; k++ {
		if src := e.depFrom[k]; src > hi {
			e.depFrom[k] = src - p
		} else if src >= lo {
			e.depFrom[k] = lo
		}
	}
	for k := 0; k < e.succOff[lo]; k++ {
		if t := e.succTo[k]; t > hi {
			e.succTo[k] = t - p
		} else if t >= lo {
			e.succTo[k] = lo
		}
	}
	for o := 0; o < lo; o++ {
		if ie.stamp[o] == ie.epoch {
			e.finish[o] = ie.tFinish[o]
		}
	}

	// From lo on, compact: the member rows lo..hi are contiguous in the
	// CSR pools and collapse into the merged row at new id lo; later
	// rows shift down. Row bounds are read into locals before the
	// offset slot is overwritten (only the x == o == lo iteration would
	// otherwise clobber its own read).
	nd, nsuc := e.depOff[lo], e.succOff[lo]
	x := lo
	for o := lo; o < ns; o++ {
		if o > lo && o <= hi {
			continue
		}
		last := o
		if o == lo {
			last = hi
		}
		dStart, dEnd := e.depOff[o], e.depOff[last+1]
		sStart, sEnd := e.succOff[o], e.succOff[last+1]
		e.depOff[x] = nd
		e.succOff[x] = nsuc
		for k := dStart; k < dEnd; k++ {
			src := e.depFrom[k]
			if src >= lo && src <= hi {
				if o == lo {
					continue // intra-range sequential edge
				}
				src = lo
			} else if src > hi {
				src -= p
			}
			e.depFrom[nd] = src
			e.depLag[nd] = e.depLag[k]
			nd++
		}
		for k := sStart; k < sEnd; k++ {
			t := e.succTo[k]
			if t >= lo && t <= hi {
				if o == lo {
					continue
				}
				t = lo
			} else if t > hi {
				t -= p
			}
			e.succTo[nsuc] = t
			nsuc++
		}
		if o == lo {
			e.dur[x] = ie.fuseDur
			e.finish[x] = ie.fuseFinish
			// e.seqPrev[lo] already names the stage before the range.
		} else {
			e.dur[x] = e.dur[o]
			if ie.stamp[o] == ie.epoch {
				e.finish[x] = ie.tFinish[o]
			} else {
				e.finish[x] = e.finish[o]
			}
			if sp := e.seqPrev[o]; sp > hi {
				e.seqPrev[x] = sp - p
			} else if sp >= lo {
				e.seqPrev[x] = lo // only hi+1's chain edge points into the range
			} else {
				e.seqPrev[x] = sp
			}
		}
		x++
	}
	e.depOff[ns2] = nd
	e.succOff[ns2] = nsuc

	for g2 := gi + 1; g2 <= ie.nGPUs; g2++ {
		ie.gpuLo[g2] -= p
	}
	ie.ns = ns2
	for id := lo; id < ns2; id++ {
		ie.stageGPU[id] = ie.stageGPU[id+p]
	}
	ie.stageGPU = ie.stageGPU[:ns2]
	ie.growStageStamps(ns2)

	// Refresh the recorded topological order with a Kahn sweep over the
	// contracted DAG — pure integer work, no model calls. The committed
	// fusion passed the trial's cycle check, so the sweep must cover
	// every stage; a shortfall would mean the splice corrupted the DAG.
	e.indeg = growSlice(e.indeg, ns2)
	e.topoSeq = growSlice(e.topoSeq, ns2)
	e.topoPos = growSlice(e.topoPos, ns2)
	e.ready = e.ready[:0]
	for id := 0; id < ns2; id++ {
		e.indeg[id] = e.depOff[id+1] - e.depOff[id]
		if e.indeg[id] == 0 {
			e.ready = append(e.ready, id)
		}
	}
	visited := 0
	for len(e.ready) > 0 {
		id := e.ready[len(e.ready)-1]
		e.ready = e.ready[:len(e.ready)-1]
		e.topoSeq[visited] = int32(id)
		e.topoPos[id] = int32(visited)
		visited++
		for k := e.succOff[id]; k < e.succOff[id+1]; k++ {
			t := e.succTo[k]
			e.indeg[t]--
			if e.indeg[t] == 0 {
				e.ready = append(e.ready, t)
			}
		}
	}
	if visited != ns2 {
		return fmt.Errorf("sched: committed fusion left a cyclic stage graph: %w", graph.ErrCycle)
	}
	ie.remapStageClosure(ns, lo, hi, p)
	return nil
}

// TrialInsert evaluates the placement obtained from the RebasePlacement
// baseline by scheduling ops onto GPU gi as singleton stages interleaved
// into the GPU's sequence by priority order — exactly what
// LatencyFromPlacement computes after setting place[op] = gi for each.
// ops must be sorted by ascending position in the baseline's order and
// contain only operators unscheduled in the baseline. It returns the
// candidate's latency, or ok == false when the early-exit bound proved
// the candidate cannot beat bound.
//
// Placement-mode stage graphs cannot cycle — every dependency edge,
// sequential or data, points forward in the priority order — so unlike
// TrialFuse there is no error case, and the priority position replaces
// the recorded topological order as the propagation key.
func (ie *IncrementalEvaluator) TrialInsert(gi int, ops []graph.OpID, bound units.Millis) (units.Millis, bool) {
	return ie.insertCore(gi, ops, bound)
}

// insertCore runs the trial propagation shared by TrialInsert and
// CommitInsert, leaving the full edit state (stamps, substitutions,
// extra-dependency pools, recomputed times) for applyInsert to splice.
func (ie *IncrementalEvaluator) insertCore(gi int, ops []graph.OpID, bound units.Millis) (units.Millis, bool) {
	e := &ie.ev
	g, m := ie.g, ie.m
	k := len(ops)
	ns := ie.ns
	glo, ghi := ie.gpuLo[gi], ie.gpuLo[gi+1]
	ie.bumpEpoch()
	ie.lastValid = false
	ie.touched = ie.touched[:0]
	ie.insAfter = growSlice(ie.insAfter, k)
	ie.insSeqPred = growSlice(ie.insSeqPred, k)
	ie.insFinish = growSlice(ie.insFinish, k)
	ie.extraFrom = ie.extraFrom[:0]
	ie.extraLag = ie.extraLag[:0]
	ie.extraNext = ie.extraNext[:0]
	// Queued work is a consumable bitset over priority positions:
	// inserted ops and stamped baseline stages set their position bit,
	// and the processing scan below walks set bits in ascending order.
	clear(ie.posBits[:(g.NumOps()+63)/64])
	for j, op := range ops {
		ie.opStamp[op] = ie.epoch
		ie.insIdxOf[op] = int32(j)
		p := ie.pos[op]
		ie.posBits[p>>6] |= 1 << (uint(p) & 63)
	}

	// Insertion points by binary search: GPU gi's stage ids ascend in
	// priority position, so each inserted op lands after the last
	// existing stage with a smaller position. Consecutive inserted ops
	// sharing an insertion point form a run chained among themselves;
	// the first existing stage after each run has its sequential
	// predecessor substituted by the run's last op and seeds the
	// frontier (its dependency inputs changed).
	for j := 0; j < k; j++ {
		pj := ie.pos[ops[j]]
		a, b := glo, ghi
		for a < b {
			mid := int(uint(a+b) >> 1)
			if ie.pos[ie.stageOp[mid]] < pj {
				a = mid + 1
			} else {
				b = mid
			}
		}
		ie.insAfter[j] = int32(a - 1)
		switch {
		case j > 0 && ie.insAfter[j-1] == int32(a-1):
			ie.insSeqPred[j] = int32(ns + j - 1)
		case a-1 >= glo:
			ie.insSeqPred[j] = int32(a - 1)
		default:
			ie.insSeqPred[j] = -1
		}
	}
	pending := 0
	for j := 0; j < k; j++ {
		if j+1 < k && ie.insAfter[j+1] == ie.insAfter[j] {
			continue // not the last op of its run
		}
		if nxt := int(ie.insAfter[j]) + 1; nxt < ghi {
			ie.seqStamp[nxt] = ie.epoch
			ie.seqNew[nxt] = int32(ns + j)
			if ie.stamp[nxt] != ie.epoch {
				ie.stamp[nxt] = ie.epoch
				ie.save[nxt] = e.finish[nxt]
				ie.touched = append(ie.touched, int32(nxt))
				p := ie.pos[ie.stageOp[nxt]]
				ie.posBits[p>>6] |= 1 << (uint(p) & 63)
				pending++
			}
		}
	}

	// New data edges from inserted ops to already-scheduled stages seed
	// the frontier as epoch-stamped extra-dependency lists.
	for j := 0; j < k; j++ {
		u := ops[j]
		for i := 0; i < g.OutDegree(u); i++ {
			to, _ := g.SuccAt(u, i)
			if ie.opStamp[to] == ie.epoch {
				continue // inserted->inserted: handled from the target's side
			}
			sv := e.opStage[to]
			if sv < 0 {
				continue // unscheduled target: inactive under partial evaluation
			}
			if ie.extraStamp[sv] != ie.epoch {
				ie.extraStamp[sv] = ie.epoch
				ie.extraHead[sv] = -1
			}
			ie.extraFrom = append(ie.extraFrom, int32(j))
			ie.extraLag = append(ie.extraLag, cost.CommBetween(m, u, to, gi, e.place[to]))
			ie.extraNext = append(ie.extraNext, ie.extraHead[sv])
			ie.extraHead[sv] = int32(len(ie.extraFrom) - 1)
			if ie.stamp[sv] != ie.epoch {
				ie.stamp[sv] = ie.epoch
				ie.save[sv] = e.finish[sv]
				ie.touched = append(ie.touched, int32(sv))
				p := ie.pos[ie.stageOp[sv]]
				ie.posBits[p>>6] |= 1 << (uint(p) & 63)
				pending++
			}
		}
	}

	// Process queued baseline stages and inserted stages in ascending
	// priority position by walking the set bits: every dependency of
	// either kind points backward in that order and newly queued stages
	// always sit strictly later than their stamper, so each visited
	// stage's inputs are final. The scan ends once every inserted stage
	// is placed and no stamped stage is pending. Baseline stages with
	// an unchanged recomputed finish stop the propagation; inserted
	// stages never stamp at all — their effects on existing stages are
	// fully seeded above.
	latMax := units.Millis(0)
	ij := 0
	wi := 0
	if k > 0 {
		wi = ie.pos[ops[0]] >> 6
	}
	for ; pending > 0 || ij < k; wi++ {
		for ie.posBits[wi] != 0 {
			b := bits.TrailingZeros64(ie.posBits[wi])
			ie.posBits[wi] &^= 1 << uint(b)
			op := ie.order[wi<<6|b]
			var fin units.Millis
			if ie.opStamp[op] == ie.epoch {
				fin = ie.recomputeInserted(ij, gi, ops)
				ie.insFinish[ij] = fin
				ij++
			} else {
				x := e.opStage[op]
				pending--
				fin = ie.recomputeExisting(x)
				ie.tFinish[x] = fin
				if fin != e.finish[x] { //lint:floatexact change-stop rule: bit-equal finish ends the wave
					e.finish[x] = fin
					for kk := e.succOff[x]; kk < e.succOff[x+1]; kk++ {
						if t := e.succTo[kk]; ie.stamp[t] != ie.epoch {
							ie.stamp[t] = ie.epoch
							ie.save[t] = e.finish[t]
							ie.touched = append(ie.touched, int32(t))
							p := ie.pos[ie.stageOp[t]]
							ie.posBits[p>>6] |= 1 << (uint(p) & 63)
							pending++
						}
					}
				}
			}
			if fin > latMax {
				latMax = fin
			}
			if fin >= bound {
				ie.rollbackFinish(0, -1)
				return 0, false
			}
		}
	}
	if c := ie.cleanMax(-1, 0, -1); c > latMax {
		latMax = c
	}
	ie.rollbackFinish(0, -1)
	return latMax, true
}

// recomputeExisting returns the trial finish time of queued baseline
// stage x: its baseline dependency list with the sequential edge
// substituted when an inserted run now precedes it, plus the trial's
// extra dependencies from inserted operators.
func (ie *IncrementalEvaluator) recomputeExisting(x int) units.Millis {
	e := &ie.ev
	st := units.Millis(0)
	kk := e.depOff[x]
	if ie.seqStamp[x] == ie.epoch {
		// Zero-lag sequential edge from the last inserted stage of the
		// run before x; x's baseline sequential dependency (the first
		// entry of its list, when it has one) is replaced by it.
		st = ie.insFinish[int(ie.seqNew[x])-ie.ns]
		if e.seqPrev[x] >= 0 {
			kk++
		}
	}
	for ; kk < e.depOff[x+1]; kk++ {
		// Stamped sources have already published their recomputed finish
		// into e.finish (they precede x in priority order), so one plain
		// load covers both the trial overlay and the baseline.
		if t := e.finish[e.depFrom[kk]] + e.depLag[kk]; t > st {
			st = t
		}
	}
	if ie.extraStamp[x] == ie.epoch {
		for idx := ie.extraHead[x]; idx >= 0; idx = ie.extraNext[idx] {
			if t := ie.insFinish[ie.extraFrom[idx]] + ie.extraLag[idx]; t > st {
				st = t
			}
		}
	}
	return st + e.dur[x]
}

// recomputeInserted returns the trial finish time of inserted stage j on
// GPU gi: its sequential predecessor in the merged chain plus its
// operator's data dependencies — inserted inputs read from insFinish,
// existing inputs straight from e.finish (stamped ones have already
// published their trial value there).
func (ie *IncrementalEvaluator) recomputeInserted(j, gi int, ops []graph.OpID) units.Millis {
	e := &ie.ev
	g, m := ie.g, ie.m
	v := ops[j]
	st := units.Millis(0)
	if sp := ie.insSeqPred[j]; sp >= 0 {
		if sp >= int32(ie.ns) {
			st = ie.insFinish[int(sp)-ie.ns]
		} else {
			st = e.finish[sp]
		}
	}
	for i := 0; i < g.InDegree(v); i++ {
		u, _ := g.PredAt(v, i)
		var f units.Millis
		var gu int
		if ie.opStamp[u] == ie.epoch {
			f = ie.insFinish[ie.insIdxOf[u]]
			gu = gi
		} else {
			su := e.opStage[u]
			if su < 0 {
				continue // unscheduled input: inactive under partial evaluation
			}
			f = e.finish[su]
			gu = e.place[u]
		}
		if t := f + cost.CommBetween(m, u, v, gu, gi); t > st {
			st = t
		}
	}
	ie.one[0] = v
	return st + m.StageTime(ie.one[:1])
}

// CommitInsert makes the TrialInsert candidate (gi, ops) the new
// baseline and returns its latency. It reruns the trial without a bound
// and splices the inserted stages into the baseline structures in
// place — renumbering stage ids, rewriting the CSR stage DAG, and
// merging the trial's recomputed times — instead of re-evaluating the
// whole placement. The spliced baseline is bit-identical to what a
// fresh RebasePlacement would rebuild where it matters: copied rows
// keep their exact lags, new rows use the same cost-model calls the
// full evaluation would make, every dependency row still leads with its
// sequential edge, and dependency-entry order beyond that never
// influences a max.
func (ie *IncrementalEvaluator) CommitInsert(gi int, ops []graph.OpID) units.Millis {
	lat, _ := ie.insertCore(gi, ops, Unbounded)
	ie.applyInsert(gi, ops)
	ie.base = lat
	return lat
}

// applyInsert splices the edit state left by insertCore into the
// baseline. Runs under the same epoch as the insertCore call.
func (ie *IncrementalEvaluator) applyInsert(gi int, ops []graph.OpID) {
	e := &ie.ev
	g, m := ie.g, ie.m
	k := len(ops)
	ns := ie.ns
	ns2 := ns + k
	glo, ghi := ie.gpuLo[gi], ie.gpuLo[gi+1]

	// Stage-id renumbering: ids stay GPU-major and position-minor, so
	// GPU gi's ids open gaps at the insertion points and later GPUs
	// shift by k.
	ie.newOf = growSliceCap(ie.newOf, ns)
	ie.insNew = growSliceCap(ie.insNew, k)
	for o := 0; o < glo; o++ {
		ie.newOf[o] = int32(o)
	}
	shift, j := 0, 0
	for o := glo; o < ghi; o++ {
		for j < k && int(ie.insAfter[j]) < o {
			ie.insNew[j] = int32(o + shift)
			shift++
			j++
		}
		ie.newOf[o] = int32(o + shift)
	}
	for ; j < k; j++ {
		ie.insNew[j] = int32(ghi + shift)
		shift++
	}
	for o := ghi; o < ns; o++ {
		ie.newOf[o] = int32(o + k)
	}

	// Mark run heads (the existing stage each run hangs off, if any)
	// and collect the successor edges existing stages gain toward
	// inserted ops, as epoch-stamped lists.
	ie.asTo = ie.asTo[:0]
	ie.asNext = ie.asNext[:0]
	for j := 0; j < k; j++ {
		if (j == 0 || ie.insAfter[j] != ie.insAfter[j-1]) && int(ie.insAfter[j]) >= glo {
			ie.runStamp[ie.insAfter[j]] = ie.epoch
			ie.runHead[ie.insAfter[j]] = int32(j)
		}
		v := ops[j]
		for i := 0; i < g.InDegree(v); i++ {
			u, _ := g.PredAt(v, i)
			if ie.opStamp[u] == ie.epoch {
				continue
			}
			su := e.opStage[u]
			if su < 0 {
				continue
			}
			if ie.asStamp[su] != ie.epoch {
				ie.asStamp[su] = ie.epoch
				ie.asHead[su] = -1
			}
			ie.asTo = append(ie.asTo, int32(j))
			ie.asNext = append(ie.asNext, ie.asHead[su])
			ie.asHead[su] = int32(len(ie.asTo) - 1)
		}
	}

	// Counting pass: dependency and successor row sizes per new id,
	// then in-place prefix sums.
	ie.depOff2 = growSliceCap(ie.depOff2, ns2+1)
	ie.succOff2 = growSliceCap(ie.succOff2, ns2+1)
	for o := 0; o < ns; o++ {
		x := int(ie.newOf[o])
		dc := e.depOff[o+1] - e.depOff[o]
		if ie.seqStamp[o] == ie.epoch && e.seqPrev[o] < 0 {
			dc++ // gains a sequential edge it did not have
		}
		if ie.extraStamp[o] == ie.epoch {
			for idx := ie.extraHead[o]; idx >= 0; idx = ie.extraNext[idx] {
				dc++
			}
		}
		sc := e.succOff[o+1] - e.succOff[o]
		if ie.runStamp[o] == ie.epoch && !ie.hasSeqSucc(o) {
			sc++ // tail of GPU gi gains a sequential successor
		}
		if ie.asStamp[o] == ie.epoch {
			for idx := ie.asHead[o]; idx >= 0; idx = ie.asNext[idx] {
				sc++
			}
		}
		ie.depOff2[x] = dc
		ie.succOff2[x] = sc
	}
	for j := 0; j < k; j++ {
		x := int(ie.insNew[j])
		v := ops[j]
		dc := 0
		if ie.insSeqPred[j] >= 0 {
			dc++
		}
		sc := 0
		if (j+1 < k && ie.insAfter[j+1] == ie.insAfter[j]) || int(ie.insAfter[j])+1 < ghi {
			sc++ // sequential successor: next of its run, or the stage after it
		}
		for i := 0; i < g.InDegree(v); i++ {
			u, _ := g.PredAt(v, i)
			if ie.opStamp[u] == ie.epoch || e.opStage[u] >= 0 {
				dc++
			}
		}
		for i := 0; i < g.OutDegree(v); i++ {
			t, _ := g.SuccAt(v, i)
			if ie.opStamp[t] == ie.epoch || e.opStage[t] >= 0 {
				sc++
			}
		}
		ie.depOff2[x] = dc
		ie.succOff2[x] = sc
	}
	nd, nsuc := 0, 0
	for x := 0; x < ns2; x++ {
		dc, sc := ie.depOff2[x], ie.succOff2[x]
		ie.depOff2[x] = nd
		ie.succOff2[x] = nsuc
		nd += dc
		nsuc += sc
	}
	ie.depOff2[ns2] = nd
	ie.succOff2[ns2] = nsuc
	ie.depFrom2 = growSliceCap(ie.depFrom2, nd)
	ie.depLag2 = growSliceCap(ie.depLag2, nd)
	ie.succTo2 = growSliceCap(ie.succTo2, nsuc)
	ie.dur2 = growSliceCap(ie.dur2, ns2)
	ie.finish2 = growSliceCap(ie.finish2, ns2)
	ie.seqPrev2 = growSliceCap(ie.seqPrev2, ns2)
	ie.stageOp2 = growSliceCap(ie.stageOp2, ns2)

	// Fill pass. Every dependency row leads with its sequential edge
	// and every successor row with its sequential successor (matching
	// finishCompute's fill order, which the trial recomputations and
	// this splice itself key on).
	for o := 0; o < ns; o++ {
		x := int(ie.newOf[o])
		dc := ie.depOff2[x]
		kk := e.depOff[o]
		if ie.seqStamp[o] == ie.epoch {
			sp := int(ie.insNew[int(ie.seqNew[o])-ns])
			ie.depFrom2[dc] = sp
			ie.depLag2[dc] = 0
			dc++
			ie.seqPrev2[x] = sp
			if e.seqPrev[o] >= 0 {
				kk++ // baseline sequential entry replaced
			}
		} else if sp := e.seqPrev[o]; sp >= 0 {
			ie.seqPrev2[x] = int(ie.newOf[sp])
		} else {
			ie.seqPrev2[x] = -1
		}
		for ; kk < e.depOff[o+1]; kk++ {
			ie.depFrom2[dc] = int(ie.newOf[e.depFrom[kk]])
			ie.depLag2[dc] = e.depLag[kk]
			dc++
		}
		if ie.extraStamp[o] == ie.epoch {
			for idx := ie.extraHead[o]; idx >= 0; idx = ie.extraNext[idx] {
				ie.depFrom2[dc] = int(ie.insNew[ie.extraFrom[idx]])
				ie.depLag2[dc] = ie.extraLag[idx]
				dc++
			}
		}
		sc := ie.succOff2[x]
		kk = e.succOff[o]
		if ie.runStamp[o] == ie.epoch {
			ie.succTo2[sc] = int(ie.insNew[ie.runHead[o]])
			sc++
			if ie.hasSeqSucc(o) {
				kk++ // baseline sequential successor entry replaced
			}
		}
		for ; kk < e.succOff[o+1]; kk++ {
			ie.succTo2[sc] = int(ie.newOf[e.succTo[kk]])
			sc++
		}
		if ie.asStamp[o] == ie.epoch {
			for idx := ie.asHead[o]; idx >= 0; idx = ie.asNext[idx] {
				ie.succTo2[sc] = int(ie.insNew[ie.asTo[idx]])
				sc++
			}
		}
		ie.dur2[x] = e.dur[o]
		if ie.stamp[o] == ie.epoch {
			ie.finish2[x] = ie.tFinish[o]
		} else {
			ie.finish2[x] = e.finish[o]
		}
		ie.stageOp2[x] = ie.stageOp[o]
	}
	for j := 0; j < k; j++ {
		x := int(ie.insNew[j])
		v := ops[j]
		dc := ie.depOff2[x]
		switch sp := ie.insSeqPred[j]; {
		case sp >= int32(ns):
			ie.depFrom2[dc] = int(ie.insNew[int(sp)-ns])
			ie.depLag2[dc] = 0
			ie.seqPrev2[x] = ie.depFrom2[dc]
			dc++
		case sp >= 0:
			ie.depFrom2[dc] = int(ie.newOf[sp])
			ie.depLag2[dc] = 0
			ie.seqPrev2[x] = ie.depFrom2[dc]
			dc++
		default:
			ie.seqPrev2[x] = -1
		}
		for i := 0; i < g.InDegree(v); i++ {
			u, _ := g.PredAt(v, i)
			if ie.opStamp[u] == ie.epoch {
				ie.depFrom2[dc] = int(ie.insNew[ie.insIdxOf[u]])
				ie.depLag2[dc] = cost.CommBetween(m, u, v, gi, gi)
				dc++
			} else if su := e.opStage[u]; su >= 0 {
				ie.depFrom2[dc] = int(ie.newOf[su])
				ie.depLag2[dc] = cost.CommBetween(m, u, v, e.place[u], gi)
				dc++
			}
		}
		sc := ie.succOff2[x]
		if j+1 < k && ie.insAfter[j+1] == ie.insAfter[j] {
			ie.succTo2[sc] = int(ie.insNew[j+1])
			sc++
		} else if nxt := int(ie.insAfter[j]) + 1; nxt < ghi {
			ie.succTo2[sc] = int(ie.newOf[nxt])
			sc++
		}
		for i := 0; i < g.OutDegree(v); i++ {
			t, _ := g.SuccAt(v, i)
			if ie.opStamp[t] == ie.epoch {
				ie.succTo2[sc] = int(ie.insNew[ie.insIdxOf[t]])
				sc++
			} else if st := e.opStage[t]; st >= 0 {
				ie.succTo2[sc] = int(ie.newOf[st])
				sc++
			}
		}
		ie.one[0] = v
		ie.dur2[x] = m.StageTime(ie.one[:1])
		ie.finish2[x] = ie.insFinish[j]
		ie.stageOp2[x] = v
	}

	// Swap the rebuilt arrays in (the displaced ones become the next
	// commit's scratch) and refresh the operator maps and per-GPU
	// index. e.start and the recorded topo order go stale, but neither
	// is read between here and the next full evaluation.
	e.depOff, ie.depOff2 = ie.depOff2, e.depOff
	e.depFrom, ie.depFrom2 = ie.depFrom2, e.depFrom
	e.depLag, ie.depLag2 = ie.depLag2, e.depLag
	e.succOff, ie.succOff2 = ie.succOff2, e.succOff
	e.succTo, ie.succTo2 = ie.succTo2, e.succTo
	e.dur, ie.dur2 = ie.dur2, e.dur
	e.finish, ie.finish2 = ie.finish2, e.finish
	e.seqPrev, ie.seqPrev2 = ie.seqPrev2, e.seqPrev
	ie.stageOp, ie.stageOp2 = ie.stageOp2, ie.stageOp
	for x := 0; x < ns2; x++ {
		e.opStage[ie.stageOp[x]] = x
	}
	for _, v := range ops {
		e.place[v] = gi
	}
	for g2 := gi + 1; g2 <= ie.nGPUs; g2++ {
		ie.gpuLo[g2] += k
	}
	ie.ns = ns2
	ie.stageGPU = growSliceCap(ie.stageGPU, ns2)
	for g2 := 0; g2 < ie.nGPUs; g2++ {
		for id := ie.gpuLo[g2]; id < ie.gpuLo[g2+1]; id++ {
			ie.stageGPU[id] = int32(g2)
		}
	}
	ie.growStageStamps(ns2)
}

// hasSeqSucc reports whether baseline stage o has a same-GPU successor
// stage (and therefore leads its successor row with that edge).
func (ie *IncrementalEvaluator) hasSeqSucc(o int) bool {
	return o+1 < ie.gpuLo[ie.stageGPU[o]+1]
}
