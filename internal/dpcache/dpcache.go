// Package dpcache memoizes IOS block solves across the whole process.
//
// The IOS dynamic program (internal/sched/ios) is a pure function of the
// block it solves: the per-operator stage items (time, utilization), the
// intra-block dependency structure, the contention calibration, and the
// pruning options. Nothing else — not the operator IDs, not the graph the
// block came from — can influence the resulting stage decomposition. The
// experiment sweeps exploit none of that purity: the sliding-window
// refiner re-solves the same per-GPU subsequences over and over inside
// one schedule, and benchmark or serving loops re-solve whole graphs
// verbatim. This package keys each block solve by a canonical signature
// of exactly the inputs above (in block-local indices, never OpIDs) and
// stores the stage decomposition in local indices, so a structurally
// identical block is solved once per process and every later occurrence
// is a map lookup plus a remap to the caller's operator IDs.
//
// The cache only ever holds solves for models satisfying the
// cost.ItemModel contract — models that are pure functions of their
// items. Probe-counting models (profile.CostTable, the kernel-cache
// model) never reach it, so profiling accounting is unchanged whether
// this cache is cold or warm.
//
// Concurrency: lookups take a read lock; a miss computes the value
// outside any lock (the DP is pure) and inserts under the write lock
// with a re-check. Because every value is a pure function of its key,
// concurrent racers compute bit-identical values and it does not matter
// whose insert wins — results are deterministic under any interleaving,
// which is what lets parallel block solvers and sweep workers share one
// cache without perturbing byte-identical figure output.
package dpcache

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
)

// Cache memoizes block solves by canonical signature. The zero value is
// not ready; use New (or the process-wide Shared).
type Cache struct {
	mu     sync.RWMutex
	blocks map[string][][]int32

	hits   atomic.Int64
	misses atomic.Int64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{blocks: make(map[string][][]int32)}
}

var shared = New()

// Shared returns the process-wide cache every scheduler and sweep worker
// shares. Values are pure functions of their signatures, so sharing is
// safe across concurrent experiments; Reset exists for benchmarks that
// want cold-cache numbers.
func Shared() *Cache { return shared }

// Get returns the memoized stage decomposition for the signature, in
// block-local indices. The returned slices are shared and must be
// treated as read-only — callers remap them into freshly allocated
// OpID stages. The key may be a reusable scratch buffer: the lookup
// converts it without allocating, and Get never retains it.
func (c *Cache) Get(key []byte) ([][]int32, bool) {
	c.mu.RLock()
	st, ok := c.blocks[string(key)]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return st, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put memoizes a solve. The stages are retained as-is and must not be
// mutated afterwards; on a racing double-compute the first insert wins,
// which is immaterial because racers compute bit-identical values.
func (c *Cache) Put(key []byte, stages [][]int32) {
	k := string(key)
	c.mu.Lock()
	if _, ok := c.blocks[k]; !ok {
		c.blocks[k] = stages
	}
	c.mu.Unlock()
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Blocks int   // distinct cached block signatures
	Hits   int64 // solves answered from cache
	Misses int64 // solves computed and inserted
}

// Probes returns the total lookup count the cache has served.
func (s Stats) Probes() int64 { return s.Hits + s.Misses }

// Stats snapshots the cache. The size is read under the lock; the
// counters are monotonic atomics (a concurrent miss may be counted
// before its insert is visible, so Hits+Misses can briefly exceed the
// map size — never the reverse).
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	s := Stats{Blocks: len(c.blocks)}
	c.mu.RUnlock()
	s.Hits = c.hits.Load()
	s.Misses = c.misses.Load()
	return s
}

// Reset drops every cached solve and zeroes the counters. Results are
// unaffected by when (or whether) this is called — only hit rates are.
func (c *Cache) Reset() {
	// The fresh map is built before the lock so the critical section is
	// one pointer swap, not an allocation.
	blocks := make(map[string][][]int32)
	c.mu.Lock()
	c.blocks = blocks
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// Sig builds canonical block signatures. It is an append-only byte
// encoder over a caller-owned buffer: integers are varint-coded, floats
// are their exact IEEE bit patterns (two block solves share a key only
// when their inputs are bit-identical — the cache memoizes exact
// computations, so "close enough" keys would be a correctness bug).
type Sig struct{ buf []byte }

// NewSig wraps a (possibly recycled) buffer. Passing a previous
// signature's Bytes() with the slice reset reuses its backing array.
func NewSig(buf []byte) Sig { return Sig{buf: buf[:0]} }

// Int appends a varint-coded integer.
func (s *Sig) Int(v int) { s.buf = binary.AppendVarint(s.buf, int64(v)) }

// Float appends a float64's IEEE bit pattern.
func (s *Sig) Float(v float64) {
	s.buf = binary.LittleEndian.AppendUint64(s.buf, math.Float64bits(v))
}

// Bool appends a flag.
func (s *Sig) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	s.buf = append(s.buf, b)
}

// Bytes returns the signature built so far. The slice aliases the
// builder's buffer; it is valid until the next append.
func (s *Sig) Bytes() []byte { return s.buf }
