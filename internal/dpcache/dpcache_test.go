package dpcache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestGetPutRoundTrip(t *testing.T) {
	c := New()
	key := []byte("block-a")
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	stages := [][]int32{{0, 1}, {2}}
	c.Put(key, stages)
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if len(got) != 2 || got[0][0] != 0 || got[0][1] != 1 || got[1][0] != 2 {
		t.Fatalf("Get = %v, want %v", got, stages)
	}
	// The key may be a scratch buffer: mutating it afterwards must not
	// perturb the stored entry.
	key[0] = 'x'
	if _, ok := c.Get([]byte("block-a")); !ok {
		t.Fatal("entry lost after caller reused the key buffer")
	}
}

func TestFirstInsertWins(t *testing.T) {
	c := New()
	key := []byte("k")
	first := [][]int32{{1}}
	c.Put(key, first)
	c.Put(key, [][]int32{{9}})
	got, _ := c.Get(key)
	if got[0][0] != 1 {
		t.Fatalf("second Put overwrote the first: %v", got)
	}
}

func TestStatsAndReset(t *testing.T) {
	c := New()
	c.Put([]byte("a"), [][]int32{{0}})
	c.Get([]byte("a"))
	c.Get([]byte("b"))
	st := c.Stats()
	if st.Blocks != 1 || st.Hits != 1 || st.Misses != 1 || st.Probes() != 2 {
		t.Fatalf("stats = %+v, want 1 block, 1 hit, 1 miss", st)
	}
	c.Reset()
	if st := c.Stats(); st.Blocks != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stats after Reset = %+v, want zeros", st)
	}
	if _, ok := c.Get([]byte("a")); ok {
		t.Fatal("entry survived Reset")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := []byte(fmt.Sprintf("k%d", i%17))
				if st, ok := c.Get(key); ok {
					if st[0][0] != int32(i%17) {
						t.Errorf("worker %d read a corrupted entry: %v", w, st)
						return
					}
				} else {
					c.Put(key, [][]int32{{int32(i % 17)}})
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Blocks != 17 {
		t.Fatalf("blocks = %d, want 17", st.Blocks)
	}
}

func TestSigDeterministicAndDistinct(t *testing.T) {
	build := func(alpha float64, beam int, np bool) []byte {
		sig := NewSig(nil)
		sig.Float(alpha)
		sig.Int(beam)
		sig.Bool(np)
		return append([]byte(nil), sig.Bytes()...)
	}
	if !bytes.Equal(build(0.2, 32, false), build(0.2, 32, false)) {
		t.Fatal("identical inputs produced different signatures")
	}
	a := build(0.2, 32, false)
	for _, other := range [][]byte{build(0.25, 32, false), build(0.2, 33, false), build(0.2, 32, true)} {
		if bytes.Equal(a, other) {
			t.Fatal("distinct inputs collided")
		}
	}
	// Floats are exact bit patterns: +0 and -0 are different keys, as are
	// values one ulp apart.
	if bytes.Equal(build(0.0, 0, false), build(negZero(), 0, false)) {
		t.Fatal("+0 and -0 collided; signatures must be exact bit patterns")
	}
}

func negZero() float64 { z := 0.0; return -z }

func TestSigBufferReuse(t *testing.T) {
	sig := NewSig(nil)
	sig.Int(7)
	first := append([]byte(nil), sig.Bytes()...)
	reused := NewSig(sig.Bytes())
	reused.Int(7)
	if !bytes.Equal(first, reused.Bytes()) {
		t.Fatal("recycled buffer changed the signature")
	}
}
