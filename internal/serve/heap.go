package serve

// The deterministic event-loop building blocks of the online simulators.
// serve's single-node engine and cluster's fleet engine both run on
// exactly these three structures, so the (time, sequence) total order —
// the heart of the byte-identical-replay contract (DESIGN.md §7, §9) —
// is implemented once. None of them satisfies container/heap: the
// interface would box one element per operation in the dispatch loop
// (the PR-6 burn-down measured 7523 -> 98 allocs/op on BenchmarkServeEDF
// from exactly this change), so each is a typed binary heap with the
// sift loops written out.

import "github.com/shus-lab/hios/internal/units"

// timed pairs an event payload with its total-order key.
type timed[E any] struct {
	at      units.Millis
	seq     int
	payload E
}

// EventHeap is a deterministic discrete-event queue: a typed binary
// min-heap ordered by (time, push sequence). The sequence number is
// assigned internally at Push, so simultaneous events pop in push order
// and the pop sequence is a pure function of the push sequence — no
// caller can accidentally break the total order.
type EventHeap[E any] struct {
	items []timed[E]
	seq   int
}

// Len returns the number of queued events.
func (h *EventHeap[E]) Len() int { return len(h.items) }

// Push queues payload at time at, after every event already queued for
// the same instant.
func (h *EventHeap[E]) Push(at units.Millis, payload E) {
	h.items = append(h.items, timed[E]{at: at, seq: h.seq, payload: payload})
	h.seq++
	h.up(len(h.items) - 1)
}

// Pop removes and returns the earliest event: its time and payload.
func (h *EventHeap[E]) Pop() (units.Millis, E) {
	s := h.items
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	x := s[n]
	h.items = s[:n]
	if n > 0 {
		h.down(0)
	}
	return x.at, x.payload
}

func (h *EventHeap[E]) less(i, j int) bool {
	// Exact IEEE inequality keeps the order strict-weak; ties fall
	// through to the deterministic sequence number (cf. sim.eventHeap).
	if h.items[i].at != h.items[j].at { //lint:floatexact comparator tie-break: epsilon would break the strict weak order
		return h.items[i].at < h.items[j].at
	}
	return h.items[i].seq < h.items[j].seq
}

func (h *EventHeap[E]) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *EventHeap[E]) down(i int) {
	n := len(h.items)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && h.less(r, l) {
			j = r
		}
		if !h.less(j, i) {
			break
		}
		h.items[i], h.items[j] = h.items[j], h.items[i]
		i = j
	}
}

// ReplicaHeap is a min-heap of replica indices: the idle set of one
// replica pool. Popping the smallest index keeps replica selection
// deterministic and stable under scale-up (new replicas get the highest
// indices and are used last).
type ReplicaHeap struct {
	items []int
}

// Len returns the number of idle replicas.
func (h *ReplicaHeap) Len() int { return len(h.items) }

// Push returns a replica to the idle set.
func (h *ReplicaHeap) Push(v int) {
	h.items = append(h.items, v)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[i] >= h.items[p] {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

// Pop removes and returns the lowest idle replica index.
func (h *ReplicaHeap) Pop() int {
	s := h.items
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	x := s[n]
	h.items = s[:n]
	i, m := 0, n
	for {
		l := 2*i + 1
		if l >= m {
			break
		}
		j := l
		if r := l + 1; r < m && s[r] < s[l] {
			j = r
		}
		if s[j] >= s[i] {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	return x
}

// qitem is one queued request reference with its ordering key.
type qitem struct {
	deadline units.Millis
	seq      int
	ref      int
}

// RequestQueue is one replica pool's pending-request queue: a min-heap
// over (absolute deadline, enqueue sequence) when ByDeadline is set
// (EDF), or plain enqueue sequence otherwise (FIFO). The keys are stored
// by value with the reference, so ordering never dereferences the
// caller's request table.
type RequestQueue struct {
	// ByDeadline selects EDF ordering; false is FIFO.
	ByDeadline bool
	items      []qitem
}

// Len returns the number of queued requests.
func (q *RequestQueue) Len() int { return len(q.items) }

// Push queues the request identified by ref with the given absolute
// deadline and enqueue sequence number (the FIFO key and EDF tie-break).
func (q *RequestQueue) Push(deadline units.Millis, seq, ref int) {
	q.items = append(q.items, qitem{deadline: deadline, seq: seq, ref: ref})
	q.up(len(q.items) - 1)
}

// Pop removes and returns the reference of the first request in queue
// order.
func (q *RequestQueue) Pop() int {
	s := q.items
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	x := s[n]
	q.items = s[:n]
	if n > 0 {
		q.down(0)
	}
	return x.ref
}

func (q *RequestQueue) less(i, j int) bool {
	a, b := &q.items[i], &q.items[j]
	if q.ByDeadline {
		// Exact IEEE inequality; equal deadlines fall through to the
		// deterministic enqueue order.
		if a.deadline != b.deadline { //lint:floatexact comparator tie-break: epsilon would break the strict weak order
			return a.deadline < b.deadline
		}
	}
	return a.seq < b.seq
}

func (q *RequestQueue) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q.items[i], q.items[p] = q.items[p], q.items[i]
		i = p
	}
}

func (q *RequestQueue) down(i int) {
	n := len(q.items)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && q.less(r, l) {
			j = r
		}
		if !q.less(j, i) {
			break
		}
		q.items[i], q.items[j] = q.items[j], q.items[i]
		i = j
	}
}
