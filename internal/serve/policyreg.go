package serve

import "strings"

// PolicyDef describes one named policy of an enumeration: the value
// itself plus the one-line usage text command-line tools print.
type PolicyDef[P ~string] struct {
	Policy P
	Usage  string
}

// PolicyRegistry is the single source of truth for a policy enumeration.
// The dispatch policies of this package and the router policies of
// internal/cluster are both declared as one registry value, and every
// consumer — Policies()/RouterPolicies(), Options.Validate, CLI usage
// strings, the experiments sweeps — enumerates from it, so the lists
// cannot drift apart. Adding a policy means adding one row.
type PolicyRegistry[P ~string] []PolicyDef[P]

// Policies returns the registered policy values in declaration order.
func (r PolicyRegistry[P]) Policies() []P {
	out := make([]P, len(r))
	for i, d := range r {
		out[i] = d.Policy
	}
	return out
}

// Valid reports whether p is a registered policy value. The empty
// string is not valid here; callers that document a default map "" to
// it before or instead of calling Valid.
func (r PolicyRegistry[P]) Valid(p P) bool {
	for _, d := range r {
		if d.Policy == p {
			return true
		}
	}
	return false
}

// Usage renders the registry as a one-line flag usage string:
// "fifo (strict arrival order), edf (...), ...".
func (r PolicyRegistry[P]) Usage() string {
	var b strings.Builder
	for i, d := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(d.Policy))
		b.WriteString(" (")
		b.WriteString(d.Usage)
		b.WriteString(")")
	}
	return b.String()
}

// Registry enumerates the dispatch policies of this package. Policies,
// Options.Validate and the CLI usage text all read from here.
var Registry = PolicyRegistry[Policy]{
	{FIFO, "strict arrival order"},
	{EDF, "earliest absolute deadline first"},
	{EDFShed, "EDF plus shed-on-hopeless admission control"},
}

// PolicyUsage renders the dispatch policies as a flag usage string.
func PolicyUsage() string { return Registry.Usage() }
