// Package serve is the online serving layer of the HIOS reproduction: a
// deterministic discrete-event simulator of a multi-tenant model-serving
// deployment built on top of the offline scheduling core.
//
// The paper answers an offline question — one request, one schedule, one
// latency. A production deployment answers an online one: requests for
// one or more models arrive continuously, each with a relative deadline,
// and a dispatcher decides which queued request the next free pipeline
// replica runs (and, under admission control, which requests to shed).
// This package simulates exactly that. A deployed Model is characterized
// by the two numbers the pipeline analysis derives from a schedule — the
// single-request latency L and the steady-state admission period P — so
// scheduler quality (lower L, lower P) is directly visible as serving
// capacity and SLO attainment.
//
// The simulator obeys the repository's determinism contract (DESIGN.md
// §7 and §9): no wall clock, no global RNG; every stochastic arrival
// process draws from a *rand.Rand seeded from Options.Seed, events are
// totally ordered by (time, sequence number), and all report slices are
// emitted in deterministic order, so the same Options yield a
// byte-identical Report rendering on every run.
package serve

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/pipeline"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/stats"
	"github.com/shus-lab/hios/internal/units"
)

// Policy selects the dispatch discipline of the serving queue.
type Policy string

const (
	// FIFO serves requests strictly in arrival order.
	FIFO Policy = "fifo"
	// EDF serves the queued request with the earliest absolute deadline
	// first (ties broken by arrival order).
	EDF Policy = "edf"
	// EDFShed is EDF with shed-on-hopeless admission control: a request
	// is dropped at dispatch time when even an immediate start provably
	// misses its deadline (now + L > arrival + deadline), so capacity is
	// never spent on a certain miss.
	EDFShed Policy = "edf-shed"
)

// Policies lists every implemented dispatch policy, enumerated from
// Registry (the single source of truth; see policyreg.go).
func Policies() []Policy { return Registry.Policies() }

// Sentinel errors of Options.Validate, all errors.Is-matchable.
var (
	// ErrNoModels reports an Options with an empty Models list.
	ErrNoModels = errors.New("serve: no models deployed")
	// ErrNoTenants reports an Options with an empty Tenants list.
	ErrNoTenants = errors.New("serve: no tenants")
	// ErrUnknownPolicy reports an unrecognized Policy value.
	ErrUnknownPolicy = errors.New("serve: unknown policy")
	// ErrBadModel reports a Model with nonpositive latency or period, a
	// period exceeding its latency, or a negative replica count.
	ErrBadModel = errors.New("serve: bad model")
	// ErrBadTenant reports a Tenant with an out-of-range model index, a
	// nonpositive deadline, or an arrival process that is neither purely
	// open-loop (Rate > 0) nor purely closed-loop (Clients > 0).
	ErrBadTenant = errors.New("serve: bad tenant")
	// ErrBadHorizon reports a negative arrival horizon.
	ErrBadHorizon = errors.New("serve: bad horizon")
)

// Model is one deployed model: a set of identical pipeline replicas,
// each executing the same multi-GPU schedule. Latency and Period come
// from the pipeline analysis of that schedule (NewModel); GPUBusy is the
// per-GPU busy time one request adds to a replica, used for utilization
// accounting.
type Model struct {
	// Name labels the deployment in reports.
	Name string
	// Replicas is the number of identical pipeline replicas. Zero
	// selects 1.
	Replicas int
	// Latency is the single-request completion time on an idle replica.
	Latency units.Millis
	// Period is the steady-state admission interval: a replica accepts
	// a new request every Period while earlier ones drain through its
	// pipeline. Period <= Latency; equality means no pipelining.
	Period units.Millis
	// GPUBusy is the busy time one request adds to each of a replica's
	// GPUs (may be empty when utilization accounting is not needed).
	GPUBusy []units.Millis
}

// NewModel derives a deployment Model from a schedule: Latency and
// Period from the pipeline unrolling analysis (8 back-to-back requests,
// enough for the period to settle), GPUBusy from the evaluated timing.
// Replicas starts at 1; callers scale it to their GPU budget.
func NewModel(name string, g *graph.Graph, m cost.Model, s *sched.Schedule) (Model, error) {
	rep, err := pipeline.Analyze(g, m, s, 8)
	if err != nil {
		return Model{}, fmt.Errorf("serve: %w", err)
	}
	tm, err := sched.Evaluate(g, m, s)
	if err != nil {
		return Model{}, fmt.Errorf("serve: %w", err)
	}
	busy := make([]units.Millis, len(s.GPUs))
	for gi := range s.GPUs {
		for j := range s.GPUs[gi].Stages {
			busy[gi] += tm.StageFinish[gi][j] - tm.StageStart[gi][j]
		}
	}
	period := rep.SteadyPeriodMs
	if period <= 0 || period > rep.LatencyMs {
		period = rep.LatencyMs
	}
	return Model{
		Name:     name,
		Replicas: 1,
		Latency:  rep.LatencyMs,
		Period:   period,
		GPUBusy:  busy,
	}, nil
}

// Capacity returns the deployment's maximum sustainable throughput in
// requests per second: Replicas admissions every Period.
func (m Model) Capacity() float64 {
	if m.Period <= 0 {
		return 0
	}
	r := m.Replicas
	if r <= 0 {
		r = 1
	}
	return float64(r) * 1e3 / float64(m.Period)
}

// Tenant is one request class sharing the deployment: an arrival process
// plus a relative deadline (the tenant's SLO). Exactly one of Rate
// (open-loop) and Clients (closed-loop) must be positive.
type Tenant struct {
	// Name labels the tenant in reports.
	Name string
	// Model indexes Options.Models: the deployment this tenant's
	// requests run on.
	Model int
	// Deadline is the relative deadline of every request: a request
	// arriving at t meets its SLO iff it completes by t + Deadline.
	Deadline units.Millis
	// Rate, when positive, makes the tenant open-loop: a Poisson
	// process with this mean arrival rate in requests per second.
	Rate float64
	// Clients, when positive, makes the tenant closed-loop: this many
	// clients, each issuing one request, waiting for its completion (or
	// shedding), thinking for an exponential time with mean Think, and
	// issuing again.
	Clients int
	// Think is the closed-loop mean think time (0 = reissue
	// immediately).
	Think units.Millis
}

// Options configures one serving simulation. The zero value of every
// optional field selects a documented default (fill pattern of
// runtime.Options); Validate reports structurally invalid configurations
// with errors.Is-matchable sentinels.
type Options struct {
	// Models lists the deployed models. Required.
	Models []Model
	// Tenants lists the request classes. Required.
	Tenants []Tenant
	// Policy is the dispatch discipline. Empty selects FIFO.
	Policy Policy
	// Horizon is the arrival window: no request arrives at or after
	// this time, and the simulation then runs until every admitted
	// request drains. Zero selects 1000 ms.
	Horizon units.Millis
	// Seed seeds the arrival processes. Zero selects 1.
	Seed int64
	// RecordRequests additionally populates Report.Requests with every
	// request's individual fate (tests and debugging; off by default
	// because it grows with the request count).
	RecordRequests bool
}

// fill normalizes the defaulted fields on a private copy. The Models
// slice is copied before replica defaulting so the caller's values are
// never mutated.
func (o *Options) fill() {
	if o.Policy == "" {
		o.Policy = FIFO
	}
	// Exact zero test: the zero value selects the default.
	if o.Horizon == 0 { //lint:floatexact zero is the unset-option sentinel, not a computed value
		o.Horizon = units.Millis(1000)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	models := make([]Model, len(o.Models))
	copy(models, o.Models)
	for i := range models {
		if models[i].Replicas == 0 {
			models[i].Replicas = 1
		}
	}
	o.Models = models
}

// Validate checks the configuration, returning the first violation
// wrapped around one of the sentinel errors above. Zero values with
// documented defaults (Policy, Horizon, Seed, Model.Replicas) are valid.
func (o Options) Validate() error {
	if len(o.Models) == 0 {
		return ErrNoModels
	}
	for i, m := range o.Models {
		if m.Latency <= 0 || m.Period <= 0 {
			return fmt.Errorf("%w: model %d (%s) needs positive latency and period", ErrBadModel, i, m.Name)
		}
		if m.Period > m.Latency {
			return fmt.Errorf("%w: model %d (%s) period %g exceeds latency %g", ErrBadModel, i, m.Name, float64(m.Period), float64(m.Latency))
		}
		if m.Replicas < 0 {
			return fmt.Errorf("%w: model %d (%s) has negative replica count %d", ErrBadModel, i, m.Name, m.Replicas)
		}
	}
	if len(o.Tenants) == 0 {
		return ErrNoTenants
	}
	for i, t := range o.Tenants {
		if t.Model < 0 || t.Model >= len(o.Models) {
			return fmt.Errorf("%w: tenant %d (%s) references model %d of %d", ErrBadTenant, i, t.Name, t.Model, len(o.Models))
		}
		if t.Deadline <= 0 {
			return fmt.Errorf("%w: tenant %d (%s) needs a positive deadline", ErrBadTenant, i, t.Name)
		}
		if t.Rate < 0 || t.Clients < 0 || t.Think < 0 {
			return fmt.Errorf("%w: tenant %d (%s) has a negative rate, client count or think time", ErrBadTenant, i, t.Name)
		}
		open, closed := t.Rate > 0, t.Clients > 0
		if open == closed {
			return fmt.Errorf("%w: tenant %d (%s) must be exactly one of open-loop (Rate > 0) or closed-loop (Clients > 0)", ErrBadTenant, i, t.Name)
		}
	}
	if o.Policy != "" && !Registry.Valid(o.Policy) {
		return fmt.Errorf("%w %q (want one of %v)", ErrUnknownPolicy, string(o.Policy), Policies())
	}
	if o.Horizon < 0 {
		return fmt.Errorf("%w: %g ms", ErrBadHorizon, float64(o.Horizon))
	}
	return nil
}

// Request lifecycle states.
const (
	stQueued = iota
	stRunning
	stDone
	stShed
)

// request is one in-flight inference request.
type request struct {
	tenant   int
	index    int // per-tenant issue order
	client   int // closed-loop client index, -1 for open-loop
	arrive   units.Millis
	deadline units.Millis // absolute: arrive + tenant deadline
	finish   units.Millis
	qseq     int // global enqueue order, the FIFO key and EDF tie-break
	state    int
}

// Event kinds, in no particular priority: simultaneous events execute in
// push order via the heap's internal sequence number.
const (
	evArrive = iota // a request joins its model's queue
	evFree          // a replica admits its next request
	evDone          // a request completes
)

// event is the heap payload; the (time, sequence) key lives in the
// EventHeap (heap.go), which serve shares with the cluster control plane.
type event struct {
	kind    int
	req     int // evArrive, evDone
	model   int // evFree
	replica int // evFree
}

// engine is the running simulation state.
type engine struct {
	o      Options
	reqs   []request
	issued []int // per-tenant issue counter
	queues []RequestQueue
	idle   []ReplicaHeap
	starts [][]int // starts[model][replica]
	events EventHeap[event]
	qseq   int // enqueue sequence counter
	depth  int // total queued requests across models
	points []QueuePoint
	rngs   []*rand.Rand
}

// newRequest creates a request arriving at the given time and schedules
// its arrival event.
func (e *engine) newRequest(tenant, client int, at units.Millis) {
	t := &e.o.Tenants[tenant]
	ri := len(e.reqs)
	e.reqs = append(e.reqs, request{
		tenant:   tenant,
		index:    e.issued[tenant],
		client:   client,
		arrive:   at,
		deadline: at + t.Deadline,
		state:    stQueued,
	})
	e.issued[tenant]++
	e.events.Push(at, event{kind: evArrive, req: ri})
}

// expMillis draws an exponential duration with the given mean.
func expMillis(rng *rand.Rand, mean units.Millis) units.Millis {
	return mean.Scale(rng.ExpFloat64())
}

// reissue puts a closed-loop client back into think state after its
// request finished (completed or was shed) at the given time.
func (e *engine) reissue(tenant, client int, now units.Millis) {
	if client < 0 {
		return
	}
	t := &e.o.Tenants[tenant]
	next := now + expMillis(e.rngs[tenant], t.Think)
	if next < e.o.Horizon {
		e.newRequest(tenant, client, next)
	}
}

// dispatch matches idle replicas of model mi with queued requests at
// time now, shedding hopeless requests first under EDFShed. This is the
// per-event inner loop of the serving simulator and the package's
// hot-path root (Run's setup loops legitimately allocate per tenant).
//
//lint:hotpath
func (e *engine) dispatch(mi int, now units.Millis) {
	q, idle := &e.queues[mi], &e.idle[mi]
	m := &e.o.Models[mi]
	for idle.Len() > 0 && q.Len() > 0 {
		ri := q.Pop()
		r := &e.reqs[ri]
		e.depth--
		if e.o.Policy == EDFShed && now+m.Latency > r.deadline {
			// Provably hopeless: even starting this instant misses the
			// deadline. Shed without consuming the replica.
			r.state = stShed
			r.finish = now
			e.reissue(r.tenant, r.client, now)
			continue
		}
		rep := idle.Pop()
		r.state = stRunning
		e.starts[mi][rep]++
		e.events.Push(now+m.Latency, event{kind: evDone, req: ri})
		e.events.Push(now+m.Period, event{kind: evFree, model: mi, replica: rep})
	}
}

// recordDepth appends a queue-depth change point at time now, coalescing
// multiple changes at the same instant into the final value.
func (e *engine) recordDepth(now units.Millis) {
	if n := len(e.points); n > 0 {
		if e.points[n-1].Depth == e.depth {
			return
		}
		// Exact IEEE equality: same event timestamp, not a tolerance.
		if e.points[n-1].T == now { //lint:floatexact same-event timestamp dedupe: both values are copies of one event time
			e.points[n-1].Depth = e.depth
			return
		}
	} else if e.depth == 0 {
		return
	}
	e.points = append(e.points, QueuePoint{T: now, Depth: e.depth})
}

// Run simulates the deployment described by opt and returns its serving
// report. The same Options always produce the same Report.
func Run(opt Options) (*Report, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt.fill()

	e := &engine{
		o:      opt,
		issued: make([]int, len(opt.Tenants)),
		queues: make([]RequestQueue, len(opt.Models)),
		idle:   make([]ReplicaHeap, len(opt.Models)),
		starts: make([][]int, len(opt.Models)),
		rngs:   make([]*rand.Rand, len(opt.Tenants)),
	}
	for mi, m := range opt.Models {
		e.queues[mi] = RequestQueue{ByDeadline: opt.Policy != FIFO}
		for r := 0; r < m.Replicas; r++ {
			e.idle[mi].Push(r)
		}
		e.starts[mi] = make([]int, m.Replicas)
	}
	for ti, t := range opt.Tenants {
		e.rngs[ti] = rand.New(rand.NewSource(stats.MixSeed(opt.Seed, ti)))
		if t.Rate > 0 {
			// Open-loop: pre-draw the whole Poisson arrival sequence.
			mean := units.Millis(1e3 / t.Rate)
			at := expMillis(e.rngs[ti], mean)
			for at < opt.Horizon {
				e.newRequest(ti, -1, at)
				at += expMillis(e.rngs[ti], mean)
			}
		} else {
			// Closed-loop: every client starts in think state.
			for c := 0; c < t.Clients; c++ {
				at := expMillis(e.rngs[ti], t.Think)
				if at < opt.Horizon {
					e.newRequest(ti, c, at)
				}
			}
		}
	}

	var makespan units.Millis
	for e.events.Len() > 0 {
		now, ev := e.events.Pop()
		if now > makespan {
			makespan = now
		}
		switch ev.kind {
		case evArrive:
			r := &e.reqs[ev.req]
			r.qseq = e.qseq
			e.qseq++
			mi := e.o.Tenants[r.tenant].Model
			e.queues[mi].Push(r.deadline, r.qseq, ev.req)
			e.depth++
			e.dispatch(mi, now)
		case evFree:
			e.idle[ev.model].Push(ev.replica)
			e.dispatch(ev.model, now)
		case evDone:
			r := &e.reqs[ev.req]
			r.state = stDone
			r.finish = now
			e.reissue(r.tenant, r.client, now)
		}
		e.recordDepth(now)
	}
	for i := range e.reqs {
		if st := e.reqs[i].state; st != stDone && st != stShed {
			return nil, fmt.Errorf("serve: internal error: request %d ended in state %d", i, st)
		}
	}
	return e.report(makespan), nil
}
