package serve

import (
	"fmt"
	"io"
	"sort"

	"github.com/shus-lab/hios/internal/stats"
	"github.com/shus-lab/hios/internal/units"
)

// Report summarizes one serving simulation: SLO attainment, goodput,
// tail latency, per-tenant breakdown, per-GPU utilization and the
// queue-depth timeline. All slices are in deterministic order.
type Report struct {
	// Policy is the dispatch discipline that produced this report.
	Policy Policy
	// Horizon is the (filled) arrival window; Makespan is when the last
	// event fired — the drain time of everything admitted before the
	// horizon.
	Horizon  units.Millis
	Makespan units.Millis
	// Offered counts every request that arrived; Completed the ones
	// that ran to completion; SLOMet the completions within deadline;
	// Shed the ones dropped by admission control.
	Offered   int
	Completed int
	SLOMet    int
	Shed      int
	// Attainment is SLOMet/Offered (1 when nothing was offered):
	// the fraction of offered load served within its SLO.
	Attainment float64
	// GoodputPerSec is deadline-meeting completions per second of
	// makespan.
	GoodputPerSec float64
	// P50/P95/P99/Max summarize the response-time distribution
	// (arrival to completion) over completed requests.
	P50, P95, P99, Max units.Millis
	// Tenants breaks the same counters down per tenant, in Options
	// order.
	Tenants []TenantReport
	// GPUs reports utilization per (model, replica, GPU), in model
	// order then replica order then GPU order.
	GPUs []GPUUtil
	// Queue is the total queued-request depth over time: one point per
	// instant the depth changed.
	Queue []QueuePoint
	// Requests holds every request's fate when Options.RecordRequests
	// was set (in global arrival-event order), nil otherwise.
	Requests []RequestOutcome
}

// TenantReport is one tenant's slice of the serving report.
type TenantReport struct {
	Name          string
	Model         int
	Offered       int
	Completed     int
	SLOMet        int
	Shed          int
	Attainment    float64
	P50, P95, P99 units.Millis
}

// GPUUtil is the utilization of one GPU of one pipeline replica.
type GPUUtil struct {
	// Model names the deployment; Replica and GPU index within it.
	Model   string
	Replica int
	GPU     int
	// Starts is how many requests this replica admitted; Busy the total
	// busy time this GPU accumulated across them; Util is Busy over the
	// report makespan.
	Starts int
	Busy   units.Millis
	Util   float64
}

// QueuePoint is one step of the queue-depth timeline.
type QueuePoint struct {
	T     units.Millis
	Depth int
}

// RequestOutcome is one request's fate, recorded when
// Options.RecordRequests is set.
type RequestOutcome struct {
	// Tenant and Index identify the request (Index is the tenant's
	// issue order).
	Tenant int
	Index  int
	// Arrive and Deadline are absolute times; Finish is completion (or
	// shed) time.
	Arrive   units.Millis
	Deadline units.Millis
	Finish   units.Millis
	// Completed is false for shed requests; Met reports Finish <=
	// Deadline for completed ones.
	Completed bool
	Met       bool
}

// report assembles the Report from the drained engine state.
func (e *engine) report(makespan units.Millis) *Report {
	r := &Report{
		Policy:   e.o.Policy,
		Horizon:  e.o.Horizon,
		Makespan: makespan,
		Tenants:  make([]TenantReport, len(e.o.Tenants)),
		Queue:    e.points,
	}
	for ti, t := range e.o.Tenants {
		r.Tenants[ti] = TenantReport{Name: t.Name, Model: t.Model}
	}

	var all []float64
	per := make([][]float64, len(e.o.Tenants))
	for i := range e.reqs {
		req := &e.reqs[i]
		tr := &r.Tenants[req.tenant]
		r.Offered++
		tr.Offered++
		met := false
		switch req.state {
		case stShed:
			r.Shed++
			tr.Shed++
		case stDone:
			r.Completed++
			tr.Completed++
			met = req.finish <= req.deadline
			if met {
				r.SLOMet++
				tr.SLOMet++
			}
			resp := float64(req.finish - req.arrive)
			all = append(all, resp)
			per[req.tenant] = append(per[req.tenant], resp)
		}
		if e.o.RecordRequests {
			r.Requests = append(r.Requests, RequestOutcome{
				Tenant:    req.tenant,
				Index:     req.index,
				Arrive:    req.arrive,
				Deadline:  req.deadline,
				Finish:    req.finish,
				Completed: req.state == stDone,
				Met:       met,
			})
		}
	}

	r.Attainment = attainment(r.SLOMet, r.Offered)
	if makespan > 0 {
		r.GoodputPerSec = float64(r.SLOMet) * 1e3 / float64(makespan)
	}
	sort.Float64s(all)
	r.P50 = units.Millis(stats.Percentile(all, 50))
	r.P95 = units.Millis(stats.Percentile(all, 95))
	r.P99 = units.Millis(stats.Percentile(all, 99))
	r.Max = units.Millis(stats.Max(all))
	if len(all) == 0 {
		r.Max = 0
	}
	for ti := range r.Tenants {
		tr := &r.Tenants[ti]
		tr.Attainment = attainment(tr.SLOMet, tr.Offered)
		sort.Float64s(per[ti])
		tr.P50 = units.Millis(stats.Percentile(per[ti], 50))
		tr.P95 = units.Millis(stats.Percentile(per[ti], 95))
		tr.P99 = units.Millis(stats.Percentile(per[ti], 99))
	}

	for mi := range e.o.Models {
		m := &e.o.Models[mi]
		for rep := 0; rep < m.Replicas; rep++ {
			starts := e.starts[mi][rep]
			for g := range m.GPUBusy {
				busy := m.GPUBusy[g].Scale(float64(starts))
				util := 0.0
				if makespan > 0 {
					util = busy.Ratio(makespan)
				}
				r.GPUs = append(r.GPUs, GPUUtil{
					Model:   m.Name,
					Replica: rep,
					GPU:     g,
					Starts:  starts,
					Busy:    busy,
					Util:    util,
				})
			}
		}
	}
	return r
}

func attainment(met, offered int) float64 {
	if offered == 0 {
		return 1
	}
	return float64(met) / float64(offered)
}

// Render writes a human-readable summary. The output is deterministic
// for a given Report.
func (r *Report) Render(w io.Writer) error {
	pf := func(format string, args ...any) (err error) {
		_, err = fmt.Fprintf(w, format, args...)
		return
	}
	if err := pf("policy %s  horizon %.2f ms  makespan %.2f ms\n",
		r.Policy, float64(r.Horizon), float64(r.Makespan)); err != nil {
		return err
	}
	if err := pf("offered %d  completed %d  slo-met %d  shed %d  attainment %.4f  goodput %.2f req/s\n",
		r.Offered, r.Completed, r.SLOMet, r.Shed, r.Attainment, r.GoodputPerSec); err != nil {
		return err
	}
	if err := pf("latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  max %.3f ms\n",
		float64(r.P50), float64(r.P95), float64(r.P99), float64(r.Max)); err != nil {
		return err
	}
	for _, t := range r.Tenants {
		if err := pf("tenant %-12s model %d  offered %4d  met %4d  shed %4d  attainment %.4f  p99 %.3f ms\n",
			t.Name, t.Model, t.Offered, t.SLOMet, t.Shed, t.Attainment, float64(t.P99)); err != nil {
			return err
		}
	}
	for _, g := range r.GPUs {
		if err := pf("gpu %s/r%d/g%d  starts %4d  busy %.2f ms  util %.3f\n",
			g.Model, g.Replica, g.GPU, g.Starts, float64(g.Busy), g.Util); err != nil {
			return err
		}
	}
	return nil
}

// WriteQueue streams the queue-depth timeline as two-column CSV
// (time_ms,depth), suitable for plotting.
func (r *Report) WriteQueue(w io.Writer) error {
	if _, err := io.WriteString(w, "time_ms,depth\n"); err != nil {
		return err
	}
	for _, p := range r.Queue {
		if _, err := fmt.Fprintf(w, "%.6f,%d\n", float64(p.T), p.Depth); err != nil {
			return err
		}
	}
	return nil
}
