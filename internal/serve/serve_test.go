package serve

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched/lp"
	"github.com/shus-lab/hios/internal/units"
)

// testModel is a hand-built deployment: 4 ms latency, 2 ms admission
// period, two GPUs each busy 1.5 ms per request.
func testModel(replicas int) Model {
	return Model{
		Name:     "m",
		Replicas: replicas,
		Latency:  units.Millis(4),
		Period:   units.Millis(2),
		GPUBusy:  []units.Millis{units.Millis(1.5), units.Millis(1.5)},
	}
}

func mustRun(t *testing.T, opt Options) *Report {
	t.Helper()
	r, err := Run(opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestValidateErrors(t *testing.T) {
	base := func() Options {
		return Options{
			Models:  []Model{testModel(1)},
			Tenants: []Tenant{{Name: "a", Deadline: units.Millis(10), Rate: 50}},
		}
	}
	cases := []struct {
		name string
		mut  func(*Options)
		want error
	}{
		{"no models", func(o *Options) { o.Models = nil }, ErrNoModels},
		{"no tenants", func(o *Options) { o.Tenants = nil }, ErrNoTenants},
		{"zero latency", func(o *Options) { o.Models[0].Latency = 0 }, ErrBadModel},
		{"zero period", func(o *Options) { o.Models[0].Period = 0 }, ErrBadModel},
		{"period above latency", func(o *Options) { o.Models[0].Period = units.Millis(9) }, ErrBadModel},
		{"negative replicas", func(o *Options) { o.Models[0].Replicas = -1 }, ErrBadModel},
		{"bad model index", func(o *Options) { o.Tenants[0].Model = 3 }, ErrBadTenant},
		{"negative model index", func(o *Options) { o.Tenants[0].Model = -1 }, ErrBadTenant},
		{"zero deadline", func(o *Options) { o.Tenants[0].Deadline = 0 }, ErrBadTenant},
		{"negative rate", func(o *Options) { o.Tenants[0].Rate = -1 }, ErrBadTenant},
		{"neither open nor closed", func(o *Options) { o.Tenants[0].Rate = 0 }, ErrBadTenant},
		{"both open and closed", func(o *Options) { o.Tenants[0].Clients = 2 }, ErrBadTenant},
		{"unknown policy", func(o *Options) { o.Policy = Policy("lifo") }, ErrUnknownPolicy},
		{"negative horizon", func(o *Options) { o.Horizon = units.Millis(-1) }, ErrBadHorizon},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base()
			tc.mut(&o)
			err := o.Validate()
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is %v", err, tc.want)
			}
			if _, err := Run(o); !errors.Is(err, tc.want) {
				t.Fatalf("Run rejected with %v, want errors.Is %v", err, tc.want)
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base Options invalid: %v", err)
	}
}

// Run must not mutate the caller's Options (fill works on copies).
func TestRunDoesNotMutateOptions(t *testing.T) {
	o := Options{
		Models:  []Model{{Name: "m", Latency: units.Millis(4), Period: units.Millis(2)}},
		Tenants: []Tenant{{Name: "a", Deadline: units.Millis(10), Rate: 50}},
	}
	mustRun(t, o)
	if o.Models[0].Replicas != 0 || o.Policy != "" || o.Horizon != 0 || o.Seed != 0 {
		t.Fatalf("Run mutated caller Options: %+v", o)
	}
}

func render(t *testing.T, r *Report) string {
	t.Helper()
	var b bytes.Buffer
	if err := r.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if err := r.WriteQueue(&b); err != nil {
		t.Fatalf("WriteQueue: %v", err)
	}
	return b.String()
}

func TestDeterministicAcrossRuns(t *testing.T) {
	for _, p := range Policies() {
		opt := Options{
			Models: []Model{testModel(2)},
			Tenants: []Tenant{
				{Name: "open", Deadline: units.Millis(9), Rate: 400},
				{Name: "closed", Deadline: units.Millis(30), Clients: 3, Think: units.Millis(2)},
			},
			Policy:  p,
			Horizon: units.Millis(300),
			Seed:    7,
		}
		a := render(t, mustRun(t, opt))
		b := render(t, mustRun(t, opt))
		if a != b {
			t.Fatalf("policy %s: two runs of identical Options differ", p)
		}
	}
}

// Conservation and well-formedness invariants that must hold for every
// policy and load level.
func TestReportInvariants(t *testing.T) {
	for _, p := range Policies() {
		for _, rate := range []float64{100, 600, 1500} {
			t.Run(fmt.Sprintf("%s/%.0f", p, rate), func(t *testing.T) {
				r := mustRun(t, Options{
					Models: []Model{testModel(1)},
					Tenants: []Tenant{
						{Name: "a", Deadline: units.Millis(12), Rate: rate},
						{Name: "b", Deadline: units.Millis(40), Clients: 2, Think: units.Millis(5)},
					},
					Policy:  p,
					Horizon: units.Millis(200),
					Seed:    3,
				})
				if r.Offered != r.Completed+r.Shed {
					t.Fatalf("offered %d != completed %d + shed %d", r.Offered, r.Completed, r.Shed)
				}
				if r.SLOMet > r.Completed {
					t.Fatalf("slo-met %d > completed %d", r.SLOMet, r.Completed)
				}
				if p != EDFShed && r.Shed != 0 {
					t.Fatalf("policy %s shed %d requests", p, r.Shed)
				}
				var off, met, shed int
				for _, tr := range r.Tenants {
					off += tr.Offered
					met += tr.SLOMet
					shed += tr.Shed
				}
				if off != r.Offered || met != r.SLOMet || shed != r.Shed {
					t.Fatalf("tenant totals (%d,%d,%d) disagree with report (%d,%d,%d)",
						off, met, shed, r.Offered, r.SLOMet, r.Shed)
				}
				if r.Attainment < 0 || r.Attainment > 1 {
					t.Fatalf("attainment %g out of [0,1]", r.Attainment)
				}
				if r.P50 > r.P95 || r.P95 > r.P99 || r.P99 > r.Max {
					t.Fatalf("percentiles out of order: p50 %v p95 %v p99 %v max %v", r.P50, r.P95, r.P99, r.Max)
				}
				if r.Makespan < r.Horizon && r.Offered > 0 {
					// Arrivals span most of the horizon, so the drain
					// cannot end before the last arrival's completion.
					last := r.Queue
					_ = last
				}
				prev := units.Millis(-1)
				for _, q := range r.Queue {
					if q.Depth < 0 {
						t.Fatalf("negative queue depth %d", q.Depth)
					}
					if q.T <= prev {
						t.Fatalf("queue timeline not strictly increasing: %v after %v", q.T, prev)
					}
					prev = q.T
				}
				if n := len(r.Queue); n > 0 && r.Queue[n-1].Depth != 0 {
					t.Fatalf("queue did not drain: final depth %d", r.Queue[n-1].Depth)
				}
				for _, g := range r.GPUs {
					if g.Util < 0 || g.Util > 1+1e-9 {
						t.Fatalf("gpu util %g out of range", g.Util)
					}
				}
			})
		}
	}
}

// With a single tenant every request has the same relative deadline, so
// EDF order (deadline, then arrival) collapses to arrival order: FIFO
// and EDF must produce identical reports.
func TestUniformDeadlineEDFEqualsFIFO(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		opt := Options{
			Models:  []Model{testModel(1)},
			Tenants: []Tenant{{Name: "only", Deadline: units.Millis(15), Rate: 700}},
			Horizon: units.Millis(250),
			Seed:    seed,
		}
		opt.Policy = FIFO
		fifo := render(t, mustRun(t, opt))
		opt.Policy = EDF
		edf := render(t, mustRun(t, opt))
		// The rendered reports differ only in the policy name on the
		// first line; everything after it must be byte-identical.
		cut := func(s string) string {
			for i := range s {
				if s[i] == '\n' {
					return s[i:]
				}
			}
			return s
		}
		if cut(fifo) != cut(edf) {
			t.Fatalf("seed %d: FIFO and EDF diverge on a uniform-deadline trace", seed)
		}
		fr, er := mustRun(t, Options{Models: opt.Models, Tenants: opt.Tenants, Horizon: opt.Horizon, Seed: seed, Policy: FIFO}), mustRun(t, opt)
		if fr.Makespan != er.Makespan || fr.SLOMet != er.SLOMet { //lint:floatexact
			t.Fatalf("seed %d: FIFO/EDF summary counters diverge", seed)
		}
	}
}

// The issue's property test: on the same seeded open-loop trace, every
// request FIFO meets, EDF meets too. Open-loop arrivals are pre-drawn
// from per-tenant RNGs, so the trace is identical under both policies
// and requests match up by (tenant, index).
func TestEDFDominatesFIFO(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8} {
		opt := Options{
			Models: []Model{testModel(2)},
			Tenants: []Tenant{
				{Name: "tight", Deadline: units.Millis(8), Rate: 350},
				{Name: "loose", Deadline: units.Millis(60), Rate: 350},
			},
			Horizon:        units.Millis(400),
			Seed:           seed,
			RecordRequests: true,
		}
		opt.Policy = FIFO
		fifo := mustRun(t, opt)
		opt.Policy = EDF
		edf := mustRun(t, opt)
		if len(fifo.Requests) != len(edf.Requests) {
			t.Fatalf("seed %d: trace lengths differ (%d vs %d) — open-loop arrivals must be policy-independent",
				seed, len(fifo.Requests), len(edf.Requests))
		}
		type key struct{ tenant, index int }
		met := make(map[key]bool, len(edf.Requests))
		for _, r := range edf.Requests {
			met[key{r.Tenant, r.Index}] = r.Met
		}
		for _, r := range fifo.Requests {
			if r.Met && !met[key{r.Tenant, r.Index}] {
				t.Errorf("seed %d: request t%d/#%d met under FIFO but missed under EDF", seed, r.Tenant, r.Index)
			}
		}
		if edf.SLOMet < fifo.SLOMet {
			t.Errorf("seed %d: EDF met %d < FIFO %d", seed, edf.SLOMet, fifo.SLOMet)
		}
	}
}

// Shedding hopeless requests frees capacity for feasible ones: at
// overload, EDFShed attainment is at least EDF attainment.
func TestShedBeatsEDFAtOverload(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		opt := Options{
			Models:  []Model{testModel(1)},
			Tenants: []Tenant{{Name: "hot", Deadline: units.Millis(10), Rate: 1200}},
			Horizon: units.Millis(300),
			Seed:    seed,
		}
		opt.Policy = EDF
		edf := mustRun(t, opt)
		opt.Policy = EDFShed
		shed := mustRun(t, opt)
		if shed.Attainment < edf.Attainment {
			t.Errorf("seed %d: shed attainment %g < edf %g", seed, shed.Attainment, edf.Attainment)
		}
		if shed.Shed == 0 {
			t.Errorf("seed %d: overloaded run shed nothing", seed)
		}
		// A shed request must be hopeless: it could not have met its
		// deadline even started the instant it was dropped.
		opt.RecordRequests = true
		rec := mustRun(t, opt)
		for _, r := range rec.Requests {
			if !r.Completed && r.Finish+opt.Models[0].Latency <= r.Deadline {
				t.Fatalf("seed %d: shed request t%d/#%d was still feasible", seed, r.Tenant, r.Index)
			}
		}
	}
}

// A closed-loop tenant keeps at most Clients requests outstanding.
func TestClosedLoopBoundsOutstanding(t *testing.T) {
	const clients = 3
	r := mustRun(t, Options{
		Models:         []Model{testModel(1)},
		Tenants:        []Tenant{{Name: "cl", Deadline: units.Millis(20), Clients: clients, Think: units.Millis(1)}},
		Horizon:        units.Millis(300),
		Seed:           2,
		RecordRequests: true,
	})
	if r.Offered == 0 {
		t.Fatal("closed-loop tenant issued nothing")
	}
	// Sweep the recorded intervals: outstanding requests never exceed
	// the client count.
	type edge struct {
		at    units.Millis
		delta int
	}
	var edges []edge
	for _, req := range r.Requests {
		edges = append(edges, edge{req.Arrive, 1}, edge{req.Finish, -1})
	}
	// Sort by time, completions before arrivals at the same instant.
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0; j-- {
			a, b := edges[j-1], edges[j]
			if b.at < a.at || (b.at == a.at && b.delta < a.delta) { //lint:floatexact
				edges[j-1], edges[j] = b, a
			} else {
				break
			}
		}
	}
	out, peak := 0, 0
	for _, e := range edges {
		out += e.delta
		if out > peak {
			peak = out
		}
	}
	if peak > clients {
		t.Fatalf("closed loop had %d outstanding requests with %d clients", peak, clients)
	}
}

// NewModel wires a real schedule through the pipeline analysis.
func TestNewModelFromSchedule(t *testing.T) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps = 60, 8, 120
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())
	res, err := lp.Schedule(g, m, lp.Options{GPUs: 2})
	if err != nil {
		t.Fatalf("lp.Schedule: %v", err)
	}
	dm, err := NewModel("lp", g, m, res.Schedule)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	if dm.Latency <= 0 || dm.Period <= 0 || dm.Period > dm.Latency {
		t.Fatalf("degenerate model: latency %v period %v", dm.Latency, dm.Period)
	}
	if len(dm.GPUBusy) != 2 {
		t.Fatalf("GPUBusy has %d entries, want 2", len(dm.GPUBusy))
	}
	if dm.Capacity() <= 0 {
		t.Fatalf("capacity %g", dm.Capacity())
	}
	// The deployment must actually serve: a light load meets all SLOs.
	r := mustRun(t, Options{
		Models:  []Model{dm},
		Tenants: []Tenant{{Name: "t", Deadline: dm.Latency.Scale(4), Rate: dm.Capacity() / 4}},
		Horizon: units.Millis(500),
	})
	if r.Attainment < 0.95 {
		t.Fatalf("lightly loaded deployment attained only %g", r.Attainment)
	}
}

func TestCapacity(t *testing.T) {
	m := Model{Latency: units.Millis(4), Period: units.Millis(2), Replicas: 3}
	if got := m.Capacity(); got != 1500 {
		t.Fatalf("Capacity() = %g, want 1500", got)
	}
	if got := (Model{}).Capacity(); got != 0 {
		t.Fatalf("zero model Capacity() = %g, want 0", got)
	}
}

func BenchmarkServeEDF(b *testing.B) {
	opt := Options{
		Models: []Model{testModel(2)},
		Tenants: []Tenant{
			{Name: "tight", Deadline: units.Millis(8), Rate: 500},
			{Name: "loose", Deadline: units.Millis(40), Rate: 500},
		},
		Policy:  EDF,
		Horizon: units.Millis(1000),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(opt); err != nil {
			b.Fatal(err)
		}
	}
}
