// Package linttest runs one analyzer over a directory of fixture files
// and checks its diagnostics against `// want "regexp"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest. A fixture line
// that should be flagged carries a want comment whose regular expression
// must match the diagnostic message; every diagnostic must be expected
// and every expectation must fire, so the same run proves both that the
// analyzer catches violations and that it accepts the clean counterparts.
//
// Fixture imports of standard-library packages are resolved through the
// go toolchain's export data. Imports under this module's path are
// replaced by empty placeholder packages — with three exceptions: the
// internal/units, internal/parallel and internal/gpu packages are
// type-checked from their real source, because the unitflow,
// sharedcapture and locksafe analyzers' semantics depend on the actual
// defined types, worker signatures and cost-model method sets, and
// fixtures must see them. Other module-internal fixtures (pubapi) only
// need the import path to exist syntactically.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/shus-lab/hios/internal/lint/analysis"
)

// Run applies a to the fixture package in dir, type-checked as if its
// import path were asPath (analyzers scope themselves by path), and
// reports any mismatch against the fixtures' want comments as test
// errors.
func Run(t *testing.T, a *analysis.Analyzer, dir, asPath string) {
	t.Helper()
	fset, files, got := Diagnostics(t, a, dir, asPath)
	checkWants(t, fset, files, got)
}

// PackageSpec names one fixture directory and the import path it is
// type-checked under for a whole-module run.
type PackageSpec struct {
	Dir    string
	AsPath string
}

// RunModule applies a whole-module analyzer run — the Module hook first,
// then the per-package passes with its result in ModuleData — to several
// fixture packages checked in order, so later packages can import
// earlier ones by their AsPath with real types. Diagnostics from every
// package are matched against the combined want comments; this is how
// cross-package behavior (hotalloc's hotness propagation) is fixtured.
func RunModule(t *testing.T, a *analysis.Analyzer, specs []PackageSpec) {
	t.Helper()
	fset := token.NewFileSet()
	imp := moduleImporter{std: fixtureImporter{fset}, local: map[string]*types.Package{}}
	var pkgs []*analysis.Package
	var allFiles []*ast.File
	for _, s := range specs {
		files := parseDir(t, fset, s.Dir)
		pkg, info, _ := analysis.TypeCheck(fset, imp, s.AsPath, files)
		imp.local[s.AsPath] = pkg
		pkgs = append(pkgs, &analysis.Package{
			Path: s.AsPath, Dir: s.Dir, Fset: fset,
			Files: files, Pkg: pkg, Info: info,
		})
		allFiles = append(allFiles, files...)
	}
	got, _, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: %s: %v", a.Name, err)
	}
	checkWants(t, fset, allFiles, got)
}

// moduleImporter resolves fixture packages checked earlier in a
// RunModule sequence, falling back to the standard fixture importer.
type moduleImporter struct {
	std   fixtureImporter
	local map[string]*types.Package
}

func (m moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// checkWants matches diagnostics against the files' want comments: every
// diagnostic must be expected and every expectation must fire.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, got []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
	for _, d := range got {
		p := fset.Position(d.Pos)
		key := posKey{filepath.Base(p.Filename), p.Line}
		ws := wants[key]
		matched := false
		for i, w := range ws {
			if !w.used && w.re.MatchString(d.Message) {
				ws[i].used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", key.file, key.line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

// Diagnostics parses and type-checks the fixture package in dir under
// the import path asPath and returns the analyzer's raw findings, for
// tests that assert on the diagnostic set directly (e.g. that an
// analyzer stays silent outside its package scope).
func Diagnostics(t *testing.T, a *analysis.Analyzer, dir, asPath string) (*token.FileSet, []*ast.File, []analysis.Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	files := parseDir(t, fset, dir)
	pkg, info, _ := analysis.TypeCheck(fset, fixtureImporter{fset}, asPath, files)
	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer: a,
		Path:     asPath,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		Report:   func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("linttest: %s: %v", a.Name, err)
	}
	analysis.SortDiagnostics(fset, got)
	return fset, files, got
}

// parseDir parses every .go file of one fixture directory.
func parseDir(t *testing.T, fset *token.FileSet, dir string) []*ast.File {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixtures in %s", dir)
	}
	return files
}

type posKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

var wantRe = regexp.MustCompile("// want (.*)$")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[posKey][]want {
	t.Helper()
	out := make(map[posKey][]want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				key := posKey{filepath.Base(p.Filename), p.Line}
				for _, pat := range splitPatterns(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", key.file, key.line, pat, err)
					}
					out[key] = append(out[key], want{re: re})
				}
			}
		}
	}
	return out
}

// splitPatterns extracts the quoted or backquoted regexps after "want".
func splitPatterns(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			j := i + 1
			for j < len(s) && (s[j] != '"' || s[j-1] == '\\') {
				j++
			}
			if j < len(s) {
				if u, err := strconv.Unquote(s[i : j+1]); err == nil {
					out = append(out, u)
				}
				i = j
			}
		case '`':
			j := strings.IndexByte(s[i+1:], '`')
			if j >= 0 {
				out = append(out, s[i+1:i+1+j])
				i += j + 1
			}
		}
	}
	return out
}

// fixtureImporter resolves standard-library imports via the toolchain's
// export data and fabricates empty packages for anything else.
type fixtureImporter struct {
	fset *token.FileSet
}

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if strings.HasSuffix(path, "/internal/units") || strings.HasSuffix(path, "/internal/parallel") || strings.HasSuffix(path, "/internal/gpu") {
		return realPackage(path)
	}
	if f := stdExport(path); f != "" {
		imp := importer.ForCompiler(fi.fset, "gc", func(p string) (io.ReadCloser, error) {
			ef := stdExport(p)
			if ef == "" {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(ef)
		})
		return imp.Import(path)
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	return pkg, nil
}

var (
	realMu   sync.Mutex
	realPkgs = map[string]*types.Package{}
)

// realPackage type-checks a module-internal package from its real source
// so fixtures can use its genuine types (the unitflow analyzer keys on
// the defined types of internal/units; sharedcapture keys on the worker
// signatures of internal/parallel). The directory is the path's suffix
// below the module root, found by walking up from the working directory
// (the test's package directory) to go.mod. Each package is checked into
// its own FileSet — fixture tests never report positions inside it — and
// cached for the test process.
func realPackage(path string) (*types.Package, error) {
	// The lock guards only the cache, not the type-check: checking one
	// real package can import another (gpu imports units), which
	// re-enters realPackage on the same goroutine. Racing tests may
	// duplicate a check; last store wins harmlessly.
	realMu.Lock()
	pkg, ok := realPkgs[path]
	realMu.Unlock()
	if ok {
		return pkg, nil
	}
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	i := strings.Index(path, "/internal/")
	if i < 0 {
		return nil, fmt.Errorf("linttest: %q is not a module-internal path", path)
	}
	dir := filepath.Join(root, filepath.FromSlash(path[i+1:]))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pfset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(pfset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: fixtureImporter{pfset}}
	pkg, err = conf.Check(path, pfset, files, nil)
	if err != nil {
		return nil, err
	}
	realMu.Lock()
	realPkgs[path] = pkg
	realMu.Unlock()
	return pkg, nil
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("linttest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

var (
	stdOnce    sync.Once
	stdExports map[string]string
)

// stdExport returns the export-data file of a standard-library package,
// building the table once per test process with `go list`.
func stdExport(path string) string {
	stdOnce.Do(func() {
		stdExports = make(map[string]string)
		cmd := exec.Command("go", "list", "-e", "-deps", "-export", "-json=ImportPath,Export", "std")
		var stdout bytes.Buffer
		cmd.Stdout = &stdout
		if err := cmd.Run(); err != nil {
			return // leaves the table empty; imports will fail loudly
		}
		dec := json.NewDecoder(&stdout)
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err != nil {
				break
			}
			if p.Export != "" {
				stdExports[p.ImportPath] = p.Export
			}
		}
	})
	return stdExports[path]
}
