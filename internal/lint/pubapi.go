package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"github.com/shus-lab/hios/internal/lint/analysis"
)

// PubAPI enforces the shape of the public API surface with two rules.
//
// Import rule: commands (cmd/...) and examples (examples/...) must not
// import internal/... packages directly. The root `hios` package is the
// deliberate public facade: it re-exports every type and operation an
// application needs, so a cmd import of internal/ either means the
// facade is missing an entry point (extend it) or the command is
// reaching into implementation details that the next refactor will
// break. The lint tooling itself (internal/lint/...) is exempt:
// cmd/hios-lint is a developer tool, not part of the scheduling API
// surface.
//
// Options rule (module-wide): every exported struct type named Options
// or *Options must have a Validate method. Option structs follow the
// validated-options pattern — zero values select documented defaults
// via a private fill, Validate reports structural violations — so a
// bare options struct is an API that cannot reject bad configurations
// compatibly.
var PubAPI = &analysis.Analyzer{
	Name: "pubapi",
	Doc:  "forbids cmd/ and examples/ from importing internal/ directly; requires Validate on exported option structs",
	Run:  runPubAPI,
}

func runPubAPI(pass *analysis.Pass) error {
	if inScope(pass.Path, "cmd", "examples") {
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if !strings.HasPrefix(path, ModulePath+"/internal/") {
					continue
				}
				if strings.HasPrefix(path, ModulePath+"/internal/lint") {
					continue
				}
				pass.Reportf(imp.Pos(), "%s imports %s; commands and examples must go through the public hios facade", pass.Path, path)
			}
		}
	}
	if pass.Path != ModulePath && !strings.HasPrefix(pass.Path, ModulePath+"/") {
		return nil
	}
	if inScope(pass.Path, "internal/lint") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				name := ts.Name.Name
				if !ast.IsExported(name) || !strings.HasSuffix(name, "Options") {
					continue
				}
				// Aliases re-export someone else's options type; the
				// Validate method lives with the definition.
				if ts.Assign.IsValid() {
					continue
				}
				if _, ok := ts.Type.(*ast.StructType); !ok {
					continue
				}
				if pass.Pkg == nil {
					continue
				}
				obj := pass.Pkg.Scope().Lookup(name)
				if obj == nil {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				has := false
				for i := 0; i < named.NumMethods(); i++ {
					if named.Method(i).Name() == "Validate" {
						has = true
						break
					}
				}
				if !has {
					pass.Reportf(ts.Pos(), "exported option struct %s has no Validate method; follow the validated-options pattern (private fill for defaults, Validate for structural checks)", name)
				}
			}
		}
	}
	return nil
}
