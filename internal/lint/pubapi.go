package lint

import (
	"strconv"
	"strings"

	"github.com/shus-lab/hios/internal/lint/analysis"
)

// PubAPI forbids commands (cmd/...) and examples (examples/...) from
// importing internal/... packages directly. The root `hios` package is
// the deliberate public facade: it re-exports every type and operation an
// application needs, so a cmd import of internal/ either means the facade
// is missing an entry point (extend it) or the command is reaching into
// implementation details that the next refactor will break.
//
// The lint tooling itself (internal/lint/...) is exempt: cmd/hios-lint is
// a developer tool, not part of the scheduling API surface.
var PubAPI = &analysis.Analyzer{
	Name: "pubapi",
	Doc:  "forbids cmd/ and examples/ from importing internal/ directly",
	Run:  runPubAPI,
}

func runPubAPI(pass *analysis.Pass) error {
	if !inScope(pass.Path, "cmd", "examples") {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if !strings.HasPrefix(path, ModulePath+"/internal/") {
				continue
			}
			if strings.HasPrefix(path, ModulePath+"/internal/lint") {
				continue
			}
			pass.Reportf(imp.Pos(), "%s imports %s; commands and examples must go through the public hios facade", pass.Path, path)
		}
	}
	return nil
}
