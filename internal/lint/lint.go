// Package lint is the hios-lint analyzer suite: four static checks that
// enforce the determinism contract of the HIOS reproduction (DESIGN.md
// "Invariants and static analysis"). The schedulers promise that the
// same graph, cost model and options always produce the same schedule;
// the checks reject the Go constructs that silently break that promise —
// unordered map iteration in scheduling loops, exact floating-point
// latency comparison, wall-clock and global-RNG leakage into the
// deterministic core — plus imports that bypass the public hios facade.
//
// Findings can be suppressed line by line with `//lint:<directive>`
// comments (on the flagged line or the line above); each analyzer
// documents its directive.
package lint

import (
	"strings"

	"github.com/shus-lab/hios/internal/lint/analysis"
)

// ModulePath is the import-path root of this repository.
const ModulePath = "github.com/shus-lab/hios"

// Suite returns every analyzer, in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{MapOrder, FloatCmp, DetClock, PubAPI}
}

// inScope reports whether pkg (an import path) is the module package
// whose path relative to the module root matches one of the given
// prefixes. A prefix "internal/sched" covers internal/sched and every
// package beneath it.
func inScope(pkg string, prefixes ...string) bool {
	rel, ok := strings.CutPrefix(pkg, ModulePath+"/")
	if !ok {
		return false
	}
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}
