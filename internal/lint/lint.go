// Package lint is the hios-lint analyzer suite: static checks that
// enforce the determinism and dimensional contracts of the HIOS
// reproduction (DESIGN.md "Invariants and static analysis", "Units and
// dimensional safety"). The schedulers promise that the same graph, cost
// model and options always produce the same schedule; the checks reject
// the Go constructs that silently break that promise — unordered map
// iteration in scheduling loops, exact floating-point latency
// comparison, wall-clock and global-RNG leakage into the deterministic
// core, unsynchronized writes from parallel worker closures, imports
// that bypass the public hios facade — and the constructs that break the
// units discipline of the cost model: raw literals adopting a unit
// implicitly and arithmetic that mixes or invents dimensions.
//
// Findings can be suppressed line by line with `//lint:<directive>`
// comments (on the flagged line or the line above); each analyzer
// documents its directive.
package lint

import (
	"errors"
	"fmt"
	"strings"

	"github.com/shus-lab/hios/internal/lint/analysis"
)

// ModulePath is the import-path root of this repository.
const ModulePath = "github.com/shus-lab/hios"

// registryEntry describes one analyzer of the suite: the analyzer itself
// plus the suite-level metadata that tools print (the suppression
// directive, empty when the analyzer deliberately offers none).
type registryEntry struct {
	Analyzer  *analysis.Analyzer
	Directive string // //lint:<directive>, "" if unsuppressable
}

// registry is the single source of truth for the analyzer suite, in
// reporting order. cmd/hios-lint's usage text, the CI lint job and the
// suite tests all enumerate from here; adding an analyzer means adding
// one row.
var registry = []registryEntry{
	{MapOrder, "ordered"},
	{FloatCmp, "floatexact"},
	{DetClock, ""}, // wall-clock in the core is never legitimate
	{PubAPI, ""},   // facade bypasses are never legitimate either
	{UnitFlow, "unitless"},
	{SharedCapture, "sharedcapture"},
	{HotAlloc, "hotalloc"},
	{SeedFlow, "seedflow"},
	{LockSafe, "locksafe"},
}

// Suite returns every analyzer, in reporting order.
func Suite() []*analysis.Analyzer {
	out := make([]*analysis.Analyzer, len(registry))
	for i, e := range registry {
		out[i] = e.Analyzer
	}
	return out
}

// Directive returns the suppression directive of the named analyzer
// ("" when the analyzer has none or is unknown).
func Directive(name string) string {
	for _, e := range registry {
		if e.Analyzer.Name == name {
			return e.Directive
		}
	}
	return ""
}

// Select returns the analyzers to run given the comma-separated -only
// and -skip lists (at most one may be non-empty). Every listed name must
// exist in the registry: a typo silently running the wrong subset is
// exactly the failure mode a selection flag must not have, so unknown
// names are errors naming the valid set. Registry order is preserved.
func Select(only, skip string) ([]*analysis.Analyzer, error) {
	if only != "" && skip != "" {
		return nil, errors.New("-only and -skip are mutually exclusive")
	}
	parse := func(list string) (map[string]bool, error) {
		names := map[string]bool{}
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !registered(name) {
				return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, registryNames())
			}
			names[name] = true
		}
		return names, nil
	}
	var out []*analysis.Analyzer
	switch {
	case only != "":
		names, err := parse(only)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			return nil, errors.New("-only lists no analyzers")
		}
		for _, e := range registry {
			if names[e.Analyzer.Name] {
				out = append(out, e.Analyzer)
			}
		}
	case skip != "":
		names, err := parse(skip)
		if err != nil {
			return nil, err
		}
		for _, e := range registry {
			if !names[e.Analyzer.Name] {
				out = append(out, e.Analyzer)
			}
		}
	default:
		out = Suite()
	}
	return out, nil
}

// registered reports whether name is an analyzer in the registry.
func registered(name string) bool {
	for _, e := range registry {
		if e.Analyzer.Name == name {
			return true
		}
	}
	return false
}

// registryNames renders the valid analyzer names for error messages.
func registryNames() string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Analyzer.Name
	}
	return strings.Join(names, ", ")
}

// inScope reports whether pkg (an import path) is the module package
// whose path relative to the module root matches one of the given
// prefixes. A prefix "internal/sched" covers internal/sched and every
// package beneath it.
func inScope(pkg string, prefixes ...string) bool {
	rel, ok := strings.CutPrefix(pkg, ModulePath+"/")
	if !ok {
		return false
	}
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}
