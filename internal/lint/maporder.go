package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/shus-lab/hios/internal/lint/analysis"
)

// MapOrder flags `for range` over a map inside the scheduling core
// (internal/sched/..., internal/sim, internal/cost,
// internal/experiments). Go randomizes map iteration order, so any such
// loop whose effect depends on visit order makes schedules — and the
// results_*.txt they produce — differ from run to run over identical
// inputs, which is exactly the reproducibility the paper's Figs. 9-14
// rely on.
//
// A loop is accepted without a diagnostic when its body is provably
// order-insensitive:
//
//   - it only collects keys/values into a slice that is subsequently
//     sorted in the same function (the collect-then-sort idiom);
//   - it only performs commutative accumulation (+=, counters, bit-ops)
//     or writes into another map at distinct keys;
//   - it only runs min/max-style conditional updates.
//
// Anything else must either iterate sorted keys instead, or carry a
// `//lint:ordered` directive asserting that order cannot matter.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags order-dependent map iteration in the deterministic scheduling core",
	Run:  runMapOrder,
}

func runMapOrder(pass *analysis.Pass) error {
	if !inScope(pass.Path, "internal/sched", "internal/sim", "internal/cost", "internal/costcache", "internal/dpcache", "internal/experiments", "internal/serve", "internal/cluster", "internal/specflag", "internal/graph", "cmd") {
		return nil
	}
	for _, f := range pass.Files {
		// Record every function body so each range statement can find
		// its enclosing function (needed to spot sort calls after the
		// loop).
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		enclosing := func(pos token.Pos) *ast.BlockStmt {
			var best *ast.BlockStmt
			for _, b := range bodies {
				if b.Pos() <= pos && pos < b.End() {
					if best == nil || b.Pos() > best.Pos() {
						best = b
					}
				}
			}
			return best
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Suppressed("ordered", rs.Pos()) {
				return true
			}
			chk := &orderChecker{pass: pass, rng: rs, fn: enclosing(rs.Pos())}
			if chk.insensitiveBlock(rs.Body) {
				return true
			}
			pass.Reportf(rs.Pos(), "iteration over map %s is order-dependent in the deterministic core; iterate sorted keys, or mark //lint:ordered if order provably cannot matter", types.ExprString(rs.X))
			return true
		})
	}
	return nil
}

// orderChecker decides whether a map-range body is order-insensitive.
type orderChecker struct {
	pass *analysis.Pass
	rng  *ast.RangeStmt
	fn   *ast.BlockStmt // enclosing function body, nil at file scope
}

func (c *orderChecker) insensitiveBlock(b *ast.BlockStmt) bool {
	for _, st := range b.List {
		if !c.insensitiveStmt(st) {
			return false
		}
	}
	return true
}

func (c *orderChecker) insensitiveStmt(st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.AssignStmt:
		return c.insensitiveAssign(s)
	case *ast.IncDecStmt:
		return true // counters commute
	case *ast.DeclStmt, *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		// Skipping elements is order-free; breaking out (or goto-ing
		// away) at an arbitrary element is not.
		return s.Tok == token.CONTINUE
	case *ast.ExprStmt:
		// delete(m, k) removes at a key; any other call may observe order.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !c.insensitiveStmt(s.Init) {
			return false
		}
		// Min/max-style updates (`if v < best { best = v }`) commute even
		// though the branch assigns plainly: the assigned variable must
		// itself appear in the condition.
		if c.isExtremumUpdate(s) {
			return true
		}
		if !c.insensitiveBlock(s.Body) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return c.insensitiveBlock(e)
		case *ast.IfStmt:
			return c.insensitiveStmt(e)
		}
		return false
	case *ast.BlockStmt:
		return c.insensitiveBlock(s)
	case *ast.RangeStmt:
		return c.insensitiveBlock(s.Body)
	case *ast.ForStmt:
		return c.insensitiveBlock(s.Body)
	default:
		// return/break leak the arbitrary visit order; sends, gos,
		// defers and anything unrecognized are assumed order-sensitive.
		return false
	}
}

func (c *orderChecker) insensitiveAssign(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true // commutative accumulation
	case token.ASSIGN, token.DEFINE:
	default:
		return false
	}
	if len(s.Lhs) != len(s.Rhs) && len(s.Rhs) != 1 {
		return false
	}
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if i < len(s.Rhs) {
			rhs = s.Rhs[i]
		} else {
			rhs = s.Rhs[0]
		}
		if !c.insensitiveWrite(lhs, rhs, s.Tok == token.DEFINE) {
			return false
		}
	}
	return true
}

func (c *orderChecker) insensitiveWrite(lhs, rhs ast.Expr, define bool) bool {
	// Writing another map at a (presumably distinct) key commutes.
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if t := c.pass.Info.TypeOf(ix.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return true
			}
		}
		return false
	}
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	if define {
		return true // fresh per-iteration local
	}
	// Idempotent constant writes (`found = true`) commute.
	switch r := rhs.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		if r.Name == "true" || r.Name == "false" || r.Name == "nil" {
			return true
		}
	}
	// x = append(x, ...) is fine when x is sorted later in the function.
	if call, ok := rhs.(*ast.CallExpr); ok {
		if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" && len(call.Args) > 0 {
			if base, ok := call.Args[0].(*ast.Ident); ok && c.sameObject(base, id) {
				return c.sortedAfterLoop(id)
			}
		}
	}
	return false
}

// isExtremumUpdate recognizes `if <cond mentioning x> { x = ... }` with a
// single plain assignment (optionally several, all to condition vars).
func (c *orderChecker) isExtremumUpdate(s *ast.IfStmt) bool {
	if s.Else != nil || len(s.Body.List) == 0 {
		return false
	}
	condVars := map[types.Object]bool{}
	ast.Inspect(s.Cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.Info.ObjectOf(id); obj != nil {
				condVars[obj] = true
			}
		}
		return true
	})
	for _, st := range s.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return false
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || !condVars[c.pass.Info.ObjectOf(id)] {
				return false
			}
		}
	}
	return true
}

func (c *orderChecker) sameObject(a, b *ast.Ident) bool {
	oa, ob := c.pass.Info.ObjectOf(a), c.pass.Info.ObjectOf(b)
	return oa != nil && oa == ob
}

// sortFuncs are the sort entry points whose first argument names the
// slice being ordered.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Stable": true, "Sort": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfterLoop reports whether the enclosing function sorts the slice
// named by id at some point after the range statement.
func (c *orderChecker) sortedAfterLoop(id *ast.Ident) bool {
	if c.fn == nil {
		return false
	}
	obj := c.pass.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(c.fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rng.End() || len(call.Args) == 0 {
			return true
		}
		pkg, name, ok := c.pass.PkgFunc(call.Fun)
		if !ok || !sortFuncs[pkg][name] {
			return true
		}
		arg := call.Args[0]
		if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
			arg = u.X
		}
		if aid, ok := arg.(*ast.Ident); ok && c.pass.Info.ObjectOf(aid) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
