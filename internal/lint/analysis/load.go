package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TypeErrors holds soft type-checking failures. Analysis still runs
	// on a partially checked package, exactly as `go vet` does.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load resolves package patterns (./..., specific import paths) with the
// go tool, building export data for every dependency, then parses and
// type-checks each matched package from source. This mirrors the
// architecture of `go vet`: only the packages under analysis pay for full
// syntax, everything beneath them is imported from compiled export data,
// so loading stays fast and works without network access.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,ImportMap,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)   // import path -> export data file
	importMap := make(map[string]string) // as-written path -> effective path
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Error != nil && !lp.DepOnly {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		for from, to := range lp.ImportMap {
			importMap[from] = to
		}
		if !lp.DepOnly && len(lp.GoFiles) > 0 {
			cp := lp
			targets = append(targets, &cp)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := importMap[path]; ok {
			path = to
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, t := range targets {
		p, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	pkg, info, softErrs := TypeCheck(fset, imp, lp.ImportPath, files)
	return &Package{
		Path:       lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		TypeErrors: softErrs,
	}, nil
}

// TypeCheck type-checks one package's files, collecting rather than
// failing on type errors so analyzers can run over partially valid code.
func TypeCheck(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, []error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var softErrs []error
	cfg := &types.Config{
		Importer: imp,
		Error:    func(err error) { softErrs = append(softErrs, err) },
	}
	pkg, _ := cfg.Check(path, fset, files, info)
	return pkg, info, softErrs
}

// RunAnalyzers applies each analyzer to each package and returns the
// combined, position-sorted diagnostics. Analyzers with a Module hook
// see every package at once first; the hook's result reaches each
// per-package Pass through ModuleData.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	moduleData := make(map[*Analyzer]any)
	for _, a := range analyzers {
		if a.Module != nil {
			moduleData[a] = a.Module(pkgs)
		}
	}
	var all []Diagnostic
	var fset *token.FileSet
	for _, p := range pkgs {
		fset = p.Fset
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Path:       p.Path,
				Fset:       p.Fset,
				Files:      p.Files,
				Pkg:        p.Pkg,
				Info:       p.Info,
				ModuleData: moduleData[a],
			}
			pass.Report = func(d Diagnostic) { all = append(all, d) }
			if err := a.Run(pass); err != nil {
				return nil, fset, fmt.Errorf("lint: %s on %s: %v", a.Name, p.Path, err)
			}
		}
	}
	if fset != nil {
		SortDiagnostics(fset, all)
	}
	return all, fset, nil
}
