// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects the
// type-checked syntax of one package through a Pass and reports
// Diagnostics. It exists because this repository builds hermetically
// against the standard library only; the subset implemented here (one
// run function per analyzer, positional diagnostics, line-scoped
// suppression directives) is exactly what the hios-lint suite needs,
// and the API mirrors x/tools closely enough that the analyzers would
// port to the real framework without structural change.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives.
	Name string
	// Doc is a one-paragraph description of what it reports.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// Module, when non-nil, runs once over every loaded package before
	// the per-package Run calls and its result is handed to each Pass as
	// ModuleData. It is how an analyzer sees across package boundaries
	// (hotalloc's cross-package hotness propagation). Drivers that only
	// see one package at a time — the vet-tool unit protocol, fixture
	// tests — leave ModuleData nil, and the analyzer must degrade to its
	// single-package behavior.
	Module func([]*Package) any
}

// Pass carries one package's parsed and type-checked syntax to an
// analyzer, plus the sink for its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path. Analyzers scope themselves by
	// it (e.g. maporder only fires inside the scheduling core).
	Path string
	Fset *token.FileSet
	// Files holds the package's non-test source files, parsed with
	// comments.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Report receives each diagnostic.
	Report func(Diagnostic)
	// ModuleData is the analyzer's Module result when the driver ran it
	// (nil under single-package drivers).
	ModuleData any

	directives map[directiveKey]bool
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name
	Message  string
}

// Reportf reports a diagnostic at pos under the pass's analyzer name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

type directiveKey struct {
	file string
	line int
	name string
}

var directiveRe = regexp.MustCompile(`^//lint:([a-z]+)\b`)

// Suppressed reports whether a `//lint:<name>` directive covers the
// source line of pos: either on the line itself (trailing comment) or on
// the line immediately above (leading comment), matching the placement
// conventions of //nolint and //go: directives.
func (p *Pass) Suppressed(name string, pos token.Pos) bool {
	if p.directives == nil {
		p.directives = make(map[directiveKey]bool)
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := directiveRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					cp := p.Fset.Position(c.Pos())
					p.directives[directiveKey{cp.Filename, cp.Line, m[1]}] = true
				}
			}
		}
	}
	at := p.Fset.Position(pos)
	return p.directives[directiveKey{at.Filename, at.Line, name}] ||
		p.directives[directiveKey{at.Filename, at.Line - 1, name}]
}

// PkgFunc resolves a selector expression to (package path, function
// name) when its qualifier is an imported package name, e.g. time.Now
// resolves to ("time", "Now"). The boolean is false for method calls,
// locals shadowing package names, and non-selector expressions.
func (p *Pass) PkgFunc(e ast.Expr) (string, string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// SortDiagnostics orders diagnostics by file position for stable output.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
