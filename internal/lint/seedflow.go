package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"github.com/shus-lab/hios/internal/lint/analysis"
)

// SeedFlow extends the detclock idea from clocks to randomness: every
// RNG in the module must flow from an explicit seed through the
// splitmix64 seed-stream helpers of internal/stats (MixSeed /
// SeedStream). Module-wide, in non-test files, it reports:
//
//  1. calls to the package-global math/rand and math/rand/v2 generators
//     (rand.Intn, rand.Float64, ...) — the global state is shared,
//     unseeded by default, and order-dependent under concurrency;
//  2. seed values laundered through raw integer arithmetic at an RNG
//     source constructor — rand.NewSource(seed+int64(i)) and friends —
//     because adjacent LCG seeds produce correlated streams; derive
//     child seeds with stats.MixSeed instead;
//  3. the splitmix64 magic constants (0x9e3779b97f4a7c15,
//     0xbf58476d1ce4e5b9, 0x94d049bb133111eb) outside internal/stats:
//     hand-rolled seed mixing belongs in the one audited helper.
//
// A legitimate non-seed use of the constants (e.g. the IOS DP's stage-set
// hash, which needs a mixer but never feeds an RNG) is suppressed line by
// line with `//lint:seedflow`.
var SeedFlow = &analysis.Analyzer{
	Name: "seedflow",
	Doc:  "requires RNG seeds to flow through the stats seed-stream helpers",
	Run:  runSeedFlow,
}

// seedSourceCtors maps RNG source constructors (package path -> function
// name) whose seed arguments rule 2 inspects.
var seedSourceCtors = map[string]map[string]bool{
	"math/rand":    {"NewSource": true},
	"math/rand/v2": {"NewPCG": true, "NewChaCha8": true},
}

// splitmixConstants are the three 64-bit splitmix64 mixing constants, as
// parsed integer values so every literal spelling matches.
var splitmixConstants = map[uint64]bool{
	0x9e3779b97f4a7c15: true,
	0xbf58476d1ce4e5b9: true,
	0x94d049bb133111eb: true,
}

// statsPkgPath is the sanctioned home of seed mixing.
const statsPkgPath = "internal/stats"

func runSeedFlow(pass *analysis.Pass) error {
	if !inModule(pass.Path) {
		return nil
	}
	// The lint tooling itself declares the constant table it matches.
	if inScope(pass.Path, "internal/lint") {
		return nil
	}
	inStats := inScope(pass.Path, statsPkgPath)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pkg, name, ok := pass.PkgFunc(n.Fun)
				if !ok || pass.IsTestFile(n.Pos()) {
					return true
				}
				if strings.HasPrefix(pkg, "math/rand") && detClockForbidden[pkg][name] {
					if !pass.Suppressed("seedflow", n.Pos()) {
						pass.Reportf(n.Pos(), "global rand.%s: all randomness must flow from an explicit seed; build a rand.New(rand.NewSource(seed)) from a stats.MixSeed-derived seed", name)
					}
					return true
				}
				if !inStats && seedSourceCtors[pkg][name] {
					for _, arg := range n.Args {
						if launderedSeed(pass, arg) && !pass.Suppressed("seedflow", arg.Pos()) {
							pass.Reportf(arg.Pos(), "seed derived by raw integer arithmetic at %s.%s: adjacent seeds correlate; derive child seeds with stats.MixSeed", pathBase(pkg), name)
						}
					}
				}
			case *ast.BasicLit:
				if inStats || n.Kind != token.INT || pass.IsTestFile(n.Pos()) {
					return true
				}
				v, err := strconv.ParseUint(n.Value, 0, 64)
				if err == nil && splitmixConstants[v] && !pass.Suppressed("seedflow", n.Pos()) {
					pass.Reportf(n.Pos(), "splitmix64 constant outside internal/stats: use stats.MixSeed / stats.SeedStream instead of hand-rolled seed mixing")
				}
			}
			return true
		})
	}
	return nil
}

// launderedSeed reports whether a seed expression contains raw integer
// arithmetic (any binary operator), the laundering rule 2 forbids. Type
// conversions are transparent (int64(i)+seed still launders); a helper
// call (stats.MixSeed, a named derivation) is opaque and stays legal.
func launderedSeed(pass *analysis.Pass, arg ast.Expr) bool {
	found := false
	ast.Inspect(arg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			found = true
		case *ast.CallExpr:
			if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversions are transparent
			}
			return false
		}
		return !found
	})
	return found
}
