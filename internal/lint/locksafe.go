package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/shus-lab/hios/internal/lint/analysis"
)

// LockSafe enforces the lock discipline of the mutex-bearing packages
// (internal/costcache, internal/dpcache, internal/profile,
// internal/parallel, internal/runtime, internal/serve,
// internal/cluster): critical
// sections stay short,
// allocation-free and balanced. Concretely it flags
//
//   - allocation under a held sync.Mutex/RWMutex — make, new, slice and
//     map literals, address-taken composites. Building the value before
//     locking keeps the critical section to the insert. Plain append is
//     deliberately accepted: appending a prepared element to a guarded
//     slice is the sanctioned publish idiom (runtime's span log).
//   - fmt/log/os/io/bufio calls under a held lock — formatting and IO
//     stall every other goroutine on the lock.
//   - cost-model computation (calls into internal/cost or internal/gpu)
//     under a held lock. The memoization contract is compute outside,
//     insert under the write lock with a re-check; holding the lock
//     through the computation serializes exactly the work the caches
//     exist to parallelize.
//   - copying a lock: a value (non-pointer) receiver or parameter whose
//     struct type transitively contains a mutex.
//   - returning with a lock held: a return statement inside a critical
//     section that has no deferred unlock and whose unlock comes later
//     (or never) leaks the lock on that path.
//   - double-checked insert without a re-check: a map read under RLock
//     followed by a store under Lock with no second read between the
//     Lock and the store loses the racer's insert silently; both the
//     else-branch re-check (costcache) and the defer-unlock early-return
//     re-check (profile) are accepted.
//
// The analysis is per-function and positional: a critical section is the
// source span from a Lock/RLock call to its matching unlock (function end
// when the unlock is deferred). Function literals are analyzed as their
// own functions; their bodies do not count against an enclosing section,
// and locks they take are tracked separately. A deliberate exception can
// be suppressed with `//lint:locksafe`.
var LockSafe = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "flags allocation, IO, cost-model computation and unlock-balance bugs inside mutex critical sections",
	Run:  runLockSafe,
}

func runLockSafe(pass *analysis.Pass) error {
	if !inScope(pass.Path, "internal/costcache", "internal/dpcache", "internal/profile", "internal/parallel", "internal/runtime", "internal/serve", "internal/cluster") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkLockCopy(pass, n)
				if n.Body != nil {
					checkLockRegions(pass, n.Body)
				}
			case *ast.FuncLit:
				checkLockRegions(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkLockCopy flags value receivers and parameters whose struct type
// transitively contains a sync mutex: calling the function copies the
// lock, and the copy guards nothing.
func checkLockCopy(pass *analysis.Pass, fd *ast.FuncDecl) {
	check := func(field *ast.Field, what string) {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			return
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return
		}
		if !containsLock(t, map[types.Type]bool{}) {
			return
		}
		pos := field.Type.Pos()
		if pass.IsTestFile(pos) || pass.Suppressed("locksafe", pos) {
			return
		}
		pass.Reportf(pos, "%s of %s passes a mutex-containing struct by value, copying the lock; use a pointer", what, fd.Name.Name)
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			check(field, "receiver")
		}
	}
	for _, field := range fd.Type.Params.List {
		check(field, "parameter")
	}
}

// containsLock reports whether t transitively contains sync.Mutex or
// sync.RWMutex by value.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if isSyncLock(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

func isSyncLock(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" && (n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

// lockEvent is one mutex call in a function body, in source order.
type lockEvent struct {
	pos      token.Pos
	name     string // rendered lock expression, e.g. "c.mu"
	method   string // Lock, RLock, Unlock, RUnlock
	deferred bool
}

// section is one critical section: from the acquiring call to its
// matching unlock, or to the body end when the unlock is deferred or
// missing.
type section struct {
	name       string
	write      bool // Lock rather than RLock
	start, end token.Pos
	deferred   bool // released by a deferred unlock
}

// checkLockRegions runs the critical-section rules over one function
// body, treating nested function literals as opaque.
func checkLockRegions(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []lockEvent
	deferCalls := map[*ast.CallExpr]bool{}
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Parents are visited before children, so the call is
			// marked before its own CallExpr visit below.
			deferCalls[n.Call] = true
			if name, method, ok := mutexCall(pass, n.Call); ok && (method == "Unlock" || method == "RUnlock") {
				events = append(events, lockEvent{pos: n.Pos(), name: name, method: method, deferred: true})
			}
		case *ast.CallExpr:
			if deferCalls[n] {
				return
			}
			if name, method, ok := mutexCall(pass, n); ok {
				events = append(events, lockEvent{pos: n.Pos(), name: name, method: method})
			}
		}
	})
	if len(events) == 0 {
		return
	}

	// Assemble sections positionally: an acquire opens, the next
	// matching release closes. This linearizes branches, which
	// over-extends a section whose unlock sits inside an early-return
	// branch — conservative in the right direction for the
	// return-with-lock-held rule and the supported idioms.
	var sections []section
	open := map[string]int{} // lock name -> index into sections
	for _, ev := range events {
		switch ev.method {
		case "Lock", "RLock":
			if _, ok := open[ev.name]; ok {
				continue // recursive lock: the race detector's department
			}
			open[ev.name] = len(sections)
			sections = append(sections, section{
				name:  ev.name,
				write: ev.method == "Lock",
				start: ev.pos,
				end:   body.End(),
			})
		case "Unlock", "RUnlock":
			i, ok := open[ev.name]
			if !ok {
				continue
			}
			if ev.deferred {
				sections[i].deferred = true
				continue // section runs to the body end
			}
			sections[i].end = ev.pos
			delete(open, ev.name)
		}
	}

	for _, s := range sections {
		checkSectionBody(pass, body, s)
	}
	checkDoubleCheckedInsert(pass, body, sections)
}

// checkSectionBody flags allocation, IO, cost-model computation and
// lock-leaking returns inside one critical section.
func checkSectionBody(pass *analysis.Pass, body *ast.BlockStmt, s section) {
	report := func(pos token.Pos, format string, args ...any) {
		if pass.IsTestFile(pos) || pass.Suppressed("locksafe", pos) {
			return
		}
		pass.Reportf(pos, format, args...)
	}
	inSection := func(pos token.Pos) bool { return pos > s.start && pos < s.end }
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !inSection(n.Pos()) {
				return
			}
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") {
				if pass.Info.ObjectOf(id) == types.Universe.Lookup(id.Name) {
					report(n.Pos(), "%s under held lock %s; build the value before locking", id.Name, s.name)
				}
				return
			}
			switch pkg := calleePkg(pass, n); pkg {
			case "fmt", "log", "os", "io", "bufio":
				report(n.Pos(), "%s call under held lock %s; format or do IO outside the critical section", pkg, s.name)
			case ModulePath + "/internal/cost", ModulePath + "/internal/gpu":
				report(n.Pos(), "cost-model computation under held lock %s; compute outside and insert under the lock with a re-check", s.name)
			}
		case *ast.CompositeLit:
			if !inSection(n.Pos()) {
				return
			}
			t := pass.Info.TypeOf(n)
			if t == nil {
				return
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				report(n.Pos(), "%s literal allocates under held lock %s; build it before locking", kindWord(t), s.name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && inSection(n.Pos()) {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "address-taken composite literal allocates under held lock %s; build it before locking", s.name)
				}
			}
		case *ast.ReturnStmt:
			if inSection(n.Pos()) && !s.deferred {
				report(n.Pos(), "return with lock %s held and no deferred unlock; this path leaks the lock", s.name)
			}
		}
	})
}

func kindWord(t types.Type) string {
	if _, ok := t.Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}

// checkDoubleCheckedInsert flags the broken half of the double-checked
// insert idiom: a map consulted under RLock and then stored to under a
// write lock without re-reading it first.
func checkDoubleCheckedInsert(pass *analysis.Pass, body *ast.BlockStmt, sections []section) {
	// Maps read under any read section of this function.
	readUnderRLock := map[string]bool{}
	for _, s := range sections {
		if s.write {
			continue
		}
		inspectShallow(body, func(n ast.Node) {
			ix, ok := n.(*ast.IndexExpr)
			if !ok || ix.Pos() <= s.start || ix.Pos() >= s.end {
				return
			}
			if _, isMap := mapIndex(pass, ix); isMap {
				readUnderRLock[types.ExprString(ix.X)] = true
			}
		})
	}
	if len(readUnderRLock) == 0 {
		return
	}
	for _, s := range sections {
		if !s.write {
			continue
		}
		// Positions of reads and stores of each interesting map inside
		// this write section.
		reads := map[string][]token.Pos{}
		var stores []*ast.IndexExpr
		storeTargets := map[*ast.IndexExpr]bool{}
		inspectShallow(body, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Pos() <= s.start || as.Pos() >= s.end {
				return
			}
			for _, lhs := range as.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if name, isMap := mapIndex(pass, ix); isMap && readUnderRLock[name] {
						stores = append(stores, ix)
						storeTargets[ix] = true
					}
				}
			}
		})
		if len(stores) == 0 {
			continue
		}
		inspectShallow(body, func(n ast.Node) {
			ix, ok := n.(*ast.IndexExpr)
			if !ok || storeTargets[ix] || ix.Pos() <= s.start || ix.Pos() >= s.end {
				return
			}
			if name, isMap := mapIndex(pass, ix); isMap && readUnderRLock[name] {
				reads[name] = append(reads[name], ix.Pos())
			}
		})
		for _, ix := range stores {
			name, _ := mapIndex(pass, ix)
			rechecked := false
			for _, p := range reads[name] {
				if p < ix.Pos() {
					rechecked = true
					break
				}
			}
			if rechecked || pass.IsTestFile(ix.Pos()) || pass.Suppressed("locksafe", ix.Pos()) {
				continue
			}
			pass.Reportf(ix.Pos(), "store to %s under write lock %s without re-checking after the RLock read; a racer's insert is silently overwritten", name, s.name)
		}
	}
}

// mapIndex returns the rendered map expression when ix indexes a map.
func mapIndex(pass *analysis.Pass, ix *ast.IndexExpr) (string, bool) {
	t := pass.Info.TypeOf(ix.X)
	if t == nil {
		return "", false
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return "", false
	}
	return types.ExprString(ix.X), true
}

// mutexCall classifies call as a Lock/RLock/Unlock/RUnlock on a sync
// mutex, returning the rendered lock expression.
func mutexCall(pass *analysis.Pass, call *ast.CallExpr) (name, method string, ok bool) {
	sel, ok2 := call.Fun.(*ast.SelectorExpr)
	if !ok2 {
		return "", "", false
	}
	m := sel.Sel.Name
	if m != "Lock" && m != "RLock" && m != "Unlock" && m != "RUnlock" {
		return "", "", false
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil {
		return "", "", false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if !isSyncLock(t) {
		return "", "", false
	}
	return types.ExprString(sel.X), m, true
}

// calleePkg returns the import path of the package defining the called
// function or method ("" when unresolvable or a builtin).
func calleePkg(pass *analysis.Pass, call *ast.CallExpr) string {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = pass.Info.ObjectOf(fun.Sel)
	case *ast.Ident:
		obj = pass.Info.ObjectOf(fun)
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// inspectShallow walks the body but does not descend into nested function
// literals: their statements execute under their own lock discipline.
func inspectShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
