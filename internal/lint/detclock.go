package lint

import (
	"go/ast"

	"github.com/shus-lab/hios/internal/lint/analysis"
)

// DetClock forbids wall-clock reads and global (unseeded) math/rand state
// in the deterministic core: internal/sim, internal/sched/...,
// internal/cost, internal/profile, internal/randdag and internal/mpi.
// Those packages define the reproducible half of the system — the same
// graph, cost model and seed must yield byte-identical schedules and
// simulated timelines — so time and randomness may only enter through
// injected values: an explicit `*rand.Rand` built from a caller-supplied
// seed (randdag's Config.Seed), an injected mpi.Clock, or timestamps
// passed in by the measurement layer.
//
// time.Now and friends remain legal in internal/runtime (which measures
// real executions and injects the clock into mpi), in _test.go files,
// and everywhere outside the core. There is deliberately no suppression
// directive: a clock or global-RNG call in the core is a design error,
// not a style choice — inject the dependency instead.
var DetClock = &analysis.Analyzer{
	Name: "detclock",
	Doc:  "forbids wall-clock and global math/rand use in the deterministic core",
	Run:  runDetClock,
}

// detClockForbidden maps package path -> function names whose call sites
// leak nondeterminism. For math/rand the list is exactly the functions
// operating on the package-global generator; rand.New/NewSource with an
// explicit seed stay legal.
var detClockForbidden = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true,
		"Sleep": true, "Tick": true, "After": true, "AfterFunc": true,
		"NewTicker": true, "NewTimer": true,
	},
	"math/rand": {
		"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
		"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
		"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
		"Perm": true, "Shuffle": true, "Read": true,
	},
	"math/rand/v2": {
		"Int": true, "IntN": true, "Int32": true, "Int32N": true,
		"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
		"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
		"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
		"Perm": true, "Shuffle": true, "N": true,
	},
}

func runDetClock(pass *analysis.Pass) error {
	if !inScope(pass.Path, "internal/sim", "internal/sched", "internal/cost", "internal/profile", "internal/randdag", "internal/mpi", "internal/serve", "internal/cluster", "cmd") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pass.PkgFunc(sel)
			if !ok || !detClockForbidden[pkg][name] {
				return true
			}
			if pass.IsTestFile(sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s in the deterministic core; inject a seeded *rand.Rand or an explicit timestamp instead", pathBase(pkg), name)
			return true
		})
	}
	return nil
}

func pathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
