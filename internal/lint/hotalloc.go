package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/shus-lab/hios/internal/lint/analysis"
)

// HotAlloc enforces the hot-path allocation discipline (DESIGN.md
// "Hot-path allocation discipline"). A function marked with a
// `//lint:hotpath` comment (on the `func` line or the line above, e.g. as
// the last line of its doc comment) becomes a call-graph root: the
// analyzer propagates hotness through static calls to functions and
// methods declared anywhere in the module. Under a whole-module driver
// (standalone hios-lint, cmd/hios-escape) the propagation crosses
// package boundaries — graph.LongestValidPath is hot because
// lp.Schedule calls it, with no annotation of its own — via the Module
// hook (HotFunctions); under single-package drivers (the vet-tool unit
// protocol, fixture tests) it degrades to same-package propagation, so
// cross-package callees are only checked by the whole-module run.
// Propagation never crosses the module boundary. Inside hot code it
// flags the allocation sources:
//
//   - make / new in a loop (accepted inside a cap()-guarded grow branch,
//     the scratch-buffer idiom of sched.growSlice);
//   - slice and map literals, and address-taken composite literals, in a
//     loop (plain struct values stay on the stack and are not flagged);
//   - append in a loop to a local slice declared without capacity;
//   - closures capturing outer variables in a loop (one closure object
//     per iteration);
//   - interface boxing at call sites in a loop: a concrete non-pointer
//     value passed to an interface parameter or converted to an
//     interface type allocates per call (container/heap's `any` boxing
//     is the canonical offender);
//   - fmt.* calls and non-constant string concatenation anywhere in hot
//     code — except inside return statements and panic arguments, the
//     cold error paths.
//
// A deliberate allocation (setup work, amortized growth the analyzer
// cannot see) is suppressed line by line with `//lint:hotalloc`.
var HotAlloc = &analysis.Analyzer{
	Name:   "hotalloc",
	Doc:    "flags allocation sources in code reachable from //lint:hotpath roots",
	Run:    runHotAlloc,
	Module: hotAllocModule,
}

// hotAllocModule adapts HotFunctions to the framework's Module hook.
func hotAllocModule(pkgs []*analysis.Package) any {
	return HotFunctions(pkgs)
}

// FuncKey returns the module-wide identity of a declared function or
// method: the package path relative to the module root, the bare
// receiver type name for methods, and the function name, joined with
// dots — "internal/graph.Closure.Reachable",
// "internal/sched/lp.Schedule"; root-package functions are just
// "Recv.Name" or "Name". The empty string means fn has no such identity
// (nil, or not a package-level function). cmd/hios-escape derives the
// same keys syntactically, so the hot set computed here classifies the
// compiler's per-function diagnostics too.
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	key := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		key = named.Obj().Name() + "." + key
	}
	path := fn.Pkg().Path()
	if path == ModulePath {
		return key
	}
	rel, ok := strings.CutPrefix(path, ModulePath+"/")
	if !ok {
		return ""
	}
	return rel + "." + key
}

// HotFunctions computes the module-wide hot set: every function
// reachable from a `//lint:hotpath` root through static calls between
// functions declared in the given packages, keyed by FuncKey. The value
// names the root (as a FuncKey) that first reached the function;
// discovery is breadth-first in package/file/declaration order, so the
// attribution is deterministic. Test files never contribute roots or
// edges.
func HotFunctions(pkgs []*analysis.Package) map[string]string {
	declared := make(map[string]bool)
	edges := make(map[string][]string)
	hot := make(map[string]string)
	var queue []string
	for _, p := range pkgs {
		if !inModule(p.Path) {
			continue
		}
		// A minimal pass: only Suppressed (directive scan) and
		// IsTestFile are used here, neither needs the Analyzer.
		pass := &analysis.Pass{
			Path:  p.Path,
			Fset:  p.Fset,
			Files: p.Files,
			Pkg:   p.Pkg,
			Info:  p.Info,
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || pass.IsTestFile(fd.Pos()) {
					continue
				}
				fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := FuncKey(fn)
				if key == "" {
					continue
				}
				declared[key] = true
				if pass.Suppressed("hotpath", fd.Pos()) {
					if _, seen := hot[key]; !seen {
						hot[key] = key
						queue = append(queue, key)
					}
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := staticCallee(pass, call)
					if callee == nil {
						return true
					}
					ck := FuncKey(callee)
					if ck == "" {
						return true
					}
					edges[key] = append(edges[key], ck)
					return true
				})
			}
		}
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		root := hot[key]
		for _, ck := range edges[key] {
			if !declared[ck] {
				continue
			}
			if _, seen := hot[ck]; !seen {
				hot[ck] = root
				queue = append(queue, ck)
			}
		}
	}
	return hot
}

// inModule reports whether pkg is a package of this module. hotalloc and
// seedflow are module-wide: annotations and seed helpers are conventions
// of this repository, so foreign code is never analyzed — which is also
// why hot-path propagation stops at the module boundary.
func inModule(pkg string) bool {
	return pkg == ModulePath || inScope(pkg, "internal", "cmd")
}

func runHotAlloc(pass *analysis.Pass) error {
	if !inModule(pass.Path) {
		return nil
	}

	// Collect this package's function declarations, in file order so
	// root attribution is deterministic.
	type declFunc struct {
		fn *types.Func
		fd *ast.FuncDecl
	}
	var decls []declFunc
	byFunc := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, declFunc{fn, fd})
			byFunc[fn] = fd
		}
	}

	// Hot set. Under a whole-module driver the Module hook already
	// propagated hotness across every package; this package's hot
	// functions are the declared ones whose FuncKey landed in the set.
	// Single-package drivers fall back to roots plus breadth-first
	// propagation through same-package static calls. Either way, a
	// function reached from several roots keeps the first (the
	// attribution only affects the message).
	hot := make(map[*types.Func]string)
	if module, ok := pass.ModuleData.(map[string]string); ok {
		for _, d := range decls {
			if pass.IsTestFile(d.fd.Pos()) {
				continue
			}
			if root, ok := module[FuncKey(d.fn)]; ok {
				hot[d.fn] = root
			}
		}
	} else {
		var queue []*types.Func
		for _, d := range decls {
			if pass.IsTestFile(d.fd.Pos()) {
				continue
			}
			if pass.Suppressed("hotpath", d.fd.Pos()) {
				hot[d.fn] = d.fn.Name()
				queue = append(queue, d.fn)
			}
		}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			root := hot[fn]
			ast.Inspect(byFunc[fn].Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(pass, call)
				if callee == nil || callee.Pkg() != pass.Pkg {
					return true
				}
				if _, ok := byFunc[callee]; !ok {
					return true
				}
				if _, seen := hot[callee]; !seen {
					hot[callee] = root
					queue = append(queue, callee)
				}
				return true
			})
		}
	}

	// Check every hot function, in declaration order.
	for _, d := range decls {
		root, ok := hot[d.fn]
		if !ok {
			continue
		}
		c := &hotAllocChecker{
			pass:  pass,
			root:  root,
			noCap: make(map[types.Object]bool),
		}
		c.collectLocalSlices(d.fd.Body)
		c.stmt(d.fd.Body, ctx{})
	}
	return nil
}

// staticCallee resolves a call expression to the declared function or
// method it statically invokes (nil for builtins, conversions, function
// values and interface-method calls).
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ctx is the walking context of the checker: whether the current node is
// inside a loop, inside a cap()-guarded grow branch, or on a cold error
// path (return / panic), plus whether an enclosing string concatenation
// was already reported.
type ctx struct {
	loop     bool
	capGuard bool
	cold     bool
	inConcat bool
}

type hotAllocChecker struct {
	pass  *analysis.Pass
	root  string
	noCap map[types.Object]bool // local slices declared without capacity
}

func (c *hotAllocChecker) reportf(pos token.Pos, format string, args ...any) {
	if c.pass.Suppressed("hotalloc", pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// collectLocalSlices records the function's local slice variables that
// are declared without spare capacity: `var xs []T`, `xs := []T{}` and
// 1- or 2-argument make (a 3-argument make pre-sizes the capacity).
func (c *hotAllocChecker) collectLocalSlices(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					obj := c.pass.Info.Defs[name]
					if obj != nil && isSliceType(obj.Type()) {
						c.noCap[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.Info.Defs[id]
				if obj == nil || !isSliceType(obj.Type()) {
					continue
				}
				switch rhs := ast.Unparen(n.Rhs[i]).(type) {
				case *ast.CompositeLit:
					if len(rhs.Elts) == 0 {
						c.noCap[obj] = true
					}
				case *ast.CallExpr:
					if isBuiltin(c.pass, rhs.Fun, "make") && len(rhs.Args) < 3 {
						c.noCap[obj] = true
					}
				}
			}
		}
		return true
	})
}

func isSliceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// stmt walks a statement, maintaining the loop / guard / cold context.
func (c *hotAllocChecker) stmt(s ast.Stmt, x ctx) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			c.stmt(st, x)
		}
	case *ast.ForStmt:
		c.stmt(s.Init, x)
		c.expr(s.Cond, x)
		in := x
		in.loop = true
		c.stmt(s.Post, in)
		c.stmt(s.Body, in)
	case *ast.RangeStmt:
		c.expr(s.X, x)
		in := x
		in.loop = true
		c.stmt(s.Body, in)
	case *ast.IfStmt:
		c.stmt(s.Init, x)
		c.expr(s.Cond, x)
		then := x
		if mentionsCap(s.Cond) {
			then.capGuard = true
		}
		c.stmt(s.Body, then)
		c.stmt(s.Else, x)
	case *ast.ReturnStmt:
		cold := x
		cold.cold = true
		for _, r := range s.Results {
			c.expr(r, cold)
		}
	case *ast.ExprStmt:
		c.expr(s.X, x)
	case *ast.AssignStmt:
		c.checkAppendGrowth(s, x)
		for _, e := range s.Rhs {
			c.expr(e, x)
		}
		for _, e := range s.Lhs {
			c.expr(e, x)
		}
	case *ast.SwitchStmt:
		c.stmt(s.Init, x)
		c.expr(s.Tag, x)
		c.stmt(s.Body, x)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, x)
		c.stmt(s.Assign, x)
		c.stmt(s.Body, x)
	case *ast.CaseClause:
		for _, e := range s.List {
			c.expr(e, x)
		}
		for _, st := range s.Body {
			c.stmt(st, x)
		}
	case *ast.SelectStmt:
		c.stmt(s.Body, x)
	case *ast.CommClause:
		c.stmt(s.Comm, x)
		for _, st := range s.Body {
			c.stmt(st, x)
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, x)
	case *ast.GoStmt:
		c.expr(s.Call, x)
	case *ast.DeferStmt:
		c.expr(s.Call, x)
	case *ast.SendStmt:
		c.expr(s.Chan, x)
		c.expr(s.Value, x)
	case *ast.IncDecStmt:
		c.expr(s.X, x)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, x)
					}
				}
			}
		}
	}
}

// expr walks an expression, reporting allocation sources per the context.
func (c *hotAllocChecker) expr(e ast.Expr, x ctx) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		c.checkCall(e, x)
	case *ast.CompositeLit:
		c.checkCompositeLit(e, x, false)
	case *ast.UnaryExpr:
		if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok && e.Op == token.AND {
			c.checkCompositeLit(lit, x, true)
			return
		}
		c.expr(e.X, x)
	case *ast.FuncLit:
		if x.loop && !x.cold && c.captures(e) {
			c.reportf(e.Pos(), "hot path (via %s): closure captures variables inside a loop, allocating one closure object per iteration; hoist it out of the loop", c.root)
		}
		// The literal's body is hot code too, but its own loop context
		// starts fresh: the closure runs when called, not per enclosing
		// iteration.
		c.collectLocalSlices(e.Body)
		c.stmt(e.Body, ctx{cold: x.cold})
	case *ast.BinaryExpr:
		if e.Op == token.ADD && !x.cold && !x.inConcat && c.isNonConstString(e) {
			c.reportf(e.Pos(), "hot path (via %s): string concatenation allocates; build into a reusable buffer or move formatting off the hot path", c.root)
			in := x
			in.inConcat = true
			c.expr(e.X, in)
			c.expr(e.Y, in)
			return
		}
		c.expr(e.X, x)
		c.expr(e.Y, x)
	case *ast.ParenExpr:
		c.expr(e.X, x)
	case *ast.SelectorExpr:
		c.expr(e.X, x)
	case *ast.IndexExpr:
		c.expr(e.X, x)
		c.expr(e.Index, x)
	case *ast.IndexListExpr:
		c.expr(e.X, x)
		for _, i := range e.Indices {
			c.expr(i, x)
		}
	case *ast.SliceExpr:
		c.expr(e.X, x)
		c.expr(e.Low, x)
		c.expr(e.High, x)
		c.expr(e.Max, x)
	case *ast.StarExpr:
		c.expr(e.X, x)
	case *ast.TypeAssertExpr:
		c.expr(e.X, x)
	case *ast.KeyValueExpr:
		c.expr(e.Key, x)
		c.expr(e.Value, x)
	}
}

// checkCall handles make/new, fmt.*, interface conversions and interface
// boxing of call arguments.
func (c *hotAllocChecker) checkCall(call *ast.CallExpr, x ctx) {
	// panic's argument is a cold path, like a return.
	if isBuiltin(c.pass, call.Fun, "panic") {
		cold := x
		cold.cold = true
		for _, a := range call.Args {
			c.expr(a, cold)
		}
		return
	}

	if x.loop && !x.capGuard && !x.cold {
		if isBuiltin(c.pass, call.Fun, "make") {
			c.reportf(call.Pos(), "hot path (via %s): make inside a loop allocates every iteration; hoist it or grow a reusable scratch buffer behind a cap() guard", c.root)
		} else if isBuiltin(c.pass, call.Fun, "new") {
			c.reportf(call.Pos(), "hot path (via %s): new inside a loop allocates every iteration; reuse a scratch value instead", c.root)
		}
	}

	isFmt := false
	if pkg, name, ok := c.pass.PkgFunc(call.Fun); ok && pkg == "fmt" {
		isFmt = true
		if !x.cold {
			c.reportf(call.Pos(), "hot path (via %s): fmt.%s allocates (interface boxing plus formatting); move it off the hot path or behind //lint:hotalloc", c.root, name)
		}
	}

	// Interface conversion T(x) and interface-boxing arguments (the fmt
	// diagnostic above already covers a fmt call's boxing).
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if x.loop && !x.cold && types.IsInterface(tv.Type) && len(call.Args) == 1 && c.boxes(call.Args[0]) {
			c.reportf(call.Pos(), "hot path (via %s): conversion to interface type in a loop allocates; keep the concrete type", c.root)
		}
	} else if x.loop && !x.cold && !isFmt {
		if sig, ok := typeOf(c.pass, call.Fun).(*types.Signature); ok && sig != nil {
			c.checkBoxing(call, sig)
		}
	}

	c.expr(call.Fun, x)
	for _, a := range call.Args {
		c.expr(a, x)
	}
}

// checkBoxing flags concrete values boxed into interface parameters.
func (c *hotAllocChecker) checkBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed through, no boxing
			}
			s, ok := params.At(np - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = s.Elem()
		case i < np:
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue
		}
		if c.boxes(arg) {
			c.reportf(arg.Pos(), "hot path (via %s): argument boxes into an interface parameter inside a loop, allocating per call; use a concrete-typed API", c.root)
		}
	}
}

// boxes reports whether passing arg to an interface allocates: a concrete
// non-pointer-shaped, non-constant value does; interfaces, pointers,
// maps, channels, funcs and compile-time constants do not.
func (c *hotAllocChecker) boxes(arg ast.Expr) bool {
	tv, ok := c.pass.Info.Types[arg]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	t := tv.Type
	if t == types.Typ[types.UntypedNil] {
		return false
	}
	if types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	}
	return true
}

// checkCompositeLit flags allocating literals in loops: slice and map
// literals always allocate; struct literals only when address-taken.
func (c *hotAllocChecker) checkCompositeLit(lit *ast.CompositeLit, x ctx, addrTaken bool) {
	if x.loop && !x.capGuard && !x.cold {
		kind := ""
		switch typeOf(c.pass, lit).Underlying().(type) {
		case *types.Slice:
			kind = "slice literal"
		case *types.Map:
			kind = "map literal"
		default:
			if addrTaken {
				kind = "address-taken composite literal"
			}
		}
		if kind != "" {
			c.reportf(lit.Pos(), "hot path (via %s): %s inside a loop allocates every iteration; reuse a scratch value", c.root, kind)
		}
	}
	for _, e := range lit.Elts {
		c.expr(e, x)
	}
}

// checkAppendGrowth flags `xs = append(xs, ...)` in a loop when xs is a
// local slice declared without capacity: every growth reallocates.
func (c *hotAllocChecker) checkAppendGrowth(s *ast.AssignStmt, x ctx) {
	if !x.loop || x.cold || x.capGuard || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return
	}
	id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := c.pass.Info.Uses[id]
	if obj == nil {
		obj = c.pass.Info.Defs[id]
	}
	if obj == nil || !c.noCap[obj] {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok || !isBuiltin(c.pass, call.Fun, "append") || len(call.Args) == 0 {
		return
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || first.Name != id.Name {
		return
	}
	c.reportf(s.Pos(), "hot path (via %s): append grows %s without preallocated capacity inside a loop; declare it with make(..., 0, n)", c.root, id.Name)
}

// captures reports whether a function literal references variables
// declared outside itself (excluding package-level objects, which cost
// nothing to reference).
func (c *hotAllocChecker) captures(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.Info.Uses[id].(*types.Var)
		if !ok || v.Pkg() != c.pass.Pkg {
			return true
		}
		if v.Parent() == c.pass.Pkg.Scope() || v.IsField() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
		}
		return true
	})
	return found
}

// mentionsCap reports whether an if-condition involves cap(...) — the
// guarded-grow idiom `if cap(buf) < n { buf = make(...) }` is the
// sanctioned way to allocate in hot code.
func mentionsCap(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "cap" {
				found = true
			}
		}
		return !found
	})
	return found
}

// isNonConstString reports whether e is a string-typed expression whose
// value is not a compile-time constant.
func (c *hotAllocChecker) isNonConstString(e ast.Expr) bool {
	tv, ok := c.pass.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isBuiltin reports whether fun is the named predeclared builtin (not a
// local identifier shadowing it).
func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	switch pass.Info.Uses[id].(type) {
	case nil, *types.Builtin:
		return true
	}
	return false
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}
