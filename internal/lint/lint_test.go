package lint_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/shus-lab/hios/internal/lint"
	"github.com/shus-lab/hios/internal/lint/analysis"
	"github.com/shus-lab/hios/internal/lint/linttest"
)

// Each fixture package mixes violations (marked `// want`) with clean
// counterparts, so one run proves the analyzer both fires on the bad
// code and stays quiet on the good. The asPath argument places the
// fixture inside the analyzer's package scope.

func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrder, "testdata/maporder", lint.ModulePath+"/internal/sched/fixture")
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, lint.FloatCmp, "testdata/floatcmp", lint.ModulePath+"/internal/cost/fixture")
}

func TestDetClock(t *testing.T) {
	linttest.Run(t, lint.DetClock, "testdata/detclock", lint.ModulePath+"/internal/sim/fixture")
}

// The determinism analyzers cover internal/mpi and internal/randdag:
// mpi runs on an injected Clock and randdag on a seeded generator, so
// the same fixtures must fire in full under those package paths too.
// This pins the scope — removing either path from an analyzer's list
// fails the unmatched want comments here.
func TestDeterminismScopeCoversMPIAndRandDAG(t *testing.T) {
	for _, pkg := range []string{"internal/mpi", "internal/randdag"} {
		t.Run(pkg, func(t *testing.T) {
			linttest.Run(t, lint.DetClock, "testdata/detclock", lint.ModulePath+"/"+pkg+"/fixture")
			linttest.Run(t, lint.SeedFlow, "testdata/seedflow", lint.ModulePath+"/"+pkg+"/fixture")
			linttest.Run(t, lint.PubAPI, "testdata/pubapioptions", lint.ModulePath+"/"+pkg+"/fixture")
		})
	}
}

func TestPubAPI(t *testing.T) {
	linttest.Run(t, lint.PubAPI, "testdata/pubapi", lint.ModulePath+"/cmd/fixture")
}

// The options rule is module-wide: an exported *Options struct without a
// Validate method is flagged wherever it is declared.
func TestPubAPIOptions(t *testing.T) {
	linttest.Run(t, lint.PubAPI, "testdata/pubapioptions", lint.ModulePath+"/internal/serve/fixture")
}

func TestUnitFlow(t *testing.T) {
	linttest.Run(t, lint.UnitFlow, "testdata/unitflow", lint.ModulePath+"/internal/cost/fixture")
}

// sharedcapture is unscoped — a parallel worker racing on captured state
// is wrong in any package — so its fixture loads under an arbitrary path.
func TestSharedCapture(t *testing.T) {
	linttest.Run(t, lint.SharedCapture, "testdata/sharedcapture", lint.ModulePath+"/internal/experiments/fixture")
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, lint.HotAlloc, "testdata/hotalloc", lint.ModulePath+"/internal/sched/fixture")
}

// Cross-package propagation: the dep fixture package carries no
// annotation at all — its want comments only fire when the Module hook
// carries hotness over from the caller package's root, including through
// a chain of two cross-package hops.
func TestHotAllocCrossPackage(t *testing.T) {
	linttest.RunModule(t, lint.HotAlloc, []linttest.PackageSpec{
		{Dir: "testdata/hotallocmod/dep", AsPath: lint.ModulePath + "/internal/fixture/hotallocmod/dep"},
		{Dir: "testdata/hotallocmod/caller", AsPath: lint.ModulePath + "/internal/fixture/hotallocmod/caller"},
	})
}

// Without the Module hook (single-package drivers: vet units, fixture
// runs), the dep package has no roots of its own and must stay silent —
// the degraded mode documented on HotAlloc.
func TestHotAllocCrossPackageFallback(t *testing.T) {
	_, _, got := linttest.Diagnostics(t, lint.HotAlloc, "testdata/hotallocmod/dep", lint.ModulePath+"/internal/fixture/hotallocmod/dep")
	if len(got) != 0 {
		t.Fatalf("dep fixture fired %d diagnostics without module data (first: %s)", len(got), got[0].Message)
	}
}

// Over the real module, the scheduler helpers that PRs 6-7 annotated by
// hand must now be hot purely by propagation from the genuine roots
// (lp.Schedule, mr.Schedule, window.Parallelize, ios.solveBlock): their
// hand-placed //lint:hotpath annotations were removed when propagation
// learned to cross packages, and this test pins that none of them fell
// out of the hot set. A handful of public entry points keep their own
// annotation because no static in-module hot caller exists (hot code uses
// PathFinder.Find / Closure probes / IncrementalEvaluator directly); those
// must attribute to themselves, proving they are roots, not propagated.
func TestCrossPackageHotPropagationRealModule(t *testing.T) {
	pkgs, err := analysis.Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	hot := lint.HotFunctions(pkgs)
	for _, key := range []string{
		"internal/graph.PathFinder.Find",
		"internal/graph.Graph.PriorityIndicators",
		"internal/sched.Evaluator.Latency",
		"internal/sched.Evaluator.LatencyFromPlacement",
		"internal/sched.Schedule.CompactClone",
		"internal/sched.FromPlacement",
		"internal/sched.IncrementalEvaluator.TrialFuse",
		"internal/sched.IncrementalEvaluator.CommitFuse",
		"internal/sched.IncrementalEvaluator.TrialInsert",
		"internal/sched.IncrementalEvaluator.CommitInsert",
	} {
		root, ok := hot[key]
		if !ok {
			t.Errorf("%s is no longer hot: cross-package propagation lost a de-annotated helper", key)
			continue
		}
		if root == key {
			t.Errorf("%s attributes to itself: expected it to be hot via propagation, not a hand-placed root", key)
		}
	}
	// Entry points with no static in-module hot caller stay annotated and
	// attribute to themselves.
	for _, key := range []string{
		"internal/graph.Graph.LongestValidPath",
		"internal/graph.Graph.Reachable",
		"internal/graph.Contraction.Acyclic",
		"internal/sched.Evaluator.LatencyPartial",
		"internal/sched/lp.Schedule",
	} {
		if root := hot[key]; root != key {
			t.Errorf("%s root attribution = %q, want itself", key, root)
		}
	}
}

func TestLockSafe(t *testing.T) {
	linttest.Run(t, lint.LockSafe, "testdata/locksafe", lint.ModulePath+"/internal/costcache/fixture")
}

func TestSeedFlow(t *testing.T) {
	linttest.Run(t, lint.SeedFlow, "testdata/seedflow", lint.ModulePath+"/internal/randdag/fixture")
}

// seedflow sanctions internal/stats as the home of seed mixing: the same
// fixture loaded there keeps only the global-generator findings (rules 2
// and 3 are stats-exempt; rule 1 holds module-wide).
func TestSeedFlowStatsExemption(t *testing.T) {
	_, _, got := linttest.Diagnostics(t, lint.SeedFlow, "testdata/seedflow", lint.ModulePath+"/internal/stats/fixture")
	for _, d := range got {
		if !strings.Contains(d.Message, "global rand.") {
			t.Errorf("non-global finding inside internal/stats: %s", d.Message)
		}
	}
	if len(got) != 3 {
		t.Errorf("want the 3 unsuppressed global-generator findings inside internal/stats, got %d", len(got))
	}
}

// The analyzers are scoped by package path; the same fixture code loaded
// under an out-of-scope import path must yield zero diagnostics.
func TestScopeBoundaries(t *testing.T) {
	cases := []struct {
		name    string
		a       *analysis.Analyzer
		dir     string
		outside string
	}{
		{"maporder", lint.MapOrder, "testdata/maporder", lint.ModulePath + "/internal/trace"},
		{"floatcmp", lint.FloatCmp, "testdata/floatcmp", lint.ModulePath + "/internal/stats"},
		{"detclock", lint.DetClock, "testdata/detclock", lint.ModulePath + "/internal/runtime"},
		{"pubapi", lint.PubAPI, "testdata/pubapi", lint.ModulePath + "/internal/experiments"},
		// The options rule exempts the lint tooling itself and anything
		// outside the module.
		{"pubapi-options-lint", lint.PubAPI, "testdata/pubapioptions", lint.ModulePath + "/internal/lint/fixture"},
		{"pubapi-options-foreign", lint.PubAPI, "testdata/pubapioptions", "example.com/outside/fixture"},
		{"unitflow", lint.UnitFlow, "testdata/unitflow", lint.ModulePath + "/internal/stats"},
		// hotalloc and seedflow are module-wide; out-of-module paths are
		// the boundary — hotpath propagation and seed rules never cross it.
		{"hotalloc", lint.HotAlloc, "testdata/hotalloc", "example.com/outside/fixture"},
		{"seedflow", lint.SeedFlow, "testdata/seedflow", "example.com/outside/fixture"},
		// locksafe is scoped to the mutex-bearing packages; the same
		// fixture loaded elsewhere in the module stays silent.
		{"locksafe", lint.LockSafe, "testdata/locksafe", lint.ModulePath + "/internal/sched"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, got := linttest.Diagnostics(t, tc.a, tc.dir, tc.outside)
			if len(got) != 0 {
				t.Fatalf("%s fired %d diagnostics outside its scope (first: %s)", tc.name, len(got), got[0].Message)
			}
		})
	}
}

func TestSuiteListsAllAnalyzers(t *testing.T) {
	names := map[string]bool{}
	for _, a := range lint.Suite() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v incompletely declared", a)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"maporder", "floatcmp", "detclock", "pubapi", "unitflow", "sharedcapture", "hotalloc", "seedflow", "locksafe"} {
		if !names[want] {
			t.Fatalf("suite is missing %s (have %v)", want, names)
		}
	}
}

// Every suppression directive in production code must carry an inline
// justification (hotpath is an annotation, not a suppression — its
// rationale lives in the function's doc comment), and the module-wide
// count per directive is pinned: adding a suppression is a reviewed
// decision that has to touch this table, not something that slips in.
func TestSuppressionBudget(t *testing.T) {
	want := map[string]int{
		"floatexact": 14, // comparator tie-breaks, unset-option sentinels, 0-vs-0 benchmark baselines, cluster queue-point dedupe
		"seedflow":   3,  // ios dp.go zobrist splitmix64 stream constants
		"locksafe":   1,  // profile.Export snapshot clone under the read lock
		"hotpath":    12, // scheduler and serving entry-point roots (propagation covers the rest)
	}
	got := map[string]int{}
	dirRe := regexp.MustCompile(`^//lint:([a-z]+)(.*)$`)
	root := "../.."
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			// internal/lint's fixtures and tests exercise the
			// directives deliberately; everything else counts.
			if name == "testdata" || name == ".git" || path == filepath.Join(root, "internal", "lint") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := dirRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				directive, justification := m[1], strings.TrimSpace(m[2])
				got[directive]++
				if directive != "hotpath" && justification == "" {
					t.Errorf("%s: bare //lint:%s without justification", fset.Position(c.Pos()), directive)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for directive, n := range want {
		if got[directive] != n {
			t.Errorf("module-wide //lint:%s count = %d, want %d (update the pin only with the suppression's justification reviewed)", directive, got[directive], n)
		}
	}
	for directive, n := range got {
		if _, ok := want[directive]; !ok {
			t.Errorf("unpinned directive //lint:%s appears %d time(s); add it to the budget table", directive, n)
		}
	}
}

// Selection feeds hios-lint's -only/-skip flags: registry order is
// preserved, unknown names are errors (a typo must not silently run the
// wrong subset), and the two flags are mutually exclusive.
func TestSelect(t *testing.T) {
	names := func(as []*analysis.Analyzer) []string {
		var out []string
		for _, a := range as {
			out = append(out, a.Name)
		}
		return out
	}
	full := names(lint.Suite())

	got, err := lint.Select("", "")
	if err != nil || !equalStrings(names(got), full) {
		t.Errorf("Select(\"\",\"\") = %v, %v; want full suite", names(got), err)
	}
	got, err = lint.Select("locksafe, maporder", "")
	if err != nil || !equalStrings(names(got), []string{"maporder", "locksafe"}) {
		t.Errorf("Select(only) = %v, %v; want [maporder locksafe] in registry order", names(got), err)
	}
	got, err = lint.Select("", "hotalloc,seedflow")
	if err != nil {
		t.Fatalf("Select(skip): %v", err)
	}
	for _, n := range names(got) {
		if n == "hotalloc" || n == "seedflow" {
			t.Errorf("Select(skip) kept %s", n)
		}
	}
	if len(got) != len(full)-2 {
		t.Errorf("Select(skip) dropped %d analyzers, want 2", len(full)-len(got))
	}
	for _, bad := range []struct{ only, skip string }{
		{"nosuch", ""},
		{"", "nosuch"},
		{"maporder", "floatcmp"},
		{",", ""},
	} {
		if _, err := lint.Select(bad.only, bad.skip); err == nil {
			t.Errorf("Select(%q, %q) succeeded, want error", bad.only, bad.skip)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The registry's directive column is what the usage text prints; keep it
// consistent with what each analyzer actually honors.
func TestDirectives(t *testing.T) {
	cases := map[string]string{
		"maporder":      "ordered",
		"floatcmp":      "floatexact",
		"detclock":      "",
		"pubapi":        "",
		"unitflow":      "unitless",
		"sharedcapture": "sharedcapture",
		"hotalloc":      "hotalloc",
		"seedflow":      "seedflow",
		"locksafe":      "locksafe",
	}
	for name, want := range cases {
		if got := lint.Directive(name); got != want {
			t.Errorf("Directive(%q) = %q, want %q", name, got, want)
		}
	}
	if got := lint.Directive("nosuch"); got != "" {
		t.Errorf("Directive(nosuch) = %q, want empty", got)
	}
}
