package lint_test

import (
	"strings"
	"testing"

	"github.com/shus-lab/hios/internal/lint"
	"github.com/shus-lab/hios/internal/lint/analysis"
	"github.com/shus-lab/hios/internal/lint/linttest"
)

// Each fixture package mixes violations (marked `// want`) with clean
// counterparts, so one run proves the analyzer both fires on the bad
// code and stays quiet on the good. The asPath argument places the
// fixture inside the analyzer's package scope.

func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrder, "testdata/maporder", lint.ModulePath+"/internal/sched/fixture")
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, lint.FloatCmp, "testdata/floatcmp", lint.ModulePath+"/internal/cost/fixture")
}

func TestDetClock(t *testing.T) {
	linttest.Run(t, lint.DetClock, "testdata/detclock", lint.ModulePath+"/internal/sim/fixture")
}

func TestPubAPI(t *testing.T) {
	linttest.Run(t, lint.PubAPI, "testdata/pubapi", lint.ModulePath+"/cmd/fixture")
}

// The options rule is module-wide: an exported *Options struct without a
// Validate method is flagged wherever it is declared.
func TestPubAPIOptions(t *testing.T) {
	linttest.Run(t, lint.PubAPI, "testdata/pubapioptions", lint.ModulePath+"/internal/serve/fixture")
}

func TestUnitFlow(t *testing.T) {
	linttest.Run(t, lint.UnitFlow, "testdata/unitflow", lint.ModulePath+"/internal/cost/fixture")
}

// sharedcapture is unscoped — a parallel worker racing on captured state
// is wrong in any package — so its fixture loads under an arbitrary path.
func TestSharedCapture(t *testing.T) {
	linttest.Run(t, lint.SharedCapture, "testdata/sharedcapture", lint.ModulePath+"/internal/experiments/fixture")
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, lint.HotAlloc, "testdata/hotalloc", lint.ModulePath+"/internal/sched/fixture")
}

func TestSeedFlow(t *testing.T) {
	linttest.Run(t, lint.SeedFlow, "testdata/seedflow", lint.ModulePath+"/internal/randdag/fixture")
}

// seedflow sanctions internal/stats as the home of seed mixing: the same
// fixture loaded there keeps only the global-generator findings (rules 2
// and 3 are stats-exempt; rule 1 holds module-wide).
func TestSeedFlowStatsExemption(t *testing.T) {
	_, _, got := linttest.Diagnostics(t, lint.SeedFlow, "testdata/seedflow", lint.ModulePath+"/internal/stats/fixture")
	for _, d := range got {
		if !strings.Contains(d.Message, "global rand.") {
			t.Errorf("non-global finding inside internal/stats: %s", d.Message)
		}
	}
	if len(got) != 3 {
		t.Errorf("want the 3 unsuppressed global-generator findings inside internal/stats, got %d", len(got))
	}
}

// The analyzers are scoped by package path; the same fixture code loaded
// under an out-of-scope import path must yield zero diagnostics.
func TestScopeBoundaries(t *testing.T) {
	cases := []struct {
		name    string
		a       *analysis.Analyzer
		dir     string
		outside string
	}{
		{"maporder", lint.MapOrder, "testdata/maporder", lint.ModulePath + "/internal/trace"},
		{"floatcmp", lint.FloatCmp, "testdata/floatcmp", lint.ModulePath + "/internal/stats"},
		{"detclock", lint.DetClock, "testdata/detclock", lint.ModulePath + "/internal/runtime"},
		{"pubapi", lint.PubAPI, "testdata/pubapi", lint.ModulePath + "/internal/experiments"},
		// The options rule exempts the lint tooling itself and anything
		// outside the module.
		{"pubapi-options-lint", lint.PubAPI, "testdata/pubapioptions", lint.ModulePath + "/internal/lint/fixture"},
		{"pubapi-options-foreign", lint.PubAPI, "testdata/pubapioptions", "example.com/outside/fixture"},
		{"unitflow", lint.UnitFlow, "testdata/unitflow", lint.ModulePath + "/internal/stats"},
		// hotalloc and seedflow are module-wide; out-of-module paths are
		// the boundary — hotpath propagation and seed rules never cross it.
		{"hotalloc", lint.HotAlloc, "testdata/hotalloc", "example.com/outside/fixture"},
		{"seedflow", lint.SeedFlow, "testdata/seedflow", "example.com/outside/fixture"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, got := linttest.Diagnostics(t, tc.a, tc.dir, tc.outside)
			if len(got) != 0 {
				t.Fatalf("%s fired %d diagnostics outside its scope (first: %s)", tc.name, len(got), got[0].Message)
			}
		})
	}
}

func TestSuiteListsAllAnalyzers(t *testing.T) {
	names := map[string]bool{}
	for _, a := range lint.Suite() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v incompletely declared", a)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"maporder", "floatcmp", "detclock", "pubapi", "unitflow", "sharedcapture", "hotalloc", "seedflow"} {
		if !names[want] {
			t.Fatalf("suite is missing %s (have %v)", want, names)
		}
	}
}

// The registry's directive column is what the usage text prints; keep it
// consistent with what each analyzer actually honors.
func TestDirectives(t *testing.T) {
	cases := map[string]string{
		"maporder":      "ordered",
		"floatcmp":      "floatexact",
		"detclock":      "",
		"pubapi":        "",
		"unitflow":      "unitless",
		"sharedcapture": "sharedcapture",
		"hotalloc":      "hotalloc",
		"seedflow":      "seedflow",
	}
	for name, want := range cases {
		if got := lint.Directive(name); got != want {
			t.Errorf("Directive(%q) = %q, want %q", name, got, want)
		}
	}
	if got := lint.Directive("nosuch"); got != "" {
		t.Errorf("Directive(nosuch) = %q, want empty", got)
	}
}
