package escape

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Index maps source positions to the function declarations enclosing
// them, keyed the same way lint.FuncKey keys *types.Func — relative
// package path, dot, bare receiver type name (if any), dot, function
// name — so escape facts line up with hotalloc's hotness map without a
// type-checked load. Closures have no key of their own: a position inside
// one resolves to the enclosing declaration, which is where its
// allocations cost.
type Index struct {
	files map[string][]funcRange // slash-relative file path -> sorted ranges
}

type funcRange struct {
	start, end int // line numbers, inclusive
	key        string
}

// BuildIndex parses every non-test .go file under root (skipping
// testdata, hidden, and underscore directories — the compiler never
// reports into those) and records each function declaration's line range.
// Files at the module root itself get keys with no package prefix,
// mirroring lint.FuncKey.
func BuildIndex(root string) (*Index, error) {
	idx := &Index{files: map[string][]funcRange{}}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Function bodies are all the index needs; files with minor
		// parse errors still yield the declarations that did parse.
		f, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
		if f == nil {
			return err
		}
		dir := "."
		if i := strings.LastIndexByte(rel, '/'); i >= 0 {
			dir = rel[:i]
		}
		var ranges []funcRange
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := funcDeclKey(dir, fd)
			if key == "" {
				continue
			}
			ranges = append(ranges, funcRange{
				start: fset.Position(fd.Pos()).Line,
				end:   fset.Position(fd.End()).Line,
				key:   key,
			})
		}
		sort.Slice(ranges, func(i, j int) bool { return ranges[i].start < ranges[j].start })
		idx.files[rel] = ranges
		return nil
	})
	if err != nil {
		return nil, err
	}
	return idx, nil
}

// funcDeclKey derives the lint.FuncKey form syntactically: the relative
// package directory stands in for the relative import path, and the
// receiver type name is read off the AST ("*PathFinder" -> "PathFinder",
// generic "Closure[T]" -> "Closure").
func funcDeclKey(dir string, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		recv := recvTypeName(fd.Recv.List[0].Type)
		if recv == "" {
			return ""
		}
		name = recv + "." + name
	}
	if dir == "." {
		return name
	}
	return dir + "." + name
}

func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// FuncAt resolves a diagnostic position to the enclosing function
// declaration, returning its key and the line of its func keyword (inline
// verdicts must land exactly there to count for the declaration).
func (idx *Index) FuncAt(file string, line int) (key string, declLine int, ok bool) {
	ranges := idx.files[file]
	// Last range starting at or before line; declarations never nest.
	lo, hi := 0, len(ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		if ranges[mid].start <= line {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return "", 0, false
	}
	r := ranges[lo-1]
	if line > r.end {
		return "", 0, false
	}
	return r.key, r.start, true
}
