package escape

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
)

// DiagFlags is the -gcflags value that makes the compiler emit the
// diagnostics Parse consumes: -m=2 for inlining and escape analysis,
// ssa/check_bce for surviving bounds checks. The module pattern keeps the
// flags off dependencies, so only module files show up in the output.
func DiagFlags(modulePath string) string {
	return modulePath + "/...=-m=2 -d=ssa/check_bce/debug=1"
}

// Collect builds the module under root with diagnostic flags and parses
// the output into Facts. The build cache replays diagnostics, so a tree
// already built with these flags costs one cache probe, not a recompile.
func Collect(root, modulePath string) (Facts, error) {
	idx, err := BuildIndex(root)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("go", "build", "-gcflags="+DiagFlags(modulePath), "./...")
	cmd.Dir = root
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build with diagnostic flags: %v\n%s", err, out.Bytes())
	}
	return Parse(out.String(), idx), nil
}

// File is the on-disk shape of a facts record (ESCAPE_baseline.json).
type File struct {
	// Comment explains the file to readers stumbling over it in the
	// repository root.
	Comment string `json:"comment"`
	// Functions holds the recorded facts. encoding/json sorts map keys,
	// so the marshaled form is deterministic.
	Functions Facts `json:"functions"`
}

const fileComment = "Per-function compiler facts (escapes, inlinability, surviving bounds checks) " +
	"recorded by cmd/hios-escape; refresh with `go run ./cmd/hios-escape record` after " +
	"deliberate optimization changes."

// WriteFile marshals facts deterministically to path.
func WriteFile(path string, facts Facts) error {
	data, err := json.MarshalIndent(File{Comment: fileComment, Functions: facts}, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a facts record written by WriteFile.
func ReadFile(path string) (Facts, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return f.Functions, nil
}
