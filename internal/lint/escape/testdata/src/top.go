// Package mod sits at the walk root: its keys carry no package prefix.
package mod

func Top(n int) []byte {
	return make([]byte, n)
}
