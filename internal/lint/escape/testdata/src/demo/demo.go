// Package demo is a parser fixture: the canned diagnostics in
// escape_test.go reference these declarations by line number, so edits
// here must keep the layout (or update the test's expectations).
package demo

type Buf struct {
	data []int
}

func (b *Buf) Grow(n int) []int {
	f := func(x int) int { return x + 1 }
	out := make([]int, 0)
	for i := 0; i < n; i++ {
		out = append(out, f(i))
	}
	return out
}

func Sum(xs []int) int {
	s := 0
	for i := 0; i < len(xs); i++ {
		s += xs[i]
	}
	return s
}
