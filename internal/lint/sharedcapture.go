package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/shus-lab/hios/internal/lint/analysis"
)

// SharedCapture flags worker closures handed to parallel.Map or
// parallel.ForEach that write captured variables without
// synchronization. The workers run concurrently across a goroutine pool,
// so an unsynchronized write to shared state is a data race that `go
// test -race` only catches when the schedule happens to interleave; this
// check catches it structurally.
//
// Two write patterns are recognized as safe and not flagged:
//
//   - indexing a captured slice or map with the worker's own index
//     parameter (out[i] = ... — each worker owns a disjoint element, the
//     idiom parallel.Map itself is built on);
//   - writes in a closure that locks a captured sync.Mutex or RWMutex
//     (the closure calls .Lock on it somewhere).
//
// Anything else — a captured counter, a captured scalar best-so-far, an
// append to a captured slice — is reported. A deliberate exception
// (e.g. a write protected by external phasing) can be suppressed with
// `//lint:sharedcapture`.
var SharedCapture = &analysis.Analyzer{
	Name: "sharedcapture",
	Doc:  "flags parallel.Map/ForEach worker closures writing captured variables without synchronization",
	Run:  runSharedCapture,
}

const parallelPkgPath = ModulePath + "/internal/parallel"

func runSharedCapture(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fl := parallelWorker(pass, call)
			if fl == nil {
				return true
			}
			checkWorker(pass, fl)
			return true
		})
	}
	return nil
}

// parallelWorker returns the worker FuncLit when call is
// parallel.Map(...) or parallel.ForEach(...) with a literal closure as
// its final argument, nil otherwise.
func parallelWorker(pass *analysis.Pass, call *ast.CallExpr) *ast.FuncLit {
	fun := call.Fun
	// Explicit instantiation parallel.Map[T](...) wraps the selector in
	// an index expression.
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ix.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pkgName, ok := pass.Info.ObjectOf(id).(*types.PkgName)
	if !ok || pkgName.Imported().Path() != parallelPkgPath {
		return nil
	}
	if sel.Sel.Name != "Map" && sel.Sel.Name != "ForEach" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	fl, _ := call.Args[len(call.Args)-1].(*ast.FuncLit)
	return fl
}

// checkWorker reports unsynchronized writes to captured variables inside
// one worker closure.
func checkWorker(pass *analysis.Pass, fl *ast.FuncLit) {
	locals := map[types.Object]bool{}
	for _, field := range fl.Type.Params.List {
		for _, name := range field.Names {
			locals[pass.Info.ObjectOf(name)] = true
		}
	}
	var indexParam types.Object
	if len(fl.Type.Params.List) > 0 && len(fl.Type.Params.List[0].Names) > 0 {
		indexParam = pass.Info.ObjectOf(fl.Type.Params.List[0].Names[0])
	}

	// First pass: collect declarations local to the closure and whether
	// a captured mutex is locked anywhere inside it.
	locked := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						locals[pass.Info.ObjectOf(id)] = true
					}
				}
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok {
						locals[pass.Info.ObjectOf(id)] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				locals[pass.Info.ObjectOf(name)] = true
			}
		case *ast.FuncLit:
			// Parameters of nested closures are local too.
			for _, field := range n.Type.Params.List {
				for _, name := range field.Names {
					locals[pass.Info.ObjectOf(name)] = true
				}
			}
		case *ast.CallExpr:
			if isMutexLock(pass, n) {
				locked = true
			}
		}
		return true
	})
	if locked {
		// A closure that takes a captured lock is assumed to know what
		// it is doing; races inside are the race detector's job.
		return
	}

	report := func(pos ast.Node, name string) {
		if pass.IsTestFile(pos.Pos()) || pass.Suppressed("sharedcapture", pos.Pos()) {
			return
		}
		pass.Reportf(pos.Pos(), "worker closure writes captured variable %q without synchronization; workers run concurrently — write to a per-index slot or return the value", name)
	}

	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkWriteTarget(pass, lhs, locals, indexParam, report)
			}
		case *ast.IncDecStmt:
			checkWriteTarget(pass, n.X, locals, indexParam, report)
		}
		return true
	})
}

// checkWriteTarget reports lhs when it writes a captured variable in a
// way workers cannot safely share.
func checkWriteTarget(pass *analysis.Pass, lhs ast.Expr, locals map[types.Object]bool, indexParam types.Object, report func(ast.Node, string)) {
	switch x := lhs.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		obj := pass.Info.ObjectOf(x)
		if obj == nil || locals[obj] {
			return
		}
		if _, ok := obj.(*types.Var); !ok {
			return
		}
		report(x, x.Name)
	case *ast.IndexExpr:
		// out[i] = ... with i the worker's index parameter is the
		// disjoint-slot idiom and safe for slices; everything else
		// (other indices, map writes) is shared.
		base, ok := x.X.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.Info.ObjectOf(base)
		if obj == nil || locals[obj] {
			return
		}
		if idx, ok := x.Index.(*ast.Ident); ok && indexParam != nil && pass.Info.ObjectOf(idx) == indexParam {
			if _, isMap := pass.Info.TypeOf(x.X).Underlying().(*types.Map); !isMap {
				return
			}
		}
		report(x, base.Name)
	case *ast.StarExpr:
		// *p = ... through a captured pointer: shared unless p is local
		// (and even then the pointee may be shared, but a local pointer
		// to a local value is the common safe case).
		if id, ok := x.X.(*ast.Ident); ok {
			obj := pass.Info.ObjectOf(id)
			if obj == nil || locals[obj] {
				return
			}
			report(x, id.Name)
		}
	}
}

// isMutexLock reports whether call is m.Lock()/m.RLock() on a
// sync.Mutex or sync.RWMutex.
func isMutexLock(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return false
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" && (n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}
