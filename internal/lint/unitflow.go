package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/shus-lab/hios/internal/lint/analysis"
)

// UnitFlow enforces the dimensional discipline of internal/units across
// the quantity-bearing packages. The defined types (Millis, Bytes, FLOPs,
// ...) make cross-kind addition a compile error, but three flows remain
// invisible to the type system, and this analyzer propagates unit kinds
// through assignments, arithmetic and call boundaries to catch them:
//
//  1. a raw numeric literal converting implicitly into a unit-typed
//     parameter, field, variable or operand — `chargeFor(3.5)` compiles
//     because untyped constants convert silently, but nothing says
//     whether 3.5 was meant as milliseconds or seconds; write
//     units.Millis(3.5) at the source instead (the zero literal is
//     exempt: zero is zero in every unit);
//  2. a value laundered through float64(x) and then added to, compared
//     with, or re-labeled as a different unit kind —
//     units.Seconds(float64(ms)) re-tags milliseconds as seconds
//     without the 1e3; convert with the named methods (Seconds.Millis,
//     Millis.Seconds) instead;
//  3. multiplication or division of two unit-typed operands — no entry
//     of the units table defines Millis×Millis or Millis/Millis; a
//     dimensionless factor wants Scale or Div, a dimensionless quotient
//     wants Ratio, and the legal cross-unit quotients exist only as
//     FLOPs.Over and Bytes.Over.
//
// An intentionally unitless flow (e.g. feeding a duration into a generic
// numeric sink) can be marked line by line with `//lint:unitless`.
var UnitFlow = &analysis.Analyzer{
	Name: "unitflow",
	Doc:  "propagates unit kinds through the cost model and flags dimensionally unsound flows",
	Run:  runUnitFlow,
}

// unitflowScope lists the quantity-bearing layers: everywhere a
// units.Millis/Bytes/FLOPs value is produced or consumed.
var unitflowScope = []string{
	"internal/gpu", "internal/cost", "internal/costcache", "internal/profile",
	"internal/model", "internal/sched", "internal/sim", "internal/pipeline",
	"internal/trace", "internal/memory", "internal/runtime",
	"internal/experiments", "internal/serve", "internal/cluster",
	"internal/specflag", "cmd",
}

const unitsPkgPath = ModulePath + "/internal/units"

// unitKind returns the unit type's name ("Millis", "Bytes", ...) when t
// is (or aliases) one of the defined quantity types of internal/units.
func unitKind(t types.Type) (string, bool) {
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != unitsPkgPath {
		return "", false
	}
	b, ok := n.Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Float64 {
		return "", false
	}
	return obj.Name(), true
}

func runUnitFlow(pass *analysis.Pass) error {
	if !inScope(pass.Path, unitflowScope...) {
		return nil
	}
	for _, f := range pass.Files {
		uf := &unitFlow{pass: pass}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					uf.taintFunc(n.Body)
				}
			case *ast.CallExpr:
				uf.checkCall(n)
			case *ast.CompositeLit:
				uf.checkComposite(n)
			case *ast.AssignStmt:
				uf.checkAssign(n)
			case *ast.ValueSpec:
				uf.checkValueSpec(n)
			case *ast.ReturnStmt:
				uf.checkReturn(n)
			case *ast.BinaryExpr:
				uf.checkBinary(n)
			}
			return true
		})
	}
	return nil
}

type unitFlow struct {
	pass *analysis.Pass
	// taint maps local variables holding float64(x)-laundered unit
	// values to the unit kind they came from.
	taint map[*types.Var]string
}

func (uf *unitFlow) report(pos token.Pos, format string, args ...any) {
	if uf.pass.IsTestFile(pos) || uf.pass.Suppressed("unitless", pos) {
		return
	}
	uf.pass.Reportf(pos, format, args...)
}

// rawLiteral unwraps parens and sign and reports whether e is a bare
// numeric literal, along with whether it is exactly zero (zero carries no
// unit ambiguity and stays legal everywhere).
func rawLiteral(e ast.Expr) (lit *ast.BasicLit, zero, ok bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.SUB && x.Op != token.ADD {
				return nil, false, false
			}
			e = x.X
		case *ast.BasicLit:
			if x.Kind != token.INT && x.Kind != token.FLOAT {
				return nil, false, false
			}
			z := true
			for _, c := range x.Value {
				if c >= '1' && c <= '9' {
					z = false
					break
				}
			}
			return x, z, true
		default:
			return nil, false, false
		}
	}
}

// isConst reports whether e is a constant expression. An untyped
// constant in unit arithmetic (`2 * t`) adopts the unit's type but is a
// dimensionless scale factor, which is legal in multiplication and
// division — only two runtime unit values multiplied together invent an
// undefined dimension.
func (uf *unitFlow) isConst(e ast.Expr) bool {
	tv, ok := uf.pass.Info.Types[e]
	return ok && tv.Value != nil
}

// isConversion reports whether call is a type conversion (as opposed to a
// function or method call).
func (uf *unitFlow) isConversion(call *ast.CallExpr) bool {
	if tv, ok := uf.pass.Info.Types[call.Fun]; ok {
		return tv.IsType()
	}
	return false
}

// checkCall flags raw numeric literals passed where a parameter is
// unit-typed (rule 1 at call boundaries). Explicit unit conversions
// (units.Millis(5)) are the sanctioned way to introduce a literal and
// are skipped.
func (uf *unitFlow) checkCall(call *ast.CallExpr) {
	if uf.isConversion(call) {
		return
	}
	sig, ok := uf.pass.Info.TypeOf(call.Fun).(*types.Signature)
	if ok {
		uf.checkArgs(call, sig)
	}
}

func (uf *unitFlow) checkArgs(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis == token.NoPos {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		kind, ok := unitKind(pt)
		if !ok {
			continue
		}
		if _, zero, isLit := rawLiteral(arg); isLit && !zero {
			uf.report(arg.Pos(), "raw numeric literal for %s parameter; write units.%s(...) at the source of the value", kind, kind)
		}
	}
}

// checkComposite flags raw literals initializing unit-typed struct fields
// or element types (rule 1 at composite literals).
func (uf *unitFlow) checkComposite(cl *ast.CompositeLit) {
	tv, ok := uf.pass.Info.Types[cl]
	if !ok {
		return
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Struct:
		uf.checkStructLit(cl, t)
	case *types.Slice:
		uf.checkElemLits(cl, t.Elem())
	case *types.Array:
		uf.checkElemLits(cl, t.Elem())
	case *types.Map:
		uf.checkElemLits(cl, t.Elem())
	}
}

func (uf *unitFlow) checkStructLit(cl *ast.CompositeLit, st *types.Struct) {
	for i, el := range cl.Elts {
		var ft types.Type
		var val ast.Expr
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			id, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			for j := 0; j < st.NumFields(); j++ {
				if st.Field(j).Name() == id.Name {
					ft = st.Field(j).Type()
					break
				}
			}
			val = kv.Value
		} else if i < st.NumFields() {
			ft = st.Field(i).Type()
			val = el
		}
		if ft == nil {
			continue
		}
		if kind, ok := unitKind(ft); ok {
			if _, zero, isLit := rawLiteral(val); isLit && !zero {
				uf.report(val.Pos(), "raw numeric literal for %s field; write units.%s(...)", kind, kind)
			}
		}
	}
}

func (uf *unitFlow) checkElemLits(cl *ast.CompositeLit, elem types.Type) {
	kind, ok := unitKind(elem)
	if !ok {
		return
	}
	for _, el := range cl.Elts {
		val := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		if _, zero, isLit := rawLiteral(val); isLit && !zero {
			uf.report(val.Pos(), "raw numeric literal for %s element; write units.%s(...)", kind, kind)
		}
	}
}

// checkAssign flags raw literals assigned to unit-typed variables or
// fields (rule 1 at assignments). `x := 5` never infers a unit type, so
// only `=` assignments to existing unit-typed destinations can smuggle a
// literal in.
func (uf *unitFlow) checkAssign(as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		kind, ok := unitKind(uf.pass.Info.TypeOf(lhs))
		if !ok {
			continue
		}
		if _, zero, isLit := rawLiteral(as.Rhs[i]); isLit && !zero {
			uf.report(as.Rhs[i].Pos(), "raw numeric literal assigned to %s; write units.%s(...)", kind, kind)
		}
	}
}

// checkValueSpec flags `var x units.Millis = 5` (rule 1 at declarations).
func (uf *unitFlow) checkValueSpec(vs *ast.ValueSpec) {
	if vs.Type == nil {
		return
	}
	kind, ok := unitKind(uf.pass.Info.TypeOf(vs.Type))
	if !ok {
		return
	}
	for _, v := range vs.Values {
		if _, zero, isLit := rawLiteral(v); isLit && !zero {
			uf.report(v.Pos(), "raw numeric literal declared as %s; write units.%s(...)", kind, kind)
		}
	}
}

// checkReturn flags raw literals returned where the result is unit-typed
// (rule 1 at returns). The enclosing signature is recovered from the
// innermost surrounding function, which the inspection order guarantees
// was visited; to keep the pass single-scan this resolves the expected
// type from the literal's own converted type instead.
func (uf *unitFlow) checkReturn(rs *ast.ReturnStmt) {
	for _, r := range rs.Results {
		tv, ok := uf.pass.Info.Types[r]
		if !ok {
			continue
		}
		kind, ok := unitKind(tv.Type)
		if !ok {
			continue
		}
		if _, zero, isLit := rawLiteral(r); isLit && !zero {
			uf.report(r.Pos(), "raw numeric literal returned as %s; write units.%s(...)", kind, kind)
		}
	}
}

// checkBinary applies rules 1 and 3 to arithmetic:
//
//   - a non-zero raw literal added to or compared with a unit-typed
//     operand is an implicit unit ascription (rule 1) — the epsilon in
//     `lat < best-1e-12` must say which unit it is in;
//   - `*` between two unit-typed operands and `/` between unit-typed
//     operands have no entry in the units table (rule 3).
func (uf *unitFlow) checkBinary(be *ast.BinaryExpr) {
	xKind, xUnit := unitKind(uf.pass.Info.TypeOf(be.X))
	yKind, yUnit := unitKind(uf.pass.Info.TypeOf(be.Y))
	if !xUnit && !yUnit {
		uf.checkTaintedBinary(be)
		return
	}
	switch be.Op {
	case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		// Same-kind arithmetic is the legal core; the compiler already
		// rejects mixed kinds. What it cannot see is a raw literal
		// silently adopting the unit.
		for _, operand := range []ast.Expr{be.X, be.Y} {
			if _, zero, isLit := rawLiteral(operand); isLit && !zero {
				kind := xKind
				if kind == "" {
					kind = yKind
				}
				uf.report(operand.Pos(), "raw numeric literal in %s arithmetic; write units.%s(...) so the unit of the constant is explicit", kind, kind)
			}
		}
	case token.MUL:
		if xUnit && yUnit && !uf.isConst(be.X) && !uf.isConst(be.Y) {
			uf.report(be.OpPos, "%s × %s has no defined unit; scale by a dimensionless float64 (Scale) instead", xKind, yKind)
		}
	case token.QUO:
		if xUnit && yUnit && !uf.isConst(be.X) && !uf.isConst(be.Y) {
			uf.report(be.OpPos, "%s / %s is not a %s; use Ratio for a dimensionless quotient or Over for the defined cross-unit divisions", xKind, yKind, xKind)
		}
	}
}

// taintFunc runs the rule-2 dataflow over one function body: float64(x)
// of a unit value taints the result with x's kind; taint propagates
// through := / = to locals and through +/- arithmetic; adding, comparing
// or re-labeling values of different kinds is reported.
func (uf *unitFlow) taintFunc(body *ast.BlockStmt) {
	uf.taint = make(map[*types.Var]string)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := uf.pass.Info.ObjectOf(id).(*types.Var)
				if !ok {
					continue
				}
				if kind, ok := uf.exprTaint(n.Rhs[i]); ok {
					uf.taint[v] = kind
				} else {
					delete(uf.taint, v)
				}
			}
		case *ast.BinaryExpr:
			uf.checkTaintedBinary(n)
		case *ast.CallExpr:
			uf.checkRelabel(n)
		}
		return true
	})
	uf.taint = nil
}

// exprTaint computes the unit kind carried by a plain-float64 expression:
// float64(x) of a unit value, a tainted local, or +/- arithmetic over a
// tainted operand. Multiplication and division intentionally clear the
// taint — dividing or scaling changes the dimension, which is exactly
// the legal way to leave the unit system.
func (uf *unitFlow) exprTaint(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return uf.exprTaint(x.X)
	case *ast.Ident:
		if v, ok := uf.pass.Info.ObjectOf(x).(*types.Var); ok {
			if kind, ok := uf.taint[v]; ok {
				return kind, true
			}
		}
	case *ast.CallExpr:
		if uf.isConversion(x) && len(x.Args) == 1 {
			to := uf.pass.Info.TypeOf(x.Fun)
			if b, ok := to.Underlying().(*types.Basic); ok && b.Kind() == types.Float64 {
				if _, isUnit := unitKind(to); !isUnit {
					if kind, ok := unitKind(uf.pass.Info.TypeOf(x.Args[0])); ok {
						return kind, true
					}
					return uf.exprTaint(x.Args[0])
				}
			}
		}
	case *ast.BinaryExpr:
		if x.Op == token.ADD || x.Op == token.SUB {
			if kind, ok := uf.exprTaint(x.X); ok {
				return kind, true
			}
			return uf.exprTaint(x.Y)
		}
	}
	return "", false
}

// checkTaintedBinary reports +, - and comparisons between float64 values
// laundered from different unit kinds (rule 2): the compiler sees two
// float64s, the dataflow still knows one is milliseconds and the other
// bytes.
func (uf *unitFlow) checkTaintedBinary(be *ast.BinaryExpr) {
	if uf.taint == nil {
		return
	}
	switch be.Op {
	case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	xKind, xok := uf.exprTaint(be.X)
	yKind, yok := uf.exprTaint(be.Y)
	if xok && yok && xKind != yKind {
		uf.report(be.OpPos, "mixing float64-laundered %s with %s; convert with the named unit methods before comparing or adding", xKind, yKind)
	}
}

// checkRelabel reports unit-kind conversions applied to float64 values
// laundered from a different kind (rule 2): units.Seconds(float64(ms))
// re-tags milliseconds as seconds without the 1e3.
func (uf *unitFlow) checkRelabel(call *ast.CallExpr) {
	if uf.taint == nil || !uf.isConversion(call) || len(call.Args) != 1 {
		return
	}
	toKind, ok := unitKind(uf.pass.Info.TypeOf(call.Fun))
	if !ok {
		return
	}
	fromKind, ok := uf.exprTaint(call.Args[0])
	if ok && fromKind != toKind {
		uf.report(call.Pos(), "re-labeling a float64-laundered %s as %s; use the named conversion methods of internal/units", fromKind, toKind)
	}
}
