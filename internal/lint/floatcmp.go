package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/shus-lab/hios/internal/lint/analysis"
)

// FloatCmp flags `==` and `!=` between floating-point expressions in the
// scheduler, cost, simulator and experiment packages. Latencies and costs
// there are sums and maxima of float64 stage times; two mathematically
// equal values routinely differ in the last ulp depending on accumulation
// order, so exact equality silently flips branches between runs and
// platforms. Compare with stats.ApproxEqual, or restructure around
// ordered comparisons (`<` / `>`), which are well-defined.
//
// Exact comparison is occasionally the right tool — IEEE-754 equality in
// a tie-break that must induce a strict weak order, or a NaN check.
// Mark such lines with `//lint:floatexact`.
var FloatCmp = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flags exact floating-point equality on latency/cost values",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *analysis.Pass) error {
	if !inScope(pass.Path, "internal/sched", "internal/sim", "internal/cost", "internal/costcache", "internal/dpcache", "internal/experiments", "internal/serve", "internal/cluster", "internal/specflag", "internal/graph", "cmd") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info.TypeOf(be.X)) && !isFloat(pass.Info.TypeOf(be.Y)) {
				return true
			}
			if pass.IsTestFile(be.Pos()) || pass.Suppressed("floatexact", be.Pos()) {
				return true
			}
			pass.Reportf(be.OpPos, "exact floating-point %s on latency/cost values; use stats.ApproxEqual or an ordered comparison, or mark //lint:floatexact", be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
