// Package fixture exercises the maporder analyzer: each `want` line must
// be flagged, everything else must pass.
package fixture

import "sort"

// arbitraryOrder leaks map visit order into the returned slice.
func arbitraryOrder(m map[string]int) []string {
	var out []string
	for k := range m { // want `iteration over map m is order-dependent`
		out = append(out, k)
	}
	return out
}

// earlyReturn returns an arbitrary element.
func earlyReturn(m map[string]int) string {
	for k, v := range m { // want `iteration over map m is order-dependent`
		if v > 0 {
			return k
		}
	}
	return ""
}

// sideEffects calls an order-observing sink.
func sideEffects(m map[string]int, emit func(string)) {
	for k := range m { // want `iteration over map m is order-dependent`
		emit(k)
	}
}

// collectThenSort is the blessed idiom: keys gathered, then ordered.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// accumulate only performs commutative reduction.
func accumulate(m map[string]float64) (sum float64, n int) {
	for _, v := range m {
		sum += v
		n++
	}
	return sum, n
}

// rebuild writes another map at distinct keys.
func rebuild(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// extremum performs a min/max-style conditional update.
func extremum(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// marked asserts order-insensitivity explicitly.
func marked(m map[string]int, emit func(string)) {
	//lint:ordered emit is commutative in this fixture
	for k := range m {
		emit(k)
	}
}

// sliceRange is out of scope for the analyzer entirely.
func sliceRange(xs []string, emit func(string)) {
	for _, x := range xs {
		emit(x)
	}
}
