// Package locksafe mixes critical-section violations with the sanctioned
// idioms of the mutex-bearing packages: the want lines prove the analyzer
// fires on allocation, IO, cost-model computation, lock copies, leaked
// locks and unchecked double-checked inserts, while the clean functions
// pin that defer-unlock, branchy unlock-then-return, append publishing,
// plain struct snapshots and both re-check idioms stay silent.
package locksafe

import (
	"fmt"
	"sync"

	"github.com/shus-lab/hios/internal/gpu"
)

type guarded struct {
	mu    sync.RWMutex
	vals  map[int]float64
	items []int
}

type snapshotStats struct {
	N int
}

// Every allocation form and the IO call fire inside the section.
func (g *guarded) allocsUnderLock(n int) {
	g.mu.Lock()
	buf := make([]int, n) // want `make under held lock g\.mu`
	_ = buf
	p := new(int) // want `new under held lock g\.mu`
	_ = p
	m := map[int]bool{} // want `map literal allocates under held lock g\.mu`
	_ = m
	s := []int{1, 2} // want `slice literal allocates under held lock g\.mu`
	_ = s
	st := &snapshotStats{} // want `address-taken composite literal allocates under held lock g\.mu`
	_ = st
	fmt.Println(n) // want `fmt call under held lock g\.mu`
	g.mu.Unlock()
}

// The same constructs before the lock and after the unlock are fine.
func (g *guarded) allocsOutsideLock(n int) {
	buf := make([]int, n)
	g.mu.Lock()
	g.items = append(g.items, buf...) // append is the sanctioned publish idiom
	g.mu.Unlock()
	fmt.Println(len(buf))
}

// Cost-model calls belong outside the critical section.
func (g *guarded) computeUnderLock(d gpu.Device, k gpu.Kernel) {
	g.mu.Lock()
	t := d.Time(k) // want `cost-model computation under held lock g\.mu`
	g.vals[0] = float64(t)
	g.mu.Unlock()
}

func (g *guarded) computeOutsideLock(d gpu.Device, k gpu.Kernel) {
	t := d.Time(k)
	g.mu.Lock()
	g.vals[0] = float64(t)
	g.mu.Unlock()
}

type holder struct {
	mu sync.Mutex
	n  int
}

// wrapper embeds holder by value, so it carries the mutex transitively.
type wrapper struct {
	h holder
}

func (h holder) byValue() int { // want `receiver of byValue passes a mutex-containing struct by value`
	return h.n
}

func (h *holder) byPointer() int { return h.n }

func sumHolders(a wrapper) int { // want `parameter of sumHolders passes a mutex-containing struct by value`
	return a.h.n
}

func sumByPointer(a *wrapper) int { return a.h.n }

// An early return inside the section with no deferred unlock leaks the
// lock on that path.
func (g *guarded) leaky(cond bool) int {
	g.mu.Lock()
	if cond {
		return 1 // want `return with lock g\.mu held and no deferred unlock`
	}
	g.mu.Unlock()
	return 0
}

// Branchy early returns that unlock first are the supported shape.
func (g *guarded) branchy(cond bool) int {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		return 1
	}
	g.mu.Unlock()
	return 0
}

// Deferred unlock makes any return inside the section safe.
func (g *guarded) deferred(cond bool) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if cond {
		return 1
	}
	return 0
}

// Double-checked insert with no re-read between Lock and store: a racer's
// insert is overwritten.
func (g *guarded) insertNoRecheck(k int, v float64) float64 {
	g.mu.RLock()
	old, ok := g.vals[k]
	g.mu.RUnlock()
	if ok {
		return old
	}
	g.mu.Lock()
	g.vals[k] = v // want `store to g\.vals under write lock g\.mu without re-checking`
	g.mu.Unlock()
	return v
}

// costcache's else-branch re-check is sanctioned.
func (g *guarded) insertElseRecheck(k int, v float64) float64 {
	g.mu.RLock()
	old, ok := g.vals[k]
	g.mu.RUnlock()
	if ok {
		return old
	}
	g.mu.Lock()
	if prev, ok := g.vals[k]; ok {
		v = prev
	} else {
		g.vals[k] = v
	}
	g.mu.Unlock()
	return v
}

// profile's defer-unlock early-return re-check is sanctioned too.
func (g *guarded) insertDeferRecheck(k int, v float64) float64 {
	g.mu.RLock()
	old, ok := g.vals[k]
	g.mu.RUnlock()
	if ok {
		return old
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if prev, ok := g.vals[k]; ok {
		return prev
	}
	g.vals[k] = v
	return v
}

// A plain struct snapshot under a read lock allocates nothing.
func (g *guarded) stats() snapshotStats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return snapshotStats{N: len(g.vals)}
}

// A deliberate snapshot clone under the read lock can be suppressed.
func (g *guarded) snapshot() map[int]float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	//lint:locksafe snapshot clone must allocate while the read lock pins the map
	out := make(map[int]float64, len(g.vals))
	for k, v := range g.vals {
		out[k] = v
	}
	return out
}

// Function literals are their own lock scope: the closure's allocation is
// not inside the enclosing section, and the worker's own lock usage is
// tracked separately.
func (g *guarded) spawn(n int) {
	g.mu.Lock()
	f := func() []int {
		return make([]int, 4)
	}
	g.mu.Unlock()
	_ = f()

	var mu sync.Mutex
	best := 0
	for i := 0; i < n; i++ {
		go func(i int) {
			mu.Lock()
			if i > best {
				best = i
			}
			mu.Unlock()
		}(i)
	}
}
