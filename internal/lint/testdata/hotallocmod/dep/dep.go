// Package dep is the callee half of the cross-package hotalloc fixture:
// it carries NO //lint:hotpath annotation anywhere. Its functions become
// hot only when the whole-module driver propagates hotness from the
// caller package (testdata/hotallocmod/caller), so every want comment
// here asserts cross-package propagation specifically.
package dep

// Helper is statically called by the caller package's annotated root and
// must be checked as hot code under the module driver.
func Helper(n int) []int {
	out := make([]int, 0)
	for i := 0; i < n; i++ {
		out = append(out, i) // want `hot path \(via .*Root\): append grows out without preallocated capacity`
	}
	return out
}

// Chained is only reached through Helper2, two cross-package hops from
// the root.
func Chained(n int) {
	for i := 0; i < n; i++ {
		_ = make([]byte, i) // want `hot path \(via .*Root\): make inside a loop allocates`
	}
}

// Helper2 is called by the root and calls Chained, proving propagation
// continues through an already-propagated cross-package callee.
func Helper2(n int) {
	Chained(n)
}

// Cold is never reached from a hot root; its allocations are fine.
func Cold(n int) []int {
	out := make([]int, 0)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
