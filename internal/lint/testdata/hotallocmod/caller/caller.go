// Package caller is the root half of the cross-package hotalloc
// fixture: its annotated Root reaches into the dep package, whose
// functions carry no annotation of their own.
package caller

import "github.com/shus-lab/hios/internal/fixture/hotallocmod/dep"

// Root drives the dep package's helpers.
//
//lint:hotpath
func Root(n int) {
	for i := 0; i < n; i++ {
		_ = dep.Helper(i)
	}
	dep.Helper2(n)
}
