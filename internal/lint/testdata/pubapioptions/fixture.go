// Package fixture exercises the pubapi options rule: exported structs
// named Options or *Options need a Validate method; aliases, unexported
// types and differently named structs do not.
package fixture

// BadOptions lacks Validate entirely.
type BadOptions struct{ N int } // want `exported option struct BadOptions has no Validate method`

// Options (the bare name) is held to the same rule.
type Options struct{ GPUs int } // want `exported option struct Options has no Validate method`

// GoodOptions follows the pattern with a value receiver.
type GoodOptions struct{ N int }

// Validate reports nothing; the method's existence is what the rule
// checks.
func (GoodOptions) Validate() error { return nil }

// PtrOptions follows the pattern with a pointer receiver.
type PtrOptions struct{ N int }

// Validate reports nothing.
func (*PtrOptions) Validate() error { return nil }

// unexportedOptions is not part of the public surface.
type unexportedOptions struct{ N int }

// use silences the unused-type vet heuristics for unexportedOptions.
var _ = unexportedOptions{}

// AliasOptions re-exports GoodOptions; the definition owns the method.
type AliasOptions = GoodOptions

// OptionsHolder is not an options struct: the suffix rule matches names
// ending in Options, not names merely containing it.
type OptionsHolder struct{ O Options }

// NotAStructOptions is not a struct; config scalars are out of scope.
type NotAStructOptions int
