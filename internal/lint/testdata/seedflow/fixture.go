// The seedflow fixture: global math/rand state, laundered seed
// arithmetic at source constructors, hand-rolled splitmix64 constants,
// their clean counterparts, and //lint:seedflow suppression.
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func mixSeed(seed int64, i int) int64 { return seed ^ int64(i) } // helper call sites stay legal

func globals() int {
	a := rand.Intn(10)                  // want `global rand.Intn`
	b := rand.Float64()                 // want `global rand.Float64`
	c := randv2.IntN(10)                // want `global rand.IntN`
	d := rand.Intn(10)                  //lint:seedflow (suppressed for the fixture)
	rng := rand.New(rand.NewSource(42)) // clean: explicitly seeded local generator
	return a + int(b) + c + d + rng.Intn(3)
}

func laundered(seed int64, i int) *rand.Rand {
	bad := rand.New(rand.NewSource(seed + int64(i)))  // want `raw integer arithmetic`
	alsoBad := rand.NewSource(int64(i)*31 + seed)     // want `raw integer arithmetic`
	okd := rand.New(rand.NewSource(mixSeed(seed, i))) // clean: derivation through a helper
	plain := rand.NewSource(seed)                     // clean: the base seed itself
	_ = alsoBad
	_ = plain
	_ = okd
	return bad
}

func launderedV2(seed uint64, i int) *randv2.Rand {
	return randv2.New(randv2.NewPCG(seed+uint64(i), seed)) // want `raw integer arithmetic`
}

func handRolled(seed int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15   // want `splitmix64 constant outside internal/stats`
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9 // want `splitmix64 constant outside internal/stats`
	return int64(z)
}

// hashUse mirrors the IOS DP's stage-set hash: a mixer that never feeds
// an RNG is a legitimate, suppressible use.
func hashUse(x uint64) uint64 {
	h := x * 0x94d049bb133111eb //lint:seedflow (hash mixing, no RNG involved)
	return h ^ (h >> 31)
}
