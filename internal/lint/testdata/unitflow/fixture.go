// Package fixture exercises the unitflow analyzer: raw literals adopting
// units implicitly (rule 1), float64-laundered values changing kind
// (rule 2), and arithmetic that invents undefined dimensions (rule 3).
package fixture

import "github.com/shus-lab/hios/internal/units"

// --- rule 1: raw literals at call boundaries ---

func chargeFor(t units.Millis) units.Millis { return t }

func callSites() {
	chargeFor(3.5)               // want `raw numeric literal for Millis parameter`
	chargeFor(-7)                // want `raw numeric literal for Millis parameter`
	chargeFor(0)                 // zero carries no unit ambiguity: clean
	chargeFor(units.Millis(3.5)) // explicit conversion: clean
	t := units.Millis(1.5)
	chargeFor(2 * t) // scaling an existing unit value: clean
}

// --- rule 1: raw literals in composite literals ---

type stage struct {
	Lat  units.Millis
	Name string
}

func composites() []stage {
	bad := stage{Lat: 5.25}             // want `raw numeric literal for Millis field`
	good := stage{Lat: units.Millis(5)} // explicit: clean
	zero := stage{Lat: 0}               // zero: clean
	durs := []units.Millis{
		1.5, // want `raw numeric literal for Millis element`
		0,   // zero: clean
		units.Millis(2.5),
	}
	_ = durs
	return []stage{bad, good, zero}
}

// --- rule 1: raw literals at assignments, declarations and returns ---

func assignments() units.Millis {
	var t units.Millis = 7 // want `raw numeric literal declared as Millis`
	t = 9                  // want `raw numeric literal assigned to Millis`
	t = 0                  // zero: clean
	t = units.Millis(9)    // explicit: clean
	_ = t
	return 4 // want `raw numeric literal returned as Millis`
}

// --- rule 1: raw literals in unit arithmetic and comparisons ---

func epsilons(lat, best units.Millis) bool {
	if lat >= best-1e-12 { // want `raw numeric literal in Millis arithmetic`
		return true
	}
	if lat >= best-units.Millis(1e-12) { // explicit epsilon: clean
		return true
	}
	return lat > 0 // zero compare: clean
}

// --- rule 2: float64 laundering across kinds ---

func relabel(t units.Millis) units.Seconds {
	x := float64(t)
	return units.Seconds(x) // want `re-labeling a float64-laundered Millis as Seconds`
}

func relabelSameKind(t units.Millis) units.Millis {
	x := float64(t)
	return units.Millis(x) // same kind round-trip: clean
}

func mixedArithmetic(t units.Millis, b units.Bytes) float64 {
	x := float64(t)
	y := float64(b)
	return x + y // want `mixing float64-laundered Millis with Bytes`
}

func launderedCompare(t units.Millis, b units.Bytes) bool {
	x := float64(t)
	y := float64(b)
	return x < y // want `mixing float64-laundered Millis with Bytes`
}

func taintDropsThroughScaling(t units.Millis) units.Seconds {
	// Dividing by a rate leaves the unit system legitimately; the taint
	// must not survive multiplication or division.
	x := float64(t) / 1000.0
	return units.Seconds(x) // dimension changed by arithmetic: clean
}

func sameKindArithmetic(a, b units.Millis) float64 {
	x := float64(a)
	y := float64(b)
	return x + y // same kind both sides: clean
}

// --- rule 3: products and quotients of unit values ---

func products(a, b units.Millis, n units.Bytes) {
	_ = a * b // want `Millis × Millis has no defined unit`
	_ = a / b // want `Millis / Millis is not a Millis`
	_ = 2 * a // constant scale factor: clean
	_ = a / 2 // constant divisor: clean
	_ = a.Ratio(b)
	_ = n.Scale(0.5)
}

// --- suppression ---

func deliberate(t units.Millis) units.Millis {
	chargeFor(12.5) //lint:unitless fixture exercises the escape hatch
	return t
}
