// Package fixture exercises the sharedcapture analyzer: writes to
// captured variables from parallel worker closures.
package fixture

import (
	"sync"

	"github.com/shus-lab/hios/internal/parallel"
)

func counterRace() int {
	total := 0
	_ = parallel.ForEach(10, 4, func(i int) error {
		total += i // want `worker closure writes captured variable "total"`
		return nil
	})
	return total
}

func bestRace(cands []float64) float64 {
	best := 0.0
	_ = parallel.ForEach(len(cands), 4, func(i int) error {
		if cands[i] > best {
			best = cands[i] // want `worker closure writes captured variable "best"`
		}
		return nil
	})
	return best
}

func appendRace() []int {
	var all []int
	_ = parallel.ForEach(10, 4, func(i int) error {
		all = append(all, i) // want `worker closure writes captured variable "all"`
		return nil
	})
	return all
}

func mapRace() map[int]bool {
	seen := make(map[int]bool)
	_ = parallel.ForEach(10, 4, func(i int) error {
		seen[i] = true // want `worker closure writes captured variable "seen"`
		return nil
	})
	return seen
}

func pointerRace(sum *float64) {
	_ = parallel.ForEach(10, 4, func(i int) error {
		*sum = *sum + float64(i) // want `worker closure writes captured variable "sum"`
		return nil
	})
}

func disjointSlots() []int {
	out := make([]int, 10)
	_ = parallel.ForEach(10, 4, func(i int) error {
		out[i] = i * i // each worker owns element i: clean
		return nil
	})
	return out
}

func mutexProtected() int {
	var mu sync.Mutex
	total := 0
	_ = parallel.ForEach(10, 4, func(i int) error {
		mu.Lock()
		total += i // lock held: clean
		mu.Unlock()
		return nil
	})
	return total
}

func workerLocals() error {
	return parallel.ForEach(10, 4, func(i int) error {
		acc := 0
		for j := 0; j < i; j++ {
			acc += j // closure-local state: clean
		}
		_ = acc
		return nil
	})
}

func mapCollect() ([]int, error) {
	// parallel.Map's own result slice is the safe pattern.
	return parallel.Map(10, 4, func(i int) (int, error) {
		return i * i, nil
	})
}

func explicitInstantiation() ([]float64, error) {
	sink := 0.0
	return parallel.Map[float64](4, 2, func(i int) (float64, error) {
		sink = float64(i) // want `worker closure writes captured variable "sink"`
		return sink, nil
	})
}

func deliberate() int {
	done := 0
	_ = parallel.ForEach(1, 1, func(i int) error {
		done = 1 //lint:sharedcapture width 1 runs workers sequentially here
		return nil
	})
	return done
}
