// Package main exercises the pubapi analyzer as if it were a cmd/
// binary.
package main

import (
	"fmt"

	hios "github.com/shus-lab/hios"
	_ "github.com/shus-lab/hios/internal/lint/analysis"
	_ "github.com/shus-lab/hios/internal/sched" // want `must go through the public hios facade`
	_ "github.com/shus-lab/hios/internal/sim"   // want `must go through the public hios facade`
)

func main() {
	fmt.Println(hios.Algorithms)
}
