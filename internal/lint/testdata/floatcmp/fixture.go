// Package fixture exercises the floatcmp analyzer.
package fixture

func equality(a, b float64) bool {
	return a == b // want `exact floating-point == on latency/cost values`
}

func inequality(a, b float64) bool {
	return a != b // want `exact floating-point != on latency/cost values`
}

func mixedLiteral(lat float64) bool {
	return lat == 0 // want `exact floating-point ==`
}

func ordered(a, b float64) bool {
	return a < b || b < a // ordered comparison: well-defined, clean
}

func integers(a, b int) bool {
	return a == b // not floating point: clean
}

func tieBreak(a, b float64) bool {
	return a != b //lint:floatexact IEEE equality keeps the comparator a strict weak order
}
