// Negative fixtures: hot-path propagation is static and bounded. It
// never follows calls across the module boundary (the standard library
// below allocates internally, invisibly to hotalloc), and it never
// flows through an out-of-module callee back into module code — foreign
// packages are simply not analyzed, as TestScopeBoundaries proves by
// loading this same fixture under an example.com import path.
package fixture

import "strings"

// boundaryRoot is hot, but the strings package is another module:
// propagation stops at the call, so Repeat's internal allocations are
// not findings here.
//
//lint:hotpath
func boundaryRoot(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s = strings.Repeat("x", n) // clean: callee is outside the module
	}
	return s
}

// notReached allocates in loops but is only called from cold code, so
// hotness never reaches it.
func notReached(n int) []int {
	var xs []int
	for i := 0; i < n; i++ {
		xs = append(xs, make([]int, 2)...)
	}
	return xs
}

func coldCaller(n int) { _ = notReached(n) }
