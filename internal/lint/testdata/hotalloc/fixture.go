// The hotalloc fixture: //lint:hotpath roots, same-package propagation,
// every allocation class the analyzer flags, the idioms it accepts, and
// //lint:hotalloc suppression. Loaded under an internal/sched path (the
// analyzer is module-wide; TestScopeBoundaries proves it stays silent
// outside the module).
package fixture

import "fmt"

type item struct{ v int }

func sink(v any) { _ = v }

func consume(xs []int) { _ = xs }

// root is a hot-path root; everything statically reachable from it in
// this package is hot.
//
//lint:hotpath
func root(n int) int {
	out := make([]int, 0, n) // clean: not inside a loop
	for i := 0; i < n; i++ {
		buf := make([]int, 8) // want `make inside a loop`
		_ = buf
		out = append(out, helper(i)) // clean append: out has capacity n
	}
	return len(out)
}

// helper is hot by propagation from root.
func helper(i int) int {
	var xs []int
	for j := 0; j < i; j++ {
		xs = append(xs, j) // want `append grows xs without preallocated capacity`
	}
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

//lint:hotpath
func literals(n int) {
	for i := 0; i < n; i++ {
		m := map[int]bool{} // want `map literal inside a loop`
		_ = m
		sl := []int{i} // want `slice literal inside a loop`
		_ = sl
		p := &item{v: i} // want `address-taken composite literal inside a loop`
		_ = p
		v := item{v: i} // clean: a plain struct value stays on the stack
		_ = v
	}
}

//lint:hotpath
func closures(n int) {
	limit := n * 2
	f := func(x int) bool { return x < limit } // clean: not inside a loop
	for i := 0; i < n; i++ {
		g := func() int { return i + limit } // want `closure captures variables inside a loop`
		_ = g()
		h := func(x int) int { return x * x } // clean: captures nothing
		_ = h(i)
	}
	_ = f(n)
}

//lint:hotpath
func boxing(n int) {
	it := item{v: 1}
	for i := 0; i < n; i++ {
		sink(it)       // want `boxes into an interface parameter inside a loop`
		sink(1)        // clean: compile-time constants are statically boxed
		sink(&it)      // clean: pointers store directly in the interface word
		var v any = it // clean: assignment conversions are out of scope here
		_ = v
	}
}

//lint:hotpath
func formatting(n int, name string) (string, error) {
	msg := fmt.Sprintf("op %d", n) // want `fmt.Sprintf allocates`
	label := "op:" + name          // want `string concatenation allocates`
	const pre = "p:"
	static := pre + "suffix" // clean: constant concatenation folds at compile time
	_ = static
	if n < 0 {
		return "", fmt.Errorf("bad n %d", n) // clean: error paths are cold
	}
	if n > 1000 {
		panic(fmt.Sprintf("impossible n %d", n)) // clean: panics are cold
	}
	_ = msg
	return label, nil
}

// growInLoop shows the sanctioned scratch-buffer idiom: growth behind a
// cap() guard is accepted, as is a suppressed deliberate allocation.
//
//lint:hotpath
func growInLoop(n int) {
	var buf []int
	for i := 0; i < n; i++ {
		if cap(buf) < i {
			buf = make([]int, i) // clean: cap()-guarded amortized growth
		}
		buf = buf[:0]
		tmp := make([]int, 4) //lint:hotalloc (deliberate, measured as free)
		_ = tmp
	}
	consume(buf)
}

// cold has every pattern above but no hotpath annotation and no hot
// caller: none of it is flagged.
func cold(n int) {
	var xs []int
	for i := 0; i < n; i++ {
		buf := make([]int, 8)
		xs = append(xs, buf...)
		sink(item{v: i})
		_ = fmt.Sprintf("op %d", i)
	}
	consume(xs)
}
