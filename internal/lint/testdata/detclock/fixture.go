// Package fixture exercises the detclock analyzer.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() float64 {
	start := time.Now() // want `time.Now in the deterministic core`
	_ = start
	return float64(time.Since(start)) // want `time.Since in the deterministic core`
}

func globalRand() int {
	return rand.Intn(10) // want `rand.Intn in the deterministic core`
}

func reseedGlobal(seed int64) {
	rand.Seed(seed) // want `rand.Seed in the deterministic core`
}

// seeded injects determinism the approved way: an explicit source.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// durations are values, not clock reads.
func durations(d time.Duration) float64 {
	return d.Seconds() + float64(5*time.Millisecond)
}
