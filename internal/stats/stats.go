// Package stats provides the small statistical helpers the experiment
// harness reports with: each data point in the paper is the average of 30
// simulated instances (or 36 measured runs) with standard deviations.
package stats

import "math"

// Mean returns the arithmetic mean, 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (n-1 denominator), 0 for
// fewer than two samples.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the minimum, +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Eps is the default tolerance for ApproxEqual: latencies and costs in
// this repository are milliseconds-scale float64 sums, for which nine
// significant digits comfortably exceed any real difference while
// absorbing accumulation-order noise in the last ulps.
const Eps = 1e-9

// ApproxEqual reports whether a and b differ by at most eps in absolute
// terms or, for large magnitudes, in relative terms (|a-b| <=
// eps*max(|a|,|b|)). It is the comparison the floatcmp analyzer points
// to: exact == / != on computed latencies flips with accumulation order,
// while an epsilon compare is stable. eps <= 0 selects Eps. NaN equals
// nothing, mirroring IEEE semantics.
func ApproxEqual(a, b, eps float64) bool {
	if eps <= 0 {
		eps = Eps
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { // exact hit, including equal infinities
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // a finite value never approximates an infinity
	}
	diff := math.Abs(a - b)
	if diff <= eps {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= eps*scale
}

// Percentile returns the p-th percentile of a slice that is already
// sorted ascending, using the nearest-rank definition: the smallest
// element such that at least p percent of the data is <= it. p <= 0
// selects the first element, p >= 100 the last; an empty slice yields 0.
// Nearest-rank (rather than interpolation) keeps the result an actual
// observation, which is what tail-latency reporting wants.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// Speedup returns base/x: how many times faster x is than base.
// It returns 0 when x is 0.
func Speedup(base, x float64) float64 {
	if x == 0 {
		return 0
	}
	return base / x
}

// Sample accumulates observations and reports summary statistics.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the observation count.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 { return Mean(s.xs) }

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 { return Std(s.xs) }

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return Min(s.xs) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return Max(s.xs) }

// Values returns the raw observations (not a copy).
func (s *Sample) Values() []float64 { return s.xs }
