// Package stats provides the small statistical helpers the experiment
// harness reports with: each data point in the paper is the average of 30
// simulated instances (or 36 measured runs) with standard deviations.
package stats

import "math"

// Mean returns the arithmetic mean, 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (n-1 denominator), 0 for
// fewer than two samples.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the minimum, +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Speedup returns base/x: how many times faster x is than base.
// It returns 0 when x is 0.
func Speedup(base, x float64) float64 {
	if x == 0 {
		return 0
	}
	return base / x
}

// Sample accumulates observations and reports summary statistics.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the observation count.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 { return Mean(s.xs) }

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 { return Std(s.xs) }

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return Min(s.xs) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return Max(s.xs) }

// Values returns the raw observations (not a copy).
func (s *Sample) Values() []float64 { return s.xs }
