package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g", got)
	}
	// Sample std of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := Std(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Std = %g, want %g", got, want)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{3}) != 0 {
		t.Fatal("empty/degenerate cases wrong")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max should be infinities")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 5) != 2 {
		t.Fatal("Speedup(10,5) != 2")
	}
	if Speedup(10, 0) != 0 {
		t.Fatal("Speedup by zero should be 0")
	}
}

func TestSample(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 3} {
		s.Add(x)
	}
	if s.N() != 3 || s.Mean() != 2 || s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("Sample summary wrong: %+v", s)
	}
	if math.Abs(s.Std()-1) > 1e-12 {
		t.Fatalf("Sample std = %g", s.Std())
	}
	if len(s.Values()) != 3 {
		t.Fatal("Values lost data")
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			// Skip pathological magnitudes whose sum overflows;
			// experiment data is in milliseconds.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9*math.Abs(Min(xs))-1e-9 &&
			m <= Max(xs)+1e-9*math.Abs(Max(xs))+1e-9 &&
			Std(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, eps float64
		want      bool
	}{
		{1, 1, 1e-9, true},
		{1, 1 + 1e-12, 1e-9, true},             // absolute tolerance
		{1e12, 1e12 * (1 + 1e-12), 1e-9, true}, // relative tolerance at scale
		{1, 1.001, 1e-9, false},
		{0, 1e-12, 1e-9, true},
		{0, 1e-3, 1e-9, false},
		{1, 2, 0, false}, // eps<=0 selects the default, still unequal
		{1, 1, -1, true}, // eps<=0 selects the default
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false},
		{math.NaN(), 1, 1e-9, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.eps); got != c.want {
			t.Errorf("ApproxEqual(%g, %g, %g) = %v, want %v", c.a, c.b, c.eps, got, c.want)
		}
	}
}

func TestApproxEqualSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		return ApproxEqual(a, b, 1e-9) == ApproxEqual(b, a, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
