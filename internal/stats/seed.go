package stats

// Seed-stream helpers: the sanctioned home of splitmix64 seed mixing
// (the seedflow analyzer flags the constants anywhere else). Every
// deterministic component that needs several independent RNG streams —
// per-tenant arrival processes in internal/serve, per-seed sweep
// instances in internal/experiments — derives child seeds here instead
// of hand-rolling `seed + i` arithmetic, which produces correlated
// streams (math/rand's LCG-seeded generators with adjacent seeds start
// in nearly identical states).

// MixSeed derives the i-th child seed from a base seed with one
// splitmix64 step (Steele et al., "Fast Splittable Pseudorandom Number
// Generators", OOPSLA 2014): adjacent (seed, i) pairs yield statistically
// unrelated outputs. The mapping is pure, so the same base seed and
// index always produce the same child seed.
func MixSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// SeedStream hands out a deterministic sequence of decorrelated child
// seeds from one base seed. The zero value is not useful; construct with
// NewSeedStream. Streams are not safe for concurrent use.
type SeedStream struct {
	base int64
	next int
}

// NewSeedStream returns a stream of child seeds derived from base.
func NewSeedStream(base int64) *SeedStream {
	return &SeedStream{base: base}
}

// Next returns the next child seed. The n-th call returns
// MixSeed(base, n-1), so a stream is equivalent to indexed mixing.
func (s *SeedStream) Next() int64 {
	v := MixSeed(s.base, s.next)
	s.next++
	return v
}
