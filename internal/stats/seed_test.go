package stats

import "testing"

func TestMixSeedDeterministicAndDecorrelated(t *testing.T) {
	if MixSeed(7, 0) != MixSeed(7, 0) {
		t.Fatal("MixSeed is not deterministic")
	}
	// Adjacent inputs must not produce adjacent outputs (the failure mode
	// of raw seed+i derivation).
	seen := make(map[int64]bool)
	for i := 0; i < 100; i++ {
		v := MixSeed(7, i)
		if seen[v] {
			t.Fatalf("MixSeed(7, %d) collided", i)
		}
		seen[v] = true
		if d := v - MixSeed(7, i+1); d == 1 || d == -1 {
			t.Fatalf("MixSeed(7, %d) and MixSeed(7, %d) are adjacent", i, i+1)
		}
	}
	if MixSeed(7, 1) == MixSeed(8, 1) {
		t.Fatal("different base seeds produced the same child seed")
	}
}

func TestSeedStreamMatchesIndexedMixing(t *testing.T) {
	s := NewSeedStream(42)
	for i := 0; i < 10; i++ {
		if got, want := s.Next(), MixSeed(42, i); got != want {
			t.Fatalf("stream call %d = %d, want MixSeed(42, %d) = %d", i, got, i, want)
		}
	}
}
