package model

import (
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/graph"
)

// TestCachedModelMatchesGraphModel pins the interchangeability claim of
// Net.CachedModel: pricing a built net straight from its kernel shapes
// through the shared cache must be bit-identical to cost.FromGraph over
// the baked weights — for t(v), t(u,v) and t(S) alike — because the
// weights ARE the cached values.
func TestCachedModelMatchesGraphModel(t *testing.T) {
	net := InceptionV3(gpu.A40(), gpu.NVLinkBridge(), 299)
	ct := cost.DefaultContention()
	gm := cost.FromGraph(net.G, ct)
	km, err := net.CachedModel(ct)
	if err != nil {
		t.Fatal(err)
	}

	n := net.G.NumOps()
	for v := 0; v < n; v++ {
		id := graph.OpID(v)
		if got, want := km.OpTime(id), gm.OpTime(id); got != want { //lint:floatexact
			t.Fatalf("OpTime(%d): cached %v, graph %v", v, got, want)
		}
	}
	edges := 0
	for v := 0; v < n && edges < 500; v++ {
		id := graph.OpID(v)
		net.G.Succs(id, func(u graph.OpID, _ float64) {
			edges++
			if got, want := km.CommTime(id, u), gm.CommTime(id, u); got != want { //lint:floatexact
				t.Fatalf("CommTime(%d,%d): cached %v, graph %v", id, u, got, want)
			}
		})
	}
	if edges == 0 {
		t.Fatal("no edges visited")
	}
	// Stages assembled from stride-spaced operators, spanning widths
	// either side of the signatures' inline capacity. These are not
	// semantically valid concurrent stages — StageTime is a pure
	// function of the member list, which is all that matters here.
	var ops []graph.OpID
	for width := 1; width <= 11; width++ {
		ops = ops[:0]
		for i := 0; i < width; i++ {
			ops = append(ops, graph.OpID((i*17+width)%n))
		}
		if got, want := km.StageTime(ops), gm.StageTime(ops); got != want { //lint:floatexact
			t.Fatalf("StageTime(width %d): cached %v, graph %v", width, got, want)
		}
	}
	// CommTime of a non-edge is zero on both sides.
	if got := km.CommTime(graph.OpID(0), graph.OpID(0)); got != 0 { //lint:floatexact
		t.Fatalf("CommTime of non-edge: %v", got)
	}
}

// TestBuilderCacheStability: building the same net twice yields
// byte-identical graph weights — the second build is served almost
// entirely from the shared cache, and cached values must not drift.
func TestBuilderCacheStability(t *testing.T) {
	a := InceptionV3(gpu.A40(), gpu.NVLinkBridge(), 299)
	b := InceptionV3(gpu.A40(), gpu.NVLinkBridge(), 299)
	if a.G.NumOps() != b.G.NumOps() {
		t.Fatalf("op counts differ: %d vs %d", a.G.NumOps(), b.G.NumOps())
	}
	for v := range a.G.Ops() {
		oa, ob := a.G.Op(graph.OpID(v)), b.G.Op(graph.OpID(v))
		if oa.Time != ob.Time || oa.Util != ob.Util { //lint:floatexact
			t.Fatalf("op %d weights drifted across rebuilds: (%v,%v) vs (%v,%v)",
				v, oa.Time, oa.Util, ob.Time, ob.Util)
		}
	}
	ea, eb := a.G.Edges(), b.G.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i].Time != eb[i].Time { //lint:floatexact
			t.Fatalf("edge %d transfer drifted: %v vs %v", i, ea[i].Time, eb[i].Time)
		}
	}
}
