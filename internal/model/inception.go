package model

import (
	"fmt"

	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/graph"
)

// InceptionV3 builds Google's Inception-v3 (Szegedy et al., CVPR 2016) at
// the given square input size (the canonical size is 299; the paper scales
// it up to 2^K to grow operator workloads). The structure follows the
// torchvision reference: a convolutional stem, three InceptionA modules,
// a grid-reduction module, four InceptionC modules, a second reduction,
// two InceptionE modules, then global pooling and the classifier.
//
// The paper reports 119 operators and 153 dependencies for its extracted
// graph; this builder produces 121 operators (it keeps an explicit input
// placeholder and the final classifier as separate operators) and an edge
// count within a few of the paper's.
func InceptionV3(dev gpu.Device, link gpu.Link, inputSize int) *Net {
	b := NewBuilder(fmt.Sprintf("inception-v3-%d", inputSize), dev, link)

	in := b.Input(3, inputSize, inputSize)

	// Stem.
	x := b.Conv(in, 32, 3, 3, 2, 2, 0, 0, "stem.conv1")
	x = b.Conv(x, 32, 3, 3, 1, 1, 0, 0, "stem.conv2")
	x = b.Conv(x, 64, 3, 3, 1, 1, 1, 1, "stem.conv3")
	x = b.MaxPool(x, 3, 2, 0, "stem.pool1")
	x = b.Conv1x1(x, 80, "stem.conv4")
	x = b.Conv(x, 192, 3, 3, 1, 1, 0, 0, "stem.conv5")
	x = b.MaxPool(x, 3, 2, 0, "stem.pool2")

	// Three InceptionA modules (pool branch width 32, 64, 64).
	for i, poolC := range []int{32, 64, 64} {
		x = inceptionA(b, x, poolC, fmt.Sprintf("mixedA%d", i))
	}
	// Grid reduction 35x35 -> 17x17.
	x = inceptionB(b, x, "reduceB")
	// Four InceptionC modules (7x7 branch width 128, 160, 160, 192).
	for i, c7 := range []int{128, 160, 160, 192} {
		x = inceptionC(b, x, c7, fmt.Sprintf("mixedC%d", i))
	}
	// Grid reduction 17x17 -> 8x8.
	x = inceptionD(b, x, "reduceD")
	// Two InceptionE modules.
	for i := 0; i < 2; i++ {
		x = inceptionE(b, x, fmt.Sprintf("mixedE%d", i))
	}

	x = b.GlobalAvgPool(x, "head.pool")
	b.Linear(x, 1000, "head.fc")
	return b.MustBuild()
}

// inceptionA is the 35x35 module: 1x1, 5x5, double-3x3 and pooling
// branches concatenated.
func inceptionA(b *Builder, x graph.OpID, poolC int, name string) graph.OpID {
	b1 := b.Conv1x1(x, 64, name+".b1.1x1")

	b2 := b.Conv1x1(x, 48, name+".b2.1x1")
	b2 = b.Conv(b2, 64, 5, 5, 1, 1, 2, 2, name+".b2.5x5")

	b3 := b.Conv1x1(x, 64, name+".b3.1x1")
	b3 = b.Conv(b3, 96, 3, 3, 1, 1, 1, 1, name+".b3.3x3a")
	b3 = b.Conv(b3, 96, 3, 3, 1, 1, 1, 1, name+".b3.3x3b")

	b4 := b.AvgPool(x, 3, 1, 1, name+".b4.pool")
	b4 = b.Conv1x1(b4, poolC, name+".b4.1x1")

	return b.Concat(name+".concat", b1, b2, b3, b4)
}

// inceptionB is the first grid-reduction module.
func inceptionB(b *Builder, x graph.OpID, name string) graph.OpID {
	b1 := b.Conv(x, 384, 3, 3, 2, 2, 0, 0, name+".b1.3x3")

	b2 := b.Conv1x1(x, 64, name+".b2.1x1")
	b2 = b.Conv(b2, 96, 3, 3, 1, 1, 1, 1, name+".b2.3x3a")
	b2 = b.Conv(b2, 96, 3, 3, 2, 2, 0, 0, name+".b2.3x3b")

	b3 := b.MaxPool(x, 3, 2, 0, name+".b3.pool")

	return b.Concat(name+".concat", b1, b2, b3)
}

// inceptionC is the 17x17 module with factorized 7x7 convolutions.
func inceptionC(b *Builder, x graph.OpID, c7 int, name string) graph.OpID {
	b1 := b.Conv1x1(x, 192, name+".b1.1x1")

	b2 := b.Conv1x1(x, c7, name+".b2.1x1")
	b2 = b.Conv(b2, c7, 1, 7, 1, 1, 0, 3, name+".b2.1x7")
	b2 = b.Conv(b2, 192, 7, 1, 1, 1, 3, 0, name+".b2.7x1")

	b3 := b.Conv1x1(x, c7, name+".b3.1x1")
	b3 = b.Conv(b3, c7, 7, 1, 1, 1, 3, 0, name+".b3.7x1a")
	b3 = b.Conv(b3, c7, 1, 7, 1, 1, 0, 3, name+".b3.1x7a")
	b3 = b.Conv(b3, c7, 7, 1, 1, 1, 3, 0, name+".b3.7x1b")
	b3 = b.Conv(b3, 192, 1, 7, 1, 1, 0, 3, name+".b3.1x7b")

	b4 := b.AvgPool(x, 3, 1, 1, name+".b4.pool")
	b4 = b.Conv1x1(b4, 192, name+".b4.1x1")

	return b.Concat(name+".concat", b1, b2, b3, b4)
}

// inceptionD is the second grid-reduction module.
func inceptionD(b *Builder, x graph.OpID, name string) graph.OpID {
	b1 := b.Conv1x1(x, 192, name+".b1.1x1")
	b1 = b.Conv(b1, 320, 3, 3, 2, 2, 0, 0, name+".b1.3x3")

	b2 := b.Conv1x1(x, 192, name+".b2.1x1")
	b2 = b.Conv(b2, 192, 1, 7, 1, 1, 0, 3, name+".b2.1x7")
	b2 = b.Conv(b2, 192, 7, 1, 1, 1, 3, 0, name+".b2.7x1")
	b2 = b.Conv(b2, 192, 3, 3, 2, 2, 0, 0, name+".b2.3x3")

	b3 := b.MaxPool(x, 3, 2, 0, name+".b3.pool")

	return b.Concat(name+".concat", b1, b2, b3)
}

// inceptionE is the 8x8 module with split 1x3/3x1 branches.
func inceptionE(b *Builder, x graph.OpID, name string) graph.OpID {
	b1 := b.Conv1x1(x, 320, name+".b1.1x1")

	b2 := b.Conv1x1(x, 384, name+".b2.1x1")
	b2a := b.Conv(b2, 384, 1, 3, 1, 1, 0, 1, name+".b2.1x3")
	b2b := b.Conv(b2, 384, 3, 1, 1, 1, 1, 0, name+".b2.3x1")

	b3 := b.Conv1x1(x, 448, name+".b3.1x1")
	b3 = b.Conv(b3, 384, 3, 3, 1, 1, 1, 1, name+".b3.3x3")
	b3a := b.Conv(b3, 384, 1, 3, 1, 1, 0, 1, name+".b3.1x3")
	b3b := b.Conv(b3, 384, 3, 1, 1, 1, 1, 0, name+".b3.3x1")

	b4 := b.AvgPool(x, 3, 1, 1, name+".b4.pool")
	b4 = b.Conv1x1(b4, 192, name+".b4.1x1")

	return b.Concat(name+".concat", b1, b2a, b2b, b3a, b3b, b4)
}
