package model

import (
	"math"
	"testing"

	"github.com/shus-lab/hios/internal/gpu"
)

func TestTensorAccounting(t *testing.T) {
	ts := Tensor{C: 3, H: 4, W: 5}
	if ts.Elems() != 60 || ts.Bytes() != 240 {
		t.Fatalf("Elems/Bytes wrong: %d %d", ts.Elems(), ts.Bytes())
	}
	if ts.String() != "3x4x5" {
		t.Fatalf("String = %q", ts.String())
	}
}

func TestConvShapeInference(t *testing.T) {
	b := NewBuilder("t", gpu.A40(), gpu.NVLinkBridge())
	in := b.Input(3, 299, 299)
	c := b.Conv(in, 32, 3, 3, 2, 2, 0, 0, "c1")
	if got := b.Shape(c); got != (Tensor{C: 32, H: 149, W: 149}) {
		t.Fatalf("conv shape = %v", got)
	}
	p := b.MaxPool(c, 3, 2, 0, "p1")
	if got := b.Shape(p); got != (Tensor{C: 32, H: 74, W: 74}) {
		t.Fatalf("pool shape = %v", got)
	}
	s := b.SepConv(p, 64, 3, 1, 1, "s1")
	if got := b.Shape(s); got != (Tensor{C: 64, H: 74, W: 74}) {
		t.Fatalf("sepconv shape = %v", got)
	}
	gp := b.GlobalAvgPool(s, "gp")
	if got := b.Shape(gp); got != (Tensor{C: 64, H: 1, W: 1}) {
		t.Fatalf("globalpool shape = %v", got)
	}
	fc := b.Linear(gp, 10, "fc")
	if got := b.Shape(fc); got != (Tensor{C: 10, H: 1, W: 1}) {
		t.Fatalf("linear shape = %v", got)
	}
	n := b.MustBuild()
	// input, conv, pool, sep (2 ops), globalpool, linear.
	if n.G.NumOps() != 7 {
		t.Fatalf("ops = %d, want 7", n.G.NumOps())
	}
}

func TestConcatChecksSpatial(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Concat accepted mismatched spatial dims")
		}
	}()
	b := NewBuilder("t", gpu.A40(), gpu.NVLinkBridge())
	in := b.Input(3, 64, 64)
	a := b.Conv1x1(in, 8, "a")
	c := b.Conv(in, 8, 3, 3, 2, 2, 0, 0, "c")
	b.Concat("bad", a, c)
}

func TestAddChecksShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add accepted mismatched shapes")
		}
	}()
	b := NewBuilder("t", gpu.A40(), gpu.NVLinkBridge())
	in := b.Input(3, 64, 64)
	a := b.Conv1x1(in, 8, "a")
	c := b.Conv1x1(in, 16, "c")
	b.Add(a, c, "bad")
}

func TestDegenerateConvPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Conv accepted a kernel larger than its input")
		}
	}()
	b := NewBuilder("t", gpu.A40(), gpu.NVLinkBridge())
	in := b.Input(3, 4, 4)
	b.Conv(in, 8, 7, 7, 1, 1, 0, 0, "bad")
}

func TestOpWeightsPositiveAndFinite(t *testing.T) {
	n := InceptionV3(gpu.A40(), gpu.NVLinkBridge(), 299)
	for _, op := range n.G.Ops() {
		if !(op.Time > 0) || math.IsInf(op.Time, 0) || math.IsNaN(op.Time) {
			t.Fatalf("op %s has bad time %g", op.Name, op.Time)
		}
		if op.Util <= 0 || op.Util > 1 {
			t.Fatalf("op %s has bad util %g", op.Name, op.Util)
		}
	}
	for _, e := range n.G.Edges() {
		if e.Time <= 0 || math.IsNaN(e.Time) {
			t.Fatalf("edge %d->%d has bad transfer %g", e.From, e.To, e.Time)
		}
	}
}

func TestInceptionV3Structure(t *testing.T) {
	n := InceptionV3(gpu.A40(), gpu.NVLinkBridge(), 299)
	// Paper: 119 operators, 153 dependencies. Our builder keeps the
	// explicit input placeholder and classifier: 121 ops.
	if got := n.G.NumOps(); got != 121 {
		t.Fatalf("ops = %d, want 121", got)
	}
	if got := n.G.NumEdges(); got < 140 || got > 170 {
		t.Fatalf("edges = %d, want ~153", got)
	}
	if got := len(n.G.Sources()); got != 1 {
		t.Fatalf("sources = %d, want 1", got)
	}
	if got := len(n.G.Sinks()); got != 1 {
		t.Fatalf("sinks = %d, want 1", got)
	}
	if _, err := n.G.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	// Final classifier output must be 1000-way.
	sink := n.G.Sinks()[0]
	if n.Shapes[sink].C != 1000 {
		t.Fatalf("classifier shape = %v", n.Shapes[sink])
	}
}

func TestInceptionV3ScalesWithInput(t *testing.T) {
	small := InceptionV3(gpu.A40(), gpu.NVLinkBridge(), 299)
	large := InceptionV3(gpu.A40(), gpu.NVLinkBridge(), 1024)
	if small.G.NumOps() != large.G.NumOps() {
		t.Fatal("input size must not change the graph structure")
	}
	if large.G.TotalOpTime() <= small.G.TotalOpTime()*1.5 {
		t.Fatalf("1024px work (%g ms) should clearly exceed 299px (%g ms)",
			large.G.TotalOpTime(), small.G.TotalOpTime())
	}
	// The paper's premise: growing the input makes operators saturate
	// the GPU (higher solo utilization), shrinking the intra-GPU
	// parallelization headroom.
	meanUtil := func(n *Net) float64 {
		var s float64
		for _, op := range n.G.Ops() {
			s += op.Util
		}
		return s / float64(n.G.NumOps())
	}
	if meanUtil(large) <= meanUtil(small) {
		t.Fatalf("mean utilization should grow with input size: %g vs %g",
			meanUtil(large), meanUtil(small))
	}
}

func TestNASNetStructure(t *testing.T) {
	n := NASNet(gpu.A40(), gpu.NVLinkBridge(), 331)
	// Paper: 374 operators, 576 dependencies.
	if got := n.G.NumOps(); got != 374 {
		t.Fatalf("ops = %d, want 374", got)
	}
	if got := n.G.NumEdges(); got < 500 || got > 650 {
		t.Fatalf("edges = %d, want ~576", got)
	}
	if got := len(n.G.Sources()); got != 1 {
		t.Fatalf("sources = %d, want 1", got)
	}
	if _, err := n.G.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	sink := n.G.Sinks()[0]
	if n.Shapes[sink].C != 1000 {
		t.Fatalf("classifier shape = %v", n.Shapes[sink])
	}
}

func TestNASNetWiderThanInception(t *testing.T) {
	// NASNet's cells are wider (more parallel branches) than
	// Inception's: its maximum layer width must exceed Inception's.
	inc := InceptionV3(gpu.A40(), gpu.NVLinkBridge(), 299)
	nas := NASNet(gpu.A40(), gpu.NVLinkBridge(), 331)
	width := func(n *Net) int {
		w := 0
		for _, l := range n.G.Layers() {
			if len(l) > w {
				w = len(l)
			}
		}
		return w
	}
	if width(nas) <= width(inc)/2 {
		t.Fatalf("NASNet width %d vs Inception %d: expected branch-heavy NASNet", width(nas), width(inc))
	}
}

func TestDifferentDevicesDifferentTimes(t *testing.T) {
	a40 := InceptionV3(gpu.A40(), gpu.NVLinkBridge(), 299)
	v100 := InceptionV3(gpu.V100S(), gpu.PCIe3(), 299)
	if a40.G.TotalOpTime() >= v100.G.TotalOpTime() {
		t.Fatalf("A40 (%g ms) should be faster than V100S (%g ms)",
			a40.G.TotalOpTime(), v100.G.TotalOpTime())
	}
}
