package model

import (
	"fmt"

	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/graph"
)

// NASNet builds NASNet-A (Zoph et al., CVPR 2018) at the given square
// input size (the canonical size is 331). NASNet is a stack of searched
// "normal" and "reduction" cells, each combining its two predecessor
// cells' outputs through separable convolutions, poolings and elementwise
// additions, concatenated at the end — a much wider, more branch-heavy
// graph than Inception-v3, which is exactly why the paper uses it as the
// stress benchmark.
//
// Cell composition here follows the NASNet-A search result with separable
// convolutions expanded into their depthwise + pointwise kernels. The
// layout — stem, two stem reduction cells, three stacks of six normal
// cells separated by reduction cells, head — yields 374 operators,
// matching the paper's reported operator count exactly (the paper lists
// 374 operators and 576 dependencies).
func NASNet(dev gpu.Device, link gpu.Link, inputSize int) *Net {
	b := NewBuilder(fmt.Sprintf("nasnet-a-%d", inputSize), dev, link)

	in := b.Input(3, inputSize, inputSize)
	stem := b.Conv(in, 96, 3, 3, 2, 2, 0, 0, "stem.conv")

	// Two stem reduction cells at small filter counts, then three
	// stacks of six normal cells with reduction cells between, doubling
	// filters at each reduction: the NASNet-A (6 @ large) layout.
	h2, h := stem, stem
	h2, h = h, reductionCell(b, h, h2, 42, "stemR0")
	h2, h = h, reductionCell(b, h, h2, 84, "stemR1")
	filters := 168
	for stack := 0; stack < 3; stack++ {
		for i := 0; i < 6; i++ {
			h2, h = h, normalCell(b, h, h2, filters, fmt.Sprintf("s%dn%d", stack, i))
		}
		if stack < 2 {
			filters *= 2
			h2, h = h, reductionCell(b, h, h2, filters, fmt.Sprintf("s%dr", stack))
		}
	}
	_ = h2

	x := b.GlobalAvgPool(h, "head.pool")
	b.Linear(x, 1000, "head.fc")
	return b.MustBuild()
}

// normalCell is a stride-1 NASNet-A cell: both inputs are first squeezed
// to the cell's filter count by pointwise convolutions, then five blocks
// combine them; the block outputs are concatenated. 17 operators.
func normalCell(b *Builder, h, h2 graph.OpID, filters int, name string) graph.OpID {
	// When the previous cell reduced the grid, h2 has a larger spatial
	// size than h; NASNet inserts a factorized reduction, modeled here
	// as a strided pointwise convolution.
	hp := b.Conv1x1(h, filters, name+".adjust.h")
	h2p := adjust(b, h2, b.Shape(hp), filters, name+".adjust.h2")

	// Block 0: sep3x3(h') + h' identity.
	s0 := b.SepConv(hp, filters, 3, 1, 1, name+".b0.sep3")
	a0 := b.Add(s0, hp, name+".b0.add")
	// Block 1: sep3x3(h2') + sep5x5(h').
	s1a := b.SepConv(h2p, filters, 3, 1, 1, name+".b1.sep3")
	s1b := b.SepConv(hp, filters, 5, 1, 2, name+".b1.sep5")
	a1 := b.Add(s1a, s1b, name+".b1.add")
	// Block 2: avgpool3x3(h') + h2' identity.
	p2 := b.AvgPool(hp, 3, 1, 1, name+".b2.pool")
	a2 := b.Add(p2, h2p, name+".b2.add")
	// Block 3: sep5x5(h2') + h2' identity.
	s3 := b.SepConv(h2p, filters, 5, 1, 2, name+".b3.sep5")
	a3 := b.Add(s3, h2p, name+".b3.add")
	// Block 4: maxpool3x3(h') feeding the concat directly.
	p4 := b.MaxPool(hp, 3, 1, 1, name+".b4.pool")

	return b.Concat(name+".concat", a0, a1, a2, a3, p4)
}

// reductionCell is a stride-2 NASNet-A cell: three blocks of strided
// separable convolutions and poolings, concatenated. 16 operators.
func reductionCell(b *Builder, h, h2 graph.OpID, filters int, name string) graph.OpID {
	hp := b.Conv1x1(h, filters, name+".adjust.h")
	h2p := adjust(b, h2, b.Shape(hp), filters, name+".adjust.h2")

	// Block 0: sep5x5 s2 (h') + sep7x7 s2 (h2').
	s0a := b.SepConv(hp, filters, 5, 2, 2, name+".b0.sep5")
	s0b := b.SepConv(h2p, filters, 7, 2, 3, name+".b0.sep7")
	a0 := b.Add(s0a, s0b, name+".b0.add")
	// Block 1: maxpool3x3 s2 (h') + sep7x7 s2 (h2').
	p1 := b.MaxPool(hp, 3, 2, 1, name+".b1.pool")
	s1 := b.SepConv(h2p, filters, 7, 2, 3, name+".b1.sep7")
	a1 := b.Add(p1, s1, name+".b1.add")
	// Block 2: avgpool3x3 s2 (h') + sep5x5 s2 (h2').
	p2 := b.AvgPool(hp, 3, 2, 1, name+".b2.pool")
	s2 := b.SepConv(h2p, filters, 5, 2, 2, name+".b2.sep5")
	a2 := b.Add(p2, s2, name+".b2.add")

	return b.Concat(name+".concat", a0, a1, a2)
}

// adjust squeezes src to the given filter count and, when its spatial size
// disagrees with want (the previous cell was a reduction), downsamples
// with a strided pointwise convolution.
func adjust(b *Builder, src graph.OpID, want Tensor, filters int, name string) graph.OpID {
	s := b.Shape(src)
	if s.H == want.H && s.W == want.W {
		return b.Conv1x1(src, filters, name)
	}
	// Factorized reduction: strided pointwise convolution. NASNet uses
	// two parallel path convolutions; a single strided 1x1 preserves the
	// shape algebra with one operator. Ceiling division picks the stride
	// that lands on the target grid (e.g. 165 -> 83 needs stride 2).
	stride := (s.H + want.H - 1) / want.H
	if stride < 1 {
		stride = 1
	}
	out := b.Conv(src, filters, 1, 1, stride, stride, 0, 0, name)
	if got := b.Shape(out); got.H != want.H || got.W != want.W {
		panic(fmt.Sprintf("model: adjust %q produced %v, want %dx%d spatial", name, got, want.H, want.W))
	}
	return out
}
