// Package model builds the computation graphs of real convolutional neural
// networks — the paper's two benchmarks, Inception-v3 and NASNet-A — from
// scratch, with per-operator tensor shapes, FLOP counts and memory traffic.
//
// Each operator is priced against a gpu.Device (solo latency and solo
// utilization) and each dependency against a gpu.Link (transfer time of the
// producer's output tensor), so a built Net carries everything the HIOS
// schedulers need in its graph weights. Batch size is fixed at one,
// matching the paper's real-time inference setting.
package model

import (
	"fmt"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/costcache"
	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/units"
)

// Tensor is the shape of one operator output (batch size 1), stored CHW.
type Tensor struct {
	C, H, W int
}

// Elems returns the number of elements.
func (t Tensor) Elems() int64 { return int64(t.C) * int64(t.H) * int64(t.W) }

// Bytes returns the fp32 size in bytes.
func (t Tensor) Bytes() int64 { return 4 * t.Elems() }

// String renders CxHxW.
func (t Tensor) String() string { return fmt.Sprintf("%dx%dx%d", t.C, t.H, t.W) }

// Net is a built network: a finalized weighted graph plus per-operator
// output shapes and the kernel characterizations the weights were priced
// from.
type Net struct {
	// Name identifies the network and input size, e.g.
	// "inception-v3-299".
	Name string
	// G is the weighted computation graph.
	G *graph.Graph
	// Shapes holds each operator's output tensor, indexed by OpID.
	Shapes []Tensor
	// Kernels holds each operator's kernel shape, indexed by OpID.
	Kernels []gpu.Kernel
	// Dev and Link are the platform the weights were priced on.
	Dev  gpu.Device
	Link gpu.Link
}

// Builder incrementally constructs a Net. All Add* methods panic on
// malformed shapes (builders encode static architectures; a shape error is
// a programming bug, not an input error), and Build finalizes the graph.
type Builder struct {
	name    string
	dev     gpu.Device
	link    gpu.Link
	g       *graph.Graph
	shapes  []Tensor
	kernels []gpu.Kernel
}

// NewBuilder returns a Builder pricing operators on dev and transfers on
// link.
func NewBuilder(name string, dev gpu.Device, link gpu.Link) *Builder {
	return &Builder{name: name, dev: dev, link: link, g: graph.New(128, 192)}
}

// Shape returns the output tensor of an already-added operator.
func (b *Builder) Shape(id graph.OpID) Tensor { return b.shapes[id] }

// addOp prices the kernel on the builder's device — through the
// process-wide shape cache, so the repeated cells of NASNet (and
// re-builds of the same benchmark at other sweep points) derive the
// roofline once per distinct shape — and appends the op. The cached
// values are bit-identical to calling the device model directly.
func (b *Builder) addOp(name, kind string, out Tensor, k gpu.Kernel, srcs ...graph.OpID) graph.OpID {
	if out.C <= 0 || out.H <= 0 || out.W <= 0 {
		panic(fmt.Sprintf("model: %s %q produces non-positive shape %v", kind, name, out))
	}
	t, util := costcache.Shared().KernelTime(b.dev, k)
	id := b.g.AddOp(graph.Op{
		Name:  name,
		Kind:  kind,
		Time:  float64(t),
		Util:  util,
		Bytes: out.Bytes(),
	})
	b.shapes = append(b.shapes, out)
	b.kernels = append(b.kernels, k)
	for _, s := range srcs {
		b.g.AddEdge(s, id, float64(costcache.Shared().TransferTime(b.link, units.Bytes(b.shapes[s].Bytes()))))
	}
	return id
}

// Input adds the network input placeholder. It carries no real compute;
// its cost is a single launch overhead (the H2D copy is outside the
// inference window in the paper's measurement, as data is resident).
func (b *Builder) Input(c, h, w int) graph.OpID {
	out := Tensor{C: c, H: h, W: w}
	return b.addOp("input", "input", out, gpu.Kernel{Threads: 1})
}

// Conv adds a 2-D convolution (+ folded bias/activation, as cuDNN fuses
// them) with the given output channels, kernel, stride and padding.
func (b *Builder) Conv(src graph.OpID, outC, kH, kW, sH, sW, pH, pW int, name string) graph.OpID {
	in := b.shapes[src]
	out := Tensor{
		C: outC,
		H: convDim(in.H, kH, sH, pH),
		W: convDim(in.W, kW, sW, pW),
	}
	flops := 2 * float64(kH*kW*in.C) * float64(out.Elems())
	weights := 4 * float64(kH*kW*in.C*outC)
	k := gpu.Kernel{
		FLOPs:   units.FLOPs(flops),
		Bytes:   units.Bytes(float64(in.Bytes()) + weights + float64(out.Bytes())),
		Threads: float64(out.Elems()),
	}
	return b.addOp(name, "conv", out, k, src)
}

// Conv1x1 is a pointwise convolution.
func (b *Builder) Conv1x1(src graph.OpID, outC int, name string) graph.OpID {
	return b.Conv(src, outC, 1, 1, 1, 1, 0, 0, name)
}

// SepConv adds a depthwise-separable convolution as its two constituent
// kernels (depthwise kxk then pointwise 1x1), returning the pointwise op.
// NASNet's cells are built from these.
func (b *Builder) SepConv(src graph.OpID, outC, k, s, p int, name string) graph.OpID {
	in := b.shapes[src]
	dwOut := Tensor{C: in.C, H: convDim(in.H, k, s, p), W: convDim(in.W, k, s, p)}
	dwFlops := 2 * float64(k*k) * float64(dwOut.Elems())
	dw := b.addOp(name+".dw", "conv-dw", dwOut, gpu.Kernel{
		FLOPs:   units.FLOPs(dwFlops),
		Bytes:   units.Bytes(float64(in.Bytes()) + 4*float64(k*k*in.C) + float64(dwOut.Bytes())),
		Threads: float64(dwOut.Elems()),
	}, src)
	return b.Conv1x1(dw, outC, name+".pw")
}

// MaxPool adds a max pooling operator.
func (b *Builder) MaxPool(src graph.OpID, k, s, p int, name string) graph.OpID {
	return b.pool(src, k, s, p, "maxpool", name)
}

// AvgPool adds an average pooling operator.
func (b *Builder) AvgPool(src graph.OpID, k, s, p int, name string) graph.OpID {
	return b.pool(src, k, s, p, "avgpool", name)
}

func (b *Builder) pool(src graph.OpID, k, s, p int, kind, name string) graph.OpID {
	in := b.shapes[src]
	out := Tensor{C: in.C, H: convDim(in.H, k, s, p), W: convDim(in.W, k, s, p)}
	kern := gpu.Kernel{
		FLOPs:   units.FLOPs(float64(k*k) * float64(out.Elems())),
		Bytes:   units.Bytes(float64(in.Bytes()) + float64(out.Bytes())),
		Threads: float64(out.Elems()),
	}
	return b.addOp(name, kind, out, kern, src)
}

// GlobalAvgPool reduces each channel to a single value.
func (b *Builder) GlobalAvgPool(src graph.OpID, name string) graph.OpID {
	in := b.shapes[src]
	out := Tensor{C: in.C, H: 1, W: 1}
	k := gpu.Kernel{
		FLOPs:   units.FLOPs(in.Elems()),
		Bytes:   units.Bytes(float64(in.Bytes()) + float64(out.Bytes())),
		Threads: float64(in.C),
	}
	return b.addOp(name, "globalpool", out, k, src)
}

// Concat joins sources along the channel dimension; spatial dims must
// agree.
func (b *Builder) Concat(name string, srcs ...graph.OpID) graph.OpID {
	if len(srcs) == 0 {
		panic("model: Concat needs at least one source")
	}
	first := b.shapes[srcs[0]]
	out := Tensor{C: 0, H: first.H, W: first.W}
	var bytes float64
	for _, s := range srcs {
		sh := b.shapes[s]
		if sh.H != first.H || sh.W != first.W {
			panic(fmt.Sprintf("model: Concat %q spatial mismatch: %v vs %v", name, first, sh))
		}
		out.C += sh.C
		bytes += float64(sh.Bytes())
	}
	k := gpu.Kernel{
		Bytes:   units.Bytes(2 * bytes), // read every input, write the output
		Threads: float64(out.Elems()),
	}
	return b.addOp(name, "concat", out, k, srcs...)
}

// Add is an elementwise sum of two equally shaped tensors.
func (b *Builder) Add(x, y graph.OpID, name string) graph.OpID {
	sx, sy := b.shapes[x], b.shapes[y]
	if sx != sy {
		panic(fmt.Sprintf("model: Add %q shape mismatch: %v vs %v", name, sx, sy))
	}
	k := gpu.Kernel{
		FLOPs:   units.FLOPs(sx.Elems()),
		Bytes:   units.Bytes(3 * float64(sx.Bytes())),
		Threads: float64(sx.Elems()),
	}
	return b.addOp(name, "add", sx, k, x, y)
}

// Linear adds a fully connected layer over a flattened input.
func (b *Builder) Linear(src graph.OpID, outFeatures int, name string) graph.OpID {
	in := b.shapes[src]
	inF := in.Elems()
	out := Tensor{C: outFeatures, H: 1, W: 1}
	k := gpu.Kernel{
		FLOPs:   units.FLOPs(2 * float64(inF) * float64(outFeatures)),
		Bytes:   units.Bytes(float64(in.Bytes()) + 4*float64(inF)*float64(outFeatures) + float64(out.Bytes())),
		Threads: float64(outFeatures),
	}
	return b.addOp(name, "linear", out, k, src)
}

// Build finalizes and returns the Net.
func (b *Builder) Build() (*Net, error) {
	if err := b.g.Finalize(); err != nil {
		return nil, err
	}
	return &Net{Name: b.name, G: b.g, Shapes: b.shapes, Kernels: b.kernels, Dev: b.dev, Link: b.link}, nil
}

// CachedModel returns a cost.Model pricing the net straight from its
// kernel shapes through the process-wide shape cache. It is bit-identical
// to cost.FromGraph(n.G, ct) for any ct matching the build configuration
// — the graph weights ARE the cached values — but shares every probe
// with other nets in the process.
func (n *Net) CachedModel(ct cost.Contention) (cost.Model, error) {
	out := make([]units.Bytes, len(n.Shapes))
	for i, sh := range n.Shapes {
		out[i] = units.Bytes(sh.Bytes())
	}
	return costcache.NewKernelModel(costcache.Shared(), n.G, n.Dev, n.Link, n.Kernels, out, ct)
}

// MustBuild is Build that panics on error; architecture builders are
// statically valid.
func (b *Builder) MustBuild() *Net {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}

// convDim computes an output spatial dimension, panicking when the
// configuration is degenerate.
func convDim(in, k, s, p int) int {
	if s <= 0 {
		panic("model: stride must be positive")
	}
	out := (in+2*p-k)/s + 1
	if out <= 0 {
		panic(fmt.Sprintf("model: kernel %d stride %d pad %d does not fit input %d", k, s, p, in))
	}
	return out
}

// TotalFLOPs is a diagnostic: approximate total floating-point work of the
// network, reconstructed from operator times and the device model. Used by
// examples to report model scale.
func (n *Net) TotalFLOPs(dev gpu.Device) units.FLOPs {
	var t float64
	for _, op := range n.G.Ops() {
		t += op.Time
	}
	// Reconstruct the datasheet GFLOP/s figure and keep the exact
	// operation order of the pre-units formula (t/1e3 · GFLOPS · 1e9 ·
	// efficiency): the division by 1e9 is exact for datasheet magnitudes,
	// so the result is bit-identical.
	gflops := float64(dev.PeakFLOPs) / 1e9
	return units.FLOPs(t / 1e3 * gflops * 1e9 * dev.Efficiency)
}
