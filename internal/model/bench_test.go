package model

import (
	"testing"

	"github.com/shus-lab/hios/internal/gpu"
)

func BenchmarkBuildInceptionV3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = InceptionV3(gpu.A40(), gpu.NVLinkBridge(), 299)
	}
}

func BenchmarkBuildNASNet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NASNet(gpu.A40(), gpu.NVLinkBridge(), 331)
	}
}
