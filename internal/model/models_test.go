package model

import (
	"testing"

	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/graph"
)

func checkNet(t *testing.T, n *Net, wantClasses int) {
	t.Helper()
	if _, err := n.G.TopoOrder(); err != nil {
		t.Fatalf("%s: %v", n.Name, err)
	}
	if got := len(n.G.Sources()); got != 1 {
		t.Fatalf("%s: sources = %d, want 1", n.Name, got)
	}
	for _, op := range n.G.Ops() {
		if op.Time <= 0 || op.Util <= 0 || op.Util > 1 {
			t.Fatalf("%s: op %s has bad weights (t=%g u=%g)", n.Name, op.Name, op.Time, op.Util)
		}
	}
	if wantClasses > 0 {
		sink := n.G.Sinks()[0]
		if n.Shapes[sink].C != wantClasses {
			t.Fatalf("%s: classifier shape = %v", n.Name, n.Shapes[sink])
		}
	}
	if len(n.Shapes) != n.G.NumOps() {
		t.Fatalf("%s: %d shapes for %d ops", n.Name, len(n.Shapes), n.G.NumOps())
	}
}

func TestSqueezeNetStructure(t *testing.T) {
	n := SqueezeNet(gpu.A40(), gpu.NVLinkBridge(), 224)
	checkNet(t, n, 0)
	// input + stem conv + stem pool + 8 fire modules x 4 ops + 2 mid
	// pools + conv10 + global pool = 39.
	if got := n.G.NumOps(); got != 39 {
		t.Fatalf("ops = %d, want 39", got)
	}
	// The final pooled tensor is 1000-way.
	sink := n.G.Sinks()[0]
	if n.Shapes[sink].C != 1000 {
		t.Fatalf("head shape = %v", n.Shapes[sink])
	}
}

func TestResNet50Structure(t *testing.T) {
	n := ResNet50(gpu.A40(), gpu.NVLinkBridge(), 224)
	checkNet(t, n, 1000)
	// 16 blocks x (3 conv + add) + 4 projection shortcuts + stem
	// (conv + pool) + input + head (pool + fc) = 73.
	if got := n.G.NumOps(); got != 73 {
		t.Fatalf("ops = %d, want 73", got)
	}
	// Nearly a chain: the maximum layer width must be tiny.
	width := 0
	for _, l := range n.G.Layers() {
		if len(l) > width {
			width = len(l)
		}
	}
	if width > 3 {
		t.Fatalf("ResNet width = %d, expected a near-chain", width)
	}
	// Spatial algebra: 224 -> 112 -> 56 -> 56/28/14/7.
	sinkIn := n.G.Sinks()[0]
	_ = sinkIn
}

func TestRandWireStructure(t *testing.T) {
	cfg := DefaultRandWire()
	n, err := RandWire(gpu.A40(), gpu.NVLinkBridge(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkNet(t, n, 1000)
	// 3 stages x 16 nodes x >=3 ops (sep = 2 + aggregation adds) plus
	// stem and head: at least 150.
	if got := n.G.NumOps(); got < 150 {
		t.Fatalf("ops = %d, want >= 150", got)
	}
}

func TestRandWireDeterministic(t *testing.T) {
	cfg := DefaultRandWire()
	a, err := RandWire(gpu.A40(), gpu.NVLinkBridge(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandWire(gpu.A40(), gpu.NVLinkBridge(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumOps() != b.G.NumOps() || a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("same seed produced different wiring")
	}
	cfg.Seed = 2
	c, err := RandWire(gpu.A40(), gpu.NVLinkBridge(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.G.NumEdges() == a.G.NumEdges() && c.G.NumOps() == a.G.NumOps() {
		// Same counts are possible but full equality of names is not.
		same := true
		for i := range c.G.Ops() {
			if c.G.Op(graph.OpID(i)).Time != a.G.Op(graph.OpID(i)).Time {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical networks")
		}
	}
}

func TestRandWireConfigValidation(t *testing.T) {
	dev, link := gpu.A40(), gpu.NVLinkBridge()
	bad := []RandWireConfig{
		{InputSize: 0, Channels: 78, NodesPerStage: 8, K: 4},
		{InputSize: 224, Channels: 0, NodesPerStage: 8, K: 4},
		{InputSize: 224, Channels: 78, NodesPerStage: 1, K: 4},
		{InputSize: 224, Channels: 78, NodesPerStage: 8, K: 3},
		{InputSize: 224, Channels: 78, NodesPerStage: 8, K: 8},
		{InputSize: 224, Channels: 78, NodesPerStage: 8, K: 4, P: 1.5},
	}
	for i, cfg := range bad {
		if _, err := RandWire(dev, link, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRandWireWiderThanResNet(t *testing.T) {
	rw, err := RandWire(gpu.A40(), gpu.NVLinkBridge(), DefaultRandWire())
	if err != nil {
		t.Fatal(err)
	}
	rn := ResNet50(gpu.A40(), gpu.NVLinkBridge(), 224)
	width := func(n *Net) int {
		w := 0
		for _, l := range n.G.Layers() {
			if len(l) > w {
				w = len(l)
			}
		}
		return w
	}
	if width(rw) <= width(rn) {
		t.Fatalf("RandWire width %d should exceed ResNet width %d", width(rw), width(rn))
	}
}
