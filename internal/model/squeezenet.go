package model

import (
	"fmt"

	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/graph"
)

// SqueezeNet builds SqueezeNet v1.1 (Iandola et al., 2016) at the given
// square input size. SqueezeNet is part of the IOS paper's benchmark set
// (alongside Inception-v3, RandWire and NASNet), and its fire modules —
// a 1x1 squeeze followed by parallel 1x1 and 3x3 expands — give a shallow
// but branch-regular graph that the intra-GPU window pass handles almost
// entirely on its own, making it a useful contrast to the NASNet extreme.
//
// Canonical input size is 224.
func SqueezeNet(dev gpu.Device, link gpu.Link, inputSize int) *Net {
	b := NewBuilder(fmt.Sprintf("squeezenet-%d", inputSize), dev, link)

	in := b.Input(3, inputSize, inputSize)
	x := b.Conv(in, 64, 3, 3, 2, 2, 0, 0, "stem.conv")
	x = b.MaxPool(x, 3, 2, 0, "stem.pool")

	x = fire(b, x, 16, 64, "fire2")
	x = fire(b, x, 16, 64, "fire3")
	x = b.MaxPool(x, 3, 2, 0, "pool3")
	x = fire(b, x, 32, 128, "fire4")
	x = fire(b, x, 32, 128, "fire5")
	x = b.MaxPool(x, 3, 2, 0, "pool5")
	x = fire(b, x, 48, 192, "fire6")
	x = fire(b, x, 48, 192, "fire7")
	x = fire(b, x, 64, 256, "fire8")
	x = fire(b, x, 64, 256, "fire9")

	x = b.Conv1x1(x, 1000, "head.conv10")
	x = b.GlobalAvgPool(x, "head.pool")
	_ = x
	return b.MustBuild()
}

// fire is one SqueezeNet module: squeeze to squeezeC channels, expand in
// parallel through 1x1 and 3x3 convolutions, concatenate.
func fire(b *Builder, x graph.OpID, squeezeC, expandC int, name string) graph.OpID {
	s := b.Conv1x1(x, squeezeC, name+".squeeze")
	e1 := b.Conv1x1(s, expandC, name+".expand1x1")
	e3 := b.Conv(s, expandC, 3, 3, 1, 1, 1, 1, name+".expand3x3")
	return b.Concat(name+".concat", e1, e3)
}
