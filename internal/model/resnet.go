package model

import (
	"fmt"

	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/graph"
)

// ResNet50 builds ResNet-50 (He et al., CVPR 2016) at the given square
// input size (canonical: 224). ResNet's bottleneck blocks have exactly
// two branches — the residual path and the identity/projection shortcut —
// so the graph is nearly a chain: it is the degenerate case for
// inter-operator parallelism and serves as the control benchmark where
// HIOS-LP should gain little over sequential execution (every scheduler
// is bound by the same long dependency chain).
func ResNet50(dev gpu.Device, link gpu.Link, inputSize int) *Net {
	b := NewBuilder(fmt.Sprintf("resnet50-%d", inputSize), dev, link)

	in := b.Input(3, inputSize, inputSize)
	x := b.Conv(in, 64, 7, 7, 2, 2, 3, 3, "stem.conv")
	x = b.MaxPool(x, 3, 2, 1, "stem.pool")

	// (blocks, mid channels, out channels, first stride) per stage.
	stages := []struct {
		blocks, mid, out, stride int
	}{
		{3, 64, 256, 1},
		{4, 128, 512, 2},
		{6, 256, 1024, 2},
		{3, 512, 2048, 2},
	}
	for si, st := range stages {
		for bi := 0; bi < st.blocks; bi++ {
			stride := 1
			if bi == 0 {
				stride = st.stride
			}
			x = bottleneck(b, x, st.mid, st.out, stride, fmt.Sprintf("layer%d.%d", si+1, bi))
		}
	}
	x = b.GlobalAvgPool(x, "head.pool")
	b.Linear(x, 1000, "head.fc")
	return b.MustBuild()
}

// bottleneck is one ResNet bottleneck block: 1x1 reduce, 3x3, 1x1 expand,
// plus an identity or 1x1-projection shortcut, joined by an elementwise
// add.
func bottleneck(b *Builder, x graph.OpID, mid, out, stride int, name string) graph.OpID {
	r := b.Conv1x1(x, mid, name+".reduce")
	if stride > 1 {
		// Strided variant of the middle conv handles downsampling.
		r = b.Conv(r, mid, 3, 3, stride, stride, 1, 1, name+".conv3x3")
	} else {
		r = b.Conv(r, mid, 3, 3, 1, 1, 1, 1, name+".conv3x3")
	}
	r = b.Conv1x1(r, out, name+".expand")

	short := x
	if b.Shape(x).C != out || stride > 1 {
		short = b.Conv(x, out, 1, 1, stride, stride, 0, 0, name+".shortcut")
	}
	return b.Add(r, short, name+".add")
}
