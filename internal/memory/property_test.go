package memory

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
)

// TestMemoryInvariantsProperty checks, over random graphs with random
// tensor sizes and random placements:
//
//   - the analysis never errors on a valid schedule (accounting balances);
//   - every GPU's peak is at least the largest single tensor placed on it
//     and at most the total bytes of all tensors (copies included);
//   - an all-on-one-GPU placement needs no cross-GPU copies, so its peak
//     is bounded by the sum of all tensor sizes.
func TestMemoryInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randdag.Paper()
		cfg.Ops = 6 + rng.Intn(30)
		cfg.Layers = 2 + rng.Intn(5)
		cfg.Deps = cfg.Ops
		cfg.Seed = seed
		g0 := randdag.MustGenerate(cfg)
		// Rebuild with random tensor sizes (randdag leaves Bytes 0).
		g := graph.New(g0.NumOps(), g0.NumEdges())
		var total int64
		for _, op := range g0.Ops() {
			op.Bytes = int64(rng.Intn(1000))
			total += op.Bytes
			g.AddOp(op)
		}
		for _, e := range g0.Edges() {
			g.AddEdge(e.From, e.To, e.Time)
		}
		g.MustFinalize()
		m := cost.FromGraph(g, cost.DefaultContention())

		gpus := 1 + rng.Intn(4)
		place := make([]int, g.NumOps())
		for i := range place {
			place[i] = rng.Intn(gpus)
		}
		s := sched.FromPlacement(gpus, g.ByPriority(), place)
		rep, err := Analyze(g, m, s)
		if err != nil {
			return false
		}
		// Peak per GPU >= biggest tensor produced there; total peaks
		// bounded by total bytes plus one copy per cross edge.
		var crossCopies int64
		for _, e := range g.Edges() {
			if place[e.From] != place[e.To] {
				crossCopies += g.Op(e.From).Bytes
			}
		}
		var sumPeaks int64
		for gi, peak := range rep.PeakBytes {
			var biggest int64
			for v := 0; v < g.NumOps(); v++ {
				if place[v] == gi && g.Op(graph.OpID(v)).Bytes > biggest {
					biggest = g.Op(graph.OpID(v)).Bytes
				}
			}
			if peak < biggest {
				return false
			}
			sumPeaks += peak
		}
		return sumPeaks <= total+crossCopies
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
