package memory

import (
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/model"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/lp"
	"github.com/shus-lab/hios/internal/sched/seq"
)

func chain(t *testing.T) (*graph.Graph, cost.Model) {
	t.Helper()
	g := graph.New(3, 2)
	a := g.AddOp(graph.Op{Name: "a", Time: 1, Bytes: 100})
	b := g.AddOp(graph.Op{Name: "b", Time: 1, Bytes: 200})
	c := g.AddOp(graph.Op{Name: "c", Time: 1, Bytes: 50})
	g.AddEdge(a, b, 0.5)
	g.AddEdge(b, c, 0.5)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g, cost.FromGraph(g, cost.DefaultContention())
}

func TestChainSingleGPU(t *testing.T) {
	g, m := chain(t)
	s := sched.Sequential(g.ByPriority())
	rep, err := Analyze(g, m, s)
	if err != nil {
		t.Fatal(err)
	}
	// Buffers are allocated at producer start and freed at the last
	// consumer's finish:
	//   a (100): [0, 2] (b, its consumer, finishes at 2)
	//   b (200): [1, 3]
	//   c  (50): [2, 3] (network output lives to the makespan)
	// Peak = a + b = 300 during [1, 2).
	if rep.PeakBytes[0] != 300 {
		t.Fatalf("peak = %d, want 300", rep.PeakBytes[0])
	}
	if rep.PeakAt[0] != 1 {
		t.Fatalf("peak at %g, want 1", rep.PeakAt[0])
	}
}

func TestCrossGPUCopies(t *testing.T) {
	g, m := chain(t)
	s := sched.New(2)
	s.Append(0, 0)
	s.Append(1, 1)
	s.Append(0, 2)
	rep, err := Analyze(g, m, s)
	if err != nil {
		t.Fatal(err)
	}
	// GPU0 holds a until its transfer completes, then b's copy (arrives
	// for c) plus the output c. GPU1 holds a's copy plus b.
	if rep.PeakBytes[0] <= 0 || rep.PeakBytes[1] <= 0 {
		t.Fatalf("peaks = %v, both GPUs hold tensors", rep.PeakBytes)
	}
	// GPU1's peak: a's copy (100) + b (200) live simultaneously while b
	// waits to be shipped: 300.
	if rep.PeakBytes[1] != 300 {
		t.Fatalf("GPU1 peak = %d, want 300", rep.PeakBytes[1])
	}
	if rep.MaxPeak() != 300 {
		t.Fatalf("MaxPeak = %d", rep.MaxPeak())
	}
	if !rep.Fits(300) || rep.Fits(299) {
		t.Fatal("Fits threshold wrong")
	}
}

func TestZeroByteGraphs(t *testing.T) {
	g := graph.New(2, 1)
	a := g.AddOp(graph.Op{Time: 1})
	b := g.AddOp(graph.Op{Time: 1})
	g.AddEdge(a, b, 0.1)
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())
	s := sched.Sequential(g.ByPriority())
	rep, err := Analyze(g, m, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxPeak() != 0 {
		t.Fatalf("byte-less graph peak = %d", rep.MaxPeak())
	}
}

func TestRejectsInvalidSchedule(t *testing.T) {
	g, m := chain(t)
	s := sched.New(1)
	s.Append(0, 0)
	if _, err := Analyze(g, m, s); err == nil {
		t.Fatal("accepted an incomplete schedule")
	}
}

func TestInceptionFitsA40(t *testing.T) {
	plat := gpu.DualA40()
	net := model.InceptionV3(plat.Dev, plat.Link, 1024)
	m := cost.FromGraph(net.G, cost.DefaultContention())
	res, err := lp.Schedule(net.G, m, lp.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(net.G, m, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxPeak() <= 0 {
		t.Fatal("Inception tensors should occupy memory")
	}
	// 48 GB per A40; activations at 1024px are far below that.
	if !rep.Fits(48 << 30) {
		t.Fatalf("peak %d bytes should fit a 48 GB A40", rep.MaxPeak())
	}
}

func TestMultiGPUSplitsFootprint(t *testing.T) {
	// Splitting a model across two GPUs should not increase the total
	// peak by more than the duplicated boundary tensors; sanity-check
	// that the per-GPU peak under LP is below the sequential peak plus
	// a margin.
	plat := gpu.DualA40()
	net := model.InceptionV3(plat.Dev, plat.Link, 512)
	m := cost.FromGraph(net.G, cost.DefaultContention())

	sq, err := seq.Schedule(net.G, m)
	if err != nil {
		t.Fatal(err)
	}
	seqRep, err := Analyze(net.G, m, sq.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	lpRes, err := lp.Schedule(net.G, m, lp.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	lpRep, err := Analyze(net.G, m, lpRes.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if lpRep.MaxPeak() > 2*seqRep.MaxPeak() {
		t.Fatalf("multi-GPU peak %d implausibly above sequential %d", lpRep.MaxPeak(), seqRep.MaxPeak())
	}
}
