// Package memory accounts the per-GPU device-memory footprint of a
// schedule. The paper motivates its scope with GPU memory capacity (§II:
// intra-operator partitioning is only needed "when the memory size of a
// single GPU is insufficient"), and any production deployment of a
// multi-GPU schedule must check that placing operators on a device does
// not overflow it — tensors live on their producer's GPU from the moment
// the producer's stage finishes until their last consumer's stage
// finishes, and additionally on every consumer GPU from arrival to
// consumption.
//
// The analysis walks an evaluated schedule's timeline and reports, per
// GPU, the peak sum of resident tensor sizes plus the weight/workspace
// bytes of the operators placed there.
package memory

import (
	"fmt"
	"sort"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/units"
)

// Report is the memory analysis of one schedule.
type Report struct {
	// PeakBytes is the peak resident tensor footprint per GPU.
	PeakBytes []int64
	// PeakAt is the time at which each GPU reaches its peak.
	PeakAt []units.Millis
	// ResidentOps counts tensors contributing to each GPU's peak.
	ResidentOps []int
}

// MaxPeak returns the largest per-GPU peak.
func (r *Report) MaxPeak() int64 {
	var m int64
	for _, b := range r.PeakBytes {
		if b > m {
			m = b
		}
	}
	return m
}

// Fits reports whether every GPU's peak stays within the given capacity.
func (r *Report) Fits(capacityBytes int64) bool {
	return r.MaxPeak() <= capacityBytes
}

// event is a +bytes/-bytes step on one GPU's resident set.
type event struct {
	at    units.Millis
	delta int64
	dops  int
}

// Analyze computes the Report for schedule s of graph g under cost model
// m. Tensor sizes come from each operator's Bytes field; operators with
// zero Bytes contribute nothing (graphs without tensor semantics, such as
// the random simulation models, then yield all-zero reports).
//
// Lifetime model:
//
//   - a tensor's buffer is allocated on its producer's GPU when the
//     producer's stage starts (the kernel writes into it);
//   - it stays resident there until the last local consumer's stage
//     finishes, and at least until the last outbound transfer of it
//     completes;
//   - each consumer GPU holds a copy from the tensor's arrival until the
//     last consuming stage on that GPU finishes;
//   - network outputs (no consumers) stay resident through the makespan.
func Analyze(g *graph.Graph, m cost.Model, s *sched.Schedule) (*Report, error) {
	tm, err := sched.Evaluate(g, m, s)
	if err != nil {
		return nil, fmt.Errorf("memory: %w", err)
	}
	n := g.NumOps()
	gpus := len(s.GPUs)
	place := s.Placement(n)

	evs := make([][]event, gpus)
	push := func(gpu int, at units.Millis, delta int64, dops int) {
		evs[gpu] = append(evs[gpu], event{at: at, delta: delta, dops: dops})
	}

	for v := 0; v < n; v++ {
		bytes := g.Op(graph.OpID(v)).Bytes
		if bytes <= 0 {
			continue
		}
		pg := place[v]
		born := tm.OpStart[v]
		produced := tm.OpFinish[v]

		// Last use on the producer GPU, and arrival/last-use per
		// remote GPU.
		localDeath := produced
		remoteDeath := map[int]units.Millis{}
		remoteBirth := map[int]units.Millis{}
		hasConsumer := false
		g.Succs(graph.OpID(v), func(u graph.OpID, _ float64) {
			hasConsumer = true
			cg := place[u]
			if cg == pg {
				if tm.OpFinish[u] > localDeath {
					localDeath = tm.OpFinish[u]
				}
				return
			}
			arrive := produced + cost.CommBetween(m, graph.OpID(v), u, pg, cg)
			// The producer GPU must keep the tensor until the
			// transfer completes.
			if arrive > localDeath {
				localDeath = arrive
			}
			if b, ok := remoteBirth[cg]; !ok || arrive < b {
				remoteBirth[cg] = arrive
			}
			if d := tm.OpFinish[u]; d > remoteDeath[cg] {
				remoteDeath[cg] = d
			}
		})
		if !hasConsumer {
			localDeath = tm.Latency // network output
		}
		push(pg, born, bytes, 1)
		push(pg, localDeath, -bytes, -1)
		for cg, death := range remoteDeath {
			push(cg, remoteBirth[cg], bytes, 1)
			push(cg, death, -bytes, -1)
		}
	}

	rep := &Report{
		PeakBytes:   make([]int64, gpus),
		PeakAt:      make([]units.Millis, gpus),
		ResidentOps: make([]int, gpus),
	}
	for gi := range evs {
		es := evs[gi]
		sort.Slice(es, func(a, b int) bool {
			if es[a].at != es[b].at {
				return es[a].at < es[b].at
			}
			// Process releases before allocations at equal times:
			// a consumer finishing exactly when another tensor is
			// born should not double-count.
			return es[a].delta < es[b].delta
		})
		var cur int64
		var ops int
		for _, e := range es {
			cur += e.delta
			ops += e.dops
			if cur > rep.PeakBytes[gi] {
				rep.PeakBytes[gi] = cur
				rep.PeakAt[gi] = e.at
				rep.ResidentOps[gi] = ops
			}
		}
		if cur != 0 {
			return nil, fmt.Errorf("memory: GPU %d accounting unbalanced by %d bytes", gi, cur)
		}
	}
	return rep, nil
}
