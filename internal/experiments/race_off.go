//go:build !race

package experiments

// raceEnabled: see race_on.go.
const raceEnabled = false
