package experiments

import (
	"errors"
	"fmt"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/parallel"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched/bnb"
	"github.com/shus-lab/hios/internal/sched/lp"
	"github.com/shus-lab/hios/internal/sched/mr"
	"github.com/shus-lab/hios/internal/stats"
)

// OptimalityGap is a study the paper does not include but its claims
// invite: on graphs small enough for the exact branch-and-bound reference
// (package bnb), how far are HIOS-LP's and HIOS-MR's inter-GPU mappings
// from the optimal placement under the same temporal rule? The result is
// a figure with the mean latency ratio heuristic/optimal per GPU count
// (1.0 = always optimal).
func OptimalityGap(seeds, ops int) (Figure, error) {
	if ops <= 0 {
		ops = 18
	}
	if ops > bnb.MaxOps {
		return Figure{}, fmt.Errorf("experiments: %d ops exceeds the exact-search limit %d", ops, bnb.MaxOps)
	}
	if seeds <= 0 {
		seeds = 10
	}
	xs := []float64{2, 3, 4}
	fig := Figure{
		ID:     "OptimalityGap",
		Title:  fmt.Sprintf("heuristic/optimal latency ratio on %d-operator models", ops),
		XLabel: "gpus",
		YLabel: "latency ratio (1.0 = optimal)",
	}
	gapLP := make([]*stats.Sample, len(xs))
	gapMR := make([]*stats.Sample, len(xs))
	for i := range xs {
		gapLP[i] = &stats.Sample{}
		gapMR[i] = &stats.Sample{}
	}
	// One pool task per (gpu count, seed) cell; the exact branch-and-bound
	// reference dominates each task's cost, so the cells parallelize well.
	cells, err := parallel.Map(len(xs)*seeds, 0, func(t int) ([2]float64, error) {
		gpus := int(xs[t/seeds])
		cfg := randdag.Paper()
		cfg.Ops = ops
		cfg.Layers = 4
		cfg.Deps = 2 * ops
		cfg.Seed = int64(t%seeds) + 1
		g, err := randdag.Generate(cfg)
		if err != nil {
			return [2]float64{}, err
		}
		m := cost.FromGraph(g, cost.DefaultContention())
		opt, err := bnb.Schedule(g, m, bnb.Options{GPUs: gpus, MaxNodes: 20_000_000})
		if err != nil && !errors.Is(err, bnb.ErrTruncated) {
			return [2]float64{}, err
		}
		lpRes, err := lp.Schedule(g, m, lp.Options{GPUs: gpus, InterOnly: true})
		if err != nil {
			return [2]float64{}, err
		}
		mrRes, err := mr.Schedule(g, m, mr.Options{GPUs: gpus, InterOnly: true})
		if err != nil {
			return [2]float64{}, err
		}
		return [2]float64{lpRes.Latency.Ratio(opt.Latency), mrRes.Latency.Ratio(opt.Latency)}, nil
	})
	if err != nil {
		return Figure{}, err
	}
	for t, ratios := range cells {
		i := t / seeds
		gapLP[i].Add(ratios[0])
		gapMR[i].Add(ratios[1])
	}
	fig.Series = []Series{
		collect(AlgoInterLP, xs, gapLP),
		collect(AlgoInterMR, xs, gapMR),
	}
	return fig, nil
}
