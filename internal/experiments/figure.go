// Package experiments regenerates every figure of the HIOS paper's
// evaluation (§V simulation, §VI real-system experiments) against this
// repository's simulated substrate. Each FigNN function returns a Figure —
// the same series the paper plots — which cmd/hios-sim and cmd/hios-exp
// print and bench_test.go exercises.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/shus-lab/hios/internal/stats"
)

// Point is one x position of one series.
type Point struct {
	X    float64
	Mean float64
	Std  float64
}

// Series is one curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is one reproduced paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// At returns the mean of the labelled series at x, and whether it exists.
func (f *Figure) At(label string, x float64) (float64, bool) {
	for _, s := range f.Series {
		if s.Label != label {
			continue
		}
		for _, p := range s.Points {
			if stats.ApproxEqual(p.X, x, 0) {
				return p.Mean, true
			}
		}
	}
	return 0, false
}

// Labels returns the series labels in order.
func (f *Figure) Labels() []string {
	out := make([]string, len(f.Series))
	for i, s := range f.Series {
		out[i] = s.Label
	}
	return out
}

// Render writes the figure as an aligned text table, one row per x value.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "# x = %s, y = %s (mean±std)\n", f.XLabel, f.YLabel)
	if len(f.Series) == 0 {
		fmt.Fprintln(w, "(empty)")
		return
	}
	header := fmt.Sprintf("%-10s", f.XLabel)
	for _, s := range f.Series {
		header += fmt.Sprintf("  %-22s", s.Label)
	}
	fmt.Fprintln(w, strings.TrimRight(header, " "))
	for i, p := range f.Series[0].Points {
		row := fmt.Sprintf("%-10.4g", p.X)
		for _, s := range f.Series {
			if i < len(s.Points) {
				cell := fmt.Sprintf("%.4g", s.Points[i].Mean)
				if s.Points[i].Std > 0 {
					cell += fmt.Sprintf("±%.3g", s.Points[i].Std)
				}
				row += fmt.Sprintf("  %-22s", cell)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(row, " "))
	}
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var b strings.Builder
	f.Render(&b)
	return b.String()
}

// RenderJSON writes the figure as indented JSON, for machine consumption
// (plotting scripts, CI dashboards).
func (f *Figure) RenderJSON(w io.Writer) error {
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}

// collect turns per-x samples into a series.
func collect(label string, xs []float64, samples []*stats.Sample) Series {
	s := Series{Label: label}
	for i, x := range xs {
		s.Points = append(s.Points, Point{X: x, Mean: samples[i].Mean(), Std: samples[i].Std()})
	}
	return s
}
