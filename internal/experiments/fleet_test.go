package experiments

import (
	"runtime"
	"strings"
	"testing"

	"github.com/shus-lab/hios/internal/cluster"
	"github.com/shus-lab/hios/internal/units"
)

// fastFleet is the sweep configuration the cluster tests pin: a small
// input size keeps the per-platform schedule construction fast and a
// shrunk request count keeps each cell cheap, while preserving the
// qualitative shape.
func fastFleet() FleetSweepOptions {
	return FleetSweepOptions{
		Seeds:     2,
		Sizes:     []int{2, 4},
		Requests:  4000,
		InputSize: 64,
	}
}

// TestAttainmentVsFleetShape pins the acceptance shape of the cluster
// sweep: attainment stays in [0, 1] for every router, and at every
// fleet size the informed least-load router attains at least the random
// baseline (the router-dominance property on shared seeded traces).
func TestAttainmentVsFleetShape(t *testing.T) {
	fig, err := AttainmentVsFleet(fastFleet())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(cluster.RouterPolicies()) {
		t.Fatalf("series count %d, want %d", len(fig.Series), len(cluster.RouterPolicies()))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s: %d points, want 2", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Mean < 0 || p.Mean > 1 {
				t.Errorf("%s: attainment %g at x=%g out of [0,1]", s.Label, p.Mean, p.X)
			}
		}
	}
	for _, size := range fastFleet().Sizes {
		x := float64(size)
		ll, ok := fig.At(string(cluster.RouterLeastLoad), x)
		if !ok {
			t.Fatalf("least-load series missing x=%g", x)
		}
		rnd, ok := fig.At(string(cluster.RouterRandom), x)
		if !ok {
			t.Fatalf("random series missing x=%g", x)
		}
		if ll+1e-12 < rnd {
			t.Errorf("size %d: least-load attainment %g below random %g", size, ll, rnd)
		}
	}
}

// TestAttainmentVsFleetParallelMatchesSerial extends the DESIGN.md §7
// determinism contract to the cluster sweep: serial reference and
// oversubscribed pool render byte-identical Serve2 figures.
func TestAttainmentVsFleetParallelMatchesSerial(t *testing.T) {
	serial := fastFleet()
	serial.Workers = 1
	wide := fastFleet()
	wide.Workers = runtime.GOMAXPROCS(0) + 3

	sFig, err := AttainmentVsFleet(serial)
	if err != nil {
		t.Fatal(err)
	}
	wFig, err := AttainmentVsFleet(wide)
	if err != nil {
		t.Fatal(err)
	}
	sOut, wOut := renderBoth(t, sFig), renderBoth(t, wFig)
	if sOut != wOut {
		t.Fatalf("AttainmentVsFleet diverges between serial and parallel sweeps:\n--- serial ---\n%s\n--- parallel ---\n%s", sOut, wOut)
	}
	// And across repeated runs of the same width.
	rFig, err := AttainmentVsFleet(wide)
	if err != nil {
		t.Fatal(err)
	}
	if renderBoth(t, rFig) != wOut {
		t.Fatal("AttainmentVsFleet diverges across repeated runs")
	}
}

func TestFleetSweepOptionsValidate(t *testing.T) {
	bad := []FleetSweepOptions{
		{Seeds: -1},
		{Requests: -1},
		{Load: -0.5},
		{Replicas: -1},
		{GPUs: -2},
		{Window: -1},
		{InputSize: -64},
		{Workers: -3},
		{Sizes: []int{4, 0}},
		{Routers: []cluster.RouterPolicy{"round-robin"}},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, o)
		}
		if _, err := AttainmentVsFleet(o); err == nil {
			t.Errorf("case %d: AttainmentVsFleet accepted %+v", i, o)
		}
	}
	if err := (FleetSweepOptions{}).Validate(); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
}

// The figure labels must enumerate the router registry in declaration
// order, the order EXPERIMENTS.md documents.
func TestAttainmentVsFleetLabels(t *testing.T) {
	opt := fastFleet()
	opt.Seeds = 1
	opt.Sizes = []int{2}
	fig, err := AttainmentVsFleet(opt)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{}
	for _, r := range cluster.RouterPolicies() {
		want = append(want, string(r))
	}
	got := fig.Labels()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("labels = %v, want %v", got, want)
	}
}

// TestServe2EventFloor verifies the headline experiment's scale claim
// arithmetically and empirically: at the default request count a single
// Serve2 cell processes at least 1e6 simulation events. The cell is run
// directly through cluster.Run with the sweep's own fleet shape so the
// test doesn't pay for per-platform schedule construction.
func TestServe2EventFloor(t *testing.T) {
	def := FleetSweepOptions{}
	def.fill()
	opt := cluster.Options{
		Fleet: fleetSpec(def.Sizes[0], def.Replicas),
		Deployments: []cluster.Deployment{{Name: "m", Profiles: []cluster.Profile{
			{Platform: "a40", Latency: 4, Period: 2, Busy: 3},
			{Platform: "a5500", Latency: 5, Period: 2.5, Busy: 3.75},
			{Platform: "v100s", Latency: 8, Period: 4, Busy: 6},
		}}},
		Seed: 1,
	}
	rate := def.Load * opt.Capacity(0)
	opt.Horizon = units.Millis(float64(def.Requests) * 1e3 / rate)
	opt.Tenants = []cluster.Tenant{
		{Name: "interactive", Deadline: 16, Rate: 0.6 * rate},
		{Name: "batch", Deadline: 48, Rate: 0.4 * rate},
	}
	r, err := cluster.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events < 1_000_000 {
		t.Fatalf("default Serve2 cell processed %d events, want >= 1e6", r.Events)
	}
	if r.Events != int64(3*r.Admitted) {
		t.Fatalf("events %d != 3 x admitted %d (the documented per-request event count)", r.Events, r.Admitted)
	}
}

// The fleet-sweep benchmark pair mirrors BenchmarkServeSweep*: the
// Width1/FullWidth ratio gauges the parallel engine's efficiency on the
// cluster workload (BENCH_seed.json tracks the baseline).
func benchFleetSweep(b *testing.B, workers int) {
	b.Helper()
	opt := fastFleet()
	opt.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AttainmentVsFleet(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServe2Width1(b *testing.B)    { benchFleetSweep(b, 1) }
func BenchmarkServe2FullWidth(b *testing.B) { benchFleetSweep(b, 0) }
