package experiments

import (
	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/parallel"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/lp"
	"github.com/shus-lab/hios/internal/stats"
)

// ClusterStudy extends the paper's SMP setting to the multi-node clusters
// its introduction motivates: a two-node, two-GPUs-per-node platform where
// inter-node transfers cost interFactor times the intra-node baseline. It
// compares topology-aware HIOS-LP (scheduling against the hierarchical
// cost model, so trial mappings see the true pair costs) with
// topology-blind HIOS-LP (scheduling against the flat model, then
// measured on the hierarchical platform), across inter-node cost factors.
//
// The gap between the two curves is the value of topology awareness;
// it must be >= 0 at every factor and grow as inter-node links slow down.
func ClusterStudy(opt SimOptions) (Figure, error) {
	opt.fill()
	factors := []float64{1, 2, 4, 8, 16}
	const nodes, perNode = 2, 2
	fig := Figure{
		ID:     "Cluster",
		Title:  "topology-aware vs topology-blind HIOS-LP on a 2x2 cluster",
		XLabel: "inter_node_factor",
		YLabel: "latency_ms",
	}
	aware := make([]*stats.Sample, len(factors))
	blind := make([]*stats.Sample, len(factors))
	for i := range factors {
		aware[i] = &stats.Sample{}
		blind[i] = &stats.Sample{}
	}
	type row struct {
		aware, blind []float64
	}
	rows, err := parallel.Map(opt.Seeds, opt.Workers, func(t int) (row, error) {
		cfg := randdag.Paper()
		cfg.Seed = int64(t) + 1
		g, err := randdag.Generate(cfg)
		if err != nil {
			return row{}, err
		}
		flat := cost.FromGraph(g, cost.DefaultContention())
		// Blind: one schedule decided on the flat model, reused at
		// every factor (the scheduler does not know the topology).
		blindRes, err := lp.Schedule(g, flat, lp.Options{GPUs: nodes * perNode})
		if err != nil {
			return row{}, err
		}
		r := row{aware: make([]float64, len(factors)), blind: make([]float64, len(factors))}
		for i, f := range factors {
			topo := cost.WithTopology(flat, gpu.TwoLevel(nodes, perNode, f))
			awareRes, err := lp.Schedule(g, topo, lp.Options{GPUs: nodes * perNode})
			if err != nil {
				return row{}, err
			}
			r.aware[i] = float64(awareRes.Latency)
			blindLat, err := sched.Latency(g, topo, blindRes.Schedule)
			if err != nil {
				return row{}, err
			}
			r.blind[i] = float64(blindLat)
		}
		return r, nil
	})
	if err != nil {
		return Figure{}, err
	}
	for _, r := range rows {
		for i := range factors {
			aware[i].Add(r.aware[i])
			blind[i].Add(r.blind[i])
		}
	}
	fig.Series = []Series{
		collect("hios-lp-topology-aware", factors, aware),
		collect("hios-lp-topology-blind", factors, blind),
	}
	return fig, nil
}
