package experiments

import (
	"runtime"
	"strings"
	"testing"
)

// renderBoth returns the text and JSON renderings of a figure, so the
// equivalence tests compare every byte a consumer could observe.
func renderBoth(t *testing.T, fig Figure) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(fig.String())
	if err := fig.RenderJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestFig7ParallelMatchesSerial pins the determinism contract of the
// parallel sweep engine (DESIGN.md §7): the same sweep run on the serial
// reference path (Workers = 1) and on an oversubscribed worker pool must
// render byte-identical output — same values, same ordering, down to the
// last ULP of every mean and standard deviation.
func TestFig7ParallelMatchesSerial(t *testing.T) {
	serial := fastSim()
	serial.Workers = 1
	wide := fastSim()
	// Oversubscribe so completion order differs from submission order
	// even on a single-core runner.
	wide.Workers = runtime.GOMAXPROCS(0) + 3

	sFig, err := Fig7(serial)
	if err != nil {
		t.Fatal(err)
	}
	wFig, err := Fig7(wide)
	if err != nil {
		t.Fatal(err)
	}
	sOut, wOut := renderBoth(t, sFig), renderBoth(t, wFig)
	if sOut != wOut {
		t.Fatalf("Fig7 diverges between serial and parallel sweeps:\n--- serial ---\n%s\n--- parallel ---\n%s", sOut, wOut)
	}
}

// TestAblationWindowParallelMatchesSerial is the same contract for the
// ablation driver, whose merge path (per-seed rows folded in seed order)
// differs from the figure sweeps'.
func TestAblationWindowParallelMatchesSerial(t *testing.T) {
	serial := fastSim()
	serial.Workers = 1
	wide := fastSim()
	wide.Workers = runtime.GOMAXPROCS(0) + 3

	sFig, err := AblationWindow(serial)
	if err != nil {
		t.Fatal(err)
	}
	wFig, err := AblationWindow(wide)
	if err != nil {
		t.Fatal(err)
	}
	sOut, wOut := renderBoth(t, sFig), renderBoth(t, wFig)
	if sOut != wOut {
		t.Fatalf("AblationWindow diverges between serial and parallel sweeps:\n--- serial ---\n%s\n--- parallel ---\n%s", sOut, wOut)
	}
}
