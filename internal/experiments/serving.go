package experiments

import (
	"fmt"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/parallel"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/serve"
	"github.com/shus-lab/hios/internal/stats"
	"github.com/shus-lab/hios/internal/units"
)

// ServeSweepOptions parameterizes the online-serving attainment sweep.
// The zero value of every field selects a documented default; Validate
// reports structural violations.
type ServeSweepOptions struct {
	// Seeds is the number of independent arrival traces averaged per
	// data point (0 = 8).
	Seeds int
	// GPUs is M, the devices one pipeline replica spans under the
	// multi-GPU schedulers (0 = 2).
	GPUs int
	// GPUBudget is the total device count of the deployment; each
	// scheduler gets GPUBudget / UsedGPUs identical replicas, so a
	// scheduler that squeezes the same latency out of fewer devices
	// earns proportionally more replicas (0 = 4).
	GPUBudget int
	// Window is the sliding-window size w of the schedulers (0 =
	// default).
	Window int
	// Workers bounds the sweep's worker pool exactly as
	// SimOptions.Workers does (0 = GOMAXPROCS, 1 = serial reference).
	Workers int
	// Loads are the offered-load points in multiples of the best
	// scheduler's aggregate capacity (nil = 0.25, 0.5, 0.7, 0.85, 1.0).
	Loads []float64
	// Horizon is the arrival window of each simulated trace (0 = 1500
	// ms).
	Horizon units.Millis
	// Ops sizes the random model (0 = the paper's 200; tests shrink it
	// to keep the IOS DP fast).
	Ops int
}

func (o *ServeSweepOptions) fill() {
	if o.Seeds <= 0 {
		o.Seeds = 8
	}
	if o.GPUs <= 0 {
		o.GPUs = 2
	}
	if o.GPUBudget <= 0 {
		o.GPUBudget = 4
	}
	if len(o.Loads) == 0 {
		// Up to the best scheduler's saturation point. x = 1 means the
		// best deployment is exactly saturated — and every worse
		// scheduler is overloaded, which is where the policies separate.
		// Past saturation EDF degrades below FIFO (the classic
		// overloaded-EDF domino effect, every request served closest to
		// its deadline and missing anyway), so deeper overload is left
		// to explicit Loads.
		o.Loads = []float64{0.25, 0.5, 0.7, 0.85, 1.0}
	}
	// Exact zero test: the zero value selects the default.
	if o.Horizon == 0 { //lint:floatexact zero is the unset-option sentinel, not a computed value
		o.Horizon = units.Millis(1500)
	}
	if o.Ops <= 0 {
		o.Ops = 200
	}
}

// Validate reports the first structural violation of the sweep options.
// Zero values are valid (defaults); negatives and malformed load lists
// are not.
func (o ServeSweepOptions) Validate() error {
	if o.Seeds < 0 || o.GPUs < 0 || o.GPUBudget < 0 || o.Window < 0 || o.Workers < 0 || o.Ops < 0 {
		return fmt.Errorf("experiments: negative serve-sweep option: %+v", o)
	}
	if o.Horizon < 0 {
		return fmt.Errorf("experiments: negative serve-sweep horizon %g", float64(o.Horizon))
	}
	for i, l := range o.Loads {
		if l <= 0 {
			return fmt.Errorf("experiments: load point %d is %g, want > 0", i, l)
		}
	}
	return nil
}

// AttainmentVsLoad is the serving counterpart of the §V latency sweeps:
// SLO attainment versus offered load for every real-system scheduler ×
// dispatch policy. One random model (the §V-A generator) is scheduled
// once per algorithm; each schedule becomes a deployment of identical
// pipeline replicas within the shared GPU budget, serving two open-loop
// tenants — an interactive class with a tight deadline taking 60% of the
// traffic and a batch class with a loose deadline taking the rest. The
// x axis is offered load as a multiple of the best scheduler's capacity,
// so x = 1 saturates the best deployment and overloads the others:
// scheduler quality shows up directly as serving capacity.
//
// Every (load, seed) cell is one task on the deterministic pool and the
// merge is index-ordered, so the figure is byte-identical at any Workers
// width. Tenant arrival traces depend only on the seed and the rate;
// policies reorder service, never arrivals.
func AttainmentVsLoad(opt ServeSweepOptions) (Figure, error) {
	if err := opt.Validate(); err != nil {
		return Figure{}, err
	}
	opt.fill()

	cfg := randdag.Paper()
	cfg.Ops = opt.Ops
	cfg.Deps = 2 * opt.Ops
	if cfg.Layers > cfg.Ops {
		cfg.Layers = cfg.Ops
	}
	g, err := randdag.Generate(cfg)
	if err != nil {
		return Figure{}, fmt.Errorf("AttainmentVsLoad: %w", err)
	}
	m := cost.FromGraph(g, cost.DefaultContention())

	algos := RealSystemAlgorithms
	models := make([]serve.Model, len(algos))
	bestCap := 0.0
	minLat := units.Millis(0)
	for ai, algo := range algos {
		res, err := Run(algo, g, m, RunConfig{GPUs: opt.GPUs, Window: opt.Window})
		if err != nil {
			return Figure{}, fmt.Errorf("AttainmentVsLoad: %s: %w", algo, err)
		}
		dm, err := serve.NewModel(algo, g, m, res.Schedule)
		if err != nil {
			return Figure{}, fmt.Errorf("AttainmentVsLoad: %s: %w", algo, err)
		}
		used := res.Schedule.UsedGPUs()
		if used < 1 {
			used = 1
		}
		if dm.Replicas = opt.GPUBudget / used; dm.Replicas < 1 {
			dm.Replicas = 1
		}
		if c := dm.Capacity(); c > bestCap {
			bestCap = c
		}
		if ai == 0 || dm.Latency < minLat {
			minLat = dm.Latency
		}
		models[ai] = dm
	}
	// Shared absolute SLOs, derived from the best single-request latency
	// so they are demanding but feasible for a well-scheduled deployment.
	tight := minLat.Scale(4)
	loose := minLat.Scale(12)

	policies := serve.Policies()
	series := make([]string, 0, len(algos)*len(policies))
	for _, a := range algos {
		for _, p := range policies {
			series = append(series, a+"/"+string(p))
		}
	}
	samples := make([][]*stats.Sample, len(series))
	for si := range samples {
		samples[si] = make([]*stats.Sample, len(opt.Loads))
		for i := range opt.Loads {
			samples[si][i] = &stats.Sample{}
		}
	}

	cells, err := parallel.Map(len(opt.Loads)*opt.Seeds, opt.Workers, func(t int) ([]float64, error) {
		i, seed := t/opt.Seeds, int64(t%opt.Seeds)+1
		lambda := opt.Loads[i] * bestCap
		atts := make([]float64, 0, len(series))
		for ai := range algos {
			for _, p := range policies {
				rep, err := serve.Run(serve.Options{
					Models: []serve.Model{models[ai]},
					Tenants: []serve.Tenant{
						{Name: "interactive", Deadline: tight, Rate: 0.6 * lambda},
						{Name: "batch", Deadline: loose, Rate: 0.4 * lambda},
					},
					Policy:  p,
					Horizon: opt.Horizon,
					Seed:    seed,
				})
				if err != nil {
					return nil, fmt.Errorf("AttainmentVsLoad: %s/%s load=%g seed=%d: %w",
						algos[ai], p, opt.Loads[i], seed, err)
				}
				atts = append(atts, rep.Attainment)
			}
		}
		return atts, nil
	})
	if err != nil {
		return Figure{}, err
	}
	for t, atts := range cells {
		i := t / opt.Seeds
		for si := range series {
			samples[si][i].Add(atts[si])
		}
	}
	fig := Figure{
		ID:     "Serve1",
		Title:  "SLO attainment vs offered load (scheduler x policy)",
		XLabel: "offered_load",
		YLabel: "slo_attainment",
	}
	for si, label := range series {
		fig.Series = append(fig.Series, collect(label, opt.Loads, samples[si]))
	}
	return fig, nil
}
