package experiments

import (
	"fmt"
	"time"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/costcache"
	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/model"
	"github.com/shus-lab/hios/internal/parallel"
	"github.com/shus-lab/hios/internal/profile"
	"github.com/shus-lab/hios/internal/sim"
	"github.com/shus-lab/hios/internal/stats"
	"github.com/shus-lab/hios/internal/units"
)

// Fig1Sizes are the probed input image sizes of Figs. 1 and 2.
var Fig1Sizes = []float64{8, 16, 32, 64, 128, 256, 512, 1024}

// paperConvKernel characterizes the §II-A probe: a 5x5 stride-1
// convolution over 48 input channels (48 output channels) at a square
// image size.
func paperConvKernel(size int) gpu.Kernel {
	out := float64(48 * size * size)
	return gpu.Kernel{
		FLOPs:   units.FLOPs(2 * 5 * 5 * 48 * out),
		Bytes:   units.Bytes(4 * (48*float64(size*size) + 5*5*48*48 + out)),
		Threads: out,
	}
}

// Fig1 reproduces Fig. 1: the ratio between sequential and parallel
// execution time of two identical convolutions on one A40, over input
// sizes. Ratios above 1 mean concurrency wins (small operators); below 1
// it loses (large operators). The paper's crossover falls between 64 and
// 128 pixels.
func Fig1() Figure {
	dev := gpu.A40()
	c := cost.DefaultContention()
	fig := Figure{
		ID:     "Fig1",
		Title:  "sequential/parallel latency ratio of two identical convolutions",
		XLabel: "image_size",
		YLabel: "seq/par ratio",
	}
	s := Series{Label: dev.Name}
	for _, size := range Fig1Sizes {
		k := paperConvKernel(int(size))
		t, u := costcache.Shared().KernelTime(dev, k)
		seqT := 2 * t
		parT := costcache.Shared().StageTime(c, []cost.Item{{Time: t, Util: u}, {Time: t, Util: u}})
		s.Points = append(s.Points, Point{X: size, Mean: seqT.Ratio(parT)})
	}
	fig.Series = []Series{s}
	return fig
}

// Fig2 reproduces Fig. 2: the ratio of input-tensor transfer time to
// convolution compute time across the three dual-GPU platforms. NVLink
// platforms must sit below the PCIe platform at every size.
func Fig2() Figure {
	fig := Figure{
		ID:     "Fig2",
		Title:  "transfer/compute time ratio across platforms",
		XLabel: "image_size",
		YLabel: "transfer/compute ratio",
	}
	for _, p := range []gpu.Platform{gpu.DualA40(), gpu.DualA5500(), gpu.DualV100S()} {
		s := Series{Label: p.Name}
		for _, size := range Fig1Sizes {
			k := paperConvKernel(int(size))
			inputBytes := units.Bytes(4 * 48 * size * size)
			compute, _ := costcache.Shared().KernelTime(p.Dev, k)
			s.Points = append(s.Points, Point{
				X:    size,
				Mean: costcache.Shared().TransferTime(p.Link, inputBytes).Ratio(compute),
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Benchmark names the two CNN benchmarks.
type Benchmark string

// The paper's two benchmarks (§VI-B).
const (
	Inception Benchmark = "inception-v3"
	NASNet    Benchmark = "nasnet-a"
)

// DefaultSizes returns the input-size sweep of Fig. 12 for a benchmark:
// from the model's default size up to 2^K pixels.
func DefaultSizes(b Benchmark) []int {
	switch b {
	case Inception:
		return []int{299, 512, 1024, 2048}
	case NASNet:
		return []int{331, 512, 1024, 2048}
	default:
		return nil
	}
}

// BuildBenchmark constructs a benchmark network at an input size on a
// platform.
func BuildBenchmark(b Benchmark, p gpu.Platform, size int) (*model.Net, error) {
	switch b {
	case Inception:
		return model.InceptionV3(p.Dev, p.Link, size), nil
	case NASNet:
		return model.NASNet(p.Dev, p.Link, size), nil
	default:
		return nil, fmt.Errorf("experiments: unknown benchmark %q", b)
	}
}

// Fig12 reproduces Fig. 12: actual inference latency of one benchmark
// over input sizes under sequential, IOS, HIOS-LP and HIOS-MR scheduling
// on the dual-A40 platform.
func Fig12(b Benchmark, sizes []int) (Figure, error) { return fig12(b, sizes, 0) }

// fig12 runs one size per worker-pool task: every cell builds its own
// net (through the shared shape cache, which concurrent builders may
// populate in any order without changing a single value) and measures
// every algorithm, and the merge is index-ordered, so the figure is
// byte-identical at any pool width.
func fig12(b Benchmark, sizes []int, workers int) (Figure, error) {
	if sizes == nil {
		sizes = DefaultSizes(b)
	}
	plat := gpu.DualA40()
	fig := Figure{
		ID:     "Fig12-" + string(b),
		Title:  fmt.Sprintf("inference latency of %s on %s", b, plat.Name),
		XLabel: "input_size",
		YLabel: "latency_ms",
	}
	samples := make(map[string][]*stats.Sample)
	xs := make([]float64, len(sizes))
	for i, s := range sizes {
		xs[i] = float64(s)
	}
	for _, a := range RealSystemAlgorithms {
		samples[a] = make([]*stats.Sample, len(sizes))
		for i := range sizes {
			samples[a][i] = &stats.Sample{}
		}
	}
	cells, err := parallel.Map(len(sizes), workers, func(i int) ([]float64, error) {
		net, err := BuildBenchmark(b, plat, sizes[i])
		if err != nil {
			return nil, err
		}
		m := cost.FromGraph(net.G, cost.DefaultContention())
		lats := make([]float64, len(RealSystemAlgorithms))
		for ai, a := range RealSystemAlgorithms {
			lat, err := measure(a, net, m, plat.GPUs)
			if err != nil {
				return nil, fmt.Errorf("Fig12 %s %s@%d: %w", a, b, sizes[i], err)
			}
			lats[ai] = lat
		}
		return lats, nil
	})
	if err != nil {
		return Figure{}, err
	}
	for i, lats := range cells {
		for ai, a := range RealSystemAlgorithms {
			samples[a][i].Add(lats[ai])
		}
	}
	for _, a := range RealSystemAlgorithms {
		fig.Series = append(fig.Series, collect(a, xs, samples[a]))
	}
	return fig, nil
}

// measure produces the "actual inference latency" of a schedule the way
// the paper measures it: the scheduler optimizes against the analytic
// cost model (contention-free links), but the measurement happens on the
// platform, where concurrent transfers between a GPU pair share one
// NVLink bridge. The discrete-event simulator with serialized links plays
// the role of the testbed.
func measure(algo string, net *model.Net, m cost.Model, gpus int) (float64, error) {
	res, err := Run(algo, net.G, m, RunConfig{GPUs: gpus})
	if err != nil {
		return 0, err
	}
	tr, err := sim.RunOpts(net.G, m, res.Schedule, sim.Options{SerializeLinks: true})
	if err != nil {
		return 0, err
	}
	return float64(tr.Latency), nil
}

// Fig13 reproduces Fig. 13: the latency breakdown of all six algorithms
// for both benchmarks at their small (default) and largest input sizes.
// X positions are scenario indices: 0 = inception/small, 1 =
// inception/large, 2 = nasnet/small, 3 = nasnet/large.
func Fig13() (Figure, []string, error) { return fig13(0) }

// fig13 parallelizes over scenario cells exactly as fig12 does over
// sizes; the index-ordered merge keeps the figure byte-identical at any
// pool width.
func fig13(workers int) (Figure, []string, error) {
	plat := gpu.DualA40()
	type scenario struct {
		b    Benchmark
		size int
	}
	scenarios := []scenario{
		{Inception, 299}, {Inception, 2048},
		{NASNet, 331}, {NASNet, 2048},
	}
	labels := make([]string, len(scenarios))
	for i, sc := range scenarios {
		labels[i] = fmt.Sprintf("%s@%d", sc.b, sc.size)
	}
	fig := Figure{
		ID:     "Fig13",
		Title:  "performance gain breakdown (dual A40)",
		XLabel: "scenario",
		YLabel: "latency_ms",
	}
	series := make(map[string]*Series)
	for _, a := range AllAlgorithms {
		series[a] = &Series{Label: a}
	}
	cells, err := parallel.Map(len(scenarios), workers, func(i int) ([]float64, error) {
		sc := scenarios[i]
		net, err := BuildBenchmark(sc.b, plat, sc.size)
		if err != nil {
			return nil, err
		}
		m := cost.FromGraph(net.G, cost.DefaultContention())
		lats := make([]float64, len(AllAlgorithms))
		for ai, a := range AllAlgorithms {
			lat, err := measure(a, net, m, plat.GPUs)
			if err != nil {
				return nil, fmt.Errorf("Fig13 %s %s: %w", a, labels[i], err)
			}
			lats[ai] = lat
		}
		return lats, nil
	})
	if err != nil {
		return Figure{}, nil, err
	}
	for i := range scenarios {
		for ai, a := range AllAlgorithms {
			series[a].Points = append(series[a].Points, Point{X: float64(i), Mean: cells[i][ai]})
		}
	}
	for _, a := range AllAlgorithms {
		fig.Series = append(fig.Series, *series[a])
	}
	return fig, labels, nil
}

// SchedulingCost is one scheduler's optimization cost for Fig. 14.
type SchedulingCost struct {
	// AlgorithmMs is the measured wall time of the scheduling algorithm
	// itself.
	AlgorithmMs float64
	// ProfilingMs is the simulated time a real profiler would spend
	// measuring every distinct operator, operator group and transfer
	// the algorithm probed (warm-up + repetitions each).
	ProfilingMs float64
	// Probes counts distinct measurements.
	Probes int
}

// TotalMs is the total scheduling-optimization cost.
func (c SchedulingCost) TotalMs() float64 { return c.AlgorithmMs + c.ProfilingMs }

// MeasureSchedulingCost runs one algorithm on a benchmark at an input size
// behind a fresh profiling table and reports the Fig. 14 cost breakdown.
func MeasureSchedulingCost(algo string, b Benchmark, size int) (SchedulingCost, error) {
	plat := gpu.DualA40()
	net, err := BuildBenchmark(b, plat, size)
	if err != nil {
		return SchedulingCost{}, err
	}
	inner := cost.FromGraph(net.G, cost.DefaultContention())
	tab := profile.NewTable(inner, profile.DefaultWarmup, profile.DefaultRepeats)
	start := time.Now()
	if _, err := Run(algo, net.G, tab, RunConfig{GPUs: plat.GPUs}); err != nil {
		return SchedulingCost{}, err
	}
	elapsed := time.Since(start)
	st := tab.Stats()
	return SchedulingCost{
		AlgorithmMs: float64(elapsed.Nanoseconds()) / 1e6,
		ProfilingMs: float64(st.SimulatedMs),
		Probes:      st.Probes(),
	}, nil
}

// Fig14 reproduces Fig. 14: the time cost of scheduling optimization
// (profiling + algorithm) for IOS, HIOS-LP and HIOS-MR over input sizes.
func Fig14(b Benchmark, sizes []int) (Figure, error) {
	if sizes == nil {
		sizes = DefaultSizes(b)
	}
	algos := []string{AlgoIOS, AlgoHIOSLP, AlgoHIOSMR}
	fig := Figure{
		ID:     "Fig14-" + string(b),
		Title:  fmt.Sprintf("scheduling optimization cost for %s", b),
		XLabel: "input_size",
		YLabel: "scheduling_cost_ms",
	}
	for _, a := range algos {
		s := Series{Label: a}
		for _, size := range sizes {
			c, err := MeasureSchedulingCost(a, b, size)
			if err != nil {
				return Figure{}, fmt.Errorf("Fig14 %s %s@%d: %w", a, b, size, err)
			}
			s.Points = append(s.Points, Point{X: float64(size), Mean: c.TotalMs()})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
