package experiments

import (
	"fmt"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/parallel"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched/ios"
	"github.com/shus-lab/hios/internal/sched/lp"
	"github.com/shus-lab/hios/internal/sched/window"
	"github.com/shus-lab/hios/internal/sim"
	"github.com/shus-lab/hios/internal/stats"
	"github.com/shus-lab/hios/internal/units"
)

// This file holds the ablation studies DESIGN.md calls out: sweeps over
// the design parameters the paper fixes (window size w, IOS pruning) and
// over the implementation choices the paper only discusses (per-message
// transfer overhead, the §VI-E NCCL remark). They are exposed through
// cmd/hios-exp -fig ablation and bench_test.go.

// AblationWindow sweeps the intra-GPU sliding-window size w for HIOS-LP
// on random models: w = 1 disables Algorithm 2 entirely (the
// "inter-GPU w/ LP" curve), larger windows admit wider concurrent stages
// at higher scheduling cost. Any w >= 2 improves on w = 1 because the
// pass only commits improvements; across different w the sweep is not
// strictly monotone (the pass is greedy — an early wide fusion can
// foreclose a better pair of narrow ones), which is itself a finding
// worth having on record.
func AblationWindow(opt SimOptions) (Figure, error) {
	opt.fill()
	ws := []float64{1, 2, 3, 4, 6, 8}
	fig := Figure{
		ID:     "AblationWindow",
		Title:  "HIOS-LP latency vs sliding-window size w",
		XLabel: "window",
		YLabel: "latency_ms",
	}
	samples := make([]*stats.Sample, len(ws))
	for i := range samples {
		samples[i] = &stats.Sample{}
	}
	rows, err := parallel.Map(opt.Seeds, opt.Workers, func(t int) ([]float64, error) {
		seed := int64(t) + 1
		cfg := randdag.Paper()
		cfg.Seed = seed
		g, err := randdag.Generate(cfg)
		if err != nil {
			return nil, err
		}
		m := cost.FromGraph(g, cost.DefaultContention())
		lats := make([]float64, len(ws))
		for i, w := range ws {
			o := lp.Options{GPUs: opt.GPUs, Window: int(w)}
			if int(w) == 1 {
				o.InterOnly = true
			}
			res, err := lp.Schedule(g, m, o)
			if err != nil {
				return nil, fmt.Errorf("ablation window w=%g seed=%d: %w", w, seed, err)
			}
			lats[i] = float64(res.Latency)
		}
		return lats, nil
	})
	if err != nil {
		return Figure{}, err
	}
	for _, lats := range rows {
		for i := range ws {
			samples[i].Add(lats[i])
		}
	}
	fig.Series = []Series{collect(AlgoHIOSLP, ws, samples)}
	return fig, nil
}

// AblationIOSPruning sweeps IOS's schedule-pruning aggressiveness (the
// prune-window r) on random models, reporting both the achieved latency
// and how close narrow pruning stays to the widest setting — the
// latency/scheduling-cost trade-off of Ding et al.'s pruning strategy.
func AblationIOSPruning(opt SimOptions) (Figure, error) {
	opt.fill()
	rs := []float64{2, 4, 6, 8, 10}
	fig := Figure{
		ID:     "AblationIOSPruning",
		Title:  "IOS latency vs prune-window r",
		XLabel: "prune_window",
		YLabel: "latency_ms",
	}
	samples := make([]*stats.Sample, len(rs))
	for i := range samples {
		samples[i] = &stats.Sample{}
	}
	rows, err := parallel.Map(opt.Seeds, opt.Workers, func(t int) ([]float64, error) {
		seed := int64(t) + 1
		cfg := randdag.Paper()
		cfg.Seed = seed
		g, err := randdag.Generate(cfg)
		if err != nil {
			return nil, err
		}
		m := cost.FromGraph(g, cost.DefaultContention())
		lats := make([]float64, len(rs))
		for i, r := range rs {
			res, err := ios.Schedule(g, m, ios.Options{PruneWindow: int(r)})
			if err != nil {
				return nil, fmt.Errorf("ablation ios r=%g seed=%d: %w", r, seed, err)
			}
			lats[i] = float64(res.Latency)
		}
		return lats, nil
	})
	if err != nil {
		return Figure{}, err
	}
	for _, lats := range rows {
		for i := range rs {
			samples[i].Add(lats[i])
		}
	}
	fig.Series = []Series{collect(AlgoIOS, rs, samples)}
	return fig, nil
}

// AblationLinkContention quantifies how much of the measured latency of
// each multi-GPU scheduler is due to transfers contending for the single
// NVLink bridge: the same schedules are simulated with independent
// (cost-model-ideal) links and with the bridge serialized. HIOS-MR's
// scattered placements suffer more, which is the mechanism behind the
// paper's observed HIOS-LP > HIOS-MR gap on real hardware (§VI-D).
func AblationLinkContention(b Benchmark, size int) (Figure, error) {
	plat := gpu.DualA40()
	net, err := BuildBenchmark(b, plat, size)
	if err != nil {
		return Figure{}, err
	}
	m := cost.FromGraph(net.G, cost.DefaultContention())
	fig := Figure{
		ID:     "AblationLinkContention",
		Title:  fmt.Sprintf("link-contention penalty on %s@%d", b, size),
		XLabel: "serialized",
		YLabel: "latency_ms",
	}
	for _, a := range []string{AlgoHIOSLP, AlgoHIOSMR, AlgoInterLP, AlgoInterMR} {
		res, err := Run(a, net.G, m, RunConfig{GPUs: plat.GPUs})
		if err != nil {
			return Figure{}, err
		}
		s := Series{Label: a}
		for i, serialize := range []bool{false, true} {
			tr, err := sim.RunOpts(net.G, m, res.Schedule, sim.Options{SerializeLinks: serialize})
			if err != nil {
				return Figure{}, err
			}
			s.Points = append(s.Points, Point{X: float64(i), Mean: float64(tr.Latency)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// NCCLOverlap is the §VI-E what-if: the paper suggests that replacing
// CUDA-aware MPI with NCCL could hide the launch latency of kernels that
// wait on inter-GPU transfers. We model NCCL as the same wire with
// (near-)zero software latency and re-measure Fig. 12's NASNet small-input
// case, where the paper observed HIOS-LP losing 5.4% to IOS because of
// exactly this overhead.
func NCCLOverlap(b Benchmark, size int) (Figure, error) {
	fig := Figure{
		ID:     "NCCLOverlap",
		Title:  fmt.Sprintf("MPI vs NCCL-style transfers on %s@%d", b, size),
		XLabel: "transport", // 0 = CUDA-aware MPI, 1 = NCCL-style
		YLabel: "latency_ms",
	}
	for i, link := range []gpu.Link{gpu.NVLinkBridge(), ncclLink()} {
		plat := gpu.DualA40()
		plat.Link = link
		net, err := BuildBenchmark(b, plat, size)
		if err != nil {
			return Figure{}, err
		}
		m := cost.FromGraph(net.G, cost.DefaultContention())
		for _, a := range []string{AlgoIOS, AlgoHIOSLP} {
			lat, err := measure(a, net, m, plat.GPUs)
			if err != nil {
				return Figure{}, err
			}
			found := false
			for j := range fig.Series {
				if fig.Series[j].Label == a {
					fig.Series[j].Points = append(fig.Series[j].Points, Point{X: float64(i), Mean: lat})
					found = true
				}
			}
			if !found {
				fig.Series = append(fig.Series, Series{Label: a, Points: []Point{{X: float64(i), Mean: lat}}})
			}
		}
	}
	return fig, nil
}

// ncclLink models an NVLink bridge driven by NCCL: the same bandwidth
// with the MPI software latency almost eliminated (launch hiding).
func ncclLink() gpu.Link {
	l := gpu.NVLinkBridge()
	l.Name = "NVLink bridge (NCCL-style)"
	l.Latency = units.Millis(0.002)
	return l
}

// AblationIntraGPU contrasts the paper's sliding-window pass (Algorithm
// 2) with the counterfactual it argues against in §IV-B: running the
// exact IOS dynamic program independently per GPU, blind to cross-GPU
// dependencies. Both start from the same inter-GPU LP placement. The
// figure reports mean latency for three intra-GPU strategies: none
// (inter-GPU only), Algorithm 2, and per-GPU IOS.
func AblationIntraGPU(opt SimOptions) (Figure, error) {
	opt.fill()
	fig := Figure{
		ID:     "AblationIntraGPU",
		Title:  "intra-GPU strategy on top of inter-GPU LP",
		XLabel: "strategy", // 0 = none, 1 = Algorithm 2, 2 = per-GPU IOS
		YLabel: "latency_ms",
	}
	labels := []string{"none", "algorithm-2", "per-gpu-ios"}
	samples := make([]*stats.Sample, len(labels))
	for i := range samples {
		samples[i] = &stats.Sample{}
	}
	rows, err := parallel.Map(opt.Seeds, opt.Workers, func(t int) ([3]float64, error) {
		cfg := randdag.Paper()
		cfg.Seed = int64(t) + 1
		g, err := randdag.Generate(cfg)
		if err != nil {
			return [3]float64{}, err
		}
		m := cost.FromGraph(g, cost.DefaultContention())
		inter, err := lp.Schedule(g, m, lp.Options{GPUs: opt.GPUs, InterOnly: true})
		if err != nil {
			return [3]float64{}, err
		}
		alg2, err := window.Parallelize(g, m, inter.Schedule, window.DefaultSize)
		if err != nil {
			return [3]float64{}, err
		}
		perGPU, err := window.ExactPerGPU(g, m, inter.Schedule, ios.Options{})
		if err != nil {
			return [3]float64{}, err
		}
		return [3]float64{float64(inter.Latency), float64(alg2.Latency), float64(perGPU.Latency)}, nil
	})
	if err != nil {
		return Figure{}, err
	}
	for _, lats := range rows {
		for i := range samples {
			samples[i].Add(lats[i])
		}
	}
	for i, l := range labels {
		fig.Series = append(fig.Series, Series{
			Label:  l,
			Points: []Point{{X: float64(i), Mean: samples[i].Mean(), Std: samples[i].Std()}},
		})
	}
	return fig, nil
}
