package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched"
)

// fastSim keeps sweeps quick in tests; the cmd binaries run the paper's
// full 30 seeds.
func fastSim() SimOptions { return SimOptions{Seeds: 3, GPUs: 4} }

func TestRunDispatchesAllAlgorithms(t *testing.T) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 30, 5, 60, 1
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())
	for _, a := range AllAlgorithms {
		res, err := Run(a, g, m, RunConfig{GPUs: 2})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if err := sched.Validate(g, res.Schedule); err != nil {
			t.Fatalf("%s: invalid schedule: %v", a, err)
		}
	}
	if _, err := Run("nonsense", g, m, RunConfig{GPUs: 2}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestFig1Shape(t *testing.T) {
	fig := Fig1()
	// Below the crossover concurrency must win (ratio > 1); above it,
	// lose (ratio < 1) — the paper's crossover is between 64 and 128.
	for _, p := range fig.Series[0].Points {
		if p.X <= 64 && p.Mean <= 1 {
			t.Fatalf("size %g: ratio %g, want > 1 (concurrency should win)", p.X, p.Mean)
		}
		if p.X >= 128 && p.Mean >= 1 {
			t.Fatalf("size %g: ratio %g, want < 1 (contention should lose)", p.X, p.Mean)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	fig := Fig2()
	if len(fig.Series) != 3 {
		t.Fatalf("Fig2 series = %d, want 3 platforms", len(fig.Series))
	}
	var nvlink, pcie *Series
	for i := range fig.Series {
		if strings.Contains(fig.Series[i].Label, "V100S") {
			pcie = &fig.Series[i]
		}
		if strings.Contains(fig.Series[i].Label, "A40") {
			nvlink = &fig.Series[i]
		}
	}
	if nvlink == nil || pcie == nil {
		t.Fatalf("platform series missing: %v", fig.Labels())
	}
	for i := range nvlink.Points {
		if pcie.Points[i].Mean <= nvlink.Points[i].Mean {
			t.Fatalf("size %g: PCIe ratio %g not above NVLink %g",
				nvlink.Points[i].X, pcie.Points[i].Mean, nvlink.Points[i].Mean)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	fig, err := Fig7(fastSim())
	if err != nil {
		t.Fatal(err)
	}
	// Sequential and IOS are single-GPU: flat in the GPU count.
	seq2, _ := fig.At(AlgoSequential, 2)
	seq12, _ := fig.At(AlgoSequential, 12)
	if seq2 != seq12 {
		t.Fatalf("sequential latency varies with GPU count: %g vs %g", seq2, seq12)
	}
	// HIOS-LP must scale: latency at 12 GPUs clearly below 2 GPUs, and
	// speedup over sequential must grow past 2x (the paper reaches
	// 3.8x).
	lp2, _ := fig.At(AlgoHIOSLP, 2)
	lp12, _ := fig.At(AlgoHIOSLP, 12)
	if lp12 >= lp2 {
		t.Fatalf("HIOS-LP does not scale with GPUs: %g -> %g", lp2, lp12)
	}
	if seq12/lp12 < 2 {
		t.Fatalf("HIOS-LP speedup at 12 GPUs = %g, want > 2", seq12/lp12)
	}
	// HIOS-LP must clearly beat HIOS-MR at high GPU counts (Fig. 7's
	// headline: MR plateaus, LP keeps scaling).
	mr12, _ := fig.At(AlgoHIOSMR, 12)
	if lp12 >= mr12 {
		t.Fatalf("HIOS-LP (%g) not ahead of HIOS-MR (%g) at 12 GPUs", lp12, mr12)
	}
	// IOS beats sequential but not the multi-GPU schedulers.
	ios12, _ := fig.At(AlgoIOS, 12)
	if ios12 >= seq12 {
		t.Fatalf("IOS (%g) not better than sequential (%g)", ios12, seq12)
	}
	if lp12 >= ios12 {
		t.Fatalf("HIOS-LP (%g) not better than IOS (%g) at 12 GPUs", lp12, ios12)
	}
}

func TestFig8Shape(t *testing.T) {
	opt := fastSim()
	fig, err := Fig8(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Latency grows with the operator count for every algorithm, and
	// HIOS-LP stays around 2x faster than sequential across sizes
	// (paper: 2.01-2.12).
	for _, x := range []float64{100, 400} {
		seq, _ := fig.At(AlgoSequential, x)
		lp, _ := fig.At(AlgoHIOSLP, x)
		if sp := seq / lp; sp < 1.5 {
			t.Fatalf("ops=%g: HIOS-LP speedup %g, want >= 1.5", x, sp)
		}
		inter, _ := fig.At(AlgoInterLP, x)
		if lp > inter+1e-9 {
			t.Fatalf("ops=%g: intra pass hurt inter-LP: %g vs %g", x, lp, inter)
		}
	}
	seq100, _ := fig.At(AlgoSequential, 100)
	seq400, _ := fig.At(AlgoSequential, 400)
	if seq400 <= seq100 {
		t.Fatalf("sequential latency should grow with ops: %g -> %g", seq100, seq400)
	}
}

func TestFig9Shape(t *testing.T) {
	opt := fastSim()
	opt.Seeds = 6
	fig, err := Fig9(opt)
	if err != nil {
		t.Fatal(err)
	}
	// In the paper the HIOS-LP speedup over sequential declines with
	// the dependency count (2.06 -> 1.64). Our random instances stay
	// load-bound at 4 GPUs, so the decline flattens out (documented in
	// EXPERIMENTS.md); the reproducible invariants are that the speedup
	// does not GROW with dependencies (within noise), that it stays
	// comfortably above 1, and that the single-GPU baselines are flat.
	seqA, _ := fig.At(AlgoSequential, 400)
	lpA, _ := fig.At(AlgoHIOSLP, 400)
	seqB, _ := fig.At(AlgoSequential, 600)
	lpB, _ := fig.At(AlgoHIOSLP, 600)
	spA, spB := seqA/lpA, seqB/lpB
	if spB >= spA*1.05 {
		t.Fatalf("HIOS-LP speedup should not grow with dependencies: %g -> %g", spA, spB)
	}
	if spA < 1.3 {
		t.Fatalf("HIOS-LP speedup at 400 deps = %g, want >= 1.3", spA)
	}
	if rel := seqA / seqB; rel < 0.999 || rel > 1.001 {
		t.Fatalf("sequential baseline should ignore dependency count: %g vs %g", seqA, seqB)
	}
}

func TestFig10Shape(t *testing.T) {
	fig, err := Fig10(fastSim())
	if err != nil {
		t.Fatal(err)
	}
	// Fewer layers means a wider graph; HIOS-LP should exploit it:
	// latency at 6 layers below latency at 22 layers (paper: 174 vs
	// 233 ms). Sequential stays flat-ish (same op-time budget).
	lp6, _ := fig.At(AlgoHIOSLP, 6)
	lp22, _ := fig.At(AlgoHIOSLP, 22)
	if lp6 >= lp22 {
		t.Fatalf("HIOS-LP should improve on wider graphs: %g (6 layers) vs %g (22)", lp6, lp22)
	}
	seq6, _ := fig.At(AlgoSequential, 6)
	seq22, _ := fig.At(AlgoSequential, 22)
	if rel := seq6 / seq22; rel < 0.9 || rel > 1.1 {
		t.Fatalf("sequential latency should be roughly flat across layers: %g vs %g", seq6, seq22)
	}
}

func TestFig11Shape(t *testing.T) {
	fig, err := Fig11(fastSim())
	if err != nil {
		t.Fatal(err)
	}
	// Rising communication cost erodes the multi-GPU advantage: the
	// HIOS-LP/sequential speedup falls from p=0.4 to p=1.2 (paper: 2.23
	// down to 1.78).
	seqA, _ := fig.At(AlgoSequential, 0.4)
	lpA, _ := fig.At(AlgoHIOSLP, 0.4)
	seqB, _ := fig.At(AlgoSequential, 1.2)
	lpB, _ := fig.At(AlgoHIOSLP, 1.2)
	if seqB/lpB >= seqA/lpA {
		t.Fatalf("HIOS-LP speedup should fall with p: %g -> %g", seqA/lpA, seqB/lpB)
	}
}

func TestFig12Shape(t *testing.T) {
	// Small sweep for speed: default and one large size per benchmark.
	fig, err := Fig12(Inception, []int{299, 2048})
	if err != nil {
		t.Fatal(err)
	}
	// At the large size, HIOS-LP must beat both IOS and sequential
	// (paper: up to 16.5% over IOS), and HIOS-LP must beat HIOS-MR.
	seq, _ := fig.At(AlgoSequential, 2048)
	ios, _ := fig.At(AlgoIOS, 2048)
	lp, _ := fig.At(AlgoHIOSLP, 2048)
	mr, _ := fig.At(AlgoHIOSMR, 2048)
	if lp >= ios || lp >= seq {
		t.Fatalf("large input: HIOS-LP (%g) should beat IOS (%g) and sequential (%g)", lp, ios, seq)
	}
	if lp >= mr {
		t.Fatalf("large input: HIOS-LP (%g) should beat HIOS-MR (%g)", lp, mr)
	}
	// At the default size the schedulers are competitive: HIOS-LP within
	// ~15% of IOS either way (the paper sees -3% to +16% swings).
	iosS, _ := fig.At(AlgoIOS, 299)
	lpS, _ := fig.At(AlgoHIOSLP, 299)
	if lpS > iosS*1.2 {
		t.Fatalf("small input: HIOS-LP (%g) too far behind IOS (%g)", lpS, iosS)
	}
}

func TestFig14Shape(t *testing.T) {
	fig, err := Fig14(Inception, []int{299, 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Scheduling cost grows with input size for every algorithm, and
	// IOS's profiling-heavy DP costs more than HIOS-LP at the large
	// size (Fig. 14: IOS grows much faster).
	iosS, _ := fig.At(AlgoIOS, 299)
	iosL, _ := fig.At(AlgoIOS, 1024)
	lpL, _ := fig.At(AlgoHIOSLP, 1024)
	if iosL <= iosS {
		t.Fatalf("IOS scheduling cost should grow with input size: %g -> %g", iosS, iosL)
	}
	if iosL <= lpL {
		t.Fatalf("IOS cost (%g) should exceed HIOS-LP cost (%g) at large inputs", iosL, lpL)
	}
}

func TestFigureRenderAndAt(t *testing.T) {
	fig := Fig1()
	out := fig.String()
	if !strings.Contains(out, "Fig1") || !strings.Contains(out, "image_size") {
		t.Fatalf("render missing headers:\n%s", out)
	}
	if _, ok := fig.At("A40", 8); !ok {
		t.Fatal("At failed to find an existing point")
	}
	if _, ok := fig.At("A40", 9999); ok {
		t.Fatal("At invented a point")
	}
	if _, ok := fig.At("nope", 8); ok {
		t.Fatal("At invented a series")
	}
	if len(fig.Labels()) != 1 {
		t.Fatalf("labels = %v", fig.Labels())
	}
}

func TestMeasureSchedulingCostBreakdown(t *testing.T) {
	c, err := MeasureSchedulingCost(AlgoHIOSLP, Inception, 299)
	if err != nil {
		t.Fatal(err)
	}
	if c.ProfilingMs <= 0 || c.Probes <= 0 {
		t.Fatalf("profiling accounting empty: %+v", c)
	}
	if c.TotalMs() < c.ProfilingMs {
		t.Fatalf("total below profiling: %+v", c)
	}
}

func TestBuildBenchmarkRejectsUnknown(t *testing.T) {
	if _, err := BuildBenchmark(Benchmark("bogus"), gpu.DualA40(), 299); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFig13Scenarios(t *testing.T) {
	fig, labels, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 4 {
		t.Fatalf("labels = %v", labels)
	}
	// Inter-GPU LP should deliver most of HIOS-LP's gain at large
	// inputs (paper §VI-E: 98.2% for Inception-large, ~100% for
	// NASNet).
	for _, x := range []float64{1, 3} { // large-input scenarios
		seq, _ := fig.At(AlgoSequential, x)
		lp, _ := fig.At(AlgoHIOSLP, x)
		inter, _ := fig.At(AlgoInterLP, x)
		gainFull := seq - lp
		gainInter := seq - inter
		if gainFull <= 0 {
			t.Fatalf("scenario %g: HIOS-LP gained nothing (%g vs %g)", x, lp, seq)
		}
		if gainInter < 0.5*gainFull {
			t.Fatalf("scenario %g: inter-GPU share of gain too small: %g of %g", x, gainInter, gainFull)
		}
	}
}

func TestFigureRenderJSON(t *testing.T) {
	fig := Fig1()
	var b strings.Builder
	if err := fig.RenderJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Figure
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("RenderJSON output is not valid JSON: %v", err)
	}
	if back.ID != fig.ID || len(back.Series) != len(fig.Series) {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}
