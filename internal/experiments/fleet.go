package experiments

import (
	"fmt"

	"github.com/shus-lab/hios/internal/cluster"
	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/model"
	"github.com/shus-lab/hios/internal/parallel"
	"github.com/shus-lab/hios/internal/serve"
	"github.com/shus-lab/hios/internal/stats"
	"github.com/shus-lab/hios/internal/units"
)

// FleetSweepOptions parameterizes the cluster-serving attainment sweep
// (figure Serve2). The zero value of every field selects a documented
// default; Validate reports structural violations.
type FleetSweepOptions struct {
	// Seeds is the number of independent arrival traces averaged per
	// data point (0 = 4).
	Seeds int
	// Sizes are the fleet sizes (node counts) on the x axis (nil = 2, 4,
	// 8, 12). Each fleet cycles the platform presets — a40, a5500,
	// v100s, a40, ... — so every size above 2 is heterogeneous.
	Sizes []int
	// Routers are the gateway policies compared as series (nil = every
	// registered policy).
	Routers []cluster.RouterPolicy
	// Requests is the target arrival count per cell; the horizon is
	// derived from it and the offered rate. Every admitted open-loop
	// request is exactly three events (arrive, done, free), so the
	// default 350000 arrivals put ≥ 1e6 events in every cell (0 =
	// 350000).
	Requests int
	// Load is the offered load as a fraction of each fleet's aggregate
	// capacity at its initial replica counts (0 = 0.95) — near
	// saturation, where routing quality decides attainment.
	Load float64
	// Replicas is the initial replica count of every (node, deployment)
	// pool (0 = 2).
	Replicas int
	// GPUs is M, the devices one pipeline replica spans (0 = 2).
	GPUs int
	// Window is the sliding-window size w of the scheduler (0 =
	// default).
	Window int
	// InputSize is the benchmark model's input image size (0 = 224;
	// tests shrink it to keep schedule construction fast).
	InputSize int
	// Workers bounds the sweep's worker pool (0 = GOMAXPROCS, 1 =
	// serial reference; output is byte-identical at any width).
	Workers int
}

func (o *FleetSweepOptions) fill() {
	if o.Seeds <= 0 {
		o.Seeds = 4
	}
	if len(o.Sizes) == 0 {
		o.Sizes = []int{2, 4, 8, 12}
	}
	if len(o.Routers) == 0 {
		o.Routers = cluster.RouterPolicies()
	}
	if o.Requests <= 0 {
		o.Requests = 350000
	}
	if o.Load <= 0 {
		o.Load = 0.95
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.GPUs <= 0 {
		o.GPUs = 2
	}
	if o.InputSize <= 0 {
		o.InputSize = 224
	}
}

// Validate reports the first structural violation of the sweep options.
// Zero values are valid (defaults); negatives, zero fleet sizes and
// unknown router policies are not.
func (o FleetSweepOptions) Validate() error {
	if o.Seeds < 0 || o.Requests < 0 || o.Replicas < 0 || o.GPUs < 0 || o.Window < 0 || o.InputSize < 0 || o.Workers < 0 {
		return fmt.Errorf("experiments: negative fleet-sweep option: %+v", o)
	}
	if o.Load < 0 {
		return fmt.Errorf("experiments: negative fleet-sweep load %g", o.Load)
	}
	for i, n := range o.Sizes {
		if n <= 0 {
			return fmt.Errorf("experiments: fleet size %d is %d, want > 0", i, n)
		}
	}
	for _, r := range o.Routers {
		if !cluster.RouterRegistry.Valid(r) {
			return fmt.Errorf("experiments: %w %q", cluster.ErrUnknownRouterPolicy, string(r))
		}
	}
	return nil
}

// fleetProfiles schedules the benchmark model once per platform preset
// with HIOS-LP and converts each schedule into a cluster serving
// profile: the same deployment runs with genuinely different latency
// and period on each platform, which is what gives the weighted router
// a real cost/latency tradeoff.
func fleetProfiles(opt FleetSweepOptions) ([]cluster.Profile, error) {
	var profs []cluster.Profile
	for _, p := range cluster.Presets() {
		net := model.SqueezeNet(p.Platform.Dev, p.Platform.Link, opt.InputSize)
		cm, err := net.CachedModel(cost.DefaultContention())
		if err != nil {
			return nil, fmt.Errorf("AttainmentVsFleet: %s: %w", p.Key, err)
		}
		res, err := Run(AlgoHIOSLP, net.G, cm, RunConfig{GPUs: opt.GPUs, Window: opt.Window})
		if err != nil {
			return nil, fmt.Errorf("AttainmentVsFleet: %s: %w", p.Key, err)
		}
		sm, err := serve.NewModel(net.Name, net.G, cm, res.Schedule)
		if err != nil {
			return nil, fmt.Errorf("AttainmentVsFleet: %s: %w", p.Key, err)
		}
		profs = append(profs, cluster.ProfileOf(p.Key, sm))
	}
	return profs, nil
}

// fleetSpec builds the n-node heterogeneous fleet of figure Serve2:
// node i runs platform preset i mod len(Presets).
func fleetSpec(n, replicas int) cluster.FleetSpec {
	keys := cluster.PresetKeys()
	nodes := make([]cluster.NodeSpec, n)
	for i := 0; i < n; i++ {
		nodes[i] = cluster.NodeSpec{Platform: keys[i%len(keys)], Count: 1, Replicas: replicas}
	}
	return cluster.FleetSpec{Nodes: nodes}
}

// AttainmentVsFleet is the cluster counterpart of AttainmentVsLoad
// (figure Serve2): SLO attainment versus fleet size for every router
// policy. One benchmark model is scheduled per platform preset with
// HIOS-LP; each fleet size cycles the presets into a heterogeneous
// fleet serving two open-loop tenants — interactive (tight SLO, 60% of
// traffic) and batch (loose SLO, 40%) — offered at a fixed fraction of
// that fleet's aggregate capacity, so the x axis isolates how well each
// router converts added heterogeneous nodes into met deadlines.
//
// Every (size, seed) cell is one task on the deterministic pool running
// all routers on the same seeded trace, and the merge is index-ordered,
// so the figure is byte-identical at any Workers width.
func AttainmentVsFleet(opt FleetSweepOptions) (Figure, error) {
	if err := opt.Validate(); err != nil {
		return Figure{}, err
	}
	opt.fill()

	profs, err := fleetProfiles(opt)
	if err != nil {
		return Figure{}, err
	}
	dep := cluster.Deployment{Name: "squeezenet", Profiles: profs}
	minLat := profs[0].Latency
	for _, p := range profs[1:] {
		if p.Latency < minLat {
			minLat = p.Latency
		}
	}
	tight := minLat.Scale(4)
	loose := minLat.Scale(12)

	xs := make([]float64, len(opt.Sizes))
	for i, n := range opt.Sizes {
		xs[i] = float64(n)
	}
	samples := make([][]*stats.Sample, len(opt.Routers))
	for si := range samples {
		samples[si] = make([]*stats.Sample, len(opt.Sizes))
		for i := range opt.Sizes {
			samples[si][i] = &stats.Sample{}
		}
	}

	cells, err := parallel.Map(len(opt.Sizes)*opt.Seeds, opt.Workers, func(t int) ([]float64, error) {
		i, seed := t/opt.Seeds, int64(t%opt.Seeds)+1
		base := cluster.Options{
			Fleet:       fleetSpec(opt.Sizes[i], opt.Replicas),
			Deployments: []cluster.Deployment{dep},
			Seed:        seed,
		}
		rate := opt.Load * base.Capacity(0)
		base.Horizon = units.Millis(float64(opt.Requests) * 1e3 / rate)
		base.Tenants = []cluster.Tenant{
			{Name: "interactive", Deadline: tight, Rate: 0.6 * rate},
			{Name: "batch", Deadline: loose, Rate: 0.4 * rate},
		}
		atts := make([]float64, 0, len(opt.Routers))
		for _, router := range opt.Routers {
			o := base
			o.Router = router
			rep, err := cluster.Run(o)
			if err != nil {
				return nil, fmt.Errorf("AttainmentVsFleet: %s size=%d seed=%d: %w",
					router, opt.Sizes[i], seed, err)
			}
			atts = append(atts, rep.Attainment)
		}
		return atts, nil
	})
	if err != nil {
		return Figure{}, err
	}
	for t, atts := range cells {
		i := t / opt.Seeds
		for si := range opt.Routers {
			samples[si][i].Add(atts[si])
		}
	}
	fig := Figure{
		ID:     "Serve2",
		Title:  "SLO attainment vs fleet size (router policy)",
		XLabel: "fleet_nodes",
		YLabel: "slo_attainment",
	}
	for si, router := range opt.Routers {
		fig.Series = append(fig.Series, collect(string(router), xs, samples[si]))
	}
	return fig, nil
}
