package experiments

import (
	"runtime"
	"testing"

	"github.com/shus-lab/hios/internal/costcache"
)

// TestFig12ParallelMatchesSerial extends the DESIGN.md §7 determinism
// contract to the real-system sweep: Fig. 12 cells now run on the worker
// pool and every cell's benchmark build prices its kernels through the
// process-wide shape cache, so this test is also the shared-cache
// concurrency check — GOMAXPROCS+3 workers hammer the cache while
// building nets, and the rendered figure must stay byte-identical to the
// serial reference path.
func TestFig12ParallelMatchesSerial(t *testing.T) {
	sizes := []int{299, 384}
	sFig, err := fig12(Inception, sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	wFig, err := fig12(Inception, sizes, runtime.GOMAXPROCS(0)+3)
	if err != nil {
		t.Fatal(err)
	}
	sOut, wOut := renderBoth(t, sFig), renderBoth(t, wFig)
	if sOut != wOut {
		t.Fatalf("Fig12 diverges between serial and parallel sweeps:\n--- serial ---\n%s\n--- parallel ---\n%s", sOut, wOut)
	}
}

// TestFig13ParallelMatchesSerial is the same contract for the scenario
// sweep of Fig. 13. The scenarios include the 2048-pixel builds, so run
// it only with -timeout headroom (it is the heaviest equivalence test).
func TestFig13ParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig13 at full scenario sizes is slow; skipped with -short")
	}
	sFig, _, err := fig13(1)
	if err != nil {
		t.Fatal(err)
	}
	wFig, _, err := fig13(runtime.GOMAXPROCS(0) + 3)
	if err != nil {
		t.Fatal(err)
	}
	sOut, wOut := renderBoth(t, sFig), renderBoth(t, wFig)
	if sOut != wOut {
		t.Fatalf("Fig13 diverges between serial and parallel sweeps:\n--- serial ---\n%s\n--- parallel ---\n%s", sOut, wOut)
	}
}

// TestFig14AccountingCacheInvariant pins the layering claim of the
// cost-model caching hierarchy (DESIGN.md "Cost-model caching
// hierarchy"): profile.CostTable keeps its own per-table maps and probe
// counters ABOVE the shared shape cache, so Fig. 14's profiling-cost
// accounting — distinct probes and simulated profiler milliseconds
// against a fresh table — is exactly the same whether the process-wide
// cache is cold or fully warm.
func TestFig14AccountingCacheInvariant(t *testing.T) {
	costcache.Shared().Reset() // cold
	cold, err := MeasureSchedulingCost(AlgoHIOSLP, Inception, 299)
	if err != nil {
		t.Fatal(err)
	}
	if costcache.Shared().Stats().Probes() == 0 {
		t.Fatal("benchmark build did not touch the shared cache")
	}
	warm, err := MeasureSchedulingCost(AlgoHIOSLP, Inception, 299) // warm
	if err != nil {
		t.Fatal(err)
	}
	if cold.Probes != warm.Probes {
		t.Fatalf("probe count depends on shared-cache state: cold %d, warm %d", cold.Probes, warm.Probes)
	}
	if cold.ProfilingMs != warm.ProfilingMs { //lint:floatexact
		t.Fatalf("simulated profiling time depends on shared-cache state: cold %v, warm %v",
			cold.ProfilingMs, warm.ProfilingMs)
	}
}
