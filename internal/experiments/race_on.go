//go:build race

package experiments

// raceEnabled reports whether the binary was built with the race
// detector. The experiment sweeps are fully serial, so their tests gain
// no coverage from -race while paying its ~10x slowdown; the test suite
// uses this to skip the statistical sweeps under the detector. The
// executor's concurrency is race-tested in internal/runtime and
// internal/mpi, which always run full-size.
const raceEnabled = true
