package experiments

import "testing"

func TestAblationWindowMonotone(t *testing.T) {
	opt := SimOptions{Seeds: 2, GPUs: 4}
	fig, err := AblationWindow(opt)
	if err != nil {
		t.Fatal(err)
	}
	pts := fig.Series[0].Points
	if len(pts) < 3 {
		t.Fatalf("points = %v", pts)
	}
	// Every w >= 2 must improve on w = 1 (the pass commits only
	// improvements over the inter-GPU-only schedule). Across w values
	// the curve need not be monotone: the pass is greedy and a wide
	// early fusion can foreclose better narrow ones.
	for i := 1; i < len(pts); i++ {
		if pts[i].Mean >= pts[0].Mean {
			t.Fatalf("w=%g (%g) not better than w=1 (%g)", pts[i].X, pts[i].Mean, pts[0].Mean)
		}
	}
}

func TestAblationIOSPruningImproves(t *testing.T) {
	opt := SimOptions{Seeds: 1, GPUs: 4}
	fig, err := AblationIOSPruning(opt)
	if err != nil {
		t.Fatal(err)
	}
	pts := fig.Series[0].Points
	first, last := pts[0].Mean, pts[len(pts)-1].Mean
	// A wider prune window can only help (more candidate stages); the
	// beam makes strict monotonicity unguaranteed point to point, but
	// end to end the widest setting must not be worse.
	if last > first+1e-9 {
		t.Fatalf("widest pruning (%g) worse than narrowest (%g)", last, first)
	}
}

func TestAblationLinkContention(t *testing.T) {
	fig, err := AblationLinkContention(Inception, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var lpPenalty, mrPenalty float64
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %s has %d points", s.Label, len(s.Points))
		}
		ideal, serialized := s.Points[0].Mean, s.Points[1].Mean
		if serialized < ideal-1e-9 {
			t.Fatalf("%s: serialization sped things up: %g -> %g", s.Label, ideal, serialized)
		}
		switch s.Label {
		case AlgoHIOSLP:
			lpPenalty = serialized - ideal
		case AlgoHIOSMR:
			mrPenalty = serialized - ideal
		}
	}
	// The mechanism behind the paper's LP>MR gap: MR's scattered
	// placement pays more for the shared bridge.
	if mrPenalty < lpPenalty {
		t.Fatalf("expected HIOS-MR to pay more for link contention: LP %g vs MR %g", lpPenalty, mrPenalty)
	}
}

func TestNCCLOverlapHelpsLP(t *testing.T) {
	fig, err := NCCLOverlap(NASNet, 331)
	if err != nil {
		t.Fatal(err)
	}
	var lpMPI, lpNCCL float64
	for _, s := range fig.Series {
		if s.Label == AlgoHIOSLP {
			lpMPI, lpNCCL = s.Points[0].Mean, s.Points[1].Mean
		}
	}
	if lpMPI == 0 || lpNCCL == 0 {
		t.Fatalf("missing HIOS-LP series: %+v", fig.Series)
	}
	// The §VI-E hypothesis: cheaper per-message software latency
	// shrinks HIOS-LP's latency on the transfer-heavy NASNet.
	if lpNCCL >= lpMPI {
		t.Fatalf("NCCL-style transfers did not help HIOS-LP: %g vs %g", lpNCCL, lpMPI)
	}
}

func TestOptimalityGap(t *testing.T) {
	fig, err := OptimalityGap(4, 14)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Mean < 1-1e-9 {
				t.Fatalf("%s at M=%g: ratio %g below 1 — heuristic beat the optimum", s.Label, p.X, p.Mean)
			}
			if p.Mean > 2 {
				t.Fatalf("%s at M=%g: ratio %g implausibly large", s.Label, p.X, p.Mean)
			}
		}
	}
	if _, err := OptimalityGap(1, 100); err == nil {
		t.Fatal("accepted an oversized optimality-gap study")
	}
}

func TestClusterStudy(t *testing.T) {
	fig, err := ClusterStudy(SimOptions{Seeds: 2, GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var aware, blind *Series
	for i := range fig.Series {
		switch fig.Series[i].Label {
		case "hios-lp-topology-aware":
			aware = &fig.Series[i]
		case "hios-lp-topology-blind":
			blind = &fig.Series[i]
		}
	}
	if aware == nil || blind == nil {
		t.Fatalf("series missing: %v", fig.Labels())
	}
	for i := range aware.Points {
		a, b := aware.Points[i].Mean, blind.Points[i].Mean
		// LP is greedy, so awareness is not a per-instance guarantee;
		// allow 3% slack at intermediate factors.
		if a > b*1.03 {
			t.Fatalf("factor %g: topology-aware (%g) clearly worse than blind (%g)",
				aware.Points[i].X, a, b)
		}
	}
	// At factor 1 the platform is flat: aware == blind.
	if d := aware.Points[0].Mean - blind.Points[0].Mean; d > 1e-9 || d < -1e-9 {
		t.Fatalf("factor 1 should be identical: %g vs %g", aware.Points[0].Mean, blind.Points[0].Mean)
	}
	// At the largest factor the gap must be visible.
	last := len(aware.Points) - 1
	if blind.Points[last].Mean <= aware.Points[last].Mean {
		t.Fatalf("no awareness gain at factor %g", aware.Points[last].X)
	}
}

func TestAblationIntraGPU(t *testing.T) {
	fig, err := AblationIntraGPU(SimOptions{Seeds: 2, GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string) float64 {
		for _, s := range fig.Series {
			if s.Label == label {
				return s.Points[0].Mean
			}
		}
		t.Fatalf("series %q missing: %v", label, fig.Labels())
		return 0
	}
	none := get("none")
	alg2 := get("algorithm-2")
	perGPU := get("per-gpu-ios")
	// Both intra-GPU strategies only commit improvements.
	if alg2 > none+1e-9 || perGPU > none+1e-9 {
		t.Fatalf("intra passes made things worse: none=%g alg2=%g ios=%g", none, alg2, perGPU)
	}
	if alg2 >= none && perGPU >= none {
		t.Fatalf("no intra-GPU strategy gained anything: none=%g alg2=%g ios=%g", none, alg2, perGPU)
	}
}
