package experiments

import (
	"fmt"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/parallel"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched/ios"
	"github.com/shus-lab/hios/internal/stats"
)

// SimOptions parameterizes the §V simulation sweeps.
type SimOptions struct {
	// Seeds is the number of random model instances per data point
	// (the paper uses 30).
	Seeds int
	// GPUs is M for the fixed-GPU sweeps (the paper uses 4).
	GPUs int
	// Window is the sliding-window size w (0 = default).
	Window int
	// Workers bounds the sweep worker pool: every (x, seed) cell of a
	// sweep is an independent task scheduled on up to Workers goroutines.
	// 0 selects GOMAXPROCS; 1 forces the serial reference path. Results
	// are merged in index order, so the figure is byte-identical at any
	// width (see internal/parallel and DESIGN.md §7).
	Workers int
	// IOSWorkers bounds how many independent IOS blocks each scheduler
	// invocation solves concurrently (ios.Options.Workers). Like Workers
	// it never changes a figure byte: blocks are merged in block order.
	// 0 or 1 solves serially.
	IOSWorkers int
}

// DefaultSim returns the paper's §V-A settings.
func DefaultSim() SimOptions { return SimOptions{Seeds: 30, GPUs: 4} }

func (o *SimOptions) fill() {
	if o.Seeds <= 0 {
		o.Seeds = 30
	}
	if o.GPUs <= 0 {
		o.GPUs = 4
	}
}

// Validate reports the first structural violation of the sweep options.
// Zero values are valid (they select the documented defaults).
func (o SimOptions) Validate() error {
	if o.Seeds < 0 || o.GPUs < 0 || o.Window < 0 || o.Workers < 0 || o.IOSWorkers < 0 {
		return fmt.Errorf("experiments: negative sim option: %+v", o)
	}
	return nil
}

// sweep runs all six algorithms over a family of random-DAG configurations
// and aggregates latencies per x value. cfgAt generates the model family
// at x; runAt supplies the scheduler configuration at x (Fig. 7 varies the
// GPU count along x, the other sweeps keep it fixed).
//
// Every (x, seed) cell is one task on the deterministic pool: it derives a
// private graph and cost model from its seed and returns the six algorithm
// latencies. The results are merged serially in (x, seed, algorithm) order
// — the exact accumulation order of the single-threaded loop — so the
// figure is byte-identical at any pool width.
func sweep(id, title, xlabel string, xs []float64,
	cfgAt func(x float64, seed int64) randdag.Config,
	runAt func(x float64) RunConfig,
	opt SimOptions) (Figure, error) {

	if err := opt.Validate(); err != nil {
		return Figure{}, err
	}
	opt.fill()
	fig := Figure{ID: id, Title: title, XLabel: xlabel, YLabel: "latency_ms"}
	samples := make(map[string][]*stats.Sample, len(AllAlgorithms))
	for _, a := range AllAlgorithms {
		samples[a] = make([]*stats.Sample, len(xs))
		for i := range xs {
			samples[a][i] = &stats.Sample{}
		}
	}
	cells, err := parallel.Map(len(xs)*opt.Seeds, opt.Workers, func(t int) ([]float64, error) {
		i, seed := t/opt.Seeds, int64(t%opt.Seeds)+1
		x := xs[i]
		g, err := randdag.Generate(cfgAt(x, seed))
		if err != nil {
			return nil, fmt.Errorf("%s: x=%g seed=%d: %w", id, x, seed, err)
		}
		m := cost.FromGraph(g, cost.DefaultContention())
		rc := runAt(x)
		lats := make([]float64, len(AllAlgorithms))
		for ai, a := range AllAlgorithms {
			res, err := Run(a, g, m, rc)
			if err != nil {
				return nil, fmt.Errorf("%s: %s x=%g seed=%d: %w", id, a, x, seed, err)
			}
			lats[ai] = float64(res.Latency)
		}
		return lats, nil
	})
	if err != nil {
		return Figure{}, err
	}
	for t, lats := range cells {
		i := t / opt.Seeds
		for ai, a := range AllAlgorithms {
			samples[a][i].Add(lats[ai])
		}
	}
	for _, a := range AllAlgorithms {
		fig.Series = append(fig.Series, collect(a, xs, samples[a]))
	}
	return fig, nil
}

// Fig7 reproduces Fig. 7: inference latency of the six scheduling
// algorithms as the number of GPUs grows from 2 to 12 (random 200-operator
// models, 14 layers, 400 dependencies, p = 0.8).
func Fig7(opt SimOptions) (Figure, error) {
	xs := []float64{2, 4, 6, 8, 10, 12}
	return sweep("Fig7", "latency vs number of GPUs", "gpus", xs,
		func(x float64, seed int64) randdag.Config {
			cfg := randdag.Paper()
			cfg.Seed = seed
			return cfg
		},
		func(x float64) RunConfig {
			return RunConfig{GPUs: int(x), Window: opt.Window, IOS: ios.Options{Workers: opt.IOSWorkers}}
		}, opt)
}

// Fig8 reproduces Fig. 8: latency vs number of operators (100..400 step
// 50, dependencies = 2x operators, 4 GPUs).
func Fig8(opt SimOptions) (Figure, error) {
	xs := []float64{100, 150, 200, 250, 300, 350, 400}
	return sweep("Fig8", "latency vs number of operators", "operators", xs,
		func(x float64, seed int64) randdag.Config {
			cfg := randdag.Paper()
			cfg.Ops = int(x)
			cfg.Deps = 2 * cfg.Ops
			cfg.Seed = seed
			return cfg
		}, fixedRun(opt), opt)
}

// Fig9 reproduces Fig. 9: latency vs number of inter-operator
// dependencies (400..600 step 50, 200 operators, 4 GPUs).
func Fig9(opt SimOptions) (Figure, error) {
	xs := []float64{400, 450, 500, 550, 600}
	return sweep("Fig9", "latency vs number of dependencies", "dependencies", xs,
		func(x float64, seed int64) randdag.Config {
			cfg := randdag.Paper()
			cfg.Deps = int(x)
			cfg.Seed = seed
			return cfg
		}, fixedRun(opt), opt)
}

// Fig10 reproduces Fig. 10: latency vs the number of operator layers
// (6..22 step 4), i.e. the degree of parallelism in the model.
func Fig10(opt SimOptions) (Figure, error) {
	xs := []float64{6, 10, 14, 18, 22}
	return sweep("Fig10", "latency vs number of layers", "layers", xs,
		func(x float64, seed int64) randdag.Config {
			cfg := randdag.Paper()
			cfg.Layers = int(x)
			cfg.Seed = seed
			return cfg
		}, fixedRun(opt), opt)
}

// Fig11 reproduces Fig. 11: latency vs the communication/computation time
// ratio p (0.4..1.2 step 0.2).
func Fig11(opt SimOptions) (Figure, error) {
	xs := []float64{0.4, 0.6, 0.8, 1.0, 1.2}
	return sweep("Fig11", "latency vs communication ratio p", "p", xs,
		func(x float64, seed int64) randdag.Config {
			cfg := randdag.Paper()
			cfg.CommRatio = x
			cfg.Seed = seed
			return cfg
		}, fixedRun(opt), opt)
}

func fixedRun(opt SimOptions) func(float64) RunConfig {
	opt.fill()
	return func(float64) RunConfig {
		return RunConfig{GPUs: opt.GPUs, Window: opt.Window, IOS: ios.Options{Workers: opt.IOSWorkers}}
	}
}

// Fig9DependencyBound re-runs the Fig. 9 sweep on a dependency-bound
// instance family: the extra dependencies connect adjacent layers only
// (concentrated fan-in), so operators genuinely wait on many
// previous-layer finishes plus transfers. On this family — unlike the
// §V-A uniform family, which our schedulers drive to the load bound —
// the paper's declining-speedup trend reappears. See EXPERIMENTS.md.
func Fig9DependencyBound(opt SimOptions) (Figure, error) {
	xs := []float64{400, 450, 500, 550, 600}
	return sweep("Fig9-adjacent", "latency vs dependencies (adjacent-layer fan-in)", "dependencies", xs,
		func(x float64, seed int64) randdag.Config {
			cfg := randdag.Paper()
			cfg.Deps = int(x)
			cfg.Seed = seed
			cfg.AdjacentOnly = true
			return cfg
		}, fixedRun(opt), opt)
}
