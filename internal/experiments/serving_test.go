package experiments

import (
	"runtime"
	"strings"
	"testing"
)

// fastServe is the sweep configuration the serving tests pin: a smaller
// random model keeps the IOS DP fast while preserving the qualitative
// shape (verified against the full 200-operator default).
func fastServe() ServeSweepOptions {
	return ServeSweepOptions{Ops: 80, Seeds: 8}
}

// TestAttainmentVsLoadShape pins the acceptance shape of the serving
// sweep: SLO attainment is monotonically non-increasing in offered load
// for every scheduler × policy series, and at the highest load point EDF
// attains at least FIFO and shedding at least EDF, for every scheduler.
func TestAttainmentVsLoadShape(t *testing.T) {
	fig, err := AttainmentVsLoad(fastServe())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(RealSystemAlgorithms)*3 {
		t.Fatalf("series count %d, want %d", len(fig.Series), len(RealSystemAlgorithms)*3)
	}
	for _, s := range fig.Series {
		for i, p := range s.Points {
			if p.Mean < 0 || p.Mean > 1 {
				t.Errorf("%s: attainment %g at x=%g out of [0,1]", s.Label, p.Mean, p.X)
			}
			if i > 0 && p.Mean > s.Points[i-1].Mean+1e-12 {
				t.Errorf("%s: attainment rises with load: %g -> %g at x=%g",
					s.Label, s.Points[i-1].Mean, p.Mean, p.X)
			}
		}
	}
	top := fig.Series[0].Points[len(fig.Series[0].Points)-1].X
	at := func(label string) float64 {
		v, ok := fig.At(label, top)
		if !ok {
			t.Fatalf("series %s missing x=%g", label, top)
		}
		return v
	}
	for _, algo := range RealSystemAlgorithms {
		fifo, edf, shed := at(algo+"/fifo"), at(algo+"/edf"), at(algo+"/edf-shed")
		if edf < fifo {
			t.Errorf("%s: EDF attainment %g < FIFO %g at load %g", algo, edf, fifo, top)
		}
		if shed < edf {
			t.Errorf("%s: shed attainment %g < EDF %g at load %g", algo, shed, edf, top)
		}
	}
	// The sweep's premise: a better scheduler serves more of the same
	// load. HIOS-LP must beat sequential under FIFO at the top point.
	if at("hios-lp/fifo") <= at("sequential/fifo") {
		t.Errorf("hios-lp attainment %g not above sequential %g at load %g",
			at("hios-lp/fifo"), at("sequential/fifo"), top)
	}
}

// TestAttainmentVsLoadParallelMatchesSerial extends the DESIGN.md §7
// determinism contract to the serving sweep: serial reference and
// oversubscribed pool render byte-identical figures.
func TestAttainmentVsLoadParallelMatchesSerial(t *testing.T) {
	serial := fastServe()
	serial.Workers = 1
	wide := fastServe()
	wide.Workers = runtime.GOMAXPROCS(0) + 3

	sFig, err := AttainmentVsLoad(serial)
	if err != nil {
		t.Fatal(err)
	}
	wFig, err := AttainmentVsLoad(wide)
	if err != nil {
		t.Fatal(err)
	}
	sOut, wOut := renderBoth(t, sFig), renderBoth(t, wFig)
	if sOut != wOut {
		t.Fatalf("AttainmentVsLoad diverges between serial and parallel sweeps:\n--- serial ---\n%s\n--- parallel ---\n%s", sOut, wOut)
	}
	// And across repeated runs of the same width.
	rFig, err := AttainmentVsLoad(wide)
	if err != nil {
		t.Fatal(err)
	}
	if renderBoth(t, rFig) != wOut {
		t.Fatal("AttainmentVsLoad diverges across repeated runs")
	}
}

func TestServeSweepOptionsValidate(t *testing.T) {
	bad := []ServeSweepOptions{
		{Seeds: -1},
		{GPUs: -2},
		{GPUBudget: -1},
		{Window: -1},
		{Workers: -3},
		{Ops: -10},
		{Horizon: -5},
		{Loads: []float64{0.5, 0}},
		{Loads: []float64{-1}},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, o)
		}
		if _, err := AttainmentVsLoad(o); err == nil {
			t.Errorf("case %d: AttainmentVsLoad accepted %+v", i, o)
		}
	}
	if err := (ServeSweepOptions{}).Validate(); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
}

// The figure labels must enumerate scheduler × policy in declaration
// order, the order EXPERIMENTS.md documents.
func TestAttainmentVsLoadLabels(t *testing.T) {
	fig, err := AttainmentVsLoad(ServeSweepOptions{Ops: 40, Seeds: 2, Loads: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{}
	for _, a := range RealSystemAlgorithms {
		for _, p := range []string{"fifo", "edf", "edf-shed"} {
			want = append(want, a+"/"+p)
		}
	}
	got := fig.Labels()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("labels = %v, want %v", got, want)
	}
}

// The serve-sweep benchmark pair mirrors BenchmarkSweepFig10*: the
// Width1/FullWidth ratio gauges the parallel engine's efficiency on the
// serving workload (BENCH_seed.json tracks the baseline).
func benchServeSweep(b *testing.B, workers int) {
	b.Helper()
	opt := ServeSweepOptions{Ops: 60, Seeds: 2, Workers: workers, Loads: []float64{0.5, 1.0}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AttainmentVsLoad(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeSweepWidth1(b *testing.B)    { benchServeSweep(b, 1) }
func BenchmarkServeSweepFullWidth(b *testing.B) { benchServeSweep(b, 0) }
