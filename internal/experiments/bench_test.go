package experiments

import (
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched/ios"
	"github.com/shus-lab/hios/internal/sched/lp"
	"github.com/shus-lab/hios/internal/sched/mr"
	"github.com/shus-lab/hios/internal/sched/window"
)

// Scheduler micro-benchmarks on the paper's default random model (200
// operators, 14 layers, 400 dependencies) — the per-algorithm cost side
// of the Fig. 14 story, without profiling.

func benchGraphAndModel() (cfg randdag.Config) {
	cfg = randdag.Paper()
	cfg.Seed = 7
	return cfg
}

func benchAlgo(b *testing.B, algo string, gpus int) {
	g := randdag.MustGenerate(benchGraphAndModel())
	m := cost.FromGraph(g, cost.DefaultContention())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(algo, g, m, RunConfig{GPUs: gpus})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Latency), "latency-ms")
		}
	}
}

func BenchmarkSchedulerSequential(b *testing.B) { benchAlgo(b, AlgoSequential, 1) }
func BenchmarkSchedulerIOS(b *testing.B)        { benchAlgo(b, AlgoIOS, 1) }

// BenchmarkSchedulerIOSCold disables the shared block cache, so every
// iteration pays the full pruned DP search: the cold-solve cost the warm
// BenchmarkSchedulerIOS amortizes away after its first iteration.
func BenchmarkSchedulerIOSCold(b *testing.B) {
	g := randdag.MustGenerate(benchGraphAndModel())
	m := cost.FromGraph(g, cost.DefaultContention())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(AlgoIOS, g, m, RunConfig{IOS: ios.Options{NoCache: true}}); err != nil {
			b.Fatal(err)
		}
	}
}
func BenchmarkSchedulerHIOSLP4GPUs(b *testing.B) {
	benchAlgo(b, AlgoHIOSLP, 4)
}
func BenchmarkSchedulerHIOSMR4GPUs(b *testing.B) {
	benchAlgo(b, AlgoHIOSMR, 4)
}
func BenchmarkSchedulerInterLP4GPUs(b *testing.B) {
	benchAlgo(b, AlgoInterLP, 4)
}
func BenchmarkSchedulerHIOSLP12GPUs(b *testing.B) {
	benchAlgo(b, AlgoHIOSLP, 12)
}

// The LP / MR / window trio isolates the three burn-down targets of the
// hot-path allocation discipline (hotalloc): the LP longest-path mapping
// loop, the MR table fill, and the sliding-window refiner, each without
// the other passes, so BENCH_*.json shows their allocs/op individually.

func BenchmarkSchedulerLP(b *testing.B) {
	g := randdag.MustGenerate(benchGraphAndModel())
	m := cost.FromGraph(g, cost.DefaultContention())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Schedule(g, m, lp.Options{GPUs: 4, InterOnly: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerMR(b *testing.B) {
	g := randdag.MustGenerate(benchGraphAndModel())
	m := cost.FromGraph(g, cost.DefaultContention())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mr.Schedule(g, m, mr.Options{GPUs: 4, InterOnly: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowRefine(b *testing.B) {
	g := randdag.MustGenerate(benchGraphAndModel())
	m := cost.FromGraph(g, cost.DefaultContention())
	base, err := lp.Schedule(g, m, lp.Options{GPUs: 4, InterOnly: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := window.Parallelize(g, m, base.Schedule, window.DefaultSize); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerHIOSLPInception runs HIOS-LP on the real Inception-v3
// graph: the scheduling-cost half of Fig. 14 at the default input.
func BenchmarkSchedulerHIOSLPInception(b *testing.B) {
	plat := benchPlatform()
	net, err := BuildBenchmark(Inception, plat, 299)
	if err != nil {
		b.Fatal(err)
	}
	m := cost.FromGraph(net.G, cost.DefaultContention())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(AlgoHIOSLP, net.G, m, RunConfig{GPUs: plat.GPUs}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerIOSNASNet runs IOS on NASNet-A: the paper's heaviest
// scheduling workload (374 operators).
func BenchmarkSchedulerIOSNASNet(b *testing.B) {
	plat := benchPlatform()
	net, err := BuildBenchmark(NASNet, plat, 331)
	if err != nil {
		b.Fatal(err)
	}
	m := cost.FromGraph(net.G, cost.DefaultContention())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(AlgoIOS, net.G, m, RunConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPlatform() gpu.Platform { return gpu.DualA40() }

// Sweep benchmarks: the end-to-end statistical drivers the parallel pool
// accelerates. The Width1 variant pins the serial reference path — it must
// not regress against the pre-pool serial loop — and FullWidth runs the
// identical sweep on a GOMAXPROCS-wide pool, which on a multi-core runner
// should scale toward the core count while producing byte-identical
// figures (TestFig7ParallelMatchesSerial). Comparing the two on one
// machine gives the sweep engine's parallel efficiency.

func benchSweep(b *testing.B, workers int) {
	b.Helper()
	opt := SimOptions{Seeds: 2, GPUs: 4, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig10(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepFig10Width1(b *testing.B)    { benchSweep(b, 1) }
func BenchmarkSweepFig10FullWidth(b *testing.B) { benchSweep(b, 0) }
