package experiments

import (
	"fmt"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/ios"
	"github.com/shus-lab/hios/internal/sched/lp"
	"github.com/shus-lab/hios/internal/sched/mr"
	"github.com/shus-lab/hios/internal/sched/seq"
)

// Algorithm labels, matching the paper's legends (§V-B).
const (
	AlgoSequential = "sequential"
	AlgoIOS        = "ios"
	AlgoHIOSLP     = "hios-lp"
	AlgoHIOSMR     = "hios-mr"
	AlgoInterLP    = "inter-gpu-lp"
	AlgoInterMR    = "inter-gpu-mr"
)

// AllAlgorithms is the six-way comparison of the simulation study.
var AllAlgorithms = []string{
	AlgoSequential, AlgoIOS, AlgoHIOSLP, AlgoHIOSMR, AlgoInterLP, AlgoInterMR,
}

// RealSystemAlgorithms is the four-way comparison of Fig. 12.
var RealSystemAlgorithms = []string{AlgoSequential, AlgoIOS, AlgoHIOSLP, AlgoHIOSMR}

// RunConfig parameterizes an algorithm comparison run.
type RunConfig struct {
	// GPUs is M for the multi-GPU schedulers.
	GPUs int
	// Window is the sliding-window size w; zero selects the default.
	Window int
	// IOS carries the IOS pruning parameters; the zero value selects
	// defaults.
	IOS ios.Options
}

// Run executes the named algorithm on g under cost model m.
func Run(algo string, g *graph.Graph, m cost.Model, cfg RunConfig) (sched.Result, error) {
	switch algo {
	case AlgoSequential:
		return seq.Schedule(g, m)
	case AlgoIOS:
		return ios.Schedule(g, m, cfg.IOS)
	case AlgoHIOSLP:
		return lp.Schedule(g, m, lp.Options{GPUs: cfg.GPUs, Window: cfg.Window})
	case AlgoHIOSMR:
		return mr.Schedule(g, m, mr.Options{GPUs: cfg.GPUs, Window: cfg.Window})
	case AlgoInterLP:
		return lp.Schedule(g, m, lp.Options{GPUs: cfg.GPUs, InterOnly: true})
	case AlgoInterMR:
		return mr.Schedule(g, m, mr.Options{GPUs: cfg.GPUs, InterOnly: true})
	default:
		return sched.Result{}, fmt.Errorf("experiments: unknown algorithm %q", algo)
	}
}
