package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func allUnscheduled(g *Graph) []bool {
	u := make([]bool, g.NumOps())
	for i := range u {
		u[i] = true
	}
	return u
}

func TestLongestValidPathChain(t *testing.T) {
	g := chain(t, 4, 0.5)
	path, l := g.LongestValidPath(allUnscheduled(g))
	if len(path) != 4 {
		t.Fatalf("path = %v, want full chain", path)
	}
	// 4 vertices (1 each) + 3 edges (0.5 each) = 5.5.
	if l != 5.5 {
		t.Fatalf("length = %g, want 5.5", l)
	}
	for i, v := range path {
		if v != OpID(i) {
			t.Fatalf("path = %v, want [0 1 2 3]", path)
		}
	}
}

func TestLongestValidPathPicksHeavierBranch(t *testing.T) {
	g := diamond(t, 1, 2, 3, 1, 0.5)
	path, l := g.LongestValidPath(allUnscheduled(g))
	// a -> c -> d = 1 + .5 + 3 + .5 + 1 = 6.
	want := []OpID{0, 2, 3}
	if len(path) != 3 || path[0] != want[0] || path[1] != want[1] || path[2] != want[2] {
		t.Fatalf("path = %v, want %v", path, want)
	}
	if l != 6 {
		t.Fatalf("length = %g, want 6", l)
	}
}

func TestLongestValidPathBoundaryBonuses(t *testing.T) {
	// After removing the heavy path of the diamond, the remaining vertex
	// b keeps its boundary edges a->b and b->d, which count toward the
	// second path's length (paper Fig. 4: P2 includes e2 and e6).
	g := diamond(t, 1, 2, 3, 1, 0.5)
	un := allUnscheduled(g)
	un[0], un[2], un[3] = false, false, false
	path, l := g.LongestValidPath(un)
	if len(path) != 1 || path[0] != 1 {
		t.Fatalf("path = %v, want [1]", path)
	}
	if l != 3 { // 0.5 + 2 + 0.5
		t.Fatalf("length = %g, want 3", l)
	}
}

func TestLongestValidPathInteriorConstraint(t *testing.T) {
	// Graph:  a -> b -> c -> d,  and x -> c  with x scheduled.
	// c has an edge from the scheduled region, so c may not be an
	// interior vertex: the path a-b-c-d is invalid; candidates are
	// a-b-c (c last) or b-c-d (c... interior!) -> b-c? Let's verify the
	// search respects the rule.
	g := New(5, 4)
	a := g.AddOp(Op{Name: "a", Time: 1})
	b := g.AddOp(Op{Name: "b", Time: 1})
	c := g.AddOp(Op{Name: "c", Time: 1})
	d := g.AddOp(Op{Name: "d", Time: 1})
	x := g.AddOp(Op{Name: "x", Time: 1})
	g.AddEdge(a, b, 1)
	g.AddEdge(b, c, 1)
	g.AddEdge(c, d, 1)
	g.AddEdge(x, c, 10)
	g.MustFinalize()
	un := allUnscheduled(g)
	un[x] = false

	path, l := g.LongestValidPath(un)
	// a-b-c-d is invalid: c would be an interior vertex but has an edge
	// from the scheduled x. Valid candidates:
	//   c-d with the boundary in-edge x->c on the first vertex:
	//     10 + 1 + 1 + 1 = 13
	//   a-b-c: 1+1+1+1+1 = 5 (x->c does not attach: c is entered via
	//     b->c, and incoming boundary edges only extend the first
	//     vertex of a path)
	if l != 13 {
		t.Fatalf("length = %g, want 13 (path %v)", l, path)
	}
	if len(path) != 2 || path[0] != c || path[1] != d {
		t.Fatalf("path = %v, want [c d]", path)
	}
	_, _ = a, b
}

func TestLongestValidPathEmpty(t *testing.T) {
	g := chain(t, 2, 0)
	un := make([]bool, 2)
	path, l := g.LongestValidPath(un)
	if path != nil || l != 0 {
		t.Fatalf("expected no path, got %v (%g)", path, l)
	}
}

// TestLongestValidPathExhaustion mirrors HIOS-LP's main loop: repeatedly
// extracting paths must consume every vertex exactly once and always make
// progress.
func TestLongestValidPathExhaustion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		g := randomDAG(rng, n, rng.Intn(2*n))
		un := allUnscheduled(g)
		remaining := n
		for remaining > 0 {
			path, l := g.LongestValidPath(un)
			if len(path) == 0 || l <= 0 {
				return false
			}
			for i, v := range path {
				if !un[v] {
					return false // re-extracted a vertex
				}
				un[v] = false
				// Path must follow direct edges.
				if i > 0 && !g.HasEdge(path[i-1], v) {
					return false
				}
			}
			remaining -= len(path)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestLongestValidPathDominatesSingles verifies the returned length is at
// least the best single-vertex candidate (with its boundary bonuses), a
// cheap lower bound the DP must dominate.
func TestLongestValidPathDominatesSingles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomDAG(rng, n, rng.Intn(2*n))
		un := allUnscheduled(g)
		// Schedule a random half.
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				un[v] = false
			}
		}
		any := false
		for _, x := range un {
			any = any || x
		}
		if !any {
			return true
		}
		_, l := g.LongestValidPath(un)
		for v := 0; v < n; v++ {
			if !un[v] {
				continue
			}
			sb, eb := 0.0, 0.0
			g.Preds(OpID(v), func(u OpID, w float64) {
				if !un[u] && w > sb {
					sb = w
				}
			})
			g.Succs(OpID(v), func(u OpID, w float64) {
				if !un[u] && w > eb {
					eb = w
				}
			})
			if l < g.Op(OpID(v)).Time+sb+eb-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestContractionGroupingAndCycles(t *testing.T) {
	g := diamond(t, 1, 1, 1, 1, 0)
	c := NewContraction(g)
	if !c.Acyclic() {
		t.Fatal("identity contraction of a DAG must be acyclic")
	}
	// Grouping the independent middle vertices keeps it acyclic.
	c2 := c.Clone()
	c2.Group([]OpID{1, 2})
	if !c2.Acyclic() {
		t.Fatal("grouping {b,c} must stay acyclic")
	}
	if !c2.SameGroup(1, 2) || c2.SameGroup(0, 1) {
		t.Fatal("SameGroup bookkeeping wrong")
	}
	// Grouping a with d (path a->b->d) creates a cycle.
	c3 := c.Clone()
	c3.Group([]OpID{0, 3})
	if c3.Acyclic() {
		t.Fatal("grouping {a,d} must create a cycle")
	}
}

func TestContractionExtraEdges(t *testing.T) {
	// Two independent chains a->b and c->d; extra sequence edges b->c
	// and d->a (as per-GPU orders might induce) create a cycle.
	g := New(4, 2)
	a := g.AddOp(Op{Time: 1})
	b := g.AddOp(Op{Time: 1})
	c := g.AddOp(Op{Time: 1})
	d := g.AddOp(Op{Time: 1})
	g.AddEdge(a, b, 0)
	g.AddEdge(c, d, 0)
	g.MustFinalize()
	ct := NewContraction(g)
	ct.AddEdge(b, c)
	if !ct.Acyclic() {
		t.Fatal("b->c alone must not create a cycle")
	}
	ct.AddEdge(d, a)
	if ct.Acyclic() {
		t.Fatal("adding d->a must create a cycle")
	}
}
