// Package graph implements the weighted directed acyclic computation graph
// used throughout HIOS.
//
// A graph G = (V, E) models a DAG-structured deep-learning model: each
// vertex is an operator with an execution-time weight t(v) (the time the
// operator takes running alone on one GPU), and each edge (u, v) carries a
// transfer-time weight t(u, v) (the time to move u's output tensor to
// another GPU when u and v are placed on different devices).
//
// The package also provides the graph algorithms the HIOS schedulers are
// built from: topological sorting, the priority indicator p(v) (length of
// the longest weighted path from v to a sink), the longest-valid-path
// search of HIOS-LP, reachability queries, and the vertex-contraction cycle
// check used by the intra-GPU sliding-window pass.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// OpID identifies an operator inside one Graph. IDs are dense: a graph with
// n operators uses IDs 0..n-1, which lets algorithms index slices by OpID.
type OpID int

// None is the sentinel for "no operator".
const None OpID = -1

// Op is a single operator (vertex) in a computation graph.
type Op struct {
	ID   OpID
	Name string
	// Time is t(v): the execution time of the operator running alone on
	// one GPU, in milliseconds.
	Time float64
	// Util is the fraction of one GPU the operator saturates while
	// running alone, in (0, 1]. It drives the concurrent-stage contention
	// model: operators whose utilizations sum to more than 1 contend.
	// Zero means "unknown"; cost models substitute a default.
	Util float64
	// Bytes is the size of the operator's output tensor in bytes. It is
	// informational here; transfer times on edges are authoritative.
	Bytes int64
	// Kind is an optional label ("conv", "pool", ...) used by model
	// builders and trace output. The scheduling algorithms ignore it.
	Kind string
}

// Edge is a data dependency u -> v: v consumes the output tensor of u.
type Edge struct {
	From, To OpID
	// Time is t(u, v): the transfer time of u's output between two
	// different GPUs, in milliseconds. It is charged only when the two
	// endpoints are mapped to different devices.
	Time float64
}

// Graph is a weighted DAG of operators. Construct one with New and AddOp /
// AddEdge, then call Finalize (or use Build) before running algorithms.
type Graph struct {
	ops   []Op
	edges []Edge

	// Adjacency, built by Finalize.
	succ [][]adj // outgoing edges per op
	pred [][]adj // incoming edges per op

	// topo is the topological order computed (and validated) by
	// Finalize, served by TopoOrder without recomputation. Finalized
	// graphs are immutable, so it can never go stale.
	topo []OpID

	// closure caches the transitive-closure bitset built lazily by
	// Closure. Atomic so concurrent sweep workers may share one graph;
	// see the invalidation contract on type Closure.
	closure atomic.Pointer[Closure]

	finalized bool
}

// adj is one adjacency entry: the neighbor and the connecting edge's index.
type adj struct {
	op   OpID
	edge int
}

// New returns an empty graph with capacity hints for n operators and m
// edges.
func New(n, m int) *Graph {
	return &Graph{
		ops:   make([]Op, 0, n),
		edges: make([]Edge, 0, m),
	}
}

// AddOp appends an operator and returns its ID. The ID field of the
// argument is overwritten with the assigned ID.
func (g *Graph) AddOp(op Op) OpID {
	if g.finalized {
		panic("graph: AddOp after Finalize")
	}
	op.ID = OpID(len(g.ops))
	g.ops = append(g.ops, op)
	return op.ID
}

// AddEdge appends the dependency from -> to with transfer time t.
func (g *Graph) AddEdge(from, to OpID, t float64) {
	if g.finalized {
		panic("graph: AddEdge after Finalize")
	}
	g.edges = append(g.edges, Edge{From: from, To: to, Time: t})
}

// Finalize validates the graph and builds adjacency structures. It must be
// called once after all AddOp/AddEdge calls and before any algorithm runs.
func (g *Graph) Finalize() error {
	if g.finalized {
		return nil
	}
	n := len(g.ops)
	for i, e := range g.edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return fmt.Errorf("graph: edge %d (%d->%d) references unknown operator", i, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("graph: edge %d is a self-loop on operator %d", i, e.From)
		}
		if e.Time < 0 {
			return fmt.Errorf("graph: edge %d (%d->%d) has negative transfer time %g", i, e.From, e.To, e.Time)
		}
	}
	for _, op := range g.ops {
		if op.Time < 0 {
			return fmt.Errorf("graph: operator %d (%s) has negative execution time %g", op.ID, op.Name, op.Time)
		}
	}
	g.succ = make([][]adj, n)
	g.pred = make([][]adj, n)
	for i, e := range g.edges {
		g.succ[e.From] = append(g.succ[e.From], adj{op: e.To, edge: i})
		g.pred[e.To] = append(g.pred[e.To], adj{op: e.From, edge: i})
	}
	// Deterministic neighbor order regardless of insertion order.
	for v := 0; v < n; v++ {
		sort.Slice(g.succ[v], func(i, j int) bool { return g.succ[v][i].op < g.succ[v][j].op })
		sort.Slice(g.pred[v], func(i, j int) bool { return g.pred[v][i].op < g.pred[v][j].op })
	}
	g.finalized = true
	order, err := g.computeTopoOrder()
	if err != nil {
		g.finalized = false
		g.succ, g.pred = nil, nil
		return err
	}
	g.topo = order
	return nil
}

// MustFinalize is Finalize that panics on error; for use with graphs whose
// construction is statically known to be valid (builders, tests).
func (g *Graph) MustFinalize() *Graph {
	if err := g.Finalize(); err != nil {
		panic(err)
	}
	return g
}

// ErrCycle reports that a supposed DAG contains a directed cycle.
var ErrCycle = errors.New("graph: cycle detected")

// NumOps returns |V|.
func (g *Graph) NumOps() int { return len(g.ops) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Op returns the operator with the given ID.
func (g *Graph) Op(id OpID) Op { return g.ops[id] }

// Ops returns the operator slice, indexed by OpID. Callers must not
// modify it.
func (g *Graph) Ops() []Op { return g.ops }

// Edges returns the edge slice. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Time returns t(v) for the operator.
func (g *Graph) Time(id OpID) float64 { return g.ops[id].Time }

// Succs calls fn for every outgoing edge of v with the successor operator
// and the transfer time of the connecting edge.
func (g *Graph) Succs(v OpID, fn func(to OpID, transfer float64)) {
	for _, a := range g.succ[v] {
		fn(a.op, g.edges[a.edge].Time)
	}
}

// Preds calls fn for every incoming edge of v with the predecessor operator
// and the transfer time of the connecting edge.
func (g *Graph) Preds(v OpID, fn func(from OpID, transfer float64)) {
	for _, a := range g.pred[v] {
		fn(a.op, g.edges[a.edge].Time)
	}
}

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v OpID) int { return len(g.succ[v]) }

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v OpID) int { return len(g.pred[v]) }

// SuccAt returns the i-th outgoing edge of v (successor and transfer
// time), 0 <= i < OutDegree(v). The indexed form lets hot loops iterate
// adjacency without the callback closure of Succs.
func (g *Graph) SuccAt(v OpID, i int) (OpID, float64) {
	a := g.succ[v][i]
	return a.op, g.edges[a.edge].Time
}

// PredAt returns the i-th incoming edge of v (predecessor and transfer
// time), 0 <= i < InDegree(v).
func (g *Graph) PredAt(v OpID, i int) (OpID, float64) {
	a := g.pred[v][i]
	return a.op, g.edges[a.edge].Time
}

// HasEdge reports whether the direct edge u -> v exists.
func (g *Graph) HasEdge(u, v OpID) bool {
	for _, a := range g.succ[u] {
		if a.op == v {
			return true
		}
	}
	return false
}

// TransferTime returns t(u, v) for the direct edge u -> v, or 0 and false
// if the edge does not exist.
func (g *Graph) TransferTime(u, v OpID) (float64, bool) {
	for _, a := range g.succ[u] {
		if a.op == v {
			return g.edges[a.edge].Time, true
		}
	}
	return 0, false
}

// Sources returns the operators with no predecessors, in ID order.
func (g *Graph) Sources() []OpID {
	var out []OpID
	for v := range g.ops {
		if len(g.pred[v]) == 0 {
			out = append(out, OpID(v))
		}
	}
	return out
}

// Sinks returns the operators with no successors, in ID order.
func (g *Graph) Sinks() []OpID {
	var out []OpID
	for v := range g.ops {
		if len(g.succ[v]) == 0 {
			out = append(out, OpID(v))
		}
	}
	return out
}

// TotalOpTime returns the sum of all operator execution times: the latency
// of fully sequential execution on one GPU (no transfers).
func (g *Graph) TotalOpTime() float64 {
	var s float64
	for _, op := range g.ops {
		s += op.Time
	}
	return s
}

// Clone returns a deep copy of the graph. The copy is finalized if and only
// if the receiver is.
func (g *Graph) Clone() *Graph {
	ng := New(len(g.ops), len(g.edges))
	ng.ops = append(ng.ops, g.ops...)
	ng.edges = append(ng.edges, g.edges...)
	if g.finalized {
		ng.MustFinalize()
	}
	return ng
}

// String returns a compact human-readable dump for debugging.
func (g *Graph) String() string {
	s := fmt.Sprintf("graph{|V|=%d |E|=%d", len(g.ops), len(g.edges))
	if len(g.ops) <= 16 {
		for _, op := range g.ops {
			s += fmt.Sprintf(" %d:%s(%.3g)", op.ID, op.Name, op.Time)
		}
	}
	return s + "}"
}
