package graph

// Reachable reports whether there is a directed path (of length >= 1) from
// u to v. On a finalized graph this is one bit probe into the cached
// transitive closure (built on first use, O(V·E/64)); see Closure.
//
// Root annotation: in-module hot code holds a Closure and probes it
// directly, so this public entry is hot only through external callers and
// benchmarks — propagation cannot reach it statically.
//
//lint:hotpath
func (g *Graph) Reachable(u, v OpID) bool {
	if u == v {
		return false
	}
	return g.Closure().Reachable(u, v)
}

// Independent reports whether neither u reaches v nor v reaches u: the two
// operators may execute concurrently without violating any data dependency.
func (g *Graph) Independent(u, v OpID) bool {
	return u != v && !g.Reachable(u, v) && !g.Reachable(v, u)
}

// AllIndependent reports whether the operators are pairwise independent.
func (g *Graph) AllIndependent(ids []OpID) bool {
	return g.Closure().AllIndependent(ids)
}

// ReachScratch holds the reusable BFS state of ReachableBFS: an
// epoch-stamped visited array, so repeated queries neither allocate nor
// clear. The zero value is ready to use. Not safe for concurrent use.
type ReachScratch struct {
	seen  []int32
	epoch int32
	queue []OpID
}

// ReachableBFS answers the same query as Reachable by breadth-first
// search over the adjacency, without consulting (or building) the
// closure. It is the fallback for callers that cannot amortize a
// closure build — a graph still under construction-and-refinalization
// churn, or a one-shot query on a huge graph — and the differential
// oracle the closure is tested against. O(|V| + |E|) per query,
// allocation-free once the scratch is warm.
func (g *Graph) ReachableBFS(rs *ReachScratch, u, v OpID) bool {
	if u == v {
		return false
	}
	n := len(g.ops)
	if cap(rs.seen) < n {
		rs.seen = make([]int32, n)
		rs.epoch = 0
	}
	rs.seen = rs.seen[:n]
	rs.epoch++
	if rs.epoch == 0 { // wrapped: clear and restart epochs
		for i := range rs.seen {
			rs.seen[i] = 0
		}
		rs.epoch = 1
	}
	rs.queue = rs.queue[:0]
	rs.queue = append(rs.queue, u)
	rs.seen[u] = rs.epoch
	for qi := 0; qi < len(rs.queue); qi++ {
		x := rs.queue[qi]
		for _, a := range g.succ[x] {
			if rs.seen[a.op] == rs.epoch {
				continue
			}
			if a.op == v {
				return true
			}
			rs.seen[a.op] = rs.epoch
			rs.queue = append(rs.queue, a.op)
		}
	}
	return false
}

// Contraction is a view of a graph in which groups of vertices have been
// merged into single super-nodes, as done by Algorithm 2 when it fuses a
// window of operators into one stage. It supports incremental grouping and
// acyclicity checks without copying the underlying graph.
type Contraction struct {
	g *Graph
	// rep[v] is the representative super-node of v (union-find with path
	// compression; no ranks needed at these sizes).
	rep []OpID
	// extra holds additional edges between super-nodes that are not
	// data edges of g: Algorithm 2's implicit dependencies, i.e. the
	// sequential-order edges between consecutive stages on each GPU.
	extra [][2]OpID

	// Acyclic scratch, reused across calls (not copied by Clone).
	cnt   []int
	off   []int
	flat  []OpID
	indeg []int
	ready []OpID
}

// NewContraction returns an identity contraction of g.
func NewContraction(g *Graph) *Contraction {
	rep := make([]OpID, g.NumOps())
	for i := range rep {
		rep[i] = OpID(i)
	}
	return &Contraction{g: g, rep: rep}
}

// Find returns the representative super-node of v.
func (c *Contraction) Find(v OpID) OpID {
	for c.rep[v] != v {
		c.rep[v] = c.rep[c.rep[v]] // path halving
		v = c.rep[v]
	}
	return v
}

// Group merges all the given vertices into one super-node (the group's
// smallest representative wins, keeping results deterministic).
func (c *Contraction) Group(ids []OpID) {
	if len(ids) == 0 {
		return
	}
	root := c.Find(ids[0])
	for _, id := range ids[1:] {
		r := c.Find(id)
		if r < root {
			c.rep[root] = r
			root = r
		} else if r != root {
			c.rep[r] = root
		}
	}
}

// AddEdge records an extra (implicit) dependency from u's super-node to
// v's super-node, such as per-GPU stage order.
func (c *Contraction) AddEdge(u, v OpID) {
	c.extra = append(c.extra, [2]OpID{u, v})
}

// SameGroup reports whether u and v currently share a super-node.
func (c *Contraction) SameGroup(u, v OpID) bool { return c.Find(u) == c.Find(v) }

// Clone returns an independent copy of the contraction (same underlying
// graph, fresh scratch). Used to trial a grouping before committing it.
func (c *Contraction) Clone() *Contraction {
	rep := make([]OpID, len(c.rep))
	copy(rep, c.rep)
	extra := make([][2]OpID, len(c.extra))
	copy(extra, c.extra)
	return &Contraction{g: c.g, rep: rep, extra: extra}
}

// Acyclic reports whether the contracted multigraph (data edges of the
// underlying graph plus the extra edges, with grouped vertices merged) has
// no directed cycle. Self-loops inside a group are ignored: members of one
// stage are checked for independence separately.
//
// The super-node adjacency is built in CSR form over reusable scratch —
// two counted passes over the edge lists into one flat successor array —
// so repeated checks on one contraction allocate nothing once warm.
// Parallel edges between two super-nodes are kept (Kahn's algorithm is
// correct on multigraphs: in-degrees count edge multiplicity and every
// traversal decrements symmetrically), which drops the historical
// map-based dedupe entirely.
//
// Root annotation: the scheduler's window search validates stages through
// its own incremental structures, so Acyclic has no static in-module hot
// caller — it is a hot entry point for external users and benchmarks.
//
//lint:hotpath
func (c *Contraction) Acyclic() bool {
	n := c.g.NumOps()
	ne := len(c.g.edges) + len(c.extra)
	c.cnt = growScratch(c.cnt, n)
	c.off = growScratch(c.off, n+1)
	c.flat = growScratch(c.flat, ne)
	c.indeg = growScratch(c.indeg, n)
	for v := 0; v < n; v++ {
		c.cnt[v] = 0
		c.indeg[v] = 0
	}
	// Counting pass over both edge lists.
	for i := range c.g.edges {
		e := &c.g.edges[i]
		ru, rv := c.Find(e.From), c.Find(e.To)
		if ru == rv {
			continue
		}
		c.cnt[ru]++
		c.indeg[rv]++
	}
	for _, e := range c.extra {
		ru, rv := c.Find(e[0]), c.Find(e[1])
		if ru == rv {
			continue
		}
		c.cnt[ru]++
		c.indeg[rv]++
	}
	// Prefix sums, then the fill pass in the same order (Find is now
	// fully path-compressed, so the repeated lookups are cheap).
	sum := 0
	for v := 0; v < n; v++ {
		c.off[v] = sum
		sum += c.cnt[v]
		c.cnt[v] = c.off[v] // becomes the fill cursor
	}
	c.off[n] = sum
	for i := range c.g.edges {
		e := &c.g.edges[i]
		ru, rv := c.Find(e.From), c.Find(e.To)
		if ru == rv {
			continue
		}
		c.flat[c.cnt[ru]] = rv
		c.cnt[ru]++
	}
	for _, e := range c.extra {
		ru, rv := c.Find(e[0]), c.Find(e[1])
		if ru == rv {
			continue
		}
		c.flat[c.cnt[ru]] = rv
		c.cnt[ru]++
	}
	// Kahn over representatives.
	nrep := 0
	c.ready = c.ready[:0]
	for v := 0; v < n; v++ {
		if c.Find(OpID(v)) == OpID(v) {
			nrep++
			if c.indeg[v] == 0 {
				c.ready = append(c.ready, OpID(v))
			}
		}
	}
	visited := 0
	for len(c.ready) > 0 {
		v := c.ready[len(c.ready)-1]
		c.ready = c.ready[:len(c.ready)-1]
		visited++
		for k := c.off[v]; k < c.off[v+1]; k++ {
			w := c.flat[k]
			c.indeg[w]--
			if c.indeg[w] == 0 {
				c.ready = append(c.ready, w)
			}
		}
	}
	return visited == nrep
}
