package graph

// Reachable reports whether there is a directed path (of length >= 1) from
// u to v. BFS over successors; O(|V| + |E|).
func (g *Graph) Reachable(u, v OpID) bool {
	if u == v {
		return false
	}
	seen := make([]bool, len(g.ops))
	queue := []OpID{u}
	seen[u] = true
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		found := false
		g.Succs(x, func(to OpID, _ float64) {
			if found || seen[to] {
				return
			}
			if to == v {
				found = true
				return
			}
			seen[to] = true
			queue = append(queue, to)
		})
		if found {
			return true
		}
	}
	return false
}

// Independent reports whether neither u reaches v nor v reaches u: the two
// operators may execute concurrently without violating any data dependency.
func (g *Graph) Independent(u, v OpID) bool {
	return u != v && !g.Reachable(u, v) && !g.Reachable(v, u)
}

// AllIndependent reports whether the operators are pairwise independent.
func (g *Graph) AllIndependent(ids []OpID) bool {
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if !g.Independent(ids[i], ids[j]) {
				return false
			}
		}
	}
	return true
}

// Contraction is a view of a graph in which groups of vertices have been
// merged into single super-nodes, as done by Algorithm 2 when it fuses a
// window of operators into one stage. It supports incremental grouping and
// acyclicity checks without copying the underlying graph.
type Contraction struct {
	g *Graph
	// rep[v] is the representative super-node of v (union-find with path
	// compression; no ranks needed at these sizes).
	rep []OpID
	// extra holds additional edges between super-nodes that are not
	// data edges of g: Algorithm 2's implicit dependencies, i.e. the
	// sequential-order edges between consecutive stages on each GPU.
	extra [][2]OpID
}

// NewContraction returns an identity contraction of g.
func NewContraction(g *Graph) *Contraction {
	rep := make([]OpID, g.NumOps())
	for i := range rep {
		rep[i] = OpID(i)
	}
	return &Contraction{g: g, rep: rep}
}

// Find returns the representative super-node of v.
func (c *Contraction) Find(v OpID) OpID {
	for c.rep[v] != v {
		c.rep[v] = c.rep[c.rep[v]] // path halving
		v = c.rep[v]
	}
	return v
}

// Group merges all the given vertices into one super-node (the group's
// smallest representative wins, keeping results deterministic).
func (c *Contraction) Group(ids []OpID) {
	if len(ids) == 0 {
		return
	}
	root := c.Find(ids[0])
	for _, id := range ids[1:] {
		r := c.Find(id)
		if r < root {
			c.rep[root] = r
			root = r
		} else if r != root {
			c.rep[r] = root
		}
	}
}

// AddEdge records an extra (implicit) dependency from u's super-node to
// v's super-node, such as per-GPU stage order.
func (c *Contraction) AddEdge(u, v OpID) {
	c.extra = append(c.extra, [2]OpID{u, v})
}

// SameGroup reports whether u and v currently share a super-node.
func (c *Contraction) SameGroup(u, v OpID) bool { return c.Find(u) == c.Find(v) }

// Clone returns an independent copy of the contraction (same underlying
// graph). Used to trial a grouping before committing it.
func (c *Contraction) Clone() *Contraction {
	rep := make([]OpID, len(c.rep))
	copy(rep, c.rep)
	extra := make([][2]OpID, len(c.extra))
	copy(extra, c.extra)
	return &Contraction{g: c.g, rep: rep, extra: extra}
}

// Acyclic reports whether the contracted multigraph (data edges of the
// underlying graph plus the extra edges, with grouped vertices merged) has
// no directed cycle. Self-loops inside a group are ignored: members of one
// stage are checked for independence separately.
func (c *Contraction) Acyclic() bool {
	n := c.g.NumOps()
	// Build super-node adjacency. Representatives are a subset of 0..n-1.
	adjSet := make(map[int64]struct{})
	succ := make([][]OpID, n)
	addEdge := func(u, v OpID) {
		ru, rv := c.Find(u), c.Find(v)
		if ru == rv {
			return
		}
		key := int64(ru)*int64(n) + int64(rv)
		if _, ok := adjSet[key]; ok {
			return
		}
		adjSet[key] = struct{}{}
		succ[ru] = append(succ[ru], rv)
	}
	for _, e := range c.g.Edges() {
		addEdge(e.From, e.To)
	}
	for _, e := range c.extra {
		addEdge(e[0], e[1])
	}
	// Kahn over representatives.
	indeg := make([]int, n)
	isRep := make([]bool, n)
	nrep := 0
	for v := 0; v < n; v++ {
		if c.Find(OpID(v)) == OpID(v) {
			isRep[v] = true
			nrep++
		}
	}
	for v := 0; v < n; v++ {
		for _, w := range succ[v] {
			indeg[w]++
		}
	}
	var ready []OpID
	for v := 0; v < n; v++ {
		if isRep[v] && indeg[v] == 0 {
			ready = append(ready, OpID(v))
		}
	}
	visited := 0
	for len(ready) > 0 {
		v := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		visited++
		for _, w := range succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	return visited == nrep
}
