package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// chain builds v0 -> v1 -> ... -> v_{n-1} with unit op times and the given
// edge weight.
func chain(t *testing.T, n int, edgeW float64) *Graph {
	t.Helper()
	g := New(n, n-1)
	for i := 0; i < n; i++ {
		g.AddOp(Op{Name: "v", Time: 1})
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(OpID(i), OpID(i+1), edgeW)
	}
	if err := g.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return g
}

// diamond builds a -> {b, c} -> d with the given op times.
func diamond(t *testing.T, ta, tb, tc, td, e float64) *Graph {
	t.Helper()
	g := New(4, 4)
	a := g.AddOp(Op{Name: "a", Time: ta})
	b := g.AddOp(Op{Name: "b", Time: tb})
	c := g.AddOp(Op{Name: "c", Time: tc})
	d := g.AddOp(Op{Name: "d", Time: td})
	g.AddEdge(a, b, e)
	g.AddEdge(a, c, e)
	g.AddEdge(b, d, e)
	g.AddEdge(c, d, e)
	if err := g.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return g
}

func TestAddOpAssignsDenseIDs(t *testing.T) {
	g := New(0, 0)
	for i := 0; i < 5; i++ {
		if id := g.AddOp(Op{Time: 1}); id != OpID(i) {
			t.Fatalf("AddOp #%d returned ID %d", i, id)
		}
	}
	if g.NumOps() != 5 {
		t.Fatalf("NumOps = %d, want 5", g.NumOps())
	}
}

func TestFinalizeRejectsUnknownEndpoint(t *testing.T) {
	g := New(1, 1)
	g.AddOp(Op{Time: 1})
	g.AddEdge(0, 7, 0)
	if err := g.Finalize(); err == nil {
		t.Fatal("Finalize accepted an edge to an unknown operator")
	}
}

func TestFinalizeRejectsSelfLoop(t *testing.T) {
	g := New(1, 1)
	g.AddOp(Op{Time: 1})
	g.AddEdge(0, 0, 0)
	if err := g.Finalize(); err == nil {
		t.Fatal("Finalize accepted a self-loop")
	}
}

func TestFinalizeRejectsNegativeWeights(t *testing.T) {
	g := New(2, 1)
	g.AddOp(Op{Time: -1})
	if err := g.Finalize(); err == nil {
		t.Fatal("Finalize accepted a negative op time")
	}
	g2 := New(2, 1)
	a := g2.AddOp(Op{Time: 1})
	b := g2.AddOp(Op{Time: 1})
	g2.AddEdge(a, b, -0.5)
	if err := g2.Finalize(); err == nil {
		t.Fatal("Finalize accepted a negative transfer time")
	}
}

func TestFinalizeRejectsCycle(t *testing.T) {
	g := New(3, 3)
	a := g.AddOp(Op{Time: 1})
	b := g.AddOp(Op{Time: 1})
	c := g.AddOp(Op{Time: 1})
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	g.AddEdge(c, a, 0)
	if err := g.Finalize(); err == nil {
		t.Fatal("Finalize accepted a cyclic graph")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := diamond(t, 1, 1, 1, 1, 0)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.NumOps())
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %d->%d violated by order %v", e.From, e.To, order)
		}
	}
}

func TestSourcesAndSinks(t *testing.T) {
	g := diamond(t, 1, 1, 1, 1, 0)
	if got := g.Sources(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Sources = %v, want [0]", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Sinks = %v, want [3]", got)
	}
}

func TestPriorityIndicatorsChain(t *testing.T) {
	g := chain(t, 4, 0.5)
	p := g.PriorityIndicators()
	// p(v3)=1, p(v2)=1+0.5+1=2.5, p(v1)=4, p(v0)=5.5
	want := []float64{5.5, 4, 2.5, 1}
	for i, w := range want {
		if diff := p[i] - w; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("p(v%d) = %g, want %g", i, p[i], w)
		}
	}
}

func TestPriorityIndicatorsDiamond(t *testing.T) {
	g := diamond(t, 1, 2, 3, 1, 0.5)
	p := g.PriorityIndicators()
	// p(d)=1; p(b)=2+0.5+1=3.5; p(c)=3+0.5+1=4.5; p(a)=1+0.5+4.5=6
	for i, w := range []float64{6, 3.5, 4.5, 1} {
		if p[i] != w {
			t.Fatalf("p(%d) = %g, want %g", i, p[i], w)
		}
	}
}

func TestCriticalLengths(t *testing.T) {
	g := diamond(t, 1, 2, 3, 1, 0.5)
	if got, want := g.CriticalPathLength(), 6.0; got != want {
		t.Fatalf("CriticalPathLength = %g, want %g", got, want)
	}
	if got, want := g.CriticalComputeLength(), 5.0; got != want {
		t.Fatalf("CriticalComputeLength = %g, want %g", got, want)
	}
	if got, want := g.TotalOpTime(), 7.0; got != want {
		t.Fatalf("TotalOpTime = %g, want %g", got, want)
	}
}

func TestByPriorityIsTopological(t *testing.T) {
	g := randomDAG(rand.New(rand.NewSource(7)), 40, 80)
	order := g.ByPriority()
	pos := make([]int, g.NumOps())
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("ByPriority violates edge %d->%d", e.From, e.To)
		}
	}
}

func TestLayers(t *testing.T) {
	g := diamond(t, 1, 1, 1, 1, 0)
	layers := g.Layers()
	if len(layers) != 3 {
		t.Fatalf("Layers = %v, want 3 levels", layers)
	}
	if len(layers[1]) != 2 {
		t.Fatalf("middle layer = %v, want two ops", layers[1])
	}
}

func TestReachable(t *testing.T) {
	g := diamond(t, 1, 1, 1, 1, 0)
	cases := []struct {
		u, v OpID
		want bool
	}{
		{0, 3, true}, {0, 1, true}, {1, 3, true},
		{1, 2, false}, {2, 1, false}, {3, 0, false}, {1, 1, false},
	}
	for _, c := range cases {
		if got := g.Reachable(c.u, c.v); got != c.want {
			t.Errorf("Reachable(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
	if !g.Independent(1, 2) {
		t.Error("b and c should be independent")
	}
	if g.Independent(0, 3) {
		t.Error("a and d should be dependent")
	}
	if !g.AllIndependent([]OpID{1, 2}) {
		t.Error("AllIndependent({b,c}) should hold")
	}
	if g.AllIndependent([]OpID{0, 1, 2}) {
		t.Error("AllIndependent({a,b,c}) should fail")
	}
}

func TestHasEdgeAndTransferTime(t *testing.T) {
	g := chain(t, 3, 0.25)
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if w, ok := g.TransferTime(0, 1); !ok || w != 0.25 {
		t.Fatalf("TransferTime(0,1) = %g,%v", w, ok)
	}
	if _, ok := g.TransferTime(0, 2); ok {
		t.Fatal("TransferTime reported a nonexistent edge")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := chain(t, 3, 0.25)
	c := g.Clone()
	if c.NumOps() != 3 || c.NumEdges() != 2 {
		t.Fatalf("clone shape wrong: %v", c)
	}
	// Mutating the clone's ops must not affect the original.
	c.ops[0].Time = 99
	if g.Op(0).Time == 99 {
		t.Fatal("Clone shares operator storage")
	}
}

func TestStringCompact(t *testing.T) {
	g := chain(t, 3, 0)
	if s := g.String(); !strings.Contains(s, "|V|=3") {
		t.Fatalf("String() = %q", s)
	}
}

// randomDAG builds a random DAG with edges only from lower to higher IDs.
// m is capped at the number of distinct forward pairs.
func randomDAG(rng *rand.Rand, n, m int) *Graph {
	if max := n * (n - 1) / 2; m > max {
		m = max
	}
	g := New(n, m)
	for i := 0; i < n; i++ {
		g.AddOp(Op{Time: 0.1 + rng.Float64()*3.9, Util: 0.2 + 0.8*rng.Float64()})
	}
	seen := map[[2]int]bool{}
	for len(seen) < m {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		g.AddEdge(OpID(u), OpID(v), rng.Float64())
	}
	g.MustFinalize()
	return g
}

func TestTopoOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		m := rng.Intn(n * 2)
		g := randomDAG(rng, n, m)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return len(order) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityLowerBoundsProperty(t *testing.T) {
	// For every vertex, p(v) >= t(v), and for every edge u->v,
	// p(u) >= t(u) + t(u,v) + p(v).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		g := randomDAG(rng, n, rng.Intn(2*n))
		p := g.PriorityIndicators()
		for v := 0; v < n; v++ {
			if p[v] < g.Op(OpID(v)).Time-1e-12 {
				return false
			}
		}
		for _, e := range g.Edges() {
			if p[e.From] < g.Op(e.From).Time+e.Time+p[e.To]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
