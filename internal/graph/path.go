package graph

// LongestValidPath implements the path extraction of HIOS-LP (Algorithm 1,
// line 5 of the paper).
//
// Given the set of still-unscheduled operators G' (unscheduled[v] == true),
// it finds the longest path P through unscheduled operators such that every
// intermediate vertex of P — every vertex except the first and the last —
// has no edge from or to any already-scheduled operator. The first and last
// vertices may touch the scheduled region, and when they do, the heaviest
// such boundary edge counts toward the path length (the paper's example
// path P2 = {e2, v3, e4, v5, e6} includes the boundary edges e2 and e6).
//
// Path length is the sum of the execution times of the path's unscheduled
// vertices plus the transfer times of all edges on the path, boundary edges
// included: the path is measured at its worst-case placement, where every
// adjacent pair would sit on different GPUs (§IV-A).
//
// The returned slice holds the unscheduled vertices of the path in
// topological order, together with the path's length. If no unscheduled
// vertex exists, it returns (nil, 0).
//
// Complexity: O(|V| + |E|) per call via dynamic programming over a
// topological order, improving on the O(|V|²·|E|) bound the paper states.
//
// HIOS-LP calls this once per extracted path, so the adjacency callbacks
// below are allocated once per call (not per vertex): each captures the
// shared cursor cur instead of the sweep's loop variable.
//
//lint:hotpath
func (g *Graph) LongestValidPath(unscheduled []bool) ([]OpID, float64) {
	n := len(g.ops)
	order, err := g.TopoOrder()
	if err != nil {
		panic("graph: LongestValidPath on cyclic graph: " + err.Error())
	}

	// boundary[v]: v (unscheduled) has at least one edge to or from a
	// scheduled vertex, so it may only appear as the path's first or
	// last vertex.
	// startBonus[v]: heaviest incoming edge from a scheduled vertex —
	// claimable when v is the path's first vertex.
	// endBonus[v]: heaviest outgoing edge to a scheduled vertex —
	// claimable when v is the path's last vertex.
	boundary := make([]bool, n)
	startBonus := make([]float64, n)
	endBonus := make([]float64, n)
	var cur OpID
	markPred := func(from OpID, transfer float64) {
		if !unscheduled[from] {
			boundary[cur] = true
			if transfer > startBonus[cur] {
				startBonus[cur] = transfer
			}
		}
	}
	markSucc := func(to OpID, transfer float64) {
		if !unscheduled[to] {
			boundary[cur] = true
			if transfer > endBonus[cur] {
				endBonus[cur] = transfer
			}
		}
	}
	for v := 0; v < n; v++ {
		if !unscheduled[v] {
			continue
		}
		cur = OpID(v)
		g.Preds(cur, markPred)
		g.Succs(cur, markSucc)
	}

	// ext[v]: length of the longest valid path ending at v in which every
	// vertex except the path's first and v itself is interior-safe
	// (non-boundary). Such a path can still be extended past v only if v
	// itself is non-boundary; predecessors enforce that via extendFrom.
	// parent[v]: predecessor of v on that path (None when v starts it).
	ext := make([]float64, n)
	parent := make([]OpID, n)
	for i := range parent {
		parent[i] = None
	}

	extend := func(from OpID, transfer float64) {
		if !unscheduled[from] {
			return
		}
		// Extending through `from` makes it an interior vertex
		// of any longer path — unless `from` is the first
		// vertex. A boundary predecessor may therefore only
		// contribute as a path start: its usable length is the
		// single-vertex path (with its own start bonus).
		extendFrom := ext[from]
		if boundary[from] {
			extendFrom = g.ops[from].Time + startBonus[from]
		}
		if l := g.ops[cur].Time + transfer + extendFrom; l > ext[cur] {
			ext[cur] = l
			parent[cur] = from
		}
	}

	bestEnd := None
	bestLen := 0.0
	for _, v := range order {
		if !unscheduled[v] {
			continue
		}
		// Base case: the path starts at v; the incoming boundary edge
		// (if any) counts because v is the first vertex.
		ext[v] = g.ops[v].Time + startBonus[v]
		cur = v
		g.Preds(v, extend)
		// Candidate full path ending at v: add the outgoing boundary
		// edge, since v is the last vertex.
		if total := ext[v] + endBonus[v]; bestEnd == None || total > bestLen {
			bestEnd, bestLen = v, total
		}
	}
	if bestEnd == None {
		return nil, 0
	}

	// Reconstruct. Note: if bestEnd's recorded parent chain passed
	// through a boundary vertex, that vertex was charged as a path
	// start, and the chain correctly terminates there because its
	// parent pointer is only followed when ext (not the start-only
	// length) was used. We must therefore cut the walk at the first
	// boundary vertex after the end vertex.
	rev := make([]OpID, 0, n)
	v := bestEnd
	for {
		rev = append(rev, v)
		p := parent[v]
		if p == None {
			break
		}
		if boundary[p] {
			// p contributed as a path start; include it and stop.
			rev = append(rev, p)
			break
		}
		v = p
	}
	path := make([]OpID, len(rev))
	for i, id := range rev {
		path[len(rev)-1-i] = id
	}
	return path, bestLen
}
